// replay_trace: run a phoenix-trace file (yours or a synthesized one)
// through any registered scheduler and dump per-job outcomes as CSV —
// the batch-analysis entry point for downstream users who want to study a
// workload with their own tooling.
//
//   ./trace_explorer --profile=google --out=g.trace
//   ./replay_trace g.trace --scheduler=phoenix --nodes=300 --csv=out.csv
#include <cstdio>
#include <fstream>

#include "cluster/builder.h"
#include "runner/experiment.h"
#include "trace/io.h"
#include "util/flags.h"
#include "util/format.h"

using namespace phoenix;

namespace {

const char* PlacementName(trace::PlacementPref pref) {
  switch (pref) {
    case trace::PlacementPref::kNone: return "none";
    case trace::PlacementPref::kSpread: return "spread";
    case trace::PlacementPref::kColocate: return "colocate";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.Parse(argc, argv);
  const std::string scheduler = flags.GetString("scheduler", "phoenix");
  const auto nodes = static_cast<std::size_t>(flags.GetInt("nodes", 300));
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const std::string csv_path = flags.GetString("csv", "");
  const double mtbf = flags.GetDouble("mtbf", 0.0);
  const double mttr = flags.GetDouble("mttr", 600.0);
  const std::string trace_out = flags.GetString("trace-out", "");
  const std::string trace_jsonl = flags.GetString("trace-jsonl", "");
  const std::string timeseries = flags.GetString("timeseries", "");
  const bool audit = flags.GetBool("audit", false);
  flags.ValidateOrExit();
  if (flags.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: replay_trace <trace-file> [--scheduler=phoenix] "
                 "[--nodes=N] [--seed=N] [--csv=out.csv] [--mtbf=S --mttr=S]\n"
                 "  observability: [--trace-out=chrome.json] "
                 "[--trace-jsonl=events.jsonl] [--timeseries=hb.tsv] "
                 "[--audit]\n");
    return 1;
  }

  std::string error;
  const trace::Trace trace = trace::ReadTraceFile(flags.positional()[0], &error);
  if (!error.empty()) {
    std::fprintf(stderr, "failed to load trace: %s\n", error.c_str());
    return 1;
  }
  const auto stats = trace.ComputeStats();
  std::printf("loaded '%s': %zu jobs / %zu tasks; replaying on %zu workers "
              "under %s (offered load %.2f)\n",
              trace.name().c_str(), stats.num_jobs, stats.num_tasks, nodes,
              scheduler.c_str(), trace.OfferedLoad(nodes));

  const auto cluster = cluster::BuildCluster({.num_machines = nodes, .seed = seed});
  runner::RunOptions options;
  options.scheduler = scheduler;
  options.config.seed = seed;
  options.config.machine_mtbf = mtbf;
  options.config.machine_mttr = mttr;
  options.obs.trace_chrome = trace_out;
  options.obs.trace_jsonl = trace_jsonl;
  options.obs.timeseries_tsv = timeseries;
  options.obs.audit = audit;
  const auto report = runner::RunSimulation(trace, cluster, options);

  const auto s = report.ResponseSummary(metrics::ClassFilter::kShort,
                                        metrics::ConstraintFilter::kAll);
  std::printf("short jobs: p50 %s  p90 %s  p99 %s; utilization %.0f%%\n",
              util::HumanDuration(s.p50).c_str(),
              util::HumanDuration(s.p90).c_str(),
              util::HumanDuration(s.p99).c_str(),
              100 * report.Utilization());

  if (!csv_path.empty()) {
    std::ofstream csv(csv_path);
    if (!csv.good()) {
      std::fprintf(stderr, "cannot open %s\n", csv_path.c_str());
      return 1;
    }
    csv << "job,submit,completion,response,queuing_delay,max_task_wait,"
           "tasks,short,constrained,placement,racks_used\n";
    for (const auto& job : report.jobs) {
      csv << job.id << ',' << job.submit << ',' << job.completion << ','
          << job.response() << ',' << job.queuing_delay << ','
          << job.max_task_wait << ',' << job.num_tasks << ','
          << (job.short_class ? 1 : 0) << ',' << (job.constrained ? 1 : 0)
          << ',' << PlacementName(job.placement) << ',' << job.racks_used
          << '\n';
    }
    std::printf("wrote %zu job outcomes to %s\n", report.jobs.size(),
                csv_path.c_str());
  }
  return 0;
}
