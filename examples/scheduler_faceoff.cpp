// scheduler_faceoff: run every scheduler in the registry (or a chosen
// subset) over one workload and print the full comparison — response-time
// percentiles per job slice plus the scheduler-internal counters. This is
// the "kick the tires" harness for anyone evaluating the library.
//
//   ./scheduler_faceoff --profile=google --nodes=300
//   ./scheduler_faceoff --schedulers=phoenix,eagle-c --runs=3
#include <cstdio>

#include "cluster/builder.h"
#include "runner/experiment.h"
#include "runner/registry.h"
#include "trace/generators.h"
#include "util/flags.h"
#include "util/format.h"

using namespace phoenix;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.Parse(argc, argv);
  const std::string profile = flags.GetString("profile", "google");
  const auto nodes = static_cast<std::size_t>(flags.GetInt("nodes", 300));
  const auto jobs =
      static_cast<std::size_t>(flags.GetInt("jobs", static_cast<std::int64_t>(50 * nodes)));
  const double load = flags.GetDouble("load", 0.85);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const auto runs = static_cast<std::size_t>(flags.GetInt("runs", 1));
  const std::string scheduler_list = flags.GetString("schedulers", "");
  flags.ValidateOrExit();

  std::vector<std::string> schedulers;
  if (scheduler_list.empty()) {
    schedulers = runner::SchedulerNames();
  } else {
    for (auto& name : util::Split(scheduler_list, ',')) {
      schedulers.push_back(util::Trim(name));
    }
  }

  auto gen = trace::ProfileByName(profile);
  gen.num_jobs = jobs;
  gen.num_workers = nodes;
  gen.target_load = load;
  gen.seed = seed;
  const auto trace = trace::GenerateTrace(profile, gen);
  const auto cluster = cluster::BuildCluster({.num_machines = nodes, .seed = seed});
  const auto stats = trace.ComputeStats();
  std::printf("workload: %s, %zu jobs / %zu tasks on %zu workers "
              "(offered load %.2f), %zu run(s) per scheduler\n\n",
              profile.c_str(), stats.num_jobs, stats.num_tasks, nodes,
              trace.OfferedLoad(nodes), runs);

  util::TextTable perf({"scheduler", "short p50", "short p90", "short p99",
                        "long p99", "constrained p99", "util"});
  util::TextTable internals({"scheduler", "probes", "cancelled", "stolen",
                             "SRPT reorders", "CRV reorders", "relaxed"});
  for (const auto& name : schedulers) {
    runner::RunOptions o;
    o.scheduler = name;
    o.config.seed = seed;
    const runner::RepeatedRuns rr(trace, cluster, o, runs);
    auto pct = [&](double p, metrics::ClassFilter cf,
                   metrics::ConstraintFilter kf) {
      return util::HumanDuration(rr.MeanResponsePercentile(p, cf, kf));
    };
    perf.AddRow({name,
                 pct(50, metrics::ClassFilter::kShort, metrics::ConstraintFilter::kAll),
                 pct(90, metrics::ClassFilter::kShort, metrics::ConstraintFilter::kAll),
                 pct(99, metrics::ClassFilter::kShort, metrics::ConstraintFilter::kAll),
                 pct(99, metrics::ClassFilter::kLong, metrics::ConstraintFilter::kAll),
                 pct(99, metrics::ClassFilter::kShort,
                     metrics::ConstraintFilter::kConstrained),
                 util::StrFormat("%.0f%%", 100 * rr.MeanUtilization())});
    const auto& c = rr.reports()[0].counters;
    internals.AddRow(
        {name, util::WithCommas(static_cast<std::int64_t>(c.probes_sent)),
         util::WithCommas(static_cast<std::int64_t>(c.probes_cancelled)),
         util::WithCommas(static_cast<std::int64_t>(c.tasks_stolen)),
         util::WithCommas(static_cast<std::int64_t>(c.tasks_reordered_srpt)),
         util::WithCommas(static_cast<std::int64_t>(c.tasks_reordered_crv)),
         util::WithCommas(
             static_cast<std::int64_t>(c.soft_constraints_relaxed))});
  }
  std::printf("%s\n%s", perf.ToString().c_str(), internals.ToString().c_str());
  return 0;
}
