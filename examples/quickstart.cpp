// Quickstart: build a heterogeneous cluster, synthesize a Google-like
// constrained workload, run Phoenix and Eagle-C on it, and compare short-job
// tail latency — the paper's headline experiment in ~60 lines of API use.
//
//   ./quickstart [--nodes=600] [--jobs=6000] [--seed=42]
#include <cstdio>

#include "cluster/builder.h"
#include "runner/experiment.h"
#include "trace/generators.h"
#include "util/flags.h"
#include "util/format.h"

int main(int argc, char** argv) {
  phoenix::util::Flags flags;
  flags.Parse(argc, argv);
  const std::size_t nodes =
      static_cast<std::size_t>(flags.GetInt("nodes", 600));
  const std::size_t jobs = static_cast<std::size_t>(flags.GetInt("jobs", 6000));
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  flags.ValidateOrExit();

  // 1. A heterogeneous fleet: machine attributes (ISA, cores, NIC speed,
  //    disks, kernel, platform, clock, memory) drawn from a skewed catalog.
  phoenix::cluster::FleetOptions fleet;
  fleet.num_machines = nodes;
  fleet.seed = seed;
  const phoenix::cluster::Cluster cluster = phoenix::cluster::BuildCluster(fleet);

  // 2. A Google-profile trace: bursty arrivals, Pareto task durations,
  //    ~50 % of tasks constrained, calibrated to ~85 % offered load.
  const phoenix::trace::Trace trace =
      phoenix::trace::GenerateGoogleTrace(jobs, nodes, 0.85, seed);
  const auto stats = trace.ComputeStats();
  std::printf("trace: %zu jobs, %zu tasks, %.0f%% short, %.0f%% constrained, "
              "peak:median arrivals %.0f:1\n",
              stats.num_jobs, stats.num_tasks, 100 * stats.short_job_fraction,
              100 * stats.constrained_task_fraction,
              stats.peak_to_median_arrival);

  // 3. Run both schedulers on the identical workload.
  using phoenix::metrics::ClassFilter;
  using phoenix::metrics::ConstraintFilter;
  phoenix::util::TextTable table(
      {"scheduler", "util", "short p50", "short p90", "short p99",
       "long p99", "CRV reorders"});
  phoenix::metrics::SimReport phoenix_report, eagle_report;
  for (const std::string& name : {std::string("phoenix"), std::string("eagle-c")}) {
    phoenix::runner::RunOptions options;
    options.scheduler = name;
    options.config.seed = seed;
    const auto report = phoenix::runner::RunSimulation(trace, cluster, options);
    const auto s = report.ResponseSummary(ClassFilter::kShort,
                                          ConstraintFilter::kAll);
    const auto l = report.ResponseSummary(ClassFilter::kLong,
                                          ConstraintFilter::kAll);
    table.AddRow({name, phoenix::util::StrFormat("%.0f%%", 100 * report.Utilization()),
                  phoenix::util::HumanDuration(s.p50),
                  phoenix::util::HumanDuration(s.p90),
                  phoenix::util::HumanDuration(s.p99),
                  phoenix::util::HumanDuration(l.p99),
                  phoenix::util::WithCommas(static_cast<std::int64_t>(
                      report.counters.tasks_reordered_crv))});
    if (name == "phoenix") phoenix_report = report; else eagle_report = report;
  }
  std::printf("%s", table.ToString().c_str());

  const double speedup = phoenix::metrics::SpeedupAtPercentile(
      phoenix_report, eagle_report, 99, ClassFilter::kShort,
      ConstraintFilter::kAll);
  std::printf("\nPhoenix vs Eagle-C, short-job p99 response: %.2fx %s\n",
              speedup, speedup >= 1 ? "faster" : "slower");
  return 0;
}
