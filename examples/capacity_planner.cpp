// capacity_planner: a downstream use of the library beyond reproducing the
// paper — size a heterogeneous cluster against a latency SLO.
//
// Given a workload profile and a p99 response-time SLO for short jobs, the
// planner binary-searches the smallest fleet (in steps of `--step`) on which
// Phoenix meets the SLO, and reports how many machines the Eagle-C baseline
// would need for the same SLO (the "CapEx saved by constraint awareness"
// framing of the paper's introduction).
//
//   ./capacity_planner --profile=google --slo=600 --jobs=10000
#include <cstdio>

#include "cluster/builder.h"
#include "runner/experiment.h"
#include "trace/generators.h"
#include "util/flags.h"
#include "util/format.h"

using namespace phoenix;

namespace {

double ShortJobP99(const std::string& scheduler, const trace::Trace& trace,
                   std::size_t nodes, std::uint64_t seed, std::size_t runs) {
  const auto cluster = cluster::BuildCluster({.num_machines = nodes, .seed = seed});
  runner::RunOptions o;
  o.scheduler = scheduler;
  o.config.seed = seed;
  const runner::RepeatedRuns rr(trace, cluster, o, runs);
  return rr.MeanResponsePercentile(99, metrics::ClassFilter::kShort,
                                   metrics::ConstraintFilter::kAll);
}

/// Smallest fleet in [lo, hi] (multiples of step) meeting the SLO, or 0.
std::size_t MinimumFleet(const std::string& scheduler,
                         const trace::Trace& trace, double slo,
                         std::size_t lo, std::size_t hi, std::size_t step,
                         std::uint64_t seed, std::size_t runs) {
  std::size_t best = 0;
  while (lo <= hi) {
    const std::size_t mid = lo + (hi - lo) / 2 / step * step;
    const double p99 = ShortJobP99(scheduler, trace, mid, seed, runs);
    std::printf("  %-9s fleet %5zu -> short-job p99 %s (%s)\n",
                scheduler.c_str(), mid, util::HumanDuration(p99).c_str(),
                p99 <= slo ? "meets SLO" : "misses");
    if (p99 <= slo) {
      best = mid;
      if (mid < step) break;
      hi = mid - step;
    } else {
      lo = mid + step;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.Parse(argc, argv);
  const std::string profile = flags.GetString("profile", "google");
  const double slo = flags.GetDouble("slo", 600.0);  // seconds
  const auto jobs = static_cast<std::size_t>(flags.GetInt("jobs", 10000));
  const auto base = static_cast<std::size_t>(flags.GetInt("base-nodes", 200));
  const auto step = static_cast<std::size_t>(flags.GetInt("step", 20));
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const auto runs = static_cast<std::size_t>(flags.GetInt("runs", 1));
  flags.ValidateOrExit();

  // The workload is fixed (calibrated to the base fleet at 85 % load); the
  // planner asks how much hardware each scheduler needs to serve it.
  auto gen = trace::ProfileByName(profile);
  gen.num_jobs = jobs;
  gen.num_workers = base;
  gen.target_load = 0.85;
  gen.seed = seed;
  const auto trace = trace::GenerateTrace(profile, gen);

  std::printf("capacity planning: %s workload (%zu jobs), short-job p99 SLO "
              "= %s\n\n",
              profile.c_str(), jobs, util::HumanDuration(slo).c_str());

  const std::size_t lo = std::max<std::size_t>(step, base / 2);
  const std::size_t hi = base * 4;
  const std::size_t phoenix_fleet =
      MinimumFleet("phoenix", trace, slo, lo, hi, step, seed, runs);
  const std::size_t eagle_fleet =
      MinimumFleet("eagle-c", trace, slo, lo, hi, step, seed, runs);

  std::printf("\n");
  if (phoenix_fleet == 0 || eagle_fleet == 0) {
    std::printf("SLO not reachable within the searched fleet range "
                "(phoenix: %zu, eagle-c: %zu; 0 = unmet)\n",
                phoenix_fleet, eagle_fleet);
    return 0;
  }
  std::printf("phoenix meets the SLO with %zu workers; eagle-c needs %zu "
              "(%.0f%% more hardware for the same tail SLO)\n",
              phoenix_fleet, eagle_fleet,
              100.0 * (static_cast<double>(eagle_fleet) /
                           static_cast<double>(phoenix_fleet) -
                       1.0));
  return 0;
}
