// trace_explorer: synthesize (or load) a workload trace and characterize it
// the way the paper characterizes the Google trace — constraint attribute
// mix (Table II), constraints-per-job demand and node supply (Fig 6),
// burstiness and the short/long split. Optionally archives the trace in the
// phoenix-trace text format for replay elsewhere.
//
//   ./trace_explorer --profile=google --nodes=1000 --jobs=20000
//   ./trace_explorer --in=my.trace            # characterize an existing file
//   ./trace_explorer --profile=yahoo --out=yahoo.trace
#include <cstdio>

#include "cluster/builder.h"
#include "trace/characterize.h"
#include "trace/generators.h"
#include "trace/io.h"
#include "util/flags.h"
#include "util/format.h"
#include "util/histogram.h"

using namespace phoenix;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.Parse(argc, argv);
  const std::string profile = flags.GetString("profile", "google");
  const auto nodes = static_cast<std::size_t>(flags.GetInt("nodes", 1000));
  const auto jobs = static_cast<std::size_t>(flags.GetInt("jobs", 20000));
  const double load = flags.GetDouble("load", 0.85);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  const std::string in_path = flags.GetString("in", "");
  const std::string out_path = flags.GetString("out", "");
  flags.ValidateOrExit();

  trace::Trace trace;
  if (!in_path.empty()) {
    std::string error;
    trace = trace::ReadTraceFile(in_path, &error);
    if (!error.empty()) {
      std::fprintf(stderr, "failed to read %s: %s\n", in_path.c_str(),
                   error.c_str());
      return 1;
    }
  } else {
    auto gen = trace::ProfileByName(profile);
    gen.num_jobs = jobs;
    gen.num_workers = nodes;
    gen.target_load = load;
    gen.seed = seed;
    trace = trace::GenerateTrace(profile, gen);
  }

  const auto stats = trace.ComputeStats();
  std::printf("trace '%s': %s jobs, %s tasks\n", trace.name().c_str(),
              util::WithCommas(static_cast<std::int64_t>(stats.num_jobs)).c_str(),
              util::WithCommas(static_cast<std::int64_t>(stats.num_tasks)).c_str());
  std::printf("  horizon %s, total work %s core-seconds, offered load on "
              "%zu workers: %.2f\n",
              util::HumanDuration(stats.horizon).c_str(),
              util::WithCommas(static_cast<std::int64_t>(stats.total_work)).c_str(),
              nodes, trace.OfferedLoad(nodes));
  std::printf("  short jobs %.1f%% (cutoff %s), constrained tasks %.1f%%, "
              "peak:median arrivals %.0f:1\n\n",
              100 * stats.short_job_fraction,
              util::HumanDuration(trace.short_cutoff()).c_str(),
              100 * stats.constrained_task_fraction,
              stats.peak_to_median_arrival);

  // Table II-style attribute mix.
  const auto usage = trace::CharacterizeConstraints(trace);
  util::TextTable attr_table({"Task Constraint", "% Share", "Occurrence"});
  for (std::size_t a = 0; a < cluster::kNumAttrs; ++a) {
    attr_table.AddRow(
        {std::string(cluster::AttrName(static_cast<cluster::Attr>(a))),
         util::StrFormat("%.2f", usage.shares[a]),
         util::WithCommas(static_cast<std::int64_t>(usage.occurrences[a]))});
  }
  std::printf("%s\n", attr_table.ToString().c_str());

  // Fig 6-style supply/demand against a reference fleet.
  const auto cluster = cluster::BuildCluster({.num_machines = nodes, .seed = seed});
  const auto supply = trace::SupplyCurve(trace, cluster);
  util::TextTable sd({"# Constraints", "Demand of jobs (%)",
                      "Supply of nodes (%)"});
  for (std::size_t k = 0; k < cluster::kMaxConstraintsPerTask; ++k) {
    sd.AddRow({util::StrFormat("%zu", k + 1),
               util::StrFormat("%.1f", usage.demand_pct[k]),
               util::StrFormat("%.1f", supply[k])});
  }
  std::printf("%s\n", sd.ToString().c_str());

  // Task duration histogram (log-ish view via two linear ranges).
  util::LinearHistogram short_hist(0, 120, 24);
  for (const auto& job : trace.jobs()) {
    for (const double d : job.task_durations) short_hist.Add(d);
  }
  std::printf("task duration histogram (seconds; overflow = long tail):\n%s\n",
              short_hist.ToAscii(40).c_str());

  if (!out_path.empty()) {
    trace::WriteTraceFile(trace, out_path);
    std::printf("wrote trace to %s\n", out_path.c_str());
  }
  return 0;
}
