#!/usr/bin/env bash
# Repo health check: configure, build, run the full test suite, then smoke
# the observability stack (audited bench run + Chrome trace validity),
# elastic churn, multi-tenant preemption, network chaos, multi-shard
# gossip, the power subsystem (audited diurnal energy run), packed
# gang/malleable chaos, and DAG/deadline scheduling (audited chaos run +
# golden-diff byte-identity with the gates off).
# Usage: scripts/check.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== configure =="
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release

echo "== build =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== tests =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== audited bench smoke =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
"$BUILD_DIR/bench/bench_fig7_phoenix_vs_eagle_short" \
  --nodes=60 --jobs=1200 --runs=1 --audit \
  --trace-out="$SMOKE_DIR/trace.json" \
  --timeseries="$SMOKE_DIR/hb.tsv" >/dev/null

if command -v python3 >/dev/null 2>&1; then
  python3 - "$SMOKE_DIR/trace.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    records = json.load(f)
assert isinstance(records, list) and records, "empty chrome trace"
assert any(r.get("ph") == "X" for r in records), "no task slices"
print(f"chrome trace ok: {len(records)} records")
EOF
else
  echo "python3 not found; skipped chrome trace JSON validation"
fi

echo "== elastic suite =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -L elastic -j "$JOBS"

echo "== audited churn smoke =="
# Elastic lifecycle under load: reactive scale-up/down plus heavy transient
# reclamation (5-minute mean lease lifetime) with the invariant auditor on.
# The auditor aborts the run on any lost job, any binding to a non-active
# machine, or any capacity leak — so exiting 0 is the assertion.
"$BUILD_DIR/bench/bench_ext_elasticity" \
  --nodes=48 --jobs=1200 --runs=1 --audit \
  --json="$SMOKE_DIR/elasticity.json" >/dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 - "$SMOKE_DIR/elasticity.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
cells = doc["cells"]
assert cells, "no bench cells"
assert any(c["reclamations"] > 0 for c in cells), "reclamation never engaged"
print(f"churn smoke ok: {len(cells)} audited cells, reclamation engaged")
EOF
else
  echo "churn smoke ok (python3 not found; skipped JSON validation)"
fi

echo "== tenancy suite =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -L tenancy -j "$JOBS"

echo "== audited preemption smoke =="
# Multi-tenant sweep with the invariant auditor on: every preemption issue
# must pair with its requeue (none may outlive the run), quota-charge
# fractions must stay in [0, 1], and every job — preempted, downgraded, or
# rejected to scavenger class — must still complete.
"$BUILD_DIR/bench/bench_ext_tenancy" \
  --nodes=48 --jobs=1000 --runs=1 --audit \
  --json="$SMOKE_DIR/tenancy.json" >/dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 - "$SMOKE_DIR/tenancy.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
cells = doc["cells"]
assert cells, "no bench cells"
assert all(c["preemptions_issued"] == c["preemption_requeues"]
           for c in cells), "preemption conservation broken"
assert any(c["preemption"] and c["preemptions_issued"] > 0
           for c in cells), "preemption never engaged"
print(f"preemption smoke ok: {len(cells)} audited cells, issue==requeue")
EOF
else
  echo "preemption smoke ok (python3 not found; skipped JSON validation)"
fi

echo "== audited chaos smoke =="
# Lossy control plane with retries on: the auditor enforces message
# conservation (every send is delivered, dropped, or expired) and the run
# must still complete every job.
"$BUILD_DIR/bench/bench_fig7_phoenix_vs_eagle_short" \
  --nodes=60 --jobs=1200 --runs=1 --audit \
  --net-model=lognormal --net-drop=0.05 --rpc-retries=4 >/dev/null
echo "chaos smoke ok: 5% drop, retries on, auditor clean"

echo "== federation suite =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -L federation -j "$JOBS"

echo "== audited multi-shard chaos smoke =="
# Sharded control plane under a lossy, duplicating, reordering fabric: the
# auditor enforces fed-bind conservation (every optimistic cross-shard bind
# closes in exactly one accept or reject), accepts only on active machines,
# and gossip version monotonicity — exiting 0 with gossip traffic present
# is the assertion that stale views degraded placement, never correctness.
"$BUILD_DIR/bench/bench_ext_federation" \
  --nodes=48 --jobs=1000 --runs=1 \
  --json="$SMOKE_DIR/federation.json" >/dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 - "$SMOKE_DIR/federation.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
cells = doc["cells"]
assert cells, "no bench cells"
assert doc["config"]["audit"] is True, "federation smoke must run audited"
sharded = [c for c in cells if c["shards"] > 1]
assert sharded, "no multi-shard cells"
assert any(c["fed_gossip_applied"] > 0 for c in sharded), "gossip never landed"
assert any(c["chaos"] and c["fed_gossip_stale_dropped"] > 0
           for c in sharded), "version ordering never engaged under chaos"
spans = {c["shards"]: c["heartbeat_span"] for c in cells}
assert all(spans[s] < spans[1] for s in spans if s > 1), \
    "sharding did not shrink the heartbeat scan bound"
print(f"federation smoke ok: {len(sharded)} audited multi-shard cells, "
      "gossip + version ordering engaged, scan bound shrinks")
EOF
else
  echo "federation smoke ok (python3 not found; skipped JSON validation)"
fi

echo "== power suite =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -L power -j "$JOBS"

echo "== audited energy smoke =="
# Diurnal load with deep park + DVFS and the invariant auditor on: the
# auditor enforces power-transition legality (no binding to a parked
# machine, no DVFS while asleep, no double park/wake) and re-integrates
# the kPowerState stream against the meter total (energy conservation) —
# it aborts the run on any violation, so exiting 0 IS the
# violations == 0 assertion. The JSON then proves the policies engaged.
"$BUILD_DIR/bench/bench_ext_energy" \
  --nodes=48 --jobs=600 --runs=1 --audit \
  --json="$SMOKE_DIR/energy.json" >/dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 - "$SMOKE_DIR/energy.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
cells = doc["cells"]
assert cells, "no bench cells"
assert all(c["joules"] > 0 for c in cells), "a cell metered zero joules"
parked = [c for c in cells if c["policy"] in ("park", "all")]
assert parked, "no park-policy cells"
assert any(c["parks"] > 0 and c["sleep_fraction"] > 0 for c in parked), \
    "deep park never engaged"
meter = {(c["scheduler"], c["shape"]): c["joules"]
         for c in cells if c["policy"] == "meter"}
assert any(c["joules"] < meter[(c["scheduler"], c["shape"])]
           for c in parked), "parking saved no energy vs always-on"
print(f"energy smoke ok: {len(cells)} audited cells, joules metered, "
      "parks engaged, park < meter")
EOF
else
  echo "energy smoke ok (python3 not found; skipped JSON validation)"
fi

echo "== packing suite =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -L packing -j "$JOBS"

echo "== audited packed chaos smoke =="
# Gang + malleable mixes on a lossy, reordering fabric with the invariant
# auditor on: per-machine claims minus releases must return to exactly zero
# (capacity conservation) and every gang reservation round must close in
# exactly one commit or abort (gang atomicity) — the runner aborts on any
# violation, so exiting 0 is the assertion. The JSON then proves the
# subsystem engaged: packed co-location, gang commits, malleable width
# churn.
"$BUILD_DIR/bench/bench_ext_packing" \
  --nodes=32 --jobs=600 --runs=1 --audit \
  --net-model=lognormal --net-drop=0.02 --rpc-retries=4 \
  --json="$SMOKE_DIR/packing.json" >/dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 - "$SMOKE_DIR/packing.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
cells = doc["cells"]
assert cells, "no bench cells"
assert doc["config"]["audit"] is True, "packing smoke must run audited"
assert all(0 < c["packing_efficiency"] <= 1 for c in cells), \
    "packing efficiency outside (0, 1]"
assert all(c["packed_tasks"] > 0 for c in cells), "a cell never packed"
gangs = [c for c in cells if c["mix"] in ("gang", "mixed")]
assert gangs and any(c["gang_commits"] > 0 for c in gangs), \
    "gang commits never engaged"
malleable = [c for c in cells if c["mix"] in ("malleable", "mixed")]
assert malleable and any(
    c["malleable_expands"] + c["malleable_shrinks"] > 0
    for c in malleable), "malleable width never moved"
print(f"packed chaos smoke ok: {len(cells)} audited cells, "
      "ledger balanced, gangs committed, widths moved")
EOF
else
  echo "packed chaos smoke ok (python3 not found; skipped JSON validation)"
fi

echo "== dag suite =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -L dag -j "$JOBS"

echo "== audited dag chaos smoke =="
# DAG shapes crossed with deadline scheduling on a lossy fabric with the
# invariant auditor on: no task may start before its predecessors finish
# (precedence) and every DAG job must release exactly its task count — the
# runner aborts on any violation, so exiting 0 is the assertion. The JSON
# then proves the subsystem engaged: DAG jobs released tasks in waves and
# the EDF tie-break promoted earlier deadlines.
"$BUILD_DIR/bench/bench_ext_dag" \
  --nodes=32 --jobs=600 --runs=1 --audit \
  --net-model=lognormal --net-drop=0.02 --rpc-retries=4 \
  --json="$SMOKE_DIR/dag.json" >/dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 - "$SMOKE_DIR/dag.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
cells = doc["cells"]
assert cells, "no bench cells"
assert doc["config"]["audit"] is True, "dag smoke must run audited"
dag = [c for c in cells if c["dag_shape"] != "flat"]
assert dag and all(c["dag_jobs"] > 0 for c in dag), "DAG jobs never engaged"
assert all(c["dag_tasks_released"] >= c["dag_jobs"] for c in dag), \
    "released fewer tasks than DAG jobs"
edf = [c for c in cells if c["deadline"]]
assert edf and all(c["deadline_jobs"] > 0 for c in edf), \
    "deadline tracking never engaged"
assert any(c["deadline_promotions"] > 0 for c in edf), \
    "EDF tie-break never promoted"
assert all(0 <= c[k] <= 1 for c in edf
           for k in ("attain_prod", "attain_batch", "attain_best_effort")), \
    "attainment outside [0, 1]"
off = [c for c in cells if not c["deadline"]]
assert all(c["deadline_jobs"] == 0 and c["deadline_promotions"] == 0
           for c in off), "deadline counters moved with the gate off"
print(f"dag chaos smoke ok: {len(dag)} audited DAG cells, precedence clean, "
      "deadlines tracked, EDF promoted")
EOF
else
  echo "dag chaos smoke ok (python3 not found; skipped JSON validation)"
fi

echo "== golden-diff guard =="
# Packing off must stay byte-identical to the committed pre-packing
# outputs: the figure benches never mention packing or DAGs, so any drift
# here means a disabled subsystem perturbed the scheduler (an RNG draw, an
# iteration-order change, a stray counter) — exactly the layering bug the
# guard exists to catch. This is also the `--dag`/`--deadline`-off
# byte-identity assertion: these benches run with both gates off.
"$BUILD_DIR/bench/bench_fig7_phoenix_vs_eagle_short" \
  --nodes=60 --jobs=1200 --runs=1 > "$SMOKE_DIR/fig7.txt" 2>&1
"$BUILD_DIR/bench/bench_fig10_phoenix_vs_hawk" \
  --nodes=60 --jobs=1200 --runs=1 > "$SMOKE_DIR/fig10.txt" 2>&1
"$BUILD_DIR/bench/bench_ext_affinity_failures" \
  --nodes=60 --jobs=1200 --runs=1 > "$SMOKE_DIR/ext_affinity.txt" 2>&1
diff "$SMOKE_DIR/fig7.txt" tests/golden/fig7_nodes60_jobs1200.txt
diff "$SMOKE_DIR/fig10.txt" tests/golden/fig10_nodes60_jobs1200.txt
diff "$SMOKE_DIR/ext_affinity.txt" tests/golden/ext_affinity_nodes60_jobs1200.txt
echo "golden-diff guard ok: fig7/fig10/ext_affinity byte-identical"

echo "== perf smoke =="
# Core-throughput gate: event counts must match the committed baseline
# exactly (determinism), events/sec within 25% (algorithmic regressions).
scripts/perf_smoke.sh "$BUILD_DIR"

echo "== all checks passed =="
