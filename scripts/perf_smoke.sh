#!/usr/bin/env bash
# Perf-smoke gate: re-run the core-throughput benchmark and compare it
# against the committed baseline (BENCH_core_throughput.json).
#
# Two checks per (scheduler, fleet-scale) cell:
#   * `events` must match the baseline EXACTLY — the engine is deterministic
#     for a fixed seed, so any drift means the event stream changed, which
#     is a correctness bug, never noise. Always a hard failure.
#   * `events_per_sec` must be within 25% of the baseline. Wall-clock is
#     machine-dependent, so this is a coarse tripwire for algorithmic
#     regressions (an accidental O(n) scan in the hot loop loses far more
#     than 25%). Downgraded to a warning when the build is sanitized —
#     instrumentation overhead swamps the signal — or when
#     PHOENIX_PERF_WARN_ONLY=1.
#
# Usage: scripts/perf_smoke.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
BASELINE="BENCH_core_throughput.json"
OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

WARN_ONLY="${PHOENIX_PERF_WARN_ONLY:-0}"
if grep -Eq 'PHOENIX_SANITIZE:[A-Z]+=(address|thread|undefined)' \
    "$BUILD_DIR/CMakeCache.txt" 2>/dev/null; then
  echo "sanitized build detected: events/sec check is warn-only"
  WARN_ONLY=1
fi

"$BUILD_DIR/bench/bench_core_throughput" --json="$OUT" >/dev/null

if ! command -v python3 >/dev/null 2>&1; then
  echo "python3 not found; skipped perf baseline comparison"
  exit 0
fi

python3 - "$BASELINE" "$OUT" "$WARN_ONLY" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    baseline = {(c["scheduler"], c["workers"]): c
                for c in json.load(f)["cells"]}
with open(sys.argv[2]) as f:
    current = {(c["scheduler"], c["workers"]): c
               for c in json.load(f)["cells"]}
warn_only = sys.argv[3] == "1"

failed = False
for key, base in sorted(baseline.items()):
    cur = current.get(key)
    if cur is None:
        print(f"FAIL {key}: cell missing from current run")
        failed = True
        continue
    if cur["events"] != base["events"]:
        print(f"FAIL {key}: event count drifted "
              f"{base['events']} -> {cur['events']} (determinism broken)")
        failed = True
    ratio = cur["events_per_sec"] / base["events_per_sec"]
    if ratio < 0.75:
        tag = "WARN" if warn_only else "FAIL"
        print(f"{tag} {key}: events/sec regressed to {ratio:.2f}x baseline "
              f"({base['events_per_sec']:.0f} -> {cur['events_per_sec']:.0f})")
        if not warn_only:
            failed = True
    else:
        print(f"ok   {key}: events={cur['events']} "
              f"events/sec {ratio:.2f}x baseline")

sys.exit(1 if failed else 0)
EOF

echo "perf smoke ok"
