// Lightweight runtime-check macros used across the Phoenix codebase.
//
// PHOENIX_CHECK fires in every build type (these guard simulation invariants
// whose violation would silently corrupt results, so they are never compiled
// out). PHOENIX_DCHECK is for hot-path checks and compiles away in NDEBUG
// builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace phoenix::util {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "PHOENIX_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace phoenix::util

#define PHOENIX_CHECK(expr)                                            \
  do {                                                                 \
    if (!(expr)) ::phoenix::util::CheckFailed(__FILE__, __LINE__, #expr, ""); \
  } while (0)

#define PHOENIX_CHECK_MSG(expr, msg)                                   \
  do {                                                                 \
    if (!(expr))                                                       \
      ::phoenix::util::CheckFailed(__FILE__, __LINE__, #expr, msg);    \
  } while (0)

#ifdef NDEBUG
#define PHOENIX_DCHECK(expr) ((void)0)
#else
#define PHOENIX_DCHECK(expr) PHOENIX_CHECK(expr)
#endif
