// Minimal command-line flag parser shared by the bench harnesses and
// examples.
//
// Supports `--name=value`, `--name value`, and boolean `--name` /
// `--no-name` forms. Unknown flags are an error (so typos in experiment
// sweeps fail loudly instead of silently running defaults).
//
// Every Get* call doubles as the flag's declaration: the name, type and
// default are recorded in call order, so Usage() can print a complete
// auto-generated `--help` listing without a separate registration step.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace phoenix::util {

class Flags {
 public:
  /// Parses argv. Returns false (and fills error()) on malformed input or,
  /// after Get* calls, on unknown-flag detection via Validate().
  bool Parse(int argc, const char* const* argv);

  /// Declares + reads a flag. Each getter records the flag name so Validate()
  /// can reject unrecognized arguments.
  std::string GetString(const std::string& name, const std::string& def);
  std::int64_t GetInt(const std::string& name, std::int64_t def);
  double GetDouble(const std::string& name, double def);
  bool GetBool(const std::string& name, bool def);

  /// True if the user supplied the flag explicitly.
  bool Provided(const std::string& name) const;

  /// Returns false if any parsed flag was never declared via a getter.
  bool Validate();

  /// Terminal-caller epilogue: call after every Get* declaration. On
  /// `--help`, prints Usage() to stdout and exits 0. On a malformed value
  /// or an unknown flag, prints the error plus the auto-generated usage to
  /// stderr and exits 1 — a typo in an experiment sweep must never run the
  /// defaults silently.
  void ValidateOrExit();

  /// True if the user passed `--help` (always accepted, never a Validate
  /// error). Check after every Get* declaration, before Validate(), and
  /// print Usage() if set.
  bool HelpRequested() const;

  /// Auto-generated usage text: every flag declared so far, in declaration
  /// order, with its type and default value.
  std::string Usage() const;

  const std::string& error() const { return error_; }
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  /// One declared flag, recorded by the first Get* call for its name.
  struct Declared {
    std::string name;
    const char* type;  // "string" | "int" | "double" | "bool"
    std::string default_value;
  };

  void Declare(const std::string& name, const char* type,
               std::string default_value);

  /// Inserts or overwrites a parsed value, keeping values_ key-sorted.
  void SetValue(const std::string& name, std::string value);
  /// Binary-search lookup; nullptr when the flag was not supplied.
  const std::string* FindValue(const std::string& name) const;
  bool IsDeclared(const std::string& name) const;

  std::string program_ = "program";
  // Key-sorted flat vectors instead of node-based maps: a flag set is a
  // handful of short strings, so binary search over contiguous pairs beats
  // pointer-chasing, and Validate() still walks keys in the ascending order
  // std::map used to give (identical first-unknown error message).
  std::vector<std::pair<std::string, std::string>> values_;
  std::vector<std::string> declared_;
  std::vector<Declared> declaration_order_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace phoenix::util
