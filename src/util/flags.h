// Minimal command-line flag parser shared by the bench harnesses and
// examples.
//
// Supports `--name=value`, `--name value`, and boolean `--name` /
// `--no-name` forms. Unknown flags are an error (so typos in experiment
// sweeps fail loudly instead of silently running defaults).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace phoenix::util {

class Flags {
 public:
  /// Parses argv. Returns false (and fills error()) on malformed input or,
  /// after Get* calls, on unknown-flag detection via Validate().
  bool Parse(int argc, const char* const* argv);

  /// Declares + reads a flag. Each getter records the flag name so Validate()
  /// can reject unrecognized arguments.
  std::string GetString(const std::string& name, const std::string& def);
  std::int64_t GetInt(const std::string& name, std::int64_t def);
  double GetDouble(const std::string& name, double def);
  bool GetBool(const std::string& name, bool def);

  /// True if the user supplied the flag explicitly.
  bool Provided(const std::string& name) const;

  /// Returns false if any parsed flag was never declared via a getter.
  bool Validate();

  const std::string& error() const { return error_; }
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> declared_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace phoenix::util
