// Dynamic fixed-capacity bitset used for constraint-satisfaction indices.
//
// The cluster keeps, per (attribute, operator, value) predicate, a bitset of
// the machines satisfying it; candidate worker sets are intersections of
// those. Capacity is the cluster size (thousands to tens of thousands of
// bits), set at construction.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace phoenix::util {

class Bitset {
 public:
  explicit Bitset(std::size_t size = 0, bool value = false) { Resize(size, value); }

  void Resize(std::size_t size, bool value = false) {
    size_ = size;
    words_.assign((size + 63) / 64, value ? ~0ULL : 0ULL);
    ClearPadding();
  }

  std::size_t size() const { return size_; }

  void Set(std::size_t i) {
    PHOENIX_DCHECK(i < size_);
    words_[i >> 6] |= 1ULL << (i & 63);
  }

  void Reset(std::size_t i) {
    PHOENIX_DCHECK(i < size_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  bool Test(std::size_t i) const {
    PHOENIX_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void SetAll() {
    for (auto& w : words_) w = ~0ULL;
    ClearPadding();
  }

  void ResetAll() {
    for (auto& w : words_) w = 0;
  }

  /// this &= other. Sizes must match.
  void AndWith(const Bitset& other) {
    PHOENIX_DCHECK(size_ == other.size_);
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
  }

  /// this |= other. Sizes must match.
  void OrWith(const Bitset& other) {
    PHOENIX_DCHECK(size_ == other.size_);
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  }

  /// Number of set bits.
  std::size_t Count() const {
    std::size_t n = 0;
    for (const auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }

  bool Any() const {
    for (const auto w : words_)
      if (w != 0) return true;
    return false;
  }

  /// Appends the indices of all set bits to `out`.
  void CollectSetBits(std::vector<std::uint32_t>& out) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int b = std::countr_zero(word);
        out.push_back(static_cast<std::uint32_t>((w << 6) + static_cast<std::size_t>(b)));
        word &= word - 1;
      }
    }
  }

  /// Returns a uniformly random set bit, or SIZE_MAX if the bitset is empty.
  ///
  /// Strategy: rejection-sample random positions while the hit rate is good;
  /// after too many misses (sparse set), fall back to an exact rank-select
  /// scan. Expected O(1) for dense sets, O(words) worst case.
  std::size_t SampleSetBit(Rng& rng) const {
    if (size_ == 0) return SIZE_MAX;
    for (int attempt = 0; attempt < 24; ++attempt) {
      const std::size_t i = rng.NextBounded(size_);
      if (Test(i)) return i;
    }
    const std::size_t count = Count();
    if (count == 0) return SIZE_MAX;
    std::size_t rank = rng.NextBounded(count);
    for (std::size_t w = 0; w < words_.size(); ++w) {
      const auto pop = static_cast<std::size_t>(std::popcount(words_[w]));
      if (rank < pop) {
        std::uint64_t word = words_[w];
        for (std::size_t k = 0; k < rank; ++k) word &= word - 1;
        return (w << 6) +
               static_cast<std::size_t>(std::countr_zero(word));
      }
      rank -= pop;
    }
    PHOENIX_CHECK_MSG(false, "rank-select fell off the end");
  }

 private:
  // Keeps bits beyond size_ zero so Count()/Any() stay exact.
  void ClearPadding() {
    if (size_ % 64 != 0 && !words_.empty()) {
      words_.back() &= (1ULL << (size_ % 64)) - 1;
    }
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace phoenix::util
