#include "util/thread_pool.h"

#include "util/check.h"

namespace phoenix::util {

namespace {
constexpr std::uint64_t kIndexMask = 0xffffffffULL;

std::uint64_t TagFor(std::uint64_t generation) {
  return (generation & kIndexMask) << 32;
}
}  // namespace

std::size_t ThreadPool::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads - 1);
  for (std::size_t i = 0; i + 1 < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  batch_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::RunBatch(std::uint64_t generation,
                          const std::function<void(std::size_t)>* fn,
                          std::size_t size) {
  const std::uint64_t tag = TagFor(generation);
  std::size_t done = 0;
  std::uint64_t t = ticket_.load(std::memory_order_acquire);
  while ((t & ~kIndexMask) == tag && (t & kIndexMask) < size) {
    if (!ticket_.compare_exchange_weak(t, t + 1, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      continue;
    }
    // A claimable index implies the batch is still registered, so `fn` (the
    // caller's argument) is alive: ParallelFor cannot return before every
    // claimed index reports completion below.
    (*fn)(t & kIndexMask);
    ++done;
    t = ticket_.load(std::memory_order_acquire);
  }
  if (done > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    PHOENIX_CHECK(tasks_remaining_ >= done);
    tasks_remaining_ -= done;
    if (tasks_remaining_ == 0) batch_done_.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t size = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      batch_ready_.wait(lock, [&] {
        return shutdown_ || batch_generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = batch_generation_;
      fn = batch_fn_;
      size = batch_size_;
    }
    // fn is null when the worker slept through an entire batch; the
    // generation tag also protects against claiming into a newer batch.
    if (fn != nullptr) RunBatch(seen_generation, fn, size);
  }
}

void ThreadPool::ParallelFor(std::size_t num_tasks,
                             const std::function<void(std::size_t)>& fn) {
  if (num_tasks == 0) return;
  if (workers_.empty() || num_tasks == 1) {
    // Inline serial path: index order matches the historical serial loops.
    for (std::size_t i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  PHOENIX_CHECK_MSG(num_tasks <= kIndexMask, "batch too large for the ticket");
  std::uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PHOENIX_CHECK_MSG(batch_fn_ == nullptr,
                      "ThreadPool::ParallelFor is not reentrant");
    batch_fn_ = &fn;
    batch_size_ = num_tasks;
    tasks_remaining_ = num_tasks;
    generation = ++batch_generation_;
    ticket_.store(TagFor(generation), std::memory_order_release);
  }
  batch_ready_.notify_all();
  RunBatch(generation, &fn, num_tasks);  // the caller is a worker too
  std::unique_lock<std::mutex> lock(mu_);
  batch_done_.wait(lock, [&] { return tasks_remaining_ == 0; });
  batch_fn_ = nullptr;
  batch_size_ = 0;
}

}  // namespace phoenix::util
