// Fixed-bucket and log-bucket histograms for simulation statistics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.h"

namespace phoenix::util {

/// Histogram over [lo, hi) with `buckets` equal-width buckets plus an
/// underflow and an overflow bucket.
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::size_t buckets);

  void Add(double value, std::uint64_t count = 1);

  std::uint64_t total() const { return total_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  /// Inclusive lower edge of bucket i.
  double bucket_lo(std::size_t i) const;

  /// Approximate quantile (q in [0,1]) by linear interpolation inside the
  /// containing bucket. Requires total() > 0.
  double Quantile(double q) const;

  /// Multi-line ASCII rendering, `width` characters for the largest bar.
  std::string ToAscii(std::size_t width = 50) const;

 private:
  double lo_, hi_, bucket_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

}  // namespace phoenix::util
