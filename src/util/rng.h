// Deterministic pseudo-random number generation for the simulator.
//
// Everything stochastic in Phoenix (trace synthesis, probe target sampling,
// work stealing, ...) draws from an explicitly threaded Rng so that a given
// seed reproduces a simulation bit-for-bit. The generator is xoshiro256**
// (Blackman & Vigna), seeded through splitmix64; it is far faster than
// std::mt19937_64 and has no measurable bias for our use.
#pragma once

#include <cstdint>
#include <limits>

#include "util/check.h"

namespace phoenix::util {

/// One step of the splitmix64 generator; used to expand a 64-bit seed into
/// the 256-bit xoshiro state and as a cheap stateless hash.
constexpr std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator, so it can be used
/// with <random> distributions as well, though the convenience members below
/// cover everything the simulator needs.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x8f1e3b2c9d4a5f60ULL) { Reseed(seed); }

  /// Re-initializes the state from a 64-bit seed.
  void Reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return Next(); }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1). Uses the top 53 bits.
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    PHOENIX_DCHECK(lo <= hi);
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// multiply-shift rejection method to avoid modulo bias.
  std::uint64_t NextBounded(std::uint64_t bound) {
    PHOENIX_DCHECK(bound > 0);
    // 128-bit multiply; __uint128_t is available on all supported compilers.
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(Next()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    PHOENIX_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    NextBounded(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Derives an independent child generator; used to give each simulation
  /// component (trace gen, scheduler, stealing, ...) its own stream so that
  /// adding draws in one component does not perturb another.
  Rng Fork() {
    return Rng(Next() ^ 0xd6e8feb86659fd93ULL);
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace phoenix::util
