// Fixed-size fork/join thread pool for the experiment harness.
//
// Deliberately work-stealing-free: a pool runs one indexed task batch at a
// time, workers claim indices from a generation-tagged atomic ticket, and
// the caller blocks until every index has finished. Determinism therefore
// never depends on scheduling order — callers write results into per-index
// slots and the batch is a pure fork/join barrier. A pool of size 1 (or a
// batch of one task) runs inline on the calling thread, with indices in
// order, which is byte-identical to the pre-pool serial code path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace phoenix::util {

class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the calling thread participates in
  /// every batch, so a pool of size N uses exactly N threads while a batch
  /// runs). num_threads == 0 is clamped to 1.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads a batch may use (workers + caller).
  std::size_t size() const { return workers_.size() + 1; }

  /// Runs fn(0) .. fn(num_tasks - 1), blocking until all complete. Tasks
  /// must be independent; each should write only to its own result slot.
  /// With size() == 1 or num_tasks <= 1 the indices run inline, in order.
  /// Not reentrant: one batch at a time per pool (CHECK-enforced).
  void ParallelFor(std::size_t num_tasks,
                   const std::function<void(std::size_t)>& fn);

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows it to return 0 when unknown).
  static std::size_t HardwareThreads();

 private:
  void WorkerLoop();
  // Claims indices of batch `generation` until it drains or is superseded.
  void RunBatch(std::uint64_t generation,
                const std::function<void(std::size_t)>* fn, std::size_t size);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable batch_ready_;
  std::condition_variable batch_done_;
  const std::function<void(std::size_t)>* batch_fn_ = nullptr;  // guarded by mu_
  std::size_t batch_size_ = 0;                                  // guarded by mu_
  std::uint64_t batch_generation_ = 0;                          // guarded by mu_
  std::size_t tasks_remaining_ = 0;                             // guarded by mu_
  bool shutdown_ = false;                                       // guarded by mu_
  // (generation & 0xffffffff) << 32 | next index. The tag makes a stale
  // worker's claim on a superseded batch fail instead of stealing an index
  // from (and running the wrong function for) the batch that replaced it.
  std::atomic<std::uint64_t> ticket_{0};
};

}  // namespace phoenix::util
