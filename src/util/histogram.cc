#include "util/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/format.h"

namespace phoenix::util {

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), bucket_width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  PHOENIX_CHECK_MSG(hi > lo && buckets > 0, "invalid histogram bounds");
}

void LinearHistogram::Add(double value, std::uint64_t count) {
  total_ += count;
  if (value < lo_) {
    underflow_ += count;
    return;
  }
  if (value >= hi_) {
    overflow_ += count;
    return;
  }
  auto idx = static_cast<std::size_t>((value - lo_) / bucket_width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge at hi_
  counts_[idx] += count;
}

double LinearHistogram::bucket_lo(std::size_t i) const {
  return lo_ + bucket_width_ * static_cast<double>(i);
}

double LinearHistogram::Quantile(double q) const {
  PHOENIX_CHECK_MSG(total_ > 0, "quantile of empty histogram");
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bucket_lo(i) + frac * bucket_width_;
    }
    cum = next;
  }
  return hi_;
}

std::string LinearHistogram::ToAscii(std::size_t width) const {
  std::uint64_t max_count = 1;
  for (const auto c : counts_) max_count = std::max(max_count, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        std::llround(static_cast<double>(counts_[i]) /
                     static_cast<double>(max_count) *
                     static_cast<double>(width)));
    out += StrFormat("%12.3f | %-*s %llu\n", bucket_lo(i),
                     static_cast<int>(width), std::string(bar, '#').c_str(),
                     static_cast<unsigned long long>(counts_[i]));
  }
  if (underflow_ > 0)
    out += StrFormat("  underflow: %llu\n",
                     static_cast<unsigned long long>(underflow_));
  if (overflow_ > 0)
    out += StrFormat("   overflow: %llu\n",
                     static_cast<unsigned long long>(overflow_));
  return out;
}

}  // namespace phoenix::util
