// Small-buffer move-only callable: std::function without the allocator on
// the hot path.
//
// The simulator schedules millions of events per run, and nearly every
// callback is a tiny lambda capturing [this] plus a couple of scalars —
// or, at worst, a QueueEntry (~40 bytes). libstdc++'s std::function only
// inlines captures up to two pointers, so the engine's hottest loop was
// one malloc/free per event. InlineFunction raises the inline capacity to
// kInlineBytes (one cache line including the dispatcher pointer) and falls
// back to the heap only for outsized captures, which the simulator's hot
// paths never produce.
//
// Semantics: move-only (captures own RPC continuations and queue entries
// that must not be duplicated), nullable, no target-type introspection.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace phoenix::util {

template <typename Signature>
class InlineFunction;

template <typename R, typename... Args>
class InlineFunction<R(Args...)> {
 public:
  /// Inline capture capacity. 56 bytes keeps sizeof(InlineFunction) at one
  /// 64-byte cache line alongside the dispatcher pointer and still fits the
  /// largest hot capture (a scheduler QueueEntry plus a this-pointer).
  static constexpr std::size_t kInlineBytes = 56;

  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Decayed = std::decay_t<F>;
    if constexpr (sizeof(Decayed) <= kInlineBytes &&
                  alignof(Decayed) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Decayed>) {
      ::new (static_cast<void*>(buffer_)) Decayed(std::forward<F>(f));
      dispatch_ = &InlineDispatch<Decayed>;
    } else {
      ::new (static_cast<void*>(buffer_))
          Decayed*(new Decayed(std::forward<F>(f)));
      dispatch_ = &HeapDispatch<Decayed>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) {
    Reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  R operator()(Args... args) {
    return dispatch_(Op::kInvoke, buffer_, nullptr,
                     std::forward<Args>(args)...);
  }

  explicit operator bool() const { return dispatch_ != nullptr; }
  friend bool operator==(const InlineFunction& f, std::nullptr_t) {
    return !f;
  }
  friend bool operator!=(const InlineFunction& f, std::nullptr_t) {
    return static_cast<bool>(f);
  }

 private:
  enum class Op { kInvoke, kMove, kDestroy };

  // One dispatcher per erased type handles invoke/move/destroy, so the
  // object carries a single function pointer instead of a vtable pointer
  // plus allocation bookkeeping.
  using Dispatch = R (*)(Op, void* self, void* dest, Args&&... args);

  template <typename F>
  static R InlineDispatch(Op op, void* self, void* dest, Args&&... args) {
    F& fn = *std::launder(reinterpret_cast<F*>(self));
    switch (op) {
      case Op::kInvoke:
        return fn(std::forward<Args>(args)...);
      case Op::kMove:
        ::new (dest) F(std::move(fn));
        fn.~F();
        break;
      case Op::kDestroy:
        fn.~F();
        break;
    }
    if constexpr (!std::is_void_v<R>) return R();
  }

  template <typename F>
  static R HeapDispatch(Op op, void* self, void* dest, Args&&... args) {
    F*& ptr = *std::launder(reinterpret_cast<F**>(self));
    switch (op) {
      case Op::kInvoke:
        return (*ptr)(std::forward<Args>(args)...);
      case Op::kMove:
        ::new (dest) F*(ptr);
        ptr = nullptr;
        break;
      case Op::kDestroy:
        delete ptr;
        break;
    }
    if constexpr (!std::is_void_v<R>) return R();
  }

  void Reset() {
    if (dispatch_ != nullptr) {
      dispatch_(Op::kDestroy, buffer_, nullptr, Args{}...);
      dispatch_ = nullptr;
    }
  }

  void MoveFrom(InlineFunction& other) {
    if (other.dispatch_ != nullptr) {
      other.dispatch_(Op::kMove, other.buffer_, buffer_, Args{}...);
      dispatch_ = other.dispatch_;
      other.dispatch_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buffer_[kInlineBytes];
  Dispatch dispatch_ = nullptr;
};

}  // namespace phoenix::util
