// A chunked pool arena for hot-path task/job records.
//
// The scheduler's steady-state allocation churn is container nodes: worker
// queue blocks (std::deque chunks) and per-job replay vectors, allocated and
// freed millions of times per run through the global allocator. The arena
// replaces that with bump allocation out of large chunks plus size-bucketed
// free lists, so a freed block is recycled with two pointer moves and the
// arena's footprint is bounded by the peak live set, not the churn.
//
// Deliberately simple and single-threaded (each simulation owns its engine
// and scheduler outright; cross-run parallelism is process-of-one-run in
// the experiment runner). Blocks never return to the OS until the arena
// dies — exactly the lifetime of one simulation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace phoenix::util {

class Arena {
 public:
  explicit Arena(std::size_t chunk_bytes = 1 << 16)
      : chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* Allocate(std::size_t bytes, std::size_t align) {
    bytes = RoundUp(bytes, align < kMinAlign ? kMinAlign : align);
    const std::size_t bucket = BucketFor(bytes);
    if (bucket < kNumBuckets) {
      // Pool path: pop a recycled block of this size class if one exists.
      if (FreeNode* node = free_[bucket]) {
        free_[bucket] = node->next;
        return node;
      }
      bytes = std::size_t{1} << (bucket + kMinShift);
    }
    return Bump(bytes, align);
  }

  void Deallocate(void* p, std::size_t bytes, std::size_t align) {
    if (p == nullptr) return;
    bytes = RoundUp(bytes, align < kMinAlign ? kMinAlign : align);
    const std::size_t bucket = BucketFor(bytes);
    if (bucket >= kNumBuckets) return;  // oversize: leaked into the arena
    auto* node = static_cast<FreeNode*>(p);
    node->next = free_[bucket];
    free_[bucket] = node;
  }

  /// Bytes handed out by the bump allocator (chunk footprint, not live set).
  std::size_t bytes_reserved() const { return reserved_; }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  static constexpr std::size_t kMinShift = 4;  // smallest bucket: 16 bytes
  static constexpr std::size_t kNumBuckets = 16;  // ... largest: 512 KiB
  static constexpr std::size_t kMinAlign = alignof(std::max_align_t);

  static std::size_t RoundUp(std::size_t n, std::size_t align) {
    return (n + align - 1) & ~(align - 1);
  }

  /// Smallest power-of-two bucket holding `bytes`; kNumBuckets if oversize.
  static std::size_t BucketFor(std::size_t bytes) {
    std::size_t bucket = 0;
    std::size_t size = std::size_t{1} << kMinShift;
    while (bucket < kNumBuckets && size < bytes) {
      size <<= 1;
      ++bucket;
    }
    return bucket;
  }

  void* Bump(std::size_t bytes, std::size_t align) {
    std::size_t head = RoundUp(cursor_, align);
    if (chunks_.empty() || head + bytes > chunk_end_) {
      const std::size_t want = bytes > chunk_bytes_ ? bytes : chunk_bytes_;
      chunks_.emplace_back(new std::byte[want]);
      reserved_ += want;
      cursor_ = reinterpret_cast<std::uintptr_t>(chunks_.back().get());
      chunk_end_ = cursor_ + want;
      head = RoundUp(cursor_, align);
    }
    cursor_ = head + bytes;
    return reinterpret_cast<void*>(head);
  }

  std::size_t chunk_bytes_;
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::uintptr_t cursor_ = 0;
  std::uintptr_t chunk_end_ = 0;
  std::size_t reserved_ = 0;
  FreeNode* free_[kNumBuckets] = {};
};

/// std-compatible allocator over an Arena. A null arena falls back to the
/// global allocator so default-constructed containers (tests, fixtures)
/// keep working. Copies share the arena; container copy construction keeps
/// it via select_on_container_copy_construction.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& o) noexcept : arena_(o.arena()) {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    if (arena_ == nullptr) {
      return static_cast<T*>(::operator new(bytes, std::align_val_t{
                                                       alignof(T)}));
    }
    return static_cast<T*>(arena_->Allocate(bytes, alignof(T)));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    if (arena_ == nullptr) {
      ::operator delete(p, n * sizeof(T), std::align_val_t{alignof(T)});
      return;
    }
    arena_->Deallocate(p, n * sizeof(T), alignof(T));
  }

  ArenaAllocator select_on_container_copy_construction() const {
    return *this;
  }

  Arena* arena() const noexcept { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& o) const noexcept {
    return arena_ == o.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& o) const noexcept {
    return arena_ != o.arena();
  }

 private:
  Arena* arena_ = nullptr;
};

}  // namespace phoenix::util
