// Open-addressed hash containers for integer keys.
//
// The engine's cancellation path and the CRV predicate table both need
// O(1) membership over dense integer ids. std::unordered_* pays a node
// allocation per element and a pointer chase per lookup; these containers
// keep everything in two flat arrays (linear probing, power-of-two
// capacity, backward-shift deletion so no tombstones accumulate).
//
// Keys are std::uint64_t; the all-ones value is reserved as the empty-slot
// sentinel and must never be inserted (the engine's sequence numbers and
// the CRV's encoded predicates never reach it).
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace phoenix::util {

namespace flat_hash_internal {

inline constexpr std::uint64_t kEmptySlot = ~std::uint64_t{0};

/// splitmix64 finalizer: full-avalanche mix so sequential ids spread
/// across the table instead of clustering into one probe run.
inline std::size_t MixHash(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return static_cast<std::size_t>(x);
}

}  // namespace flat_hash_internal

/// Hash set of uint64 keys. Insert/Erase/Contains are O(1) amortized.
class FlatHashSet {
 public:
  FlatHashSet() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    slots_.assign(slots_.size(), flat_hash_internal::kEmptySlot);
    size_ = 0;
  }

  bool Contains(std::uint64_t key) const {
    if (slots_.empty()) return false;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = flat_hash_internal::MixHash(key) & mask;
    while (slots_[i] != flat_hash_internal::kEmptySlot) {
      if (slots_[i] == key) return true;
      i = (i + 1) & mask;
    }
    return false;
  }

  /// Returns true if the key was newly inserted.
  bool Insert(std::uint64_t key) {
    PHOENIX_CHECK_MSG(key != flat_hash_internal::kEmptySlot,
                      "FlatHashSet: reserved sentinel key");
    if ((size_ + 1) * 4 > slots_.size() * 3) Grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = flat_hash_internal::MixHash(key) & mask;
    while (slots_[i] != flat_hash_internal::kEmptySlot) {
      if (slots_[i] == key) return false;
      i = (i + 1) & mask;
    }
    slots_[i] = key;
    ++size_;
    return true;
  }

  /// Returns true if the key was present. Backward-shift deletion keeps
  /// probe runs compact (no tombstone slots).
  bool Erase(std::uint64_t key) {
    if (slots_.empty()) return false;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = flat_hash_internal::MixHash(key) & mask;
    while (slots_[i] != key) {
      if (slots_[i] == flat_hash_internal::kEmptySlot) return false;
      i = (i + 1) & mask;
    }
    std::size_t hole = i;
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask;
      const std::uint64_t k = slots_[j];
      if (k == flat_hash_internal::kEmptySlot) break;
      const std::size_t ideal = flat_hash_internal::MixHash(k) & mask;
      // k may fill the hole iff its ideal slot is not after the hole in
      // probe order (otherwise moving it would break its own probe run).
      if (((j - ideal) & mask) >= ((j - hole) & mask)) {
        slots_[hole] = k;
        hole = j;
      }
    }
    slots_[hole] = flat_hash_internal::kEmptySlot;
    --size_;
    return true;
  }

  /// Visits every key in unspecified (hash) order. Callers needing a
  /// deterministic order must collect and sort.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const std::uint64_t k : slots_) {
      if (k != flat_hash_internal::kEmptySlot) fn(k);
    }
  }

 private:
  void Grow() {
    const std::size_t cap = slots_.empty() ? 16 : slots_.size() * 2;
    std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(cap, flat_hash_internal::kEmptySlot);
    const std::size_t mask = cap - 1;
    for (const std::uint64_t k : old) {
      if (k == flat_hash_internal::kEmptySlot) continue;
      std::size_t i = flat_hash_internal::MixHash(k) & mask;
      while (slots_[i] != flat_hash_internal::kEmptySlot) i = (i + 1) & mask;
      slots_[i] = k;
    }
  }

  std::vector<std::uint64_t> slots_;
  std::size_t size_ = 0;
};

/// Hash map from uint64 keys to trivially-movable values. Same layout and
/// probing as FlatHashSet with a parallel value array. No Erase — the two
/// call sites (CRV predicate table) only ever add or update entries.
template <typename V>
class FlatHashMap {
 public:
  FlatHashMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  V* Find(std::uint64_t key) {
    return const_cast<V*>(
        static_cast<const FlatHashMap*>(this)->Find(key));
  }

  const V* Find(std::uint64_t key) const {
    if (keys_.empty()) return nullptr;
    const std::size_t mask = keys_.size() - 1;
    std::size_t i = flat_hash_internal::MixHash(key) & mask;
    while (keys_[i] != flat_hash_internal::kEmptySlot) {
      if (keys_[i] == key) return &values_[i];
      i = (i + 1) & mask;
    }
    return nullptr;
  }

  /// Returns the value for `key`, default-constructing it on first use.
  V& operator[](std::uint64_t key) {
    PHOENIX_CHECK_MSG(key != flat_hash_internal::kEmptySlot,
                      "FlatHashMap: reserved sentinel key");
    if ((size_ + 1) * 4 > keys_.size() * 3) Grow();
    const std::size_t mask = keys_.size() - 1;
    std::size_t i = flat_hash_internal::MixHash(key) & mask;
    while (keys_[i] != flat_hash_internal::kEmptySlot) {
      if (keys_[i] == key) return values_[i];
      i = (i + 1) & mask;
    }
    keys_[i] = key;
    values_[i] = V{};
    ++size_;
    return values_[i];
  }

  /// Visits (key, value) pairs in unspecified (hash) order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != flat_hash_internal::kEmptySlot) fn(keys_[i], values_[i]);
    }
  }

 private:
  void Grow() {
    const std::size_t cap = keys_.empty() ? 16 : keys_.size() * 2;
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<V> old_values = std::move(values_);
    keys_.assign(cap, flat_hash_internal::kEmptySlot);
    values_.assign(cap, V{});
    const std::size_t mask = cap - 1;
    for (std::size_t j = 0; j < old_keys.size(); ++j) {
      if (old_keys[j] == flat_hash_internal::kEmptySlot) continue;
      std::size_t i = flat_hash_internal::MixHash(old_keys[j]) & mask;
      while (keys_[i] != flat_hash_internal::kEmptySlot) i = (i + 1) & mask;
      keys_[i] = old_keys[j];
      values_[i] = std::move(old_values[j]);
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<V> values_;
  std::size_t size_ = 0;
};

}  // namespace phoenix::util
