// String and table formatting helpers for experiment output.
//
// The bench harnesses print the same row/series structure the paper's tables
// and figures report; TextTable keeps those aligned without dragging in a
// heavyweight dependency.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace phoenix::util {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Formats seconds with an adaptive unit (ms / s / min / h).
std::string HumanDuration(double seconds);

/// Formats a count with thousands separators ("15,000").
std::string WithCommas(std::int64_t value);

/// Simple aligned ASCII table used by the bench harnesses.
///
///   TextTable t({"Trace", "p50", "p99"});
///   t.AddRow({"Google", "0.52", "0.48"});
///   std::cout << t.ToString();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  /// Inserts a horizontal rule before the next added row.
  void AddRule();

  std::string ToString() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == rule
};

/// Splits on a delimiter; keeps empty fields (CSV semantics).
std::vector<std::string> Split(const std::string& s, char delim);

/// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s);

}  // namespace phoenix::util
