#include "util/format.h"

#include <cstdarg>
#include <cstdio>

#include "util/check.h"

namespace phoenix::util {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  PHOENIX_CHECK_MSG(n >= 0, "vsnprintf failed");
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string HumanDuration(double seconds) {
  if (seconds < 0) return "-" + HumanDuration(-seconds);
  if (seconds < 1.0) return StrFormat("%.1fms", seconds * 1e3);
  if (seconds < 120.0) return StrFormat("%.2fs", seconds);
  if (seconds < 7200.0) return StrFormat("%.1fmin", seconds / 60.0);
  return StrFormat("%.1fh", seconds / 3600.0);
}

std::string WithCommas(std::int64_t value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return negative ? "-" + out : out;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  PHOENIX_CHECK_MSG(cells.size() == header_.size(),
                    "row width must match header width");
  rows_.push_back(std::move(cells));
}

void TextTable::AddRule() { rows_.emplace_back(); }

std::string TextTable::ToString() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }
  auto rule = [&] {
    std::string s = "+";
    for (const std::size_t w : width) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      s += " " + cells[c] + std::string(width[c] - cells[c].size(), ' ') + " |";
    }
    return s + "\n";
  };
  std::string out = rule() + line(header_) + rule();
  for (const auto& row : rows_) {
    out += row.empty() ? rule() : line(row);
  }
  out += rule();
  return out;
}

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string::npos) {
      parts.push_back(s.substr(start));
      return parts;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace phoenix::util
