#include "util/flags.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace phoenix::util {

namespace {

bool LooksLikeFlag(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

}  // namespace

void Flags::SetValue(const std::string& name, std::string value) {
  const auto it = std::lower_bound(
      values_.begin(), values_.end(), name,
      [](const auto& entry, const std::string& key) { return entry.first < key; });
  if (it != values_.end() && it->first == name) {
    it->second = std::move(value);  // later occurrence wins, like map[]=
  } else {
    values_.insert(it, {name, std::move(value)});
  }
}

const std::string* Flags::FindValue(const std::string& name) const {
  const auto it = std::lower_bound(
      values_.begin(), values_.end(), name,
      [](const auto& entry, const std::string& key) { return entry.first < key; });
  if (it == values_.end() || it->first != name) return nullptr;
  return &it->second;
}

bool Flags::IsDeclared(const std::string& name) const {
  return std::binary_search(declared_.begin(), declared_.end(), name);
}

bool Flags::Parse(int argc, const char* const* argv) {
  if (argc > 0 && argv[0] != nullptr && argv[0][0] != '\0') {
    program_ = argv[0];
    const auto slash = program_.find_last_of('/');
    if (slash != std::string::npos) program_ = program_.substr(slash + 1);
  }
  // `--help` is accepted by every binary without being declared by a getter.
  declared_.insert(
      std::lower_bound(declared_.begin(), declared_.end(), "help"), "help");
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!LooksLikeFlag(arg)) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      SetValue(arg.substr(0, eq), arg.substr(eq + 1));
      continue;
    }
    // `--no-name` boolean negation.
    if (arg.rfind("no-", 0) == 0) {
      SetValue(arg.substr(3), "false");
      continue;
    }
    // `--name value` if the next token is not itself a flag, else bare bool.
    if (i + 1 < argc && !LooksLikeFlag(argv[i + 1])) {
      SetValue(arg, argv[++i]);
    } else {
      SetValue(arg, "true");
    }
  }
  return true;
}

void Flags::Declare(const std::string& name, const char* type,
                    std::string default_value) {
  const auto it = std::lower_bound(declared_.begin(), declared_.end(), name);
  if (it != declared_.end() && *it == name) {
    // Re-declaration. Two Get* calls for the same flag must agree on type
    // and default, or the value the program sees depends on call order — a
    // silent registration conflict. Abort loudly at startup instead.
    // Names without a declaration record ("help", injected by Parse) have
    // nothing to conflict with.
    for (const auto& d : declaration_order_) {
      if (d.name != name) continue;
      if (std::string_view(d.type) != type || d.default_value != default_value) {
        std::fprintf(stderr,
                     "%s: flag --%s declared twice with conflicting "
                     "registrations: %s (default %s) vs %s (default %s)\n",
                     program_.c_str(), name.c_str(), d.type,
                     d.default_value.c_str(), type, default_value.c_str());
        std::abort();
      }
      break;
    }
    return;  // identical re-declaration: first one stands
  }
  declared_.insert(it, name);
  declaration_order_.push_back({name, type, std::move(default_value)});
}

std::string Flags::GetString(const std::string& name, const std::string& def) {
  Declare(name, "string", def.empty() ? "\"\"" : def);
  const std::string* v = FindValue(name);
  return v == nullptr ? def : *v;
}

std::int64_t Flags::GetInt(const std::string& name, std::int64_t def) {
  Declare(name, "int", std::to_string(def));
  const std::string* value = FindValue(name);
  if (value == nullptr) return def;
  char* end = nullptr;
  const std::int64_t v = std::strtoll(value->c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    error_ = "flag --" + name + " expects an integer, got '" + *value + "'";
    return def;
  }
  return v;
}

double Flags::GetDouble(const std::string& name, double def) {
  {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", def);
    Declare(name, "double", buf);
  }
  const std::string* value = FindValue(name);
  if (value == nullptr) return def;
  char* end = nullptr;
  const double v = std::strtod(value->c_str(), &end);
  if (end == nullptr || *end != '\0') {
    error_ = "flag --" + name + " expects a number, got '" + *value + "'";
    return def;
  }
  return v;
}

bool Flags::GetBool(const std::string& name, bool def) {
  Declare(name, "bool", def ? "true" : "false");
  const std::string* value = FindValue(name);
  if (value == nullptr) return def;
  const std::string& v = *value;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  error_ = "flag --" + name + " expects a boolean, got '" + v + "'";
  return def;
}

bool Flags::Provided(const std::string& name) const {
  return FindValue(name) != nullptr;
}

bool Flags::HelpRequested() const {
  const std::string* v = FindValue("help");
  if (v == nullptr) return false;
  return *v != "false" && *v != "0" && *v != "no" && *v != "off";
}

std::string Flags::Usage() const {
  std::string out = "usage: " + program_ + " [--flag=value ...]\n\nflags:\n";
  std::size_t width = 0;
  for (const auto& d : declaration_order_) {
    width = std::max(width, d.name.size());
  }
  for (const auto& d : declaration_order_) {
    out += "  --" + d.name;
    out.append(width - d.name.size() + 2, ' ');
    out += d.type;
    out += "  (default: " + d.default_value + ")\n";
  }
  out += "  --help";
  if (width >= 4) out.append(width - 4 + 2, ' ');
  out += "bool  (default: false)\n";
  return out;
}

void Flags::ValidateOrExit() {
  if (HelpRequested()) {
    std::fputs(Usage().c_str(), stdout);
    std::exit(0);
  }
  if (!Validate()) {
    std::fprintf(stderr, "%s: %s\n\n%s", program_.c_str(), error_.c_str(),
                 Usage().c_str());
    std::exit(1);
  }
}

bool Flags::Validate() {
  if (!error_.empty()) return false;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (!IsDeclared(name)) {
      error_ = "unknown flag --" + name;
      return false;
    }
  }
  return true;
}

}  // namespace phoenix::util
