#include "util/flags.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace phoenix::util {

namespace {

bool LooksLikeFlag(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

}  // namespace

bool Flags::Parse(int argc, const char* const* argv) {
  if (argc > 0 && argv[0] != nullptr && argv[0][0] != '\0') {
    program_ = argv[0];
    const auto slash = program_.find_last_of('/');
    if (slash != std::string::npos) program_ = program_.substr(slash + 1);
  }
  // `--help` is accepted by every binary without being declared by a getter.
  declared_["help"] = true;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!LooksLikeFlag(arg)) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--no-name` boolean negation.
    if (arg.rfind("no-", 0) == 0) {
      values_[arg.substr(3)] = "false";
      continue;
    }
    // `--name value` if the next token is not itself a flag, else bare bool.
    if (i + 1 < argc && !LooksLikeFlag(argv[i + 1])) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
  return true;
}

void Flags::Declare(const std::string& name, const char* type,
                    std::string default_value) {
  if (declared_.count(name)) return;  // first declaration wins
  declared_[name] = true;
  declaration_order_.push_back({name, type, std::move(default_value)});
}

std::string Flags::GetString(const std::string& name, const std::string& def) {
  Declare(name, "string", def.empty() ? "\"\"" : def);
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t Flags::GetInt(const std::string& name, std::int64_t def) {
  Declare(name, "int", std::to_string(def));
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const std::int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    error_ = "flag --" + name + " expects an integer, got '" + it->second + "'";
    return def;
  }
  return v;
}

double Flags::GetDouble(const std::string& name, double def) {
  {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", def);
    Declare(name, "double", buf);
  }
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    error_ = "flag --" + name + " expects a number, got '" + it->second + "'";
    return def;
  }
  return v;
}

bool Flags::GetBool(const std::string& name, bool def) {
  Declare(name, "bool", def ? "true" : "false");
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  error_ = "flag --" + name + " expects a boolean, got '" + v + "'";
  return def;
}

bool Flags::Provided(const std::string& name) const {
  return values_.count(name) > 0;
}

bool Flags::HelpRequested() const {
  const auto it = values_.find("help");
  if (it == values_.end()) return false;
  return it->second != "false" && it->second != "0" && it->second != "no" &&
         it->second != "off";
}

std::string Flags::Usage() const {
  std::string out = "usage: " + program_ + " [--flag=value ...]\n\nflags:\n";
  std::size_t width = 0;
  for (const auto& d : declaration_order_) {
    width = std::max(width, d.name.size());
  }
  for (const auto& d : declaration_order_) {
    out += "  --" + d.name;
    out.append(width - d.name.size() + 2, ' ');
    out += d.type;
    out += "  (default: " + d.default_value + ")\n";
  }
  out += "  --help";
  if (width >= 4) out.append(width - 4 + 2, ' ');
  out += "bool  (default: false)\n";
  return out;
}

void Flags::ValidateOrExit() {
  if (HelpRequested()) {
    std::fputs(Usage().c_str(), stdout);
    std::exit(0);
  }
  if (!Validate()) {
    std::fprintf(stderr, "%s: %s\n\n%s", program_.c_str(), error_.c_str(),
                 Usage().c_str());
    std::exit(1);
  }
}

bool Flags::Validate() {
  if (!error_.empty()) return false;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (!declared_.count(name)) {
      error_ = "unknown flag --" + name;
      return false;
    }
  }
  return true;
}

}  // namespace phoenix::util
