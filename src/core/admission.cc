#include "core/admission.h"

#include <algorithm>

#include "util/check.h"

namespace phoenix::core {

AdmissionController::AdmissionController(const cluster::Cluster& cluster,
                                         double crv_threshold,
                                         double soft_relax_penalty,
                                         std::size_t max_relaxations)
    : cluster_(cluster), crv_threshold_(crv_threshold),
      soft_relax_penalty_(soft_relax_penalty),
      max_relaxations_(max_relaxations) {
  PHOENIX_CHECK(crv_threshold > 0);
  PHOENIX_CHECK(soft_relax_penalty >= 1.0);
}

std::size_t AdmissionController::Pool(const cluster::ConstraintSet& cs) const {
  return view_ != nullptr ? view_->CountEligible(cs)
                          : cluster_.CountSatisfying(cs);
}

std::size_t AdmissionController::FleetSize() const {
  return view_ != nullptr ? view_->bindable_count() : cluster_.size();
}

std::size_t AdmissionController::Negotiate(sched::JobRuntime& job,
                                           const CrvSnapshot& snapshot) {
  // Only short (latency-critical) jobs benefit: long jobs amortize queueing
  // and should keep their requested placement quality.
  if (!job.short_class) return 0;

  std::size_t relaxed = 0;
  bool changed = true;
  while (changed && relaxed < max_relaxations_) {
    changed = false;
    const std::size_t pool = Pool(job.effective);
    // Negotiation only pays when the job is actually cornered: a roomy pool
    // queues briefly even at peak, and the relaxation penalty would be pure
    // loss.
    if (pool >= FleetSize() / 10) break;
    for (std::size_t i = 0; i < job.effective.size(); ++i) {
      const cluster::Constraint& c = job.effective[i];
      if (c.hard) continue;
      const double ratio = snapshot.RatioFor(cluster::AttrToCrvDim(c.attr));
      if (ratio <= crv_threshold_) continue;
      // Require the trade to buy real placement freedom (>= 2x the pool).
      const cluster::ConstraintSet without = job.effective.WithoutConstraint(i);
      if (Pool(without) < 2 * std::max<std::size_t>(pool, 1)) {
        continue;
      }
      job.effective = without;
      job.duration_multiplier *= soft_relax_penalty_;
      ++job.relaxed_constraints;
      ++relaxed;
      changed = true;
      break;  // indices shifted; rescan
    }
  }
  return relaxed;
}

}  // namespace phoenix::core
