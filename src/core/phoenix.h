// Phoenix: the constraint-aware hybrid scheduler (the paper's contribution).
//
// Built on Eagle-C (hybrid planes, SSS, SRPT, sticky batch probing) and
// extended with (Table I last row):
//   * a CRV_Monitor that maintains per-dimension demand/supply ratios of
//     constrained queued work, refreshed into a lookup-table snapshot every
//     heartbeat (9 s);
//   * per-worker Pollaczek-Khinchine M/G/1 waiting-time estimates E[W]
//     (Equation 1), also refreshed at the heartbeat;
//   * adaptive queue reordering (Algorithm 1): while any CRV dimension is
//     congested (ratio > CRV_threshold), workers whose E[W] exceeds
//     Qwait_threshold reorder by CRV — tasks demanding the hottest
//     dimension run first (they have the fewest alternative workers),
//     SRPT among equals, bounded by the slack/starvation threshold;
//     otherwise plain SRPT, which is tail-optimal at moderate load;
//   * proactive admission control: soft constraints touching congested
//     dimensions are negotiated away at arrival for short jobs;
//   * wait-aware probe placement: probe targets are chosen from the
//     satisfying pool by lowest estimated E[W] rather than uniformly; and
//     sticky batch probing is suspended during congested periods, since
//     stickiness is a poor wait-time estimator under constraint surges
//     (paper §VI-A).
#pragma once

#include "core/admission.h"
#include "core/crv.h"
#include "sched/eagle.h"

namespace phoenix::core {

class PhoenixScheduler : public sched::EagleScheduler {
 public:
  PhoenixScheduler(sim::Engine& engine, const cluster::Cluster& cluster,
                   const sched::SchedulerConfig& config);

  std::string name() const override { return "phoenix"; }

  /// Forwards the view to the base placement paths, the CRV monitor
  /// (eligible-pool supply + per-predicate demand) and the admission
  /// controller (eligible-pool scarcity gates).
  void SetMembership(cluster::MembershipView* membership) override;

  /// Additionally forwards the parked-supply discount into the CRV monitor:
  /// parked satisfying machines count as wake-discounted supply in the
  /// snapshot ratios (wake-latency-aware CRV).
  void SetPower(power::PowerManager* power) override;

  /// Demand/supply per distinct queued predicate on the currently hottest
  /// CRV dimension — the elasticity controller's input for CRV-aware supply
  /// shaping. Empty without a membership view.
  std::vector<CrvMonitor::PredicateDemand> HotSupplyDemand() const {
    return monitor_.HotPredicates(snapshot_.max_dim);
  }

  /// Current CRV table contents (for tests and the examples).
  const CrvSnapshot& snapshot() const { return snapshot_; }
  bool congested() const { return congested_; }

  /// One CRV_Lookup_Table refresh, timestamped.
  struct CrvSample {
    double time = 0;
    CrvSnapshot snapshot;
    bool congested = false;
  };

  /// Heartbeat-by-heartbeat history of the CRV table (capped at
  /// kMaxHistory samples by uniform decimation) — the observability feed a
  /// production CRV_Monitor would export.
  const std::vector<CrvSample>& crv_history() const { return history_; }

 protected:
  void AdmitJob(sched::JobRuntime& job) override;
  std::vector<cluster::MachineId> ChooseProbeTargets(
      const sched::JobRuntime& job) override;
  std::size_t SelectNextIndex(const sched::WorkerState& worker) override;
  void OnHeartbeat(cluster::MachineId lo, cluster::MachineId hi) override;
  bool UseStickyBatchProbing(const sched::JobRuntime& job) const override;
  void OnEntryEnqueued(const sched::WorkerState& worker,
                       const sched::QueueEntry& entry) override;
  void OnEntryDequeued(const sched::WorkerState& worker,
                       const sched::QueueEntry& entry) override;

 private:
  /// True if the job's effective constraints touch the hottest dimension of
  /// `snap`.
  bool TouchesHotDim(const sched::JobRuntime& job,
                     const CrvSnapshot& snap) const;

  // ---- Federated CRV views ------------------------------------------------
  //
  // Under federation each shard keeps its own belief of the *global* CRV
  // table: its live territory counters plus fresh gossiped peer digests
  // (federation/plane.h). These accessors pick the right table — the
  // worker's owning shard for queue decisions, the job's home shard for
  // admission — and collapse to the single global snapshot_ when unsharded
  // (or before the first federated heartbeat).

  /// Refreshes shard's reconstructed global CRV table from the plane.
  void RefreshShardCrv(std::uint32_t shard);
  const CrvSnapshot& SnapshotFor(cluster::MachineId wid) const;
  bool CongestedFor(cluster::MachineId wid) const;
  const CrvSnapshot& JobSnapshot(const sched::JobRuntime& job) const;
  bool JobCongested(const sched::JobRuntime& job) const;
  /// Per-constraint CRV delta of a queue transition in `wid`'s territory,
  /// pushed into the shard's gossiped digest.
  void FederatedQueuedDelta(cluster::MachineId wid,
                            const cluster::ConstraintSet& cs, double sign);

  /// Lands one worker's heartbeat E[W] report at the CRV monitor: refreshes
  /// the published wait estimate and the CRV reorder mark. Under the ideal
  /// fabric this is applied synchronously at the tick; otherwise each
  /// report transits the fabric, so drops/delays leave stale estimates —
  /// the eventual-consistency failure mode the netplane bench studies.
  void ApplyWaitReport(sched::WorkerState& w, double estimate);

  static constexpr std::size_t kMaxHistory = 4096;

  CrvMonitor monitor_;
  AdmissionController admission_;
  CrvSnapshot snapshot_;
  bool congested_ = false;
  std::vector<CrvSample> history_;
  /// Federated per-shard beliefs (empty unsharded and until the first
  /// federated heartbeat sizes them).
  std::vector<CrvSnapshot> shard_snapshots_;
  std::vector<std::uint8_t> shard_congested_;
};

}  // namespace phoenix::core
