// Constraint Resource Vector accounting (paper §IV-A).
//
// The CRV_Monitor tracks, per CRV dimension <cpu, mem, disk, os, clock,
// net_bandwidth>, the demand/supply ratio of constrained work currently
// queued in the cluster. Demand and supply are combined per queued
// constraint: a queued entry with a constraint whose satisfying pool has P
// machines contributes 1/P to its dimension — i.e. the ratio is "queued
// tasks per machine able to serve them", directly comparable across
// dimensions and thresholds (ratio 1.0 = one queued task per capable
// machine). Counters update incrementally on enqueue/dequeue; Phoenix
// snapshots them into the CRV_Lookup_Table every heartbeat.
// With an elastic membership view attached, supply is the *eligible*
// (active-machine) pool instead of the full universe, and demand is kept per
// distinct queued predicate so ratios can be recomputed after membership
// churn and the elasticity controller can ask which predicates are hottest
// (HotPredicates — the input to CRV-aware supply shaping).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/membership.h"

namespace phoenix::core {

/// The CRV_Lookup_Table contents at one heartbeat.
struct CrvSnapshot {
  std::array<double, cluster::kNumCrvDims> ratio{};
  std::array<std::uint64_t, cluster::kNumCrvDims> demand{};
  double max_ratio = 0;
  cluster::CrvDim max_dim = cluster::CrvDim::kCpu;

  bool CongestedAbove(double threshold) const { return max_ratio > threshold; }
  double RatioFor(cluster::CrvDim dim) const {
    return ratio[static_cast<std::size_t>(dim)];
  }

  std::string ToString() const;
};

class CrvMonitor {
 public:
  explicit CrvMonitor(const cluster::Cluster& cluster);

  /// Switches supply accounting to the eligible (active) pools of `view`.
  /// Call before any enqueue; with a view the monitor keeps per-predicate
  /// demand counts and recomputes ratios at every snapshot, so membership
  /// churn between heartbeats is reflected in the next CRV table. Without a
  /// view the original incremental static-pool path runs, byte-identical.
  void AttachMembership(const cluster::MembershipView* view);

  /// A constrained entry entered / left a worker queue.
  void OnEnqueue(const cluster::ConstraintSet& cs);
  void OnDequeue(const cluster::ConstraintSet& cs);

  /// Computes the current demand/supply ratios (Algorithm 1's
  /// CRV_Lookup_Table refresh).
  CrvSnapshot TakeSnapshot() const;

  /// Queued entries currently demanding `dim`.
  std::uint64_t DemandFor(cluster::CrvDim dim) const {
    return static_cast<std::uint64_t>(
        demand_[static_cast<std::size_t>(dim)]);
  }

  /// One distinct queued predicate with its queued-entry count and current
  /// eligible supply — the demand/supply detail behind a dimension's ratio.
  struct PredicateDemand {
    cluster::Constraint constraint;
    std::uint64_t count = 0;   // queued entries demanding this predicate
    std::uint64_t supply = 0;  // active machines satisfying it
  };

  /// Distinct queued predicates on `dim`, hottest (highest count) first,
  /// encoded-key ascending among ties. Empty without an attached view —
  /// per-predicate tracking only runs under elasticity.
  std::vector<PredicateDemand> HotPredicates(cluster::CrvDim dim) const;

 private:
  struct PredEntry {
    cluster::Constraint constraint;
    std::uint64_t count = 0;
  };

  const cluster::Cluster& cluster_;
  const cluster::MembershipView* view_ = nullptr;
  std::array<std::int64_t, cluster::kNumCrvDims> demand_{};
  std::array<double, cluster::kNumCrvDims> load_{};  // sum of 1/pool
  /// Per-predicate demand, keyed by cluster::EncodePredicate (view mode).
  std::map<std::uint32_t, PredEntry> pred_demand_;
};

}  // namespace phoenix::core
