// Constraint Resource Vector accounting (paper §IV-A).
//
// The CRV_Monitor tracks, per CRV dimension <cpu, mem, disk, os, clock,
// net_bandwidth>, the demand/supply ratio of constrained work currently
// queued in the cluster. Demand and supply are combined per queued
// constraint: a queued entry with a constraint whose satisfying pool has P
// machines contributes 1/P to its dimension — i.e. the ratio is "queued
// tasks per machine able to serve them", directly comparable across
// dimensions and thresholds (ratio 1.0 = one queued task per capable
// machine). Counters update incrementally on enqueue/dequeue; Phoenix
// snapshots them into the CRV_Lookup_Table every heartbeat.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "cluster/cluster.h"

namespace phoenix::core {

/// The CRV_Lookup_Table contents at one heartbeat.
struct CrvSnapshot {
  std::array<double, cluster::kNumCrvDims> ratio{};
  std::array<std::uint64_t, cluster::kNumCrvDims> demand{};
  double max_ratio = 0;
  cluster::CrvDim max_dim = cluster::CrvDim::kCpu;

  bool CongestedAbove(double threshold) const { return max_ratio > threshold; }
  double RatioFor(cluster::CrvDim dim) const {
    return ratio[static_cast<std::size_t>(dim)];
  }

  std::string ToString() const;
};

class CrvMonitor {
 public:
  explicit CrvMonitor(const cluster::Cluster& cluster);

  /// A constrained entry entered / left a worker queue.
  void OnEnqueue(const cluster::ConstraintSet& cs);
  void OnDequeue(const cluster::ConstraintSet& cs);

  /// Computes the current demand/supply ratios (Algorithm 1's
  /// CRV_Lookup_Table refresh).
  CrvSnapshot TakeSnapshot() const;

  /// Queued entries currently demanding `dim`.
  std::uint64_t DemandFor(cluster::CrvDim dim) const {
    return static_cast<std::uint64_t>(
        demand_[static_cast<std::size_t>(dim)]);
  }

 private:
  const cluster::Cluster& cluster_;
  std::array<std::int64_t, cluster::kNumCrvDims> demand_{};
  std::array<double, cluster::kNumCrvDims> load_{};  // sum of 1/pool
};

}  // namespace phoenix::core
