// Constraint Resource Vector accounting (paper §IV-A).
//
// The CRV_Monitor tracks, per CRV dimension <cpu, mem, disk, os, clock,
// net_bandwidth>, the demand/supply ratio of constrained work currently
// queued in the cluster. Demand and supply are combined per queued
// constraint: a queued entry with a constraint whose satisfying pool has P
// machines contributes 1/P to its dimension — i.e. the ratio is "queued
// tasks per machine able to serve them", directly comparable across
// dimensions and thresholds (ratio 1.0 = one queued task per capable
// machine). Counters update incrementally on enqueue/dequeue; Phoenix
// snapshots them into the CRV_Lookup_Table every heartbeat.
// With an elastic membership view attached, supply is the *eligible*
// (active-machine) pool instead of the full universe, and demand is kept per
// distinct queued predicate so ratios can be recomputed after membership
// churn and the elasticity controller can ask which predicates are hottest
// (HotPredicates — the input to CRV-aware supply shaping).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/membership.h"
#include "util/flat_hash.h"

namespace phoenix::core {

/// The CRV_Lookup_Table contents at one heartbeat.
struct CrvSnapshot {
  std::array<double, cluster::kNumCrvDims> ratio{};
  std::array<std::uint64_t, cluster::kNumCrvDims> demand{};
  double max_ratio = 0;
  cluster::CrvDim max_dim = cluster::CrvDim::kCpu;

  bool CongestedAbove(double threshold) const { return max_ratio > threshold; }
  double RatioFor(cluster::CrvDim dim) const {
    return ratio[static_cast<std::size_t>(dim)];
  }

  std::string ToString() const;
};

class CrvMonitor {
 public:
  explicit CrvMonitor(const cluster::Cluster& cluster);

  /// Switches supply accounting to the eligible (active) pools of `view`.
  /// Call before any enqueue; with a view the monitor keeps per-predicate
  /// demand counts and recomputes ratios at every snapshot, so membership
  /// churn between heartbeats is reflected in the next CRV table. Without a
  /// view the original incremental static-pool path runs, byte-identical.
  void AttachMembership(const cluster::MembershipView* view);

  /// Wake-latency-aware supply (power management): a parked machine
  /// satisfying a predicate counts as `weight` of a machine in that
  /// predicate's snapshot supply — it can serve the demand, but only after
  /// paying a wake transition. Weight 0 (the default) keeps the ratio math
  /// byte-identical to the power-free build. Requires an attached view.
  void SetParkedSupplyWeight(double weight) { parked_weight_ = weight; }

  /// Residual-capacity supply scale (src/packing): under vector packing one
  /// machine hosts several tasks, so a satisfying pool of P machines offers
  /// roughly P x scale task slots, where scale is the fleet's free-copy
  /// density (SchedulerBase::PackedSupplyScale). Every snapshot pool is
  /// multiplied by the scale before the demand/supply ratio forms. 1.0 (the
  /// default) is branch-gated for byte identity with non-packing builds.
  void SetSupplyScale(double scale) { supply_scale_ = scale; }

  /// A constrained entry entered / left a worker queue.
  void OnEnqueue(const cluster::ConstraintSet& cs);
  void OnDequeue(const cluster::ConstraintSet& cs);

  /// Computes the current demand/supply ratios (Algorithm 1's
  /// CRV_Lookup_Table refresh).
  CrvSnapshot TakeSnapshot() const;

  /// One constraint's ratio contribution, 1/|satisfying pool| over the
  /// machine universe (0 for an empty pool). This is the per-entry load
  /// quantum the federated control plane gossips in its shard digests:
  /// summing it across shards reconstructs the global static-pool ratio.
  /// Universe pools by design — gossip digests carry no membership epoch,
  /// so the federated CRV view prices supply against the full fleet.
  double RatioContribution(const cluster::Constraint& c) { return InvPool(c); }

  /// Queued entries currently demanding `dim`.
  std::uint64_t DemandFor(cluster::CrvDim dim) const {
    return static_cast<std::uint64_t>(
        demand_[static_cast<std::size_t>(dim)]);
  }

  /// One distinct queued predicate with its queued-entry count and current
  /// eligible supply — the demand/supply detail behind a dimension's ratio.
  struct PredicateDemand {
    cluster::Constraint constraint;
    std::uint64_t count = 0;   // queued entries demanding this predicate
    std::uint64_t supply = 0;  // active machines satisfying it
    std::uint64_t parked = 0;  // parked machines that could serve it (power)
  };

  /// Distinct queued predicates on `dim`, hottest (highest count) first,
  /// encoded-key ascending among ties. Empty without an attached view —
  /// per-predicate tracking only runs under elasticity.
  std::vector<PredicateDemand> HotPredicates(cluster::CrvDim dim) const;

 private:
  static constexpr std::uint64_t kNoEpoch = ~std::uint64_t{0};

  struct PredEntry;

  /// Memoized 1/|satisfying pool| for the static-fleet path.
  double InvPool(const cluster::Constraint& c);
  /// Epoch-cached eligible supply for a tracked predicate (view mode).
  /// With a nonzero parked weight the parked pool is refreshed under the
  /// same epoch check.
  std::uint64_t EligibleSupply(PredEntry& entry) const;
  /// Supply with the wake-discounted parked pool folded in (snapshot math).
  double EffectiveSupply(PredEntry& entry) const;

  struct PredEntry {
    cluster::Constraint constraint;
    std::uint64_t count = 0;
    /// Eligible supply, valid while supply_epoch matches the view's epoch.
    /// Snapshots refresh it lazily, so between membership changes a
    /// predicate's supply costs one table read instead of a locked
    /// pool-cache lookup.
    std::uint64_t supply = 0;
    std::uint64_t parked = 0;
    std::uint64_t supply_epoch = kNoEpoch;
  };

  const cluster::Cluster& cluster_;
  const cluster::MembershipView* view_ = nullptr;
  double parked_weight_ = 0;
  double supply_scale_ = 1.0;
  std::array<std::int64_t, cluster::kNumCrvDims> demand_{};
  std::array<double, cluster::kNumCrvDims> load_{};  // sum of 1/pool
  /// Per-predicate demand, keyed by cluster::EncodePredicate (view mode).
  /// Flat open-addressed table plus a sorted key index: the index pins
  /// iteration — and double accumulation — to key-ascending order, matching
  /// the std::map this replaced. Entries whose count drops to zero stay
  /// parked (a trace's predicate vocabulary is small) and are skipped when
  /// iterating. Mutable so const snapshots can refresh epoch-cached
  /// supplies.
  mutable util::FlatHashMap<PredEntry> pred_demand_;
  std::vector<std::uint32_t> pred_keys_;  // sorted, parked keys included
  /// Static-fleet fast path: memoized 1/|satisfying pool| per predicate
  /// (0 for an empty pool). Without a view, pools never move — but
  /// recomputing them charged a fleet-sized popcount per constraint per
  /// queue transition.
  util::FlatHashMap<double> inv_pool_;
};

}  // namespace phoenix::core
