#include "core/crv.h"

#include <algorithm>

#include "util/check.h"
#include "util/format.h"

namespace phoenix::core {

std::string CrvSnapshot::ToString() const {
  std::string out = "CRV{";
  for (std::size_t d = 0; d < cluster::kNumCrvDims; ++d) {
    if (d > 0) out += ", ";
    const auto name = cluster::CrvDimName(static_cast<cluster::CrvDim>(d));
    out += util::StrFormat("%.*s=%.3f", static_cast<int>(name.size()),
                           name.data(), ratio[d]);
  }
  return out + "}";
}

CrvMonitor::CrvMonitor(const cluster::Cluster& cluster) : cluster_(cluster) {}

void CrvMonitor::AttachMembership(const cluster::MembershipView* view) {
  PHOENIX_CHECK_MSG(pred_demand_.empty() && load_ == decltype(load_){},
                    "attach membership before any enqueue");
  view_ = view;
}

void CrvMonitor::OnEnqueue(const cluster::ConstraintSet& cs) {
  for (const auto& c : cs) {
    const auto dim = static_cast<std::size_t>(cluster::AttrToCrvDim(c.attr));
    ++demand_[dim];
    if (view_ != nullptr) {
      // Supply is recomputed at snapshot time (pools move with membership);
      // only the per-predicate demand is maintained incrementally.
      PredEntry& entry = pred_demand_[cluster::EncodePredicate(c)];
      entry.constraint = c;
      ++entry.count;
      continue;
    }
    const std::size_t pool = cluster_.Satisfying(c).Count();
    if (pool > 0) load_[dim] += 1.0 / static_cast<double>(pool);
  }
}

void CrvMonitor::OnDequeue(const cluster::ConstraintSet& cs) {
  for (const auto& c : cs) {
    const auto dim = static_cast<std::size_t>(cluster::AttrToCrvDim(c.attr));
    PHOENIX_CHECK_MSG(demand_[dim] > 0, "CRV demand underflow");
    --demand_[dim];
    if (view_ != nullptr) {
      auto it = pred_demand_.find(cluster::EncodePredicate(c));
      PHOENIX_CHECK_MSG(it != pred_demand_.end() && it->second.count > 0,
                        "CRV predicate demand underflow");
      if (--it->second.count == 0) pred_demand_.erase(it);
      continue;
    }
    const std::size_t pool = cluster_.Satisfying(c).Count();
    if (pool > 0) {
      load_[dim] =
          std::max(0.0, load_[dim] - 1.0 / static_cast<double>(pool));
    }
  }
}

CrvSnapshot CrvMonitor::TakeSnapshot() const {
  CrvSnapshot snap;
  if (view_ != nullptr) {
    // Recompute every ratio against the *current* eligible pools — churn
    // since the last heartbeat moves supply under unchanged demand. A
    // predicate whose eligible pool emptied counts double per queued entry
    // (it is maximally congested until supply returns).
    std::array<double, cluster::kNumCrvDims> ratio{};
    for (const auto& [key, entry] : pred_demand_) {
      (void)key;
      const auto dim = static_cast<std::size_t>(
          cluster::AttrToCrvDim(entry.constraint.attr));
      const std::size_t pool = view_->CountEligible(entry.constraint);
      ratio[dim] += pool > 0 ? static_cast<double>(entry.count) /
                                   static_cast<double>(pool)
                             : 2.0 * static_cast<double>(entry.count);
    }
    for (std::size_t d = 0; d < cluster::kNumCrvDims; ++d) {
      snap.demand[d] = static_cast<std::uint64_t>(demand_[d]);
      snap.ratio[d] = ratio[d];
      if (snap.ratio[d] > snap.max_ratio) {
        snap.max_ratio = snap.ratio[d];
        snap.max_dim = static_cast<cluster::CrvDim>(d);
      }
    }
    return snap;
  }
  for (std::size_t d = 0; d < cluster::kNumCrvDims; ++d) {
    snap.demand[d] = static_cast<std::uint64_t>(demand_[d]);
    snap.ratio[d] = load_[d];
    if (snap.ratio[d] > snap.max_ratio) {
      snap.max_ratio = snap.ratio[d];
      snap.max_dim = static_cast<cluster::CrvDim>(d);
    }
  }
  return snap;
}

std::vector<CrvMonitor::PredicateDemand> CrvMonitor::HotPredicates(
    cluster::CrvDim dim) const {
  std::vector<PredicateDemand> out;
  if (view_ == nullptr) return out;
  for (const auto& [key, entry] : pred_demand_) {
    (void)key;
    if (cluster::AttrToCrvDim(entry.constraint.attr) != dim) continue;
    PredicateDemand pd;
    pd.constraint = entry.constraint;
    pd.count = entry.count;
    pd.supply = view_->CountEligible(entry.constraint);
    out.push_back(pd);
  }
  // Hottest first; map iteration already yields key-ascending order, and
  // stable_sort preserves it among equal counts.
  std::stable_sort(out.begin(), out.end(),
                   [](const PredicateDemand& a, const PredicateDemand& b) {
                     return a.count > b.count;
                   });
  return out;
}

}  // namespace phoenix::core
