#include "core/crv.h"

#include <algorithm>

#include "util/check.h"
#include "util/format.h"

namespace phoenix::core {

std::string CrvSnapshot::ToString() const {
  std::string out = "CRV{";
  for (std::size_t d = 0; d < cluster::kNumCrvDims; ++d) {
    if (d > 0) out += ", ";
    const auto name = cluster::CrvDimName(static_cast<cluster::CrvDim>(d));
    out += util::StrFormat("%.*s=%.3f", static_cast<int>(name.size()),
                           name.data(), ratio[d]);
  }
  return out + "}";
}

CrvMonitor::CrvMonitor(const cluster::Cluster& cluster) : cluster_(cluster) {}

void CrvMonitor::AttachMembership(const cluster::MembershipView* view) {
  PHOENIX_CHECK_MSG(pred_demand_.empty() && load_ == decltype(load_){},
                    "attach membership before any enqueue");
  view_ = view;
}

double CrvMonitor::InvPool(const cluster::Constraint& c) {
  const std::uint32_t key = cluster::EncodePredicate(c);
  if (const double* cached = inv_pool_.Find(key)) return *cached;
  const std::size_t pool = cluster_.Satisfying(c).Count();
  const double inv = pool > 0 ? 1.0 / static_cast<double>(pool) : 0.0;
  inv_pool_[key] = inv;
  return inv;
}

void CrvMonitor::OnEnqueue(const cluster::ConstraintSet& cs) {
  for (const auto& c : cs) {
    const auto dim = static_cast<std::size_t>(cluster::AttrToCrvDim(c.attr));
    ++demand_[dim];
    if (view_ != nullptr) {
      // Supply is refreshed at snapshot time (pools move with membership);
      // only the per-predicate demand is maintained incrementally.
      const std::uint32_t key = cluster::EncodePredicate(c);
      PredEntry* entry = pred_demand_.Find(key);
      if (entry == nullptr) {
        entry = &pred_demand_[key];
        entry->constraint = c;
        pred_keys_.insert(
            std::lower_bound(pred_keys_.begin(), pred_keys_.end(), key), key);
      }
      ++entry->count;
      continue;
    }
    load_[dim] += InvPool(c);
  }
}

void CrvMonitor::OnDequeue(const cluster::ConstraintSet& cs) {
  for (const auto& c : cs) {
    const auto dim = static_cast<std::size_t>(cluster::AttrToCrvDim(c.attr));
    PHOENIX_CHECK_MSG(demand_[dim] > 0, "CRV demand underflow");
    --demand_[dim];
    if (view_ != nullptr) {
      PredEntry* entry = pred_demand_.Find(cluster::EncodePredicate(c));
      PHOENIX_CHECK_MSG(entry != nullptr && entry->count > 0,
                        "CRV predicate demand underflow");
      --entry->count;  // parked at zero; iteration skips it
      continue;
    }
    load_[dim] = std::max(0.0, load_[dim] - InvPool(c));
  }
}

std::uint64_t CrvMonitor::EligibleSupply(PredEntry& entry) const {
  const std::uint64_t epoch = view_->epoch();
  if (entry.supply_epoch != epoch) {
    entry.supply = view_->CountEligible(entry.constraint);
    entry.parked = parked_weight_ > 0
                       ? view_->CountParkedSatisfying(entry.constraint)
                       : 0;
    entry.supply_epoch = epoch;
  }
  return entry.supply;
}

double CrvMonitor::EffectiveSupply(PredEntry& entry) const {
  const std::uint64_t awake = EligibleSupply(entry);
  if (parked_weight_ <= 0) return static_cast<double>(awake);
  return static_cast<double>(awake) +
         parked_weight_ * static_cast<double>(entry.parked);
}

CrvSnapshot CrvMonitor::TakeSnapshot() const {
  CrvSnapshot snap;
  if (view_ != nullptr) {
    // Recompute every ratio against the *current* eligible pools — churn
    // since the last heartbeat moves supply under unchanged demand. A
    // predicate whose eligible pool emptied counts double per queued entry
    // (it is maximally congested until supply returns).
    std::array<double, cluster::kNumCrvDims> ratio{};
    for (const std::uint32_t key : pred_keys_) {
      PredEntry& entry = *pred_demand_.Find(key);
      if (entry.count == 0) continue;
      const auto dim = static_cast<std::size_t>(
          cluster::AttrToCrvDim(entry.constraint.attr));
      // A parked satisfying machine is wake-discounted supply: demand that
      // could be absorbed after a wake transition reads as less congested
      // than demand with no machine anywhere, so the CRV table distinguishes
      // "wake something" from "nothing can serve this".
      double pool = EffectiveSupply(entry);
      // Packed supply: P machines advertise P x scale concurrent task slots.
      if (supply_scale_ != 1.0) pool *= supply_scale_;
      ratio[dim] += pool > 0 ? static_cast<double>(entry.count) / pool
                             : 2.0 * static_cast<double>(entry.count);
    }
    for (std::size_t d = 0; d < cluster::kNumCrvDims; ++d) {
      snap.demand[d] = static_cast<std::uint64_t>(demand_[d]);
      snap.ratio[d] = ratio[d];
      if (snap.ratio[d] > snap.max_ratio) {
        snap.max_ratio = snap.ratio[d];
        snap.max_dim = static_cast<cluster::CrvDim>(d);
      }
    }
    return snap;
  }
  for (std::size_t d = 0; d < cluster::kNumCrvDims; ++d) {
    snap.demand[d] = static_cast<std::uint64_t>(demand_[d]);
    // load_ is Sigma demand/supply; scaling every pool by s divides it by s.
    snap.ratio[d] = supply_scale_ != 1.0 ? load_[d] / supply_scale_ : load_[d];
    if (snap.ratio[d] > snap.max_ratio) {
      snap.max_ratio = snap.ratio[d];
      snap.max_dim = static_cast<cluster::CrvDim>(d);
    }
  }
  return snap;
}

std::vector<CrvMonitor::PredicateDemand> CrvMonitor::HotPredicates(
    cluster::CrvDim dim) const {
  std::vector<PredicateDemand> out;
  if (view_ == nullptr) return out;
  for (const std::uint32_t key : pred_keys_) {
    PredEntry& entry = *pred_demand_.Find(key);
    if (entry.count == 0) continue;
    if (cluster::AttrToCrvDim(entry.constraint.attr) != dim) continue;
    PredicateDemand pd;
    pd.constraint = entry.constraint;
    pd.count = entry.count;
    pd.supply = EligibleSupply(entry);
    pd.parked = entry.parked;
    out.push_back(pd);
  }
  // Hottest first; the key index yields key-ascending order, and
  // stable_sort preserves it among equal counts.
  std::stable_sort(out.begin(), out.end(),
                   [](const PredicateDemand& a, const PredicateDemand& b) {
                     return a.count > b.count;
                   });
  return out;
}

}  // namespace phoenix::core
