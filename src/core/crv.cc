#include "core/crv.h"

#include <algorithm>

#include "util/check.h"
#include "util/format.h"

namespace phoenix::core {

std::string CrvSnapshot::ToString() const {
  std::string out = "CRV{";
  for (std::size_t d = 0; d < cluster::kNumCrvDims; ++d) {
    if (d > 0) out += ", ";
    const auto name = cluster::CrvDimName(static_cast<cluster::CrvDim>(d));
    out += util::StrFormat("%.*s=%.3f", static_cast<int>(name.size()),
                           name.data(), ratio[d]);
  }
  return out + "}";
}

CrvMonitor::CrvMonitor(const cluster::Cluster& cluster) : cluster_(cluster) {}

void CrvMonitor::OnEnqueue(const cluster::ConstraintSet& cs) {
  for (const auto& c : cs) {
    const auto dim = static_cast<std::size_t>(cluster::AttrToCrvDim(c.attr));
    const std::size_t pool = cluster_.Satisfying(c).Count();
    ++demand_[dim];
    if (pool > 0) load_[dim] += 1.0 / static_cast<double>(pool);
  }
}

void CrvMonitor::OnDequeue(const cluster::ConstraintSet& cs) {
  for (const auto& c : cs) {
    const auto dim = static_cast<std::size_t>(cluster::AttrToCrvDim(c.attr));
    const std::size_t pool = cluster_.Satisfying(c).Count();
    PHOENIX_CHECK_MSG(demand_[dim] > 0, "CRV demand underflow");
    --demand_[dim];
    if (pool > 0) {
      load_[dim] =
          std::max(0.0, load_[dim] - 1.0 / static_cast<double>(pool));
    }
  }
}

CrvSnapshot CrvMonitor::TakeSnapshot() const {
  CrvSnapshot snap;
  for (std::size_t d = 0; d < cluster::kNumCrvDims; ++d) {
    snap.demand[d] = static_cast<std::uint64_t>(demand_[d]);
    snap.ratio[d] = load_[d];
    if (snap.ratio[d] > snap.max_ratio) {
      snap.max_ratio = snap.ratio[d];
      snap.max_dim = static_cast<cluster::CrvDim>(d);
    }
  }
  return snap;
}

}  // namespace phoenix::core
