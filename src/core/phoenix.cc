#include "core/phoenix.h"

#include <algorithm>

#include "power/manager.h"

namespace phoenix::core {

using cluster::MachineId;
using sched::JobRuntime;
using sched::QueueEntry;
using sched::WorkerState;

PhoenixScheduler::PhoenixScheduler(sim::Engine& engine,
                                   const cluster::Cluster& cluster,
                                   const sched::SchedulerConfig& config)
    : EagleScheduler(engine, cluster, config),
      monitor_(cluster),
      admission_(cluster, config.crv_threshold, config.soft_relax_penalty,
                 config.phoenix_max_relaxations) {}

void PhoenixScheduler::SetMembership(cluster::MembershipView* membership) {
  EagleScheduler::SetMembership(membership);
  monitor_.AttachMembership(membership);
  admission_.AttachMembership(membership);
}

void PhoenixScheduler::SetPower(power::PowerManager* power) {
  EagleScheduler::SetPower(power);
  monitor_.SetParkedSupplyWeight(power->config().policy.parked_supply_weight);
}

void PhoenixScheduler::AdmitJob(JobRuntime& job) {
  // Forced relaxation first (unsatisfiable sets must still run somewhere)…
  EagleScheduler::AdmitJob(job);
  // …then proactive negotiation against the congested dimensions, as the
  // job's home shard believes them under federation.
  if (config().phoenix_admission) {
    const std::size_t relaxed = admission_.Negotiate(job, JobSnapshot(job));
    counters().soft_constraints_relaxed += relaxed;
    if (relaxed > 0) {
      Emit(obs::EventType::kAdmissionRelax, job.id, obs::kNoId, obs::kNoId,
           static_cast<double>(relaxed));
    }
  }
}

void PhoenixScheduler::ApplyWaitReport(WorkerState& w, double estimate) {
  w.last_wait_estimate = estimate;
  w.crv_marked = CongestedFor(w.id) && estimate > config().qwait_threshold;
}

void PhoenixScheduler::RefreshShardCrv(std::uint32_t shard) {
  if (shard_snapshots_.empty()) {
    shard_snapshots_.resize(federation()->num_shards());
    shard_congested_.assign(federation()->num_shards(), 0);
  }
  std::array<std::uint64_t, cluster::kNumCrvDims> demand{};
  const auto load = federation()->GlobalCrvLoad(shard, &demand);
  CrvSnapshot snap;
  for (std::size_t d = 0; d < cluster::kNumCrvDims; ++d) {
    snap.ratio[d] = load[d];
    snap.demand[d] = demand[d];
    if (snap.ratio[d] > snap.max_ratio) {
      snap.max_ratio = snap.ratio[d];
      snap.max_dim = static_cast<cluster::CrvDim>(d);
    }
  }
  shard_snapshots_[shard] = snap;
  shard_congested_[shard] =
      snap.CongestedAbove(config().crv_threshold) ? 1 : 0;
}

const CrvSnapshot& PhoenixScheduler::SnapshotFor(MachineId wid) const {
  if (federation() == nullptr || shard_snapshots_.empty()) return snapshot_;
  return shard_snapshots_[federation()->shard_of(wid)];
}

bool PhoenixScheduler::CongestedFor(MachineId wid) const {
  if (federation() == nullptr || shard_congested_.empty()) return congested_;
  return shard_congested_[federation()->shard_of(wid)] != 0;
}

const CrvSnapshot& PhoenixScheduler::JobSnapshot(const JobRuntime& job) const {
  if (federation() == nullptr || shard_snapshots_.empty()) return snapshot_;
  return shard_snapshots_[federation()->HomeShard(job.id)];
}

bool PhoenixScheduler::JobCongested(const JobRuntime& job) const {
  if (federation() == nullptr || shard_congested_.empty()) return congested_;
  return shard_congested_[federation()->HomeShard(job.id)] != 0;
}

void PhoenixScheduler::FederatedQueuedDelta(MachineId wid,
                                            const cluster::ConstraintSet& cs,
                                            double sign) {
  const std::uint32_t shard = federation()->shard_of(wid);
  for (const auto& c : cs) {
    federation()->OnQueuedDelta(
        shard, static_cast<std::size_t>(cluster::AttrToCrvDim(c.attr)),
        monitor_.RatioContribution(c), sign);
  }
}

void PhoenixScheduler::OnHeartbeat(MachineId lo, MachineId hi) {
  EagleScheduler::OnHeartbeat(lo, hi);  // idle-worker steal retry
  if (federation() == nullptr) {
    if (packing_on()) {
      // Weight CRV supply by residual packed capacity: a pool of P machines
      // advertises P x free-copy-density task slots this heartbeat.
      monitor_.SetSupplyScale(PackedSupplyScale());
    }
    snapshot_ = monitor_.TakeSnapshot();
    congested_ = snapshot_.CongestedAbove(config().crv_threshold);
  } else {
    // The tick's shard reconstructs its belief of the global CRV table
    // from its live territory counters plus fresh gossiped peer digests.
    RefreshShardCrv(federation()->shard_of(lo));
  }
  const bool ideal_net = fabric().FastPath();
  bool any_marked = false;
  for (MachineId i = lo; i < hi; ++i) {
    WorkerState& w = worker(i);
    const double estimate = w.estimator.EstimateWait();
    if (ideal_net) {
      ApplyWaitReport(w, estimate);
    } else {
      // Worker-side E[W] reports transit the fabric to the CRV monitor as
      // unreliable datagrams (the next tick supersedes them, so no retry):
      // a dropped or delayed report leaves the previous, stale estimate
      // steering probe placement until the next heartbeat lands.
      fabric().Send(w.id, net::kControllerNode,
                    net::MessageKind::kHeartbeatReport, one_way(),
                    [this, wid = w.id, estimate] {
                      ApplyWaitReport(worker(wid), estimate);
                      return true;
                    });
    }
    any_marked = any_marked || w.crv_marked;
  }
  // The tick's own table: the global snapshot unsharded, the refreshed
  // shard belief under federation.
  const CrvSnapshot& snap = SnapshotFor(lo);
  const bool cong = CongestedFor(lo);
  if (cong && any_marked) ++counters().crv_reorder_rounds;
  if (tracing()) {
    // Export the refreshed CRV_Lookup_Table row by row (dimension in the
    // task field, ratio in the value) — the timeseries sink reassembles
    // these into the per-heartbeat CRV history table.
    for (std::size_t d = 0; d < cluster::kNumCrvDims; ++d) {
      Emit(obs::EventType::kCrvSnapshot, obs::kNoId, obs::kNoId,
           static_cast<std::uint32_t>(d), snap.ratio[d]);
    }
  }

  // Record the refresh; decimate by dropping every other sample once the
  // cap is hit, so arbitrarily long runs keep a bounded, uniform history.
  history_.push_back({engine().Now(), snap, cong});
  if (history_.size() >= kMaxHistory) {
    std::vector<CrvSample> halved;
    halved.reserve(history_.size() / 2 + 1);
    for (std::size_t i = 0; i < history_.size(); i += 2) {
      halved.push_back(history_[i]);
    }
    history_ = std::move(halved);
  }
}

bool PhoenixScheduler::TouchesHotDim(const JobRuntime& job,
                                     const CrvSnapshot& snap) const {
  for (const auto& c : job.effective) {
    if (cluster::AttrToCrvDim(c.attr) == snap.max_dim) return true;
  }
  return false;
}

std::size_t PhoenixScheduler::SelectNextIndex(const WorkerState& worker) {
  if (!config().phoenix_crv_reorder ||
      !(CongestedFor(worker.id) && worker.crv_marked)) {
    return EagleScheduler::SelectNextIndex(worker);  // SRPT + slack
  }
  // CRV-based reordering: among *short* entries demanding the hottest
  // dimension, run the shortest first; entries on cooler dimensions (or
  // none) wait. Long bound tasks are never promoted — the reordering
  // exists to pull latency-critical constrained work forward.
  const CrvSnapshot& snap = SnapshotFor(worker.id);
  std::size_t best = SIZE_MAX;
  for (std::size_t i = 0; i < worker.queue.size(); ++i) {
    if (!worker.queue[i].short_class) continue;
    if (!TouchesHotDim(runtime(worker.queue[i].job), snap)) continue;
    if (best == SIZE_MAX ||
        worker.queue[i].est_duration < worker.queue[best].est_duration) {
      best = i;
    }
  }
  if (best == SIZE_MAX) {
    return EagleScheduler::SelectNextIndex(worker);
  }
  const std::size_t index = IndexRespectingSlack(worker, best);
  if (index != 0) {
    ++counters().tasks_reordered_crv;
    Emit(obs::EventType::kCrvReorder, worker.queue[index].job, worker.id,
         static_cast<std::uint32_t>(index),
         worker.queue[index].est_duration);
  }
  return index;
}

std::vector<MachineId> PhoenixScheduler::ChooseProbeTargets(
    const JobRuntime& job) {
  if (!config().phoenix_wait_aware_probes) {
    return EagleScheduler::ChooseProbeTargets(job);
  }
  const std::size_t wanted = config().probe_ratio * job.num_tasks();
  // Over-sample through Eagle's SSS-aware path, then keep the targets with
  // the lowest heartbeat E[W] estimates. Sampling is with replacement, so
  // the doubled draw carries duplicates — dedupe before ranking (probing
  // the same queue twice buys nothing), and rank with a partial sort: only
  // the best `wanted` need ordering, not the whole candidate list. The
  // MachineId tie-break keeps the selection deterministic (partial_sort is
  // unstable, and E[W] estimates tie often right after a heartbeat).
  std::vector<MachineId> candidates = EagleScheduler::ChooseProbeTargets(job);
  {
    std::vector<MachineId> more = EagleScheduler::ChooseProbeTargets(job);
    candidates.insert(candidates.end(), more.begin(), more.end());
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  if (candidates.size() <= wanted) return candidates;
  std::partial_sort(candidates.begin(),
                    candidates.begin() + static_cast<std::ptrdiff_t>(wanted),
                    candidates.end(), [this](MachineId a, MachineId b) {
                      const double wa = worker(a).last_wait_estimate;
                      const double wb = worker(b).last_wait_estimate;
                      if (wa != wb) return wa < wb;
                      return a < b;
                    });
  candidates.resize(wanted);
  return candidates;
}

bool PhoenixScheduler::UseStickyBatchProbing(const JobRuntime& job) const {
  // Stickiness is suspended during congested periods: it commits work to a
  // queue whose wait the CRV table says is mispriced (§VI-A).
  if (config().phoenix_suspend_sbp && JobCongested(job)) return false;
  return EagleScheduler::UseStickyBatchProbing(job);
}

void PhoenixScheduler::OnEntryEnqueued(const WorkerState& worker,
                                       const QueueEntry& entry) {
  EagleScheduler::OnEntryEnqueued(worker, entry);
  const cluster::ConstraintSet& cs = runtime(entry.job).effective;
  monitor_.OnEnqueue(cs);
  if (federation() != nullptr) FederatedQueuedDelta(worker.id, cs, +1);
}

void PhoenixScheduler::OnEntryDequeued(const WorkerState& worker,
                                       const QueueEntry& entry) {
  EagleScheduler::OnEntryDequeued(worker, entry);
  const cluster::ConstraintSet& cs = runtime(entry.job).effective;
  monitor_.OnDequeue(cs);
  if (federation() != nullptr) FederatedQueuedDelta(worker.id, cs, -1);
}

}  // namespace phoenix::core
