// Proactive admission control (paper contribution #2).
//
// When the CRV table shows a dimension congested beyond the threshold,
// Phoenix negotiates the *soft* constraints of newly arriving short jobs
// that touch the hot dimensions: the constraint is relaxed (dropped) in
// exchange for a modeled per-constraint service-time penalty, widening the
// candidate pool and keeping the job off the congested queues. Hard
// constraints are never relaxed here.
#pragma once

#include "cluster/cluster.h"
#include "core/crv.h"
#include "sched/types.h"

namespace phoenix::core {

class AdmissionController {
 public:
  AdmissionController(const cluster::Cluster& cluster, double crv_threshold,
                      double soft_relax_penalty, std::size_t max_relaxations);

  /// Negotiates against the eligible (active) pools of `view` instead of the
  /// full universe. Relaxation only ever widens a pool, so this is safe
  /// under churn; it makes the pool-scarcity gate see the fleet the job
  /// will actually be placed on.
  void AttachMembership(const cluster::MembershipView* view) { view_ = view; }

  /// Negotiates `job`'s soft constraints against the current CRV snapshot.
  /// Returns the number of constraints relaxed; updates job.effective and
  /// job.duration_multiplier.
  std::size_t Negotiate(sched::JobRuntime& job, const CrvSnapshot& snapshot);

 private:
  std::size_t Pool(const cluster::ConstraintSet& cs) const;
  std::size_t FleetSize() const;

  const cluster::Cluster& cluster_;
  const cluster::MembershipView* view_ = nullptr;
  double crv_threshold_;
  double soft_relax_penalty_;
  std::size_t max_relaxations_;
};

}  // namespace phoenix::core
