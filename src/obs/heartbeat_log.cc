#include "obs/heartbeat_log.h"

#include <cstdio>

namespace phoenix::obs {

void HeartbeatLog::OnEvent(const Event& event) {
  if (event.type == EventType::kCrvSnapshot && event.task != kNoId) {
    crv_.push_back({event.time, event.task, event.value});
  }
}

void HeartbeatLog::OnWorkerSample(const WorkerSample& sample) {
  samples_.push_back(sample);
}

bool HeartbeatLog::WriteTsv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs(
      "time\tmachine\tqueue_len\test_queued_work\twait_estimate\t"
      "crv_marked\tbusy\tfailed\n",
      f);
  for (const WorkerSample& s : samples_) {
    std::fprintf(f, "%.6f\t%u\t%u\t%.9g\t%.9g\t%d\t%d\t%d\n", s.time,
                 s.machine, s.queue_len, s.est_queued_work, s.wait_estimate,
                 s.crv_marked ? 1 : 0, s.busy ? 1 : 0, s.failed ? 1 : 0);
  }
  std::fclose(f);
  return true;
}

bool HeartbeatLog::WriteCrvTsv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("time\tdim\tratio\n", f);
  for (const CrvRow& row : crv_) {
    std::fprintf(f, "%.6f\t%u\t%.9g\n", row.time, row.dim, row.ratio);
  }
  std::fclose(f);
  return true;
}

}  // namespace phoenix::obs
