// File-backed event sinks: newline-delimited JSON for ad-hoc analysis and
// the Chrome trace_event JSON-array format for chrome://tracing / Perfetto.
//
// Both writers buffer through stdio and serialize under an internal mutex,
// so a single writer may be shared by concurrent simulations (each record
// is written atomically). Timestamps are simulation seconds in the JSONL
// stream and microseconds in the Chrome stream (the unit trace viewers
// expect).
#pragma once

#include <cstdio>
#include <mutex>
#include <string>

#include "obs/event.h"

namespace phoenix::obs {

/// One JSON object per line: {"t":..,"type":"probe_send","job":..,...}.
/// Worker samples are written as {"type":"worker_sample",...} rows.
class JsonlWriter final : public EventSink {
 public:
  explicit JsonlWriter(const std::string& path);
  ~JsonlWriter() override;

  JsonlWriter(const JsonlWriter&) = delete;
  JsonlWriter& operator=(const JsonlWriter&) = delete;

  /// False if the file could not be opened (events are then dropped).
  bool ok() const { return file_ != nullptr; }

  void OnEvent(const Event& event) override;
  void OnWorkerSample(const WorkerSample& sample) override;
  void Flush() override;

 private:
  std::mutex mu_;
  std::FILE* file_ = nullptr;
};

/// Chrome trace_event writer (the `--trace-out` target).
///
/// Mapping: task completions become "X" (complete) slices on the executing
/// machine's track, so a run renders as per-worker occupancy lanes;
/// heartbeat queue totals and CRV snapshot ratios become "C" (counter)
/// tracks; everything else is an "i" (instant) marker on its machine's
/// track (or the global track when no machine applies).
class ChromeTraceWriter final : public EventSink {
 public:
  explicit ChromeTraceWriter(const std::string& path);
  ~ChromeTraceWriter() override;

  ChromeTraceWriter(const ChromeTraceWriter&) = delete;
  ChromeTraceWriter& operator=(const ChromeTraceWriter&) = delete;

  bool ok() const { return file_ != nullptr; }

  void OnEvent(const Event& event) override;
  /// Closes the JSON array. Safe to call more than once.
  void Flush() override;

 private:
  void WriteRecord(const char* ph, const char* name, double ts_us,
                   double dur_us, std::uint32_t tid, const Event& event);

  std::mutex mu_;
  std::FILE* file_ = nullptr;
  bool first_ = true;
  bool closed_ = false;
};

}  // namespace phoenix::obs
