// Online invariant auditor.
//
// Consumes the observability event stream during a run and checks the
// conservation laws the scheduler framework promises:
//
//   * probe conservation — every probe sent is eventually resolved,
//     cancelled, declined, or bounced, and a job's outstanding probe
//     balance never goes negative;
//   * task conservation — executions started equal completions plus
//     failure kills, and every job finishes exactly its task count;
//   * machine lifecycle — fail/repair events alternate per machine;
//   * elastic lifecycle — park/provision/commission/drain/retire events
//     follow the legal state machine, no task ever starts on a machine
//     outside the fleet (parked/provisioning/retired), no probe resolves
//     and no steal lands on a non-active machine, and no machine is left
//     provisioning or draining when the run ends (capacity conservation);
//   * message conservation — every control-plane message the fabric sends
//     is eventually delivered, dropped, or expired, exactly once, and none
//     is still in flight when the run drains;
//   * preemption conservation — every kPreemptIssue is matched by exactly
//     one kPreemptRequeue for the same (job, task), none is outstanding at
//     the end of the run, and a preempted task counts as killed in the
//     start/completion balance (so "requeued or completed exactly once"
//     follows from task conservation);
//   * quota non-violation — the post-charge quota fraction carried by
//     kTenantAdmit / kTenantDowngrade stays within [0, 1]: admission never
//     commits a tenant past its machine-second budget;
//   * federated bind conservation — every optimistic cross-shard
//     kFedBindSend is closed by exactly one kFedBindAccept or
//     kFedBindReject for the same (job, task), none is outstanding at the
//     end of the run, an accept never lands on a non-active machine, and
//     no accept/reject appears without its send (stale gossip views may
//     degrade placement into rejects, never into lost or doubled binds);
//   * gossip monotonicity — the digest version carried by each kGossipApply
//     is strictly increasing per (receiver shard, origin shard) pair:
//     a reordered or replayed digest must be dropped, never applied;
//   * power legality + energy conservation — a power park decision lands
//     only on an active/draining machine, a wake only on a parked one, a
//     DVFS step only on an active one, and when the scheduler declares its
//     meter total via ExpectEnergy the kPowerState stream integrated over
//     state dwells (joules = Sigma dwell x watts) must match it;
//   * packed-capacity conservation — per (machine, dimension), claims minus
//     releases (the kPackClaim / kPackRelease stream) never exceed the
//     capacity declared by kPackCapacity, never go negative, and return to
//     exactly zero by the end of the run (no leaked reservation or run);
//   * gang atomicity — a job's kGangReserve events open a reservation round
//     that must be closed by exactly one kGangCommit or kGangAbort, no task
//     of the job starts while a round is open (members start only after the
//     atomic commit), and no round is still open when the run ends;
//   * DAG precedence — per (job, task), kDagReady and kDagRelease each fire
//     at most once, a release requires its ready, no kTaskStart of a DAG
//     job happens without a prior kDagReady for that task (a task never
//     runs before all its predecessors finish), and at the end of the run
//     every DAG job's released count equals its task count;
//   * deadline sanity — kDeadlineMiss fires at most once per job, with a
//     positive lateness, for a job that actually arrived;
//   * worker structure (fed by the scheduler at each heartbeat and at the
//     end of the run) — a busy worker always has a live slot event, a
//     failed worker is never busy, and queues drain by the end of the run.
//
// The auditor only records violations; the runner (or test) decides
// whether to abort. `ok()` + `Summary()` give the verdict.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/event.h"

namespace phoenix::obs {

class InvariantAuditor final : public EventSink {
 public:
  InvariantAuditor() = default;

  void OnEvent(const Event& event) override;

  /// Structural worker check, called by the scheduler that owns the worker
  /// state (the event stream alone cannot see slot/queue internals).
  /// `final_state` additionally requires the worker to be drained.
  /// `out_of_service` marks a machine outside the fleet (parked,
  /// provisioning, or retired) — such a machine must hold no work at all.
  void CheckWorker(double now, std::uint32_t machine, bool busy, bool failed,
                   bool has_live_slot_event, std::size_t queue_len,
                   double est_queued_work, bool final_state,
                   bool out_of_service = false);

  /// Declares the scheduler-side energy integral for the end-of-run energy
  /// conservation check: the kPowerState stream integrated to `horizon`
  /// must match `joules` within a relative tolerance. Call before Finish.
  void ExpectEnergy(double joules, double horizon);

  /// Integral of the observed kPowerState stream with every dwell closed
  /// at `horizon` (the auditor's side of the energy-conservation balance).
  double IntegratedJoules(double horizon) const;

  /// End-of-run conservation checks. Call after the event queue drains.
  void Finish();

  bool ok() const { return violations_.empty(); }
  const std::vector<std::string>& violations() const { return violations_; }
  /// First few violations joined for PHOENIX_CHECK messages.
  std::string Summary() const;

  std::uint64_t events_seen() const { return events_seen_; }
  /// Fabric message accounting (for tests asserting the conservation rule
  /// actually observed traffic).
  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t messages_terminated() const { return messages_terminated_; }
  /// Preemption accounting (for tests asserting the conservation rule
  /// actually observed kill-and-requeue traffic).
  std::uint64_t preemptions_issued() const { return preemptions_issued_; }
  std::uint64_t preemptions_requeued() const { return preemptions_requeued_; }
  /// Federated bind / gossip accounting (for tests asserting the federation
  /// rules actually observed cross-shard traffic).
  std::uint64_t fed_binds_sent() const { return fed_binds_sent_; }
  std::uint64_t fed_binds_closed() const { return fed_binds_closed_; }
  std::uint64_t gossip_applies() const { return gossip_applies_; }
  /// Power accounting (for tests asserting the energy rules observed a
  /// powered run's transition stream).
  std::uint64_t power_events_seen() const { return power_events_seen_; }
  /// Packing accounting (for tests asserting the capacity-conservation and
  /// gang-atomicity rules actually observed packed traffic).
  std::uint64_t pack_claims_seen() const { return pack_claims_seen_; }
  std::uint64_t gang_rounds_opened() const { return gang_rounds_opened_; }
  std::uint64_t gang_rounds_closed() const { return gang_rounds_closed_; }
  /// DAG / deadline accounting (for tests asserting the precedence rules
  /// actually observed workflow traffic).
  std::uint64_t dag_ready_seen() const { return dag_ready_seen_; }
  std::uint64_t dag_releases_seen() const { return dag_releases_seen_; }
  std::uint64_t deadline_misses_seen() const { return deadline_misses_seen_; }

 private:
  struct JobStats {
    bool arrived = false;
    bool done = false;
    std::uint64_t tasks = 0;  // from the arrival event's value
    std::uint64_t probes_sent = 0;
    std::uint64_t probes_resolved = 0;
    std::uint64_t probes_cancelled = 0;
    std::uint64_t probes_declined = 0;
    std::uint64_t probes_bounced = 0;
    std::uint64_t starts = 0;
    std::uint64_t completes = 0;
    std::uint64_t kills = 0;

    std::int64_t OutstandingProbes() const {
      return static_cast<std::int64_t>(probes_sent) -
             static_cast<std::int64_t>(probes_resolved + probes_cancelled +
                                       probes_declined + probes_bounced);
    }
  };

  JobStats& JobFor(std::uint32_t id);
  void Violate(std::string message);
  /// Elastic lifecycle table entry for `machine` (lazily sized; machines
  /// never mentioned by a lifecycle event default to active, matching the
  /// static-fleet world where every machine is always in service).
  std::uint8_t& LifecycleFor(std::uint32_t machine);
  void OnLifecycleEvent(const Event& event);

  std::vector<JobStats> jobs_;
  std::vector<bool> machine_failed_;
  std::vector<std::uint8_t> machine_lifecycle_;
  /// Fabric messages sent but not yet delivered/dropped/expired, by id.
  std::unordered_set<std::uint64_t> inflight_messages_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_terminated_ = 0;
  /// Preempted (job, task) pairs awaiting their kPreemptRequeue.
  std::unordered_set<std::uint64_t> outstanding_preemptions_;
  std::uint64_t preemptions_issued_ = 0;
  std::uint64_t preemptions_requeued_ = 0;
  /// Cross-shard (job, task) binds awaiting their accept/reject handshake.
  std::unordered_set<std::uint64_t> outstanding_fed_binds_;
  /// Last applied digest version per (receiver shard << 32 | origin shard).
  std::unordered_map<std::uint64_t, std::uint64_t> gossip_versions_;
  std::uint64_t fed_binds_sent_ = 0;
  std::uint64_t fed_binds_closed_ = 0;
  std::uint64_t gossip_applies_ = 0;
  /// Per-machine dwell integral of the kPowerState stream.
  struct PowerChannel {
    double watts = 0;
    double last = 0;
    double joules = 0;
    bool seen = false;
  };
  std::vector<PowerChannel> power_channels_;
  std::uint64_t power_events_seen_ = 0;
  /// Packed-capacity ledger per (machine << 3 | dimension): capacity from
  /// kPackCapacity, outstanding = claims - releases.
  struct PackLedger {
    double capacity = 0;
    double outstanding = 0;
    bool declared = false;
  };
  std::unordered_map<std::uint64_t, PackLedger> pack_ledgers_;
  std::uint64_t pack_claims_seen_ = 0;
  /// Gang reservation rounds per job: open until the commit/abort closes it.
  struct GangAudit {
    bool open = false;
    std::uint64_t opens = 0;
    std::uint64_t closes = 0;
  };
  std::unordered_map<std::uint32_t, GangAudit> gang_rounds_;
  std::uint64_t gang_rounds_opened_ = 0;
  std::uint64_t gang_rounds_closed_ = 0;
  /// DAG precedence ledger per job (present only for jobs that emitted a
  /// kDagReady): (job << 32 | task) membership sets enforce the
  /// at-most-once rules, released counts close against the job's task count
  /// at Finish().
  struct DagAudit {
    std::uint64_t ready = 0;
    std::uint64_t released = 0;
  };
  std::unordered_map<std::uint32_t, DagAudit> dag_jobs_;
  std::unordered_set<std::uint64_t> dag_ready_set_;
  std::unordered_set<std::uint64_t> dag_released_set_;
  std::unordered_set<std::uint32_t> deadline_missed_jobs_;
  std::uint64_t dag_ready_seen_ = 0;
  std::uint64_t dag_releases_seen_ = 0;
  std::uint64_t deadline_misses_seen_ = 0;
  bool energy_expected_ = false;
  double expected_joules_ = 0;
  double energy_horizon_ = 0;
  std::vector<std::string> violations_;
  std::uint64_t events_seen_ = 0;
};

}  // namespace phoenix::obs
