#include "obs/event.h"

namespace phoenix::obs {

EventSink::~EventSink() = default;
void EventSink::OnWorkerSample(const WorkerSample&) {}
void EventSink::Flush() {}

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kJobArrival: return "job_arrival";
    case EventType::kJobComplete: return "job_complete";
    case EventType::kAdmissionRelax: return "admission_relax";
    case EventType::kProbeSend: return "probe_send";
    case EventType::kProbeResolve: return "probe_resolve";
    case EventType::kProbeCancel: return "probe_cancel";
    case EventType::kProbeDecline: return "probe_decline";
    case EventType::kProbeBounce: return "probe_bounce";
    case EventType::kTaskStart: return "task_start";
    case EventType::kTaskComplete: return "task_complete";
    case EventType::kTaskKill: return "task_kill";
    case EventType::kStickyFetch: return "sticky_fetch";
    case EventType::kSteal: return "steal";
    case EventType::kCrvReorder: return "crv_reorder";
    case EventType::kCrvSnapshot: return "crv_snapshot";
    case EventType::kMachineFail: return "machine_fail";
    case EventType::kMachineRepair: return "machine_repair";
    case EventType::kHeartbeat: return "heartbeat";
    case EventType::kMsgSend: return "msg_send";
    case EventType::kMsgDeliver: return "msg_deliver";
    case EventType::kMsgDrop: return "msg_drop";
    case EventType::kMsgExpire: return "msg_expire";
    case EventType::kRpcRetry: return "rpc_retry";
    case EventType::kRpcFail: return "rpc_fail";
    case EventType::kPartitionStart: return "partition_start";
    case EventType::kPartitionEnd: return "partition_end";
    case EventType::kMachinePark: return "machine_park";
    case EventType::kMachineProvision: return "machine_provision";
    case EventType::kMachineCommission: return "machine_commission";
    case EventType::kMachineDrain: return "machine_drain";
    case EventType::kMachineRetire: return "machine_retire";
    case EventType::kMachineReclaim: return "machine_reclaim";
    case EventType::kTenantAdmit: return "tenant_admit";
    case EventType::kTenantReject: return "tenant_reject";
    case EventType::kTenantDowngrade: return "tenant_downgrade";
    case EventType::kPreemptIssue: return "preempt_issue";
    case EventType::kPreemptRequeue: return "preempt_requeue";
    case EventType::kGossipPublish: return "gossip_publish";
    case EventType::kGossipApply: return "gossip_apply";
    case EventType::kFedBindSend: return "fed_bind_send";
    case EventType::kFedBindAccept: return "fed_bind_accept";
    case EventType::kFedBindReject: return "fed_bind_reject";
    case EventType::kPowerState: return "power_state";
    case EventType::kPowerPark: return "power_park";
    case EventType::kPowerWake: return "power_wake";
    case EventType::kPowerDvfs: return "power_dvfs";
    case EventType::kPackCapacity: return "pack_capacity";
    case EventType::kPackClaim: return "pack_claim";
    case EventType::kPackRelease: return "pack_release";
    case EventType::kGangReserve: return "gang_reserve";
    case EventType::kGangCommit: return "gang_commit";
    case EventType::kGangAbort: return "gang_abort";
    case EventType::kMalleableWidth: return "malleable_width";
    case EventType::kDagReady: return "dag_ready";
    case EventType::kDagRelease: return "dag_release";
    case EventType::kDeadlineMiss: return "deadline_miss";
  }
  return "?";
}

}  // namespace phoenix::obs
