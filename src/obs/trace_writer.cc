#include "obs/trace_writer.h"

#include <cmath>

namespace phoenix::obs {

namespace {

// JSON has no Infinity/NaN literals; clamp the (rare) non-finite estimator
// outputs to a representable sentinel instead of corrupting the stream.
double Finite(double v) {
  if (std::isnan(v)) return 0.0;
  if (std::isinf(v)) return v > 0 ? 1e300 : -1e300;
  return v;
}

}  // namespace

JsonlWriter::JsonlWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
}

JsonlWriter::~JsonlWriter() {
  Flush();
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
}

void JsonlWriter::OnEvent(const Event& event) {
  if (file_ == nullptr) return;
  // Build the record in a local buffer so the fputs below stays atomic
  // under the lock even when stdio buffering splits writes.
  char buf[256];
  int n = std::snprintf(buf, sizeof buf, "{\"t\":%.9g,\"type\":\"%s\"",
                        Finite(event.time), EventTypeName(event.type));
  auto append = [&](const char* fmt, auto... args) {
    if (n < 0 || n >= static_cast<int>(sizeof buf)) return;
    const int m = std::snprintf(buf + n, sizeof buf - static_cast<size_t>(n),
                                fmt, args...);
    if (m > 0) n += m;
  };
  if (event.job != kNoId) append(",\"job\":%u", event.job);
  if (event.machine != kNoId) append(",\"machine\":%u", event.machine);
  if (event.task != kNoId) append(",\"task\":%u", event.task);
  if (event.value != 0) append(",\"value\":%.9g", Finite(event.value));
  append("}\n");
  std::lock_guard<std::mutex> lock(mu_);
  std::fputs(buf, file_);
}

void JsonlWriter::OnWorkerSample(const WorkerSample& s) {
  if (file_ == nullptr) return;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"t\":%.9g,\"type\":\"worker_sample\",\"machine\":%u,"
                "\"queue\":%u,\"est_work\":%.9g,\"wait\":%.9g,"
                "\"marked\":%d,\"busy\":%d,\"failed\":%d}\n",
                Finite(s.time), s.machine, s.queue_len,
                Finite(s.est_queued_work), Finite(s.wait_estimate),
                s.crv_marked ? 1 : 0, s.busy ? 1 : 0, s.failed ? 1 : 0);
  std::lock_guard<std::mutex> lock(mu_);
  std::fputs(buf, file_);
}

void JsonlWriter::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fflush(file_);
}

ChromeTraceWriter::ChromeTraceWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ != nullptr) std::fputs("[\n", file_);
}

ChromeTraceWriter::~ChromeTraceWriter() {
  Flush();
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
}

void ChromeTraceWriter::WriteRecord(const char* ph, const char* name,
                                    double ts_us, double dur_us,
                                    std::uint32_t tid, const Event& event) {
  char buf[384];
  int n = std::snprintf(
      buf, sizeof buf,
      "{\"name\":\"%s\",\"cat\":\"sim\",\"ph\":\"%s\",\"ts\":%.3f,"
      "\"pid\":0,\"tid\":%u",
      name, ph, Finite(ts_us), tid);
  auto append = [&](const char* fmt, auto... args) {
    if (n < 0 || n >= static_cast<int>(sizeof buf)) return;
    const int m = std::snprintf(buf + n, sizeof buf - static_cast<size_t>(n),
                                fmt, args...);
    if (m > 0) n += m;
  };
  if (dur_us >= 0) append(",\"dur\":%.3f", Finite(dur_us));
  if (ph[0] == 'i') append(",\"s\":\"%s\"", tid == 0 ? "g" : "t");
  append(",\"args\":{");
  bool first_arg = true;
  auto arg_sep = [&] {
    if (!first_arg) append(",");
    first_arg = false;
  };
  if (event.job != kNoId) { arg_sep(); append("\"job\":%u", event.job); }
  if (event.task != kNoId) { arg_sep(); append("\"task\":%u", event.task); }
  arg_sep();
  append("\"value\":%.9g", Finite(event.value));
  append("}}");

  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr || closed_) return;
  if (!first_) std::fputs(",\n", file_);
  first_ = false;
  std::fputs(buf, file_);
}

void ChromeTraceWriter::OnEvent(const Event& event) {
  if (file_ == nullptr) return;
  const double ts_us = event.time * 1e6;
  const std::uint32_t tid = event.machine == kNoId ? 0 : event.machine + 1;
  switch (event.type) {
    case EventType::kTaskComplete:
      // Render the whole service interval as one slice on the worker lane.
      WriteRecord("X", EventTypeName(event.type),
                  ts_us - event.value * 1e6, event.value * 1e6, tid, event);
      return;
    case EventType::kHeartbeat: {
      Event counter = event;
      WriteRecord("C", "queued_entries", ts_us, -1, 0, counter);
      return;
    }
    case EventType::kCrvSnapshot: {
      char name[32];
      std::snprintf(name, sizeof name, "crv_dim_%u", event.task);
      Event counter = event;
      counter.task = kNoId;  // the dim is in the counter name
      WriteRecord("C", name, ts_us, -1, 0, counter);
      return;
    }
    default:
      WriteRecord("i", EventTypeName(event.type), ts_us, -1, tid, event);
      return;
  }
}

void ChromeTraceWriter::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  if (!closed_) {
    std::fputs("\n]\n", file_);
    closed_ = true;
  }
  std::fflush(file_);
}

}  // namespace phoenix::obs
