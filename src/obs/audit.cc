#include "obs/audit.h"

#include <cmath>

#include "util/format.h"

namespace phoenix::obs {

namespace {
// Keep the violation list bounded: one broken invariant typically fires on
// every subsequent event, and the first few messages carry the diagnosis.
constexpr std::size_t kMaxViolations = 64;

// Mirror of cluster::MachineLifecycle, kept local so the auditor depends
// only on the event stream (obs must not link against cluster).
enum : std::uint8_t {
  kLifeActive = 0,  // default: a machine never mentioned is in service
  kLifeParked,
  kLifeProvisioning,
  kLifeDraining,
  kLifeRetired,
};

const char* LifeName(std::uint8_t state) {
  switch (state) {
    case kLifeActive: return "active";
    case kLifeParked: return "parked";
    case kLifeProvisioning: return "provisioning";
    case kLifeDraining: return "draining";
    case kLifeRetired: return "retired";
  }
  return "?";
}
}  // namespace

InvariantAuditor::JobStats& InvariantAuditor::JobFor(std::uint32_t id) {
  if (id >= jobs_.size()) jobs_.resize(id + 1);
  return jobs_[id];
}

std::uint8_t& InvariantAuditor::LifecycleFor(std::uint32_t machine) {
  if (machine >= machine_lifecycle_.size()) {
    machine_lifecycle_.resize(machine + 1, kLifeActive);
  }
  return machine_lifecycle_[machine];
}

void InvariantAuditor::OnLifecycleEvent(const Event& event) {
  if (event.machine == kNoId) {
    Violate("elastic lifecycle event without a machine id");
    return;
  }
  std::uint8_t& state = LifecycleFor(event.machine);
  const auto illegal = [&] {
    Violate(util::StrFormat("machine %u: illegal %s while %s at t=%.6f",
                            event.machine, EventTypeName(event.type),
                            LifeName(state), event.time));
  };
  switch (event.type) {
    case EventType::kMachinePark:
      // The run-start declaration of a not-yet-leased machine, or a power
      // park: an idle active machine goes to deep sleep, a drained machine
      // sleeps instead of retiring. Never legal from parked/provisioning/
      // retired (double park, or parking a machine outside the fleet).
      if (state != kLifeActive && state != kLifeDraining) illegal();
      state = kLifeParked;
      return;
    case EventType::kMachineProvision:
      if (state != kLifeParked && state != kLifeRetired) illegal();
      state = kLifeProvisioning;
      return;
    case EventType::kMachineCommission:
      if (state != kLifeProvisioning) illegal();
      state = kLifeActive;
      return;
    case EventType::kMachineDrain:
      if (state != kLifeActive) illegal();
      state = kLifeDraining;
      return;
    case EventType::kMachineRetire:
      if (state != kLifeDraining) illegal();
      state = kLifeRetired;
      return;
    case EventType::kMachineReclaim:
      // Informational: fires against the still-active lease, just before
      // its drain.
      if (state != kLifeActive) illegal();
      return;
    default:
      return;
  }
}

void InvariantAuditor::Violate(std::string message) {
  if (violations_.size() < kMaxViolations) {
    violations_.push_back(std::move(message));
  }
}

void InvariantAuditor::OnEvent(const Event& event) {
  ++events_seen_;
  switch (event.type) {
    case EventType::kJobArrival: {
      JobStats& job = JobFor(event.job);
      if (job.arrived) {
        Violate(util::StrFormat("job %u arrived twice", event.job));
      }
      job.arrived = true;
      job.tasks = static_cast<std::uint64_t>(event.value);
      return;
    }
    case EventType::kJobComplete: {
      JobStats& job = JobFor(event.job);
      if (job.done) {
        Violate(util::StrFormat("job %u completed twice", event.job));
      }
      job.done = true;
      if (job.completes != job.tasks) {
        Violate(util::StrFormat(
            "job %u declared complete with %llu/%llu task completions",
            event.job, static_cast<unsigned long long>(job.completes),
            static_cast<unsigned long long>(job.tasks)));
      }
      return;
    }
    case EventType::kProbeSend:
      ++JobFor(event.job).probes_sent;
      return;
    case EventType::kProbeResolve:
    case EventType::kProbeCancel:
    case EventType::kProbeDecline:
    case EventType::kProbeBounce: {
      JobStats& job = JobFor(event.job);
      if (event.type == EventType::kProbeResolve &&
          event.machine != kNoId &&
          LifecycleFor(event.machine) != kLifeActive) {
        // Resolving a probe starts fresh work: only active machines may.
        Violate(util::StrFormat(
            "machine %u resolved a probe while %s at t=%.6f", event.machine,
            LifeName(LifecycleFor(event.machine)), event.time));
      }
      if (event.type == EventType::kProbeResolve) ++job.probes_resolved;
      if (event.type == EventType::kProbeCancel) ++job.probes_cancelled;
      if (event.type == EventType::kProbeDecline) ++job.probes_declined;
      if (event.type == EventType::kProbeBounce) ++job.probes_bounced;
      if (job.OutstandingProbes() < 0) {
        Violate(util::StrFormat(
            "job %u probe balance went negative at t=%.6f (%s)", event.job,
            event.time, EventTypeName(event.type)));
      }
      return;
    }
    case EventType::kTaskStart: {
      // Draining is allowed: work bound before the drain may still start
      // once the slot frees. Outside the fleet entirely is a violation.
      const std::uint8_t life = event.machine == kNoId
                                    ? static_cast<std::uint8_t>(kLifeActive)
                                    : LifecycleFor(event.machine);
      if (life == kLifeParked || life == kLifeProvisioning ||
          life == kLifeRetired) {
        Violate(util::StrFormat(
            "job %u task bound to non-active machine %u (%s) at t=%.6f",
            event.job, event.machine, LifeName(life), event.time));
      }
      // Gang atomicity: members start only after the atomic commit closes
      // the round, never while a reservation is still open.
      auto gang = gang_rounds_.find(event.job);
      if (gang != gang_rounds_.end() && gang->second.open) {
        Violate(util::StrFormat(
            "gang job %u task %u started inside an open reservation round "
            "at t=%.6f (must wait for the commit)",
            event.job, event.task, event.time));
      }
      // DAG precedence: a task of a DAG job (one the stream marked ready
      // via kDagReady) may start only after its ready mark — i.e. after
      // every predecessor finished. Failure replays restart legally: the
      // mark persists across the kill.
      if (!dag_jobs_.empty() && event.task != kNoId &&
          dag_jobs_.find(event.job) != dag_jobs_.end() &&
          dag_ready_set_.count(
              (static_cast<std::uint64_t>(event.job) << 32) | event.task) ==
              0) {
        Violate(util::StrFormat(
            "DAG job %u task %u started before its predecessors finished "
            "at t=%.6f (no kDagReady)",
            event.job, event.task, event.time));
      }
      ++JobFor(event.job).starts;
      return;
    }
    case EventType::kTaskComplete: {
      JobStats& job = JobFor(event.job);
      ++job.completes;
      if (job.completes > job.starts) {
        Violate(util::StrFormat("job %u completed more tasks than it started",
                             event.job));
      }
      if (job.arrived && job.completes > job.tasks + job.kills) {
        Violate(util::StrFormat("job %u over-completed: %llu completions for "
                             "%llu tasks",
                             event.job,
                             static_cast<unsigned long long>(job.completes),
                             static_cast<unsigned long long>(job.tasks)));
      }
      return;
    }
    case EventType::kTaskKill:
      ++JobFor(event.job).kills;
      return;
    case EventType::kMachineFail:
    case EventType::kMachineRepair: {
      if (event.machine == kNoId) {
        Violate("machine lifecycle event without a machine id");
        return;
      }
      if (event.machine >= machine_failed_.size()) {
        machine_failed_.resize(event.machine + 1, false);
      }
      const bool down = machine_failed_[event.machine];
      if (event.type == EventType::kMachineFail && down) {
        Violate(util::StrFormat("machine %u failed while already down",
                             event.machine));
      }
      if (event.type == EventType::kMachineRepair && !down) {
        Violate(util::StrFormat("machine %u repaired while up", event.machine));
      }
      machine_failed_[event.machine] =
          event.type == EventType::kMachineFail;
      return;
    }
    case EventType::kMsgSend: {
      ++messages_sent_;
      const auto id = static_cast<std::uint64_t>(event.value);
      if (!inflight_messages_.insert(id).second) {
        Violate(util::StrFormat("message %llu sent twice at t=%.6f",
                                static_cast<unsigned long long>(id),
                                event.time));
      }
      return;
    }
    case EventType::kSteal:
      if (event.machine != kNoId &&
          LifecycleFor(event.machine) != kLifeActive) {
        Violate(util::StrFormat("machine %u stole work while %s at t=%.6f",
                                event.machine,
                                LifeName(LifecycleFor(event.machine)),
                                event.time));
      }
      return;
    case EventType::kMachinePark:
    case EventType::kMachineProvision:
    case EventType::kMachineCommission:
    case EventType::kMachineDrain:
    case EventType::kMachineRetire:
    case EventType::kMachineReclaim:
      OnLifecycleEvent(event);
      return;
    case EventType::kPreemptIssue: {
      // A preemption kills the running task; the start/completion balance
      // treats it like a failure kill, and conservation demands a matching
      // requeue for the same (job, task) before the run ends.
      //
      // Conservation also covers the machine lifecycle: a draining or
      // retired machine's slot work is recovered by the drain/retire sweep,
      // so a preemption there would put the victim on two recovery paths
      // (requeue + sweep) and double-dispatch it.
      if (event.machine != kNoId &&
          LifecycleFor(event.machine) != kLifeActive) {
        Violate(util::StrFormat(
            "job %u task %u preempted on machine %u while %s at t=%.6f",
            event.job, event.task, event.machine,
            LifeName(LifecycleFor(event.machine)), event.time));
      }
      ++preemptions_issued_;
      ++JobFor(event.job).kills;
      const std::uint64_t key =
          (static_cast<std::uint64_t>(event.job) << 32) | event.task;
      if (!outstanding_preemptions_.insert(key).second) {
        Violate(util::StrFormat(
            "job %u task %u preempted again before its requeue at t=%.6f",
            event.job, event.task, event.time));
      }
      return;
    }
    case EventType::kPreemptRequeue: {
      ++preemptions_requeued_;
      const std::uint64_t key =
          (static_cast<std::uint64_t>(event.job) << 32) | event.task;
      if (outstanding_preemptions_.erase(key) == 0) {
        Violate(util::StrFormat(
            "job %u task %u requeued at t=%.6f without a matching preempt",
            event.job, event.task, event.time));
      }
      return;
    }
    case EventType::kTenantAdmit:
    case EventType::kTenantDowngrade:
      // Quota non-violation: the payload is the tenant's post-charge
      // committed/budget fraction (0 when the tenant has no quota).
      if (event.value < -1e-9 || event.value > 1.0 + 1e-9) {
        Violate(util::StrFormat(
            "tenant %u admitted past its quota at t=%.6f "
            "(committed fraction %.6f)",
            event.machine, event.time, event.value));
      }
      return;
    case EventType::kFedBindSend: {
      ++fed_binds_sent_;
      const std::uint64_t key =
          (static_cast<std::uint64_t>(event.job) << 32) | event.task;
      if (!outstanding_fed_binds_.insert(key).second) {
        Violate(util::StrFormat(
            "job %u task %u cross-shard bind re-sent before its "
            "accept/reject at t=%.6f",
            event.job, event.task, event.time));
      }
      return;
    }
    case EventType::kFedBindAccept:
    case EventType::kFedBindReject: {
      ++fed_binds_closed_;
      if (event.type == EventType::kFedBindAccept && event.machine != kNoId &&
          LifecycleFor(event.machine) != kLifeActive) {
        // An accepted cross-shard bind starts fresh work on the target:
        // only an active machine may take it (a draining/retired target
        // must reject into the redispatch path instead).
        Violate(util::StrFormat(
            "machine %u accepted a cross-shard bind while %s at t=%.6f",
            event.machine, LifeName(LifecycleFor(event.machine)),
            event.time));
      }
      const std::uint64_t key =
          (static_cast<std::uint64_t>(event.job) << 32) | event.task;
      if (outstanding_fed_binds_.erase(key) == 0) {
        Violate(util::StrFormat(
            "job %u task %u cross-shard bind %s at t=%.6f without a "
            "matching send",
            event.job, event.task, EventTypeName(event.type), event.time));
      }
      return;
    }
    case EventType::kGossipApply: {
      ++gossip_applies_;
      // machine = receiver shard, task = origin shard, value = version.
      const std::uint64_t key =
          (static_cast<std::uint64_t>(event.machine) << 32) | event.task;
      const auto version = static_cast<std::uint64_t>(event.value);
      auto [it, fresh] = gossip_versions_.try_emplace(key, version);
      if (!fresh) {
        if (version <= it->second) {
          Violate(util::StrFormat(
              "shard %u applied origin %u digest version %llu after %llu "
              "at t=%.6f (stale digest must be dropped, not applied)",
              event.machine, event.task,
              static_cast<unsigned long long>(version),
              static_cast<unsigned long long>(it->second), event.time));
        }
        it->second = version;
      }
      return;
    }
    case EventType::kMsgDeliver:
    case EventType::kMsgDrop:
    case EventType::kMsgExpire: {
      ++messages_terminated_;
      const auto id = static_cast<std::uint64_t>(event.value);
      if (inflight_messages_.erase(id) == 0) {
        Violate(util::StrFormat(
            "message %llu terminated (%s) at t=%.6f without a matching send",
            static_cast<unsigned long long>(id), EventTypeName(event.type),
            event.time));
      }
      return;
    }
    case EventType::kPowerState: {
      ++power_events_seen_;
      if (event.machine == kNoId) {
        Violate("power state event without a machine id");
        return;
      }
      if (event.value < 0) {
        Violate(util::StrFormat("machine %u declared negative draw %.6f W",
                                event.machine, event.value));
      }
      if (event.machine >= power_channels_.size()) {
        power_channels_.resize(event.machine + 1);
      }
      PowerChannel& ch = power_channels_[event.machine];
      if (ch.seen && event.time < ch.last) {
        Violate(util::StrFormat(
            "machine %u power state moved backwards in time (%.6f < %.6f)",
            event.machine, event.time, ch.last));
        return;
      }
      if (ch.seen) ch.joules += ch.watts * (event.time - ch.last);
      ch.seen = true;
      ch.last = event.time;
      ch.watts = event.value;
      return;
    }
    case EventType::kPowerPark:
      // Park/wake decision legality mirrors the lifecycle rules: the park
      // decision precedes its kMachinePark, the wake its kMachineProvision.
      if (event.machine == kNoId ||
          (LifecycleFor(event.machine) != kLifeActive &&
           LifecycleFor(event.machine) != kLifeDraining)) {
        Violate(util::StrFormat(
            "power park of machine %u while %s at t=%.6f", event.machine,
            event.machine == kNoId ? "?"
                                   : LifeName(LifecycleFor(event.machine)),
            event.time));
      }
      return;
    case EventType::kPowerWake:
      if (event.machine == kNoId ||
          LifecycleFor(event.machine) != kLifeParked) {
        Violate(util::StrFormat(
            "power wake of machine %u while %s at t=%.6f", event.machine,
            event.machine == kNoId ? "?"
                                   : LifeName(LifecycleFor(event.machine)),
            event.time));
      }
      return;
    case EventType::kPowerDvfs:
      // DVFS only retunes machines taking new work; a sleeping or
      // out-of-fleet machine has no P-state to step.
      if (event.machine == kNoId ||
          LifecycleFor(event.machine) != kLifeActive) {
        Violate(util::StrFormat(
            "DVFS step on machine %u while %s at t=%.6f", event.machine,
            event.machine == kNoId ? "?"
                                   : LifeName(LifecycleFor(event.machine)),
            event.time));
      }
      return;
    case EventType::kPackCapacity: {
      // machine + dimension (in the task field) declare one ledger cell.
      if (event.machine == kNoId || event.task == kNoId) {
        Violate("pack capacity event without a machine/dimension");
        return;
      }
      const std::uint64_t key =
          (static_cast<std::uint64_t>(event.machine) << 3) | event.task;
      PackLedger& ledger = pack_ledgers_[key];
      if (ledger.declared) {
        Violate(util::StrFormat(
            "machine %u dimension %u capacity declared twice", event.machine,
            event.task));
      }
      ledger.declared = true;
      ledger.capacity = event.value;
      return;
    }
    case EventType::kPackClaim:
    case EventType::kPackRelease: {
      if (event.machine == kNoId || event.task == kNoId) {
        Violate("pack claim/release event without a machine/dimension");
        return;
      }
      const std::uint64_t key =
          (static_cast<std::uint64_t>(event.machine) << 3) | event.task;
      PackLedger& ledger = pack_ledgers_[key];
      if (event.type == EventType::kPackClaim) {
        ++pack_claims_seen_;
        ledger.outstanding += event.value;
        if (ledger.outstanding > ledger.capacity + 1e-6) {
          Violate(util::StrFormat(
              "machine %u over-committed dimension %u at t=%.6f "
              "(outstanding %.6f > capacity %.6f)",
              event.machine, event.task, event.time, ledger.outstanding,
              ledger.capacity));
        }
      } else {
        ledger.outstanding -= event.value;
        if (ledger.outstanding < -1e-6) {
          Violate(util::StrFormat(
              "machine %u released more of dimension %u than was claimed "
              "at t=%.6f (outstanding %.6f)",
              event.machine, event.task, event.time, ledger.outstanding));
        }
      }
      return;
    }
    case EventType::kGangReserve: {
      GangAudit& gang = gang_rounds_[event.job];
      // Several kGangReserve events (one per member machine) open one
      // round; the first of them flips it open.
      if (!gang.open) {
        gang.open = true;
        ++gang.opens;
        ++gang_rounds_opened_;
      }
      return;
    }
    case EventType::kGangCommit:
    case EventType::kGangAbort: {
      GangAudit& gang = gang_rounds_[event.job];
      if (!gang.open) {
        Violate(util::StrFormat(
            "gang job %u %s at t=%.6f without an open reservation round",
            event.job, EventTypeName(event.type), event.time));
        return;
      }
      gang.open = false;
      ++gang.closes;
      ++gang_rounds_closed_;
      return;
    }
    case EventType::kDagReady: {
      ++dag_ready_seen_;
      ++dag_jobs_[event.job].ready;
      const std::uint64_t key =
          (static_cast<std::uint64_t>(event.job) << 32) | event.task;
      if (!dag_ready_set_.insert(key).second) {
        Violate(util::StrFormat(
            "DAG job %u task %u marked ready twice at t=%.6f", event.job,
            event.task, event.time));
      }
      return;
    }
    case EventType::kDagRelease: {
      ++dag_releases_seen_;
      ++dag_jobs_[event.job].released;
      const std::uint64_t key =
          (static_cast<std::uint64_t>(event.job) << 32) | event.task;
      if (dag_ready_set_.count(key) == 0) {
        Violate(util::StrFormat(
            "DAG job %u released task %u that was never marked ready "
            "at t=%.6f",
            event.job, event.task, event.time));
      }
      if (!dag_released_set_.insert(key).second) {
        Violate(util::StrFormat("DAG job %u task %u released twice at t=%.6f",
                                event.job, event.task, event.time));
      }
      return;
    }
    case EventType::kDeadlineMiss: {
      ++deadline_misses_seen_;
      if (!deadline_missed_jobs_.insert(event.job).second) {
        Violate(util::StrFormat("job %u missed its deadline twice at t=%.6f",
                                event.job, event.time));
      }
      if (event.value <= 0) {
        Violate(util::StrFormat(
            "job %u deadline miss with non-positive lateness %.6f", event.job,
            event.value));
      }
      return;
    }
    default:
      return;  // informational events carry no audited state
  }
}

void InvariantAuditor::ExpectEnergy(double joules, double horizon) {
  energy_expected_ = true;
  expected_joules_ = joules;
  energy_horizon_ = horizon;
}

double InvariantAuditor::IntegratedJoules(double horizon) const {
  double total = 0.0;
  for (const PowerChannel& ch : power_channels_) {
    if (!ch.seen) continue;
    total += ch.joules;
    if (horizon > ch.last) total += ch.watts * (horizon - ch.last);
  }
  return total;
}

void InvariantAuditor::CheckWorker(double now, std::uint32_t machine,
                                   bool busy, bool failed,
                                   bool has_live_slot_event,
                                   std::size_t queue_len,
                                   double est_queued_work, bool final_state,
                                   bool out_of_service) {
  if (out_of_service && (busy || queue_len != 0)) {
    Violate(util::StrFormat(
        "machine %u holds work while out of service at t=%.6f "
        "(busy=%d, queue=%zu)",
        machine, now, busy ? 1 : 0, queue_len));
  }
  if (busy && failed) {
    Violate(util::StrFormat("machine %u busy while failed at t=%.6f", machine,
                         now));
  }
  if (busy && !has_live_slot_event) {
    Violate(util::StrFormat(
        "machine %u busy with no pending slot event at t=%.6f (stranded "
        "slot)",
        machine, now));
  }
  if (est_queued_work < -1e-9) {
    Violate(util::StrFormat("machine %u est_queued_work negative (%.9g)",
                         machine, est_queued_work));
  }
  if (final_state) {
    if (busy) {
      Violate(util::StrFormat("machine %u still busy after the run drained",
                           machine));
    }
    if (queue_len != 0) {
      Violate(util::StrFormat("machine %u ended the run with %zu queued entries",
                           machine, queue_len));
    }
    if (std::fabs(est_queued_work) > 1e-6) {
      Violate(util::StrFormat(
          "machine %u ended the run with est_queued_work %.9g", machine,
          est_queued_work));
    }
  }
}

void InvariantAuditor::Finish() {
  if (energy_expected_) {
    // Energy conservation: the joules the scheduler's meter accrued must
    // equal the kPowerState stream integrated over state dwells — a missed
    // or double-counted transition breaks the balance on either side.
    const double integrated = IntegratedJoules(energy_horizon_);
    const double tolerance =
        std::fabs(expected_joules_) * 1e-6 > 1e-3
            ? std::fabs(expected_joules_) * 1e-6
            : 1e-3;
    if (std::fabs(integrated - expected_joules_) > tolerance) {
      Violate(util::StrFormat(
          "energy conservation broken: meter %.6f J vs event-stream "
          "integral %.6f J at horizon %.6f",
          expected_joules_, integrated, energy_horizon_));
    }
  }
  for (std::size_t m = 0; m < machine_lifecycle_.size(); ++m) {
    // Capacity conservation: a lease must close. Ending provisioning means
    // a commission timer was lost; ending draining means the drain never
    // resolved (the grace-deadline force-retire did not fire).
    const std::uint8_t life = machine_lifecycle_[m];
    if (life == kLifeProvisioning || life == kLifeDraining) {
      Violate(util::StrFormat("machine %zu ended the run %s (capacity leak)",
                              m, LifeName(life)));
    }
  }
  for (const auto& [key, ledger] : pack_ledgers_) {
    // Packed-capacity conservation: every claim must be released by the end
    // of the run — a nonzero balance is a leaked run or reservation.
    if (std::fabs(ledger.outstanding) > 1e-6) {
      Violate(util::StrFormat(
          "machine %llu dimension %llu ended the run with %.6f of claimed "
          "capacity outstanding (capacity leak)",
          static_cast<unsigned long long>(key >> 3),
          static_cast<unsigned long long>(key & 0x7ULL),
          ledger.outstanding));
    }
  }
  for (const auto& [job, gang] : gang_rounds_) {
    if (gang.open) {
      Violate(util::StrFormat(
          "gang job %u ended the run with its reservation round still open "
          "(no commit or abort)",
          job));
    }
  }
  for (const auto& [jid, dag] : dag_jobs_) {
    // DAG release conservation: by the end of the run every task of a DAG
    // job must have been released to the dispatch path exactly once.
    const std::uint64_t tasks =
        jid < jobs_.size() && jobs_[jid].arrived ? jobs_[jid].tasks : 0;
    if (dag.released != tasks) {
      Violate(util::StrFormat(
          "DAG job %u released %llu of %llu tasks (precedence deadlock or "
          "double release)",
          jid, static_cast<unsigned long long>(dag.released),
          static_cast<unsigned long long>(tasks)));
    }
  }
  if (!outstanding_preemptions_.empty()) {
    const std::uint64_t key = *outstanding_preemptions_.begin();
    Violate(util::StrFormat(
        "%zu preempted task(s) never requeued (e.g. job %llu task %llu): "
        "every preemption must requeue its victim exactly once",
        outstanding_preemptions_.size(),
        static_cast<unsigned long long>(key >> 32),
        static_cast<unsigned long long>(key & 0xffffffffULL)));
  }
  if (!outstanding_fed_binds_.empty()) {
    const std::uint64_t key = *outstanding_fed_binds_.begin();
    Violate(util::StrFormat(
        "%zu cross-shard bind(s) never closed (e.g. job %llu task %llu): "
        "every kFedBindSend must end in exactly one accept or reject",
        outstanding_fed_binds_.size(),
        static_cast<unsigned long long>(key >> 32),
        static_cast<unsigned long long>(key & 0xffffffffULL)));
  }
  if (!inflight_messages_.empty()) {
    // Sample one leaked id for the diagnosis; the count carries the scale.
    Violate(util::StrFormat(
        "%zu control-plane message(s) still in flight after the run drained "
        "(e.g. id %llu): every send must end in deliver, drop, or expire",
        inflight_messages_.size(),
        static_cast<unsigned long long>(*inflight_messages_.begin())));
  }
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const JobStats& job = jobs_[i];
    if (!job.arrived) continue;
    if (!job.done) {
      Violate(util::StrFormat("job %zu never completed", i));
    }
    if (job.OutstandingProbes() != 0) {
      Violate(util::StrFormat(
          "job %zu probe leak: sent %llu != resolved %llu + cancelled %llu "
          "+ declined %llu + bounced %llu",
          i, static_cast<unsigned long long>(job.probes_sent),
          static_cast<unsigned long long>(job.probes_resolved),
          static_cast<unsigned long long>(job.probes_cancelled),
          static_cast<unsigned long long>(job.probes_declined),
          static_cast<unsigned long long>(job.probes_bounced)));
    }
    if (job.completes != job.tasks) {
      Violate(util::StrFormat("job %zu finished %llu of %llu tasks", i,
                           static_cast<unsigned long long>(job.completes),
                           static_cast<unsigned long long>(job.tasks)));
    }
    if (job.starts != job.completes + job.kills) {
      Violate(util::StrFormat(
          "job %zu start/completion imbalance: %llu starts, %llu "
          "completions, %llu kills",
          i, static_cast<unsigned long long>(job.starts),
          static_cast<unsigned long long>(job.completes),
          static_cast<unsigned long long>(job.kills)));
    }
  }
}

std::string InvariantAuditor::Summary() const {
  if (violations_.empty()) return "no invariant violations";
  std::string out = util::StrFormat("%zu invariant violation(s):",
                                 violations_.size());
  const std::size_t show = violations_.size() < 8 ? violations_.size() : 8;
  for (std::size_t i = 0; i < show; ++i) {
    out += "\n  - " + violations_[i];
  }
  return out;
}

}  // namespace phoenix::obs
