// Per-heartbeat timeseries sink.
//
// Collects the worker samples the scheduler publishes at every heartbeat
// (queue length, est_queued_work, P-K E[W] estimate, CRV mark) and the CRV
// snapshot ratios Phoenix emits as kCrvSnapshot events, then exports both
// as tab-separated tables (gnuplot/pandas-ready).
#pragma once

#include <string>
#include <vector>

#include "obs/event.h"

namespace phoenix::obs {

class HeartbeatLog final : public EventSink {
 public:
  void OnEvent(const Event& event) override;
  void OnWorkerSample(const WorkerSample& sample) override;

  /// One row per (heartbeat, worker):
  ///   time  machine  queue_len  est_queued_work  wait_estimate
  ///   crv_marked  busy  failed
  /// Returns false if the file cannot be written.
  bool WriteTsv(const std::string& path) const;

  /// One row per (heartbeat, CRV dimension): time  dim  ratio.
  /// Empty unless the scheduler emits kCrvSnapshot events (Phoenix).
  bool WriteCrvTsv(const std::string& path) const;

  const std::vector<WorkerSample>& samples() const { return samples_; }
  bool has_crv_history() const { return !crv_.empty(); }

 private:
  struct CrvRow {
    double time = 0;
    std::uint32_t dim = 0;
    double ratio = 0;
  };

  std::vector<WorkerSample> samples_;
  std::vector<CrvRow> crv_;
};

}  // namespace phoenix::obs
