// Observability event model.
//
// Scheduler and simulator hooks emit typed events into a set of attached
// EventSinks: file writers (JSONL, Chrome trace_event), the per-heartbeat
// timeseries log, and the invariant auditor. The schema is deliberately
// flat — one fixed-size struct, no allocation on the emit path — so tracing
// costs a single branch when no sink is attached.
#pragma once

#include <cstdint>

namespace phoenix::obs {

/// Sentinel for "field not applicable to this event".
inline constexpr std::uint32_t kNoId = 0xffffffffu;

enum class EventType : std::uint8_t {
  kJobArrival,      // job submitted; value = task count
  kJobComplete,     // last task finished; value = response time
  kAdmissionRelax,  // soft constraints relaxed; value = count removed
  kProbeSend,       // proxy probe dispatched toward `machine`
  kProbeResolve,    // probe reached a slot and took task `task`
  kProbeCancel,     // probe dissolved (job fully placed) or dropped stale
  kProbeDecline,    // probe declined at resolution (spread preference)
  kProbeBounce,     // probe lost its worker (failure); re-sent elsewhere
  kTaskStart,       // task began executing; value = service duration
  kTaskComplete,    // task finished; value = service duration
  kTaskKill,        // running task killed by a machine failure
  kStickyFetch,     // slot held to fetch the job's next task directly
  kSteal,           // idle `machine` stole a probe; value = victim id
  kCrvReorder,      // CRV discipline promoted queue index `task`
  kCrvSnapshot,     // heartbeat CRV refresh; task = dim, value = ratio
  kMachineFail,     // machine went down
  kMachineRepair,   // machine came back
  kHeartbeat,       // heartbeat tick; value = total queued entries
  // Control-plane fabric lifecycle (src/net). `machine` is the destination,
  // `task` the net::MessageKind, `value` the message id — every kMsgSend id
  // must be matched by exactly one kMsgDeliver, kMsgDrop, or kMsgExpire
  // (the auditor's message-conservation rule). The zero-chaos fast path
  // emits none of these.
  kMsgSend,         // fabric accepted a message
  kMsgDeliver,      // message arrived and was consumed
  kMsgDrop,         // message lost (drop chaos or partition)
  kMsgExpire,       // message arrived stale (its call already resolved)
  kRpcRetry,        // an rpc attempt timed out and was re-sent; value = call
  kRpcFail,         // an rpc exhausted its retries; value = call id
  kPartitionStart,  // machine set cut off; value = set size
  kPartitionEnd,    // partition healed
  // Elastic cluster lifecycle (src/elastic). `machine` is the subject; the
  // auditor replays these into a per-machine lifecycle table and rejects
  // illegal transitions, task starts on non-active machines, and capacity
  // leaks (machines left provisioning/draining at the end of the run).
  kMachinePark,       // machine starts the run outside the fleet
  kMachineProvision,  // lease started; value = warm-up delay
  kMachineCommission, // warm-up done, machine is active
  kMachineDrain,      // no new bindings; held bound work may finish
  kMachineRetire,     // drain complete (value = 1 if forced, 0 graceful)
  kMachineReclaim,    // transient lease reclaimed (precedes its drain)
  // Multi-tenant scheduling (src/tenancy). For the tenant admission events
  // `machine` carries the tenant id and `task` the effective priority
  // class; kTenantAdmit/kTenantDowngrade carry the post-charge quota
  // fraction in `value` (0 when unlimited), which the auditor's quota rule
  // requires to stay within [0, 1]. For the preemption pair `job` is the
  // victim job, `machine` the worker and `task` the victim's task index;
  // every kPreemptIssue must be matched by exactly one kPreemptRequeue for
  // the same (job, task) — the preemption-conservation rule — and counts as
  // a kill in the start/complete balance.
  kTenantAdmit,       // tenanted job admitted; value = quota fraction
  kTenantReject,      // quota exhausted, demoted to uncharged best-effort
  kTenantDowngrade,   // class lowered / constraint traded; value = fraction
  kPreemptIssue,      // running task killed for prod work; value = lost s
  kPreemptRequeue,    // the preempted task re-entered its worker's queue
  // Sharded control plane (src/federation). For the gossip pair `machine`
  // carries the publishing/receiving shard id, `task` the peer shard (kNoId
  // on publish), and `value` the digest version — the auditor requires
  // applied versions to be strictly increasing per (receiver, origin) pair.
  // For the optimistic cross-shard bind triple `job`/`machine`/`task`
  // identify the binding as usual; every kFedBindSend must be matched by
  // exactly one kFedBindAccept or kFedBindReject for the same (job, task),
  // and an accept on a non-active machine is a lifecycle violation.
  kGossipPublish,     // shard published its digest; value = version
  kGossipApply,       // receiver applied a peer digest; value = version
  kFedBindSend,       // task bound into a peer territory on a gossiped view
  kFedBindAccept,     // remote worker had the advertised free slot
  kFedBindReject,     // double-bind detected; task requeued at home
  // Energy/power management (src/power). kPowerState carries the machine's
  // new electrical draw in `value` (watts); the run opens with one per
  // machine declaring the initial draw, and the auditor integrates the
  // stream into Sigma state-dwell x watts, which must equal the meter's
  // joules at the end of the run (energy conservation). kPowerPark is legal
  // only on an active/draining machine, kPowerWake only on a parked one,
  // kPowerDvfs only on an active one (`task` = new P-state index).
  kPowerState,        // draw changed; value = new watts
  kPowerPark,         // controller parked the machine into deep sleep
  kPowerWake,         // wake begun; value = S3-exit latency (seconds)
  kPowerDvfs,         // DVFS step; task = new P-state, value = new watts
  // Multi-resource packing (src/packing). kPackCapacity declares one
  // dimension of a machine's capacity at run start (`task` = PackDim index,
  // `value` = capacity). Every kPackClaim (task start or gang reservation)
  // must be balanced by kPackRelease of the same amount on the same
  // (machine, dimension); the auditor integrates the stream into a residual
  // ledger that must stay within [0, capacity] at every step and return to
  // zero outstanding at the end of the run (capacity conservation). For the
  // gang triple `job` is the gang: every kGangReserve opens a reservation
  // round closed by exactly one kGangCommit (all members co-start) or
  // kGangAbort (hold expired / member lost; reservations released), and no
  // kTaskStart of a gang job may precede its round's commit (gang
  // atomicity). kMalleableWidth records a malleable job's new parallelism
  // target in `value`.
  kPackCapacity,      // task = dimension, value = machine capacity
  kPackClaim,         // task = dimension, value = amount claimed
  kPackRelease,       // task = dimension, value = amount released
  kGangReserve,       // machine reserved; task = member count, value = hold
  kGangCommit,        // all members arrived; value = gang wait (seconds)
  kGangAbort,         // reservation round abandoned; value = retry backoff
  kMalleableWidth,    // width changed; value = new parallelism target
  // DAG workflows and deadline scheduling (src/workflow). A DAG job's task
  // becomes ready (all predecessors finished) with kDagReady — `value`
  // carries its downstream critical-path work — and is handed to the
  // dispatch path with kDagRelease. The auditor requires each (job, task)
  // to be marked ready and released at most once, rejects any kTaskStart of
  // a DAG job without a prior kDagReady for that task (no task may run
  // before its predecessors finish), and at Finish() requires every DAG
  // job's released count to equal its task count. kDeadlineMiss fires at
  // most once per job, at completion, with the positive lateness in
  // `value`.
  kDagReady,          // task's predecessors all finished; value = downstream
  kDagRelease,        // ready task entered the dispatch path
  kDeadlineMiss,      // job finished past its deadline; value = lateness (s)
};

inline constexpr std::size_t kNumEventTypes =
    static_cast<std::size_t>(EventType::kDeadlineMiss) + 1;

/// Stable lowercase name for serialization ("probe_send", ...).
const char* EventTypeName(EventType type);

struct Event {
  double time = 0;  // simulation seconds
  EventType type = EventType::kHeartbeat;
  std::uint32_t job = kNoId;
  std::uint32_t machine = kNoId;
  std::uint32_t task = kNoId;  // task index, queue index, or CRV dimension
  double value = 0;            // type-specific payload (see EventType)
};

/// One worker's state as sampled at a heartbeat.
struct WorkerSample {
  double time = 0;
  std::uint32_t machine = 0;
  std::uint32_t queue_len = 0;
  double est_queued_work = 0;  // load signal used by placement
  double wait_estimate = 0;    // P-K E[W] estimate
  bool crv_marked = false;
  bool busy = false;
  bool failed = false;
};

/// Consumer of the event stream. Implementations must tolerate events
/// arriving in simulation-time order from a single simulation thread;
/// sinks shared across concurrent runs must lock internally (the file
/// writers do).
class EventSink {
 public:
  virtual ~EventSink();

  virtual void OnEvent(const Event& event) = 0;
  /// Heartbeat worker samples; default: ignored.
  virtual void OnWorkerSample(const WorkerSample& sample);
  /// Stream end: flush buffers, close containers.
  virtual void Flush();
};

}  // namespace phoenix::obs
