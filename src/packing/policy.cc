#include "packing/policy.h"

namespace phoenix::packing {

double PackScore(const ResourceVector& demand, const ResourceVector& residual,
                 const ResourceVector& capacity, const PackingConfig& config) {
  if (!demand.FitsIn(residual)) return kNoFit;
  double align = 0;
  double frag_min = 1.0;
  double frag_max = 0.0;
  for (std::size_t d = 0; d < kNumPackDims; ++d) {
    const double cap = capacity.dim(d);
    if (cap <= 0) continue;  // a dimension this machine does not have
    const double dem = demand.dim(d) / cap;
    const double res = residual.dim(d) / cap;
    align += dem * res;
    double after = res - dem;
    if (after < 0) after = 0;
    if (after < frag_min) frag_min = after;
    if (after > frag_max) frag_max = after;
  }
  return align - config.frag_weight * (frag_max - frag_min);
}

}  // namespace phoenix::packing
