// Deterministic per-job demand vectors.
//
// Demands are pure functions of (run seed, job id): no scheduler RNG draw
// happens anywhere on the packing path, so enabling packing perturbs neither
// the generator streams nor the scheduler's sampling sequence — packed runs
// stay thread-fingerprint-identical and `--packing` off stays byte-identical.
#pragma once

#include <cstdint>

#include "packing/config.h"
#include "packing/vector.h"

namespace phoenix::packing {

/// The demand vector of job `job_id` under `seed`. All tasks of a job share
/// its demand (the convention constraints already follow).
ResourceVector DemandFor(std::uint64_t seed, std::uint32_t job_id,
                         const PackingConfig& config);

/// Closed-form mean of DemandFor over the job population — the per-machine
/// effective-server count (capacity / mean demand) generalizes the P-K E[W]
/// estimator to multi-slot machines.
ResourceVector MeanDemand(const PackingConfig& config);

}  // namespace phoenix::packing
