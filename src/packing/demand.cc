#include "packing/demand.h"

#include <cmath>

#include "util/rng.h"

namespace phoenix::packing {

namespace {

/// Three independent uniform [0,1) draws hashed from (seed, job_id).
struct DemandDraws {
  double core_u, mem_u, gpu_u;
};

DemandDraws DrawsFor(std::uint64_t seed, std::uint32_t job_id) {
  std::uint64_t state =
      (seed ^ 0xa0761d6478bd642fULL) + 0x9e3779b97f4a7c15ULL * (job_id + 1);
  const auto unit = [&state] {
    return static_cast<double>(util::SplitMix64(state) >> 11) * 0x1.0p-53;
  };
  DemandDraws d;
  d.core_u = unit();
  d.mem_u = unit();
  d.gpu_u = unit();
  return d;
}

}  // namespace

ResourceVector DemandFor(std::uint64_t seed, std::uint32_t job_id,
                         const PackingConfig& config) {
  const DemandDraws d = DrawsFor(seed, job_id);
  ResourceVector demand;
  // Squaring the uniform skews the bucket index small: most jobs request one
  // or two cores, a tail requests 2^(buckets-1).
  const std::uint32_t buckets =
      config.demand_core_buckets > 0 ? config.demand_core_buckets : 1;
  auto bucket = static_cast<std::uint32_t>(d.core_u * d.core_u *
                                           static_cast<double>(buckets));
  if (bucket >= buckets) bucket = buckets - 1;
  const double cores = static_cast<double>(1u << bucket);
  const double per_core =
      config.demand_mem_per_core_lo +
      d.mem_u * (config.demand_mem_per_core_hi - config.demand_mem_per_core_lo);
  demand[PackDim::kCores] = cores;
  demand[PackDim::kMemoryGb] = cores * per_core;
  demand[PackDim::kGpus] = d.gpu_u < config.gpu_job_fraction ? 1.0 : 0.0;
  return demand;
}

ResourceVector MeanDemand(const PackingConfig& config) {
  // E[cores]: bucket k is hit when u^2 in [k/B, (k+1)/B), i.e. with
  // probability sqrt((k+1)/B) - sqrt(k/B).
  const std::uint32_t buckets =
      config.demand_core_buckets > 0 ? config.demand_core_buckets : 1;
  double mean_cores = 0;
  double prev_sqrt = 0;
  for (std::uint32_t k = 0; k < buckets; ++k) {
    const double next_sqrt = std::sqrt(static_cast<double>(k + 1) /
                                       static_cast<double>(buckets));
    mean_cores += (next_sqrt - prev_sqrt) * static_cast<double>(1u << k);
    prev_sqrt = next_sqrt;
  }
  ResourceVector mean;
  mean[PackDim::kCores] = mean_cores;
  mean[PackDim::kMemoryGb] =
      mean_cores *
      0.5 * (config.demand_mem_per_core_lo + config.demand_mem_per_core_hi);
  mean[PackDim::kGpus] = config.gpu_job_fraction;
  return mean;
}

}  // namespace phoenix::packing
