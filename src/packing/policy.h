// The vector bin-packing placement score that replaces the boolean
// slot-free test (arXiv 2004.00518 §2: alignment/best-fit heuristics).
#pragma once

#include "packing/config.h"
#include "packing/vector.h"

namespace phoenix::packing {

/// Score of placing `demand` on a machine with `residual` free out of
/// `capacity`. Higher is better; negative infinity (well, -1e30) when the
/// demand does not fit. Two terms:
///
///   * alignment: the normalized dot product demand . residual — placing
///     work where the free vector points the same way as the demand fills
///     machines evenly across dimensions (the classic DotProduct heuristic);
///   * fragmentation penalty: the imbalance (max - min) of the
///     post-placement residual fractions — a placement that strands one
///     dimension (all memory gone, cores idle) scores worse than one that
///     drains dimensions together.
///
/// Pure arithmetic of its inputs: deterministic, tie-broken by the caller
/// (lowest machine id) so packed runs are identical across thread counts.
double PackScore(const ResourceVector& demand, const ResourceVector& residual,
                 const ResourceVector& capacity, const PackingConfig& config);

inline constexpr double kNoFit = -1e30;

}  // namespace phoenix::packing
