// Multi-dimensional resource vectors for vector bin-packing placement.
//
// The paper's worker model is one slot per machine: a boolean busy bit and a
// queue. Real heterogeneous fleets place tasks against multi-dimensional
// capacity — cores, memory, accelerators — and a machine runs as many tasks
// concurrently as its residual vector admits (arXiv 2004.00518). This header
// defines the fixed-dimension resource vector shared by machine capacities,
// per-job demands, and the residual ledgers in sched::WorkerState.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace phoenix::packing {

/// Packing dimensions. Deliberately distinct from cluster::CrvDim — CRV
/// dimensions price *constraint* scarcity (which machines may serve a task);
/// pack dimensions price *capacity* (how much of a machine a task consumes).
enum class PackDim : std::uint8_t {
  kCores = 0,
  kMemoryGb,
  kGpus,
};

inline constexpr std::size_t kNumPackDims = 3;

constexpr std::string_view PackDimName(PackDim dim) {
  switch (dim) {
    case PackDim::kCores: return "cores";
    case PackDim::kMemoryGb: return "memory_gb";
    case PackDim::kGpus: return "gpus";
  }
  return "?";
}

/// A point in the (cores, memory, gpus) space. Plain aggregate so worker
/// ledgers stay trivially copyable.
struct ResourceVector {
  std::array<double, kNumPackDims> v{};

  double& operator[](PackDim d) { return v[static_cast<std::size_t>(d)]; }
  double operator[](PackDim d) const { return v[static_cast<std::size_t>(d)]; }
  double& dim(std::size_t d) { return v[d]; }
  double dim(std::size_t d) const { return v[d]; }

  /// Component-wise `this <= avail` with a small epsilon so a ledger that
  /// has been incremented and decremented by the same demand many times
  /// still admits an exact refit despite floating-point drift.
  bool FitsIn(const ResourceVector& avail) const {
    for (std::size_t d = 0; d < kNumPackDims; ++d) {
      if (v[d] > avail.v[d] + kEps) return false;
    }
    return true;
  }

  void Add(const ResourceVector& o) {
    for (std::size_t d = 0; d < kNumPackDims; ++d) v[d] += o.v[d];
  }
  void Sub(const ResourceVector& o) {
    for (std::size_t d = 0; d < kNumPackDims; ++d) v[d] -= o.v[d];
  }
  /// Add/Sub `count` copies (gang reservations move k members at once).
  void AddScaled(const ResourceVector& o, double count) {
    for (std::size_t d = 0; d < kNumPackDims; ++d) v[d] += count * o.v[d];
  }

  bool IsZero() const {
    for (std::size_t d = 0; d < kNumPackDims; ++d) {
      if (v[d] != 0.0) return false;
    }
    return true;
  }

  /// How many whole copies of `demand` fit into this vector (0 if a demanded
  /// dimension has no capacity here). Dimensions the demand does not touch
  /// never constrain the count.
  std::uint32_t CopiesOf(const ResourceVector& demand) const {
    double copies = 1e18;
    for (std::size_t d = 0; d < kNumPackDims; ++d) {
      if (demand.v[d] <= 0) continue;
      const double c = (v[d] + kEps) / demand.v[d];
      if (c < copies) copies = c;
    }
    if (copies < 0) copies = 0;
    if (copies > 4e9) copies = 4e9;  // untouched-by-demand: effectively inf
    return static_cast<std::uint32_t>(copies);
  }

  static constexpr double kEps = 1e-9;
};

}  // namespace phoenix::packing
