// Configuration for multi-resource packing, gang scheduling, and malleable
// jobs. Default-constructed (enabled == false) the scheduler's single-slot
// paths are byte-identical to the packing-free tree — the same layering
// contract every optional subsystem in this repo honors.
#pragma once

#include <cstdint>

namespace phoenix::packing {

struct PackingConfig {
  /// Master switch: off keeps the boolean slot-free worker model.
  bool enabled = false;

  // --- demand shaping -------------------------------------------------------
  // Per-job demand vectors are pure hashes of (run seed, job id) — see
  // demand.h — shaped by these knobs. All tasks of a job share its demand,
  // the same convention the constraint synthesizer uses.

  /// Exponent bucketing for the core demand: cores = 2^k, k in
  /// [0, demand_core_buckets), skewed toward small requests.
  std::uint32_t demand_core_buckets = 4;  // 1, 2, 4, 8 cores
  /// Memory demand per requested core, uniform in [lo, hi] GB.
  double demand_mem_per_core_lo = 1.0;
  double demand_mem_per_core_hi = 8.0;
  /// Fraction of jobs demanding one GPU.
  double gpu_job_fraction = 0.08;

  // --- placement score ------------------------------------------------------

  /// Weight of the fragmentation penalty against the dot-product alignment
  /// term in PackScore (policy.h).
  double frag_weight = 0.5;

  // --- gang scheduling ------------------------------------------------------

  /// Fraction of multi-task jobs tagged as gangs by the trace generator
  /// (threaded through trace::GeneratorOptions by the benches).
  double gang_fraction = 0.0;
  /// Reservation hold time: a gang's multi-machine reservation is abandoned
  /// (abort + release) if its members have not all arrived by then.
  double gang_hold = 30.0;
  /// Base delay before re-attempting a gang that found insufficient free
  /// capacity; doubles per consecutive retry up to gang_retry_cap.
  double gang_retry_backoff = 5.0;
  double gang_retry_cap = 120.0;

  // --- malleable jobs -------------------------------------------------------

  /// Fraction of multi-task jobs tagged malleable by the trace generator.
  double malleable_fraction = 0.0;
  /// A malleable job's minimum parallelism as a fraction of its task count
  /// (floored at 1) — the inelastic core of an elastic job (arXiv
  /// 2005.09745).
  double malleable_min_frac = 0.25;
};

}  // namespace phoenix::packing
