// Pollaczek–Khinchine M/G/1 waiting-time estimation (paper Equation 1).
//
//   E[W] = rho / (1 - rho) * E[S^2] / (2 E[S])
//
// Phoenix estimates the expected waiting time of every worker queue from
// the worker's recent inter-arrival times (lambda) and service times (E[S],
// E[S^2]), then uses the estimate to decide which congested queues to
// reorder. The paper argues the estimator is accurate for its setting
// because the hybrid split (long jobs -> centralized, short -> distributed)
// keeps per-queue service-time variance low, preserving the stationarity
// the P-K formula assumes (§IV-A).
#pragma once

#include <cstdint>

#include "queueing/stats.h"
#include "sim/simtime.h"

namespace phoenix::queueing {

/// Pure closed-form P-K wait. rho >= 1 returns +infinity (unstable queue —
/// callers treat it as "beyond any threshold").
double PkWait(double rho, double es, double es2);

/// Closed-form M/M/1 waiting time (exponential service). Used by tests as
/// an independent check: P-K with E[S^2] = 2/mu^2 must reduce to this.
double Mm1Wait(double lambda, double mu);

/// Erlang-C: probability an arrival must wait in an M/M/c queue with
/// arrival rate lambda, per-server rate mu and c servers. Returns 1.0 for
/// an unstable system (lambda >= c*mu).
double ErlangC(double lambda, double mu, unsigned servers);

/// Mean waiting time in an M/M/c queue (infinite for unstable systems).
/// With c=1 this reduces to Mm1Wait — a cross-check used in tests. The
/// multi-server form bounds what a *pooled* scheduler could achieve versus
/// the paper's per-worker queues, quantifying the price of distribution.
double MmcWait(double lambda, double mu, unsigned servers);

/// Online per-worker estimator implementing Algorithm 1's
/// Estimate_Waiting_Time procedure: lambda <- Avg(inter-arrival rate),
/// mu <- Avg(last serviced tasks), E[W] <- Equation 1.
class WorkerWaitEstimator {
 public:
  /// `window`: number of recent samples kept for each moment estimate.
  explicit WorkerWaitEstimator(std::size_t window = 64);

  /// Records a task/probe arrival at the worker at time `now`.
  void OnArrival(sim::SimTime now);

  /// Records a completed service of duration `service_time`.
  void OnServiceComplete(double service_time);

  /// Current estimate of E[W]; +infinity when the observed load is >= 1,
  /// 0 when there is not yet enough data to estimate. Memoized: the
  /// schedulers poll every worker's estimate once per heartbeat, but the
  /// inputs only move on arrival/completion, so repeated polls between
  /// samples are one flag test.
  double EstimateWait() const;

  /// Observed utilization rho = lambda * E[S] (0 when unseeded).
  double EstimateRho() const;

  double lambda() const;
  double expected_service() const { return service_.mean(); }

  /// Wake-cost penalty added to EstimateWait while the worker is parked in
  /// deep sleep (src/power): a sleeping machine is supply whose expected
  /// wait is its wake latency. Set at park, reset by Clear() when the
  /// machine is commissioned back. Zero (the default) leaves the estimate
  /// untouched — the penalty path is branch-gated for byte identity.
  void SetWakePenalty(double penalty) { wake_penalty_ = penalty; }
  double wake_penalty() const { return wake_penalty_; }

  /// Effective-server count c (src/packing): a multi-slot machine serving c
  /// mean-demand tasks concurrently behaves like c pooled servers, so its
  /// expected wait divides by c — the per-machine generalization of the P-K
  /// estimate that keeps E[W]-guided probe ranking meaningful under vector
  /// packing. c == 1 (the default) is branch-gated for byte identity.
  /// Unlike the wake penalty, Clear() preserves it: the count derives from
  /// the machine's static capacity vector, not from learned load.
  void SetEffectiveServers(std::uint32_t servers) {
    effective_servers_ = servers > 0 ? servers : 1;
  }
  std::uint32_t effective_servers() const { return effective_servers_; }

  void Clear();

 private:
  WindowedStats interarrival_;
  WindowedStats service_;
  sim::SimTime last_arrival_ = -1.0;
  double wake_penalty_ = 0.0;
  std::uint32_t effective_servers_ = 1;
  mutable double cached_wait_ = 0.0;
  mutable bool wait_dirty_ = true;
};

}  // namespace phoenix::queueing
