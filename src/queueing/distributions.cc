#include "queueing/distributions.h"

#include <numbers>

namespace phoenix::queueing {

double SampleExponential(util::Rng& rng, double rate) {
  PHOENIX_DCHECK(rate > 0);
  // 1 - U in (0, 1] avoids log(0).
  return -std::log(1.0 - rng.NextDouble()) / rate;
}

double SampleBoundedPareto(util::Rng& rng, double alpha, double lo, double hi) {
  PHOENIX_DCHECK(alpha > 0 && lo > 0 && hi > lo);
  const double u = rng.NextDouble();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  // Inverse CDF of the bounded Pareto.
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

double SampleStandardNormal(util::Rng& rng) {
  const double u1 = 1.0 - rng.NextDouble();  // (0, 1]
  const double u2 = rng.NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double SampleLogNormal(util::Rng& rng, double mu, double sigma) {
  PHOENIX_DCHECK(sigma >= 0);
  return std::exp(mu + sigma * SampleStandardNormal(rng));
}

double BoundedParetoMean(double alpha, double lo, double hi) {
  PHOENIX_CHECK(alpha > 0 && lo > 0 && hi > lo);
  if (alpha == 1.0) {
    return std::log(hi / lo) / (1.0 / lo - 1.0 / hi);
  }
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return (la / (1.0 - la / ha)) * (alpha / (alpha - 1.0)) *
         (1.0 / std::pow(lo, alpha - 1.0) - 1.0 / std::pow(hi, alpha - 1.0));
}

double BoundedParetoSecondMoment(double alpha, double lo, double hi) {
  PHOENIX_CHECK(alpha > 0 && lo > 0 && hi > lo);
  if (alpha == 2.0) {
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    return (la / (1.0 - la / ha)) * alpha * std::log(hi / lo);
  }
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return (la / (1.0 - la / ha)) * (alpha / (alpha - 2.0)) *
         (1.0 / std::pow(lo, alpha - 2.0) - 1.0 / std::pow(hi, alpha - 2.0));
}

}  // namespace phoenix::queueing
