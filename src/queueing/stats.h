// Streaming statistics primitives.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>

namespace phoenix::queueing {

/// Welford online mean/variance plus raw second moment, min and max.
/// Numerically stable for long simulations.
class RunningStats {
 public:
  void Add(double x);
  void Clear();

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Population variance.
  double variance() const;
  double stddev() const;
  /// E[X^2] — the raw second moment the P-K formula needs.
  double second_moment() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Mean / second moment over the most recent `window` samples. Algorithm 1
/// of the paper estimates λ and μ from "Avg(last serviced tasks)", i.e. a
/// moving window rather than the full history, so estimates track load
/// changes.
class WindowedStats {
 public:
  explicit WindowedStats(std::size_t window = 64);

  void Add(double x);
  void Clear();

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double second_moment() const;
  double sum() const { return sum_; }

 private:
  std::size_t window_;
  std::deque<double> samples_;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

/// Exponentially weighted moving average.
class Ewma {
 public:
  /// alpha in (0, 1]: weight of the newest sample.
  explicit Ewma(double alpha = 0.2);

  void Add(double x);
  bool empty() const { return !seeded_; }
  double value() const { return value_; }
  void Clear() { seeded_ = false; value_ = 0.0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

}  // namespace phoenix::queueing
