// Random-variate samplers used by the trace generators.
//
// The paper's workloads are heavy-tailed: "task execution times are Pareto
// bound, where short jobs constitute 80 % to 90 % of the total jobs"
// (§V-A), with bursty arrivals whose peak-to-median rate ratio ranges from
// 9:1 to 260:1. BoundedPareto and the on/off modulated Poisson process in
// trace/generators.cc implement exactly those shapes.
#pragma once

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace phoenix::queueing {

/// Exponential(rate). Mean = 1/rate.
double SampleExponential(util::Rng& rng, double rate);

/// Bounded (truncated) Pareto on [lo, hi] with tail index alpha.
/// Classic heavy-tail model for task service times.
double SampleBoundedPareto(util::Rng& rng, double alpha, double lo, double hi);

/// Log-normal with the given location/scale of the underlying normal.
double SampleLogNormal(util::Rng& rng, double mu, double sigma);

/// Standard normal via Box–Muller (single value; the spare is discarded to
/// keep the generator stateless and the draw count deterministic).
double SampleStandardNormal(util::Rng& rng);

/// Closed-form mean of the bounded Pareto (used to calibrate generator load).
double BoundedParetoMean(double alpha, double lo, double hi);

/// Closed-form second moment of the bounded Pareto.
double BoundedParetoSecondMoment(double alpha, double lo, double hi);

}  // namespace phoenix::queueing
