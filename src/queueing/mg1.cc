#include "queueing/mg1.h"

#include <limits>

#include "util/check.h"

namespace phoenix::queueing {

double PkWait(double rho, double es, double es2) {
  PHOENIX_DCHECK(rho >= 0 && es >= 0 && es2 >= 0);
  if (es <= 0) return 0.0;
  if (rho >= 1.0) return std::numeric_limits<double>::infinity();
  return rho / (1.0 - rho) * es2 / (2.0 * es);
}

double Mm1Wait(double lambda, double mu) {
  PHOENIX_CHECK(lambda >= 0 && mu > 0);
  const double rho = lambda / mu;
  if (rho >= 1.0) return std::numeric_limits<double>::infinity();
  return rho / (mu - lambda);
}

double ErlangC(double lambda, double mu, unsigned servers) {
  PHOENIX_CHECK(lambda >= 0 && mu > 0 && servers > 0);
  const double a = lambda / mu;  // offered load, Erlangs
  const double c = servers;
  if (lambda >= c * mu) return 1.0;
  if (lambda == 0) return 0.0;
  // Erlang-B recurrence B(k) = a*B(k-1) / (k + a*B(k-1)) stays in (0,1],
  // so it cannot overflow even for thousands of servers; Erlang-C follows
  // as C = B / (1 - rho*(1-B)).
  double b = 1.0;
  for (unsigned k = 1; k <= servers; ++k) {
    b = a * b / (static_cast<double>(k) + a * b);
  }
  const double rho = a / c;
  return b / (1.0 - rho * (1.0 - b));
}

double MmcWait(double lambda, double mu, unsigned servers) {
  PHOENIX_CHECK(lambda >= 0 && mu > 0 && servers > 0);
  const double c = servers;
  if (lambda >= c * mu) return std::numeric_limits<double>::infinity();
  if (lambda == 0) return 0.0;
  return ErlangC(lambda, mu, servers) / (c * mu - lambda);
}

WorkerWaitEstimator::WorkerWaitEstimator(std::size_t window)
    : interarrival_(window), service_(window) {}

void WorkerWaitEstimator::OnArrival(sim::SimTime now) {
  if (last_arrival_ >= 0.0) {
    interarrival_.Add(now - last_arrival_);
    wait_dirty_ = true;
  }
  last_arrival_ = now;
}

void WorkerWaitEstimator::OnServiceComplete(double service_time) {
  PHOENIX_DCHECK(service_time >= 0);
  service_.Add(service_time);
  wait_dirty_ = true;
}

double WorkerWaitEstimator::lambda() const {
  const double mean_gap = interarrival_.mean();
  return mean_gap > 0 ? 1.0 / mean_gap : 0.0;
}

double WorkerWaitEstimator::EstimateRho() const {
  return lambda() * service_.mean();
}

double WorkerWaitEstimator::EstimateWait() const {
  if (!wait_dirty_) {
    return wake_penalty_ > 0.0 ? cached_wait_ + wake_penalty_ : cached_wait_;
  }
  if (interarrival_.empty() || service_.empty()) {
    cached_wait_ = 0.0;
  } else {
    cached_wait_ =
        PkWait(EstimateRho(), service_.mean(), service_.second_moment());
    if (effective_servers_ > 1 &&
        cached_wait_ != std::numeric_limits<double>::infinity()) {
      // Multi-slot machine as c pooled servers: the single-queue wait
      // divides by the concurrency the capacity vector sustains. (The exact
      // M/G/c wait has no closed form; W/c is the standard scaling and
      // preserves the estimator's ordering role.)
      cached_wait_ /= static_cast<double>(effective_servers_);
    }
  }
  wait_dirty_ = false;
  return wake_penalty_ > 0.0 ? cached_wait_ + wake_penalty_ : cached_wait_;
}

void WorkerWaitEstimator::Clear() {
  interarrival_.Clear();
  service_.Clear();
  last_arrival_ = -1.0;
  wake_penalty_ = 0.0;
  cached_wait_ = 0.0;
  wait_dirty_ = true;
}

}  // namespace phoenix::queueing
