#include "queueing/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace phoenix::queueing {

void RunningStats::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::Clear() { *this = RunningStats(); }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::second_moment() const {
  return variance() + mean() * mean();
}

WindowedStats::WindowedStats(std::size_t window) : window_(window) {
  PHOENIX_CHECK_MSG(window > 0, "window must be positive");
}

void WindowedStats::Add(double x) {
  samples_.push_back(x);
  sum_ += x;
  sum_sq_ += x * x;
  if (samples_.size() > window_) {
    const double old = samples_.front();
    samples_.pop_front();
    sum_ -= old;
    sum_sq_ -= old * old;
  }
}

void WindowedStats::Clear() {
  samples_.clear();
  sum_ = 0.0;
  sum_sq_ = 0.0;
}

double WindowedStats::mean() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double WindowedStats::second_moment() const {
  if (samples_.empty()) return 0.0;
  // Guard against tiny negative values from float cancellation.
  return std::max(0.0, sum_sq_ / static_cast<double>(samples_.size()));
}

Ewma::Ewma(double alpha) : alpha_(alpha) {
  PHOENIX_CHECK_MSG(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
}

void Ewma::Add(double x) {
  if (!seeded_) {
    value_ = x;
    seeded_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

}  // namespace phoenix::queueing
