#include "elastic/controller.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/phoenix.h"
#include "power/manager.h"
#include "util/check.h"

namespace phoenix::elastic {

using cluster::MachineId;
using cluster::MachineLifecycle;

namespace {

/// Mixes the run seed with the controller's sub-stream seed (splitmix-style
/// constants) so every (run seed, elastic seed) pair gets an independent
/// reclamation stream.
std::uint64_t MixSeed(std::uint64_t run_seed, std::uint64_t elastic_seed) {
  std::uint64_t state = run_seed * 0x9e3779b97f4a7c15ULL + elastic_seed;
  return util::SplitMix64(state) ^ 0xc2b2ae3d27d4eb4fULL;
}

}  // namespace

ElasticityController::ElasticityController(sim::Engine& engine,
                                           sched::SchedulerBase& scheduler,
                                           cluster::MembershipView& view,
                                           const ElasticConfig& config)
    : engine_(engine), scheduler_(scheduler), view_(view), config_(config),
      phoenix_(dynamic_cast<const core::PhoenixScheduler*>(&scheduler)),
      rng_(MixSeed(scheduler.config().seed, config.seed)) {
  PHOENIX_CHECK_MSG(config_.enabled, "controller built with elasticity off");
  PHOENIX_CHECK_MSG(config_.universe_size() == scheduler_.num_machines(),
                    "base+reserve+transient must equal the cluster size");
  PHOENIX_CHECK_MSG(view_.guaranteed_active() == config_.base_machines,
                    "view's guaranteed prefix must be the base fleet");
  PHOENIX_CHECK_MSG(scheduler_.membership() == &view_,
                    "attach the view to the scheduler first (SetMembership)");
  PHOENIX_CHECK(config_.transient_target <= config_.transient_machines);
  PHOENIX_CHECK(config_.base_machines > 0);
}

double ElasticityController::tick_interval() const {
  return config_.tick_interval > 0 ? config_.tick_interval
                                   : scheduler_.config().heartbeat_interval;
}

void ElasticityController::Start() {
  last_tick_ = engine_.Now();
  LeaseTransients();
  engine_.ScheduleAfter(tick_interval(), [this] { Tick(); });
}

void ElasticityController::Tick() {
  // Once every job is done the run is draining: stop the recurring tick and
  // let the outstanding warm-up / grace timers close the open leases (the
  // auditor checks no machine ends the run provisioning or draining).
  if (scheduler_.AllJobsDone()) return;
  const double now = engine_.Now();
  const double dt = now - last_tick_;
  last_tick_ = now;
  LeaseTransients();
  if (config_.reclaim_rate > 0 && dt > 0) CheckReclamation(dt);
  PollDrains();
  if (config_.reactive) ReactiveDecision();
  engine_.ScheduleAfter(tick_interval(), [this] { Tick(); });
}

void ElasticityController::LeaseTransients() {
  const std::size_t lo = config_.base_machines + config_.reserve_machines;
  const std::size_t hi = config_.universe_size();
  std::size_t open = 0;
  for (std::size_t id = lo; id < hi; ++id) {
    const MachineLifecycle s = view_.state(static_cast<MachineId>(id));
    if (s == MachineLifecycle::kProvisioning || s == MachineLifecycle::kActive) {
      ++open;
    }
  }
  for (std::size_t id = lo; id < hi && open < config_.transient_target; ++id) {
    const auto mid = static_cast<MachineId>(id);
    const MachineLifecycle s = view_.state(mid);
    if (s != MachineLifecycle::kParked && s != MachineLifecycle::kRetired) {
      continue;
    }
    if (scheduler_.worker_state(mid).failed) continue;
    BeginLease(mid);
    ++open;
  }
}

void ElasticityController::CheckReclamation(double dt) {
  // One Bernoulli draw per active transient lease, ascending id — the draw
  // count depends only on membership state, so the stream is reproducible
  // for a given seed and tick history.
  const double p = 1.0 - std::exp(-config_.reclaim_rate * dt);
  const std::size_t lo = config_.base_machines + config_.reserve_machines;
  const std::size_t hi = config_.universe_size();
  for (std::size_t id = lo; id < hi; ++id) {
    const auto mid = static_cast<MachineId>(id);
    if (view_.state(mid) != MachineLifecycle::kActive) continue;
    if (!rng_.Bernoulli(p)) continue;
    BeginDrain(mid, sched::SchedulerBase::DrainReason::kReclamation,
               config_.reclaim_grace);
  }
}

void ElasticityController::PollDrains() {
  for (auto it = drain_deadline_.begin(); it != drain_deadline_.end();) {
    if (TryRetire(it->first, /*force=*/false)) {
      it = drain_deadline_.erase(it);
    } else {
      ++it;
    }
  }
}

void ElasticityController::ReactiveDecision() {
  const double now = engine_.Now();
  if (now - last_decision_ < config_.decision_cooldown) return;
  if (view_.bindable_count() == 0) return;
  double mean = 0;
  if (const auto* plane = scheduler_.federation()) {
    // Sharded control plane: the controller sits with shard 0 and scales on
    // its gossiped global view (own territory + fresh peer digests) instead
    // of scanning the fleet — stale peers drop out of the average, so a
    // partition degrades the signal toward shard 0's own load, never to
    // garbage.
    mean = plane->GlobalMeanWait(0);
  } else {
    // Cluster-wide mean of the per-worker M/G/1 E[W] estimates. A saturated
    // estimator reports +infinity; clamp so one hot worker reads as "very
    // congested" rather than poisoning the mean outright. With power
    // management attached, parked machines join the mean at their
    // wake-penalized estimate (exactly the wake penalty on a cleared
    // estimator): sleeping capacity reads as available-at-a-cost, so the
    // park-vs-scale decision sees the energy dimension.
    const bool count_parked = scheduler_.power() != nullptr;
    double sum = 0;
    std::size_t counted = 0;
    for (std::size_t id = 0; id < scheduler_.num_machines(); ++id) {
      const auto mid = static_cast<MachineId>(id);
      const bool parked_supply =
          count_parked && view_.state(mid) == MachineLifecycle::kParked &&
          !scheduler_.worker_state(mid).failed;
      if (!view_.Bindable(mid) && !parked_supply) continue;
      sum += std::min(scheduler_.worker_state(mid).estimator.EstimateWait(),
                      1e6);
      ++counted;
    }
    mean = count_parked ? sum / static_cast<double>(counted)
                        : sum / static_cast<double>(view_.bindable_count());
  }
  if (mean > config_.scale_up_factor * config_.target_wait) {
    ScaleUp(config_.scale_step);
  } else if (mean < config_.scale_down_factor * config_.target_wait) {
    ScaleDown(config_.scale_step);
  }
}

void ElasticityController::ScaleUp(std::size_t step) {
  std::size_t moved = 0;
  for (std::size_t i = 0; i < step; ++i) {
    const MachineId id = PickProvisionCandidate();
    if (id == cluster::kInvalidMachine) break;
    BeginLease(id);
    ++moved;
  }
  if (moved > 0) {
    ++stats_.scale_up_decisions;
    last_decision_ = engine_.Now();
  }
}

void ElasticityController::ScaleDown(std::size_t step) {
  // Drain the least-loaded active reserve machines (highest id among ties,
  // so repeated scale-downs peel the reserve from the top). The base fleet
  // and the transient pool are out of scope: the base never drains, and
  // transients leave only through reclamation or their own lease policy.
  std::vector<MachineId> candidates;
  const std::size_t lo = config_.base_machines;
  const std::size_t hi = lo + config_.reserve_machines;
  for (std::size_t id = lo; id < hi; ++id) {
    const auto mid = static_cast<MachineId>(id);
    if (view_.Bindable(mid)) candidates.push_back(mid);
  }
  if (candidates.empty()) return;
  std::sort(candidates.begin(), candidates.end(),
            [this](MachineId a, MachineId b) {
              const double la = scheduler_.worker_state(a).est_queued_work;
              const double lb = scheduler_.worker_state(b).est_queued_work;
              if (la != lb) return la < lb;
              return a > b;
            });
  const std::size_t moved = std::min(step, candidates.size());
  for (std::size_t i = 0; i < moved; ++i) {
    BeginDrain(candidates[i], sched::SchedulerBase::DrainReason::kScaleDown,
               config_.drain_grace);
  }
  if (moved > 0) {
    ++stats_.scale_down_decisions;
    last_decision_ = engine_.Now();
  }
}

MachineId ElasticityController::PickProvisionCandidate() {
  std::vector<MachineId> candidates;
  const std::size_t lo = config_.base_machines;
  const std::size_t hi = lo + config_.reserve_machines;
  for (std::size_t id = lo; id < hi; ++id) {
    const auto mid = static_cast<MachineId>(id);
    const MachineLifecycle s = view_.state(mid);
    if (s != MachineLifecycle::kParked && s != MachineLifecycle::kRetired) {
      continue;
    }
    if (scheduler_.worker_state(mid).failed) continue;
    candidates.push_back(mid);
  }
  if (candidates.empty()) return cluster::kInvalidMachine;
  if (config_.crv_shaping && phoenix_ != nullptr) {
    // CRV-aware supply shaping: bring up the candidate that relieves the
    // most queued demand on the hottest dimension. HotPredicates orders
    // hottest-first; scoring by total satisfied demand lets one machine
    // serve several starved predicates at once.
    const auto hot = phoenix_->HotSupplyDemand();
    MachineId best = cluster::kInvalidMachine;
    std::uint64_t best_score = 0;
    for (const MachineId id : candidates) {
      const cluster::Machine& m = view_.cluster().machine(id);
      std::uint64_t score = 0;
      for (const auto& pd : hot) {
        if (m.Satisfies(pd.constraint)) score += pd.count;
      }
      if (score > best_score) {
        best_score = score;
        best = id;
      }
    }
    if (best != cluster::kInvalidMachine) {
      ++stats_.crv_shaped_picks;
      return best;
    }
  }
  return candidates.front();  // lowest id
}

void ElasticityController::BeginLease(MachineId id) {
  // A machine sleeping in S3 pays its class's wake transition instead of the
  // configured cold warm-up — the whole point of parking over retiring.
  double warmup = config_.warmup_delay;
  if (const auto* pm = scheduler_.power(); pm != nullptr && pm->asleep(id)) {
    warmup = pm->WakeLatency(id);
  }
  scheduler_.ProvisionMachine(id, warmup);
  engine_.ScheduleAfter(warmup, [this, id] {
    if (view_.state(id) != MachineLifecycle::kProvisioning) return;
    scheduler_.CommissionMachine(id);
    tasks_at_commission_[id] = scheduler_.worker_state(id).tasks_started;
  });
}

void ElasticityController::BeginDrain(MachineId id,
                                      sched::SchedulerBase::DrainReason reason,
                                      double grace) {
  scheduler_.DrainMachine(id, reason);
  const double deadline = engine_.Now() + grace;
  drain_deadline_[id] = DrainRecord{
      deadline, reason == sched::SchedulerBase::DrainReason::kReclamation};
  engine_.ScheduleAfter(grace, [this, id] {
    auto it = drain_deadline_.find(id);
    // Gone: a tick-poll graceful retire beat the timer. Later deadline: the
    // machine was retired, re-leased and re-drained; that drain's own timer
    // will handle it.
    if (it == drain_deadline_.end()) return;
    if (it->second.deadline > engine_.Now() + 1e-9) return;
    drain_deadline_.erase(it);
    if (!TryRetire(id, /*force=*/false)) {
      TryRetire(id, /*force=*/true);
    }
  });
}

bool ElasticityController::TryRetire(MachineId id, bool force) {
  // Park-vs-retire: with power management attached a drained machine we
  // still own goes to sleep instead of leaving the universe — waking it
  // later costs seconds, not a cold lease. A reclaimed transient is the
  // provider's machine; it must truly retire.
  if (!force && scheduler_.power() != nullptr) {
    auto it = drain_deadline_.find(id);
    const bool reclaimed = it != drain_deadline_.end() && it->second.reclaimed;
    if (!reclaimed && scheduler_.ParkMachine(id)) {
      ++stats_.parks_instead_of_retire;
      CloseLease(id);
      return true;
    }
    if (!reclaimed) return false;  // still holds work; keep polling
  }
  if (!scheduler_.RetireMachine(id, force)) return false;
  CloseLease(id);
  return true;
}

void ElasticityController::CloseLease(MachineId id) {
  auto it = tasks_at_commission_.find(id);
  if (it != tasks_at_commission_.end()) {
    if (scheduler_.worker_state(id).tasks_started == it->second) {
      stats_.wasted_warmup_seconds += config_.warmup_delay;
    }
    tasks_at_commission_.erase(it);
  }
}

}  // namespace phoenix::elastic
