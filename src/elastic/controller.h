// Elasticity controller: drives machine lifecycle over a MembershipView.
//
// The controller runs on its own periodic tick (default: the scheduler
// heartbeat period, scheduled *after* the heartbeat so the tick always sees
// freshly synced load signals). Each tick it
//
//   1. tops the transient pool up to its lease target,
//   2. plays the stochastic reclamation stream over active transient
//      leases (deterministic per-seed: a private RNG, hazard p = 1 -
//      exp(-rate * dt), drawn in ascending machine-id order),
//   3. polls draining machines for an early graceful retire, and
//   4. makes at most one reactive scaling decision: cluster-wide mean
//      M/G/1 E[W] against the target band, scaling the reserve pool up
//      (through provisioning -> warm-up -> commission) or down (drain,
//      then retire at the grace deadline, forced if work remains).
//
// Scale-ups under Phoenix consult the CRV table: the new machine is the
// reserve candidate satisfying the most queued demand on the hottest
// dimension (CRV-aware supply shaping). Other schedulers (and Phoenix with
// shaping off) take the lowest-id candidate.
#pragma once

#include <cstdint>
#include <map>

#include "cluster/membership.h"
#include "elastic/config.h"
#include "sched/base.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace phoenix::core {
class PhoenixScheduler;
}  // namespace phoenix::core

namespace phoenix::elastic {

class ElasticityController {
 public:
  /// The view must already be attached to the scheduler (SetMembership) and
  /// its guaranteed prefix must match config.base_machines. All three
  /// references must outlive the controller.
  ElasticityController(sim::Engine& engine, sched::SchedulerBase& scheduler,
                       cluster::MembershipView& view,
                       const ElasticConfig& config);

  ElasticityController(const ElasticityController&) = delete;
  ElasticityController& operator=(const ElasticityController&) = delete;

  /// Opens the initial transient leases and schedules the recurring tick.
  /// Call after SubmitTrace (the heartbeat must be registered first so
  /// same-instant ticks run after it).
  void Start();

  /// Controller-side policy counters; the per-machine lifecycle counters
  /// live in the scheduler's metrics::SchedulerCounters.
  struct Stats {
    std::uint64_t scale_up_decisions = 0;
    std::uint64_t scale_down_decisions = 0;
    std::uint64_t crv_shaped_picks = 0;
    /// Scale-down drains closed by parking into deep sleep instead of
    /// retiring (power management attached; the machine stays wakeable).
    std::uint64_t parks_instead_of_retire = 0;
    /// Warm-up seconds spent on leases that retired without ever starting
    /// a task.
    double wasted_warmup_seconds = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void Tick();
  /// Opens leases until transient pool members (provisioning or active)
  /// reach the target.
  void LeaseTransients();
  /// One reclamation draw per active transient lease, ascending id.
  void CheckReclamation(double dt);
  /// Tries an early graceful retire of every draining machine.
  void PollDrains();
  void ReactiveDecision();
  void ScaleUp(std::size_t step);
  void ScaleDown(std::size_t step);

  /// Provision + warm-up timer for one machine.
  void BeginLease(cluster::MachineId id);
  /// Drain + grace-deadline timer (graceful retire, forced fallback).
  void BeginDrain(cluster::MachineId id,
                  sched::SchedulerBase::DrainReason reason, double grace);
  /// RetireMachine + wasted-warm-up accounting. Returns false if a graceful
  /// retire was refused (machine still holds work). With power management
  /// attached, a non-reclaimed drain parks into deep sleep instead of
  /// retiring (park-vs-retire: the machine stays ours and wakeable);
  /// reclaimed leases always truly retire — the provider takes them back.
  bool TryRetire(cluster::MachineId id, bool force);
  /// Lease-close bookkeeping shared by retire and park.
  void CloseLease(cluster::MachineId id);

  /// Best scale-up candidate among parked/retired reserve machines; applies
  /// CRV-aware supply shaping under Phoenix. kInvalidMachine if none.
  cluster::MachineId PickProvisionCandidate();

  double tick_interval() const;

  sim::Engine& engine_;
  sched::SchedulerBase& scheduler_;
  cluster::MembershipView& view_;
  ElasticConfig config_;
  /// Non-null when the scheduler is Phoenix (enables CRV shaping).
  const core::PhoenixScheduler* phoenix_ = nullptr;
  /// Private stream: reclamation draws must not perturb scheduler sampling.
  util::Rng rng_;

  Stats stats_;
  double last_tick_ = 0;
  double last_decision_ = 0;
  /// Draining machines -> forced-retire deadline plus whether the drain was
  /// a reclamation (ordered by id, so polls are deterministic).
  struct DrainRecord {
    double deadline = 0;
    bool reclaimed = false;
  };
  std::map<cluster::MachineId, DrainRecord> drain_deadline_;
  /// tasks_started at commission time, per open lease (wasted-warm-up).
  std::map<cluster::MachineId, std::uint64_t> tasks_at_commission_;
};

}  // namespace phoenix::elastic
