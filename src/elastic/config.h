// Elastic cluster lifecycle configuration.
//
// An elastic run partitions the machine universe into three contiguous id
// ranges (the universe is built once, so cluster synthesis stays on the
// static-fleet RNG stream — the first base_machines machines are
// byte-identical to a static fleet of that size):
//
//   [0, base)                          guaranteed base fleet, always active
//   [base, base+reserve)               reserve pool the reactive policy
//                                      scales in and out of
//   [base+reserve, base+reserve+transient)
//                                      transient pool: cheap capacity leased
//                                      toward transient_target but subject
//                                      to stochastic reclamation
#pragma once

#include <cstddef>
#include <cstdint>

namespace phoenix::elastic {

struct ElasticConfig {
  /// Master switch; everything below is ignored when false.
  bool enabled = false;

  /// Universe partition (see above). base + reserve + transient must equal
  /// the cluster size.
  std::size_t base_machines = 0;
  std::size_t reserve_machines = 0;
  std::size_t transient_machines = 0;

  /// Transient leases the controller keeps open (provisioning or active).
  std::size_t transient_target = 0;

  /// Seconds between ProvisionMachine and CommissionMachine (the modeled
  /// boot + image pull + join handshake).
  double warmup_delay = 30.0;

  /// Grace period a scale-down drain gets before a forced retire evicts
  /// whatever is still queued or running.
  double drain_grace = 60.0;

  /// Controller decision period; 0 means "follow the scheduler heartbeat".
  double tick_interval = 0.0;

  // ---- Reactive scaling (policy a) ----------------------------------------
  bool reactive = true;
  /// Target cluster-wide mean M/G/1 E[W] (seconds).
  double target_wait = 5.0;
  /// Scale up when mean E[W] > scale_up_factor * target_wait.
  double scale_up_factor = 1.5;
  /// Scale down when mean E[W] < scale_down_factor * target_wait.
  double scale_down_factor = 0.25;
  /// Machines moved per scaling decision.
  std::size_t scale_step = 4;
  /// Minimum seconds between two scaling decisions (damps oscillation
  /// across the warm-up delay).
  double decision_cooldown = 30.0;

  // ---- CRV-aware supply shaping (policy b) --------------------------------
  /// When scaling up under Phoenix, prefer reserve machines that satisfy the
  /// hottest CRV predicates (worst demand/supply ratio) instead of the
  /// lowest-id candidate.
  bool crv_shaping = true;

  // ---- Transient reclamation (policy c) -----------------------------------
  /// Per-second reclamation hazard of each active transient lease (0
  /// disables). Reclaimed leases drain for reclaim_grace seconds, then any
  /// remaining work is force-evicted and redispatched.
  double reclaim_rate = 0.0;
  double reclaim_grace = 15.0;

  /// Mixed with the scheduler seed into the controller's private RNG
  /// stream, so reclamation draws never perturb scheduler sampling.
  std::uint64_t seed = 0;

  std::size_t universe_size() const {
    return base_machines + reserve_machines + transient_machines;
  }
};

}  // namespace phoenix::elastic
