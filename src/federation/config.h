// Sharded control-plane configuration.
//
// With `shards` > 1 the scheduler's control plane is partitioned into N
// shards, each owning a contiguous range of the machine universe: that
// shard's heartbeats, CRV demand/supply accounting, and mean-E[W] signal.
// Shards exchange aggregate digests (per-dimension CRV load, mean wait,
// free-slot counts) as gossiped messages over the control-plane fabric, so
// every shard schedules against an eventually-consistent view of the rest
// of the fleet. `shards` = 1 (the default) disables the subsystem entirely
// and is byte-identical to the unsharded scheduler.
#pragma once

#include <cstddef>

namespace phoenix::federation {

struct FederationConfig {
  /// Scheduler shards the fleet is partitioned across. 1 = disabled.
  std::size_t shards = 1;

  /// Seconds between a shard's digest publications to its peers. Gossip is
  /// full-mesh push: every period each shard sends its current digest to
  /// every peer, staggered so publications do not synchronize.
  double gossip_period = 3.0;

  /// A peer view older than this (origin-stamp age at read time) is treated
  /// as unknown: cross-shard placement falls back to home-territory-only
  /// rather than acting on an arbitrarily stale digest. Staleness degrades
  /// placement quality, never correctness.
  double staleness_bound = 30.0;

  /// A peer is worth offloading to only if its gossiped mean E[W] is below
  /// this fraction of the home shard's own. Hysteresis against ping-ponging
  /// work between two equally loaded shards on slightly stale views.
  double offload_factor = 0.8;

  bool enabled() const { return shards > 1; }
};

}  // namespace phoenix::federation
