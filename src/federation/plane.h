// Federated control plane: per-shard digests + eventually-consistent gossip.
//
// Each scheduler shard owns the heartbeats, CRV demand accounting, and
// mean-E[W] signal of its machine territory (see ShardMap). The plane holds,
// per shard:
//
//   * the shard's *local* digest — ground truth the owning shard refreshes
//     at its own heartbeat (mean wait, free slots) and updates incrementally
//     on queue transitions (per-dimension CRV demand/load);
//   * the shard's *views* of every peer — the last gossiped digest received
//     from each, with the origin's version and timestamp.
//
// Every gossip_period each shard publishes a versioned snapshot of its local
// digest to all peers over the NetworkFabric (full-mesh push, staggered
// start). Gossip messages ride the same chaos model as every other control
// message: drops, duplicates, reordering, and partitions that sever a
// shard's endpoint delay or lose digests, leaving peers with stale views.
// Receivers discard out-of-order digests (version check), and readers treat
// views older than the staleness bound as unknown, so a partitioned shard
// degrades to home-territory-only placement instead of acting on garbage.
//
// Correctness never depends on gossip freshness: cross-shard placement is
// optimistic (probe/bind into a peer's territory on a possibly-stale view)
// and the scheduler's double-bind detection resolves conflicts by requeueing
// through the existing redispatch path. The plane only shapes *where* work
// is tried first.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/attributes.h"
#include "cluster/machine.h"
#include "federation/config.h"
#include "federation/shard_map.h"
#include "net/fabric.h"
#include "obs/event.h"
#include "sim/engine.h"

namespace phoenix::federation {

/// One shard's aggregate state as exchanged over gossip.
struct ShardDigest {
  /// Publication counter at the origin; receivers drop digests whose
  /// version is not strictly newer than their current view.
  std::uint64_t version = 0;
  /// Origin refresh time (simulation seconds); staleness is measured
  /// against this at read time. Negative = never refreshed/received.
  double stamp = -1;
  /// Territory-mean M/G/1 E[W] over live bindable workers, clamped so one
  /// saturated estimator cannot poison the fleet view.
  double mean_wait = 0;
  std::uint32_t live_workers = 0;
  /// Idle bindable workers with empty queues — the optimistic cross-shard
  /// bind targets a shard advertising free slots.
  std::uint32_t free_slots = 0;
  /// Per-CRV-dimension queued demand within the territory: entry counts and
  /// CRV load (sum over queued constraints of 1/|satisfying pool|, the
  /// monitor's ratio contribution). Summing loads across shards
  /// reconstructs the global CRV table when every view is fresh.
  std::array<double, cluster::kNumCrvDims> crv_load{};
  std::array<std::uint64_t, cluster::kNumCrvDims> crv_demand{};
};

class FederationPlane {
 public:
  struct Stats {
    std::uint64_t digests_published = 0;  // per peer send
    std::uint64_t digests_applied = 0;
    std::uint64_t digests_stale_dropped = 0;  // out-of-order arrivals
    /// Offload decisions blocked because every candidate peer view was
    /// older than the staleness bound.
    std::uint64_t offloads_blocked_stale = 0;
  };

  FederationPlane(sim::Engine& engine, net::NetworkFabric& fabric,
                  const FederationConfig& config, std::size_t num_machines);

  FederationPlane(const FederationPlane&) = delete;
  FederationPlane& operator=(const FederationPlane&) = delete;

  const FederationConfig& config() const { return config_; }
  const ShardMap& shard_map() const { return map_; }
  std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(map_.num_shards());
  }
  std::uint32_t shard_of(cluster::MachineId machine) const {
    return map_.shard_of(machine);
  }
  /// Home shard of a job: arrivals are spread round-robin by job id, the
  /// deterministic stand-in for "submitted to the nearest front-end".
  std::uint32_t HomeShard(std::uint64_t job_id) const {
    return static_cast<std::uint32_t>(job_id % map_.num_shards());
  }

  /// Starts the per-shard gossip timer chains (staggered). `keep_running`
  /// is polled at each fire; once false the chain stops so the engine can
  /// drain. Call once, before the run.
  void Start(std::function<bool()> keep_running);

  /// Observability tap, mirroring NetworkFabric::set_emitter: the plane
  /// emits kGossipPublish / kGossipApply through it.
  void set_emitter(std::function<void(const obs::Event&)> emitter) {
    emitter_ = std::move(emitter);
  }

  // ---- Owning-shard writes ------------------------------------------------

  /// Heartbeat refresh of the shard's own aggregate signals.
  void RefreshLocal(std::uint32_t shard, double mean_wait,
                    std::uint32_t live_workers, std::uint32_t free_slots);

  /// Incremental CRV accounting: a constrained entry demanding `dim` with
  /// ratio contribution `inv_pool` entered (+1) or left (-1) a queue in the
  /// shard's territory.
  void OnQueuedDelta(std::uint32_t shard, std::size_t dim, double inv_pool,
                     double sign);

  // ---- Shard-perspective reads --------------------------------------------

  const ShardDigest& Local(std::uint32_t shard) const {
    return local_[shard];
  }
  /// `shard`'s current view of `peer` (its own local digest when peer ==
  /// shard). stamp < 0 means no digest has ever arrived.
  const ShardDigest& View(std::uint32_t shard, std::uint32_t peer) const;
  /// View exists and its origin stamp is within the staleness bound.
  bool Fresh(std::uint32_t shard, std::uint32_t peer) const;

  /// Fleet-mean E[W] as `shard` believes it: its own live signal combined
  /// with every fresh peer view, weighted by live workers. Stale peers drop
  /// out of the average (degraded, never wrong-by-construction).
  double GlobalMeanWait(std::uint32_t shard) const;

  /// Global CRV load per dimension as `shard` believes it: own territory's
  /// live counters plus fresh peers' gossiped loads. `demand_out` (optional)
  /// receives the matching entry counts.
  std::array<double, cluster::kNumCrvDims> GlobalCrvLoad(
      std::uint32_t shard,
      std::array<std::uint64_t, cluster::kNumCrvDims>* demand_out) const;

  /// Best peer for optimistic offload from `shard`, or kNoShard. A peer
  /// qualifies when its view is fresh, it advertises free slots, and its
  /// gossiped mean wait is below offload_factor times the home shard's own;
  /// the lowest mean wait wins (lowest shard id among ties). Returns
  /// kNoShard without counting when the home shard itself has free slots.
  std::uint32_t PickOffloadPeer(std::uint32_t shard);

  const Stats& stats() const { return stats_; }

 private:
  void GossipTick(std::uint32_t shard);
  void Publish(std::uint32_t shard);
  void Apply(std::uint32_t receiver, std::uint32_t origin,
             const ShardDigest& digest);
  void EmitGossip(obs::EventType type, std::uint32_t shard,
                  std::uint32_t peer, double version);

  sim::Engine& engine_;
  net::NetworkFabric& fabric_;
  FederationConfig config_;
  ShardMap map_;
  /// Ground truth per shard (stamp tracks the last heartbeat refresh).
  std::vector<ShardDigest> local_;
  /// views_[receiver * S + origin]: receiver's last applied digest.
  std::vector<ShardDigest> views_;
  std::function<bool()> keep_running_;
  std::function<void(const obs::Event&)> emitter_;
  Stats stats_;
};

}  // namespace phoenix::federation
