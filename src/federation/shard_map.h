// Static fleet partition: machine id -> owning scheduler shard.
//
// Shards own contiguous machine ranges (shard s owns [s*n/S, (s+1)*n/S)),
// mirroring how production federations split a fleet along racks or cells.
// The map is immutable for the run; elasticity flips lifecycle states within
// a territory but never moves a machine between shards.
#pragma once

#include <cstdint>
#include <utility>

#include "cluster/machine.h"
#include "util/check.h"

namespace phoenix::federation {

/// Sentinel shard id ("no shard chosen").
inline constexpr std::uint32_t kNoShard = 0xffffffffu;

class ShardMap {
 public:
  ShardMap(std::size_t num_machines, std::size_t shards)
      : num_machines_(num_machines), shards_(shards) {
    PHOENIX_CHECK_MSG(shards >= 1 && shards <= num_machines,
                      "shard count must be in [1, fleet size]");
  }

  std::size_t num_shards() const { return shards_; }
  std::size_t num_machines() const { return num_machines_; }

  /// Owned machine range of `shard`, as [begin, end).
  std::pair<cluster::MachineId, cluster::MachineId> range(
      std::uint32_t shard) const {
    PHOENIX_CHECK(shard < shards_);
    return {static_cast<cluster::MachineId>(shard * num_machines_ / shards_),
            static_cast<cluster::MachineId>((shard + 1) * num_machines_ /
                                            shards_)};
  }

  std::uint32_t shard_of(cluster::MachineId machine) const {
    PHOENIX_CHECK(machine < num_machines_);
    // Inverse of the floor-division range split: candidate from the scaled
    // division, corrected against the exact range bounds (integer rounding
    // can land one off on either side).
    std::uint32_t s = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(machine) * shards_ / num_machines_);
    while (s + 1 < shards_ && machine >= range(s).second) ++s;
    while (s > 0 && machine < range(s).first) --s;
    return s;
  }

  /// The shard's gossip endpoint on the control-plane fabric: its first
  /// machine. A fabric partition that severs this machine severs the
  /// shard's gossip links, which is exactly the failure the staleness
  /// bound exists for.
  cluster::MachineId endpoint(std::uint32_t shard) const {
    return range(shard).first;
  }

  /// Largest territory size — the per-event worker-scan bound of a sharded
  /// heartbeat (the unsharded scheduler scans the whole fleet per tick).
  std::size_t max_span() const {
    std::size_t span = 0;
    for (std::uint32_t s = 0; s < shards_; ++s) {
      const auto [lo, hi] = range(s);
      span = span > static_cast<std::size_t>(hi - lo)
                 ? span
                 : static_cast<std::size_t>(hi - lo);
    }
    return span;
  }

 private:
  std::size_t num_machines_;
  std::size_t shards_;
};

}  // namespace phoenix::federation
