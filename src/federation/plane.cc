#include "federation/plane.h"

#include <algorithm>
#include <memory>

#include "util/check.h"

namespace phoenix::federation {

FederationPlane::FederationPlane(sim::Engine& engine,
                                 net::NetworkFabric& fabric,
                                 const FederationConfig& config,
                                 std::size_t num_machines)
    : engine_(engine),
      fabric_(fabric),
      config_(config),
      map_(num_machines, config.shards),
      local_(config.shards),
      views_(config.shards * config.shards) {
  PHOENIX_CHECK_MSG(config.enabled(), "plane built with federation off");
  PHOENIX_CHECK(config.gossip_period > 0);
  PHOENIX_CHECK(config.staleness_bound > 0);
}

void FederationPlane::Start(std::function<bool()> keep_running) {
  keep_running_ = std::move(keep_running);
  const auto shards = static_cast<std::uint32_t>(map_.num_shards());
  for (std::uint32_t s = 0; s < shards; ++s) {
    // Stagger first publications across the period so the full mesh does
    // not synchronize into one burst per period.
    const double offset =
        config_.gossip_period * (1.0 + static_cast<double>(s) /
                                           static_cast<double>(shards));
    engine_.ScheduleAfter(offset, [this, s] { GossipTick(s); });
  }
}

void FederationPlane::GossipTick(std::uint32_t shard) {
  if (keep_running_ && !keep_running_()) return;  // let the run drain
  Publish(shard);
  engine_.ScheduleAfter(config_.gossip_period,
                        [this, shard] { GossipTick(shard); });
}

void FederationPlane::Publish(std::uint32_t shard) {
  ShardDigest& local = local_[shard];
  ++local.version;
  // One immutable snapshot shared by every peer copy: the digest outgrows
  // the fabric callback's inline buffer, and peers must see the state at
  // publication time, not whatever the counters say at arrival.
  auto snapshot = std::make_shared<const ShardDigest>(local);
  EmitGossip(obs::EventType::kGossipPublish, shard, obs::kNoId,
             static_cast<double>(local.version));
  const auto shards = static_cast<std::uint32_t>(map_.num_shards());
  for (std::uint32_t p = 0; p < shards; ++p) {
    if (p == shard) continue;
    ++stats_.digests_published;
    fabric_.Send(map_.endpoint(shard), map_.endpoint(p),
                 net::MessageKind::kGossipDigest, fabric_.one_way(),
                 [this, shard, p, snapshot] {
                   Apply(p, shard, *snapshot);
                   return true;
                 });
  }
}

void FederationPlane::Apply(std::uint32_t receiver, std::uint32_t origin,
                            const ShardDigest& digest) {
  ShardDigest& view = views_[receiver * map_.num_shards() + origin];
  // Reordered or duplicated gossip must not roll a view backwards; only a
  // strictly newer version lands.
  if (digest.version <= view.version) {
    ++stats_.digests_stale_dropped;
    return;
  }
  view = digest;
  ++stats_.digests_applied;
  EmitGossip(obs::EventType::kGossipApply, receiver, origin,
             static_cast<double>(digest.version));
}

void FederationPlane::EmitGossip(obs::EventType type, std::uint32_t shard,
                                 std::uint32_t peer, double version) {
  if (!emitter_) return;
  obs::Event event;
  event.time = engine_.Now();
  event.type = type;
  event.machine = shard;
  event.task = peer;
  event.value = version;
  emitter_(event);
}

void FederationPlane::RefreshLocal(std::uint32_t shard, double mean_wait,
                                   std::uint32_t live_workers,
                                   std::uint32_t free_slots) {
  ShardDigest& local = local_[shard];
  local.stamp = engine_.Now();
  local.mean_wait = mean_wait;
  local.live_workers = live_workers;
  local.free_slots = free_slots;
}

void FederationPlane::OnQueuedDelta(std::uint32_t shard, std::size_t dim,
                                    double inv_pool, double sign) {
  ShardDigest& local = local_[shard];
  local.crv_load[dim] =
      std::max(0.0, local.crv_load[dim] + sign * inv_pool);
  if (sign > 0) {
    ++local.crv_demand[dim];
  } else if (local.crv_demand[dim] > 0) {
    --local.crv_demand[dim];
  }
}

const ShardDigest& FederationPlane::View(std::uint32_t shard,
                                         std::uint32_t peer) const {
  if (peer == shard) return local_[shard];
  return views_[shard * map_.num_shards() + peer];
}

bool FederationPlane::Fresh(std::uint32_t shard, std::uint32_t peer) const {
  const ShardDigest& view = View(shard, peer);
  return view.stamp >= 0 &&
         engine_.Now() - view.stamp <= config_.staleness_bound;
}

double FederationPlane::GlobalMeanWait(std::uint32_t shard) const {
  double sum = 0;
  std::uint64_t live = 0;
  const auto shards = static_cast<std::uint32_t>(map_.num_shards());
  for (std::uint32_t p = 0; p < shards; ++p) {
    // Own territory always contributes (the shard reads its own ground
    // truth); peers only while fresh.
    if (p != shard && !Fresh(shard, p)) continue;
    const ShardDigest& view = View(shard, p);
    sum += view.mean_wait * view.live_workers;
    live += view.live_workers;
  }
  return live > 0 ? sum / static_cast<double>(live) : 0.0;
}

std::array<double, cluster::kNumCrvDims> FederationPlane::GlobalCrvLoad(
    std::uint32_t shard,
    std::array<std::uint64_t, cluster::kNumCrvDims>* demand_out) const {
  std::array<double, cluster::kNumCrvDims> load{};
  if (demand_out != nullptr) demand_out->fill(0);
  const auto shards = static_cast<std::uint32_t>(map_.num_shards());
  for (std::uint32_t p = 0; p < shards; ++p) {
    if (p != shard && !Fresh(shard, p)) continue;
    const ShardDigest& view = View(shard, p);
    for (std::size_t d = 0; d < cluster::kNumCrvDims; ++d) {
      load[d] += view.crv_load[d];
      if (demand_out != nullptr) (*demand_out)[d] += view.crv_demand[d];
    }
  }
  return load;
}

std::uint32_t FederationPlane::PickOffloadPeer(std::uint32_t shard) {
  const ShardDigest& own = local_[shard];
  if (own.free_slots > 0) return kNoShard;  // home capacity first
  std::uint32_t best = kNoShard;
  double best_wait = 0;
  bool any_stale_candidate = false;
  const auto shards = static_cast<std::uint32_t>(map_.num_shards());
  for (std::uint32_t p = 0; p < shards; ++p) {
    if (p == shard) continue;
    const ShardDigest& view = View(shard, p);
    if (view.stamp < 0) continue;  // never heard from this peer
    if (!Fresh(shard, p)) {
      any_stale_candidate = true;
      continue;
    }
    if (view.free_slots == 0) continue;
    if (view.mean_wait >= config_.offload_factor * own.mean_wait) continue;
    if (best == kNoShard || view.mean_wait < best_wait) {
      best = p;
      best_wait = view.mean_wait;
    }
  }
  if (best == kNoShard && any_stale_candidate) {
    ++stats_.offloads_blocked_stale;
  }
  return best;
}

}  // namespace phoenix::federation
