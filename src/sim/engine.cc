#include "sim/engine.h"

#include <algorithm>
#include <utility>

namespace phoenix::sim {

namespace {
// Purging pays one O(n) calendar sweep to drop ~n/3 of the entries; below
// this size the win is noise and the sweep would run on every few cancels.
constexpr std::size_t kMinTombstonesForPurge = 64;
// Initial calendar size; doubles whenever live events outgrow it.
constexpr std::size_t kInitialBuckets = 16;
// Growth stops here: beyond a few million buckets the day scan is already
// O(1) per event and the array itself becomes the cache problem.
constexpr std::size_t kMaxBuckets = std::size_t{1} << 22;
}  // namespace

Engine::Engine() : buckets_(kInitialBuckets) {}

Engine::EventId Engine::ScheduleAt(SimTime at, Callback cb) {
  PHOENIX_CHECK_MSG(at >= now_, "cannot schedule an event in the past");
  PHOENIX_CHECK_MSG(cb != nullptr, "null event callback");
  const EventId id = next_seq_++;
  pending_.Insert(id);
  const std::uint64_t day = DayOf(at);
  if (harvested_ && day <= current_day_) {
    // The event lands in the day being served (ScheduleAt(Now()) from
    // inside a callback, or a day the scan already passed): insertion-sort
    // it into the unserved tail. Its seq is larger than every entry already
    // there, so placing it after all entries with time <= at preserves the
    // global (time, seq) order.
    const auto it = std::upper_bound(
        ready_.begin() + static_cast<std::ptrdiff_t>(ready_head_),
        ready_.end(), at,
        [](SimTime t, const Entry& e) { return t < e.time; });
    ready_.insert(it, Entry{at, id, std::move(cb)});
  } else {
    buckets_[day & (buckets_.size() - 1)].push_back(
        Entry{at, id, std::move(cb)});
    ++bucket_entries_;
    MaybeGrow();
  }
  return id;
}

bool Engine::Cancel(EventId id) {
  if (!pending_.Erase(id)) return false;  // unknown, fired, or cancelled
  cancelled_.Insert(id);
  MaybePurge();
  return true;
}

void Engine::MaybeGrow() {
  if (buckets_.size() >= kMaxBuckets ||
      pending_.size() <= buckets_.size() * 2) {
    return;
  }
  // Collect every physical entry (bucket shares plus the unserved ready_
  // tail), retune the day width to the observed span, and redistribute.
  // The next Step re-harvests from day(now_), so serving order is intact.
  std::vector<Entry> all;
  all.reserve(pending_entries());
  for (auto& bucket : buckets_) {
    for (auto& e : bucket) all.push_back(std::move(e));
    bucket.clear();
  }
  for (std::size_t i = ready_head_; i < ready_.size(); ++i) {
    all.push_back(std::move(ready_[i]));
  }
  ready_.clear();
  ready_head_ = 0;
  harvested_ = false;

  std::size_t nbuckets = buckets_.size();
  while (nbuckets < kMaxBuckets && pending_.size() > nbuckets * 2) {
    nbuckets *= 2;
  }
  if (!all.empty()) {
    SimTime lo = all.front().time;
    SimTime hi = lo;
    for (const Entry& e : all) {
      lo = std::min(lo, e.time);
      hi = std::max(hi, e.time);
    }
    // Aim for ~2 events per day over the observed span, so a day's sort
    // stays tiny and a lap of the calendar covers a useful time range.
    const double span = hi - lo;
    if (span > 0) {
      width_ = std::max(span * 2.0 / static_cast<double>(all.size()), 1e-9);
    }
  }
  buckets_.clear();
  buckets_.resize(nbuckets);
  bucket_entries_ = all.size();
  for (auto& e : all) {
    buckets_[DayOf(e.time) & (nbuckets - 1)].push_back(std::move(e));
  }
  current_day_ = DayOf(now_);
}

void Engine::MaybePurge() {
  if (cancelled_.size() < kMinTombstonesForPurge ||
      cancelled_.size() <= pending_.size() / 2) {
    return;
  }
  // Tombstones dominate: sweep them out in one pass, so cancel-heavy
  // workloads keep the calendar at O(live) instead of O(scheduled).
  //
  // Precondition (what makes clearing cancelled_ below safe even when this
  // runs from a callback mid-way through a harvested day): every id in
  // cancelled_ has exactly one physical entry, and it sits in a bucket or
  // in the *unserved* ready_ tail. Cancel only tombstones pending ids (so
  // the entry exists and has not been served), and Step reclaims any
  // tombstone it passes over, so none can hide in the served husk region
  // [0, ready_head_). The sweep therefore drops each tombstone exactly
  // once, and afterwards the set can be cleared with nothing left for the
  // rest of the harvested run to consult. Both are checked below.
  std::size_t dropped = 0;
  for (auto& bucket : buckets_) {
    std::size_t w = 0;
    for (std::size_t r = 0; r < bucket.size(); ++r) {
      if (cancelled_.Contains(bucket[r].seq)) {
        ++dropped;
        continue;
      }
      if (w != r) bucket[w] = std::move(bucket[r]);
      ++w;
    }
    bucket_entries_ -= bucket.size() - w;
    bucket.resize(w);
  }
  // Compact the unserved ready_ tail in place (dropping served husks too).
  std::size_t w = 0;
  for (std::size_t r = ready_head_; r < ready_.size(); ++r) {
    if (cancelled_.Contains(ready_[r].seq)) {
      ++dropped;
      continue;
    }
    if (w != r) ready_[w] = std::move(ready_[r]);
    ++w;
  }
  ready_.resize(w);
  ready_head_ = 0;
  PHOENIX_CHECK_MSG(dropped == cancelled_.size(),
                    "purge dropped a different number of entries than there "
                    "are tombstones: a cancelled event was served, double-"
                    "counted, or physically lost");
  cancelled_.clear();
  ++compactions_;
  PHOENIX_CHECK(pending_entries() == pending_.size());
}

void Engine::Harvest() {
  auto& bucket = buckets_[current_day_ & (buckets_.size() - 1)];
  std::size_t w = 0;
  for (std::size_t r = 0; r < bucket.size(); ++r) {
    if (DayOf(bucket[r].time) <= current_day_) {
      ready_.push_back(std::move(bucket[r]));
    } else {
      if (w != r) bucket[w] = std::move(bucket[r]);
      ++w;
    }
  }
  bucket_entries_ -= bucket.size() - w;
  bucket.resize(w);
  std::sort(ready_.begin(), ready_.end(), [](const Entry& a, const Entry& b) {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  });
  harvested_ = true;
}

void Engine::AdvanceToNextDay() {
  const std::size_t nbuckets = buckets_.size();
  std::size_t scanned = 0;
  for (;;) {
    const auto& bucket = buckets_[current_day_ & (nbuckets - 1)];
    bool has_current = false;
    for (const Entry& e : bucket) {
      if (DayOf(e.time) <= current_day_) {
        has_current = true;
        break;
      }
    }
    if (has_current) break;
    ++current_day_;
    if (++scanned >= nbuckets) {
      // A full lap of empty days: the calendar is sparse here, so jump
      // straight to the earliest remaining day instead of walking to it.
      std::uint64_t min_day = ~std::uint64_t{0};
      for (const auto& b : buckets_) {
        for (const Entry& e : b) min_day = std::min(min_day, DayOf(e.time));
      }
      current_day_ = min_day;
      break;
    }
  }
  Harvest();
}

std::vector<Engine::EventId> Engine::PendingIds() const {
  std::vector<EventId> ids;
  ids.reserve(pending_.size());
  pending_.ForEach([&ids](std::uint64_t id) { ids.push_back(id); });
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::uint64_t Engine::Run(SimTime until) {
  std::uint64_t fired = 0;
  while (Step(until)) ++fired;
  return fired;
}

bool Engine::Step(SimTime until) {
  for (;;) {
    while (ready_head_ < ready_.size()) {
      if (cancelled_.Erase(ready_[ready_head_].seq)) {
        ++ready_head_;  // tombstone: reclaim and skip
        continue;
      }
      if (ready_[ready_head_].time > until) return false;
      // Move the entry out before running it: the callback may schedule
      // same-day events, which mutates ready_.
      Entry entry = std::move(ready_[ready_head_]);
      ++ready_head_;
      pending_.Erase(entry.seq);
      PHOENIX_CHECK_MSG(entry.time >= now_, "event time went backwards");
      now_ = entry.time;
      ++events_fired_;
      entry.cb();
      return true;
    }
    ready_.clear();
    ready_head_ = 0;
    harvested_ = false;
    if (pending_.empty()) {
      // Nothing live: drop any straggler tombstones so the calendar is
      // physically empty too.
      if (bucket_entries_ > 0) {
        for (auto& bucket : buckets_) bucket.clear();
        bucket_entries_ = 0;
        cancelled_.clear();
      }
      current_day_ = DayOf(now_);
      return false;
    }
    AdvanceToNextDay();
  }
}

}  // namespace phoenix::sim
