#include "sim/engine.h"

#include <algorithm>

namespace phoenix::sim {

namespace {
// Compaction pays one O(n) rebuild to drop ~n/3 of the heap; below this
// size the win is noise and the rebuild would run on every few cancels.
constexpr std::size_t kMinTombstonesForCompaction = 64;
}  // namespace

Engine::EventId Engine::ScheduleAt(SimTime at, Callback cb) {
  PHOENIX_CHECK_MSG(at >= now_, "cannot schedule an event in the past");
  PHOENIX_CHECK_MSG(cb != nullptr, "null event callback");
  const EventId id = next_seq_++;
  heap_.push_back(Entry{at, id, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  ++live_events_;
  return id;
}

bool Engine::Cancel(EventId id) {
  if (id >= next_seq_) return false;
  // The cancelled list stays small (probes cancel their siblings promptly),
  // so a sorted vector + binary search beats a hash set here.
  const auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), id);
  if (it != cancelled_.end() && *it == id) return false;  // already cancelled
  cancelled_.insert(it, id);
  PHOENIX_CHECK(live_events_ > 0);
  --live_events_;
  MaybeCompact();
  return true;
}

void Engine::MaybeCompact() {
  if (cancelled_.size() < kMinTombstonesForCompaction ||
      cancelled_.size() <= live_events_ / 2) {
    return;
  }
  // Tombstones dominate: filter them out in one pass and re-heapify, so
  // cancel-heavy workloads keep the heap at O(live) instead of O(scheduled).
  std::erase_if(heap_, [this](const Entry& e) {
    return std::binary_search(cancelled_.begin(), cancelled_.end(), e.seq);
  });
  cancelled_.clear();
  std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
  ++compactions_;
  PHOENIX_CHECK(heap_.size() == live_events_);
}

void Engine::SkipCancelled() {
  while (!heap_.empty()) {
    const EventId id = heap_.front().seq;
    const auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), id);
    if (it == cancelled_.end() || *it != id) return;
    cancelled_.erase(it);
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
  }
}

bool Engine::IsPending(EventId id) const {
  if (id >= next_seq_) return false;
  if (std::binary_search(cancelled_.begin(), cancelled_.end(), id)) {
    return false;
  }
  for (const Entry& e : heap_) {
    if (e.seq == id) return true;
  }
  return false;
}

std::vector<Engine::EventId> Engine::PendingIds() const {
  std::vector<EventId> ids;
  ids.reserve(live_events_);
  for (const Entry& e : heap_) {
    if (!std::binary_search(cancelled_.begin(), cancelled_.end(), e.seq)) {
      ids.push_back(e.seq);
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::uint64_t Engine::Run(SimTime until) {
  std::uint64_t fired = 0;
  while (Step(until)) ++fired;
  return fired;
}

bool Engine::Step(SimTime until) {
  SkipCancelled();
  if (heap_.empty() || heap_.front().time > until) return false;
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  // Move the callback out before running it: the callback may schedule
  // events, which mutates the heap.
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  PHOENIX_CHECK(live_events_ > 0);
  --live_events_;
  PHOENIX_CHECK_MSG(entry.time >= now_, "event time went backwards");
  now_ = entry.time;
  ++events_fired_;
  entry.cb();
  return true;
}

}  // namespace phoenix::sim
