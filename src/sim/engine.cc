#include "sim/engine.h"

#include <algorithm>

namespace phoenix::sim {

Engine::EventId Engine::ScheduleAt(SimTime at, Callback cb) {
  PHOENIX_CHECK_MSG(at >= now_, "cannot schedule an event in the past");
  PHOENIX_CHECK_MSG(cb != nullptr, "null event callback");
  const EventId id = next_seq_++;
  heap_.push(Entry{at, id, std::move(cb)});
  ++live_events_;
  return id;
}

bool Engine::Cancel(EventId id) {
  if (id >= next_seq_) return false;
  // The cancelled list stays small (probes cancel their siblings promptly),
  // so a sorted vector + binary search beats a hash set here.
  const auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), id);
  if (it != cancelled_.end() && *it == id) return false;  // already cancelled
  cancelled_.insert(it, id);
  PHOENIX_CHECK(live_events_ > 0);
  --live_events_;
  return true;
}

void Engine::SkipCancelled() {
  while (!heap_.empty()) {
    const EventId id = heap_.top().seq;
    const auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), id);
    if (it == cancelled_.end() || *it != id) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

std::uint64_t Engine::Run(SimTime until) {
  std::uint64_t fired = 0;
  while (Step(until)) ++fired;
  return fired;
}

bool Engine::Step(SimTime until) {
  SkipCancelled();
  if (heap_.empty() || heap_.top().time > until) return false;
  // Move the callback out before popping: the callback may schedule events,
  // which mutates the heap.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  PHOENIX_CHECK(live_events_ > 0);
  --live_events_;
  PHOENIX_CHECK_MSG(entry.time >= now_, "event time went backwards");
  now_ = entry.time;
  ++events_fired_;
  entry.cb();
  return true;
}

}  // namespace phoenix::sim
