// Simulation time.
//
// Time is a double in seconds since simulation start. The paper's traces are
// second-granularity with sub-millisecond scheduling latencies (0.5 ms RTT),
// which a double represents exactly enough for month-long runs (~2.6e6 s,
// leaving ~1e-10 s of resolution).
#pragma once

namespace phoenix::sim {

using SimTime = double;

inline constexpr SimTime kMillisecond = 1e-3;
inline constexpr SimTime kSecond = 1.0;
inline constexpr SimTime kMinute = 60.0;
inline constexpr SimTime kHour = 3600.0;

/// Sentinel for "no deadline".
inline constexpr SimTime kTimeInfinity = 1e300;

}  // namespace phoenix::sim
