// Discrete-event simulation engine.
//
// A single-threaded event loop over a min-heap of (time, sequence) keyed
// events. Sequence numbers make execution order deterministic for events
// scheduled at the same instant (FIFO in scheduling order), which in turn
// makes every experiment reproducible from its seed.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simtime.h"
#include "util/check.h"

namespace phoenix::sim {

class Engine {
 public:
  using Callback = std::function<void()>;

  /// Opaque handle for cancellation.
  using EventId = std::uint64_t;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulation time. Valid inside callbacks and after Run* returns.
  SimTime Now() const { return now_; }

  /// Schedules `cb` to run at absolute time `at` (>= Now()).
  EventId ScheduleAt(SimTime at, Callback cb);

  /// Schedules `cb` to run `delay` seconds from now (delay >= 0).
  EventId ScheduleAfter(SimTime delay, Callback cb) {
    return ScheduleAt(now_ + delay, std::move(cb));
  }

  /// Cancels a pending event. Returns true if the event had not yet fired.
  /// Cancellation tombstones the heap entry in O(1) amortized; tombstones
  /// are skipped when popped, and the heap is compacted wholesale once
  /// cancelled entries outnumber half of the live ones, so workloads that
  /// cancel heavily (probe siblings) cannot grow the heap unboundedly.
  bool Cancel(EventId id);

  /// Runs until the event queue drains or `until` is reached, whichever is
  /// first. Returns the number of events fired by this call.
  std::uint64_t Run(SimTime until = kTimeInfinity);

  /// Runs exactly one event if any is pending before `until`.
  /// Returns true if an event fired.
  bool Step(SimTime until = kTimeInfinity);

  /// True if `id` was scheduled, has not fired, and is not cancelled.
  /// O(pending) heap scan — meant for audits and tests, not hot paths;
  /// batch callers should use PendingIds() once instead.
  bool IsPending(EventId id) const;

  /// Ids of all live (scheduled, unfired, uncancelled) events, sorted.
  /// Snapshot for structural audits: one O(n log n) pass amortizes the
  /// per-worker pending checks at a heartbeat.
  std::vector<EventId> PendingIds() const;

  bool Empty() const { return live_events_ == 0; }
  std::uint64_t events_fired() const { return events_fired_; }
  std::uint64_t events_scheduled() const { return next_seq_; }
  /// Heap entries currently held, including not-yet-reclaimed tombstones
  /// (bounded by 1.5x the live count once compaction kicks in).
  std::size_t pending_entries() const { return heap_.size(); }
  /// Times the heap was rebuilt to shed tombstones.
  std::uint64_t compactions() const { return compactions_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // doubles as EventId
    Callback cb;
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  // Pops tombstoned (cancelled) entries off the heap top.
  void SkipCancelled();
  // Rebuilds the heap without the tombstoned entries when they dominate.
  void MaybeCompact();

  // Min-heap over Entry (std::greater on operator>), kept as a plain vector
  // so compaction can filter it in place.
  std::vector<Entry> heap_;
  std::vector<EventId> cancelled_;  // sorted lazily; see engine.cc
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t live_events_ = 0;
  std::uint64_t events_fired_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace phoenix::sim
