// Discrete-event simulation engine.
//
// A single-threaded event loop over a calendar queue keyed by
// (time, sequence). Sequence numbers make execution order deterministic for
// events scheduled at the same instant (FIFO in scheduling order), which in
// turn makes every experiment reproducible from its seed.
//
// Layout: events live in power-of-two `buckets_` indexed by
// day & (buckets - 1), where a "day" is floor(time / width_). The loop
// drains one day at a time: the current day's events are harvested out of
// their bucket into `ready_`, sorted once by (time, seq), and served in
// order. Events scheduled *into* the already-harvested day (the
// ScheduleAt(Now()) reentrancy case) are insertion-sorted into the unserved
// ready_ tail, so same-instant FIFO holds across bucket boundaries.
// Bucket count and day width adapt to the live population (doubling
// rebuilds), which changes only where events physically sit — the served
// order is always the global (time, seq) order, bit-identical to a binary
// heap with the same tie-break.
//
// Cancellation is O(1): the id is dropped from the `pending_` set and
// parked in the `cancelled_` tombstone set; the stale calendar entry is
// skipped when its day is served, and tombstones are purged wholesale once
// they outnumber half of the live events.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simtime.h"
#include "util/check.h"
#include "util/flat_hash.h"
#include "util/inline_function.h"

namespace phoenix::sim {

class Engine {
 public:
  /// Small-buffer callable: the hot callbacks (task completions, probe
  /// resolutions, RPC deliveries) fit the inline capacity, so scheduling
  /// them never touches the allocator.
  using Callback = util::InlineFunction<void()>;

  /// Opaque handle for cancellation.
  using EventId = std::uint64_t;

  Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulation time. Valid inside callbacks and after Run* returns.
  SimTime Now() const { return now_; }

  /// Schedules `cb` to run at absolute time `at` (>= Now()).
  EventId ScheduleAt(SimTime at, Callback cb);

  /// Schedules `cb` to run `delay` seconds from now (delay >= 0).
  EventId ScheduleAfter(SimTime delay, Callback cb) {
    return ScheduleAt(now_ + delay, std::move(cb));
  }

  /// Cancels a pending event. Returns true if the event had not yet fired.
  /// O(1): the live set drops the id and the calendar entry becomes a
  /// tombstone, purged wholesale once tombstones outnumber half the live
  /// events — so workloads that cancel heavily (probe siblings) cannot grow
  /// the calendar unboundedly.
  bool Cancel(EventId id);

  /// Runs until the event queue drains or `until` is reached, whichever is
  /// first. Returns the number of events fired by this call.
  std::uint64_t Run(SimTime until = kTimeInfinity);

  /// Runs exactly one event if any is pending before `until`.
  /// Returns true if an event fired.
  bool Step(SimTime until = kTimeInfinity);

  /// True if `id` was scheduled, has not fired, and is not cancelled.
  /// O(1) hash probe — safe on hot paths as well as audits.
  bool IsPending(EventId id) const { return pending_.Contains(id); }

  /// Ids of all live (scheduled, unfired, uncancelled) events, sorted.
  /// Snapshot for structural audits: one O(n log n) pass amortizes the
  /// per-worker pending checks at a heartbeat.
  std::vector<EventId> PendingIds() const;

  bool Empty() const { return pending_.empty(); }
  std::uint64_t events_fired() const { return events_fired_; }
  std::uint64_t events_scheduled() const { return next_seq_; }
  /// Calendar entries currently held, including not-yet-reclaimed
  /// tombstones (bounded by 1.5x the live count once purging kicks in).
  std::size_t pending_entries() const {
    return bucket_entries_ + (ready_.size() - ready_head_);
  }
  /// Times the calendar was swept to shed tombstones.
  std::uint64_t compactions() const { return compactions_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // doubles as EventId
    Callback cb;
  };

  // floor(at / width_), clamped so far-future sentinels cannot overflow the
  // day counter. Correctness only needs monotonicity in `at`: a clamped
  // day collapses the far future into one bucket that still sorts fully.
  std::uint64_t DayOf(SimTime at) const {
    const double day = at / width_;
    return day >= 9.0e18 ? static_cast<std::uint64_t>(9.0e18)
                         : static_cast<std::uint64_t>(day);
  }

  // Advances current_day_ to the next day holding any entry (one-lap scan,
  // then a direct min-day jump for sparse calendars) and harvests it.
  void AdvanceToNextDay();
  // Moves current_day_'s entries from their bucket into ready_, sorted.
  void Harvest();
  // Doubles the bucket array and retunes the day width once the live
  // population outgrows the calendar. Placement-only: serving order is
  // unaffected.
  void MaybeGrow();
  // Sweeps tombstoned entries out of the calendar when they dominate.
  void MaybePurge();

  std::vector<std::vector<Entry>> buckets_;
  std::size_t bucket_entries_ = 0;  // physical entries across buckets_
  double width_ = 1.0;              // day width, seconds
  std::uint64_t current_day_ = 0;
  // True once current_day_'s bucket share has been moved into ready_;
  // from then on, same-day arrivals insertion-sort into the ready_ tail.
  bool harvested_ = false;
  std::vector<Entry> ready_;  // current day, (time, seq)-sorted
  std::size_t ready_head_ = 0;

  util::FlatHashSet pending_;    // scheduled, unfired, uncancelled
  util::FlatHashSet cancelled_;  // cancelled ids still in the calendar

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_fired_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace phoenix::sim
