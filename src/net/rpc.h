// Reliable delivery on top of the NetworkFabric.
//
// The fabric is a lossy datagram layer; Rpc adds the sender-side reliability
// the scheduler needs so chaos injection degrades latency instead of
// stranding work:
//
//   * Send — at-least-once one-way delivery with a per-attempt timeout,
//     bounded retries, and exponential backoff. The receiver callback runs
//     exactly once (first arrival wins; duplicate and post-resolution
//     arrivals are expired). When every attempt times out, on_fail runs and
//     the caller re-covers the work (the scheduler re-dispatches the entry,
//     which is what makes "zero lost jobs under drop" structural).
//   * RoundTrip — a collapsed request/reply exchange (src -> dst -> src),
//     two fabric messages per attempt under one deadline. Used for the
//     late-binding fetch that holds a worker slot; the call id is the
//     slot's cancellable handle (machine failure cancels the call the same
//     way it used to cancel the bare engine event).
//
// Fast path: while the fabric guarantees delivery (FastPath()), Send posts
// the message with no call bookkeeping and RoundTrip schedules a single
// engine event — preserving byte-identical behavior with chaos disabled.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "net/fabric.h"
#include "sim/engine.h"

namespace phoenix::net {

struct RpcConfig {
  /// Base per-attempt deadline, seconds. The effective deadline is
  /// max(timeout, 3 x nominal transit) so a latency sweep cannot push every
  /// attempt into spurious timeout.
  double timeout = 0.01;
  /// Retries after the first attempt (total attempts = max_retries + 1).
  std::size_t max_retries = 3;
  /// Deadline multiplier per retry (exponential backoff).
  double backoff = 2.0;
};

struct RpcStats {
  std::uint64_t calls = 0;     // reliable calls issued (fast path excluded)
  std::uint64_t retries = 0;   // attempts beyond the first
  std::uint64_t failures = 0;  // calls that exhausted every attempt
  std::uint64_t cancelled = 0;
};

class Rpc {
 public:
  /// Live-call handle; 0 means "no call" (fast-path sends return it).
  using CallId = std::uint64_t;

  Rpc(sim::Engine& engine, NetworkFabric& fabric, const RpcConfig& config);

  Rpc(const Rpc&) = delete;
  Rpc& operator=(const Rpc&) = delete;

  /// At-least-once one-way delivery of a `kind` message to `dst`.
  /// `on_deliver` runs at the first arrival; `on_fail` runs if max_retries
  /// attempts all time out. Returns 0 on the fast path (delivery certain,
  /// nothing to cancel).
  CallId Send(cluster::MachineId src, cluster::MachineId dst,
              MessageKind kind, double nominal,
              std::function<void()> on_deliver,
              std::function<void()> on_fail);

  /// Request/reply round trip (src -> dst -> src) with total nominal
  /// transit `nominal_rtt` (each leg pays half). `on_success` runs at reply
  /// arrival, `on_fail` after exhausted retries. Always returns a live call
  /// id — callers park a worker slot on it and must Cancel on failure of
  /// the slot's machine.
  CallId RoundTrip(cluster::MachineId src, cluster::MachineId dst,
                   MessageKind kind, double nominal_rtt,
                   std::function<void()> on_success,
                   std::function<void()> on_fail);

  /// True while the call is unresolved (its deadline or delivery event is
  /// live in the engine) — the audit's "busy slot has a live event" proof.
  bool Alive(CallId id) const { return calls_.find(id) != calls_.end(); }

  /// Cancels a live call: the timer dies now, in-flight messages expire on
  /// arrival, and no callback ever runs. No-op for resolved calls.
  void Cancel(CallId id);

  const RpcStats& stats() const { return stats_; }
  const RpcConfig& config() const { return config_; }

 private:
  struct Call {
    cluster::MachineId src = kControllerNode;
    cluster::MachineId dst = kControllerNode;
    MessageKind kind = MessageKind::kProbe;
    double nominal = 0;
    bool round_trip = false;
    /// Fast-path round trip: `timer` is the delivery event itself, not a
    /// deadline (and must not be cancelled when it resolves the call).
    bool fast = false;
    std::size_t attempt = 0;
    sim::Engine::EventId timer = 0;
    std::function<void()> on_ok;
    std::function<void()> on_fail;
  };

  using CallMap = std::unordered_map<CallId, Call>;

  /// Sends the call's message(s) for the current attempt and arms the
  /// attempt deadline.
  void Attempt(CallId id);
  void OnTimeout(CallId id);
  double AttemptDeadline(const Call& call) const;
  /// Detaches a resolving call: cancels its timer (reliable calls only) and
  /// removes it from the table, returning it so callbacks can run after the
  /// map mutation is complete.
  Call TakeResolved(CallMap::iterator it);

  sim::Engine& engine_;
  NetworkFabric& fabric_;
  RpcConfig config_;
  CallId last_call_ = 0;
  CallMap calls_;
  RpcStats stats_;
};

}  // namespace phoenix::net
