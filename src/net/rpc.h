// Reliable delivery on top of the NetworkFabric.
//
// The fabric is a lossy datagram layer; Rpc adds the sender-side reliability
// the scheduler needs so chaos injection degrades latency instead of
// stranding work:
//
//   * Send — at-least-once one-way delivery with a per-attempt timeout,
//     bounded retries, and exponential backoff. The receiver callback runs
//     exactly once (first arrival wins; duplicate and post-resolution
//     arrivals are expired). When every attempt times out, on_fail runs and
//     the caller re-covers the work (the scheduler re-dispatches the entry,
//     which is what makes "zero lost jobs under drop" structural).
//   * RoundTrip — a collapsed request/reply exchange (src -> dst -> src),
//     two fabric messages per attempt under one deadline. Used for the
//     late-binding fetch that holds a worker slot; the call id is the
//     slot's cancellable handle (machine failure cancels the call the same
//     way it used to cancel the bare engine event).
//
// Fast path: while the fabric guarantees delivery (FastPath()), Send posts
// the message with no call bookkeeping and RoundTrip schedules a single
// engine event — preserving byte-identical behavior with chaos disabled.
//
// Call records live in a slot pool (vector + free list) rather than a node
// map: a call id packs (generation << 32 | slot + 1), so Alive/Cancel are
// two array reads and issuing a call on the hot fetch path reuses a slot
// with no allocation. Generations make stale ids (kept by a worker whose
// call resolved long ago) miss instead of aliasing the slot's new tenant.
#pragma once

#include <cstdint>
#include <vector>

#include "net/fabric.h"
#include "sim/engine.h"

namespace phoenix::net {

struct RpcConfig {
  /// Base per-attempt deadline, seconds. The effective deadline is
  /// max(timeout, 3 x nominal transit) so a latency sweep cannot push every
  /// attempt into spurious timeout.
  double timeout = 0.01;
  /// Retries after the first attempt (total attempts = max_retries + 1).
  std::size_t max_retries = 3;
  /// Deadline multiplier per retry (exponential backoff).
  double backoff = 2.0;
};

struct RpcStats {
  std::uint64_t calls = 0;     // reliable calls issued (fast path excluded)
  std::uint64_t retries = 0;   // attempts beyond the first
  std::uint64_t failures = 0;  // calls that exhausted every attempt
  std::uint64_t cancelled = 0;
};

class Rpc {
 public:
  /// Live-call handle; 0 means "no call" (fast-path sends return it).
  /// Packs (generation << 32) | (slot index + 1).
  using CallId = std::uint64_t;
  /// Caller continuations ride the engine's allocation-free callback type.
  using Callback = sim::Engine::Callback;

  Rpc(sim::Engine& engine, NetworkFabric& fabric, const RpcConfig& config);

  Rpc(const Rpc&) = delete;
  Rpc& operator=(const Rpc&) = delete;

  /// At-least-once one-way delivery of a `kind` message to `dst`.
  /// `on_deliver` runs at the first arrival; `on_fail` runs if max_retries
  /// attempts all time out. Returns 0 on the fast path (delivery certain,
  /// nothing to cancel).
  CallId Send(cluster::MachineId src, cluster::MachineId dst,
              MessageKind kind, double nominal, Callback on_deliver,
              Callback on_fail);

  /// Request/reply round trip (src -> dst -> src) with total nominal
  /// transit `nominal_rtt` (each leg pays half). `on_success` runs at reply
  /// arrival, `on_fail` after exhausted retries. Always returns a live call
  /// id — callers park a worker slot on it and must Cancel on failure of
  /// the slot's machine.
  CallId RoundTrip(cluster::MachineId src, cluster::MachineId dst,
                   MessageKind kind, double nominal_rtt, Callback on_success,
                   Callback on_fail);

  /// True while the call is unresolved (its deadline or delivery event is
  /// live in the engine) — the audit's "busy slot has a live event" proof.
  bool Alive(CallId id) const { return FindLive(id) != nullptr; }

  /// Cancels a live call: the timer dies now, in-flight messages expire on
  /// arrival, and no callback ever runs. No-op for resolved calls.
  void Cancel(CallId id);

  const RpcStats& stats() const { return stats_; }
  const RpcConfig& config() const { return config_; }

  /// Test-only: plants `generation` on an existing (freed) slot so tests can
  /// exercise the 2^32 generation wrap without issuing four billion calls.
  void SetGenerationForTest(std::uint32_t slot, std::uint32_t generation) {
    slots_[slot].generation = generation;
  }

 private:
  struct Call {
    cluster::MachineId src = kControllerNode;
    cluster::MachineId dst = kControllerNode;
    MessageKind kind = MessageKind::kProbe;
    double nominal = 0;
    bool round_trip = false;
    /// Fast-path round trip: `timer` is the delivery event itself, not a
    /// deadline (and must not be cancelled when it resolves the call).
    bool fast = false;
    /// Slot is occupied by an unresolved call.
    bool live = false;
    std::size_t attempt = 0;
    /// Bumped each time the slot is (re)issued; part of the call id.
    std::uint32_t generation = 0;
    sim::Engine::EventId timer = 0;
    Callback on_ok;
    Callback on_fail;
  };

  static std::uint32_t SlotOf(CallId id) {
    return static_cast<std::uint32_t>(id) - 1;
  }

  /// Slot lookup with generation check; nullptr for resolved/stale ids.
  Call* FindLive(CallId id);
  const Call* FindLive(CallId id) const;

  /// Takes a slot from the free list (or grows the pool), bumps its
  /// generation, and returns the new id. The slot's callbacks are empty.
  CallId Issue();

  /// Detaches a resolving call: cancels its timer (reliable calls only),
  /// releases the slot to the free list, and returns the record by move so
  /// callbacks can run after the pool mutation is complete.
  Call TakeResolved(CallId id);

  void Release(std::uint32_t slot);

  /// Sends the call's message(s) for the current attempt and arms the
  /// attempt deadline.
  void Attempt(CallId id);
  void OnTimeout(CallId id);
  double AttemptDeadline(const Call& call) const;

  sim::Engine& engine_;
  NetworkFabric& fabric_;
  RpcConfig config_;
  std::vector<Call> slots_;
  std::vector<std::uint32_t> free_;
  RpcStats stats_;
};

}  // namespace phoenix::net
