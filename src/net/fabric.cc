#include "net/fabric.h"

#include <algorithm>
#include <iterator>

#include "queueing/distributions.h"
#include "util/check.h"

namespace phoenix::net {

namespace {

// Built-in empirical multiplier table: a stand-in for a measured datacenter
// RPC latency histogram — most messages near nominal, a heavy tail out to
// 10x (switch queueing, kernel scheduling hiccups).
const double kDefaultEmpirical[] = {0.8, 0.85, 0.9,  0.95, 1.0, 1.0,
                                    1.0, 1.05, 1.1,  1.2,  1.3, 1.5,
                                    2.0, 3.0,  5.0,  10.0};

}  // namespace

NetworkFabric::NetworkFabric(sim::Engine& engine, const FabricConfig& config,
                             std::uint64_t run_seed)
    : engine_(engine), config_(config), ideal_config_(config.ideal()) {
  PHOENIX_CHECK_MSG(config_.one_way >= 0, "negative one-way latency");
  PHOENIX_CHECK_MSG(config_.drop_rate >= 0 && config_.drop_rate < 1,
                    "drop rate must be in [0, 1)");
  PHOENIX_CHECK_MSG(
      config_.duplicate_rate >= 0 && config_.duplicate_rate < 1,
      "duplicate rate must be in [0, 1)");
  PHOENIX_CHECK_MSG(config_.reorder_rate >= 0 && config_.reorder_rate < 1,
                    "reorder rate must be in [0, 1)");
  PHOENIX_CHECK_MSG(config_.jitter >= 0 && config_.jitter < 1,
                    "jitter must be in [0, 1)");
  // Mix the run seed with the fabric's own stream id so per-seed repeats
  // decorrelate while two fabrics with the same (run, fabric) seeds agree.
  std::uint64_t s = run_seed;
  seed_mix_ = util::SplitMix64(s) ^ config_.seed;
}

util::Rng NetworkFabric::MessageRng(MessageId id) const {
  std::uint64_t s = seed_mix_ + id * 0x9e3779b97f4a7c15ULL;
  return util::Rng(util::SplitMix64(s));
}

double NetworkFabric::SampleDelay(double nominal, util::Rng& rng) const {
  switch (config_.model) {
    case LatencyModel::kConstant:
      return nominal;
    case LatencyModel::kUniform:
      return nominal * rng.Uniform(1.0 - config_.jitter, 1.0 + config_.jitter);
    case LatencyModel::kLognormal:
      // mu = -sigma^2/2 keeps the multiplier's mean at exactly 1, so the
      // latency model changes the shape of the transit distribution without
      // shifting its average away from the nominal constant.
      return nominal *
             queueing::SampleLogNormal(rng,
                                       -0.5 * config_.sigma * config_.sigma,
                                       config_.sigma);
    case LatencyModel::kEmpirical: {
      if (config_.empirical.empty()) {
        const std::size_t n = std::size(kDefaultEmpirical);
        return nominal * kDefaultEmpirical[rng.NextBounded(n)];
      }
      return nominal *
             config_.empirical[rng.NextBounded(config_.empirical.size())];
    }
  }
  return nominal;
}

void NetworkFabric::EmitMessage(obs::EventType type, MessageKind kind,
                                cluster::MachineId dst, MessageId id) {
  if (!emitter_) return;
  obs::Event event;
  event.time = engine_.Now();
  event.type = type;
  event.job = obs::kNoId;
  event.machine = dst;
  event.task = static_cast<std::uint32_t>(kind);
  // Message ids stay exact in a double up to 2^53 — far beyond any run.
  event.value = static_cast<double>(id);
  emitter_(event);
}

void NetworkFabric::EmitEvent(obs::EventType type, std::uint32_t machine,
                              std::uint32_t task, double value) {
  if (!emitter_) return;
  obs::Event event;
  event.time = engine_.Now();
  event.type = type;
  event.job = obs::kNoId;
  event.machine = machine;
  event.task = task;
  event.value = value;
  emitter_(event);
}

bool NetworkFabric::Severed(cluster::MachineId src,
                            cluster::MachineId dst) const {
  if (!PartitionActive()) return false;
  const auto side = [this](cluster::MachineId m) {
    return m != kControllerNode && m < partitioned_.size() &&
           partitioned_[m] != 0;
  };
  return side(src) != side(dst);
}

void NetworkFabric::Partition(const std::vector<cluster::MachineId>& machines,
                              double duration) {
  PHOENIX_CHECK_MSG(duration > 0, "partition duration must be positive");
  std::fill(partitioned_.begin(), partitioned_.end(), 0);
  for (const cluster::MachineId m : machines) {
    if (m >= partitioned_.size()) partitioned_.resize(m + 1, 0);
    partitioned_[m] = 1;
  }
  partition_until_ = engine_.Now() + duration;
  ++stats_.partitions;
  EmitEvent(obs::EventType::kPartitionStart, obs::kNoId, obs::kNoId,
            static_cast<double>(machines.size()));
  // The heal event marks the interval's end for traces; Severed() itself
  // only compares against partition_until_, so an overlapping later
  // Partition() call safely supersedes this one.
  engine_.ScheduleAfter(duration, [this, until = partition_until_] {
    if (partition_until_ == until) {
      EmitEvent(obs::EventType::kPartitionEnd, obs::kNoId, obs::kNoId, 0);
    }
  });
}

void NetworkFabric::SendCertain(cluster::MachineId /*src*/,
                                cluster::MachineId /*dst*/,
                                MessageKind /*kind*/, double nominal,
                                sim::Engine::Callback on_arrival) {
  PHOENIX_CHECK_MSG(FastPath(), "SendCertain requires the fast path");
  ++stats_.sent;
  ++stats_.delivered;
  engine_.ScheduleAfter(nominal, std::move(on_arrival));
}

MessageId NetworkFabric::Send(cluster::MachineId src, cluster::MachineId dst,
                              MessageKind kind, double nominal,
                              DeliveryFn on_arrival) {
  ++stats_.sent;
  if (FastPath()) {
    // Byte-identity path: one event, no RNG draws, no message events —
    // exactly what the scheduler did before the fabric existed.
    ++stats_.delivered;
    engine_.ScheduleAfter(nominal,
                          [fn = std::move(on_arrival)]() mutable { fn(); });
    return 0;
  }
  const MessageId id = ++last_id_;
  auto fn = std::make_shared<DeliveryFn>(std::move(on_arrival));
  SendCopy(id, src, dst, kind, nominal, fn, /*allow_duplicate=*/true);
  return id;
}

void NetworkFabric::SendCopy(MessageId id, cluster::MachineId src,
                             cluster::MachineId dst, MessageKind kind,
                             double nominal,
                             const std::shared_ptr<DeliveryFn>& fn,
                             bool allow_duplicate) {
  EmitMessage(obs::EventType::kMsgSend, kind, dst, id);
  util::Rng rng = MessageRng(id);
  if (Severed(src, dst)) {
    ++stats_.partition_drops;
    EmitMessage(obs::EventType::kMsgDrop, kind, dst, id);
    return;
  }
  if (config_.drop_rate > 0 && rng.Bernoulli(config_.drop_rate)) {
    ++stats_.dropped;
    EmitMessage(obs::EventType::kMsgDrop, kind, dst, id);
    return;
  }
  double delay = SampleDelay(nominal, rng);
  if (config_.reorder_rate > 0 && rng.Bernoulli(config_.reorder_rate)) {
    ++stats_.reordered;
    delay += nominal * rng.Uniform(1.0, 3.0);
  }
  // A duplicate is a fresh copy with its own id and RNG stream (so the
  // conservation rule sees one send + one terminal per id), sharing the
  // receiver callback — the receiver's dedup decides which copy "wins".
  const bool duplicate = allow_duplicate && config_.duplicate_rate > 0 &&
                         rng.Bernoulli(config_.duplicate_rate);
  engine_.ScheduleAfter(delay, [this, id, kind, dst, fn] {
    if ((*fn)()) {
      ++stats_.delivered;
      EmitMessage(obs::EventType::kMsgDeliver, kind, dst, id);
    } else {
      ++stats_.expired;
      EmitMessage(obs::EventType::kMsgExpire, kind, dst, id);
    }
  });
  if (duplicate) {
    ++stats_.duplicated;
    ++stats_.sent;
    SendCopy(++last_id_, src, dst, kind, nominal, fn,
             /*allow_duplicate=*/false);
  }
}

}  // namespace phoenix::net
