#include "net/rpc.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/check.h"

namespace phoenix::net {

namespace {

MessageKind ReplyKind(MessageKind request) {
  return request == MessageKind::kFetchRequest ? MessageKind::kFetchReply
                                               : request;
}

}  // namespace

Rpc::Rpc(sim::Engine& engine, NetworkFabric& fabric, const RpcConfig& config)
    : engine_(engine), fabric_(fabric), config_(config) {
  PHOENIX_CHECK_MSG(config_.timeout > 0, "rpc timeout must be positive");
  PHOENIX_CHECK_MSG(config_.backoff >= 1.0, "rpc backoff must be >= 1");
}

double Rpc::AttemptDeadline(const Call& call) const {
  const double base = std::max(config_.timeout, 3.0 * call.nominal);
  return base * std::pow(config_.backoff, static_cast<double>(call.attempt));
}

Rpc::Call* Rpc::FindLive(CallId id) {
  if (id == 0) return nullptr;
  const std::uint32_t slot = SlotOf(id);
  if (slot >= slots_.size()) return nullptr;
  Call& call = slots_[slot];
  if (!call.live || call.generation != static_cast<std::uint32_t>(id >> 32)) {
    return nullptr;
  }
  return &call;
}

const Rpc::Call* Rpc::FindLive(CallId id) const {
  return const_cast<Rpc*>(this)->FindLive(id);
}

Rpc::CallId Rpc::Issue() {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Call& call = slots_[slot];
  // Reset everything except the generation, which outlives tenants so a
  // stale id held by a caller can never alias the slot's next occupant.
  call.round_trip = false;
  call.fast = false;
  call.attempt = 0;
  call.timer = 0;
  call.live = true;
  ++call.generation;
  // Skip 0 on wrap: generation 0 is the never-issued state (and id 0 is the
  // "no call" sentinel), so a slot that cycles through 2^32 tenants must not
  // mint ids indistinguishable from it.
  if (call.generation == 0) ++call.generation;
  return (static_cast<CallId>(call.generation) << 32) |
         static_cast<CallId>(slot + 1);
}

void Rpc::Release(std::uint32_t slot) {
  Call& call = slots_[slot];
  call.live = false;
  call.on_ok = nullptr;
  call.on_fail = nullptr;
  free_.push_back(slot);
}

Rpc::Call Rpc::TakeResolved(CallId id) {
  const std::uint32_t slot = SlotOf(id);
  Call taken = std::move(slots_[slot]);
  if (!taken.fast) engine_.Cancel(taken.timer);
  Release(slot);
  return taken;
}

void Rpc::Cancel(CallId id) {
  Call* call = FindLive(id);
  if (call == nullptr) return;
  engine_.Cancel(call->timer);
  Release(SlotOf(id));
  ++stats_.cancelled;
}

Rpc::CallId Rpc::Send(cluster::MachineId src, cluster::MachineId dst,
                      MessageKind kind, double nominal, Callback on_deliver,
                      Callback on_fail) {
  if (fabric_.FastPath()) {
    fabric_.SendCertain(src, dst, kind, nominal, std::move(on_deliver));
    return 0;
  }
  const CallId id = Issue();
  Call& call = slots_[SlotOf(id)];
  call.src = src;
  call.dst = dst;
  call.kind = kind;
  call.nominal = nominal;
  call.on_ok = std::move(on_deliver);
  call.on_fail = std::move(on_fail);
  ++stats_.calls;
  Attempt(id);
  return id;
}

Rpc::CallId Rpc::RoundTrip(cluster::MachineId src, cluster::MachineId dst,
                           MessageKind kind, double nominal_rtt,
                           Callback on_success, Callback on_fail) {
  const CallId id = Issue();
  Call& call = slots_[SlotOf(id)];
  call.src = src;
  call.dst = dst;
  call.kind = kind;
  call.nominal = nominal_rtt;
  call.round_trip = true;
  call.on_ok = std::move(on_success);
  call.on_fail = std::move(on_fail);
  if (fabric_.FastPath()) {
    // Delivery is certain: collapse both legs into the single engine event
    // the pre-fabric scheduler used, registered so Cancel/Alive still work
    // (a machine failure cancels the fetch through the call id).
    call.fast = true;
    call.timer = engine_.ScheduleAfter(nominal_rtt, [this, id] {
      if (FindLive(id) == nullptr) return;  // cancelled after the event fired
      Call resolved = TakeResolved(id);
      resolved.on_ok();
    });
    return id;
  }
  ++stats_.calls;
  Attempt(id);
  return id;
}

void Rpc::Attempt(CallId id) {
  {
    const Call& call = slots_[SlotOf(id)];
    if (!call.round_trip) {
      fabric_.Send(call.src, call.dst, call.kind, call.nominal,
                   [this, id]() -> bool {
                     if (FindLive(id) == nullptr) return false;  // stale
                     Call resolved = TakeResolved(id);
                     resolved.on_ok();
                     return true;
                   });
    } else {
      fabric_.Send(
          call.src, call.dst, call.kind, call.nominal / 2,
          [this, id]() -> bool {
            const Call* live = FindLive(id);
            if (live == nullptr) return false;  // request for a dead call
            // The request landed: send the reply leg. The call stays live
            // until the reply arrives (so a second request copy also
            // triggers a reply — dedup happens at reply arrival).
            fabric_.Send(live->dst, live->src, ReplyKind(live->kind),
                         live->nominal / 2, [this, id]() -> bool {
                           if (FindLive(id) == nullptr) return false;
                           Call resolved = TakeResolved(id);
                           resolved.on_ok();
                           return true;
                         });
            return true;
          });
    }
  }
  // Re-borrow: fabric_.Send only schedules, but keep the access pattern
  // safe against future reentrancy in the delivery path.
  Call& armed = slots_[SlotOf(id)];
  armed.timer = engine_.ScheduleAfter(AttemptDeadline(armed),
                                      [this, id] { OnTimeout(id); });
}

void Rpc::OnTimeout(CallId id) {
  Call* call = FindLive(id);
  if (call == nullptr) return;
  if (call->attempt >= config_.max_retries) {
    Call failed = std::move(*call);
    Release(SlotOf(id));
    ++stats_.failures;
    fabric_.EmitEvent(obs::EventType::kRpcFail, failed.dst,
                      static_cast<std::uint32_t>(failed.kind),
                      static_cast<double>(id));
    if (failed.on_fail) failed.on_fail();
    return;
  }
  ++call->attempt;
  ++stats_.retries;
  fabric_.EmitEvent(obs::EventType::kRpcRetry, call->dst,
                    static_cast<std::uint32_t>(call->kind),
                    static_cast<double>(id));
  Attempt(id);
}

}  // namespace phoenix::net
