#include "net/rpc.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/check.h"

namespace phoenix::net {

namespace {

MessageKind ReplyKind(MessageKind request) {
  return request == MessageKind::kFetchRequest ? MessageKind::kFetchReply
                                               : request;
}

}  // namespace

Rpc::Rpc(sim::Engine& engine, NetworkFabric& fabric, const RpcConfig& config)
    : engine_(engine), fabric_(fabric), config_(config) {
  PHOENIX_CHECK_MSG(config_.timeout > 0, "rpc timeout must be positive");
  PHOENIX_CHECK_MSG(config_.backoff >= 1.0, "rpc backoff must be >= 1");
}

double Rpc::AttemptDeadline(const Call& call) const {
  const double base = std::max(config_.timeout, 3.0 * call.nominal);
  return base * std::pow(config_.backoff, static_cast<double>(call.attempt));
}

Rpc::Call Rpc::TakeResolved(CallMap::iterator it) {
  Call call = std::move(it->second);
  if (!call.fast) engine_.Cancel(call.timer);
  calls_.erase(it);
  return call;
}

void Rpc::Cancel(CallId id) {
  auto it = calls_.find(id);
  if (it == calls_.end()) return;
  engine_.Cancel(it->second.timer);
  calls_.erase(it);
  ++stats_.cancelled;
}

Rpc::CallId Rpc::Send(cluster::MachineId src, cluster::MachineId dst,
                      MessageKind kind, double nominal,
                      std::function<void()> on_deliver,
                      std::function<void()> on_fail) {
  if (fabric_.FastPath()) {
    fabric_.Send(src, dst, kind, nominal,
                 [fn = std::move(on_deliver)] {
                   fn();
                   return true;
                 });
    return 0;
  }
  const CallId id = ++last_call_;
  Call call;
  call.src = src;
  call.dst = dst;
  call.kind = kind;
  call.nominal = nominal;
  call.round_trip = false;
  call.on_ok = std::move(on_deliver);
  call.on_fail = std::move(on_fail);
  calls_.emplace(id, std::move(call));
  ++stats_.calls;
  Attempt(id);
  return id;
}

Rpc::CallId Rpc::RoundTrip(cluster::MachineId src, cluster::MachineId dst,
                           MessageKind kind, double nominal_rtt,
                           std::function<void()> on_success,
                           std::function<void()> on_fail) {
  const CallId id = ++last_call_;
  Call call;
  call.src = src;
  call.dst = dst;
  call.kind = kind;
  call.nominal = nominal_rtt;
  call.round_trip = true;
  call.on_ok = std::move(on_success);
  call.on_fail = std::move(on_fail);
  if (fabric_.FastPath()) {
    // Delivery is certain: collapse both legs into the single engine event
    // the pre-fabric scheduler used, registered so Cancel/Alive still work
    // (a machine failure cancels the fetch through the call id).
    call.fast = true;
    calls_.emplace(id, std::move(call));
    Call& live = calls_.find(id)->second;
    live.timer = engine_.ScheduleAfter(nominal_rtt, [this, id] {
      auto it = calls_.find(id);
      if (it == calls_.end()) return;  // cancelled after the event fired
      Call resolved = std::move(it->second);
      calls_.erase(it);
      resolved.on_ok();
    });
    return id;
  }
  calls_.emplace(id, std::move(call));
  ++stats_.calls;
  Attempt(id);
  return id;
}

void Rpc::Attempt(CallId id) {
  Call& call = calls_.find(id)->second;
  if (!call.round_trip) {
    fabric_.Send(call.src, call.dst, call.kind, call.nominal,
                 [this, id]() -> bool {
                   auto it = calls_.find(id);
                   if (it == calls_.end()) return false;  // stale arrival
                   Call resolved = TakeResolved(it);
                   resolved.on_ok();
                   return true;
                 });
  } else {
    fabric_.Send(
        call.src, call.dst, call.kind, call.nominal / 2,
        [this, id]() -> bool {
          auto it = calls_.find(id);
          if (it == calls_.end()) return false;  // request for a dead call
          // The request landed: send the reply leg. The call stays live
          // until the reply arrives (so a second request copy also
          // triggers a reply — dedup happens at reply arrival).
          const Call& live = it->second;
          fabric_.Send(live.dst, live.src, ReplyKind(live.kind),
                       live.nominal / 2, [this, id]() -> bool {
                         auto reply_it = calls_.find(id);
                         if (reply_it == calls_.end()) return false;
                         Call resolved = TakeResolved(reply_it);
                         resolved.on_ok();
                         return true;
                       });
          return true;
        });
  }
  // Re-find: fabric_.Send only schedules, but keep the access pattern safe
  // against future reentrancy in the delivery path.
  Call& armed = calls_.find(id)->second;
  armed.timer = engine_.ScheduleAfter(AttemptDeadline(armed),
                                      [this, id] { OnTimeout(id); });
}

void Rpc::OnTimeout(CallId id) {
  auto it = calls_.find(id);
  if (it == calls_.end()) return;
  Call& call = it->second;
  if (call.attempt >= config_.max_retries) {
    Call failed = std::move(call);
    calls_.erase(it);
    ++stats_.failures;
    fabric_.EmitEvent(obs::EventType::kRpcFail, failed.dst,
                      static_cast<std::uint32_t>(failed.kind),
                      static_cast<double>(id));
    if (failed.on_fail) failed.on_fail();
    return;
  }
  ++call.attempt;
  ++stats_.retries;
  fabric_.EmitEvent(obs::EventType::kRpcRetry, call.dst,
                    static_cast<std::uint32_t>(call.kind),
                    static_cast<double>(id));
  Attempt(id);
}

}  // namespace phoenix::net
