// Control-plane network fabric.
//
// Every scheduler<->worker control message in the simulation — proxy probes,
// centralized task bindings, late-binding fetch round trips, steal and
// migration transfers, CRV/E[W] heartbeat reports — is delivered through a
// NetworkFabric instead of a bare engine.ScheduleAfter. The fabric owns the
// link model:
//
//   * per-message latency sampling (constant, uniform jitter, lognormal,
//     empirical-from-histogram multipliers over the nominal transit time),
//   * chaos injection: drop, duplicate, and reorder probabilities, plus
//     machine-set partitions for an interval,
//   * message-lifecycle observability (kMsgSend / kMsgDeliver / kMsgDrop /
//     kMsgExpire events carrying the message id) feeding the auditor's
//     conservation rule "every sent message is delivered, dropped, or
//     expired".
//
// Determinism: each message draws from its own RNG stream derived by hashing
// (run seed, fabric seed, message id), so delivery outcomes depend only on
// the experiment seed — never on thread scheduling — and the parallel
// experiment runner stays byte-identical at any --threads value.
//
// Byte-identity guarantee: with the default config (constant latency, zero
// loss/duplication/reorder, no active partition) Send() degenerates to a
// single engine.ScheduleAfter with no RNG draws and no extra events, so a
// zero-chaos fabric reproduces the pre-fabric simulation outputs exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cluster/machine.h"
#include "obs/event.h"
#include "sim/engine.h"
#include "sim/simtime.h"
#include "util/inline_function.h"
#include "util/rng.h"

namespace phoenix::net {

/// Monotonic per-fabric message identifier (1-based; 0 is "no message").
using MessageId = std::uint64_t;

/// Fabric endpoint of the scheduler's control node (probe dispatcher, task
/// binder, CRV monitor). It sits outside every machine partition set.
inline constexpr cluster::MachineId kControllerNode = cluster::kInvalidMachine;

/// What a message carries; recorded in the `task` field of message events.
enum class MessageKind : std::uint8_t {
  kProbe,         // scheduler -> worker proxy probe
  kTaskBind,      // scheduler -> worker early-bound task (centralized plane)
  kFetchRequest,  // worker -> scheduler late-binding task fetch
  kFetchReply,    // scheduler -> worker fetched task body
  kHeartbeatReport,  // worker -> CRV monitor E[W] report
  kGossipDigest,     // shard endpoint -> peer endpoint federation digest
};

enum class LatencyModel : std::uint8_t {
  kConstant,   // exactly the nominal transit time
  kUniform,    // nominal * U[1 - jitter, 1 + jitter]
  kLognormal,  // nominal * LogNormal(-sigma^2/2, sigma)  (mean-preserving)
  kEmpirical,  // nominal * multiplier drawn from a histogram table
};

struct FabricConfig {
  /// Nominal one-way control-plane transit time (paper §V-A: 0.5 ms).
  /// Single source of truth — schedulers must not hardcode their own.
  double one_way = 0.5 * sim::kMillisecond;

  LatencyModel model = LatencyModel::kConstant;
  /// kUniform: half-width of the relative jitter band, in [0, 1).
  double jitter = 0.25;
  /// kLognormal: shape of the mean-preserving multiplier distribution.
  double sigma = 0.5;
  /// kEmpirical: multiplier histogram sampled uniformly per message. Empty
  /// selects a built-in long-tailed table (most mass near 1x, rare 10x).
  std::vector<double> empirical;

  /// Chaos probabilities, each in [0, 1); drawn independently per message.
  double drop_rate = 0;
  double duplicate_rate = 0;
  /// Probability a message is held back long enough for later traffic to
  /// overtake it (adds U[1, 3] x nominal extra transit).
  double reorder_rate = 0;

  /// Pacing delay (seconds) before a delivery that bounced off a failed
  /// machine is re-sent, so a fully-failed pool cannot spin the event loop.
  double bounce_backoff = 1.0;

  /// Fabric stream seed; mixed with the run seed so per-seed experiment
  /// repeats decorrelate while staying reproducible.
  std::uint64_t seed = 0x6e657466ULL;  // "netf"

  /// True when the configuration cannot perturb delivery: constant latency
  /// and zero chaos. (Active partitions are runtime state, checked
  /// separately by NetworkFabric::FastPath.)
  bool ideal() const {
    return model == LatencyModel::kConstant && drop_rate == 0 &&
           duplicate_rate == 0 && reorder_rate == 0;
  }
};

struct FabricStats {
  std::uint64_t sent = 0;        // messages accepted (duplicates counted)
  std::uint64_t delivered = 0;   // arrivals consumed by the receiver
  std::uint64_t dropped = 0;     // lost to the drop_rate coin
  std::uint64_t partition_drops = 0;  // lost to an active partition
  std::uint64_t duplicated = 0;  // extra copies injected
  std::uint64_t reordered = 0;   // messages given overtaking-scale delay
  std::uint64_t expired = 0;     // arrivals the receiver deemed stale
  std::uint64_t partitions = 0;  // Partition() intervals started
};

class NetworkFabric {
 public:
  /// Receiver callback: returns true if the arrival was consumed, false if
  /// it was stale (duplicate of an already-resolved call, or the call was
  /// cancelled) — the distinction drives kMsgDeliver vs kMsgExpire.
  /// Small-buffer type: typical captures ([this, id] and friends) ride the
  /// fabric with zero heap traffic.
  using DeliveryFn = util::InlineFunction<bool()>;

  NetworkFabric(sim::Engine& engine, const FabricConfig& config,
                std::uint64_t run_seed);

  NetworkFabric(const NetworkFabric&) = delete;
  NetworkFabric& operator=(const NetworkFabric&) = delete;

  /// Sends one message from `src` to `dst` with nominal transit `nominal`
  /// seconds. On the fast path this is exactly one engine event; otherwise
  /// the message's RNG stream decides drop/delay/duplication. Returns the
  /// message id (0 when the fast path skipped per-message bookkeeping).
  MessageId Send(cluster::MachineId src, cluster::MachineId dst,
                 MessageKind kind, double nominal, DeliveryFn on_arrival);

  /// Fast-path-only send: the caller has already checked FastPath(), so
  /// delivery is certain and the arrival callback needs no consumed/stale
  /// result — the message is exactly one engine event, with the callback
  /// moved straight into it (no bool-returning wrapper, no allocation).
  void SendCertain(cluster::MachineId src, cluster::MachineId dst,
                   MessageKind kind, double nominal,
                   sim::Engine::Callback on_arrival);

  /// True while Send() degenerates to a plain ScheduleAfter: the config is
  /// ideal and no partition is active. Callers (the Rpc layer) use this to
  /// skip timeout bookkeeping when delivery is certain.
  bool FastPath() const { return ideal_config_ && !PartitionActive(); }

  /// Chaos: cut `machines` off from the rest of the fleet and the
  /// controller node for `duration` seconds. Messages sent across the cut
  /// while it is active are dropped (in-flight messages still land).
  /// Partitions do not stack: starting a new one replaces the current set.
  void Partition(const std::vector<cluster::MachineId>& machines,
                 double duration);

  bool PartitionActive() const {
    return engine_.Now() < partition_until_;
  }

  /// True if an active partition severs the (src, dst) pair.
  bool Severed(cluster::MachineId src, cluster::MachineId dst) const;

  double one_way() const { return config_.one_way; }
  double bounce_backoff() const { return config_.bounce_backoff; }
  const FabricConfig& config() const { return config_; }
  const FabricStats& stats() const { return stats_; }

  /// Observability tap. The fabric emits message-lifecycle events through
  /// this hook; the owning scheduler forwards them to its sinks. Never
  /// called on the fast path.
  void set_emitter(std::function<void(const obs::Event&)> emitter) {
    emitter_ = std::move(emitter);
  }

  /// Emits an arbitrary event through the fabric's tap (used by the Rpc
  /// layer for retry/failure events so both share one wiring point).
  void EmitEvent(obs::EventType type, std::uint32_t machine,
                 std::uint32_t task, double value);

 private:
  /// Independent per-message stream: hash of (mixed seed, message id).
  util::Rng MessageRng(MessageId id) const;

  double SampleDelay(double nominal, util::Rng& rng) const;

  void EmitMessage(obs::EventType type, MessageKind kind,
                   cluster::MachineId dst, MessageId id);

  /// Chaos-path send of one already-identified copy.
  void SendCopy(MessageId id, cluster::MachineId src, cluster::MachineId dst,
                MessageKind kind, double nominal,
                const std::shared_ptr<DeliveryFn>& fn, bool allow_duplicate);

  sim::Engine& engine_;
  FabricConfig config_;
  const bool ideal_config_;
  std::uint64_t seed_mix_;
  MessageId last_id_ = 0;
  FabricStats stats_;
  std::function<void(const obs::Event&)> emitter_;

  // Active partition: bitmap of machines on the cut-off side.
  std::vector<char> partitioned_;
  double partition_until_ = 0;
};

}  // namespace phoenix::net
