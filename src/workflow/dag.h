// Per-job DAG runtime state: indegrees, successor lists, and the
// critical-path priority (longest remaining downstream work) that orders
// ready tasks within a job.
//
// Built once per DAG job at arrival from the trace's precedence edges.
// BuildDagState validates the edge list (indices in range, no self-edges,
// acyclic) and aborts on malformed input — a trace frontend must reject bad
// DAGs at parse time, not hand them to the scheduler.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/job.h"

namespace phoenix::workflow {

struct DagState {
  /// Remaining unfinished predecessors per task; a task is ready at 0.
  std::vector<std::uint32_t> indegree;
  /// CSR successor lists: successors of t are succ[succ_offsets[t] ..
  /// succ_offsets[t+1]).
  std::vector<std::uint32_t> succ_offsets;
  std::vector<std::uint32_t> succ;
  /// Critical-path-to-exit work per task: its own duration plus the longest
  /// downstream chain. The within-job dispatch priority (largest first).
  std::vector<double> downstream;
  /// Tasks handed to the dispatch path so far (the auditor's released ==
  /// task-count rule counts the matching kDagRelease events).
  std::uint32_t released = 0;

  /// The job's expected critical-path length (max over entry tasks — every
  /// task, since downstream includes the task itself).
  double CriticalPath() const;
};

/// Builds the DAG state for `job`. Aborts on out-of-range or self edges and
/// on cycles (Kahn's algorithm must consume every task).
std::unique_ptr<DagState> BuildDagState(const trace::Job& job);

/// Expected critical-path length of `job` without materializing state: the
/// longest dependency chain (by summed durations) for a DAG job, the max
/// task duration for a flat job (all tasks could run in parallel).
double CriticalPathLength(const trace::Job& job);

}  // namespace phoenix::workflow
