// DAG workflow and deadline scheduling configuration.
//
// Both features default off, and every scheduler touch point is gated on
// them — a default WorkflowConfig never enters a workflow branch, so
// `--dag`/`--deadline`-off runs are byte-identical to a build without
// src/workflow.
#pragma once

#include <array>

namespace phoenix::workflow {

struct WorkflowConfig {
  /// Honor inter-task precedence edges: only ready tasks (all predecessors
  /// finished) are admitted to the dispatch path, completions release
  /// successors, and ready tasks dispatch in critical-path order. Off,
  /// jobs with deps run as flat independent tasks (the pre-DAG model).
  bool dag = false;

  /// Deadline scheduling: each job gets a deadline mapped from its SLA
  /// class, an EDF-style tie-break promotes earlier deadlines in the worker
  /// queues, and per-class attainment lands in SimReport.
  bool deadline = false;

  /// Deadline = arrival + multiplier[sla class] * expected critical-path
  /// length (max task duration for flat jobs, longest dependency chain for
  /// DAGs). Prod is tightest; best-effort gets the loosest latency budget.
  std::array<double, 3> deadline_multiplier = {2.0, 4.0, 8.0};

  bool enabled() const { return dag || deadline; }
};

}  // namespace phoenix::workflow
