#include "workflow/dag.h"

#include <algorithm>

#include "util/check.h"

namespace phoenix::workflow {

double DagState::CriticalPath() const {
  double cp = 0;
  for (const double d : downstream) cp = std::max(cp, d);
  return cp;
}

std::unique_ptr<DagState> BuildDagState(const trace::Job& job) {
  const auto n = static_cast<std::uint32_t>(job.num_tasks());
  auto state = std::make_unique<DagState>();
  state->indegree.assign(n, 0);
  state->succ_offsets.assign(n + 1, 0);

  for (const auto& [pred, succ] : job.deps) {
    PHOENIX_CHECK_MSG(pred < n && succ < n, "DAG edge index out of range");
    PHOENIX_CHECK_MSG(pred != succ, "DAG self-edge");
    ++state->succ_offsets[pred + 1];
    ++state->indegree[succ];
  }
  for (std::uint32_t t = 0; t < n; ++t) {
    state->succ_offsets[t + 1] += state->succ_offsets[t];
  }
  state->succ.resize(job.deps.size());
  {
    std::vector<std::uint32_t> cursor(state->succ_offsets.begin(),
                                      state->succ_offsets.end() - 1);
    for (const auto& [pred, succ] : job.deps) {
      state->succ[cursor[pred]++] = succ;
    }
  }
  // Deterministic successor order regardless of edge-list order: ascending
  // index within each task's CSR range.
  for (std::uint32_t t = 0; t < n; ++t) {
    std::sort(state->succ.begin() + state->succ_offsets[t],
              state->succ.begin() + state->succ_offsets[t + 1]);
  }

  // Kahn topological order doubles as the acyclicity check; the reverse
  // order then folds downstream work (own duration + longest successor
  // chain) in one pass.
  std::vector<std::uint32_t> topo;
  topo.reserve(n);
  {
    std::vector<std::uint32_t> indeg = state->indegree;
    for (std::uint32_t t = 0; t < n; ++t) {
      if (indeg[t] == 0) topo.push_back(t);
    }
    for (std::size_t i = 0; i < topo.size(); ++i) {
      const std::uint32_t t = topo[i];
      for (std::uint32_t e = state->succ_offsets[t];
           e < state->succ_offsets[t + 1]; ++e) {
        if (--indeg[state->succ[e]] == 0) topo.push_back(state->succ[e]);
      }
    }
    PHOENIX_CHECK_MSG(topo.size() == n, "DAG contains a cycle");
  }
  state->downstream.assign(n, 0);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const std::uint32_t t = *it;
    double longest_succ = 0;
    for (std::uint32_t e = state->succ_offsets[t];
         e < state->succ_offsets[t + 1]; ++e) {
      longest_succ = std::max(longest_succ, state->downstream[state->succ[e]]);
    }
    state->downstream[t] = job.task_durations[t] + longest_succ;
  }
  return state;
}

double CriticalPathLength(const trace::Job& job) {
  if (!job.has_deps()) {
    double longest = 0;
    for (const double d : job.task_durations) longest = std::max(longest, d);
    return longest;
  }
  return BuildDagState(job)->CriticalPath();
}

}  // namespace phoenix::workflow
