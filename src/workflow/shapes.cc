#include "workflow/shapes.h"

#include <utility>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace phoenix::workflow {

namespace {

void AddShapeEdges(trace::Job& job, const std::string& shape) {
  const auto n = static_cast<std::uint32_t>(job.num_tasks());
  job.deps.clear();
  if (n < 2) return;
  if (shape == "chain") {
    for (std::uint32_t t = 0; t + 1 < n; ++t) job.deps.push_back({t, t + 1});
  } else if (shape == "fanout") {
    for (std::uint32_t t = 1; t < n; ++t) job.deps.push_back({0, t});
  } else if (shape == "diamond") {
    if (n == 2) {
      job.deps.push_back({0, 1});
      return;
    }
    for (std::uint32_t t = 1; t + 1 < n; ++t) {
      job.deps.push_back({0, t});
      job.deps.push_back({t, n - 1});
    }
  }
}

}  // namespace

bool KnownDagShape(const std::string& shape) {
  return shape == "chain" || shape == "fanout" || shape == "diamond";
}

trace::Trace ApplyDagShape(const trace::Trace& trace, const std::string& shape,
                           double fraction, std::uint64_t seed) {
  PHOENIX_CHECK_MSG(KnownDagShape(shape),
                    "unknown DAG shape (chain|fanout|diamond)");
  PHOENIX_CHECK_MSG(fraction >= 0 && fraction <= 1.0,
                    "DAG fraction must be in [0, 1]");
  std::vector<trace::Job> jobs = trace.jobs();
  util::Rng rng(seed ^ 0xd1b54a32d192ed03ULL);
  for (trace::Job& job : jobs) {
    if (job.num_tasks() < 2) continue;
    if (!rng.Bernoulli(fraction)) continue;
    AddShapeEdges(job, shape);
  }
  trace::Trace out(trace.name(), std::move(jobs));
  out.set_short_cutoff(trace.short_cutoff());
  return out;
}

}  // namespace phoenix::workflow
