// Synthetic DAG structure applied on top of a generated (or read) trace.
//
// The trace generator stays untouched — a DAG run takes any flat trace and
// overlays precedence edges on a fraction of its multi-task jobs, so the
// arrival process, durations, constraints, and every RNG stream of the
// underlying trace are identical with and without `--dag`.
#pragma once

#include <cstdint>
#include <string>

#include "trace/trace.h"

namespace phoenix::workflow {

/// True for the shape names ApplyDagShape accepts:
///   "chain"   - strict pipeline 0 -> 1 -> ... -> n-1 (CP = total work),
///   "fanout"  - task 0 fans out to every other task (source barrier),
///   "diamond" - fork-join: 0 -> middles -> n-1 (map/reduce with a tail).
bool KnownDagShape(const std::string& shape);

/// Returns a copy of `trace` where each multi-task job independently gets
/// `shape` edges with probability `fraction` (a dedicated RNG stream keyed
/// by `seed`; single-task jobs are never tagged). Name and short cutoff are
/// preserved. Aborts on unknown shapes or fraction outside [0, 1] — callers
/// route user input through KnownDagShape first for a usage error instead.
trace::Trace ApplyDagShape(const trace::Trace& trace, const std::string& shape,
                           double fraction, std::uint64_t seed);

}  // namespace phoenix::workflow
