// Sparrow-C: fully distributed probe-based scheduling (Ousterhout et al.,
// SOSP'13) extended with constraint-aware sampling, as the paper's
// "Sparrow-C" comparator.
//
// Design axes (Table I): distributed control plane, late binding, worker-
// side FIFO queues, no reordering, static load balancing (batch sampling
// only), trivial constraint handling — probes are sampled from the
// constraint-satisfying pool but there is no long/short split, so short
// tasks suffer head-of-line blocking behind long ones.
#pragma once

#include "sched/base.h"

namespace phoenix::sched {

class SparrowScheduler : public SchedulerBase {
 public:
  using SchedulerBase::SchedulerBase;

  std::string name() const override { return "sparrow-c"; }

 protected:
  /// Sparrow has no centralized plane: every job is probed.
  bool UsesDistributedPlane(const JobRuntime&) const override { return true; }
};

}  // namespace phoenix::sched
