#include "sched/base.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/capacity.h"
#include "metrics/fairness.h"
#include "obs/audit.h"
#include "packing/demand.h"
#include "packing/policy.h"
#include "power/manager.h"
#include "queueing/distributions.h"
#include "tenancy/admission.h"

#include "util/check.h"

namespace phoenix::sched {

using cluster::MachineId;
using obs::EventType;
using trace::JobId;

SchedulerBase::SchedulerBase(sim::Engine& engine,
                             const cluster::Cluster& cluster,
                             const SchedulerConfig& config)
    : engine_(engine), cluster_(cluster), config_(config),
      rng_(config.seed ^ 0x5851f42d4c957f2dULL),
      fabric_(engine, config.net, config.seed),
      rpc_(engine, fabric_, config.rpc) {
  // Message-lifecycle events flow through the same sinks as scheduler
  // events (the fabric never emits on its zero-chaos fast path).
  fabric_.set_emitter([this](const obs::Event& event) {
    for (obs::EventSink* sink : sinks_) sink->OnEvent(event);
  });
  workers_.reserve(cluster.size());
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    workers_.emplace_back(config_.estimator_window, &arena_);
    workers_.back().id = static_cast<MachineId>(i);
  }
  short_probe_counts_.assign(cluster.size(), 0);
  long_busy_.assign(cluster.size(), 0);
  if (config_.packing.enabled) {
    packing_on_ = true;
    max_capacity_ = cluster::MaxCapacity(cluster);
    fleet_capacity_ = cluster::TotalCapacity(cluster);
    mean_demand_ = packing::MeanDemand(config_.packing);
    // Clamp target for demands no machine can host: the machine with the
    // largest normalized capacity volume (ties: lowest id), so a clamped
    // demand is guaranteed a feasible host.
    double best_volume = -1.0;
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      WorkerState& w = workers_[i];
      w.capacity = cluster::CapacityOf(cluster.machine(i));
      w.residual = w.capacity;
      double volume = 0;
      for (std::size_t d = 0; d < packing::kNumPackDims; ++d) {
        if (max_capacity_.dim(d) > 0) {
          volume += w.capacity.dim(d) / max_capacity_.dim(d);
        }
      }
      if (volume > best_volume) {
        best_volume = volume;
        clamp_capacity_ = w.capacity;
      }
    }
  }
  if (config_.tenancy.enabled()) {
    tenancy_on_ = true;
    tenants_ = tenancy::TenantRegistry(config_.tenancy.tenants);
    preempt_policy_ = tenancy::PreemptionPolicy(
        config_.tenancy.preemption, config_.tenancy.max_preemptions_per_task);
  }
  dag_on_ = config_.workflow.dag;
  deadline_on_ = config_.workflow.deadline;
}

void SchedulerBase::EnableFederation(const federation::FederationConfig& cfg) {
  PHOENIX_CHECK_MSG(jobs_.empty(), "enable federation before SubmitTrace");
  if (!cfg.enabled()) return;  // --shards=1: stay on the unsharded paths
  PHOENIX_CHECK_MSG(!packing_on_,
                    "packing and federation are mutually exclusive (gossiped "
                    "free-slot digests do not carry capacity vectors)");
  federation_ = std::make_unique<federation::FederationPlane>(
      engine_, fabric_, cfg, workers_.size());
  federation_->set_emitter([this](const obs::Event& event) {
    for (obs::EventSink* sink : sinks_) sink->OnEvent(event);
  });
}

void SchedulerBase::SetMembership(cluster::MembershipView* membership) {
  PHOENIX_CHECK_MSG(jobs_.empty(), "attach membership before SubmitTrace");
  PHOENIX_CHECK(membership != nullptr);
  PHOENIX_CHECK_MSG(&membership->cluster() == &cluster_,
                    "membership view must be over this scheduler's cluster");
  membership_ = membership;
  in_service_count_ = membership->in_service_count();
  last_membership_change_ = engine_.Now();
}

void SchedulerBase::SetPower(power::PowerManager* power) {
  PHOENIX_CHECK_MSG(jobs_.empty(), "attach the power manager before SubmitTrace");
  PHOENIX_CHECK(power != nullptr);
  PHOENIX_CHECK_MSG(membership_ != nullptr,
                    "power management needs a membership view (parked is a "
                    "lifecycle state)");
  power_ = power;
}

void SchedulerBase::AccrueInService() {
  in_service_seconds_ += static_cast<double>(in_service_count_) *
                         (engine_.Now() - last_membership_change_);
  last_membership_change_ = engine_.Now();
}

void SchedulerBase::ProvisionMachine(MachineId id, double warmup_delay) {
  PHOENIX_CHECK_MSG(membership_ != nullptr,
                    "lifecycle actuators need a membership view");
  PHOENIX_CHECK(id < workers_.size());
  if (power_ != nullptr && power_->asleep(id)) {
    // The machine sleeps in S3: every provision of it — elastic lease or
    // power wake — pays the wake transition here, so both planes share one
    // wake path and one set of counters. kPowerWake precedes the lifecycle
    // event: the auditor checks its legality against the still-parked state.
    ++counters_.power_wakes;
    Emit(EventType::kPowerWake, obs::kNoId, id, obs::kNoId, warmup_delay);
    const double watts = power_->Wake(id, engine_.Now());
    Emit(EventType::kPowerState, obs::kNoId, id, obs::kNoId, watts);
  }
  membership_->SetState(id, cluster::MachineLifecycle::kProvisioning);
  ++counters_.elastic_provisions;
  counters_.elastic_warmup_seconds += warmup_delay;
  Emit(EventType::kMachineProvision, obs::kNoId, id, obs::kNoId, warmup_delay);
}

void SchedulerBase::CommissionMachine(MachineId id) {
  PHOENIX_CHECK_MSG(membership_ != nullptr,
                    "lifecycle actuators need a membership view");
  PHOENIX_CHECK(id < workers_.size());
  WorkerState& w = workers_[id];
  AccrueInService();
  ++in_service_count_;
  membership_->SetState(id, cluster::MachineLifecycle::kActive);
  ++counters_.elastic_commissions;
  Emit(EventType::kMachineCommission, obs::kNoId, id);
  // A fresh lease starts with clean load signals: whatever a previous lease
  // taught the estimator (or a stale congestion mark) no longer describes
  // this machine.
  w.estimator.Clear();
  w.last_wait_estimate = 0;
  w.crv_marked = false;
  TryStartNext(w);
}

void SchedulerBase::DrainMachine(MachineId id, DrainReason reason) {
  PHOENIX_CHECK_MSG(membership_ != nullptr,
                    "lifecycle actuators need a membership view");
  PHOENIX_CHECK(id < workers_.size());
  WorkerState& w = workers_[id];
  membership_->SetState(id, cluster::MachineLifecycle::kDraining);
  if (reason == DrainReason::kReclamation) {
    ++counters_.elastic_reclamations;
    Emit(EventType::kMachineReclaim, obs::kNoId, id);
  }
  ++counters_.elastic_drains;
  Emit(EventType::kMachineDrain, obs::kNoId, id);
  // Free a fetch-held slot — its round trip would bind a new task here. A
  // running task keeps the slot and finishes within the grace period.
  EvictSlotWork(w, /*kill_running=*/false);
  // Bounce queued probes elsewhere (resolving one would also bind new
  // work); already-bound tasks stay and may still run before the retire.
  for (std::size_t i = w.queue.size(); i-- > 0;) {
    if (w.queue[i].kind == QueueEntry::Kind::kProbe) {
      BounceUndelivered(RemoveQueueAt(w, i), id, one_way());
    }
  }
  TryStartNext(w);
}

bool SchedulerBase::RetireMachine(MachineId id, bool force) {
  PHOENIX_CHECK_MSG(membership_ != nullptr,
                    "lifecycle actuators need a membership view");
  PHOENIX_CHECK(id < workers_.size());
  WorkerState& w = workers_[id];
  PHOENIX_CHECK_MSG(
      membership_->state(id) == cluster::MachineLifecycle::kDraining,
      "retire requires a draining machine");
  if (!force && (w.HoldsWork() ||
                 (packing_on_ && !w.capacity.FitsIn(w.residual)))) {
    return false;
  }
  if (force) {
    counters_.elastic_tasks_redispatched +=
        w.queue.size() + (w.running_job != trace::kInvalidJob ? 1 : 0) +
        w.run_list.size();
    EvictSlotWork(w, /*kill_running=*/true);
    if (packing_on_) {
      EvictPackedRuns(w);
      EvictGangReservations(w);
    }
    while (!w.queue.empty()) {
      BounceUndelivered(RemoveQueueAt(w, w.queue.size() - 1), id, one_way());
    }
  }
  AccrueInService();
  PHOENIX_CHECK(in_service_count_ > 0);
  --in_service_count_;
  membership_->SetState(id, cluster::MachineLifecycle::kRetired);
  if (force) {
    ++counters_.elastic_retires_forced;
  } else {
    ++counters_.elastic_retires_graceful;
  }
  Emit(EventType::kMachineRetire, obs::kNoId, id, obs::kNoId, force ? 1 : 0);
  w.estimator.Clear();
  w.last_wait_estimate = 0;
  w.crv_marked = false;
  w.steal_inflight = false;
  return true;
}

bool SchedulerBase::ParkMachine(MachineId id) {
  PHOENIX_CHECK_MSG(membership_ != nullptr && power_ != nullptr,
                    "parking needs a membership view and a power manager");
  PHOENIX_CHECK(id < workers_.size());
  WorkerState& w = workers_[id];
  const cluster::MachineLifecycle state = membership_->state(id);
  if (state != cluster::MachineLifecycle::kActive &&
      state != cluster::MachineLifecycle::kDraining) {
    return false;  // double-park / park-of-retired: idempotent no-op
  }
  // Never strand work: held work (slot, queue, or packed runs) vetoes the
  // park (the controller re-evaluates next tick once the worker truly
  // drains). An outstanding gang reservation — residual below capacity with
  // nothing running — vetoes too: parking would strand the claimed share.
  if (w.HoldsWork() || w.failed) return false;
  if (packing_on_ && !w.capacity.FitsIn(w.residual)) return false;
  AccrueInService();
  PHOENIX_CHECK(in_service_count_ > 0);
  --in_service_count_;
  // kPowerPark first (legal while active/draining), then the lifecycle
  // transition, then the metered wattage drop into S3.
  Emit(EventType::kPowerPark, obs::kNoId, id);
  membership_->SetState(id, cluster::MachineLifecycle::kParked);
  Emit(EventType::kMachinePark, obs::kNoId, id);
  const double watts = power_->Park(id, engine_.Now());
  PHOENIX_CHECK(watts >= 0);
  Emit(EventType::kPowerState, obs::kNoId, id, obs::kNoId, watts);
  ++counters_.power_parks;
  // A parked machine still advertises wake-penalized supply: the cleared
  // estimator reads exactly the wake penalty, so probe targeting and the
  // elastic controller see "available, but at wake cost".
  w.estimator.Clear();
  w.estimator.SetWakePenalty(power_->WakePenalty(id));
  w.last_wait_estimate = 0;
  w.crv_marked = false;
  w.steal_inflight = false;
  return true;
}

bool SchedulerBase::SetMachinePState(MachineId id, unsigned p) {
  PHOENIX_CHECK_MSG(power_ != nullptr, "DVFS needs a power manager");
  PHOENIX_CHECK(id < workers_.size());
  // A running task's duration was priced at the old speed; retune only
  // between executions (the controller retries next tick).
  if (power_->asleep(id) || power_->executing(id)) return false;
  const unsigned prev = power_->p_state(id);
  const double watts = power_->SetPState(id, p, engine_.Now());
  if (watts < 0) return false;  // already at p
  if (p > prev) {
    ++counters_.power_dvfs_lowers;
  } else {
    ++counters_.power_dvfs_raises;
  }
  Emit(EventType::kPowerDvfs, obs::kNoId, id, p, watts);
  Emit(EventType::kPowerState, obs::kNoId, id, obs::kNoId, watts);
  return true;
}

void SchedulerBase::WakeParkedMachine(cluster::MachineId id) {
  PHOENIX_CHECK(power_ != nullptr && membership_ != nullptr);
  PHOENIX_CHECK_MSG(
      membership_->state(id) == cluster::MachineLifecycle::kParked,
      "only a parked machine can be woken");
  const double latency = power_->WakeLatency(id);
  ProvisionMachine(id, latency);
  engine_.ScheduleAfter(latency, [this, id] {
    // Commission unless something else moved the machine meanwhile.
    if (membership_->state(id) == cluster::MachineLifecycle::kProvisioning) {
      CommissionMachine(id);
    }
  });
}

MachineId SchedulerBase::WakeSatisfierFallback(
    const cluster::ConstraintSet& cs) {
  if (power_ == nullptr || membership_ == nullptr) {
    return cluster::kInvalidMachine;
  }
  const util::Bitset& sat = cluster_.Satisfying(cs);
  MachineId parked_pick = cluster::kInvalidMachine;
  for (std::size_t id = 0; id < workers_.size(); ++id) {
    if (!sat.Test(id) || workers_[id].failed) continue;
    const cluster::MachineLifecycle st =
        membership_->state(static_cast<MachineId>(id));
    if (st == cluster::MachineLifecycle::kProvisioning) {
      return static_cast<MachineId>(id);  // already on its way up
    }
    if (st == cluster::MachineLifecycle::kParked &&
        parked_pick == cluster::kInvalidMachine) {
      parked_pick = static_cast<MachineId>(id);
    }
  }
  if (parked_pick != cluster::kInvalidMachine) {
    ++counters_.power_demand_wakes;
    WakeParkedMachine(parked_pick);
  }
  return parked_pick;
}

void SchedulerBase::AttachSink(obs::EventSink* sink) {
  PHOENIX_CHECK_MSG(jobs_.empty(), "attach sinks before SubmitTrace");
  PHOENIX_CHECK(sink != nullptr);
  sinks_.push_back(sink);
}

void SchedulerBase::AttachAuditor(obs::InvariantAuditor* auditor) {
  AttachSink(auditor);
  auditor_ = auditor;
}

void SchedulerBase::EmitToSinks(EventType type, std::uint32_t job,
                                std::uint32_t machine, std::uint32_t task,
                                double value) {
  obs::Event event;
  event.time = engine_.Now();
  event.type = type;
  event.job = job;
  event.machine = machine;
  event.task = task;
  event.value = value;
  for (obs::EventSink* sink : sinks_) sink->OnEvent(event);
}

void SchedulerBase::AuditWorkers(bool final_state, MachineId lo,
                                 MachineId hi) {
  if (auditor_ == nullptr) return;
  // One engine snapshot amortizes the per-worker "busy slot has a live
  // event" check across the audited range.
  const auto pending = engine_.PendingIds();
  const double now = engine_.Now();
  for (MachineId i = lo; i < hi; ++i) {
    const WorkerState& w = workers_[i];
    // A slot held for a fetch is backed by a live RPC call (whose deadline
    // or delivery event keeps the engine moving); an executing slot by the
    // completion event.
    const bool live_slot_event =
        w.pending_call != 0
            ? rpc_.Alive(w.pending_call)
            : std::binary_search(pending.begin(), pending.end(),
                                 w.pending_event);
    const bool out_of_service =
        membership_ != nullptr && !membership_->InService(w.id);
    auditor_->CheckWorker(now, w.id, w.busy, w.failed, live_slot_event,
                          w.queue.size(), w.est_queued_work, final_state,
                          out_of_service);
  }
}

void SchedulerBase::FinalAudit() {
  if (auditor_ == nullptr) return;
  AuditWorkers(/*final_state=*/true, 0,
               static_cast<MachineId>(workers_.size()));
  if (power_ != nullptr) {
    const double horizon =
        std::max<double>(makespan_, last_membership_change_);
    auditor_->ExpectEnergy(power_->TotalJoules(horizon), horizon);
  }
  auditor_->Finish();
}

void SchedulerBase::InjectFailure(MachineId id) {
  PHOENIX_CHECK(id < workers_.size());
  FailMachine(workers_[id], /*auto_repair=*/false);
}

void SchedulerBase::InjectRepair(MachineId id) {
  PHOENIX_CHECK(id < workers_.size());
  if (!workers_[id].failed) return;
  RepairMachine(workers_[id]);
}

void SchedulerBase::SubmitTrace(const trace::Trace& trace) {
  PHOENIX_CHECK_MSG(jobs_.empty(), "SubmitTrace may be called once");
  trace_name_ = trace.name();
  config_.short_cutoff = trace.short_cutoff();
  // Job records pool their replay lists in the scheduler arena (the copy
  // constructor propagates the arena-bound allocator to every element).
  jobs_.assign(trace.size(), JobRuntime(&arena_));
  // DAG precedence state is a side table (JobRuntime must stay cheaply
  // copyable for the prototype-assign above); built per job at arrival.
  if (dag_on_) dag_states_.resize(trace.size());
  for (const trace::Job& spec : trace.jobs()) {
    JobRuntime& job = jobs_[spec.id];
    job.spec = &spec;
    job.id = spec.id;
    job.effective = spec.constraints;
    job.constrained = spec.constrained();
    if (spec.placement != trace::PlacementPref::kNone) {
      job.used_racks.Resize(cluster_.num_racks());
    }
    engine_.ScheduleAt(spec.submit_time, [this, id = spec.id] {
      HandleJobArrival(id);
    });
  }
  if (packing_on_) {
    // Declare every machine's capacity vector to the sinks (the auditor's
    // conservation ledger opens from these), and seed the estimators with
    // their effective-server counts: a machine able to run c mean-demand
    // tasks concurrently behaves like c pooled servers.
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      WorkerState& w = workers_[i];
      std::uint32_t servers = w.capacity.CopiesOf(mean_demand_);
      if (servers < 1) servers = 1;
      w.estimator.SetEffectiveServers(servers);
      for (std::size_t d = 0; d < packing::kNumPackDims; ++d) {
        Emit(EventType::kPackCapacity, obs::kNoId,
             static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(d),
             w.capacity.dim(d));
      }
    }
  }
  heartbeat_running_ = true;
  // One heartbeat chain per shard (a single fleet-wide chain unsharded), so
  // no tick ever scans more than one territory.
  const std::uint32_t hb_shards =
      federation_ != nullptr ? federation_->num_shards() : 1;
  for (std::uint32_t s = 0; s < hb_shards; ++s) {
    engine_.ScheduleAfter(config_.heartbeat_interval,
                          [this, s] { HeartbeatTick(s); });
  }
  if (federation_ != nullptr) {
    federation_->Start([this] { return !AllJobsDone(); });
  }
  if (membership_ != nullptr) {
    // Declare the initially-parked universe to the sinks so the auditor can
    // validate every lifecycle transition from its first event.
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      if (membership_->state(static_cast<MachineId>(i)) ==
          cluster::MachineLifecycle::kParked) {
        Emit(EventType::kMachinePark, obs::kNoId,
             static_cast<std::uint32_t>(i));
      }
    }
  }
  if (power_ != nullptr) {
    // Open every machine's dwell integral and declare the starting wattage
    // to the sinks — the auditor integrates this stream and checks it
    // against the meter's total at FinalAudit (energy conservation).
    power_->StartRun(engine_.Now(), membership_);
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      Emit(EventType::kPowerState, obs::kNoId, static_cast<std::uint32_t>(i),
           obs::kNoId, power_->watts(static_cast<MachineId>(i)));
      if (power_->asleep(static_cast<MachineId>(i))) {
        workers_[i].estimator.SetWakePenalty(
            power_->WakePenalty(static_cast<MachineId>(i)));
      }
    }
  }
  if (config_.machine_mtbf > 0) {
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      ScheduleNextFailure(static_cast<MachineId>(i));
    }
  }
}

void SchedulerBase::ScheduleNextFailure(MachineId id) {
  const double delay =
      queueing::SampleExponential(rng_, 1.0 / config_.machine_mtbf);
  engine_.ScheduleAfter(delay, [this, id] {
    if (AllJobsDone()) return;  // let the run drain
    FailMachine(workers_[id], /*auto_repair=*/true);
  });
}

std::uint32_t SchedulerBase::TakeNextTaskIndex(JobRuntime& job) {
  if (!job.replay_tasks.empty()) {
    const std::uint32_t index = job.replay_tasks.back();
    job.replay_tasks.pop_back();
    return index;
  }
  PHOENIX_CHECK(job.next_unplaced < job.num_tasks());
  return job.next_unplaced++;
}

MachineId SchedulerBase::PickLeastLoadedLive(
    const std::vector<MachineId>& candidates, JobRuntime& job) {
  PHOENIX_CHECK(!candidates.empty());
  const sim::SimTime now = engine_.Now();
  MachineId best = cluster::kInvalidMachine;
  double best_load = sim::kTimeInfinity;
  for (const MachineId c : candidates) {
    const WorkerState& w = workers_[c];
    if (w.failed || !Bindable(c)) continue;  // delivery would only bounce
    const double running_rem = w.busy ? std::max(0.0, w.busy_until - now) : 0.0;
    const double load = w.est_queued_work + running_rem;
    if (load < best_load) {
      best_load = load;
      best = c;
    }
  }
  // Every sampled candidate is down: fall back to a fresh draw from the
  // eligible pool (the delivery bounce re-dispatches again if that one is
  // down too) instead of knowingly binding to a dead worker.
  if (best == cluster::kInvalidMachine) {
    best = SampleEligible(job.effective);
    PHOENIX_CHECK(best != cluster::kInvalidMachine);
    ++counters_.placement_dead_fallbacks;
  }
  return best;
}

void SchedulerBase::RedispatchEntry(QueueEntry entry, double delay) {
  JobRuntime& job = jobs_[entry.job];
  ++counters_.tasks_rescheduled_failure;
  if (entry.kind == QueueEntry::Kind::kProbe) {
    const MachineId target = SampleEligible(job.effective);
    PHOENIX_CHECK(target != cluster::kInvalidMachine);
    ++job.outstanding_probes;
    ++counters_.probes_sent;
    Emit(EventType::kProbeSend, job.id, target);
    SendEntry(target, entry, delay);
    return;
  }
  // Bound task: re-bind to the least-loaded live satisfying worker (best
  // vector-packing fit under packing).
  const MachineId best = packing_on_
                             ? PickBestPacked(ChooseLongCandidates(job), job)
                             : PickLeastLoadedLive(ChooseLongCandidates(job),
                                                   job);
  SendEntry(best, entry, std::max(delay, 2 * one_way()));
}

void SchedulerBase::EvictSlotWork(WorkerState& worker, bool kill_running) {
  if (!worker.busy) return;
  if (worker.running_job != trace::kInvalidJob && !kill_running) return;
  // Kill the in-flight slot event (probe resolution, sticky fetch, or task
  // completion) and recover its work.
  {
    CancelSlotEvent(worker);
    if (power_ != nullptr) {
      // Idempotent: only a genuinely executing slot drops back to idle watts
      // (a fetch- or resolve-held slot never raised them).
      const double watts = power_->OnExecEnd(worker.id, engine_.Now());
      if (watts >= 0) {
        Emit(EventType::kPowerState, obs::kNoId, worker.id, obs::kNoId, watts);
      }
    }
    if (worker.running_job != trace::kInvalidJob) {
      // Running task is lost: un-count its unfinished service and replay it.
      JobRuntime& job = jobs_[worker.running_job];
      total_busy_time_ -= std::max(0.0, worker.busy_until - engine_.Now());
      job.replay_tasks.push_back(worker.running_index);
      Emit(EventType::kTaskKill, job.id, worker.id, worker.running_index);
      ++counters_.tasks_rescheduled_failure;
      // A DAG job's replay must re-bind, never probe: a late-binding probe
      // could fetch an unreleased task. The replayed index itself already
      // ran, so its predecessors are finished and the re-bind is legal.
      if (UsesDistributedPlane(job) && !DagManaged(job)) {
        QueueEntry probe;
        probe.kind = QueueEntry::Kind::kProbe;
        probe.job = job.id;
        probe.est_duration = EstimatedTaskDuration(job);
        probe.short_class = job.short_class;
        RedispatchEntry(probe, one_way());
        --counters_.tasks_rescheduled_failure;  // RedispatchEntry counted too
      } else {
        QueueEntry bound;
        bound.kind = QueueEntry::Kind::kBoundTask;
        bound.job = job.id;
        bound.task_index = TakeNextTaskIndex(job);
        bound.est_duration = EstimatedTaskDuration(job);
        bound.short_class = job.short_class;
        RedispatchEntry(bound, one_way());
        --counters_.tasks_rescheduled_failure;
      }
      worker.running_job = trace::kInvalidJob;
    } else if (worker.resolving) {
      // The probe being resolved never took a task; send it elsewhere.
      BounceUndelivered(worker.resolving_entry, worker.id, one_way());
    } else if (worker.fetching_job != trace::kInvalidJob) {
      // A sticky-batch fetch was in flight: the slot held no task yet.
      // Re-cover the fetched job directly — its sibling probes may all
      // have resolved, dissolved, or died with other machines by now, so
      // leftover coverage cannot be assumed.
      JobRuntime& job = jobs_[worker.fetching_job];
      if (!job.AllPlaced()) {
        ++counters_.sticky_fetch_redispatches;
        QueueEntry entry;
        entry.job = job.id;
        entry.est_duration = EstimatedTaskDuration(job);
        entry.short_class = job.short_class;
        if (UsesDistributedPlane(job)) {
          entry.kind = QueueEntry::Kind::kProbe;
        } else {
          entry.kind = QueueEntry::Kind::kBoundTask;
          entry.task_index = TakeNextTaskIndex(job);
        }
        RedispatchEntry(entry, one_way());
      }
    }
    worker.fetching_job = trace::kInvalidJob;
    worker.resolving = false;
    worker.busy = false;
  }
  RefreshLongBusy(worker);
}

void SchedulerBase::RefreshLongBusy(const WorkerState& worker) {
  bool running_long =
      worker.busy && worker.running_job != trace::kInvalidJob &&
      !jobs_[worker.running_job].short_class;
  // Packed runs (run_list is empty when packing is off): any long task in
  // the concurrent set keeps the SSS bit up.
  for (const PackedRun& run : worker.run_list) {
    if (running_long) break;
    running_long = !jobs_[run.job].short_class;
  }
  long_busy_[worker.id] = (worker.long_entries > 0 || running_long) ? 1 : 0;
}

void SchedulerBase::FailMachine(WorkerState& worker, bool auto_repair) {
  if (worker.failed) return;
  worker.failed = true;
  ++counters_.machine_failures;
  Emit(EventType::kMachineFail, obs::kNoId, worker.id);

  EvictSlotWork(worker, /*kill_running=*/true);
  if (packing_on_) {
    EvictPackedRuns(worker);
    EvictGangReservations(worker);
  }

  // Drain the queue, re-dispatching every entry to live workers (stale
  // probes dissolve inside BounceUndelivered).
  while (!worker.queue.empty()) {
    BounceUndelivered(RemoveQueueAt(worker, worker.queue.size() - 1),
                      worker.id, one_way());
  }

  // Repair and the next failure cycle (stochastic injection only; manual
  // InjectFailure leaves repair timing to the caller).
  if (auto_repair) {
    const double repair =
        queueing::SampleExponential(rng_, 1.0 / config_.machine_mttr);
    engine_.ScheduleAfter(repair, [this, wid = worker.id] {
      RepairMachine(workers_[wid]);
    });
  }
}

void SchedulerBase::RepairMachine(WorkerState& worker) {
  PHOENIX_CHECK(worker.failed);
  worker.failed = false;
  worker.steal_inflight = false;
  worker.estimator.Clear();
  // The congestion marking predates the failure; everything it summarized
  // was killed or re-dispatched, so carrying it over would skew wait-aware
  // probe ranking and CRV reordering until the next heartbeat.
  worker.last_wait_estimate = 0;
  worker.crv_marked = false;
  Emit(EventType::kMachineRepair, obs::kNoId, worker.id);
  TryStartNext(worker);
  if (config_.machine_mtbf > 0 && !AllJobsDone()) {
    ScheduleNextFailure(worker.id);
  }
}

void SchedulerBase::HeartbeatTick(std::uint32_t shard) {
  ++counters_.heartbeats;
  // The tick's scan range: the whole fleet unsharded, only this shard's
  // territory under federation — the structural guarantee that no single
  // shard's heartbeat runs an O(fleet) loop.
  MachineId lo = 0;
  auto hi = static_cast<MachineId>(workers_.size());
  if (federation_ != nullptr) {
    const auto range = federation_->shard_map().range(shard);
    lo = range.first;
    hi = range.second;
    RefreshShardDigest(shard, lo, hi);
  }
  if (tenancy_on_ && federation_ == nullptr) {
    // Fleet-mean E[W] snapshot for SLO-feasibility tests at admission —
    // same cadence as every other load signal (heartbeat synchronization).
    // Federated runs read the gossiped global view at admission instead.
    double sum = 0;
    std::size_t live = 0;
    for (const WorkerState& w : workers_) {
      if (w.failed || !Bindable(w.id)) continue;
      sum += w.estimator.EstimateWait();
      ++live;
    }
    fleet_wait_estimate_ = live > 0 ? sum / static_cast<double>(live) : 0;
  }
  OnHeartbeat(lo, hi);
  if (packing_on_) {
    // Fragmentation sample: fleet-mean spread between the most- and
    // least-consumed capacity dimension of each live machine. High spread =
    // stranded capacity (e.g. cores free but memory exhausted).
    double spread_sum = 0;
    std::size_t live = 0;
    for (const WorkerState& w : workers_) {
      if (w.failed || !Bindable(w.id)) continue;
      double lo_frac = 1.0;
      double hi_frac = 0.0;
      for (std::size_t d = 0; d < packing::kNumPackDims; ++d) {
        if (w.capacity.dim(d) <= 0) continue;
        const double frac = w.residual.dim(d) / w.capacity.dim(d);
        lo_frac = std::min(lo_frac, frac);
        hi_frac = std::max(hi_frac, frac);
      }
      spread_sum += std::max(0.0, hi_frac - lo_frac);
      ++live;
    }
    if (live > 0) {
      frag_sum_ += spread_sum / static_cast<double>(live);
      ++frag_samples_;
    }
    RefreshMalleableWidths();
  }
  if (tracing()) {
    // Publish the per-worker timeseries after OnHeartbeat so Phoenix's
    // freshly refreshed E[W] / CRV marks are what lands in the export.
    std::size_t queued = 0;
    for (MachineId i = lo; i < hi; ++i) {
      const WorkerState& w = workers_[i];
      queued += w.queue.size();
      obs::WorkerSample sample;
      sample.time = engine_.Now();
      sample.machine = w.id;
      sample.queue_len = static_cast<std::uint32_t>(w.queue.size());
      sample.est_queued_work = w.est_queued_work;
      sample.wait_estimate = w.estimator.EstimateWait();
      sample.crv_marked = w.crv_marked;
      sample.busy = w.busy;
      sample.failed = w.failed;
      for (obs::EventSink* sink : sinks_) sink->OnWorkerSample(sample);
    }
    Emit(EventType::kHeartbeat, obs::kNoId, obs::kNoId, obs::kNoId,
         static_cast<double>(queued));
  }
  AuditWorkers(/*final_state=*/false, lo, hi);
  if (AllJobsDone()) {
    heartbeat_running_ = false;
    return;  // let the event queue drain so Run() terminates
  }
  engine_.ScheduleAfter(config_.heartbeat_interval,
                        [this, shard] { HeartbeatTick(shard); });
}

void SchedulerBase::RefreshShardDigest(std::uint32_t shard, MachineId lo,
                                       MachineId hi) {
  double sum = 0;
  std::uint32_t live = 0;
  std::uint32_t free_slots = 0;
  for (MachineId i = lo; i < hi; ++i) {
    const WorkerState& w = workers_[i];
    if (w.failed || !Bindable(i)) continue;
    ++live;
    // Clamp so one saturated estimator cannot poison the gossiped mean.
    sum += std::min(w.estimator.EstimateWait(), 1e6);
    if (!w.busy && w.queue.empty()) ++free_slots;
  }
  federation_->RefreshLocal(shard, live > 0 ? sum / live : 0, live,
                            free_slots);
}

void SchedulerBase::HandleJobArrival(JobId id) {
  JobRuntime& job = jobs_[id];
  job.short_class =
      EstimatedTaskDuration(job) <= config_.short_cutoff;
  Emit(EventType::kJobArrival, id, obs::kNoId, obs::kNoId,
       static_cast<double>(job.num_tasks()));
  if (packing_on_) {
    job.demand = packing::DemandFor(config_.seed, id, config_.packing);
    if (job.spec->req_cpu >= 0 || job.spec->req_mem >= 0 ||
        job.spec->req_gpu >= 0) {
      // Trace-supplied demand (Google-trace requests are normalized to the
      // largest machine) overrides the hashed sampler. Unset dimensions stay
      // zero and never constrain placement; the feasibility clamp below
      // still guarantees a hostable vector.
      job.demand = packing::ResourceVector{};
      job.demand[packing::PackDim::kCores] =
          std::max(0.0, job.spec->req_cpu) *
          max_capacity_[packing::PackDim::kCores];
      job.demand[packing::PackDim::kMemoryGb] =
          std::max(0.0, job.spec->req_mem) *
          max_capacity_[packing::PackDim::kMemoryGb];
      job.demand[packing::PackDim::kGpus] =
          std::max(0.0, job.spec->req_gpu) *
          max_capacity_[packing::PackDim::kGpus];
    }
  }
  // Tenant admission runs first: it may demote the class, strip the SLO, or
  // trade a soft constraint away before the constraint layers see the job.
  if (tenancy_on_) ApplyTenantAdmission(job);
  AdmitJob(job);
  // The feasibility clamp must see the post-admission constraint set: a
  // demand no *satisfying* machine can host would bounce between delivery
  // and redispatch forever (the satisfying pool and the capacity-fitting
  // pool must intersect).
  if (packing_on_) ClampDemandToHostable(job);
  if (deadline_on_) AssignDeadline(job);
  if (DagManaged(job)) {
    // Precedence-driven dispatch: only source tasks enter the cluster now;
    // completions release the rest. DAG jobs bypass both probe planes and
    // the gang/malleable paths, whatever their duration class.
    PlaceDagJob(job);
    return;
  }
  if (packing_on_ && job.num_tasks() > 1) {
    // Gang and malleable jobs bypass both probe planes: their tasks bind
    // centrally (reserve -> commit for gangs, width-tracked top-up for
    // malleable jobs), whatever their duration class.
    if (job.gang()) {
      job.gang_arrival = engine_.Now();
      ++counters_.gangs_placed;
      PlaceGang(id);
      return;
    }
    if (job.malleable()) {
      PlaceMalleable(id);
      return;
    }
  }
  if (UsesDistributedPlane(job)) {
    PlaceDistributed(job);
  } else {
    PlaceCentralized(job);
  }
}

// Base admission control: *forced* relaxation only. If no machine satisfies
// the full set, soft constraints are dropped scarcest-pool-first; if the
// hard core is itself unsatisfiable, all constraints are dropped so the job
// can run (counted in tasks_admission_rejected). Phoenix layers proactive
// negotiation on top of this (core/phoenix.cc).
void SchedulerBase::AdmitJob(JobRuntime& job) {
  // Admission validates against the guaranteed pool (the base fleet under
  // elasticity), so an admitted job can never be stranded by later churn.
  while (CountAdmissible(job.effective) == 0) {
    if (!RelaxOneSoftConstraint(job)) {
      // Only hard constraints left and still unsatisfiable: the request
      // cannot be honored anywhere. Run it unconstrained rather than
      // stranding the tasks.
      if (!job.effective.empty()) {
        counters_.tasks_admission_rejected += job.num_tasks();
        Emit(EventType::kAdmissionRelax, job.id, obs::kNoId, obs::kNoId,
             static_cast<double>(job.effective.size()));
        job.effective = cluster::ConstraintSet();
        job.duration_multiplier *= config_.soft_relax_penalty;
      }
      return;
    }
  }
}

bool SchedulerBase::RelaxOneSoftConstraint(JobRuntime& job) {
  // Find the soft constraint with the smallest individual pool.
  std::size_t victim = job.effective.size();
  std::size_t victim_pool = SIZE_MAX;
  for (std::size_t i = 0; i < job.effective.size(); ++i) {
    if (job.effective[i].hard) continue;
    const std::size_t pool = CountAdmissible(job.effective[i]);
    if (pool < victim_pool) {
      victim_pool = pool;
      victim = i;
    }
  }
  if (victim == job.effective.size()) return false;
  job.effective = job.effective.WithoutConstraint(victim);
  job.duration_multiplier *= config_.soft_relax_penalty;
  ++job.relaxed_constraints;
  ++counters_.soft_constraints_relaxed;
  Emit(EventType::kAdmissionRelax, job.id, obs::kNoId, obs::kNoId, 1);
  return true;
}

// ---- Tenancy ---------------------------------------------------------------

void SchedulerBase::ApplyTenantAdmission(JobRuntime& job) {
  if (!tenants_.Known(job.spec->tenant)) return;  // untenanted: full bypass
  job.tenant = job.spec->tenant;
  const tenancy::TenantSpec& spec = tenants_.spec(job.tenant);
  tenancy::TenantState& state = tenants_.state(job.tenant);
  ++state.jobs;

  tenancy::AdmissionInput in;
  in.priority = spec.priority;
  in.short_class = job.short_class;
  in.constrained = job.constrained;
  in.slo_target = job.short_class ? spec.slo_target : 0;
  in.job_work = job.spec->total_work();
  in.committed = state.committed;
  in.budget =
      tenants_.Budget(job.tenant, workers_.size(), config_.tenancy.quota_window);
  // The SLO feasibility signal: fleet-mean E[W] from the last heartbeat plus
  // the unavoidable probe/bind round trip. Under federation the job's home
  // shard answers from its gossiped global view (own territory + fresh
  // peers) — the "quota consistent via owning shard" read path.
  in.predicted_wait =
      (federation_ != nullptr
           ? federation_->GlobalMeanWait(federation_->HomeShard(job.id))
           : fleet_wait_estimate_) +
      2 * one_way();
  in.constrained_share = tenants_.ConstrainedShare(job.tenant);
  in.crv_share_limit = spec.crv_share;
  const tenancy::AdmissionDecision d = tenancy::DecideAdmission(in);

  job.priority = d.priority;
  if (in.slo_target > 0 && !d.strip_slo) {
    job.slo_target = in.slo_target;
    job.slo_tracked = true;
    ++state.slo_jobs;
    ++counters_.tenant_slo_jobs;
  }
  if (d.slo_at_risk) {
    ++state.slo_at_risk;
    ++counters_.tenant_slo_at_risk;
  }
  double quota_fraction = 0;
  if (d.charge_quota) {
    job.quota_charge = in.job_work;
    quota_fraction = tenants_.Charge(job.tenant, in.job_work, in.budget);
  }
  if (d.relax_constraint) RelaxOneSoftConstraint(job);

  EventType type = EventType::kTenantAdmit;
  switch (d.verdict) {
    case tenancy::Verdict::kAdmit:
      ++state.admits;
      ++counters_.tenant_admits;
      break;
    case tenancy::Verdict::kDowngrade:
      ++state.downgrades;
      ++counters_.tenant_downgrades;
      type = EventType::kTenantDowngrade;
      break;
    case tenancy::Verdict::kReject:
      ++state.rejects;
      ++counters_.tenant_rejects;
      type = EventType::kTenantReject;
      break;
  }
  Emit(type, job.id, job.tenant, tenancy::PriorityRank(job.priority),
       quota_fraction);
}

void SchedulerBase::TenantQueuedDelta(const QueueEntry& entry, double sign) {
  const JobRuntime& job = jobs_[entry.job];
  if (!job.constrained || !tenants_.Known(job.tenant)) return;
  tenants_.AdjustConstrainedQueued(job.tenant, sign * entry.est_duration);
}

void SchedulerBase::MaybePreemptFor(WorkerState& worker,
                                    const QueueEntry& entry) {
  if (worker.running_job == trace::kInvalidJob) return;  // no victim
  // Never preempt on a machine outside the bindable fleet. A draining
  // machine's slot work already belongs to the drain/retire sweep; a
  // preemption requeue would hand the victim to a second recovery path and
  // the two could redispatch it twice. DeliverEntry bounces before reaching
  // this point today, but any future caller (cross-shard binds, policy
  // ticks) must hit the same wall — the sweep alone recovers the slot.
  if (membership_ != nullptr && !membership_->Bindable(worker.id)) {
    ++counters_.preemptions_blocked_lifecycle;
    return;
  }
  const JobRuntime& incoming = jobs_[entry.job];
  if (incoming.priority != tenancy::PriorityClass::kProd) return;
  // A probe of a fully placed job would dissolve at resolution — never kill
  // running work for it.
  if (entry.kind == QueueEntry::Kind::kProbe && incoming.AllPlaced()) return;
  const JobRuntime& victim = jobs_[worker.running_job];
  switch (preempt_policy_.Judge(incoming.priority, victim.priority,
                                worker.running_bypass_exhausted,
                                worker.running_preempt_count)) {
    case tenancy::PreemptVerdict::kPreempt:
      if (tenants_.Known(incoming.tenant)) {
        ++tenants_.state(incoming.tenant).preemptions_issued;
      }
      PreemptRunning(worker);
      return;
    case tenancy::PreemptVerdict::kGuardedBySlack:
      ++counters_.preemptions_blocked_guard;
      return;
    case tenancy::PreemptVerdict::kPreemptCapReached:
      ++counters_.preemptions_blocked_cap;
      return;
    case tenancy::PreemptVerdict::kIneligible:
      return;
  }
}

void SchedulerBase::PreemptRunning(WorkerState& worker) {
  JobRuntime& victim = jobs_[worker.running_job];
  const sim::SimTime now = engine_.Now();
  const double remaining = std::max(0.0, worker.busy_until - now);
  const double elapsed = std::max(0.0, now - worker.running_start);
  const std::uint32_t index = worker.running_index;
  CancelSlotEvent(worker);
  if (power_ != nullptr) {
    const double watts = power_->OnExecEnd(worker.id, now);
    if (watts >= 0) {
      Emit(EventType::kPowerState, obs::kNoId, worker.id, obs::kNoId, watts);
    }
  }
  // The machine was genuinely busy for `elapsed`; only the unserved
  // remainder leaves the busy-time integral. The served part is wasted work.
  total_busy_time_ -= remaining;
  counters_.preemption_lost_seconds += elapsed;
  ++counters_.preemptions_issued;
  ++victim.preemptions;
  if (tenants_.Known(victim.tenant)) {
    ++tenants_.state(victim.tenant).preemptions_suffered;
  }
  // The auditor counts the issue as a kill; the matching requeue below keeps
  // its preemption-conservation set balanced.
  Emit(EventType::kPreemptIssue, victim.id, worker.id, index, elapsed);
  worker.running_job = trace::kInvalidJob;
  worker.busy = false;

  // Requeue on the same worker. Kill and requeue are one local control
  // action — no message transits the fabric — so chaos injection cannot
  // strand a preempted task.
  QueueEntry entry;
  entry.kind = QueueEntry::Kind::kBoundTask;
  entry.job = victim.id;
  entry.task_index = index;
  entry.est_duration = EstimatedTaskDuration(victim);
  entry.enqueue_time = now;
  entry.short_class = victim.short_class;
  entry.service_penalty = config_.tenancy.preemption_restart_cost;
  entry.preempt_count = static_cast<std::uint8_t>(
      std::min<std::size_t>(worker.running_preempt_count + 1, 255));
  worker.queue.push_back(entry);
  worker.est_queued_work += entry.est_duration;
  if (!entry.short_class) ++worker.long_entries;
  RefreshLongBusy(worker);
  worker.estimator.OnArrival(now);
  OnEntryEnqueued(worker, entry);
  TenantQueuedDelta(entry, +1);
  ++counters_.preemption_requeues;
  Emit(EventType::kPreemptRequeue, victim.id, worker.id, index);
  RefreshLongBusy(worker);
}

std::size_t SchedulerBase::PromoteByPriority(const WorkerState& worker,
                                             std::size_t chosen) const {
  const QueueEntry& pick = worker.queue[chosen];
  // Never override the starvation guard's selection.
  if (pick.bypass_count >= config_.slack_threshold) return chosen;
  std::uint8_t best_rank = tenancy::PriorityRank(jobs_[pick.job].priority);
  std::size_t best = chosen;
  for (std::size_t i = 0; i < worker.queue.size(); ++i) {
    if (i == chosen) continue;
    const std::uint8_t rank =
        tenancy::PriorityRank(jobs_[worker.queue[i].job].priority);
    if (rank < best_rank) {  // first entry of a strictly higher class wins
      best_rank = rank;
      best = i;
    }
  }
  return best;
}

void SchedulerBase::OnTenantJobComplete(JobRuntime& job) {
  if (!tenants_.Known(job.tenant)) return;
  tenancy::TenantState& state = tenants_.state(job.tenant);
  if (job.quota_charge > 0) {
    tenants_.Release(job.tenant, job.quota_charge);
    job.quota_charge = 0;
  }
  if (job.slo_tracked && job.max_task_wait <= job.slo_target) {
    ++state.slo_attained;
    ++counters_.tenant_slo_attained;
  }
}

bool SchedulerBase::UsesDistributedPlane(const JobRuntime& job) const {
  return job.short_class;
}

std::vector<MachineId> SchedulerBase::ChooseProbeTargets(
    const JobRuntime& job) {
  return SampleEligible(job.effective, config_.probe_ratio * job.num_tasks());
}

std::vector<MachineId> SchedulerBase::ChooseLongCandidates(
    const JobRuntime& job) {
  return SampleDistinctEligible(job.effective, config_.power_of_d);
}

std::size_t SchedulerBase::SelectNextIndex(const WorkerState& worker) {
  return IndexRespectingSlack(worker, 0);
}

void SchedulerBase::OnWorkerIdle(WorkerState&) {}
void SchedulerBase::OnHeartbeat(MachineId, MachineId) {}
bool SchedulerBase::UseStickyBatchProbing(const JobRuntime&) const {
  return false;
}
void SchedulerBase::OnEntryEnqueued(const WorkerState&, const QueueEntry&) {}
void SchedulerBase::OnEntryDequeued(const WorkerState&, const QueueEntry&) {}

std::size_t SchedulerBase::IndexRespectingSlack(const WorkerState& worker,
                                                std::size_t preferred) const {
  for (std::size_t i = 0; i < worker.queue.size(); ++i) {
    if (worker.queue[i].bypass_count >= config_.slack_threshold) {
      return i;  // oldest starved entry runs next, no matter what
    }
  }
  return preferred;
}

void SchedulerBase::FilterByPlacement(
    const JobRuntime& job, std::vector<MachineId>& candidates) const {
  if (job.placement() == trace::PlacementPref::kNone || candidates.empty()) {
    return;
  }
  std::vector<MachineId> filtered;
  filtered.reserve(candidates.size());
  if (job.placement() == trace::PlacementPref::kSpread) {
    for (const MachineId id : candidates) {
      if (!job.used_racks.Test(cluster_.rack_of(id))) filtered.push_back(id);
    }
  } else {  // kColocate
    if (job.anchor_rack == cluster::kInvalidRack) return;  // anchor not set yet
    for (const MachineId id : candidates) {
      if (cluster_.rack_of(id) == job.anchor_rack) filtered.push_back(id);
    }
  }
  if (!filtered.empty()) candidates = std::move(filtered);
}

void SchedulerBase::NoteRackCommitment(JobRuntime& job, cluster::RackId rack) {
  switch (job.placement()) {
    case trace::PlacementPref::kNone:
      return;
    case trace::PlacementPref::kSpread:
      if (job.used_racks.Test(rack)) {
        ++counters_.placement_spread_violations;
      } else {
        job.used_racks.Set(rack);
      }
      return;
    case trace::PlacementPref::kColocate:
      if (job.anchor_rack == cluster::kInvalidRack) {
        job.anchor_rack = rack;
      } else if (rack != job.anchor_rack) {
        ++counters_.placement_colocate_misses;
      }
      job.used_racks.Set(rack);
      return;
  }
}

MachineId SchedulerBase::SampleEligibleInShard(const cluster::ConstraintSet& cs,
                                               std::uint32_t shard) {
  const auto [lo, hi] = federation_->shard_map().range(shard);
  // Rejection-sample the eligible pool into the territory. The attempt
  // budget scales with the shard count (a uniform global draw lands in a
  // given territory ~1/S of the time).
  const std::size_t attempts = 4 * federation_->num_shards();
  for (std::size_t a = 0; a < attempts; ++a) {
    const MachineId m = SampleEligible(cs);
    if (m >= lo && m < hi) return m;
  }
  // The constraint pool (likely) misses this territory: place globally
  // rather than strand the job on a shard that cannot serve it.
  ++counters_.fed_territory_fallbacks;
  return SampleEligible(cs);
}

// Federated distributed placement: probes sample the job's target territory
// — its home shard, or a peer chosen optimistically from the gossiped view
// when home is saturated. Late binding self-corrects bad guesses (a probe
// resolving at a busy peer just dissolves or waits), so no accept/reject
// handshake is needed on this plane.
void SchedulerBase::PlaceDistributedFederated(JobRuntime& job) {
  const std::uint32_t home = federation_->HomeShard(job.id);
  std::uint32_t target_shard = home;
  const std::uint32_t peer = federation_->PickOffloadPeer(home);
  if (peer != federation::kNoShard) {
    target_shard = peer;
    ++counters_.fed_offloads;
  }
  const auto [lo, hi] = federation_->shard_map().range(home);
  const std::size_t wanted =
      std::max<std::size_t>(config_.probe_ratio * job.num_tasks(),
                            job.num_tasks());
  std::vector<MachineId> targets;
  targets.reserve(wanted);
  for (std::size_t i = 0; i < wanted; ++i) {
    targets.push_back(SampleEligibleInShard(job.effective, target_shard));
  }
  FilterByPlacement(job, targets);
  while (targets.size() < wanted) {
    targets.push_back(SampleEligibleInShard(job.effective, target_shard));
  }
  counters_.probes_sent += targets.size();
  job.outstanding_probes += static_cast<std::uint32_t>(targets.size());
  QueueEntry entry;
  entry.kind = QueueEntry::Kind::kProbe;
  entry.job = job.id;
  entry.est_duration = EstimatedTaskDuration(job);
  entry.short_class = job.short_class;
  for (const MachineId target : targets) {
    if (target < lo || target >= hi) ++counters_.fed_cross_shard_probes;
    Emit(EventType::kProbeSend, job.id, target);
    SendEntry(target, entry, one_way());
  }
}

// Federated centralized placement: each task binds least-loaded within the
// target territory. A bind leaving the home shard is optimistic — it rides
// a possibly-stale free-slot advertisement, is marked cross_shard, and runs
// double-bind detection at delivery (DeliverEntry): only a genuinely free
// slot accepts; anything else rejects back into the home redispatch path.
void SchedulerBase::PlaceCentralizedFederated(JobRuntime& job) {
  const std::uint32_t home = federation_->HomeShard(job.id);
  while (!job.AllPlaced()) {
    const std::uint32_t index = TakeNextTaskIndex(job);
    std::uint32_t target_shard = home;
    const std::uint32_t peer = federation_->PickOffloadPeer(home);
    if (peer != federation::kNoShard) {
      target_shard = peer;
      ++counters_.fed_offloads;
    }
    std::vector<MachineId> candidates;
    candidates.reserve(config_.power_of_d);
    for (std::size_t i = 0; i < config_.power_of_d; ++i) {
      candidates.push_back(
          SampleEligibleInShard(job.effective, target_shard));
    }
    FilterByPlacement(job, candidates);
    const MachineId best = PickLeastLoadedLive(candidates, job);
    NoteRackCommitment(job, cluster_.rack_of(best));
    QueueEntry entry;
    entry.kind = QueueEntry::Kind::kBoundTask;
    entry.job = job.id;
    entry.task_index = index;
    entry.est_duration = EstimatedTaskDuration(job);
    entry.short_class = job.short_class;
    if (federation_->shard_of(best) != home) {
      entry.cross_shard = true;
      ++counters_.fed_bind_attempts;
      Emit(EventType::kFedBindSend, job.id, best, index);
    }
    SendEntry(best, entry, one_way());
  }
}

void SchedulerBase::PlaceDistributed(JobRuntime& job) {
  if (federation_ != nullptr) {
    PlaceDistributedFederated(job);
    return;
  }
  // Colocate jobs anchor to a rack up front (production systems anchor to
  // the rack holding the job's input data), so the probes themselves can be
  // steered there.
  if (job.placement() == trace::PlacementPref::kColocate &&
      job.anchor_rack == cluster::kInvalidRack) {
    const MachineId anchor = SampleEligible(job.effective);
    if (anchor != cluster::kInvalidMachine) {
      job.anchor_rack = cluster_.rack_of(anchor);
    }
  }
  std::vector<MachineId> targets = ChooseProbeTargets(job);
  if (targets.empty() && power_ != nullptr) {
    // Every satisfying machine is asleep (the probe choosers iterate the
    // bindable pool directly): wake one and aim the probes at it —
    // deliveries bounce until the S3 exit commissions the machine.
    const MachineId woken = WakeSatisfierFallback(job.effective);
    if (woken != cluster::kInvalidMachine) targets.push_back(woken);
  }
  PHOENIX_CHECK_MSG(!targets.empty(),
                    "admission control must leave a satisfiable pool");
  FilterByPlacement(job, targets);
  // The placement filter may have shrunk the list below the probe budget;
  // a job needs at least one live probe per task or its tail strands. Top
  // up, preferring the anchor rack for colocate jobs before spilling over.
  const std::size_t wanted = config_.probe_ratio * job.num_tasks();
  std::size_t attempts = 0;
  while (targets.size() < wanted && attempts < 6 * wanted) {
    ++attempts;
    const MachineId extra = SampleEligible(job.effective);
    if (extra == cluster::kInvalidMachine) break;
    if (job.placement() == trace::PlacementPref::kColocate &&
        job.anchor_rack != cluster::kInvalidRack &&
        cluster_.rack_of(extra) != job.anchor_rack &&
        attempts < 4 * wanted) {
      continue;  // keep trying for the anchor rack first
    }
    targets.push_back(extra);
  }
  PHOENIX_CHECK_MSG(targets.size() >= job.num_tasks(),
                    "probe budget below task count");
  counters_.probes_sent += targets.size();
  job.outstanding_probes += static_cast<std::uint32_t>(targets.size());
  QueueEntry entry;
  entry.kind = QueueEntry::Kind::kProbe;
  entry.job = job.id;
  entry.est_duration = EstimatedTaskDuration(job);
  entry.short_class = job.short_class;
  for (const MachineId target : targets) {
    Emit(EventType::kProbeSend, job.id, target);
    SendEntry(target, entry, one_way());
  }
}

void SchedulerBase::PlaceCentralized(JobRuntime& job) {
  if (federation_ != nullptr) {
    PlaceCentralizedFederated(job);
    return;
  }
  while (!job.AllPlaced()) {
    const std::uint32_t index = TakeNextTaskIndex(job);
    std::vector<MachineId> candidates = ChooseLongCandidates(job);
    PHOENIX_CHECK_MSG(!candidates.empty(),
                      "admission control must leave a satisfiable pool");
    FilterByPlacement(job, candidates);
    // Shared with RedispatchEntry: least-loaded live candidate, or a fresh
    // pool draw when every candidate is down (never a known-dead bind).
    // Under packing, best vector fit wins instead.
    const MachineId best = packing_on_ ? PickBestPacked(candidates, job)
                                       : PickLeastLoadedLive(candidates, job);
    NoteRackCommitment(job, cluster_.rack_of(best));
    QueueEntry entry;
    entry.kind = QueueEntry::Kind::kBoundTask;
    entry.job = job.id;
    entry.task_index = index;
    entry.est_duration = EstimatedTaskDuration(job);
    entry.short_class = job.short_class;
    SendEntry(best, entry, one_way());
  }
}

void SchedulerBase::SendEntry(MachineId target, QueueEntry entry, double delay,
                              MachineId from) {
  rpc_.Send(from, target,
            entry.kind == QueueEntry::Kind::kProbe
                ? net::MessageKind::kProbe
                : net::MessageKind::kTaskBind,
            delay, [this, target, entry] { DeliverEntry(target, entry); },
            [this, target, entry] { GiveUpEntry(target, entry); });
}

void SchedulerBase::DeliverEntry(MachineId target, QueueEntry entry) {
  if (packing_on_ && !gangs_.empty() && gangs_.count(entry.job) != 0) {
    // Gang member arriving inside an open reservation round: stage it for
    // the atomic commit instead of queueing (post-commit replays of gang
    // tasks flow through the normal path below — their round is closed).
    DeliverGangMember(target, std::move(entry));
    return;
  }
  WorkerState& w = workers_[target];
  if (entry.cross_shard) {
    // Double-bind detection for an optimistic cross-shard bind: the free
    // slot it was sent toward may have been taken (or the machine lost)
    // while the bind transited on a stale view. Accept only a genuinely
    // free slot; otherwise reject back into the home redispatch path.
    // Exactly one kFedBindAccept / kFedBindReject per kFedBindSend — the
    // auditor's fed-bind conservation rule.
    const bool slot_free =
        !w.failed && Bindable(target) && !w.busy && w.queue.empty();
    entry.cross_shard = false;  // resolved either way; requeues are plain
    if (slot_free) {
      ++counters_.fed_bind_accepts;
      Emit(EventType::kFedBindAccept, entry.job, target, entry.task_index);
    } else {
      ++counters_.fed_bind_rejects;
      Emit(EventType::kFedBindReject, entry.job, target, entry.task_index);
      BounceUndelivered(std::move(entry), target, fabric_.bounce_backoff());
      return;
    }
  }
  if (w.failed || !Bindable(target)) {
    // The destination died (or left the bindable fleet) in transit: bounce
    // to a live worker after the fabric's pacing backoff. Stale probes (job
    // fully placed) dissolve.
    BounceUndelivered(std::move(entry), target, fabric_.bounce_backoff());
    return;
  }
  if (packing_on_ && !jobs_[entry.job].demand.FitsIn(w.capacity)) {
    // The demand exceeds this machine's *total* capacity: the entry could
    // never start here no matter how the residual moves. Queueing it would
    // strand it, so re-cover it like a bounce off a dead destination (the
    // rebind paths prefer capacity-fitting machines).
    ++counters_.pack_fit_rejections;
    BounceUndelivered(std::move(entry), target, fabric_.bounce_backoff());
    return;
  }
  entry.enqueue_time = engine_.Now();
  entry.bypass_count = 0;
  w.queue.push_back(entry);
  w.est_queued_work += entry.est_duration;
  if (entry.kind == QueueEntry::Kind::kBoundTask && !entry.short_class) {
    ++w.long_entries;
    RefreshLongBusy(w);
  } else if (entry.kind == QueueEntry::Kind::kProbe && entry.short_class) {
    ++short_probe_counts_[target];
  }
  w.estimator.OnArrival(engine_.Now());
  w.steal_inflight = false;  // incoming work satisfies any pending steal
  OnEntryEnqueued(w, entry);
  if (tenancy_on_) {
    TenantQueuedDelta(entry, +1);
    if (w.busy) MaybePreemptFor(w, entry);
  }
  TryStartNext(w);
}

void SchedulerBase::GiveUpEntry(MachineId target, QueueEntry entry) {
  // Every delivery attempt toward `target` timed out. The entry never
  // arrived, so re-cover it exactly like a transit bounce; also clear the
  // target's steal marker, else a lost steal transfer would block that
  // worker from ever stealing again.
  workers_[target].steal_inflight = false;
  if (packing_on_ && !gangs_.empty()) {
    auto it = gangs_.find(entry.job);
    if (it != gangs_.end()) {
      // A gang member that never arrived fails its whole round: reclaim the
      // task index and close the member so the round can abort and retry.
      jobs_[entry.job].replay_tasks.push_back(entry.task_index);
      it->second.failed = true;
      ++it->second.closed;
      CloseGangMember(entry.job);
      return;
    }
  }
  if (entry.cross_shard) {
    // The optimistic bind never reached the peer: close its accept/reject
    // pair as a rejection so the conservation rule stays balanced.
    entry.cross_shard = false;
    ++counters_.fed_bind_rejects;
    Emit(EventType::kFedBindReject, entry.job, target, entry.task_index);
  }
  BounceUndelivered(std::move(entry), target, one_way());
}

void SchedulerBase::BounceUndelivered(QueueEntry entry, MachineId target,
                                      double delay) {
  if (entry.kind == QueueEntry::Kind::kProbe) {
    JobRuntime& job = jobs_[entry.job];
    PHOENIX_CHECK(job.outstanding_probes > 0);
    --job.outstanding_probes;
    if (job.AllPlaced()) {
      ++counters_.probes_cancelled;
      Emit(EventType::kProbeCancel, entry.job, target);
      return;
    }
    ++counters_.probes_bounced;
    Emit(EventType::kProbeBounce, entry.job, target);
  }
  RedispatchEntry(std::move(entry), delay);
}

void SchedulerBase::CancelSlotEvent(WorkerState& worker) {
  if (worker.pending_call != 0) {
    rpc_.Cancel(worker.pending_call);
    worker.pending_call = 0;
  } else {
    engine_.Cancel(worker.pending_event);
  }
}

QueueEntry SchedulerBase::PopQueueAt(WorkerState& worker, std::size_t index) {
  PHOENIX_CHECK(index < worker.queue.size());
  for (std::size_t i = 0; i < index; ++i) {
    ++worker.queue[i].bypass_count;
  }
  return RemoveQueueAt(worker, index);
}

QueueEntry SchedulerBase::RemoveQueueAt(WorkerState& worker,
                                        std::size_t index) {
  PHOENIX_CHECK(index < worker.queue.size());
  QueueEntry entry = worker.queue[index];
  worker.queue.erase(worker.queue.begin() +
                     static_cast<std::ptrdiff_t>(index));
  worker.est_queued_work =
      std::max(0.0, worker.est_queued_work - entry.est_duration);
  if (entry.kind == QueueEntry::Kind::kBoundTask && !entry.short_class) {
    PHOENIX_CHECK(worker.long_entries > 0);
    --worker.long_entries;
    RefreshLongBusy(worker);
  } else if (entry.kind == QueueEntry::Kind::kProbe && entry.short_class &&
             short_probe_counts_[worker.id] > 0) {
    // Saturating, like est_queued_work above: white-box tests stuff queues
    // directly without going through DeliverEntry's accounting.
    --short_probe_counts_[worker.id];
  }
  OnEntryDequeued(worker, entry);
  if (tenancy_on_) TenantQueuedDelta(entry, -1);
  return entry;
}

void SchedulerBase::TryStartNext(WorkerState& worker) {
  if (packing_on_) {
    PackedTryStart(worker);
    return;
  }
  if (worker.busy || worker.failed) return;
  if (worker.queue.empty()) {
    OnWorkerIdle(worker);
    return;
  }
  std::size_t index = SelectNextIndex(worker);
  PHOENIX_CHECK_MSG(index < worker.queue.size(),
                    "queue discipline returned an out-of-range index");
  if (tenancy_on_) {
    const std::size_t promoted = PromoteByPriority(worker, index);
    if (promoted != index) {
      index = promoted;
      ++counters_.tenant_priority_promotions;
    }
  }
  if (deadline_on_) {
    // EDF tie-break runs last: an earlier-deadline entry overrides both the
    // discipline's pick and the class promotion (never the slack guard).
    const std::size_t promoted = PromoteByDeadline(worker, index);
    if (promoted != index) {
      index = promoted;
      ++counters_.deadline_promotions;
    }
  }
  QueueEntry entry = PopQueueAt(worker, index);
  if (tenancy_on_) {
    // Snapshot the entry's starvation/preemption state for the preemption
    // policy (probes carry it into the resolution-started task).
    worker.running_bypass_exhausted =
        entry.bypass_count >= config_.slack_threshold;
    worker.running_preempt_count = entry.preempt_count;
  }
  if (entry.kind == QueueEntry::Kind::kBoundTask) {
    StartService(worker, jobs_[entry.job], entry.task_index,
                 entry.service_penalty);
    return;
  }
  // Probe: hold the slot while fetching the task over one RTT (late
  // binding). The fetch is a fabric round trip; a lost request or reply
  // times out and re-covers the probe instead of stranding the slot.
  worker.busy = true;
  worker.resolving = true;
  worker.resolving_entry = entry;
  worker.pending_call = rpc_.RoundTrip(
      worker.id, net::kControllerNode, net::MessageKind::kFetchRequest,
      one_way(),
      [this, wid = worker.id, entry] {
        WorkerState& w = workers_[wid];
        w.pending_call = 0;
        w.resolving = false;
        ResolveProbe(w, entry);
      },
      [this, wid = worker.id, entry] { AbortProbeResolution(wid, entry); });
}

void SchedulerBase::AbortProbeResolution(MachineId wid, QueueEntry entry) {
  // Every fetch attempt for the held probe timed out: release the slot and
  // treat the probe like one bounced off a dead destination (re-dispatched
  // while the job still has unplaced tasks, dissolved otherwise).
  WorkerState& w = workers_[wid];
  w.pending_call = 0;
  w.resolving = false;
  w.busy = false;
  BounceUndelivered(std::move(entry), wid, one_way());
  TryStartNext(w);
}

void SchedulerBase::AbortStickyFetch(MachineId wid, trace::JobId jid) {
  // Mirrors FailMachine's in-flight-fetch recovery: the fetched job's
  // sibling probes may be gone, so re-cover it with a fresh dispatch.
  WorkerState& w = workers_[wid];
  w.pending_call = 0;
  w.fetching_job = trace::kInvalidJob;
  w.busy = false;
  JobRuntime& job = jobs_[jid];
  if (!job.AllPlaced()) {
    ++counters_.sticky_fetch_redispatches;
    QueueEntry entry;
    entry.job = job.id;
    entry.est_duration = EstimatedTaskDuration(job);
    entry.short_class = job.short_class;
    if (UsesDistributedPlane(job)) {
      entry.kind = QueueEntry::Kind::kProbe;
    } else {
      entry.kind = QueueEntry::Kind::kBoundTask;
      entry.task_index = TakeNextTaskIndex(job);
    }
    RedispatchEntry(std::move(entry), one_way());
  }
  TryStartNext(w);
}

void SchedulerBase::ResolveProbe(WorkerState& worker, QueueEntry entry) {
  JobRuntime& job = jobs_[entry.job];
  PHOENIX_CHECK(job.outstanding_probes > 0);
  --job.outstanding_probes;
  if (!job.AllPlaced()) {
    // Spread preference: decline this probe if the rack already hosts a
    // task of the job AND enough probes remain in flight to cover the
    // unplaced tasks elsewhere (the preference is soft — with no slack
    // left, accept and count the violation via NoteRackCommitment).
    const cluster::RackId rack = cluster_.rack_of(worker.id);
    const auto remaining =
        static_cast<std::uint32_t>(job.num_tasks()) - job.next_unplaced +
        static_cast<std::uint32_t>(job.replay_tasks.size());
    if (job.placement() == trace::PlacementPref::kSpread &&
        job.used_racks.Test(rack) && job.outstanding_probes >= remaining) {
      ++counters_.probes_declined_placement;
      Emit(EventType::kProbeDecline, job.id, worker.id);
      worker.busy = false;
      TryStartNext(worker);
      return;
    }
    if (packing_on_ && !job.demand.FitsIn(worker.residual)) {
      // Capacity moved while the fetch transited: the resolved slot cannot
      // host the demand any more. Re-cover the probe elsewhere (not a
      // failure — compensate RedispatchEntry's counter).
      ++counters_.pack_fit_rejections;
      worker.busy = false;
      RedispatchEntry(entry, one_way());
      --counters_.tasks_rescheduled_failure;
      TryStartNext(worker);
      return;
    }
    const std::uint32_t index = TakeNextTaskIndex(job);
    Emit(EventType::kProbeResolve, job.id, worker.id, index);
    NoteRackCommitment(job, rack);
    worker.busy = false;  // StartService re-claims the slot
    if (packing_on_) {
      StartPackedRun(worker, job, index, 0.0, /*from_reserve=*/false);
      PackedTryStart(worker);
      return;
    }
    StartService(worker, job, index);
    return;
  }
  // All tasks already placed elsewhere: the proxy probe dissolves.
  ++counters_.probes_cancelled;
  Emit(EventType::kProbeCancel, job.id, worker.id);
  worker.busy = false;
  TryStartNext(worker);
}

void SchedulerBase::RecordTaskStart(JobRuntime& job, sim::SimTime start) {
  const double wait = start - job.spec->submit_time;
  PHOENIX_CHECK_MSG(wait >= 0, "task started before job submission");
  job.sum_task_wait += wait;
  job.max_task_wait = std::max(job.max_task_wait, wait);
  ++job.task_starts;
}

void SchedulerBase::StartService(WorkerState& worker, JobRuntime& job,
                                 std::uint32_t task_index,
                                 double service_penalty) {
  PHOENIX_CHECK_MSG(!worker.busy, "worker slot already held");
  const sim::SimTime now = engine_.Now();
  double duration = job.ActualDuration(task_index) + service_penalty;
  if (power_ != nullptr) {
    // Ondemand boost: arriving work snaps a throttled machine back to P0,
    // so DVFS thins the idle draw of lightly loaded machines without
    // stretching service (frequency transitions are instantaneous next to
    // task durations; S3 wakes are the latency that matters).
    if (power_->p_state(worker.id) != 0 && !power_->executing(worker.id)) {
      ++counters_.power_dvfs_raises;
      const double boosted = power_->SetPState(worker.id, 0, now);
      Emit(EventType::kPowerDvfs, obs::kNoId, worker.id, 0, boosted);
      Emit(EventType::kPowerState, obs::kNoId, worker.id, obs::kNoId, boosted);
    }
    duration *= power_->SpeedMultiplier(worker.id);
    const double watts = power_->OnExecBegin(worker.id, now);
    if (watts >= 0) {
      Emit(EventType::kPowerState, obs::kNoId, worker.id, obs::kNoId, watts);
    }
  }
  if (service_penalty > 0) {
    counters_.preemption_restart_seconds += service_penalty;
  }
  RecordTaskStart(job, now);
  ++worker.tasks_started;
  worker.busy = true;
  worker.running_job = job.id;
  worker.running_index = task_index;
  worker.running_start = now;
  worker.busy_until = now + duration;
  RefreshLongBusy(worker);
  total_busy_time_ += duration;
  Emit(EventType::kTaskStart, job.id, worker.id, task_index, duration);
  worker.pending_event =
      engine_.ScheduleAt(worker.busy_until, [this, wid = worker.id, duration] {
        WorkerState& w = workers_[wid];
        if (power_ != nullptr) {
          // Per-SLA-class energy attainment: the exec draw was constant for
          // the whole run (DVFS is blocked while executing), so watts x
          // duration is this task's exact share of the meter's exec joules.
          // Untenanted work lands in the batch bucket.
          const std::uint8_t rank =
              tenancy::PriorityRank(jobs_[w.running_job].priority);
          class_exec_joules_[rank] += power_->watts(wid) * duration;
          ++class_tasks_[rank];
          const double watts = power_->OnExecEnd(wid, engine_.Now());
          if (watts >= 0) {
            Emit(EventType::kPowerState, obs::kNoId, wid, obs::kNoId, watts);
          }
        }
        w.estimator.OnServiceComplete(duration);
        if (tenancy_on_) {
          const JobRuntime& j = jobs_[w.running_job];
          if (tenants_.Known(j.tenant)) {
            tenants_.state(j.tenant).usage_seconds += duration;
          }
        }
        Emit(EventType::kTaskComplete, w.running_job, wid, w.running_index,
             duration);
        FinishService(w);
      });
}

void SchedulerBase::FinishService(WorkerState& worker) {
  JobRuntime& job = jobs_[worker.running_job];
  const sim::SimTime now = engine_.Now();
  const std::uint32_t finished_index = worker.running_index;
  ++job.completed;
  makespan_ = std::max(makespan_, now);
  worker.running_job = trace::kInvalidJob;
  RefreshLongBusy(worker);
  if (job.Done()) {
    job.completion = now;
    ++jobs_done_;
    if (tenancy_on_) OnTenantJobComplete(job);
    Emit(EventType::kJobComplete, job.id, worker.id, obs::kNoId,
         now - job.spec->submit_time);
    if (deadline_on_) ScoreDeadline(job);
  } else if (DagManaged(job)) {
    // The finished task's successors may have become ready; dispatch them
    // (the last task to finish has none, so the Done branch skips this).
    ReleaseDagSuccessors(job, finished_index);
  }
  // Sticky batch probing never fetches from a DAG job: TakeNextTaskIndex
  // hands out tasks in index order, released or not.
  if (!job.AllPlaced() && job.placement() != trace::PlacementPref::kSpread &&
      Bindable(worker.id) && !DagManaged(job) && UseStickyBatchProbing(job)) {
    // Sticky batch probing: keep the slot and fetch the job's next task
    // directly, skipping the probe queue (Eagle §"divide and stick").
    // fetching_job marks the in-flight fetch so a machine failure can
    // re-cover the job (see FailMachine).
    worker.fetching_job = job.id;
    Emit(EventType::kStickyFetch, job.id, worker.id);
    worker.pending_call = rpc_.RoundTrip(
        worker.id, net::kControllerNode, net::MessageKind::kFetchRequest,
        one_way(),
        [this, wid = worker.id, jid = job.id] {
          WorkerState& w = workers_[wid];
          JobRuntime& j = jobs_[jid];
          w.pending_call = 0;
          w.fetching_job = trace::kInvalidJob;
          w.busy = false;
          if (!j.AllPlaced()) {
            if (tenancy_on_) {
              // A sticky-fetched task never sat in a queue: fresh state.
              w.running_bypass_exhausted = false;
              w.running_preempt_count = 0;
            }
            NoteRackCommitment(j, cluster_.rack_of(w.id));
            StartService(w, j, TakeNextTaskIndex(j));
          } else {
            TryStartNext(w);
          }
        },
        [this, wid = worker.id, jid = job.id] { AbortStickyFetch(wid, jid); });
    return;
  }
  worker.busy = false;
  TryStartNext(worker);
}

bool SchedulerBase::TryStealFor(WorkerState& worker) {
  if (worker.steal_inflight) return false;
  // A draining (or not-yet-commissioned) thief must not pull new work in.
  if (!Bindable(worker.id)) return false;
  const cluster::Machine& self = cluster_.machine(worker.id);
  for (std::size_t attempt = 0; attempt < config_.steal_candidates; ++attempt) {
    const auto victim_id =
        static_cast<MachineId>(rng_.NextBounded(workers_.size()));
    if (victim_id == worker.id) continue;
    // Dense-hint fast path: with no short probes queued, the scan below
    // would find nothing (failed machines drain their queues, so they read
    // zero too). The RNG draw above already happened, so skipping the scan
    // leaves the draw sequence — and every downstream decision — intact.
    if (short_probe_counts_[victim_id] == 0) continue;
    WorkerState& victim = workers_[victim_id];
    if (victim.failed) continue;
    for (std::size_t i = 0; i < victim.queue.size(); ++i) {
      const QueueEntry& candidate = victim.queue[i];
      if (candidate.kind != QueueEntry::Kind::kProbe || !candidate.short_class) {
        continue;
      }
      if (!self.Satisfies(jobs_[candidate.job].effective)) continue;
      // Move the probe: one RTT to ask the victim plus one to transfer.
      QueueEntry stolen = RemoveQueueAt(victim, i);
      ++counters_.tasks_stolen;
      worker.steal_inflight = true;
      Emit(EventType::kSteal, stolen.job, worker.id, obs::kNoId, victim_id);
      SendEntry(worker.id, stolen, 2 * one_way(), victim_id);
      return true;
    }
  }
  return false;
}

// ---- Multi-resource packing (src/packing) ---------------------------------
//
// Everything below is unreachable when packing_on_ is false: run lists stay
// empty, residual ledgers never move, and the single-slot paths above remain
// byte-identical to the pre-packing scheduler.

void SchedulerBase::ClampDemandToHostable(JobRuntime& job) {
  // The satisfying pool and the capacity-fitting pool must intersect, or
  // the job's entries would bounce between delivery and redispatch forever.
  // Admission already guarantees a non-empty satisfying pool; find its
  // largest member (normalized volume, ties: lowest id) and clamp the
  // demand component-wise to that machine's capacity when nothing in the
  // pool can host the original request.
  const packing::ResourceVector* best = nullptr;
  double best_volume = -1.0;
  for (const WorkerState& w : workers_) {
    if (!cluster_.machine(w.id).Satisfies(job.effective)) continue;
    if (job.demand.FitsIn(w.capacity)) return;  // already hostable
    double volume = 0;
    for (std::size_t d = 0; d < packing::kNumPackDims; ++d) {
      if (max_capacity_.dim(d) > 0) {
        volume += w.capacity.dim(d) / max_capacity_.dim(d);
      }
    }
    if (volume > best_volume) {
      best_volume = volume;
      best = &w.capacity;
    }
  }
  const packing::ResourceVector& target =
      best != nullptr ? *best : clamp_capacity_;
  for (std::size_t d = 0; d < packing::kNumPackDims; ++d) {
    job.demand.v[d] = std::min(job.demand.dim(d), target.dim(d));
  }
  ++counters_.pack_demand_clamped;
}

void SchedulerBase::ClaimPackedCapacity(WorkerState& worker,
                                        const packing::ResourceVector& demand,
                                        double copies, JobId job) {
  worker.residual.AddScaled(demand, -copies);
  if (sinks_.empty()) return;
  for (std::size_t d = 0; d < packing::kNumPackDims; ++d) {
    if (demand.dim(d) <= 0) continue;
    Emit(EventType::kPackClaim, job, worker.id, static_cast<std::uint32_t>(d),
         demand.dim(d) * copies);
  }
}

void SchedulerBase::ReleasePackedCapacity(WorkerState& worker,
                                          const packing::ResourceVector& demand,
                                          double copies, JobId job) {
  worker.residual.AddScaled(demand, copies);
  if (sinks_.empty()) return;
  for (std::size_t d = 0; d < packing::kNumPackDims; ++d) {
    if (demand.dim(d) <= 0) continue;
    Emit(EventType::kPackRelease, job, worker.id,
         static_cast<std::uint32_t>(d), demand.dim(d) * copies);
  }
}

void SchedulerBase::PackedTryStart(WorkerState& worker) {
  // `busy` under packing means "control slot held for an in-flight fetch":
  // one probe resolution at a time, so the residual the fetch validated is
  // still meaningful when it lands.
  if (worker.failed || worker.busy) return;
  while (!worker.queue.empty()) {
    std::size_t index = SelectNextIndex(worker);
    PHOENIX_CHECK_MSG(index < worker.queue.size(),
                      "queue discipline returned an out-of-range index");
    if (tenancy_on_) {
      const std::size_t promoted = PromoteByPriority(worker, index);
      if (promoted != index) {
        index = promoted;
        ++counters_.tenant_priority_promotions;
      }
    }
    if (deadline_on_) {
      const std::size_t promoted = PromoteByDeadline(worker, index);
      if (promoted != index) {
        index = promoted;
        ++counters_.deadline_promotions;
      }
    }
    if (!PackedFits(worker, worker.queue[index])) {
      ++counters_.pack_fit_rejections;
      if (tenancy_on_ && TryPackedPreemptFor(worker, worker.queue[index])) {
        continue;  // capacity freed now; re-run the selection
      }
      // Backfill: the first entry in queue order that does fit runs instead.
      // The selected entry keeps its place and accrues bypass credit via
      // PopQueueAt, so the starvation guard still sees it.
      bool found = false;
      for (std::size_t i = 0; i < worker.queue.size(); ++i) {
        if (i == index) continue;
        if (PackedFits(worker, worker.queue[i])) {
          index = i;
          found = true;
          break;
        }
      }
      if (!found) return;  // nothing fits: wait for a completion
    }
    QueueEntry entry = PopQueueAt(worker, index);
    if (tenancy_on_) {
      worker.running_bypass_exhausted =
          entry.bypass_count >= config_.slack_threshold;
      worker.running_preempt_count = entry.preempt_count;
    }
    if (entry.kind == QueueEntry::Kind::kBoundTask) {
      StartPackedRun(worker, jobs_[entry.job], entry.task_index,
                     entry.service_penalty, /*from_reserve=*/false);
      continue;
    }
    // Probe: hold the control slot while fetching over one RTT (late
    // binding), exactly like the single-slot path.
    worker.busy = true;
    worker.resolving = true;
    worker.resolving_entry = entry;
    worker.pending_call = rpc_.RoundTrip(
        worker.id, net::kControllerNode, net::MessageKind::kFetchRequest,
        one_way(),
        [this, wid = worker.id, entry] {
          WorkerState& w = workers_[wid];
          w.pending_call = 0;
          w.resolving = false;
          ResolveProbe(w, entry);
        },
        [this, wid = worker.id, entry] { AbortProbeResolution(wid, entry); });
    return;
  }
  if (worker.run_list.empty()) OnWorkerIdle(worker);
}

bool SchedulerBase::TryPackedPreemptFor(WorkerState& worker,
                                        const QueueEntry& head) {
  const JobRuntime& incoming = jobs_[head.job];
  if (incoming.priority != tenancy::PriorityClass::kProd) return false;
  if (head.kind == QueueEntry::Kind::kProbe && incoming.AllPlaced()) {
    return false;  // would dissolve at resolution; never kill work for it
  }
  if (membership_ != nullptr && !membership_->Bindable(worker.id)) {
    ++counters_.preemptions_blocked_lifecycle;
    return false;
  }
  // Newest best-effort run first: LIFO minimizes the served work lost.
  for (std::size_t i = worker.run_list.size(); i-- > 0;) {
    JobRuntime& victim = jobs_[worker.run_list[i].job];
    if (victim.priority != tenancy::PriorityClass::kBestEffort) continue;
    if (preempt_policy_.Judge(incoming.priority, victim.priority,
                              worker.running_bypass_exhausted,
                              worker.running_preempt_count) !=
        tenancy::PreemptVerdict::kPreempt) {
      continue;
    }
    if (tenants_.Known(incoming.tenant)) {
      ++tenants_.state(incoming.tenant).preemptions_issued;
    }
    const PackedRun run = worker.run_list[i];
    worker.run_list.erase(worker.run_list.begin() +
                          static_cast<std::ptrdiff_t>(i));
    engine_.Cancel(run.pending_event);
    const sim::SimTime now = engine_.Now();
    const double remaining = std::max(0.0, run.until - now);
    const double elapsed = std::max(0.0, now - run.start);
    ReleasePackedCapacity(worker, victim.demand, 1.0, victim.id);
    if (power_ != nullptr && worker.run_list.empty()) {
      const double watts = power_->OnExecEnd(worker.id, now);
      if (watts >= 0) {
        Emit(EventType::kPowerState, obs::kNoId, worker.id, obs::kNoId, watts);
      }
    }
    total_busy_time_ -= remaining;
    packed_core_seconds_ -=
        remaining * victim.demand[packing::PackDim::kCores];
    counters_.preemption_lost_seconds += elapsed;
    ++counters_.preemptions_issued;
    ++victim.preemptions;
    if (tenants_.Known(victim.tenant)) {
      ++tenants_.state(victim.tenant).preemptions_suffered;
    }
    Emit(EventType::kPreemptIssue, victim.id, worker.id, run.task_index,
         elapsed);
    // Requeue locally with the restart cost — one control action, no fabric
    // transit, so chaos cannot strand the victim.
    QueueEntry entry;
    entry.kind = QueueEntry::Kind::kBoundTask;
    entry.job = victim.id;
    entry.task_index = run.task_index;
    entry.est_duration = EstimatedTaskDuration(victim);
    entry.enqueue_time = now;
    entry.short_class = victim.short_class;
    entry.service_penalty = config_.tenancy.preemption_restart_cost;
    entry.preempt_count = static_cast<std::uint8_t>(
        std::min<std::size_t>(worker.running_preempt_count + 1, 255));
    worker.queue.push_back(entry);
    worker.est_queued_work += entry.est_duration;
    if (!entry.short_class) ++worker.long_entries;
    worker.estimator.OnArrival(now);
    OnEntryEnqueued(worker, entry);
    TenantQueuedDelta(entry, +1);
    ++counters_.preemption_requeues;
    Emit(EventType::kPreemptRequeue, victim.id, worker.id, run.task_index);
    RefreshLongBusy(worker);
    return true;
  }
  return false;
}

void SchedulerBase::StartPackedRun(WorkerState& worker, JobRuntime& job,
                                   std::uint32_t task_index,
                                   double service_penalty, bool from_reserve) {
  const sim::SimTime now = engine_.Now();
  double duration = job.ActualDuration(task_index) + service_penalty;
  if (power_ != nullptr) {
    if (worker.run_list.empty() && power_->p_state(worker.id) != 0 &&
        !power_->executing(worker.id)) {
      ++counters_.power_dvfs_raises;
      const double boosted = power_->SetPState(worker.id, 0, now);
      Emit(EventType::kPowerDvfs, obs::kNoId, worker.id, 0, boosted);
      Emit(EventType::kPowerState, obs::kNoId, worker.id, obs::kNoId, boosted);
    }
    duration *= power_->SpeedMultiplier(worker.id);
    if (worker.run_list.empty()) {
      // Exec metering opens on the 0 -> 1 run transition only; concurrent
      // runs share the machine's single exec draw.
      const double watts = power_->OnExecBegin(worker.id, now);
      if (watts >= 0) {
        Emit(EventType::kPowerState, obs::kNoId, worker.id, obs::kNoId, watts);
      }
    }
  }
  if (service_penalty > 0) {
    counters_.preemption_restart_seconds += service_penalty;
  }
  if (!from_reserve) {
    ClaimPackedCapacity(worker, job.demand, 1.0, job.id);
  }
  RecordTaskStart(job, now);
  ++worker.tasks_started;
  ++counters_.packed_tasks;
  PackedRun run;
  run.job = job.id;
  run.task_index = task_index;
  run.run_id = worker.next_run_id++;
  run.start = now;
  run.until = now + duration;
  total_busy_time_ += duration;
  packed_core_seconds_ += duration * job.demand[packing::PackDim::kCores];
  Emit(EventType::kTaskStart, job.id, worker.id, task_index, duration);
  run.pending_event = engine_.ScheduleAt(
      run.until, [this, wid = worker.id, rid = run.run_id, duration] {
        FinishPackedRun(wid, rid, duration);
      });
  worker.run_list.push_back(run);
  RefreshLongBusy(worker);
}

void SchedulerBase::FinishPackedRun(MachineId wid, std::uint32_t run_id,
                                    double duration) {
  WorkerState& worker = workers_[wid];
  std::size_t slot = worker.run_list.size();
  for (std::size_t i = 0; i < worker.run_list.size(); ++i) {
    if (worker.run_list[i].run_id == run_id) {
      slot = i;
      break;
    }
  }
  PHOENIX_CHECK_MSG(slot < worker.run_list.size(),
                    "completion event for an evicted packed run");
  const PackedRun run = worker.run_list[slot];
  worker.run_list.erase(worker.run_list.begin() +
                        static_cast<std::ptrdiff_t>(slot));
  JobRuntime& job = jobs_[run.job];
  const sim::SimTime now = engine_.Now();
  if (power_ != nullptr) {
    // Per-class energy under packing: the machine's exec draw is split
    // evenly across the runs sharing it (this one included) — approximate
    // under concurrency, exact when the run was alone.
    const double share =
        power_->watts(wid) / static_cast<double>(worker.run_list.size() + 1);
    const std::uint8_t rank = tenancy::PriorityRank(job.priority);
    class_exec_joules_[rank] += share * duration;
    ++class_tasks_[rank];
    if (worker.run_list.empty()) {
      const double watts = power_->OnExecEnd(wid, now);
      if (watts >= 0) {
        Emit(EventType::kPowerState, obs::kNoId, wid, obs::kNoId, watts);
      }
    }
  }
  ReleasePackedCapacity(worker, job.demand, 1.0, job.id);
  worker.estimator.OnServiceComplete(duration);
  if (tenancy_on_ && tenants_.Known(job.tenant)) {
    tenants_.state(job.tenant).usage_seconds += duration;
  }
  Emit(EventType::kTaskComplete, job.id, wid, run.task_index, duration);
  ++job.completed;
  makespan_ = std::max(makespan_, now);
  RefreshLongBusy(worker);
  if (job.Done()) {
    job.completion = now;
    ++jobs_done_;
    if (tenancy_on_) OnTenantJobComplete(job);
    Emit(EventType::kJobComplete, job.id, wid, obs::kNoId,
         now - job.spec->submit_time);
    if (deadline_on_) ScoreDeadline(job);
  } else if (DagManaged(job)) {
    ReleaseDagSuccessors(job, run.task_index);
  } else if (job.malleable() && job.malleable_inflight > 0) {
    --job.malleable_inflight;
    TopUpMalleable(job);
  }
  PackedTryStart(worker);
}

void SchedulerBase::EvictPackedRuns(WorkerState& worker) {
  if (worker.run_list.empty()) return;
  const sim::SimTime now = engine_.Now();
  std::vector<PackedRun> runs;
  runs.swap(worker.run_list);
  if (power_ != nullptr) {
    const double watts = power_->OnExecEnd(worker.id, now);
    if (watts >= 0) {
      Emit(EventType::kPowerState, obs::kNoId, worker.id, obs::kNoId, watts);
    }
  }
  for (const PackedRun& run : runs) {
    engine_.Cancel(run.pending_event);
    JobRuntime& job = jobs_[run.job];
    const double remaining = std::max(0.0, run.until - now);
    ReleasePackedCapacity(worker, job.demand, 1.0, job.id);
    total_busy_time_ -= remaining;
    packed_core_seconds_ -= remaining * job.demand[packing::PackDim::kCores];
    job.replay_tasks.push_back(run.task_index);
    Emit(EventType::kTaskKill, job.id, worker.id, run.task_index);
    // Malleable inflight is NOT decremented: the replay below re-covers the
    // task, so it stays "placed" for the width accounting.
    QueueEntry entry;
    entry.job = job.id;
    entry.est_duration = EstimatedTaskDuration(job);
    entry.short_class = job.short_class;
    if (UsesDistributedPlane(job) && !job.gang() && !job.malleable() &&
        !DagManaged(job)) {
      entry.kind = QueueEntry::Kind::kProbe;
    } else {
      // Gang/malleable/DAG replays re-bind (DAG: a probe could fetch an
      // unreleased task; the killed index just pushed is popped right back).
      entry.kind = QueueEntry::Kind::kBoundTask;
      entry.task_index = TakeNextTaskIndex(job);
    }
    RedispatchEntry(std::move(entry), one_way());
  }
  RefreshLongBusy(worker);
}

MachineId SchedulerBase::PickBestPacked(
    const std::vector<MachineId>& candidates, JobRuntime& job) {
  PHOENIX_CHECK(!candidates.empty());
  // Stage 1: best packing score among the sampled candidates with residual
  // room right now (lowest id ties, for determinism).
  MachineId best = cluster::kInvalidMachine;
  double best_score = packing::kNoFit;
  for (const MachineId c : candidates) {
    const WorkerState& w = workers_[c];
    if (w.failed || !Bindable(c)) continue;
    const double s =
        packing::PackScore(job.demand, w.residual, w.capacity, config_.packing);
    if (s == packing::kNoFit) continue;
    if (best == cluster::kInvalidMachine || s > best_score ||
        (s == best_score && c < best)) {
      best_score = s;
      best = c;
    }
  }
  if (best != cluster::kInvalidMachine) return best;
  // Stage 2: no residual room anywhere — queue on the least-loaded candidate
  // whose *total capacity* can eventually host the demand (a permanently
  // too-small machine would strand the task).
  double best_load = std::numeric_limits<double>::infinity();
  for (const MachineId c : candidates) {
    const WorkerState& w = workers_[c];
    if (w.failed || !Bindable(c)) continue;
    if (!job.demand.FitsIn(w.capacity)) continue;
    if (w.est_queued_work < best_load ||
        (w.est_queued_work == best_load && c < best)) {
      best_load = w.est_queued_work;
      best = c;
    }
  }
  if (best != cluster::kInvalidMachine) {
    ++counters_.pack_fit_rejections;
    return best;
  }
  // Stage 3: every sampled candidate is too small — deterministic fleet scan
  // for the least-loaded live machine large enough, constraint-satisfying
  // first, any machine second (the demand clamp guarantees one exists while
  // any large machine is up).
  for (int pass = 0; pass < 2; ++pass) {
    for (const WorkerState& w : workers_) {
      if (w.failed || !Bindable(w.id)) continue;
      if (!job.demand.FitsIn(w.capacity)) continue;
      if (pass == 0 && !cluster_.machine(w.id).Satisfies(job.effective)) {
        continue;
      }
      if (w.est_queued_work < best_load) {
        best_load = w.est_queued_work;
        best = w.id;
      }
    }
    if (best != cluster::kInvalidMachine) {
      ++counters_.pack_fit_rejections;
      return best;
    }
  }
  // Every large-enough machine is down: fall back like the dead-pool path
  // (the delivery bounce re-covers the entry once something repairs).
  ++counters_.placement_dead_fallbacks;
  const MachineId fallback = SampleEligible(job.effective);
  PHOENIX_CHECK(fallback != cluster::kInvalidMachine);
  return fallback;
}

double SchedulerBase::PackedSupplyScale() const {
  if (!packing_on_) return 1.0;
  double copies = 0;
  std::size_t live = 0;
  for (const WorkerState& w : workers_) {
    if (w.failed || !Bindable(w.id)) continue;
    ++live;
    copies += static_cast<double>(w.residual.CopiesOf(mean_demand_));
  }
  if (live == 0) return 1.0;
  // Floored: a saturated fleet still advertises a sliver of supply, so the
  // CRV ratios stay finite and comparable across heartbeats.
  return std::max(copies / static_cast<double>(live), 0.05);
}

// ---- Gang scheduling: atomic reserve -> commit / abort ---------------------

double SchedulerBase::ScheduleGangRetry(JobRuntime& job) {
  ++job.gang_retries;
  ++counters_.gang_retry_waits;
  const double backoff =
      std::min(config_.packing.gang_retry_backoff *
                   std::exp2(static_cast<double>(job.gang_retries - 1)),
               config_.packing.gang_retry_cap);
  engine_.ScheduleAfter(backoff, [this, id = job.id] { PlaceGang(id); });
  return backoff;
}

void SchedulerBase::PlaceGang(JobId id) {
  JobRuntime& job = jobs_[id];
  if (job.Done()) return;
  PHOENIX_CHECK_MSG(gangs_.count(id) == 0, "gang round already open");
  const std::uint32_t members =
      static_cast<std::uint32_t>(job.num_tasks()) - job.next_unplaced +
      static_cast<std::uint32_t>(job.replay_tasks.size());
  PHOENIX_CHECK(members > 0);
  // Liveness gate: if even an *empty* eligible fleet cannot host `members`
  // concurrent copies, no amount of backoff will ever place this gang —
  // degrade it to the normal (non-atomic) placement path instead of
  // retrying forever. Evaluated per attempt so a fleet shrunk by failures
  // degrades rather than stalls; the trade is availability over atomicity.
  std::uint64_t potential = 0;
  for (const WorkerState& w : workers_) {
    if (w.failed || !Bindable(w.id)) continue;
    if (!cluster_.machine(w.id).Satisfies(job.effective)) continue;
    potential += w.capacity.CopiesOf(job.demand);
    if (potential >= members) break;
  }
  if (potential < members) {
    ++counters_.gangs_degraded;
    if (UsesDistributedPlane(job)) {
      PlaceDistributed(job);
    } else {
      PlaceCentralized(job);
    }
    return;
  }
  // Reserve member-by-member, claiming as we go: each pick sees the residual
  // left by the previous members, so one machine hosts several members only
  // when its vector truly admits them. Deterministic fleet scan (no
  // sampling): gang placement is rare and all-or-nothing, so it pays for a
  // full view instead of perturbing the shared RNG stream.
  std::vector<MachineId> targets;
  targets.reserve(members);
  bool ok = true;
  for (std::uint32_t m = 0; m < members; ++m) {
    MachineId best = cluster::kInvalidMachine;
    double best_score = packing::kNoFit;
    for (const WorkerState& w : workers_) {
      if (w.failed || !Bindable(w.id)) continue;
      if (!cluster_.machine(w.id).Satisfies(job.effective)) continue;
      const double s = packing::PackScore(job.demand, w.residual, w.capacity,
                                          config_.packing);
      if (s == packing::kNoFit) continue;
      if (best == cluster::kInvalidMachine || s > best_score) {
        best_score = s;
        best = w.id;
      }
    }
    if (best == cluster::kInvalidMachine) {
      ok = false;
      break;
    }
    ClaimPackedCapacity(workers_[best], job.demand, 1.0, id);
    targets.push_back(best);
  }
  if (!ok) {
    // Not enough simultaneous capacity: release the partial claims and retry
    // after a capped exponential backoff. No kGangReserve was emitted, so no
    // abort event either (the auditor pairs aborts with open rounds).
    for (const MachineId t : targets) {
      ReleasePackedCapacity(workers_[t], job.demand, 1.0, id);
    }
    ScheduleGangRetry(job);
    return;
  }
  GangState& g = gangs_[id];
  g.expected = members;
  for (const MachineId t : targets) {
    bool merged = false;
    for (auto& r : g.reserved) {
      if (r.first == t) {
        ++r.second;
        merged = true;
        break;
      }
    }
    if (!merged) g.reserved.emplace_back(t, 1);
  }
  for (const auto& [wid, count] : g.reserved) {
    Emit(EventType::kGangReserve, id, wid, count, config_.packing.gang_hold);
  }
  // Bounded hold: if the round is still open when this fires (members lost
  // in a chaotic fabric), it is failed and aborts at closure. Close paths
  // cancel blindly (Cancel on a fired id is a no-op).
  g.hold_event =
      engine_.ScheduleAfter(config_.packing.gang_hold, [this, id] {
        auto it = gangs_.find(id);
        if (it == gangs_.end()) return;  // round already closed
        it->second.failed = true;
      });
  // Member entries transit the fabric like any bind; DeliverEntry diverts
  // them into the staging area while the round is open.
  for (const MachineId t : targets) {
    QueueEntry entry;
    entry.kind = QueueEntry::Kind::kBoundTask;
    entry.job = id;
    entry.task_index = TakeNextTaskIndex(job);
    entry.est_duration = EstimatedTaskDuration(job);
    entry.short_class = job.short_class;
    NoteRackCommitment(job, cluster_.rack_of(t));
    SendEntry(t, entry, one_way());
  }
}

void SchedulerBase::DeliverGangMember(MachineId target, QueueEntry entry) {
  auto it = gangs_.find(entry.job);
  PHOENIX_CHECK(it != gangs_.end());
  GangState& g = it->second;
  WorkerState& w = workers_[target];
  ++g.closed;
  if (w.failed || !Bindable(target)) {
    // The member's machine left the fleet mid-round (a failure sweep already
    // released its reservation; a drain keeps it until the abort). Reclaim
    // the index for the retry round and fail the gang.
    jobs_[entry.job].replay_tasks.push_back(entry.task_index);
    g.failed = true;
  } else {
    g.staged.emplace_back(target, entry);
  }
  CloseGangMember(entry.job);
}

void SchedulerBase::CloseGangMember(JobId id) {
  auto it = gangs_.find(id);
  PHOENIX_CHECK(it != gangs_.end());
  const GangState& g = it->second;
  if (g.closed < g.expected) return;
  if (g.failed) {
    AbortGang(id);
  } else {
    CommitGang(id);
  }
}

void SchedulerBase::CommitGang(JobId id) {
  auto node = gangs_.extract(id);
  GangState& g = node.mapped();
  engine_.Cancel(g.hold_event);
  JobRuntime& job = jobs_[id];
  const double wait = engine_.Now() - job.gang_arrival;
  gang_wait_sum_ += wait;
  ++counters_.gang_commits;
  Emit(EventType::kGangCommit, id, obs::kNoId, obs::kNoId, wait);
  // Atomic co-start: every member begins now, consuming the capacity its
  // reservation already claimed.
  for (auto& [wid, entry] : g.staged) {
    StartPackedRun(workers_[wid], job, entry.task_index, entry.service_penalty,
                   /*from_reserve=*/true);
  }
}

void SchedulerBase::AbortGang(JobId id) {
  auto node = gangs_.extract(id);
  GangState& g = node.mapped();
  engine_.Cancel(g.hold_event);
  JobRuntime& job = jobs_[id];
  // Release what is still reserved (machines lost mid-round were already
  // released by their eviction sweep and removed from the list) and reclaim
  // the staged members' indices for the retry round.
  for (const auto& [wid, count] : g.reserved) {
    ReleasePackedCapacity(workers_[wid], job.demand,
                          static_cast<double>(count), id);
  }
  for (const auto& [wid, entry] : g.staged) {
    job.replay_tasks.push_back(entry.task_index);
  }
  ++counters_.gang_aborts;
  const double backoff = ScheduleGangRetry(job);
  Emit(EventType::kGangAbort, id, obs::kNoId, obs::kNoId, backoff);
}

void SchedulerBase::EvictGangReservations(WorkerState& worker) {
  if (gangs_.empty()) return;
  for (auto& [id, g] : gangs_) {
    for (std::size_t i = 0; i < g.reserved.size(); ++i) {
      if (g.reserved[i].first != worker.id) continue;
      ReleasePackedCapacity(worker, jobs_[id].demand,
                            static_cast<double>(g.reserved[i].second), id);
      g.reserved.erase(g.reserved.begin() + static_cast<std::ptrdiff_t>(i));
      g.failed = true;
      break;
    }
    for (std::size_t i = g.staged.size(); i-- > 0;) {
      if (g.staged[i].first != worker.id) continue;
      // Already counted as closed when it staged; reclaim the index only.
      jobs_[id].replay_tasks.push_back(g.staged[i].second.task_index);
      g.staged.erase(g.staged.begin() + static_cast<std::ptrdiff_t>(i));
      g.failed = true;
    }
    // An open round always has closed < expected (full closure commits or
    // aborts synchronously), so the in-flight members' delivery or give-up
    // callbacks are guaranteed to close — and now abort — the round.
  }
}

// ---- Malleable jobs: width from the elastic supply signal ------------------

std::uint32_t SchedulerBase::PackedFreeCopies(const JobRuntime& job) const {
  std::uint64_t total = 0;
  for (const WorkerState& w : workers_) {
    if (w.failed || !Bindable(w.id)) continue;
    if (!cluster_.machine(w.id).Satisfies(job.effective)) continue;
    total += w.residual.CopiesOf(job.demand);
    if (total > std::numeric_limits<std::uint32_t>::max()) {
      return std::numeric_limits<std::uint32_t>::max();
    }
  }
  return static_cast<std::uint32_t>(total);
}

void SchedulerBase::PlaceMalleable(JobId id) {
  JobRuntime& job = jobs_[id];
  ++counters_.malleable_jobs;
  malleable_active_.push_back(id);
  const auto max_width = static_cast<std::uint32_t>(job.num_tasks());
  std::uint32_t width = PackedFreeCopies(job);
  if (width < job.min_parallel()) {
    width = job.min_parallel();
    ++counters_.malleable_min_hits;
  }
  width = std::min(width, max_width);
  job.malleable_width = width;
  Emit(EventType::kMalleableWidth, id, obs::kNoId, obs::kNoId, width);
  TopUpMalleable(job);
}

void SchedulerBase::TopUpMalleable(JobRuntime& job) {
  if (job.Done()) return;
  while (!job.AllPlaced() && job.malleable_inflight < job.malleable_width) {
    const std::uint32_t index = TakeNextTaskIndex(job);
    std::vector<MachineId> candidates = ChooseLongCandidates(job);
    PHOENIX_CHECK_MSG(!candidates.empty(),
                      "admission control must leave a satisfiable pool");
    FilterByPlacement(job, candidates);
    const MachineId best = PickBestPacked(candidates, job);
    NoteRackCommitment(job, cluster_.rack_of(best));
    QueueEntry entry;
    entry.kind = QueueEntry::Kind::kBoundTask;
    entry.job = job.id;
    entry.task_index = index;
    entry.est_duration = EstimatedTaskDuration(job);
    entry.short_class = job.short_class;
    SendEntry(best, entry, one_way());
    ++job.malleable_inflight;
  }
}

void SchedulerBase::RefreshMalleableWidths() {
  if (malleable_active_.empty()) return;
  std::size_t keep = 0;
  for (const JobId id : malleable_active_) {
    JobRuntime& job = jobs_[id];
    if (job.Done()) continue;  // drops out of the active list
    malleable_active_[keep++] = id;
    const auto max_width = static_cast<std::uint32_t>(job.num_tasks());
    // Expand into free supply; shrink passively when it evaporates (inflight
    // work is never killed — the top-up loop just stops issuing).
    std::uint32_t width = job.malleable_inflight + PackedFreeCopies(job);
    if (width < job.min_parallel()) {
      width = job.min_parallel();
      ++counters_.malleable_min_hits;
    }
    width = std::min(width, max_width);
    if (width == job.malleable_width) continue;
    if (width > job.malleable_width) {
      ++counters_.malleable_expands;
    } else {
      ++counters_.malleable_shrinks;
    }
    job.malleable_width = width;
    Emit(EventType::kMalleableWidth, id, obs::kNoId, obs::kNoId, width);
    TopUpMalleable(job);
  }
  malleable_active_.resize(keep);
}

// ---- DAG workflows and deadline scheduling (src/workflow) ------------------
//
// Everything below is unreachable when dag_on_ / deadline_on_ are false:
// dag_states_ stays empty, no deadline is ever tracked, and every dispatch
// path above remains byte-identical to the pre-workflow scheduler.

void SchedulerBase::PlaceDagJob(JobRuntime& job) {
  dag_states_[job.id] = workflow::BuildDagState(*job.spec);
  ++counters_.dag_jobs;
  const workflow::DagState& state = *dag_states_[job.id];
  std::vector<std::uint32_t> ready;
  for (std::uint32_t t = 0; t < job.num_tasks(); ++t) {
    if (state.indegree[t] == 0) ready.push_back(t);
  }
  DispatchReadyDagTasks(job, ready);
}

void SchedulerBase::DispatchReadyDagTasks(JobRuntime& job,
                                          std::vector<std::uint32_t>& ready) {
  PHOENIX_CHECK_MSG(!ready.empty(), "DAG job with no ready task");
  const workflow::DagState& state = *dag_states_[job.id];
  // Critical-path priority: the task with the longest remaining downstream
  // work dispatches first (ascending index on ties, for determinism).
  std::sort(ready.begin(), ready.end(),
            [&state](std::uint32_t a, std::uint32_t b) {
              if (state.downstream[a] != state.downstream[b]) {
                return state.downstream[a] > state.downstream[b];
              }
              return a < b;
            });
  for (const std::uint32_t t : ready) {
    Emit(EventType::kDagReady, job.id, obs::kNoId, t, state.downstream[t]);
    PlaceDagTask(job, t);
  }
}

void SchedulerBase::PlaceDagTask(JobRuntime& job, std::uint32_t task_index) {
  // The per-task body of PlaceCentralized with an explicit index. DAG tasks
  // always bind early, whatever the job's duration class: a late-binding
  // probe fetches the job's next task in index order, which could hand out
  // a task whose predecessors have not finished.
  workflow::DagState& state = *dag_states_[job.id];
  ++state.released;
  // next_unplaced doubles as the release counter so AllPlaced() keeps its
  // meaning (every task dispatched, no replay outstanding).
  ++job.next_unplaced;
  ++counters_.dag_tasks_released;
  Emit(EventType::kDagRelease, job.id, obs::kNoId, task_index);
  std::vector<MachineId> candidates = ChooseLongCandidates(job);
  PHOENIX_CHECK_MSG(!candidates.empty(),
                    "admission control must leave a satisfiable pool");
  FilterByPlacement(job, candidates);
  const MachineId best = packing_on_ ? PickBestPacked(candidates, job)
                                     : PickLeastLoadedLive(candidates, job);
  NoteRackCommitment(job, cluster_.rack_of(best));
  QueueEntry entry;
  entry.kind = QueueEntry::Kind::kBoundTask;
  entry.job = job.id;
  entry.task_index = task_index;
  entry.est_duration = EstimatedTaskDuration(job);
  entry.short_class = job.short_class;
  SendEntry(best, entry, one_way());
}

void SchedulerBase::ReleaseDagSuccessors(JobRuntime& job,
                                         std::uint32_t task_index) {
  workflow::DagState& state = *dag_states_[job.id];
  std::vector<std::uint32_t> ready;
  for (std::uint32_t e = state.succ_offsets[task_index];
       e < state.succ_offsets[task_index + 1]; ++e) {
    const std::uint32_t s = state.succ[e];
    PHOENIX_CHECK_MSG(state.indegree[s] > 0,
                      "DAG predecessor finished more times than its edges");
    if (--state.indegree[s] == 0) ready.push_back(s);
  }
  if (!ready.empty()) DispatchReadyDagTasks(job, ready);
}

void SchedulerBase::AssignDeadline(JobRuntime& job) {
  // SLA class: the trace's explicit tag (Google-trace priority bands) wins;
  // untagged jobs fall back to their post-admission tenancy class rank.
  job.sla_rank = job.spec->sla_class != trace::kNoSlaClass
                     ? job.spec->sla_class
                     : tenancy::PriorityRank(job.priority);
  PHOENIX_CHECK_MSG(job.sla_rank < 3, "SLA class rank out of range");
  const double cp = workflow::CriticalPathLength(*job.spec);
  job.deadline = job.spec->submit_time +
                 config_.workflow.deadline_multiplier[job.sla_rank] * cp;
  job.deadline_tracked = true;
  ++counters_.deadline_jobs;
}

void SchedulerBase::ScoreDeadline(JobRuntime& job) {
  if (!job.deadline_tracked) return;
  ++class_deadline_jobs_[job.sla_rank];
  if (job.completion <= job.deadline + 1e-9) {
    ++class_deadline_attained_[job.sla_rank];
  } else {
    ++counters_.deadline_misses;
    Emit(EventType::kDeadlineMiss, job.id, obs::kNoId, obs::kNoId,
         job.completion - job.deadline);
  }
}

std::size_t SchedulerBase::PromoteByDeadline(const WorkerState& worker,
                                             std::size_t chosen) {
  const QueueEntry& pick = worker.queue[chosen];
  // Never override the starvation guard's selection.
  if (pick.bypass_count >= config_.slack_threshold) return chosen;
  const auto deadline_of = [this](const QueueEntry& e) {
    const JobRuntime& j = jobs_[e.job];
    return j.deadline_tracked ? j.deadline
                              : std::numeric_limits<double>::infinity();
  };
  double best_deadline = deadline_of(pick);
  std::size_t best = chosen;
  for (std::size_t i = 0; i < worker.queue.size(); ++i) {
    if (i == chosen) continue;
    const double d = deadline_of(worker.queue[i]);
    if (d < best_deadline) {  // first strictly-earlier deadline wins
      best_deadline = d;
      best = i;
    }
  }
  return best;
}

metrics::SimReport SchedulerBase::BuildReport() const {
  PHOENIX_CHECK_MSG(jobs_done_ == jobs_.size(),
                    "BuildReport called before every job completed");
  metrics::SimReport report;
  report.scheduler_name = name();
  report.trace_name = trace_name_;
  report.num_workers = workers_.size();
  report.counters = counters_;
  report.counters.net_messages_sent = fabric_.stats().sent;
  report.counters.net_messages_dropped =
      fabric_.stats().dropped + fabric_.stats().partition_drops;
  report.counters.net_messages_duplicated = fabric_.stats().duplicated;
  report.counters.net_messages_expired = fabric_.stats().expired;
  report.counters.rpc_retries = rpc_.stats().retries;
  report.counters.rpc_failures = rpc_.stats().failures;
  if (federation_ != nullptr) {
    const federation::FederationPlane::Stats& fs = federation_->stats();
    report.counters.fed_gossip_published = fs.digests_published;
    report.counters.fed_gossip_applied = fs.digests_applied;
    report.counters.fed_gossip_stale_dropped = fs.digests_stale_dropped;
    report.counters.fed_offloads_blocked_stale = fs.offloads_blocked_stale;
  }
  report.total_busy_time = total_busy_time_;
  report.makespan = makespan_;
  if (membership_ != nullptr) {
    // Close the in-service integral at the horizon without mutating state
    // (BuildReport is const and may be called more than once).
    const double horizon = std::max<double>(makespan_, last_membership_change_);
    report.active_machine_seconds =
        in_service_seconds_ + static_cast<double>(in_service_count_) *
                                  (horizon - last_membership_change_);
  }
  if (power_ != nullptr) {
    const double horizon = std::max<double>(makespan_, last_membership_change_);
    report.power_enabled = true;
    report.total_joules = power_->TotalJoules(horizon);
    std::uint64_t tasks_completed = 0;
    double response_sum = 0;
    for (const JobRuntime& job : jobs_) {
      tasks_completed += job.completed;
      response_sum += job.completion - job.spec->submit_time;
    }
    report.energy_per_task =
        tasks_completed > 0
            ? report.total_joules / static_cast<double>(tasks_completed)
            : 0;
    const double mean_response =
        jobs_.empty() ? 0 : response_sum / static_cast<double>(jobs_.size());
    report.energy_delay_product = report.total_joules * mean_response;
    report.sleep_machine_seconds = power_->SleepMachineSeconds(horizon);
    report.class_exec_joules = class_exec_joules_;
    report.class_tasks = class_tasks_;
  }
  if (packing_on_) {
    report.packing_enabled = true;
    const double core_capacity =
        fleet_capacity_[packing::PackDim::kCores] * makespan_;
    report.packing_efficiency =
        core_capacity > 0 ? packed_core_seconds_ / core_capacity : 0;
    report.fragmentation_time_avg =
        frag_samples_ > 0 ? frag_sum_ / static_cast<double>(frag_samples_) : 0;
    report.gang_wait_mean =
        counters_.gang_commits > 0
            ? gang_wait_sum_ / static_cast<double>(counters_.gang_commits)
            : 0;
  }
  report.dag_enabled = dag_on_;
  if (deadline_on_) {
    report.deadline_enabled = true;
    report.class_deadline_jobs = class_deadline_jobs_;
    report.class_deadline_attained = class_deadline_attained_;
  }
  report.jobs.reserve(jobs_.size());
  for (const JobRuntime& job : jobs_) {
    metrics::JobOutcome out;
    out.id = job.id;
    out.submit = job.spec->submit_time;
    out.completion = job.completion;
    out.num_tasks = job.num_tasks();
    out.queuing_delay =
        job.sum_task_wait /
        static_cast<double>(std::max<std::uint32_t>(job.task_starts, 1));
    out.max_task_wait = job.max_task_wait;
    out.short_class = job.short_class;
    out.constrained = job.constrained;
    out.placement = job.placement();
    out.racks_used = job.used_racks.Count();
    out.tenant = job.tenant;
    out.priority = tenancy::PriorityRank(job.priority);
    report.jobs.push_back(out);
  }
  if (tenants_.enabled()) {
    std::vector<std::vector<double>> waits(tenants_.size());
    for (const JobRuntime& job : jobs_) {
      if (!tenants_.Known(job.tenant)) continue;
      waits[job.tenant].push_back(
          job.sum_task_wait /
          static_cast<double>(std::max<std::uint32_t>(job.task_starts, 1)));
    }
    report.tenants.reserve(tenants_.size());
    for (std::size_t t = 0; t < tenants_.size(); ++t) {
      const auto id = static_cast<tenancy::TenantId>(t);
      const tenancy::TenantSpec& spec = tenants_.spec(id);
      const tenancy::TenantState& state = tenants_.state(id);
      metrics::TenantOutcome out;
      out.id = id;
      out.name = spec.name;
      out.priority = tenancy::PriorityRank(spec.priority);
      out.quota_share = spec.quota_share;
      out.slo_target = spec.slo_target;
      out.jobs = state.jobs;
      out.admits = state.admits;
      out.downgrades = state.downgrades;
      out.rejects = state.rejects;
      out.slo_jobs = state.slo_jobs;
      out.slo_attained = state.slo_attained;
      out.slo_at_risk = state.slo_at_risk;
      out.preemptions_issued = state.preemptions_issued;
      out.preemptions_suffered = state.preemptions_suffered;
      out.usage_seconds = state.usage_seconds;
      out.peak_quota_fraction = state.peak_quota_fraction;
      std::vector<double>& w = waits[t];
      if (!w.empty()) {
        double sum = 0;
        for (const double v : w) sum += v;
        out.mean_queuing = sum / static_cast<double>(w.size());
        out.p90_queuing = metrics::Percentile(w, 90);
      }
      report.tenants.push_back(std::move(out));
    }
    report.tenant_fairness_jain = metrics::TenantUsageJain(report);
  }
  report.CheckInvariants();
  return report;
}

}  // namespace phoenix::sched
