#include "sched/hawk.h"

#include <cmath>

namespace phoenix::sched {

HawkScheduler::HawkScheduler(sim::Engine& engine,
                             const cluster::Cluster& cluster,
                             const SchedulerConfig& config)
    : SchedulerBase(engine, cluster, config) {
  short_partition_end_ = static_cast<cluster::MachineId>(
      std::llround(config.hawk_short_partition *
                   static_cast<double>(cluster.size())));
}

std::vector<cluster::MachineId> HawkScheduler::ChooseLongCandidates(
    const JobRuntime& job) {
  // Sample generously, drop candidates inside the short-only partition, and
  // fall back to the unfiltered pool if the whole sample was reserved (a
  // heavily constrained job whose pool lies inside the partition must still
  // run somewhere).
  std::vector<cluster::MachineId> sample =
      SampleDistinctEligible(job.effective, 2 * config().power_of_d);
  std::vector<cluster::MachineId> filtered;
  filtered.reserve(sample.size());
  for (const auto id : sample) {
    if (id >= short_partition_end_) filtered.push_back(id);
  }
  if (filtered.empty()) return sample;
  if (filtered.size() > config().power_of_d) {
    filtered.resize(config().power_of_d);
  }
  return filtered;
}

void HawkScheduler::OnWorkerIdle(WorkerState& worker) {
  // The stolen entry transits the fabric victim→thief (see TryStealFor), so
  // under chaos a steal can be delayed, duplicated, or lost; a lost
  // transfer times out at the Rpc layer and bounces back to redispatch.
  TryStealFor(worker);
}

void HawkScheduler::OnHeartbeat(cluster::MachineId lo,
                                cluster::MachineId hi) {
  for (cluster::MachineId i = lo; i < hi; ++i) {
    WorkerState& w = worker(i);
    if (!w.busy && w.queue.empty()) TryStealFor(w);
  }
}

}  // namespace phoenix::sched
