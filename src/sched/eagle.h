// Eagle-C: job-aware hybrid scheduling (Delgado et al., SoCC'16) extended
// with constraint-aware sampling — the paper's primary baseline and the
// scheduler Phoenix is built on.
//
// Adds to Hawk (Table I):
//   * Succinct State Sharing: distributed schedulers learn (via bit
//     vectors) which workers hold long work and avoid probing them, so
//     short tasks dodge head-of-line blocking behind long tasks;
//   * SRPT queue reordering with a starvation (slack) bound;
//   * Sticky Batch Probing: a worker that finishes a task of a job with
//     unplaced tasks fetches the next task of the same job directly.
#pragma once

#include "sched/hawk.h"

namespace phoenix::sched {

class EagleScheduler : public HawkScheduler {
 public:
  using HawkScheduler::HawkScheduler;

  std::string name() const override { return "eagle-c"; }

 protected:
  /// SSS: prefer probe targets without queued or running long work.
  std::vector<cluster::MachineId> ChooseProbeTargets(
      const JobRuntime& job) override;

  /// SRPT with the slack bound.
  std::size_t SelectNextIndex(const WorkerState& worker) override;

  bool UseStickyBatchProbing(const JobRuntime& job) const override;

  // The SSS bit itself is SchedulerBase::LongBusy(id) — a dense flag the
  // base maintains so the rejection loop below stays cache-resident.

  /// Shortest-remaining-estimate index ignoring slack (helper for Phoenix).
  std::size_t SrptIndex(const WorkerState& worker) const;
};

}  // namespace phoenix::sched
