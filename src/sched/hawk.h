// Hawk-C: hybrid scheduling (Delgado et al., USENIX ATC'15) extended with
// constraint-aware sampling, as the paper's "Hawk-C" comparator.
//
// Design axes (Table I): hybrid control plane (centralized long jobs,
// distributed short jobs), late binding, worker-side FIFO queues, NO
// reordering, random work stealing by idle workers, and a small cluster
// partition reserved for short jobs so long tasks cannot occupy every
// worker.
#pragma once

#include "sched/base.h"

namespace phoenix::sched {

class HawkScheduler : public SchedulerBase {
 public:
  HawkScheduler(sim::Engine& engine, const cluster::Cluster& cluster,
                const SchedulerConfig& config);

  std::string name() const override { return "hawk-c"; }

 protected:
  /// Long placement avoids the short-reserved partition when possible.
  std::vector<cluster::MachineId> ChooseLongCandidates(
      const JobRuntime& job) override;

  /// Idle workers steal queued short probes from random victims.
  void OnWorkerIdle(WorkerState& worker) override;

  /// Idle workers whose steal attempt failed retry each heartbeat, so a
  /// burst landing after a worker went idle still gets pulled over.
  void OnHeartbeat(cluster::MachineId lo, cluster::MachineId hi) override;

  /// Machines with id < this are reserved for short work.
  cluster::MachineId short_partition_end() const {
    return short_partition_end_;
  }

 private:
  cluster::MachineId short_partition_end_;
};

}  // namespace phoenix::sched
