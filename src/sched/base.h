// Scheduler framework base class.
//
// Implements the machinery every scheduler in the paper shares:
//   * job arrival + short/long classification (estimated mean task duration
//     against the trace cutoff),
//   * the distributed plane: constraint-aware probe placement with late
//     binding (a probe reaching a worker's slot fetches the job's next
//     unplaced task over one RTT, or resolves to a no-op),
//   * the centralized plane: power-of-d least-loaded early binding,
//   * the single-slot worker loop with pluggable queue discipline,
//   * per-worker P-K wait estimators and the heartbeat tick,
//   * control-plane message delivery through a net::NetworkFabric + Rpc
//     pair (latency models, chaos injection, timeout/retry), owned here so
//     every scheduler shares one transit-time model,
//   * outcome accounting into a metrics::SimReport.
//
// Subclasses (Sparrow, Hawk, Eagle, Yacc-D, Phoenix) override the protected
// hooks; see each header for which design axis of Table I it changes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include <array>
#include <map>
#include <utility>

#include "cluster/cluster.h"
#include "cluster/membership.h"
#include "federation/plane.h"
#include "metrics/report.h"
#include "net/fabric.h"
#include "net/rpc.h"
#include "obs/event.h"
#include "packing/vector.h"
#include "sched/types.h"
#include "sim/engine.h"
#include "tenancy/preemption.h"
#include "tenancy/tenant.h"
#include "trace/trace.h"
#include "util/arena.h"
#include "util/rng.h"
#include "workflow/dag.h"

namespace phoenix::obs {
class InvariantAuditor;
}  // namespace phoenix::obs

namespace phoenix::power {
class PowerManager;
}  // namespace phoenix::power

namespace phoenix::sched {

class SchedulerBase {
 public:
  SchedulerBase(sim::Engine& engine, const cluster::Cluster& cluster,
                const SchedulerConfig& config);
  virtual ~SchedulerBase() = default;

  SchedulerBase(const SchedulerBase&) = delete;
  SchedulerBase& operator=(const SchedulerBase&) = delete;

  /// Human-readable scheduler name ("phoenix", "eagle-c", ...).
  virtual std::string name() const = 0;

  /// Registers every job arrival of `trace` with the engine and starts the
  /// heartbeat. Call once, before engine.Run().
  void SubmitTrace(const trace::Trace& trace);

  /// Builds the report. Call after engine.Run() has drained. Aborts if any
  /// job is incomplete (task-conservation invariant).
  metrics::SimReport BuildReport() const;

  const SchedulerConfig& config() const { return config_; }
  const cluster::Cluster& cluster() const { return cluster_; }

  /// True when every submitted job has completed.
  bool AllJobsDone() const { return jobs_done_ == jobs_.size(); }

  /// Per-tenant accounting of the run (empty registry when the config
  /// declared no tenants).
  const tenancy::TenantRegistry& tenants() const { return tenants_; }

  // ---- Sharded control plane ---------------------------------------------

  /// Partitions the control plane into cfg.shards territories over this
  /// scheduler's fabric. Call before SubmitTrace. With cfg.shards <= 1 this
  /// is a no-op and every path stays byte-identical to the unsharded
  /// scheduler; otherwise each shard heartbeats only its own territory and
  /// peers exchange gossiped digests (see federation/plane.h).
  void EnableFederation(const federation::FederationConfig& cfg);
  federation::FederationPlane* federation() { return federation_.get(); }
  const federation::FederationPlane* federation() const {
    return federation_.get();
  }

  // ---- Elastic membership ------------------------------------------------

  /// Attaches a membership view over this scheduler's cluster. Call before
  /// SubmitTrace (and keep the view alive for the run). With a view
  /// attached, every sampling/eligibility path restricts itself to active
  /// machines; without one, behaviour is byte-identical to the static
  /// fleet. Phoenix overrides to forward the view to its CRV monitor and
  /// admission controller.
  virtual void SetMembership(cluster::MembershipView* membership);
  const cluster::MembershipView* membership() const { return membership_; }

  /// Read access for the elasticity controller's policies (load signals,
  /// wasted-warm-up detection). The full fleet is the machine universe.
  const WorkerState& worker_state(cluster::MachineId id) const {
    return workers_[id];
  }
  std::size_t num_machines() const { return workers_.size(); }

  // Lifecycle actuators, driven by the elasticity controller. All require
  // an attached membership view and emit the corresponding obs events.

  /// parked/retired -> provisioning. The caller owns the warm-up timer that
  /// later calls CommissionMachine; `warmup_delay` is recorded for the
  /// warm-up accounting and the event payload.
  void ProvisionMachine(cluster::MachineId id, double warmup_delay);

  /// provisioning -> active: the machine joins the bindable fleet with
  /// fresh load signals and immediately looks for work.
  void CommissionMachine(cluster::MachineId id);

  enum class DrainReason : std::uint8_t { kScaleDown, kReclamation };

  /// active -> draining: cancels any slot-holding fetch (it would bind new
  /// work here), bounces queued probes elsewhere, and keeps queued bound
  /// tasks, which may still start and finish during the grace period.
  void DrainMachine(cluster::MachineId id,
                    DrainReason reason = DrainReason::kScaleDown);

  /// draining -> retired. Graceful (`force` false) succeeds only on an idle
  /// machine with an empty queue (returns false otherwise); forced evicts
  /// the running task and queue, redispatching everything elsewhere.
  bool RetireMachine(cluster::MachineId id, bool force);

  // ---- Power management ---------------------------------------------------

  /// Attaches the power manager (requires a membership view: parked is a
  /// lifecycle state). Call after SetMembership and before SubmitTrace.
  /// With no manager attached every power branch is unreachable and the
  /// run is byte-identical to a build without src/power. Phoenix overrides
  /// to enable wake-discounted parked supply in its CRV monitor.
  virtual void SetPower(power::PowerManager* power);
  power::PowerManager* power() { return power_; }
  const power::PowerManager* power() const { return power_; }

  /// active/draining -> parked deep sleep. Refuses (returns false) when the
  /// machine holds any work (busy slot or non-empty queue), is failed, or
  /// is not active/draining — so the park policy and the elastic
  /// park-instead-of-retire path share one safety check. The parked
  /// worker's estimator advertises the wake-cost penalty as its E[W].
  bool ParkMachine(cluster::MachineId id);

  /// DVFS actuation: retune `id` to P-state `p`. Returns false if the
  /// machine was already there. Emits kPowerDvfs + kPowerState.
  bool SetMachinePState(cluster::MachineId id, unsigned p);

  /// parked -> provisioning with the machine's S3 wake latency, plus a
  /// timer that commissions it when the wake completes (unless something
  /// else moved the machine meanwhile). The one wake path shared by the
  /// power controller, the elastic lease top-up, and the dispatch-time
  /// demand fallback below.
  void WakeParkedMachine(cluster::MachineId id);

  /// Demand-driven wake: called when a placement finds no bindable machine
  /// satisfying `cs`. Returns a satisfying machine that is already waking
  /// (provisioning), or wakes the lowest-id parked satisfier and returns
  /// it — deliveries bounce until the wake completes, so nothing ever
  /// binds to a sleeping machine. Returns kInvalidMachine when no power
  /// manager is attached or no parked satisfier exists (the pre-power
  /// contract: such pools cannot empty).
  cluster::MachineId WakeSatisfierFallback(const cluster::ConstraintSet& cs);

  // ---- Observability -----------------------------------------------------

  /// Attaches an event sink. Call before SubmitTrace. The scheduler does
  /// not own the sink; it must outlive the run. With no sinks attached the
  /// emit path is a single empty() branch.
  void AttachSink(obs::EventSink* sink);

  /// Attaches the auditor both as an event sink and for the structural
  /// worker checks run at every heartbeat and by FinalAudit().
  void AttachAuditor(obs::InvariantAuditor* auditor);

  /// End-of-run structural audit + the auditor's conservation checks.
  /// Call after engine.Run() drains (no-op without an attached auditor).
  void FinalAudit();

  // ---- Deterministic fault injection -------------------------------------

  /// Fails machine `id` immediately (same path as stochastic injection:
  /// kills the running task or in-flight slot event, drains the queue).
  /// Unlike stochastic failures no automatic repair is scheduled — pair
  /// with InjectRepair. No-op if the machine is already down.
  void InjectFailure(cluster::MachineId id);

  /// Repairs machine `id` immediately. No-op if the machine is up.
  void InjectRepair(cluster::MachineId id);

 protected:
  // ---- Hooks -------------------------------------------------------------

  /// Called when a job arrives, before placement. Default: no-op.
  /// Phoenix overrides this for proactive admission control.
  virtual void AdmitJob(JobRuntime& job);

  /// True if the scheduler routes this job through the distributed
  /// (probe-based) plane. Default: short jobs. Sparrow: everything.
  virtual bool UsesDistributedPlane(const JobRuntime& job) const;

  /// Distributed-plane placement: choose the workers to probe for `job`
  /// (default: probe_ratio * tasks samples, uniform over the satisfying
  /// pool). Eagle filters long-occupied workers (SSS); Phoenix prefers low
  /// estimated wait.
  virtual std::vector<cluster::MachineId> ChooseProbeTargets(
      const JobRuntime& job);

  /// Centralized-plane candidate pool for one long task (default:
  /// power-of-d sample of the satisfying pool; Hawk excludes its short-only
  /// partition).
  virtual std::vector<cluster::MachineId> ChooseLongCandidates(
      const JobRuntime& job);

  /// Queue discipline: index of the entry to run next. Default 0 (FIFO).
  /// The framework charges a bypass to every entry in front of the
  /// selection. Implementations must respect the slack threshold themselves
  /// (helper: IndexRespectingSlack).
  virtual std::size_t SelectNextIndex(const WorkerState& worker);

  /// Called when a worker goes idle with an empty queue. Hawk/Eagle steal
  /// here. Default: no-op.
  virtual void OnWorkerIdle(WorkerState& worker);

  /// Heartbeat tick (every config.heartbeat_interval) over the worker range
  /// [lo, hi) — the whole fleet unsharded, one shard's territory under
  /// federation (nothing on a shard's tick may loop over the full fleet).
  /// Default: no-op. Phoenix refreshes the CRV table and wait estimates.
  virtual void OnHeartbeat(cluster::MachineId lo, cluster::MachineId hi);

  /// Sticky batch probing: after finishing a task of a job with unplaced
  /// tasks, fetch the next task of the same job directly (Eagle). Default
  /// off. Phoenix disables it during CRV-congested periods.
  virtual bool UseStickyBatchProbing(const JobRuntime& job) const;

  /// Entry admitted into a worker queue (after transit). Phoenix maintains
  /// CRV demand counters here. Default: no-op.
  virtual void OnEntryEnqueued(const WorkerState& worker,
                               const QueueEntry& entry);
  /// Entry removed from a worker queue (selected, stolen or migrated).
  virtual void OnEntryDequeued(const WorkerState& worker,
                               const QueueEntry& entry);

  // ---- Machinery available to subclasses ---------------------------------

  /// Applies slack: if any entry has been bypassed slack_threshold times,
  /// the oldest such entry must run next; otherwise returns `preferred`.
  std::size_t IndexRespectingSlack(const WorkerState& worker,
                                   std::size_t preferred) const;

  /// Sends `entry` toward worker `target` over the fabric with nominal
  /// transit `delay` seconds (`from` is the sending endpoint — the
  /// controller for placements, a worker for steals/migrations). Delivery
  /// is reliable: timeouts retry, and exhausted retries re-dispatch the
  /// entry elsewhere, so chaos injection cannot strand work.
  void SendEntry(cluster::MachineId target, QueueEntry entry, double delay,
                 cluster::MachineId from = net::kControllerNode);

  /// Removes queue[index] from `worker`, charging bypasses to entries in
  /// front of it (use for execution pops). Returns the entry.
  QueueEntry PopQueueAt(WorkerState& worker, std::size_t index);

  /// Removes queue[index] without charging bypasses (use for migrations and
  /// steals — the entries in front are not being overtaken by execution).
  QueueEntry RemoveQueueAt(WorkerState& worker, std::size_t index);

  /// If the worker is free, picks the next entry and runs it.
  void TryStartNext(WorkerState& worker);

  /// Attempts one Hawk-style steal for an idle worker: contacts
  /// steal_candidates random workers and moves over the first short probe
  /// this worker satisfies. Returns true if a steal is in flight.
  bool TryStealFor(WorkerState& worker);

  /// Applies the job's rack placement preference to a candidate list:
  /// spread drops racks the job already uses, colocate keeps the anchor
  /// rack — each only if at least one candidate survives (preferences are
  /// soft; an empty filter falls back to the unfiltered list).
  void FilterByPlacement(const JobRuntime& job,
                         std::vector<cluster::MachineId>& candidates) const;

  /// Records that a task of `job` was committed to `rack`, charging
  /// spread-violation / colocate-miss counters as appropriate.
  void NoteRackCommitment(JobRuntime& job, cluster::RackId rack);

  /// Next task index to hand out: failure replays first, then fresh tasks.
  std::uint32_t TakeNextTaskIndex(JobRuntime& job);

  /// Drops the job's scarcest-pool soft constraint (the same victim rule as
  /// the forced-relaxation loop), charging the duration penalty and the
  /// relaxation counters. Returns false when no soft constraint remains.
  /// Used by the forced-relaxation loop and by tenant admission decisions
  /// that trade a constraint for admission.
  bool RelaxOneSoftConstraint(JobRuntime& job);

  // ---- Membership-aware eligibility --------------------------------------
  //
  // Every sampling/counting path the schedulers use goes through these.
  // Without a membership view they delegate straight to the cluster —
  // the exact pre-elastic code path, so static-fleet runs stay
  // byte-identical. With a view they operate on the eligible (active)
  // sub-pool, which is how "no new bindings to draining machines" and
  // "probe/steal target sets track membership" are enforced in one place.

  /// New work may be bound to `id` (active, or no view attached).
  bool Bindable(cluster::MachineId id) const {
    return membership_ == nullptr || membership_->Bindable(id);
  }
  /// Machines currently eligible for new bindings under `cs`.
  const util::Bitset& EligiblePool(const cluster::ConstraintSet& cs) const {
    return membership_ == nullptr ? cluster_.Satisfying(cs)
                                  : membership_->EligiblePool(cs);
  }
  /// Pool size admission control must validate against. Under elasticity
  /// this is the guaranteed base fleet (which never drains), so an admitted
  /// job can never be stranded by later membership churn.
  std::size_t CountAdmissible(const cluster::ConstraintSet& cs) const {
    return membership_ == nullptr ? cluster_.CountSatisfying(cs)
                                  : membership_->CountAdmissible(cs);
  }
  std::size_t CountAdmissible(const cluster::Constraint& c) const {
    return membership_ == nullptr ? cluster_.Satisfying(c).Count()
                                  : membership_->CountAdmissible(c);
  }
  cluster::MachineId SampleEligible(const cluster::ConstraintSet& cs) {
    const cluster::MachineId m =
        membership_ == nullptr ? cluster_.SampleSatisfying(cs, rng_)
                               : membership_->SampleEligible(cs, rng_);
    return m != cluster::kInvalidMachine ? m : WakeSatisfierFallback(cs);
  }
  std::vector<cluster::MachineId> SampleEligible(
      const cluster::ConstraintSet& cs, std::size_t k) {
    std::vector<cluster::MachineId> v =
        membership_ == nullptr ? cluster_.SampleSatisfying(cs, k, rng_)
                               : membership_->SampleEligible(cs, k, rng_);
    if (v.empty() && k > 0) {
      const cluster::MachineId m = WakeSatisfierFallback(cs);
      if (m != cluster::kInvalidMachine) v.push_back(m);
    }
    return v;
  }
  std::vector<cluster::MachineId> SampleDistinctEligible(
      const cluster::ConstraintSet& cs, std::size_t k) {
    std::vector<cluster::MachineId> v =
        membership_ == nullptr
            ? cluster_.SampleDistinctSatisfying(cs, k, rng_)
            : membership_->SampleDistinctEligible(cs, k, rng_);
    if (v.empty() && k > 0) {
      const cluster::MachineId m = WakeSatisfierFallback(cs);
      if (m != cluster::kInvalidMachine) v.push_back(m);
    }
    return v;
  }

  JobRuntime& runtime(trace::JobId id) { return jobs_[id]; }
  const JobRuntime& runtime(trace::JobId id) const { return jobs_[id]; }
  WorkerState& worker(cluster::MachineId id) { return workers_[id]; }
  std::size_t num_workers() const { return workers_.size(); }
  std::size_t num_jobs() const { return jobs_.size(); }

  /// Worker holds long work, queued or executing — Eagle's SSS bit. Served
  /// from a dense byte array so rejection-sampling probe loops touch one
  /// byte per candidate instead of the worker record plus the job table.
  bool LongBusy(cluster::MachineId id) const { return long_busy_[id] != 0; }

  sim::Engine& engine() { return engine_; }
  /// The control-plane message fabric (chaos injection, partition control).
  net::NetworkFabric& fabric() { return fabric_; }
  net::Rpc& rpc() { return rpc_; }
  /// Nominal one-way control-plane transit time — the fabric-owned
  /// parameter every scheduler shares (no per-scheduler delay constants).
  double one_way() const { return config_.net.one_way; }
  util::Rng& rng() { return rng_; }
  metrics::SchedulerCounters& counters() { return counters_; }
  const metrics::SchedulerCounters& counters_view() const { return counters_; }

  /// Estimated one-task duration the scheduler knows for a job.
  double EstimatedTaskDuration(const JobRuntime& job) const {
    return job.spec->mean_task_duration();
  }

  /// True when at least one event sink is attached (tracing enabled).
  bool tracing() const { return !sinks_.empty(); }

  // ---- Packing (all unreachable when packing_on_ is false) ----------------

  /// Multi-resource packing is enabled for this run.
  bool packing_on() const { return packing_on_; }

  /// Fleet residual-capacity fraction in cores, weighted by the per-machine
  /// effective-server counts — Phoenix scales its CRV supply by this so the
  /// table prices "how many more tasks the fleet can absorb", not "how many
  /// machines exist". 1.0 when packing is off (no supply rescale).
  double PackedSupplyScale() const;

  /// Emits an event to the attached sinks. The no-sink case is a single
  /// branch, so instrumented code paths cost nothing in normal runs.
  void Emit(obs::EventType type, std::uint32_t job = obs::kNoId,
            std::uint32_t machine = obs::kNoId,
            std::uint32_t task = obs::kNoId, double value = 0) {
    if (sinks_.empty()) return;
    EmitToSinks(type, job, machine, task, value);
  }

 private:
  void EmitToSinks(obs::EventType type, std::uint32_t job,
                   std::uint32_t machine, std::uint32_t task, double value);
  /// Structural worker invariants -> auditor over workers [lo, hi)
  /// (a shard's territory at its heartbeat, the fleet at end of run).
  void AuditWorkers(bool final_state, cluster::MachineId lo,
                    cluster::MachineId hi);

  void HandleJobArrival(trace::JobId id);
  // Failure injection.
  void ScheduleNextFailure(cluster::MachineId id);
  /// `auto_repair` schedules the stochastic mttr repair (off for
  /// InjectFailure, whose caller controls repair timing).
  void FailMachine(WorkerState& worker, bool auto_repair);
  void RepairMachine(WorkerState& worker);
  /// Evicts whatever holds the worker's slot and re-covers its work: a
  /// running task is killed and replayed (only when `kill_running`,
  /// otherwise left to finish), a resolving probe is bounced, a sticky
  /// fetch's job is re-covered. Shared by the failure and forced-retire
  /// paths; a drain uses it with kill_running=false to free a fetch-held
  /// slot without interrupting execution.
  void EvictSlotWork(WorkerState& worker, bool kill_running);
  /// Closes the in-service machine-seconds integral at the current time
  /// (call before in_service_count_ changes).
  void AccrueInService();
  /// Re-dispatches an entry that lost its worker: probes are re-sent to a
  /// fresh satisfying target, bound tasks are re-bound least-loaded.
  /// `delay` is the transit time (bounces off still-failed destinations use
  /// a backoff so a fully-failed pool cannot spin the event loop).
  void RedispatchEntry(QueueEntry entry, double delay);
  /// An entry that will never reach its target (destination failed in
  /// transit, or every delivery attempt timed out): balances the probe
  /// accounting (stale probes dissolve) and re-dispatches live work after
  /// `delay`. Shared by the transit-bounce, rpc-give-up, and machine-failure
  /// drain paths.
  void BounceUndelivered(QueueEntry entry, cluster::MachineId target,
                         double delay);
  /// Fabric delivery of an entry at `target` (the receiving half of
  /// SendEntry, also reached by duplicated copies exactly once).
  void DeliverEntry(cluster::MachineId target, QueueEntry entry);
  /// SendEntry exhausted its delivery attempts toward `target`.
  void GiveUpEntry(cluster::MachineId target, QueueEntry entry);
  /// A slot-holding fetch RPC exhausted its retries: release the slot and
  /// re-cover the held probe / fetched job.
  void AbortProbeResolution(cluster::MachineId wid, QueueEntry entry);
  void AbortStickyFetch(cluster::MachineId wid, trace::JobId jid);
  /// Cancels whatever holds the worker's slot: the fetch call if one is
  /// live, else the pending engine event (task completion).
  void CancelSlotEvent(WorkerState& worker);
  /// Recomputes the worker's dense LongBusy flag. Called at every site
  /// mutating long_entries or the running-task identity; the recompute
  /// keeps one definition of "holds long work" instead of incremental
  /// updates that could drift from it.
  void RefreshLongBusy(const WorkerState& worker);

  void PlaceDistributed(JobRuntime& job);
  void PlaceCentralized(JobRuntime& job);
  /// Least-loaded live machine among `candidates`, falling back to a fresh
  /// draw from the job's satisfying pool when every candidate is down (the
  /// delivery bounce re-dispatches if that draw is down too). Shared by
  /// the centralized placement and failure re-binding paths.
  cluster::MachineId PickLeastLoadedLive(
      const std::vector<cluster::MachineId>& candidates, JobRuntime& job);
  void ResolveProbe(WorkerState& worker, QueueEntry entry);
  void StartService(WorkerState& worker, JobRuntime& job,
                    std::uint32_t task_index, double service_penalty = 0);
  void FinishService(WorkerState& worker);
  /// One heartbeat of `shard`'s territory (shard 0 covers the whole fleet
  /// when federation is off); each shard runs its own tick chain.
  void HeartbeatTick(std::uint32_t shard);
  void RecordTaskStart(JobRuntime& job, sim::SimTime start);

  // ---- Packing (all unreachable when packing_on_ is false) ----------------

  /// The entry's demand fits the worker's residual vector. A probe of a
  /// fully placed job always "fits": it dissolves at resolution without
  /// claiming capacity, and fit-gating it would strand it in the queue.
  bool PackedFits(const WorkerState& worker, const QueueEntry& entry) const {
    if (entry.kind == QueueEntry::Kind::kProbe && jobs_[entry.job].AllPlaced()) {
      return true;
    }
    return jobs_[entry.job].demand.FitsIn(worker.residual);
  }
  /// Post-admission feasibility clamp: guarantees at least one machine
  /// satisfying the job's effective constraints can host its demand.
  void ClampDemandToHostable(JobRuntime& job);
  /// Residual ledger moves, paired with the auditor's claim/release events.
  void ClaimPackedCapacity(WorkerState& worker,
                           const packing::ResourceVector& demand,
                           double copies, trace::JobId job);
  void ReleasePackedCapacity(WorkerState& worker,
                             const packing::ResourceVector& demand,
                             double copies, trace::JobId job);
  /// The packed worker loop: starts every queued entry that fits the
  /// residual vector (selection discipline first, then first-fit down the
  /// queue), holding the control slot only for probe-resolution RTTs.
  void PackedTryStart(WorkerState& worker);
  /// Starts one task as a packed run. `from_reserve` marks gang members
  /// whose capacity was already claimed at reservation time.
  void StartPackedRun(WorkerState& worker, JobRuntime& job,
                      std::uint32_t task_index, double service_penalty,
                      bool from_reserve);
  void FinishPackedRun(cluster::MachineId wid, std::uint32_t run_id,
                       double duration);
  /// Kills every packed run on a failed / force-retired machine, releasing
  /// capacity and replaying the tasks elsewhere.
  void EvictPackedRuns(WorkerState& worker);
  /// Tenancy-under-packing: queue head is prod and does not fit — kill the
  /// newest best-effort run whose release would admit it. Returns true if a
  /// victim was preempted (capacity frees now; the head starts this pass).
  bool TryPackedPreemptFor(WorkerState& worker, const QueueEntry& head);
  /// Best packing score among live fitting candidates (lowest id ties);
  /// least-loaded among live ones when nothing fits (the task queues).
  cluster::MachineId PickBestPacked(
      const std::vector<cluster::MachineId>& candidates, JobRuntime& job);

  // Gang scheduling: atomic multi-machine reserve -> commit/abort.
  void PlaceGang(trace::JobId id);
  void DeliverGangMember(cluster::MachineId target, QueueEntry entry);
  void CloseGangMember(trace::JobId id);
  void CommitGang(trace::JobId id);
  void AbortGang(trace::JobId id);
  /// Arms the capped-exponential-backoff retry timer for the gang's next
  /// reservation round. Returns the backoff chosen (the kGangAbort payload).
  double ScheduleGangRetry(JobRuntime& job);
  /// Clears `worker`'s part of any open gang round (failure/retire path):
  /// releases its reservation and fails the gang so it aborts and retries.
  void EvictGangReservations(WorkerState& worker);

  // Malleable jobs: shrink/expand parallelism from the packed supply signal.
  void PlaceMalleable(trace::JobId id);
  /// Places bound tasks until inflight reaches the job's current width.
  void TopUpMalleable(JobRuntime& job);
  /// Heartbeat pass (fleet tick only): recompute every active malleable
  /// job's width from the free-capacity estimate.
  void RefreshMalleableWidths();
  /// Whole copies of the job's demand the bindable fleet could start now.
  std::uint32_t PackedFreeCopies(const JobRuntime& job) const;

  // ---- Federation (all unreachable when federation_ is null) --------------

  /// Recomputes `shard`'s digest over its territory [lo, hi) and publishes
  /// it to the plane (mean E[W], live count, free slots).
  void RefreshShardDigest(std::uint32_t shard, cluster::MachineId lo,
                          cluster::MachineId hi);
  /// Eligible draw constrained to `shard`'s territory by bounded rejection
  /// sampling; falls back to a global draw (counted) when the constraint
  /// pool misses the territory.
  cluster::MachineId SampleEligibleInShard(const cluster::ConstraintSet& cs,
                                           std::uint32_t shard);
  /// Federated placement bodies (home-territory sampling + optimistic
  /// offload); PlaceDistributed/PlaceCentralized branch to these.
  void PlaceDistributedFederated(JobRuntime& job);
  void PlaceCentralizedFederated(JobRuntime& job);

  // ---- Tenancy (all no-ops / never called when tenancy_on_ is false) ------

  /// Runs the tenant admission lattice for an arriving job: resolves the
  /// tenant tag, charges quota, and applies the decision (priority, SLO
  /// strip, constraint relaxation). Emits TENANT_* events.
  void ApplyTenantAdmission(JobRuntime& job);
  /// Per-tenant constrained-queue-pressure accounting (sign = +1 enqueue,
  /// -1 dequeue), behind TenantRegistry::ConstrainedShare.
  void TenantQueuedDelta(const QueueEntry& entry, double sign);
  /// A prod-class entry just enqueued behind a running best-effort task:
  /// consult the PreemptionPolicy and kill-and-requeue the victim if it
  /// rules kPreempt.
  void MaybePreemptFor(WorkerState& worker, const QueueEntry& entry);
  /// Kill the running task and requeue it on the same worker with the
  /// modeled restart cost. Emits PREEMPT_ISSUE / PREEMPT_REQUEUE.
  void PreemptRunning(WorkerState& worker);
  /// Priority-class promotion over the discipline's choice: the first
  /// queued entry of a strictly higher class than `chosen`'s runs instead
  /// (never overrides a slack-guard selection).
  std::size_t PromoteByPriority(const WorkerState& worker,
                                std::size_t chosen) const;
  /// Releases the job's quota charge and scores its SLO at completion.
  void OnTenantJobComplete(JobRuntime& job);

  // ---- Workflow (all unreachable when dag_on_ / deadline_on_ are false) ---

  /// The job's dispatch is precedence-driven: tasks enter the bound plane
  /// only as their predecessors finish. Flat jobs (and every job with the
  /// --dag gate off) take the original planes untouched.
  bool DagManaged(const JobRuntime& job) const {
    return dag_on_ && job.spec->has_deps();
  }
  /// Arrival placement for a DAG job: builds the precedence state and
  /// dispatches every source (indegree-zero) task.
  void PlaceDagJob(JobRuntime& job);
  /// Binds one released DAG task centrally (the per-task body of
  /// PlaceCentralized with an explicit index), emitting kDagRelease.
  void PlaceDagTask(JobRuntime& job, std::uint32_t task_index);
  /// A DAG task finished: decrement successor indegrees and dispatch every
  /// newly-ready task in critical-path order (longest downstream work
  /// first), emitting kDagReady per release.
  void ReleaseDagSuccessors(JobRuntime& job, std::uint32_t task_index);
  /// Sorts `ready` by downstream critical-path work (descending, index
  /// ascending on ties), emits kDagReady for each, and dispatches them.
  void DispatchReadyDagTasks(JobRuntime& job,
                             std::vector<std::uint32_t>& ready);
  /// Derives the job's absolute deadline from its SLA class multiplier over
  /// the expected critical-path length (mean-duration based; flat jobs use
  /// their longest task). Called at arrival when deadline_on_.
  void AssignDeadline(JobRuntime& job);
  /// Scores the finished job against its deadline: per-class attainment
  /// tally, kDeadlineMiss emission, miss counter.
  void ScoreDeadline(JobRuntime& job);
  /// EDF tie-break over the discipline's choice: the first queued entry
  /// with a strictly earlier deadline than `chosen`'s runs instead (never
  /// overrides a slack-guard selection; untracked jobs rank last).
  std::size_t PromoteByDeadline(const WorkerState& worker,
                                std::size_t chosen);

  sim::Engine& engine_;
  const cluster::Cluster& cluster_;
  SchedulerConfig config_;
  util::Rng rng_;
  net::NetworkFabric fabric_;
  net::Rpc rpc_;

  /// Hot-path bump allocator backing worker queues and job replay lists.
  /// Declared before workers_/jobs_ so it outlives them (containers release
  /// their blocks into the arena's free lists during destruction).
  util::Arena arena_;

  /// Contiguous per-worker state. Sized once at construction (the machine
  /// universe is fixed; elasticity only flips lifecycle states), so
  /// references handed out by worker()/worker_state() stay stable.
  std::vector<WorkerState> workers_;
  /// Dense parallel array: queued short-probe count per worker, maintained
  /// at the three queue-mutation sites. TryStealFor's random victim probes
  /// read this 4-byte hint instead of pulling the victim's whole
  /// WorkerState through the cache; zero means the queue scan would find
  /// nothing stealable (a failed machine's drained queue included), so the
  /// scan — not the RNG draw — is skipped, keeping the draw sequence and
  /// thus every outcome bit-identical.
  std::vector<std::uint32_t> short_probe_counts_;
  /// Dense parallel array: 1 while the worker holds long work (queued bound
  /// long task, or a running long task) — the SSS bit Eagle's probe
  /// rejection loop tests per candidate. See RefreshLongBusy.
  std::vector<std::uint8_t> long_busy_;
  std::vector<JobRuntime> jobs_;
  std::size_t jobs_done_ = 0;

  std::string trace_name_;
  std::vector<obs::EventSink*> sinks_;
  obs::InvariantAuditor* auditor_ = nullptr;
  metrics::SchedulerCounters counters_;
  double total_busy_time_ = 0;
  sim::SimTime makespan_ = 0;
  bool heartbeat_running_ = false;

  /// Multi-tenant state. tenancy_on_ gates every tenancy touch point so a
  /// zero-tenant config never enters a tenancy branch (byte-identity).
  bool tenancy_on_ = false;
  tenancy::TenantRegistry tenants_;
  tenancy::PreemptionPolicy preempt_policy_;
  /// Fleet-mean E[W] snapshot, refreshed each heartbeat; the wait estimate
  /// the admission lattice tests short-job SLOs against.
  double fleet_wait_estimate_ = 0;

  /// Sharded control plane; null (the default) keeps every federation
  /// branch unreachable and the scheduler byte-identical to unsharded runs.
  std::unique_ptr<federation::FederationPlane> federation_;

  /// Elastic membership (null on a static fleet) and the in-service
  /// machine-seconds integral behind SimReport::active_machine_seconds.
  cluster::MembershipView* membership_ = nullptr;
  double in_service_seconds_ = 0;
  double last_membership_change_ = 0;
  std::size_t in_service_count_ = 0;

  /// Power manager (null by default): gates DVFS service-time scaling, the
  /// exec on/off metering hooks, and the energy fields of BuildReport.
  power::PowerManager* power_ = nullptr;

  /// Per-SLA-class energy attribution (index = tenancy::PriorityClass rank;
  /// untenanted work lands in batch). Accumulated at task completion when a
  /// power manager is attached; surfaced via SimReport.
  std::array<double, 3> class_exec_joules_{};
  std::array<std::uint64_t, 3> class_tasks_{};

  /// Multi-resource packing state. packing_on_ gates every packing touch
  /// point so a default config never enters a packing branch: run lists
  /// stay empty, HoldsWork() degenerates to busy-or-queued, and the single
  /// slot-per-machine path is byte-identical to the pre-packing scheduler.
  bool packing_on_ = false;
  packing::ResourceVector max_capacity_;    // component-wise fleet max
  packing::ResourceVector fleet_capacity_;  // component-wise fleet sum
  /// Closed-form mean of the demand sampler (effective-server counts and
  /// the CRV supply scale price capacity in units of it).
  packing::ResourceVector mean_demand_;
  /// Largest-volume machine's capacity: the clamp target for demands that
  /// fit no machine (the reject-then-clamp admission path).
  packing::ResourceVector clamp_capacity_;
  /// Packed-run integrals behind the BuildReport packing block:
  /// core-seconds actually executed, and the heartbeat-sampled
  /// fragmentation (max-min residual-fraction spread, fleet mean).
  double packed_core_seconds_ = 0;
  double frag_sum_ = 0;
  std::uint64_t frag_samples_ = 0;
  double gang_wait_sum_ = 0;

  /// One open reservation round per gang job: capacity is claimed on every
  /// member machine up front, member entries stage here, and the round
  /// closes with exactly one commit (all arrived) or abort (hold expired /
  /// machine lost). Ordered map: abort/commit iteration must be
  /// deterministic across runs.
  struct GangState {
    std::vector<std::pair<cluster::MachineId, std::uint32_t>> reserved;
    std::vector<std::pair<cluster::MachineId, QueueEntry>> staged;
    std::uint32_t expected = 0;  // member count of this round
    std::uint32_t closed = 0;    // members delivered (staged or failed)
    bool failed = false;  // a member machine died mid-round
    /// Bounded-hold timer; always armed while the round is open (Cancel on
    /// an already-fired id is a safe no-op, so close paths cancel blindly).
    sim::Engine::EventId hold_event = 0;
  };
  std::map<trace::JobId, GangState> gangs_;

  /// Ascending-id list of malleable jobs with tasks left to place; the
  /// heartbeat width-refresh pass walks it in order (determinism).
  std::vector<trace::JobId> malleable_active_;

  /// Workflow state. dag_on_ / deadline_on_ gate every workflow touch point
  /// so a default config never enters a workflow branch (byte-identity).
  /// DAG precedence state lives in a side vector (not JobRuntime, which
  /// must stay cheaply copyable for the prototype-assign in SubmitTrace),
  /// indexed by job id, null for flat jobs.
  bool dag_on_ = false;
  bool deadline_on_ = false;
  std::vector<std::unique_ptr<workflow::DagState>> dag_states_;
  /// Per-SLA-class deadline attainment (index = class rank), surfaced via
  /// SimReport when deadline_on_.
  std::array<std::uint64_t, 3> class_deadline_jobs_{};
  std::array<std::uint64_t, 3> class_deadline_attained_{};
};

}  // namespace phoenix::sched
