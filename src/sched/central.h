// Central-C: a monolithic, fully centralized baseline in the spirit of the
// first-generation schedulers of Table I (Borg/Mesos-like early binding
// through one global placement loop).
//
// Every job — short or long — is bound early to the least-loaded satisfying
// worker (power-of-d over the full fleet), queues are FIFO and there is no
// stealing, reordering or probing. It is constraint-aware in placement
// (like the paper's "-C" extensions) but has none of the latency machinery,
// so it bounds how much of Phoenix's win comes from the hybrid design
// itself rather than from constraint awareness.
#pragma once

#include "sched/base.h"

namespace phoenix::sched {

class CentralScheduler : public SchedulerBase {
 public:
  using SchedulerBase::SchedulerBase;

  std::string name() const override { return "central-c"; }

 protected:
  /// Everything goes through the centralized early-binding plane.
  bool UsesDistributedPlane(const JobRuntime&) const override { return false; }
};

}  // namespace phoenix::sched
