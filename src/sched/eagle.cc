#include "sched/eagle.h"

namespace phoenix::sched {

std::vector<cluster::MachineId> EagleScheduler::ChooseProbeTargets(
    const JobRuntime& job) {
  const std::size_t wanted = config().probe_ratio * job.num_tasks();
  const util::Bitset& pool = EligiblePool(job.effective);
  std::vector<cluster::MachineId> targets;
  targets.reserve(wanted);
  // Rejection-sample against the SSS bit vector: skip long-occupied workers
  // while the budget lasts, then accept anything satisfying so constrained
  // jobs still get their probes out. The SSS bits are read synchronously
  // (an oracle): only the probes *built from* them pay fabric transit, so
  // under a lossy fabric placement acts on slightly stale occupancy — the
  // same staleness real gossip-propagated SSS exhibits.
  const std::size_t budget = 4 * wanted;
  std::size_t draws = 0;
  while (targets.size() < wanted && draws < budget) {
    ++draws;
    const std::size_t bit = pool.SampleSetBit(rng());
    if (bit == SIZE_MAX) break;
    const auto id = static_cast<cluster::MachineId>(bit);
    if (!LongBusy(id)) targets.push_back(id);
  }
  while (targets.size() < wanted) {
    const std::size_t bit = pool.SampleSetBit(rng());
    if (bit == SIZE_MAX) break;
    targets.push_back(static_cast<cluster::MachineId>(bit));
  }
  return targets;
}

std::size_t EagleScheduler::SrptIndex(const WorkerState& worker) const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < worker.queue.size(); ++i) {
    if (worker.queue[i].est_duration < worker.queue[best].est_duration) {
      best = i;
    }
  }
  return best;
}

std::size_t EagleScheduler::SelectNextIndex(const WorkerState& worker) {
  const std::size_t index = IndexRespectingSlack(worker, SrptIndex(worker));
  if (index != 0) ++counters().tasks_reordered_srpt;
  return index;
}

bool EagleScheduler::UseStickyBatchProbing(const JobRuntime&) const {
  return true;
}

}  // namespace phoenix::sched
