// Yacc-D: "Yaq-c/d"-style efficient queue management (Rasley et al.,
// EuroSys'16) — the early-binding comparator of Figure 2.
//
// Design axes (Table I): hybrid control plane, EARLY binding (every task is
// bound to a concrete worker queue at submission; there are no probes),
// SRPT queue reordering, and adaptive load balancing: each heartbeat the
// node manager migrates queued tasks from overloaded workers to underloaded
// satisfying workers.
#pragma once

#include "sched/base.h"

namespace phoenix::sched {

class YaccDScheduler : public SchedulerBase {
 public:
  using SchedulerBase::SchedulerBase;

  std::string name() const override { return "yacc-d"; }

 protected:
  /// Early binding for everything: both planes place through the
  /// centralized least-loaded path.
  bool UsesDistributedPlane(const JobRuntime&) const override { return false; }

  /// SRPT with the slack bound (Yaq's queue reordering).
  std::size_t SelectNextIndex(const WorkerState& worker) override;

  /// Adaptive rebalancing pass over the tick's territory.
  void OnHeartbeat(cluster::MachineId lo, cluster::MachineId hi) override;

 private:
  /// Load above which a worker sheds queued tasks, as a multiple of the
  /// cluster-mean queued work.
  static constexpr double kShedFactor = 2.0;
  /// Migration stops once the worker is back under this multiple.
  static constexpr double kShedTarget = 1.25;
};

}  // namespace phoenix::sched
