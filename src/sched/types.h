// Shared runtime types of the scheduler framework.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "cluster/constraint.h"
#include "cluster/machine.h"
#include "net/fabric.h"
#include "net/rpc.h"
#include "packing/config.h"
#include "packing/vector.h"
#include "util/arena.h"
#include "util/bitset.h"
#include "queueing/mg1.h"
#include "sim/simtime.h"
#include "tenancy/config.h"
#include "trace/job.h"
#include "workflow/config.h"

namespace phoenix::sched {

/// Tunables shared by every scheduler. Defaults follow the paper's stated
/// choices (§V-A, §VI-C): probe ratio 2, 0.5 ms one-way transit, 9 s
/// heartbeat, starvation/slack threshold 5.
struct SchedulerConfig {
  /// Control-plane delivery model. Every probe delivery, late-binding task
  /// fetch, steal, migration, and heartbeat report transits the
  /// NetworkFabric; `net.one_way` (paper: 0.5 ms) is the single transit-time
  /// parameter — no scheduler carries its own delay constant.
  net::FabricConfig net;
  /// Timeout/retry/backoff policy for messages that must not strand work.
  net::RpcConfig rpc;

  /// Probes sent per short task (paper finds 2 optimal).
  std::size_t probe_ratio = 2;

  /// CRV monitor / node manager synchronization period (paper: 9 s).
  double heartbeat_interval = 9.0;

  /// Jobs whose estimated mean task duration is <= this are "short" and go
  /// through the distributed plane. Set from the trace by the runner.
  double short_cutoff = 90.0;

  /// Workers an idle node contacts per steal attempt (Hawk/Eagle).
  std::size_t steal_candidates = 4;

  /// Fraction of the cluster Hawk reserves for short jobs only.
  double hawk_short_partition = 0.09;

  /// Max times a queued entry may be bypassed by reordering (paper: 5).
  std::size_t slack_threshold = 5;

  /// CRV demand/supply ratio above which a dimension counts as congested
  /// and Phoenix switches that queue from SRPT to CRV reordering.
  double crv_threshold = 1.0;

  /// Estimated queue wait (seconds) marking a worker for CRV reordering.
  double qwait_threshold = 10.0;

  /// Service-time multiplier applied per relaxed soft constraint — the
  /// "performance trade-off" of §III-A's negotiation. The ablation bench
  /// shows tail gains are insensitive in 1.05-1.25 while median cost grows
  /// with the penalty; 1.1 models a modest placement-quality loss.
  double soft_relax_penalty = 1.1;

  /// Candidate count for power-of-d least-loaded placement in the
  /// centralized (long-job) plane.
  std::size_t power_of_d = 8;

  /// Samples kept by each worker's P-K wait estimator.
  std::size_t estimator_window = 64;

  std::uint64_t seed = 1;

  // Phoenix feature toggles (for the ablation benches; all on by default).
  /// CRV-based reordering of congested marked queues (Algorithm 1).
  bool phoenix_crv_reorder = true;
  /// Proactive soft-constraint negotiation at admission.
  bool phoenix_admission = true;
  /// E[W]-guided probe target selection.
  bool phoenix_wait_aware_probes = true;
  /// Suspension of sticky batch probing during congested periods. Off by
  /// default: ablation (bench_ablation_design_choices) shows stickiness
  /// remains beneficial under this simulator's congestion model, so Phoenix
  /// keeps SBP and relies on the CRV table for wait estimation instead.
  bool phoenix_suspend_sbp = false;

  /// Cap on proactively negotiated (soft) constraints per job. The paper
  /// negotiates "in which all the constraints could not be satisfied"; one
  /// relaxation per job keeps the placement-quality trade bounded.
  std::size_t phoenix_max_relaxations = 1;

  /// Multi-tenant scheduling (src/tenancy): tenant specs, preemption policy
  /// and quota window. Empty tenant list = disabled, byte-identical to a
  /// tenancy-free run.
  tenancy::TenancyConfig tenancy;

  /// Multi-resource vector packing, gang tasks, and malleable jobs
  /// (src/packing). Disabled = the paper's single-slot worker model,
  /// byte-identical to a packing-free run.
  packing::PackingConfig packing;

  /// DAG workloads and deadline/SLA scheduling (src/workflow). Both gates
  /// off = byte-identical to a workflow-free run.
  workflow::WorkflowConfig workflow;

  // Failure injection (0 disables). Machines fail with exponential
  // inter-failure times of mean machine_mtbf seconds; a failed machine's
  // queue is re-dispatched, its running task is replayed elsewhere, and the
  // machine returns after an exponential repair of mean machine_mttr.
  double machine_mtbf = 0.0;
  double machine_mttr = 600.0;
};

/// An entry in a worker queue: either a late-binding proxy probe for a short
/// job, or a task bound early by the centralized plane.
struct QueueEntry {
  enum class Kind : std::uint8_t { kProbe, kBoundTask };

  // Field order packs the struct to 40 bytes (doubles first, then 32-bit
  // ids, then the byte-wide tail) so lambdas capturing an entry by value
  // stay within the engine callback's inline buffer — queue hand-offs
  // (deliver, steal, re-dispatch) allocate nothing.

  /// Estimated task duration used by SRPT / load accounting (the job's mean
  /// task estimate, as production schedulers have from history).
  double est_duration = 0;
  sim::SimTime enqueue_time = 0;
  /// Seconds added to the task's next service (a preempted task pays the
  /// modeled restart cost on its re-run).
  double service_penalty = 0;
  trace::JobId job = trace::kInvalidJob;
  /// Valid for bound tasks only; probes late-bind to the job's next task.
  std::uint32_t task_index = 0;
  /// Times this entry has been bypassed by queue reordering.
  std::uint32_t bypass_count = 0;
  Kind kind = Kind::kProbe;
  /// The job is classified short by the scheduler.
  bool short_class = true;
  /// Times this bound task has already been preempted (feeds the
  /// max_preemptions_per_task immunity cap).
  std::uint8_t preempt_count = 0;
  /// Federation: bound optimistically into a peer shard's territory on a
  /// possibly-stale gossiped view. Delivery runs double-bind detection for
  /// such entries (accept only an actually-free slot, else requeue at
  /// home); cleared once resolved either way. Occupies the struct's last
  /// pad byte, keeping the 40-byte / inline-capture layout above intact.
  bool cross_shard = false;
};

/// Per-job replay list, pooled in the scheduler's arena (hot-path churn on
/// failure/preemption replays; a null-arena allocator falls back to the
/// global heap for standalone construction in tests).
using ReplayList = std::vector<std::uint32_t,
                               util::ArenaAllocator<std::uint32_t>>;

/// Runtime bookkeeping for a job being scheduled.
struct JobRuntime {
  JobRuntime() = default;
  explicit JobRuntime(util::Arena* arena)
      : replay_tasks(util::ArenaAllocator<std::uint32_t>(arena)) {}

  const trace::Job* spec = nullptr;
  trace::JobId id = trace::kInvalidJob;
  /// Constraints after admission-control relaxation.
  cluster::ConstraintSet effective;
  /// True if the original request was constrained (for reporting).
  bool constrained = false;
  bool short_class = true;
  /// Service-time multiplier from relaxed soft constraints.
  double duration_multiplier = 1.0;
  std::uint32_t relaxed_constraints = 0;

  std::uint32_t next_unplaced = 0;  // tasks are handed out in index order
  std::uint32_t completed = 0;
  /// Live proxy probes for this job (sent minus resolved).
  std::uint32_t outstanding_probes = 0;
  /// Task indices killed by a machine failure, awaiting re-execution.
  ReplayList replay_tasks;

  /// Racks that already host (or are bound to host) a task of this job —
  /// the state behind the spread/colocate placement preferences.
  util::Bitset used_racks;
  cluster::RackId anchor_rack = cluster::kInvalidRack;

  trace::PlacementPref placement() const { return spec->placement; }

  // ---- Tenancy (defaults describe an untenanted job) ----------------------
  /// Tenant tag resolved against the run's registry (kNoTenant bypasses
  /// tenant admission, preemption eligibility, and accounting).
  tenancy::TenantId tenant = tenancy::kNoTenant;
  /// Effective priority class after tenant admission. Untenanted jobs run
  /// as batch: preemption-neutral (neither preempt nor get preempted).
  tenancy::PriorityClass priority = tenancy::PriorityClass::kBatch;
  /// Effective short-job SLO after admission (0 = not tracked).
  double slo_target = 0;
  bool slo_tracked = false;
  /// Machine-seconds committed against the tenant quota, released at
  /// completion.
  double quota_charge = 0;
  /// Times any task of this job was preempted.
  std::uint32_t preemptions = 0;

  double sum_task_wait = 0;
  double max_task_wait = 0;
  /// Task executions started (exceeds num_tasks when failures replay work).
  std::uint32_t task_starts = 0;
  sim::SimTime completion = 0;

  // ---- Packing (meaningful only when config.packing.enabled) --------------
  /// Per-job demand vector, hashed from (run seed, job id) at arrival and
  /// clamped to the fleet's max capacity (the reject-then-clamp path).
  packing::ResourceVector demand;
  /// Gang bookkeeping: consecutive placement retries (drives the capped
  /// exponential backoff) and the arrival time (gang wait = commit - arrival).
  std::uint32_t gang_retries = 0;
  sim::SimTime gang_arrival = 0;
  /// Malleable bookkeeping: current parallelism target and tasks placed but
  /// not yet completed. Width moves in [min_parallel, num_tasks] with the
  /// packed free-capacity signal; shrink is passive (never kills a run).
  std::uint32_t malleable_width = 0;
  std::uint32_t malleable_inflight = 0;

  // ---- Workflow (meaningful only when config.workflow gates are on) -------
  /// Absolute completion deadline (submit + multiplier x critical path) and
  /// the SLA class rank (0 prod / 1 batch / 2 best-effort) it was derived
  /// from. deadline_tracked is false when deadline scheduling is off.
  double deadline = 0;
  bool deadline_tracked = false;
  std::uint8_t sla_rank = 1;

  bool gang() const { return spec->gang; }
  bool malleable() const { return spec->malleable; }
  std::uint32_t min_parallel() const {
    return spec->min_parallel > 0 ? spec->min_parallel : 1;
  }

  std::size_t num_tasks() const { return spec->task_durations.size(); }
  bool AllPlaced() const {
    return next_unplaced >= num_tasks() && replay_tasks.empty();
  }
  bool Done() const { return completed >= num_tasks(); }
  /// Actual service time of a task, including any relaxation penalty.
  double ActualDuration(std::uint32_t index) const {
    return spec->task_durations[index] * duration_multiplier;
  }
};

/// One concurrently executing task on a multi-slot (packed) worker. The
/// single-slot model keeps its scalar running_* fields; under packing each
/// machine instead carries a run list bounded by its capacity vector.
struct PackedRun {
  trace::JobId job = trace::kInvalidJob;
  std::uint32_t task_index = 0;
  /// Ties the completion event to this run (run_list indices shift).
  std::uint32_t run_id = 0;
  /// The cancellable completion event for this run.
  std::uint64_t pending_event = 0;
  sim::SimTime start = 0;
  sim::SimTime until = 0;
};

/// Worker queue storage, pooled in the scheduler's arena (deque chunks are
/// the steady-state allocation churn of a run).
using EntryQueue = std::deque<QueueEntry, util::ArenaAllocator<QueueEntry>>;

/// Runtime state of one worker (single execution slot + queue, §V-A; under
/// packing the slot becomes a residual-capacity ledger plus a run list).
struct WorkerState {
  cluster::MachineId id = cluster::kInvalidMachine;
  EntryQueue queue;

  /// True while the slot is held: resolving a probe, fetching, or executing.
  bool busy = false;
  trace::JobId running_job = trace::kInvalidJob;
  std::uint32_t running_index = 0;
  sim::SimTime busy_until = 0;

  /// Sum of est_duration of queued entries plus the running remainder —
  /// the load signal for least-loaded placement and rebalancing.
  double est_queued_work = 0;

  /// Count of long (centrally bound) entries queued or running; drives the
  /// Succinct State Sharing bit the distributed schedulers see.
  std::uint32_t long_entries = 0;

  /// Online P-K estimator (Algorithm 1's Estimate_Waiting_Time inputs).
  queueing::WorkerWaitEstimator estimator;

  /// Phoenix: E[W] snapshot taken at the last heartbeat.
  double last_wait_estimate = 0;
  /// Phoenix: marked for CRV-based reordering at the last heartbeat.
  bool crv_marked = false;

  /// A steal request is in flight (prevents steal storms).
  bool steal_inflight = false;

  /// Lifetime count of task executions started on this machine. The
  /// elasticity controller diffs it across a lease to detect warm-ups that
  /// never served anything (wasted-warm-up accounting).
  std::uint64_t tasks_started = 0;

  /// Tenancy: snapshot of the running entry's starvation/preemption state,
  /// taken when the entry was popped for execution. Read only while
  /// running_job is valid; zero-tenant runs never read them.
  bool running_bypass_exhausted = false;
  std::uint8_t running_preempt_count = 0;
  /// When the running task started (elapsed service lost on a preemption).
  sim::SimTime running_start = 0;

  /// Failure injection: machine is currently down.
  bool failed = false;
  /// The cancellable in-flight event while the slot is held for a running
  /// task's completion. Slot-holding fetches use pending_call instead.
  std::uint64_t pending_event = 0;
  /// The live fetch RPC holding the slot (probe resolution or sticky-batch
  /// fetch); 0 when the slot is idle or executing. A machine failure
  /// cancels this call the way it cancels pending_event.
  std::uint64_t pending_call = 0;
  /// Valid while the slot is held for a probe resolution (so a failure can
  /// re-dispatch the probe).
  bool resolving = false;
  QueueEntry resolving_entry;
  /// Valid while the slot is held for a sticky-batch fetch (so a failure
  /// can re-cover the fetched job instead of relying on leftover probes).
  trace::JobId fetching_job = trace::kInvalidJob;

  // ---- Packing (capacity == residual == zero when packing is off) ---------
  /// Static capacity vector derived from the machine's attributes.
  packing::ResourceVector capacity;
  /// Capacity not claimed by running tasks or gang reservations. The
  /// auditor's conservation rule re-integrates claim/release events against
  /// this ledger.
  packing::ResourceVector residual;
  /// Tasks executing concurrently on this machine.
  std::vector<PackedRun> run_list;
  /// Monotone run-id source for this machine's completion events.
  std::uint32_t next_run_id = 0;

  /// True when the machine holds any work: the single slot (busy covers
  /// running, probe-resolving, and fetching), queued entries, or — under
  /// packing — live packed runs. Park/retire/free-slot decisions use this;
  /// run_list is always empty when packing is off, so the predicate
  /// degenerates to the original busy-or-queued test.
  bool HoldsWork() const {
    return busy || !queue.empty() || !run_list.empty();
  }

  explicit WorkerState(std::size_t estimator_window,
                       util::Arena* arena = nullptr)
      : queue(util::ArenaAllocator<QueueEntry>(arena)),
        estimator(estimator_window) {}
};

}  // namespace phoenix::sched
