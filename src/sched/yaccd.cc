#include "sched/yaccd.h"

#include <algorithm>

namespace phoenix::sched {

std::size_t YaccDScheduler::SelectNextIndex(const WorkerState& worker) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < worker.queue.size(); ++i) {
    if (worker.queue[i].est_duration < worker.queue[best].est_duration) {
      best = i;
    }
  }
  const std::size_t index = IndexRespectingSlack(worker, best);
  if (index != 0) ++counters().tasks_reordered_srpt;
  return index;
}

void YaccDScheduler::OnHeartbeat(cluster::MachineId lo,
                                 cluster::MachineId hi) {
  // Mean queued work across the tick's territory (the fleet unsharded).
  double total = 0;
  for (cluster::MachineId i = lo; i < hi; ++i) {
    total += worker(i).est_queued_work;
  }
  const double mean = total / static_cast<double>(hi - lo);
  if (mean <= 0) return;

  for (cluster::MachineId i = lo; i < hi; ++i) {
    WorkerState& w = worker(i);
    if (w.est_queued_work <= kShedFactor * mean) continue;
    // Shed from the queue tail (the work that would wait longest) until the
    // worker is back near the mean.
    while (!w.queue.empty() && w.est_queued_work > kShedTarget * mean) {
      const std::size_t tail = w.queue.size() - 1;
      const JobRuntime& job = runtime(w.queue[tail].job);
      // Find a less-loaded satisfying worker; skip the move if none is
      // meaningfully better.
      const auto candidates =
          SampleDistinctEligible(job.effective, config().power_of_d);
      cluster::MachineId best = cluster::kInvalidMachine;
      double best_load = w.est_queued_work;
      for (const auto c : candidates) {
        if (c == w.id) continue;
        const double load = worker(c).est_queued_work;
        if (load < best_load) {
          best_load = load;
          best = c;
        }
      }
      if (best == cluster::kInvalidMachine ||
          best_load > 0.5 * w.est_queued_work) {
        break;
      }
      QueueEntry moved = RemoveQueueAt(w, tail);
      ++counters().tasks_stolen;  // migrations share the rebalance counter
      // Migration pays a negotiate + transfer round trip over the fabric.
      SendEntry(best, moved, 2 * one_way(), w.id);
    }
  }
}

}  // namespace phoenix::sched
