// Scheduler registry: name -> instance.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sched/base.h"

namespace phoenix::runner {

/// Names accepted by MakeScheduler: "phoenix", "eagle-c", "hawk-c",
/// "sparrow-c", "yacc-d".
const std::vector<std::string>& SchedulerNames();

/// Instantiates a scheduler by name. Aborts on unknown names (experiment
/// harnesses should fail loudly on typos).
std::unique_ptr<sched::SchedulerBase> MakeScheduler(
    const std::string& name, sim::Engine& engine,
    const cluster::Cluster& cluster, const sched::SchedulerConfig& config);

}  // namespace phoenix::runner
