#include "runner/parallel.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "util/thread_pool.h"

namespace phoenix::runner {

namespace {

std::atomic<std::size_t> g_threads{0};  // 0 = hardware default
thread_local bool t_in_parallel_loop = false;

}  // namespace

std::size_t ExperimentThreads() {
  const std::size_t t = g_threads.load(std::memory_order_relaxed);
  return t == 0 ? util::ThreadPool::HardwareThreads() : t;
}

void SetExperimentThreads(std::size_t threads) {
  g_threads.store(threads, std::memory_order_relaxed);
}

bool InParallelExperimentLoop() { return t_in_parallel_loop; }

void ParallelExperimentLoop(std::size_t n,
                            const std::function<void(std::size_t)>& fn) {
  const std::size_t budget = ExperimentThreads();
  if (n <= 1 || budget <= 1 || t_in_parallel_loop) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  util::ThreadPool pool(std::min(budget, n));
  pool.ParallelFor(n, [&fn](std::size_t i) {
    t_in_parallel_loop = true;
    fn(i);
    t_in_parallel_loop = false;
  });
}

void PrewarmClusterForTrace(const cluster::Cluster& cluster,
                            const trace::Trace& trace) {
  for (const auto& job : trace.jobs()) {
    if (!job.constrained()) continue;
    cluster.Satisfying(job.constraints);
    // Both forced relaxation (SchedulerBase::AdmitJob) and Phoenix's CRV
    // negotiation only ever *remove soft* constraints, so the reachable
    // effective sets are exactly the soft-subset removals. Sets hold at
    // most kMaxConstraintsPerTask (6) entries, so the enumeration is tiny,
    // and the pool memoization dedupes repeats across jobs.
    std::vector<std::size_t> soft;
    for (std::size_t i = 0; i < job.constraints.size(); ++i) {
      if (!job.constraints[i].hard) soft.push_back(i);
    }
    for (std::size_t mask = 1; mask < (1u << soft.size()); ++mask) {
      cluster::ConstraintSet relaxed;
      for (std::size_t i = 0; i < job.constraints.size(); ++i) {
        const auto it = std::find(soft.begin(), soft.end(), i);
        const bool removed =
            it != soft.end() &&
            (mask >> static_cast<std::size_t>(it - soft.begin())) & 1;
        if (!removed) relaxed.Add(job.constraints[i]);
      }
      if (!relaxed.empty()) cluster.Satisfying(relaxed);
    }
  }
}

}  // namespace phoenix::runner
