#include "runner/registry.h"

#include "core/phoenix.h"
#include "sched/central.h"
#include "sched/eagle.h"
#include "sched/hawk.h"
#include "sched/sparrow.h"
#include "sched/yaccd.h"
#include "util/check.h"

namespace phoenix::runner {

const std::vector<std::string>& SchedulerNames() {
  static const std::vector<std::string> names = {
      "phoenix", "eagle-c", "hawk-c", "sparrow-c", "yacc-d", "central-c"};
  return names;
}

std::unique_ptr<sched::SchedulerBase> MakeScheduler(
    const std::string& name, sim::Engine& engine,
    const cluster::Cluster& cluster, const sched::SchedulerConfig& config) {
  if (name == "phoenix") {
    return std::make_unique<core::PhoenixScheduler>(engine, cluster, config);
  }
  if (name == "eagle-c") {
    return std::make_unique<sched::EagleScheduler>(engine, cluster, config);
  }
  if (name == "hawk-c") {
    return std::make_unique<sched::HawkScheduler>(engine, cluster, config);
  }
  if (name == "sparrow-c") {
    return std::make_unique<sched::SparrowScheduler>(engine, cluster, config);
  }
  if (name == "yacc-d") {
    return std::make_unique<sched::YaccDScheduler>(engine, cluster, config);
  }
  if (name == "central-c") {
    return std::make_unique<sched::CentralScheduler>(engine, cluster, config);
  }
  PHOENIX_CHECK_MSG(
      false,
      "unknown scheduler (phoenix|eagle-c|hawk-c|sparrow-c|yacc-d|central-c)");
}

}  // namespace phoenix::runner
