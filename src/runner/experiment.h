// Experiment harness: trace + cluster + scheduler -> report, with the
// multi-seed averaging the paper uses ("results averaged over five runs to
// ensure consistency", §V-B — the schedulers are stochastic in probe and
// steal target selection).
#pragma once

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "elastic/config.h"
#include "federation/config.h"
#include "metrics/report.h"
#include "power/config.h"
#include "sched/types.h"
#include "trace/trace.h"

namespace phoenix::runner {

/// Observability outputs for one simulation. All fields are off by
/// default, which keeps the scheduler's emit path a single branch.
struct ObsOptions {
  /// Chrome trace_event JSON (open in chrome://tracing or Perfetto).
  std::string trace_chrome;
  /// Newline-delimited JSON event stream.
  std::string trace_jsonl;
  /// Per-heartbeat worker timeseries TSV; Phoenix runs additionally write
  /// the CRV snapshot history next to it as `<path>.crv`.
  std::string timeseries_tsv;
  /// Run the invariant auditor online; the run aborts on any violation.
  bool audit = false;

  bool enabled() const {
    return audit || !trace_chrome.empty() || !trace_jsonl.empty() ||
           !timeseries_tsv.empty();
  }
};

struct RunOptions {
  std::string scheduler = "phoenix";
  sched::SchedulerConfig config;
  ObsOptions obs;
  /// Elastic cluster lifecycle (src/elastic). When enabled, the cluster is
  /// the full machine universe (base + reserve + transient must equal its
  /// size); the run attaches a MembershipView and an ElasticityController.
  /// Disabled (the default) runs are byte-identical to the static fleet.
  elastic::ElasticConfig elastic;
  /// Sharded control plane (src/federation). shards > 1 partitions the
  /// fleet into per-shard heartbeat domains exchanging gossiped digests;
  /// shards == 1 (the default) never constructs the plane and is
  /// byte-identical to the unsharded scheduler.
  federation::FederationConfig federation;
  /// Power management (src/power). When enabled, the run attaches a
  /// PowerManager (machine power model + energy meter) and a
  /// PowerController (park / DVFS / wake on the heartbeat cadence). A
  /// non-elastic run gets an all-active MembershipView so parked is a legal
  /// lifecycle state. Disabled (the default) runs never construct any of it
  /// and are byte-identical to a build without src/power.
  power::PowerConfig power;
};

/// "out.json" + seed 43 -> "out.seed43.json" (multi-seed runs write one
/// observability file per seed so concurrent runs never share a stream).
std::string SeedSuffixedPath(const std::string& path, std::uint64_t seed);

/// One full simulation. The trace's short cutoff overrides
/// options.config.short_cutoff. Aborts if any job fails to complete.
metrics::SimReport RunSimulation(const trace::Trace& trace,
                                 const cluster::Cluster& cluster,
                                 const RunOptions& options);

/// The same workload under `runs` scheduler seeds (config.seed + i).
/// Runs execute concurrently under the runner::ExperimentThreads() budget
/// (see runner/parallel.h); reports() is always ordered by seed offset and
/// bit-identical to a serial execution.
class RepeatedRuns {
 public:
  RepeatedRuns(const trace::Trace& trace, const cluster::Cluster& cluster,
               RunOptions options, std::size_t runs);

  const std::vector<metrics::SimReport>& reports() const { return reports_; }

  /// Mean across runs of the given percentile of response times for the
  /// selected job slice.
  double MeanResponsePercentile(double p, metrics::ClassFilter cf,
                                metrics::ConstraintFilter kf) const;
  /// Same for queuing delays.
  double MeanQueuingPercentile(double p, metrics::ClassFilter cf,
                               metrics::ConstraintFilter kf) const;
  /// Mean measured utilization across runs.
  double MeanUtilization() const;

 private:
  std::vector<metrics::SimReport> reports_;
};

/// Field-wise sum of every report's SchedulerCounters — the aggregation the
/// bench harnesses report per sweep cell (a multi-seed cell sums, never
/// averages, its event counts).
metrics::SchedulerCounters AggregateCounters(
    const std::vector<metrics::SimReport>& reports);

}  // namespace phoenix::runner
