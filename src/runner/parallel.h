// Process-wide parallel execution policy for the experiment harness.
//
// Everything the paper's evaluation runs is embarrassingly parallel — five
// seeded simulations per data point, ten (scheduler, fleet) cells per
// sweep — so the harness fans those units out over a fork/join ThreadPool.
// Determinism is preserved by construction: every unit owns its sim::Engine
// and RNG (derived from config.seed + index), writes into a result slot
// keyed by its index, and all printing/serialization happens after the
// join. Results are therefore bit-identical for any thread budget.
#pragma once

#include <cstddef>
#include <functional>

#include "cluster/cluster.h"
#include "trace/trace.h"

namespace phoenix::runner {

/// Thread budget for experiment loops. Defaults to hardware_concurrency;
/// never less than 1.
std::size_t ExperimentThreads();

/// Sets the budget (the bench harnesses wire `--threads` here). 0 restores
/// the hardware_concurrency default; 1 restores fully serial execution.
void SetExperimentThreads(std::size_t threads);

/// True while the calling thread is inside a ParallelExperimentLoop task.
/// Nested loops run serially (the outer loop already owns the budget).
bool InParallelExperimentLoop();

/// Runs fn(0) .. fn(n - 1). Parallel when the budget allows and the caller
/// is not already inside a parallel loop; otherwise serial, in index order.
/// Tasks must confine writes to per-index slots (and otherwise only touch
/// state that is safe under concurrent const access, e.g. Cluster).
void ParallelExperimentLoop(std::size_t n,
                            const std::function<void(std::size_t)>& fn);

/// Populates the cluster's predicate/pool caches with every constraint set
/// the trace can request (as-submitted and hard-only, the admission
/// fallback), so parallel runs mostly take the shared-lock read path
/// instead of serializing on cold-key inserts (multi-step admission
/// relaxations can still miss; the cluster's mutex covers those). Cheap:
/// memoization dedupes.
void PrewarmClusterForTrace(const cluster::Cluster& cluster,
                            const trace::Trace& trace);

}  // namespace phoenix::runner
