#include "runner/experiment.h"

#include <chrono>
#include <memory>

#include "cluster/membership.h"
#include "elastic/controller.h"
#include "obs/audit.h"
#include "obs/heartbeat_log.h"
#include "obs/trace_writer.h"
#include "power/controller.h"
#include "power/manager.h"
#include "runner/parallel.h"
#include "runner/registry.h"
#include "sim/engine.h"
#include "util/check.h"

namespace phoenix::runner {

std::string SeedSuffixedPath(const std::string& path, std::uint64_t seed) {
  const std::string suffix = ".seed" + std::to_string(seed);
  const std::size_t slash = path.find_last_of('/');
  const std::size_t dot = path.find_last_of('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path + suffix;
  }
  return path.substr(0, dot) + suffix + path.substr(dot);
}

metrics::SimReport RunSimulation(const trace::Trace& trace,
                                 const cluster::Cluster& cluster,
                                 const RunOptions& options) {
  sim::Engine engine;
  auto scheduler =
      MakeScheduler(options.scheduler, engine, cluster, options.config);

  // Per-run sinks: each simulation owns its writers (and files), so the
  // multi-seed fan-out needs no cross-thread coordination beyond the
  // writers' own locks.
  std::unique_ptr<obs::JsonlWriter> jsonl;
  std::unique_ptr<obs::ChromeTraceWriter> chrome;
  std::unique_ptr<obs::HeartbeatLog> heartbeat_log;
  std::unique_ptr<obs::InvariantAuditor> auditor;
  const ObsOptions& obs_opts = options.obs;
  if (!obs_opts.trace_jsonl.empty()) {
    jsonl = std::make_unique<obs::JsonlWriter>(obs_opts.trace_jsonl);
    PHOENIX_CHECK_MSG(jsonl->ok(), "cannot open --trace-jsonl output");
    scheduler->AttachSink(jsonl.get());
  }
  if (!obs_opts.trace_chrome.empty()) {
    chrome = std::make_unique<obs::ChromeTraceWriter>(obs_opts.trace_chrome);
    PHOENIX_CHECK_MSG(chrome->ok(), "cannot open --trace-out output");
    scheduler->AttachSink(chrome.get());
  }
  if (!obs_opts.timeseries_tsv.empty()) {
    heartbeat_log = std::make_unique<obs::HeartbeatLog>();
    scheduler->AttachSink(heartbeat_log.get());
  }
  if (obs_opts.audit) {
    auditor = std::make_unique<obs::InvariantAuditor>();
    scheduler->AttachAuditor(auditor.get());
  }

  // Elastic runs own a per-run membership view + controller over the shared
  // immutable cluster universe (Cluster's caches stay read-shared; the
  // mutable state lives in the view).
  std::unique_ptr<cluster::MembershipView> membership;
  std::unique_ptr<elastic::ElasticityController> controller;
  if (options.elastic.enabled) {
    PHOENIX_CHECK_MSG(options.elastic.universe_size() == cluster.size(),
                      "elastic base+reserve+transient != cluster size");
    membership = std::make_unique<cluster::MembershipView>(
        cluster, options.elastic.base_machines);
    scheduler->SetMembership(membership.get());
    controller = std::make_unique<elastic::ElasticityController>(
        engine, *scheduler, *membership, options.elastic);
  }

  // The federation plane must exist before SubmitTrace: the trace submit
  // schedules one heartbeat chain per shard and starts the gossip timers.
  if (options.federation.enabled()) {
    scheduler->EnableFederation(options.federation);
  }

  // Power management rides on a membership view (parked is a lifecycle
  // state). A non-elastic powered run gets an all-active view over the full
  // fleet — CountAdmissible over every machine, identical to the static
  // world until the controller parks something.
  std::unique_ptr<power::PowerManager> power_mgr;
  std::unique_ptr<power::PowerController> power_ctl;
  if (options.power.enabled) {
    if (!membership) {
      membership =
          std::make_unique<cluster::MembershipView>(cluster, cluster.size());
      scheduler->SetMembership(membership.get());
    }
    power_mgr =
        std::make_unique<power::PowerManager>(cluster, options.power);
    scheduler->SetPower(power_mgr.get());
    // Elastic runs keep the transient pool out of the park policy's hands:
    // lease top-up and parking would otherwise fight over the same ids.
    const std::size_t park_limit =
        options.elastic.enabled
            ? options.elastic.base_machines + options.elastic.reserve_machines
            : cluster.size();
    power_ctl = std::make_unique<power::PowerController>(
        engine, *scheduler, *membership, *power_mgr, park_limit);
  }

  scheduler->SubmitTrace(trace);
  if (controller) controller->Start();
  if (power_ctl) power_ctl->Start();
  const auto wall_start = std::chrono::steady_clock::now();
  engine.Run();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  PHOENIX_CHECK_MSG(engine.Empty(), "event queue failed to drain");
  scheduler->FinalAudit();
  auto report = scheduler->BuildReport();
  report.sim_wall_seconds = wall_seconds;
  report.events_fired = engine.events_fired();
  if (controller) {
    const auto& stats = controller->stats();
    report.counters.elastic_scale_up_decisions = stats.scale_up_decisions;
    report.counters.elastic_scale_down_decisions = stats.scale_down_decisions;
    report.counters.elastic_crv_shaped_picks = stats.crv_shaped_picks;
    report.counters.elastic_wasted_warmup_seconds =
        stats.wasted_warmup_seconds;
    report.counters.power_parks_instead_of_retire =
        stats.parks_instead_of_retire;
  }
  if (power_ctl) {
    const auto& stats = power_ctl->stats();
    report.counters.power_park_vetoes_coverage = stats.park_vetoes_coverage;
    report.counters.power_park_vetoes_floor = stats.park_vetoes_floor;
    report.counters.power_wake_decisions = stats.wake_decisions;
  }

  if (jsonl) jsonl->Flush();
  if (chrome) chrome->Flush();
  if (heartbeat_log) {
    PHOENIX_CHECK_MSG(heartbeat_log->WriteTsv(obs_opts.timeseries_tsv),
                      "cannot write --timeseries output");
    if (heartbeat_log->has_crv_history()) {
      heartbeat_log->WriteCrvTsv(obs_opts.timeseries_tsv + ".crv");
    }
  }
  if (auditor) {
    PHOENIX_CHECK_MSG(auditor->ok(), auditor->Summary().c_str());
  }
  return report;
}

RepeatedRuns::RepeatedRuns(const trace::Trace& trace,
                           const cluster::Cluster& cluster, RunOptions options,
                           std::size_t runs) {
  PHOENIX_CHECK(runs > 0);
  reports_.resize(runs);
  const std::uint64_t base_seed = options.config.seed;
  // Each run owns its engine, scheduler and RNG (seed + i) and writes only
  // its own report slot, so the fan-out is deterministic for any thread
  // count. The cluster is the only shared state; its eligibility caches are
  // pre-warmed here so concurrent runs stay on the shared-lock read path.
  if (runs > 1 && ExperimentThreads() > 1 && !InParallelExperimentLoop()) {
    PrewarmClusterForTrace(cluster, trace);
  }
  ParallelExperimentLoop(runs, [&](std::size_t i) {
    RunOptions run_options = options;
    run_options.config.seed = base_seed + i;
    if (runs > 1 && run_options.obs.enabled()) {
      // One observability file set per seed: concurrent runs must not
      // interleave into a shared stream.
      ObsOptions& o = run_options.obs;
      const std::uint64_t seed = run_options.config.seed;
      if (!o.trace_chrome.empty()) {
        o.trace_chrome = SeedSuffixedPath(o.trace_chrome, seed);
      }
      if (!o.trace_jsonl.empty()) {
        o.trace_jsonl = SeedSuffixedPath(o.trace_jsonl, seed);
      }
      if (!o.timeseries_tsv.empty()) {
        o.timeseries_tsv = SeedSuffixedPath(o.timeseries_tsv, seed);
      }
    }
    reports_[i] = RunSimulation(trace, cluster, run_options);
  });
}

double RepeatedRuns::MeanResponsePercentile(
    double p, metrics::ClassFilter cf, metrics::ConstraintFilter kf) const {
  double sum = 0;
  for (const auto& report : reports_) {
    auto values = report.ResponseTimes(cf, kf);
    sum += metrics::Percentile(values, p);
  }
  return sum / static_cast<double>(reports_.size());
}

double RepeatedRuns::MeanQueuingPercentile(double p, metrics::ClassFilter cf,
                                           metrics::ConstraintFilter kf) const {
  double sum = 0;
  for (const auto& report : reports_) {
    auto values = report.QueuingDelays(cf, kf);
    sum += metrics::Percentile(values, p);
  }
  return sum / static_cast<double>(reports_.size());
}

double RepeatedRuns::MeanUtilization() const {
  double sum = 0;
  for (const auto& report : reports_) sum += report.Utilization();
  return sum / static_cast<double>(reports_.size());
}

metrics::SchedulerCounters AggregateCounters(
    const std::vector<metrics::SimReport>& reports) {
  metrics::SchedulerCounters sum;
  for (const auto& r : reports) {
    const metrics::SchedulerCounters& c = r.counters;
    sum.probes_sent += c.probes_sent;
    sum.probes_cancelled += c.probes_cancelled;
    sum.tasks_reordered_crv += c.tasks_reordered_crv;
    sum.tasks_reordered_srpt += c.tasks_reordered_srpt;
    sum.tasks_stolen += c.tasks_stolen;
    sum.soft_constraints_relaxed += c.soft_constraints_relaxed;
    sum.tasks_admission_rejected += c.tasks_admission_rejected;
    sum.heartbeats += c.heartbeats;
    sum.crv_reorder_rounds += c.crv_reorder_rounds;
    sum.placement_spread_violations += c.placement_spread_violations;
    sum.placement_colocate_misses += c.placement_colocate_misses;
    sum.probes_declined_placement += c.probes_declined_placement;
    sum.machine_failures += c.machine_failures;
    sum.tasks_rescheduled_failure += c.tasks_rescheduled_failure;
    sum.probes_bounced += c.probes_bounced;
    sum.sticky_fetch_redispatches += c.sticky_fetch_redispatches;
    sum.placement_dead_fallbacks += c.placement_dead_fallbacks;
    sum.net_messages_sent += c.net_messages_sent;
    sum.net_messages_dropped += c.net_messages_dropped;
    sum.net_messages_duplicated += c.net_messages_duplicated;
    sum.net_messages_expired += c.net_messages_expired;
    sum.rpc_retries += c.rpc_retries;
    sum.rpc_failures += c.rpc_failures;
    sum.elastic_provisions += c.elastic_provisions;
    sum.elastic_commissions += c.elastic_commissions;
    sum.elastic_drains += c.elastic_drains;
    sum.elastic_retires_graceful += c.elastic_retires_graceful;
    sum.elastic_retires_forced += c.elastic_retires_forced;
    sum.elastic_reclamations += c.elastic_reclamations;
    sum.elastic_tasks_redispatched += c.elastic_tasks_redispatched;
    sum.elastic_scale_up_decisions += c.elastic_scale_up_decisions;
    sum.elastic_scale_down_decisions += c.elastic_scale_down_decisions;
    sum.elastic_crv_shaped_picks += c.elastic_crv_shaped_picks;
    sum.elastic_warmup_seconds += c.elastic_warmup_seconds;
    sum.elastic_wasted_warmup_seconds += c.elastic_wasted_warmup_seconds;
    sum.tenant_admits += c.tenant_admits;
    sum.tenant_downgrades += c.tenant_downgrades;
    sum.tenant_rejects += c.tenant_rejects;
    sum.tenant_slo_jobs += c.tenant_slo_jobs;
    sum.tenant_slo_attained += c.tenant_slo_attained;
    sum.tenant_slo_at_risk += c.tenant_slo_at_risk;
    sum.tenant_priority_promotions += c.tenant_priority_promotions;
    sum.preemptions_issued += c.preemptions_issued;
    sum.preemption_requeues += c.preemption_requeues;
    sum.preemptions_blocked_guard += c.preemptions_blocked_guard;
    sum.preemptions_blocked_cap += c.preemptions_blocked_cap;
    sum.preemptions_blocked_lifecycle += c.preemptions_blocked_lifecycle;
    sum.preemption_restart_seconds += c.preemption_restart_seconds;
    sum.preemption_lost_seconds += c.preemption_lost_seconds;
    sum.fed_gossip_published += c.fed_gossip_published;
    sum.fed_gossip_applied += c.fed_gossip_applied;
    sum.fed_gossip_stale_dropped += c.fed_gossip_stale_dropped;
    sum.fed_offloads += c.fed_offloads;
    sum.fed_offloads_blocked_stale += c.fed_offloads_blocked_stale;
    sum.fed_cross_shard_probes += c.fed_cross_shard_probes;
    sum.fed_bind_attempts += c.fed_bind_attempts;
    sum.fed_bind_accepts += c.fed_bind_accepts;
    sum.fed_bind_rejects += c.fed_bind_rejects;
    sum.fed_territory_fallbacks += c.fed_territory_fallbacks;
    sum.power_parks += c.power_parks;
    sum.power_wakes += c.power_wakes;
    sum.power_demand_wakes += c.power_demand_wakes;
    sum.power_dvfs_raises += c.power_dvfs_raises;
    sum.power_dvfs_lowers += c.power_dvfs_lowers;
    sum.power_park_vetoes_coverage += c.power_park_vetoes_coverage;
    sum.power_park_vetoes_floor += c.power_park_vetoes_floor;
    sum.power_wake_decisions += c.power_wake_decisions;
    sum.power_parks_instead_of_retire += c.power_parks_instead_of_retire;
    sum.packed_tasks += c.packed_tasks;
    sum.pack_fit_rejections += c.pack_fit_rejections;
    sum.pack_demand_clamped += c.pack_demand_clamped;
    sum.gangs_placed += c.gangs_placed;
    sum.gang_commits += c.gang_commits;
    sum.gang_aborts += c.gang_aborts;
    sum.gang_retry_waits += c.gang_retry_waits;
    sum.gangs_degraded += c.gangs_degraded;
    sum.malleable_jobs += c.malleable_jobs;
    sum.malleable_expands += c.malleable_expands;
    sum.malleable_shrinks += c.malleable_shrinks;
    sum.malleable_min_hits += c.malleable_min_hits;
    sum.dag_jobs += c.dag_jobs;
    sum.dag_tasks_released += c.dag_tasks_released;
    sum.deadline_jobs += c.deadline_jobs;
    sum.deadline_misses += c.deadline_misses;
    sum.deadline_promotions += c.deadline_promotions;
  }
  return sum;
}

}  // namespace phoenix::runner
