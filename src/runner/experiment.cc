#include "runner/experiment.h"

#include "runner/parallel.h"
#include "runner/registry.h"
#include "sim/engine.h"
#include "util/check.h"

namespace phoenix::runner {

metrics::SimReport RunSimulation(const trace::Trace& trace,
                                 const cluster::Cluster& cluster,
                                 const RunOptions& options) {
  sim::Engine engine;
  auto scheduler =
      MakeScheduler(options.scheduler, engine, cluster, options.config);
  scheduler->SubmitTrace(trace);
  engine.Run();
  PHOENIX_CHECK_MSG(engine.Empty(), "event queue failed to drain");
  return scheduler->BuildReport();
}

RepeatedRuns::RepeatedRuns(const trace::Trace& trace,
                           const cluster::Cluster& cluster, RunOptions options,
                           std::size_t runs) {
  PHOENIX_CHECK(runs > 0);
  reports_.resize(runs);
  const std::uint64_t base_seed = options.config.seed;
  // Each run owns its engine, scheduler and RNG (seed + i) and writes only
  // its own report slot, so the fan-out is deterministic for any thread
  // count. The cluster is the only shared state; its eligibility caches are
  // pre-warmed here so concurrent runs stay on the shared-lock read path.
  if (runs > 1 && ExperimentThreads() > 1 && !InParallelExperimentLoop()) {
    PrewarmClusterForTrace(cluster, trace);
  }
  ParallelExperimentLoop(runs, [&](std::size_t i) {
    RunOptions run_options = options;
    run_options.config.seed = base_seed + i;
    reports_[i] = RunSimulation(trace, cluster, run_options);
  });
}

double RepeatedRuns::MeanResponsePercentile(
    double p, metrics::ClassFilter cf, metrics::ConstraintFilter kf) const {
  double sum = 0;
  for (const auto& report : reports_) {
    auto values = report.ResponseTimes(cf, kf);
    sum += metrics::Percentile(values, p);
  }
  return sum / static_cast<double>(reports_.size());
}

double RepeatedRuns::MeanQueuingPercentile(double p, metrics::ClassFilter cf,
                                           metrics::ConstraintFilter kf) const {
  double sum = 0;
  for (const auto& report : reports_) {
    auto values = report.QueuingDelays(cf, kf);
    sum += metrics::Percentile(values, p);
  }
  return sum / static_cast<double>(reports_.size());
}

double RepeatedRuns::MeanUtilization() const {
  double sum = 0;
  for (const auto& report : reports_) sum += report.Utilization();
  return sum / static_cast<double>(reports_.size());
}

}  // namespace phoenix::runner
