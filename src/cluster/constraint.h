// Task placement constraints.
//
// A constraint is a predicate (attribute, operator, value) over a machine's
// attribute vector, with a hard/soft classification (paper §III-A): hard
// constraints must be satisfied for the task to run; soft constraints may be
// relaxed by admission control at a performance penalty.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/attributes.h"

namespace phoenix::cluster {

/// Comparison operators allowed in the traces (paper §V-A: <, >, =).
enum class ConstraintOp : std::uint8_t { kLess = 0, kGreater, kEqual };

std::string_view OpName(ConstraintOp op);

struct Constraint {
  Attr attr = Attr::kArch;
  ConstraintOp op = ConstraintOp::kEqual;
  std::int32_t value = 0;
  bool hard = true;

  /// Does a machine value satisfy this predicate?
  bool Satisfies(std::int32_t machine_value) const {
    switch (op) {
      case ConstraintOp::kLess: return machine_value < value;
      case ConstraintOp::kGreater: return machine_value > value;
      case ConstraintOp::kEqual: return machine_value == value;
    }
    return false;
  }

  bool operator==(const Constraint&) const = default;

  /// "Kernel Version > 2 (hard)"
  std::string ToString() const;
};

/// A task's constraint set: at most kMaxConstraintsPerTask entries with
/// distinct attributes (matching the paper's 1..6 constraints per job).
inline constexpr std::size_t kMaxConstraintsPerTask = 6;

class ConstraintSet {
 public:
  ConstraintSet() = default;
  explicit ConstraintSet(std::vector<Constraint> constraints);

  void Add(const Constraint& c);

  bool empty() const { return constraints_.empty(); }
  std::size_t size() const { return constraints_.size(); }
  const Constraint& operator[](std::size_t i) const { return constraints_[i]; }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  auto begin() const { return constraints_.begin(); }
  auto end() const { return constraints_.end(); }

  /// True if any constraint is hard.
  bool HasHard() const;
  /// True if any constraint is soft.
  bool HasSoft() const;

  /// A copy with the soft constraints removed (used by admission control
  /// when negotiating an unsatisfiable request down to its hard core).
  ConstraintSet HardOnly() const;

  /// A copy with the single soft constraint at `index` removed.
  ConstraintSet WithoutConstraint(std::size_t index) const;

  bool operator==(const ConstraintSet&) const = default;

  std::string ToString() const;

 private:
  std::vector<Constraint> constraints_;
};

}  // namespace phoenix::cluster
