#include "cluster/machine.h"

#include "util/format.h"

namespace phoenix::cluster {

std::string Machine::ToString() const {
  std::string out = util::StrFormat("machine %u [", id);
  for (std::size_t a = 0; a < kNumAttrs; ++a) {
    if (a > 0) out += ", ";
    const auto name = AttrName(static_cast<Attr>(a));
    out += util::StrFormat("%.*s=%d", static_cast<int>(name.size()),
                           name.data(), attrs[a]);
  }
  return out + "]";
}

}  // namespace phoenix::cluster
