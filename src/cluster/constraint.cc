#include "cluster/constraint.h"

#include "util/check.h"
#include "util/format.h"

namespace phoenix::cluster {

std::string_view OpName(ConstraintOp op) {
  switch (op) {
    case ConstraintOp::kLess: return "<";
    case ConstraintOp::kGreater: return ">";
    case ConstraintOp::kEqual: return "=";
  }
  return "?";
}

std::string Constraint::ToString() const {
  return util::StrFormat("%.*s %.*s %d (%s)",
                         static_cast<int>(AttrName(attr).size()),
                         AttrName(attr).data(),
                         static_cast<int>(OpName(op).size()),
                         OpName(op).data(), value, hard ? "hard" : "soft");
}

ConstraintSet::ConstraintSet(std::vector<Constraint> constraints) {
  for (const auto& c : constraints) Add(c);
}

void ConstraintSet::Add(const Constraint& c) {
  PHOENIX_CHECK_MSG(constraints_.size() < kMaxConstraintsPerTask,
                    "a task carries at most 6 constraints");
  for (const auto& existing : constraints_) {
    PHOENIX_CHECK_MSG(existing.attr != c.attr,
                      "duplicate attribute in constraint set");
  }
  constraints_.push_back(c);
}

bool ConstraintSet::HasHard() const {
  for (const auto& c : constraints_)
    if (c.hard) return true;
  return false;
}

bool ConstraintSet::HasSoft() const {
  for (const auto& c : constraints_)
    if (!c.hard) return true;
  return false;
}

ConstraintSet ConstraintSet::HardOnly() const {
  ConstraintSet out;
  for (const auto& c : constraints_)
    if (c.hard) out.Add(c);
  return out;
}

ConstraintSet ConstraintSet::WithoutConstraint(std::size_t index) const {
  PHOENIX_CHECK(index < constraints_.size());
  ConstraintSet out;
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    if (i != index) out.Add(constraints_[i]);
  }
  return out;
}

std::string ConstraintSet::ToString() const {
  if (constraints_.empty()) return "{unconstrained}";
  std::string out = "{";
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    if (i > 0) out += ", ";
    out += constraints_[i].ToString();
  }
  return out + "}";
}

}  // namespace phoenix::cluster
