// The cluster: a fixed fleet of heterogeneous machines plus a predicate
// index for fast constraint matching.
//
// Probe routing must answer "give me k random machines satisfying this
// constraint set" millions of times per run, so the cluster precomputes one
// bitset per (attribute, operator, value) predicate over the small value
// domains; a constraint set's candidate pool is the AND of its predicates'
// bitsets. Pools are memoized per distinct constraint set.
//
// The memoization is safe under concurrent const access: the parallel
// experiment runner shares one Cluster across simultaneous seeded runs, so
// lookups take a shared lock and cold keys are inserted under an exclusive
// lock (std::map nodes are stable, so returned references stay valid
// after the lock is released). Pre-warming via
// runner::PrewarmClusterForTrace keeps the hot path on the shared lock.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "cluster/constraint.h"
#include "cluster/machine.h"
#include "util/bitset.h"
#include "util/rng.h"

namespace phoenix::cluster {

/// Encodes (attr, op, value) into a single ordered key. Attribute values in
/// this codebase are small non-negative integers (see AttrCatalog), so 16
/// bits are plenty. Shared by the cluster's predicate cache and the
/// membership view's eligible-pool cache so both key the same way.
std::uint32_t EncodePredicate(const Constraint& c);

class Cluster {
 public:
  explicit Cluster(std::vector<Machine> machines);

  std::size_t size() const { return machines_.size(); }
  const Machine& machine(MachineId id) const { return machines_[id]; }
  const std::vector<Machine>& machines() const { return machines_; }

  /// Number of distinct racks (failure domains). Machines built without
  /// rack assignment (kInvalidRack) count as one shared pseudo-rack.
  std::size_t num_racks() const { return num_racks_; }
  RackId rack_of(MachineId id) const { return machines_[id].rack; }

  /// Bitset of machines satisfying one predicate. O(1) after construction.
  /// Predicates with values outside the attribute's domain return a
  /// domain-clamped answer (e.g. "> max_value" yields the empty set).
  const util::Bitset& Satisfying(const Constraint& c) const;

  /// Bitset of machines satisfying every constraint in the set (memoized).
  /// The unconstrained set returns the all-ones bitset.
  const util::Bitset& Satisfying(const ConstraintSet& cs) const;

  /// Number of machines satisfying the set.
  std::size_t CountSatisfying(const ConstraintSet& cs) const {
    return Satisfying(cs).Count();
  }

  /// Samples one machine uniformly among those satisfying `cs`;
  /// kInvalidMachine if none exists.
  MachineId SampleSatisfying(const ConstraintSet& cs, util::Rng& rng) const;

  /// Samples `k` machines (with replacement, like Sparrow's power-of-d
  /// probing) among those satisfying `cs`. Returns fewer than k only when
  /// the candidate pool is empty.
  std::vector<MachineId> SampleSatisfying(const ConstraintSet& cs,
                                          std::size_t k,
                                          util::Rng& rng) const;

  /// Samples `k` *distinct* machines satisfying `cs` (used by the
  /// centralized planes). Returns all candidates if fewer than k exist.
  std::vector<MachineId> SampleDistinctSatisfying(const ConstraintSet& cs,
                                                  std::size_t k,
                                                  util::Rng& rng) const;

  /// The satisfying pool as a sorted id vector, memoized alongside the
  /// bitset. Distinct sampling runs millions of times per experiment;
  /// collecting the set bits on every call made each draw O(fleet), so the
  /// collected form is cached once per constraint set.
  const std::vector<std::uint32_t>& SatisfyingIds(const ConstraintSet& cs) const;

  /// Partial Fisher–Yates over a *const* candidate list: replays the exact
  /// draw pattern of shuffling a scratch copy, but tracks only the O(k)
  /// displaced values in a small overlay instead of copying the pool.
  /// Shared by Cluster and MembershipView so both consume identical RNG
  /// streams for identical pools.
  static std::vector<MachineId> SampleDistinctFromIds(
      const std::vector<std::uint32_t>& ids, std::size_t k, util::Rng& rng);

  // Canonical key for memoizing constraint-set pools. hard/soft does not
  // affect matching, so it is excluded. Public so the membership view's
  // per-epoch pool cache can key identically.
  using SetKey = std::vector<std::uint32_t>;
  static SetKey KeyFor(const ConstraintSet& cs);

 private:
  // Lazily built eligibility indices, shared by all runs over this cluster:
  // per-predicate bitsets keyed by the encoded (attr, op, value) triple
  // (the distinct-predicate count is bounded by the small value domains, so
  // each is computed once by a single fleet scan) and per-constraint-set
  // pools. Guarded by `mu` for concurrent const access; held behind a
  // unique_ptr so Cluster stays movable (shared_mutex is not).
  struct EligibilityCaches {
    std::shared_mutex mu;
    std::map<std::uint32_t, util::Bitset> predicates;
    std::map<SetKey, util::Bitset> pools;
    /// Collected set-bit vectors of `pools` entries (see SatisfyingIds).
    std::map<SetKey, std::vector<std::uint32_t>> pool_ids;
  };

  std::vector<Machine> machines_;
  util::Bitset all_;
  std::vector<std::uint32_t> all_ids_;  // 0..n-1, the unconstrained pool
  std::size_t num_racks_ = 1;
  std::unique_ptr<EligibilityCaches> caches_;
};

}  // namespace phoenix::cluster
