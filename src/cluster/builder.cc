#include "cluster/builder.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"
#include "util/rng.h"

namespace phoenix::cluster {

namespace {

/// Draws an index from unnormalized weights[0..n).
std::size_t WeightedDraw(const std::array<double, 8>& weights, std::size_t n,
                         util::Rng& rng) {
  double total = 0;
  for (std::size_t i = 0; i < n; ++i) total += weights[i];
  double x = rng.Uniform(0.0, total);
  for (std::size_t i = 0; i < n; ++i) {
    x -= weights[i];
    if (x <= 0) return i;
  }
  return n - 1;
}

/// Index of the largest weight (the "most common" value used when
/// heterogeneity is dialed down).
std::size_t ArgMax(const std::array<double, 8>& weights, std::size_t n) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (weights[i] > weights[best]) best = i;
  }
  return best;
}

/// Index whose weight-CDF bucket contains quantile q — the value a machine
/// of hardware generation q carries for this attribute.
std::size_t IndexFromQuantile(const std::array<double, 8>& weights,
                              std::size_t n, double q) {
  double total = 0;
  for (std::size_t i = 0; i < n; ++i) total += weights[i];
  double x = q * total;
  for (std::size_t i = 0; i < n; ++i) {
    x -= weights[i];
    if (x <= 0) return i;
  }
  return n - 1;
}

}  // namespace

std::vector<Machine> BuildFleet(const FleetOptions& options) {
  PHOENIX_CHECK_MSG(options.num_machines > 0, "fleet must be non-empty");
  PHOENIX_CHECK_MSG(options.heterogeneity >= 0.0 && options.heterogeneity <= 1.0,
                    "heterogeneity must be in [0,1]");
  util::Rng rng(options.seed ^ 0xc1f651c67c62c6e0ULL);
  const auto& catalog = AttrCatalog();

  std::vector<Machine> fleet;
  fleet.reserve(options.num_machines);
  PHOENIX_CHECK_MSG(options.attribute_correlation >= 0.0 &&
                        options.attribute_correlation <= 1.0,
                    "attribute_correlation must be in [0,1]");
  PHOENIX_CHECK_MSG(options.machines_per_rack > 0,
                    "machines_per_rack must be positive");
  for (std::size_t i = 0; i < options.num_machines; ++i) {
    Machine m;
    m.id = static_cast<MachineId>(i);
    m.rack = static_cast<RackId>(i / options.machines_per_rack);
    const double generation = rng.NextDouble();  // latent hardware vintage
    for (std::size_t a = 0; a < kNumAttrs; ++a) {
      const AttrDomain& domain = catalog[a];
      std::size_t value_index;
      if (!rng.Bernoulli(options.heterogeneity)) {
        value_index = ArgMax(domain.machine_weights, domain.num_values);
      } else if (rng.Bernoulli(options.attribute_correlation)) {
        value_index = IndexFromQuantile(domain.machine_weights,
                                        domain.num_values, generation);
      } else {
        value_index = WeightedDraw(domain.machine_weights, domain.num_values, rng);
      }
      m.attrs[a] = domain.values[value_index];
    }
    // MinDisks and MaxDisks describe the same physical property: keep them
    // consistent on a machine so a "> k disks" and "< k disks" request see
    // the same hardware.
    m.Set(Attr::kMinDisks, m.Get(Attr::kMaxDisks));
    fleet.push_back(m);
  }
  return fleet;
}

Cluster BuildCluster(const FleetOptions& options) {
  return Cluster(BuildFleet(options));
}

}  // namespace phoenix::cluster
