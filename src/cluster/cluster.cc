#include "cluster/cluster.h"

#include <algorithm>
#include <mutex>
#include <set>

#include "util/check.h"

namespace phoenix::cluster {

std::uint32_t EncodePredicate(const Constraint& c) {
  PHOENIX_CHECK_MSG(c.value >= 0 && c.value < (1 << 16),
                    "constraint value out of encodable range");
  return (static_cast<std::uint32_t>(c.attr) << 20) |
         (static_cast<std::uint32_t>(c.op) << 16) |
         static_cast<std::uint32_t>(c.value);
}

Cluster::Cluster(std::vector<Machine> machines)
    : machines_(std::move(machines)), all_(machines_.size()),
      caches_(std::make_unique<EligibilityCaches>()) {
  PHOENIX_CHECK_MSG(!machines_.empty(), "cluster must have at least one machine");
  std::set<RackId> racks;
  for (std::size_t i = 0; i < machines_.size(); ++i) {
    PHOENIX_CHECK_MSG(machines_[i].id == i,
                      "machine ids must be dense and ordered");
    racks.insert(machines_[i].rack);
  }
  num_racks_ = racks.size();
  all_.SetAll();
  all_ids_.resize(machines_.size());
  for (std::size_t i = 0; i < all_ids_.size(); ++i) {
    all_ids_[i] = static_cast<std::uint32_t>(i);
  }
}

// Both caches follow the same discipline: shared-lock lookup, then (miss)
// compute outside any lock and insert under an exclusive lock, keeping the
// existing entry if another thread raced us there. std::map guarantees node
// stability, so the returned reference outlives the lock; entries are never
// erased for the life of the cluster.
const util::Bitset& Cluster::Satisfying(const Constraint& c) const {
  const std::uint32_t key = EncodePredicate(c);
  {
    std::shared_lock lock(caches_->mu);
    const auto it = caches_->predicates.find(key);
    if (it != caches_->predicates.end()) return it->second;
  }
  util::Bitset bits(machines_.size());
  for (const auto& m : machines_) {
    if (m.Satisfies(c)) bits.Set(m.id);
  }
  std::unique_lock lock(caches_->mu);
  return caches_->predicates.emplace(key, std::move(bits)).first->second;
}

Cluster::SetKey Cluster::KeyFor(const ConstraintSet& cs) {
  SetKey key;
  key.reserve(cs.size());
  for (const auto& c : cs) key.push_back(EncodePredicate(c));
  std::sort(key.begin(), key.end());
  return key;
}

const util::Bitset& Cluster::Satisfying(const ConstraintSet& cs) const {
  if (cs.empty()) return all_;
  const SetKey key = KeyFor(cs);
  {
    std::shared_lock lock(caches_->mu);
    const auto it = caches_->pools.find(key);
    if (it != caches_->pools.end()) return it->second;
  }
  // Compute with no lock held: the per-predicate lookups below take the
  // same mutex themselves.
  util::Bitset pool = Satisfying(cs[0]);
  for (std::size_t i = 1; i < cs.size(); ++i) pool.AndWith(Satisfying(cs[i]));
  std::unique_lock lock(caches_->mu);
  return caches_->pools.emplace(key, std::move(pool)).first->second;
}

MachineId Cluster::SampleSatisfying(const ConstraintSet& cs,
                                    util::Rng& rng) const {
  const std::size_t bit = Satisfying(cs).SampleSetBit(rng);
  return bit == SIZE_MAX ? kInvalidMachine : static_cast<MachineId>(bit);
}

std::vector<MachineId> Cluster::SampleSatisfying(const ConstraintSet& cs,
                                                 std::size_t k,
                                                 util::Rng& rng) const {
  std::vector<MachineId> out;
  const util::Bitset& pool = Satisfying(cs);
  if (!pool.Any()) return out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    out.push_back(static_cast<MachineId>(pool.SampleSetBit(rng)));
  }
  return out;
}

const std::vector<std::uint32_t>& Cluster::SatisfyingIds(
    const ConstraintSet& cs) const {
  if (cs.empty()) return all_ids_;
  const SetKey key = KeyFor(cs);
  {
    std::shared_lock lock(caches_->mu);
    const auto it = caches_->pool_ids.find(key);
    if (it != caches_->pool_ids.end()) return it->second;
  }
  std::vector<std::uint32_t> ids;
  Satisfying(cs).CollectSetBits(ids);
  std::unique_lock lock(caches_->mu);
  return caches_->pool_ids.emplace(key, std::move(ids)).first->second;
}

std::vector<MachineId> Cluster::SampleDistinctFromIds(
    const std::vector<std::uint32_t>& ids, std::size_t k, util::Rng& rng) {
  if (ids.size() <= k) {
    return {ids.begin(), ids.end()};
  }
  // Partial Fisher–Yates, replayed against the shared (immutable) candidate
  // list. A real shuffle would swap a[i] <-> a[j] on a scratch copy; here
  // the O(k) displaced values live in a tiny overlay instead. Slot i is
  // never read after step i (future draws land in [i+1, n)), so only the
  // write into slot j needs recording. The draw sequence — one
  // NextBounded(n - i) per step — is identical to the copying version.
  std::vector<std::pair<std::size_t, std::uint32_t>> overlay;
  overlay.reserve(k);
  const auto read = [&](std::size_t idx) {
    for (const auto& [at, value] : overlay) {
      if (at == idx) return value;
    }
    return ids[idx];
  };
  std::vector<MachineId> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.NextBounded(ids.size() - i));
    const std::uint32_t taken = read(j);  // a[j] before the swap -> a[i]
    if (j != i) {
      const std::uint32_t displaced = read(i);  // a[i] moves into slot j
      bool updated = false;
      for (auto& [at, value] : overlay) {
        if (at == j) {
          value = displaced;
          updated = true;
          break;
        }
      }
      if (!updated) overlay.emplace_back(j, displaced);
    }
    out.push_back(static_cast<MachineId>(taken));
  }
  return out;
}

std::vector<MachineId> Cluster::SampleDistinctSatisfying(
    const ConstraintSet& cs, std::size_t k, util::Rng& rng) const {
  return SampleDistinctFromIds(SatisfyingIds(cs), k, rng);
}

}  // namespace phoenix::cluster
