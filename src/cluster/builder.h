// Fleet generation.
//
// Builds a heterogeneous machine fleet whose attribute mix follows the
// machine_weights in the attribute catalog. With the default catalog the
// resulting supply curve matches Figure 6 of the paper: roughly 12 % of
// nodes satisfy a representative 2-constraint request, decaying to ~5 % at
// 6 constraints.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"

namespace phoenix::cluster {

struct FleetOptions {
  std::size_t num_machines = 1000;
  std::uint64_t seed = 1;
  /// Scales heterogeneity: 1.0 uses the catalog weights as-is; 0.0 collapses
  /// every attribute to its most common value (homogeneous fleet). Used by
  /// ablation benches.
  double heterogeneity = 1.0;
  /// Machines per rack (failure domain). Racks are filled in machine-id
  /// order; the last rack may be partial.
  std::size_t machines_per_rack = 40;
  /// Cross-attribute correlation in [0,1]: each machine draws a latent
  /// "generation" quantile; with this probability an attribute takes the
  /// value at that quantile of its own distribution instead of an
  /// independent draw. Real fleets are bought in generations — new machines
  /// have more cores AND faster NICs AND newer kernels — which is what
  /// keeps the satisfying pool of a 6-constraint request near 5 % of nodes
  /// (paper Fig 6) instead of the vanishing product of marginals.
  double attribute_correlation = 0.6;
};

/// Generates the machine list for a fleet.
std::vector<Machine> BuildFleet(const FleetOptions& options);

/// Convenience: generates machines and wraps them in a Cluster.
Cluster BuildCluster(const FleetOptions& options);

}  // namespace phoenix::cluster
