// A machine's static attribute vector.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "cluster/attributes.h"
#include "cluster/constraint.h"

namespace phoenix::cluster {

using MachineId = std::uint32_t;
inline constexpr MachineId kInvalidMachine = 0xffffffffu;

using RackId = std::uint32_t;
inline constexpr RackId kInvalidRack = 0xffffffffu;

/// Immutable hardware/software description of one worker machine. Runtime
/// queue state lives in the scheduler layer (sched::WorkerState); this struct
/// is what constraints are matched against.
struct Machine {
  MachineId id = kInvalidMachine;
  /// Failure domain for placement preferences (§III-A: jobs spread replicas
  /// across racks for fault tolerance or co-locate for data locality).
  RackId rack = kInvalidRack;
  std::array<std::int32_t, kNumAttrs> attrs{};

  std::int32_t Get(Attr attr) const {
    return attrs[static_cast<std::size_t>(attr)];
  }
  void Set(Attr attr, std::int32_t value) {
    attrs[static_cast<std::size_t>(attr)] = value;
  }

  bool Satisfies(const Constraint& c) const { return c.Satisfies(Get(c.attr)); }

  bool Satisfies(const ConstraintSet& cs) const {
    for (const auto& c : cs) {
      if (!Satisfies(c)) return false;
    }
    return true;
  }

  std::string ToString() const;
};

}  // namespace phoenix::cluster
