// Multi-dimensional capacity vectors derived from machine attributes.
//
// The packing subsystem needs each machine's (cores, memory, gpus) capacity.
// Rather than inventing new machine state, capacity is a pure function of
// the attribute vector the builder already draws: cores and memory come
// straight from kNumCores / kMinMemory, and GPUs are carried by the newer
// platform generations (families 2 and 3), giving the fleet a realistically
// scarce accelerator tier without a new attribute or RNG draw.
#pragma once

#include "cluster/cluster.h"
#include "cluster/machine.h"
#include "packing/vector.h"

namespace phoenix::cluster {

/// The packing capacity of one machine.
packing::ResourceVector CapacityOf(const Machine& m);

/// Component-wise max of CapacityOf over the fleet — the clamp target for
/// demands no machine could ever host.
packing::ResourceVector MaxCapacity(const Cluster& cluster);

/// Component-wise sum of CapacityOf over the fleet.
packing::ResourceVector TotalCapacity(const Cluster& cluster);

}  // namespace phoenix::cluster
