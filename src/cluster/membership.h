// Cluster membership view: which machines of the fixed universe are
// currently part of the schedulable fleet.
//
// The elastic subsystem models capacity change over an immutable machine
// universe (the Cluster): every machine that could ever join the fleet is
// built up front, and a MembershipView tracks each one through the
// lifecycle
//
//   parked -> provisioning -> active -> draining -> retired
//                                          (retired -> provisioning re-leases)
//
// Power management (src/power) adds the return edges active -> parked and
// draining -> parked: an idle machine can be put into deep sleep, and a
// drained machine can sleep instead of retiring, to be woken later at its
// S3-exit latency instead of a full provisioning warm-up.
//
// Only *active* machines accept new bindings (probes, bound tasks, steals);
// a draining machine finishes the bound work it already holds and nothing
// else. The view layers a second eligibility cache over the cluster's
// per-predicate bitsets: an eligible pool is (satisfying pool AND bindable
// bitset), memoized per constraint set and invalidated wholesale whenever
// membership changes (the epoch counter). Lookups follow the same
// shared_mutex discipline as Cluster's caches, so the parallel experiment
// runner can share a view-less cluster while elastic runs each own a view.
//
// Determinism contract: the sampling helpers mirror Cluster's algorithms
// bit for bit — a view with every machine active consumes the identical RNG
// stream as the membership-free path, which is what keeps static-fleet runs
// byte-identical with the elastic code linked in.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string_view>
#include <vector>

#include "cluster/cluster.h"

namespace phoenix::cluster {

enum class MachineLifecycle : std::uint8_t {
  kParked,        // in the universe, not leased; invisible to schedulers
  kProvisioning,  // lease started, warming up; not yet bindable
  kActive,        // full fleet member; accepts new bindings
  kDraining,      // finishes held bound work; accepts nothing new
  kRetired,       // lease ended; may be re-leased (-> provisioning)
};

std::string_view LifecycleName(MachineLifecycle state);

class MembershipView {
 public:
  /// Machines with id < `guaranteed_active` start active and form the
  /// guaranteed base fleet (never drained by the elasticity controller);
  /// the rest start parked. The view borrows the cluster, which must
  /// outlive it.
  MembershipView(const Cluster& cluster, std::size_t guaranteed_active);

  MembershipView(const MembershipView&) = delete;
  MembershipView& operator=(const MembershipView&) = delete;

  const Cluster& cluster() const { return cluster_; }
  std::size_t size() const { return states_.size(); }
  std::size_t guaranteed_active() const { return guaranteed_; }

  MachineLifecycle state(MachineId id) const { return states_[id]; }
  /// Accepts new bindings (== active).
  bool Bindable(MachineId id) const {
    return states_[id] == MachineLifecycle::kActive;
  }
  /// Holds fleet capacity (active or draining).
  bool InService(MachineId id) const {
    return states_[id] == MachineLifecycle::kActive ||
           states_[id] == MachineLifecycle::kDraining;
  }

  std::size_t bindable_count() const { return bindable_count_; }
  std::size_t in_service_count() const { return in_service_count_; }
  std::size_t parked_count() const { return parked_count_; }
  /// Bumped on every SetState; pool caches key their validity on it.
  std::uint64_t epoch() const { return epoch_; }

  /// Advances `id` through the lifecycle. Legal transitions: parked or
  /// retired -> provisioning, provisioning -> active, active -> draining,
  /// draining -> retired, and active/draining -> parked (power management
  /// returns machines to deep sleep). Anything else aborts (the controllers
  /// own the policy; the view enforces the state machine).
  void SetState(MachineId id, MachineLifecycle next);

  /// Bindable machines satisfying `cs`: the cluster pool AND the bindable
  /// bitset, memoized until the next membership change.
  const util::Bitset& EligiblePool(const ConstraintSet& cs) const;
  std::size_t CountEligible(const ConstraintSet& cs) const {
    return EligiblePool(cs).Count();
  }
  /// Bindable machines satisfying the single predicate.
  std::size_t CountEligible(const Constraint& c) const;

  /// Machines in the *guaranteed base fleet* satisfying `cs`. Admission
  /// control checks satisfiability against this: the controller never
  /// drains the base fleet, so a constraint set admissible here stays
  /// eligible somewhere for the whole run regardless of churn.
  std::size_t CountAdmissible(const ConstraintSet& cs) const;
  std::size_t CountAdmissible(const Constraint& c) const;

  /// Parked machines satisfying the single predicate, memoized per epoch.
  /// Wake-aware CRV supply counts these at a wake-cost discount: sleeping
  /// capacity that could cover a hot predicate is still supply.
  std::size_t CountParkedSatisfying(const Constraint& c) const;

  // Sampling over the eligible pool. These mirror Cluster::Sample* exactly
  // (same draw pattern per call) — see the determinism contract above.
  MachineId SampleEligible(const ConstraintSet& cs, util::Rng& rng) const;
  std::vector<MachineId> SampleEligible(const ConstraintSet& cs,
                                        std::size_t k, util::Rng& rng) const;
  std::vector<MachineId> SampleDistinctEligible(const ConstraintSet& cs,
                                                std::size_t k,
                                                util::Rng& rng) const;

  /// The eligible pool as a sorted id vector, memoized per epoch alongside
  /// the bitset (same motivation as Cluster::SatisfyingIds).
  const std::vector<std::uint32_t>& EligibleIds(const ConstraintSet& cs) const;

 private:
  const Cluster& cluster_;
  std::size_t guaranteed_ = 0;
  std::vector<MachineLifecycle> states_;
  util::Bitset bindable_;
  util::Bitset parked_;
  std::size_t bindable_count_ = 0;
  std::size_t in_service_count_ = 0;
  std::size_t parked_count_ = 0;
  std::uint64_t epoch_ = 0;

  // Per-epoch eligible pools (cluster pool AND bindable), cleared on every
  // membership change. Same discipline as Cluster::EligibilityCaches:
  // shared-lock lookup, compute unlocked, exclusive-lock insert; map nodes
  // are stable so returned references survive until the epoch flips (the
  // simulation thread that flips epochs is the one consuming the refs, so
  // no reference outlives its epoch).
  struct PoolCache {
    std::shared_mutex mu;
    std::map<Cluster::SetKey, util::Bitset> pools;
    std::map<Cluster::SetKey, std::vector<std::uint32_t>> pool_ids;
    std::map<std::uint32_t, std::size_t> predicate_counts;
    std::map<std::uint32_t, std::size_t> parked_predicate_counts;
  };
  std::unique_ptr<PoolCache> cache_;
};

}  // namespace phoenix::cluster
