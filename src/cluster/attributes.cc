#include "cluster/attributes.h"

namespace phoenix::cluster {

std::string_view AttrName(Attr attr) {
  switch (attr) {
    case Attr::kArch: return "Architecture (ISA)";
    case Attr::kNumCores: return "Number of Cores";
    case Attr::kEthernetSpeed: return "Ethernet Speed";
    case Attr::kMaxDisks: return "Maximum Disks";
    case Attr::kMinDisks: return "Minimum Disks";
    case Attr::kKernelVersion: return "Kernel Version";
    case Attr::kPlatformFamily: return "Platform Family";
    case Attr::kCpuClock: return "CPU Clock Speed";
    case Attr::kMinMemory: return "Minimum Memory";
  }
  return "?";
}

std::string_view CrvDimName(CrvDim dim) {
  switch (dim) {
    case CrvDim::kCpu: return "cpu";
    case CrvDim::kMem: return "mem";
    case CrvDim::kDisk: return "disk";
    case CrvDim::kOs: return "os";
    case CrvDim::kClock: return "clock";
    case CrvDim::kNet: return "net_bandwidth";
  }
  return "?";
}

const std::array<AttrDomain, kNumAttrs>& AttrCatalog() {
  // Machine-mix weights are chosen so that common requests (x86, few cores,
  // 1 Gbps) are widely satisfiable while tail requests (POWER, 32 cores,
  // 40 Gbps) are scarce — reproducing Fig 6's supply curve where only ~12 %
  // of nodes satisfy a typical 2-constraint set and ~5 % a 6-constraint set.
  static const std::array<AttrDomain, kNumAttrs> catalog = {{
      // kArch: 0=x86, 1=arm, 2=power
      {Attr::kArch, 3, {0, 1, 2}, {0.72, 0.20, 0.08}, true},
      // kNumCores
      {Attr::kNumCores, 5, {2, 4, 8, 16, 32}, {0.10, 0.30, 0.35, 0.18, 0.07},
       false},
      // kEthernetSpeed (Gbps)
      {Attr::kEthernetSpeed, 3, {1, 10, 40}, {0.55, 0.38, 0.07}, false},
      // kMaxDisks (number of spindles/SSDs)
      {Attr::kMaxDisks, 5, {1, 2, 4, 8, 12}, {0.18, 0.30, 0.28, 0.16, 0.08},
       false},
      // kMinDisks shares the same physical property / domain
      {Attr::kMinDisks, 5, {1, 2, 4, 8, 12}, {0.18, 0.30, 0.28, 0.16, 0.08},
       false},
      // kKernelVersion (major version, ordered)
      {Attr::kKernelVersion, 4, {1, 2, 3, 4}, {0.12, 0.33, 0.40, 0.15}, false},
      // kPlatformFamily (categorical chipset generation)
      {Attr::kPlatformFamily, 4, {0, 1, 2, 3}, {0.35, 0.30, 0.23, 0.12}, true},
      // kCpuClock (units of 100 MHz: 2.0 .. 3.6 GHz)
      {Attr::kCpuClock, 5, {20, 24, 28, 32, 36}, {0.15, 0.28, 0.30, 0.18, 0.09},
       false},
      // kMinMemory (GB)
      {Attr::kMinMemory, 5, {16, 32, 64, 128, 256},
       {0.15, 0.30, 0.30, 0.17, 0.08}, false},
  }};
  return catalog;
}

const std::array<double, kNumAttrs>& AttrDemandShares() {
  // Table II "% Share", renormalized without the job-level "Number of
  // Nodes" row (0.28 %) and with a 0.50 % share granted to the synthetic
  // memory attribute. Order matches enum Attr.
  static const std::array<double, kNumAttrs> shares = {
      80.64,  // Architecture (ISA)
      18.28,  // Number of Cores
      0.18,   // Ethernet Speed
      8.57,   // Maximum Disks
      0.66,   // Minimum Disks
      0.21,   // Kernel Version
      0.05,   // Platform Family
      0.16,   // CPU Clock Speed
      0.50,   // Minimum Memory (synthetic; see attributes.h)
  };
  return shares;
}

const std::array<double, kNumAttrs>& AttrPaperSlowdowns() {
  static const std::array<double, kNumAttrs> slowdowns = {
      2.03,  // Architecture (ISA)
      1.90,  // Number of Cores
      1.91,  // Ethernet Speed
      1.90,  // Maximum Disks
      0.91,  // Minimum Disks
      1.77,  // Kernel Version
      1.77,  // Platform Family
      1.76,  // CPU Clock Speed
      1.50,  // Minimum Memory (no paper row; nominal)
  };
  return slowdowns;
}

}  // namespace phoenix::cluster
