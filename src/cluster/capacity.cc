#include "cluster/capacity.h"

namespace phoenix::cluster {

packing::ResourceVector CapacityOf(const Machine& m) {
  packing::ResourceVector cap;
  cap[packing::PackDim::kCores] = static_cast<double>(m.Get(Attr::kNumCores));
  cap[packing::PackDim::kMemoryGb] =
      static_cast<double>(m.Get(Attr::kMinMemory));
  // Platform families 2 and 3 (the newer ~35 % of the fleet) carry one and
  // two GPUs respectively; older generations have none — a zero-capacity
  // dimension the packing policy must respect.
  const std::int32_t family = m.Get(Attr::kPlatformFamily);
  cap[packing::PackDim::kGpus] = family >= 2 ? family - 1 : 0;
  return cap;
}

packing::ResourceVector MaxCapacity(const Cluster& cluster) {
  packing::ResourceVector max;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const packing::ResourceVector cap =
        CapacityOf(cluster.machine(static_cast<MachineId>(i)));
    for (std::size_t d = 0; d < packing::kNumPackDims; ++d) {
      if (cap.dim(d) > max.dim(d)) max.dim(d) = cap.dim(d);
    }
  }
  return max;
}

packing::ResourceVector TotalCapacity(const Cluster& cluster) {
  packing::ResourceVector total;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    total.Add(CapacityOf(cluster.machine(static_cast<MachineId>(i))));
  }
  return total;
}

}  // namespace phoenix::cluster
