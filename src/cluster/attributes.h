// Machine attribute catalog for the heterogeneous cluster.
//
// The attribute kinds mirror the constraint kinds the paper extracts from
// the Google cluster trace (Table II): ISA/architecture, number of cores,
// ethernet speed, maximum/minimum disks, kernel version, platform family and
// CPU clock speed. We add a minimum-memory attribute so that every dimension
// of the paper's Constraint Resource Vector <cpu, mem, disk, os, clock,
// net_bandwidth> is exercised (Table II has no memory constraint because the
// 2011 trace hashes it away; its share here is kept small).
//
// "Number of Nodes" in Table II is a job-level (gang-size) request rather
// than a per-machine property; it is modeled in the trace layer as the
// job's task count, not as a machine attribute.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace phoenix::cluster {

/// Machine attribute kinds. Values are small integers from the per-kind
/// domain (see AttrDomain); semantics follow Table II of the paper.
enum class Attr : std::uint8_t {
  kArch = 0,          // instruction-set architecture (categorical)
  kNumCores,          // cores per machine
  kEthernetSpeed,     // NIC speed, Gbps
  kMaxDisks,          // number of attached disks (upper-bound requests use <)
  kMinDisks,          // same physical property, lower-bound requests (>)
  kKernelVersion,     // OS kernel major version (categorical, ordered)
  kPlatformFamily,    // chipset / platform generation (categorical)
  kCpuClock,          // CPU clock, units of 100 MHz
  kMinMemory,         // installed DRAM, GB
};

inline constexpr std::size_t kNumAttrs = 9;

/// The paper's CRV dimensions: <cpu, mem, disk, os, clock, net_bandwidth>.
enum class CrvDim : std::uint8_t {
  kCpu = 0,
  kMem,
  kDisk,
  kOs,
  kClock,
  kNet,
};

inline constexpr std::size_t kNumCrvDims = 6;

/// Maps an attribute kind onto the CRV dimension whose demand/supply ratio
/// it contributes to (paper §IV-A).
constexpr CrvDim AttrToCrvDim(Attr attr) {
  switch (attr) {
    case Attr::kArch:
    case Attr::kNumCores:
      return CrvDim::kCpu;
    case Attr::kMinMemory:
      return CrvDim::kMem;
    case Attr::kMaxDisks:
    case Attr::kMinDisks:
      return CrvDim::kDisk;
    case Attr::kKernelVersion:
    case Attr::kPlatformFamily:
      return CrvDim::kOs;
    case Attr::kCpuClock:
      return CrvDim::kClock;
    case Attr::kEthernetSpeed:
      return CrvDim::kNet;
  }
  return CrvDim::kCpu;  // unreachable
}

std::string_view AttrName(Attr attr);
std::string_view CrvDimName(CrvDim dim);

/// Value domain of one attribute kind. Values are drawn from `values`;
/// machine_weights give the (unnormalized) probability that a machine ships
/// with each value, chosen to reproduce a realistically skewed fleet
/// (e.g. x86 dominates the ISA mix).
struct AttrDomain {
  Attr attr;
  std::size_t num_values;
  std::array<std::int32_t, 8> values;
  std::array<double, 8> machine_weights;
  /// True for categorical attributes where only equality constraints make
  /// sense (ISA, platform family).
  bool categorical;
};

/// Returns the catalog of all attribute domains, indexed by Attr.
const std::array<AttrDomain, kNumAttrs>& AttrCatalog();

/// Relative share of constrained tasks requesting each attribute kind,
/// matching the "% Share" column of Table II (renormalized over the machine
/// attributes; the job-level "Number of Nodes" row is excluded).
const std::array<double, kNumAttrs>& AttrDemandShares();

/// Relative slowdown reported in Table II for jobs requesting each kind
/// (used only for reporting comparisons, never by the scheduler).
const std::array<double, kNumAttrs>& AttrPaperSlowdowns();

}  // namespace phoenix::cluster
