#include "cluster/membership.h"

#include <algorithm>
#include <mutex>

#include "util/check.h"

namespace phoenix::cluster {

std::string_view LifecycleName(MachineLifecycle state) {
  switch (state) {
    case MachineLifecycle::kParked: return "parked";
    case MachineLifecycle::kProvisioning: return "provisioning";
    case MachineLifecycle::kActive: return "active";
    case MachineLifecycle::kDraining: return "draining";
    case MachineLifecycle::kRetired: return "retired";
  }
  return "?";
}

MembershipView::MembershipView(const Cluster& cluster,
                               std::size_t guaranteed_active)
    : cluster_(cluster), guaranteed_(guaranteed_active),
      states_(cluster.size(), MachineLifecycle::kParked),
      bindable_(cluster.size()), parked_(cluster.size()),
      cache_(std::make_unique<PoolCache>()) {
  PHOENIX_CHECK_MSG(guaranteed_active > 0,
                    "the guaranteed base fleet cannot be empty");
  PHOENIX_CHECK_MSG(guaranteed_active <= cluster.size(),
                    "guaranteed base fleet exceeds the machine universe");
  for (std::size_t i = guaranteed_; i < cluster.size(); ++i) {
    parked_.Set(i);
  }
  parked_count_ = cluster.size() - guaranteed_;
  for (std::size_t i = 0; i < guaranteed_; ++i) {
    states_[i] = MachineLifecycle::kActive;
    bindable_.Set(i);
  }
  bindable_count_ = guaranteed_;
  in_service_count_ = guaranteed_;
}

void MembershipView::SetState(MachineId id, MachineLifecycle next) {
  PHOENIX_CHECK(id < states_.size());
  const MachineLifecycle cur = states_[id];
  switch (next) {
    case MachineLifecycle::kProvisioning:
      PHOENIX_CHECK_MSG(cur == MachineLifecycle::kParked ||
                            cur == MachineLifecycle::kRetired,
                        "provision requires a parked or retired machine");
      break;
    case MachineLifecycle::kActive:
      PHOENIX_CHECK_MSG(cur == MachineLifecycle::kProvisioning,
                        "commission requires a provisioning machine");
      break;
    case MachineLifecycle::kDraining:
      PHOENIX_CHECK_MSG(cur == MachineLifecycle::kActive,
                        "drain requires an active machine");
      PHOENIX_CHECK_MSG(id >= guaranteed_,
                        "the guaranteed base fleet is never drained");
      break;
    case MachineLifecycle::kRetired:
      PHOENIX_CHECK_MSG(cur == MachineLifecycle::kDraining,
                        "retire requires a draining machine");
      break;
    case MachineLifecycle::kParked:
      // Power management returns machines to deep sleep: an idle active
      // machine parks directly, and a drained machine parks instead of
      // retiring (it can be woken at S3-exit latency instead of paying a
      // full provisioning warm-up).
      PHOENIX_CHECK_MSG(cur == MachineLifecycle::kActive ||
                            cur == MachineLifecycle::kDraining,
                        "park requires an active or draining machine");
      break;
  }
  states_[id] = next;
  const bool bindable = next == MachineLifecycle::kActive;
  if (bindable != bindable_.Test(id)) {
    if (bindable) {
      bindable_.Set(id);
      ++bindable_count_;
    } else {
      bindable_.Reset(id);
      --bindable_count_;
    }
  }
  if (next == MachineLifecycle::kActive) ++in_service_count_;
  if (next == MachineLifecycle::kRetired) --in_service_count_;
  if (next == MachineLifecycle::kParked) --in_service_count_;
  if (next == MachineLifecycle::kParked) {
    parked_.Set(id);
    ++parked_count_;
  } else if (cur == MachineLifecycle::kParked) {
    parked_.Reset(id);
    --parked_count_;
  }
  ++epoch_;
  // Membership changed: every memoized eligible pool is stale.
  std::unique_lock lock(cache_->mu);
  cache_->pools.clear();
  cache_->pool_ids.clear();
  cache_->predicate_counts.clear();
  cache_->parked_predicate_counts.clear();
}

std::size_t MembershipView::CountParkedSatisfying(const Constraint& c) const {
  const std::uint32_t key = EncodePredicate(c);
  {
    std::shared_lock lock(cache_->mu);
    const auto it = cache_->parked_predicate_counts.find(key);
    if (it != cache_->parked_predicate_counts.end()) return it->second;
  }
  util::Bitset pool = cluster_.Satisfying(c);
  pool.AndWith(parked_);
  const std::size_t count = pool.Count();
  std::unique_lock lock(cache_->mu);
  cache_->parked_predicate_counts.emplace(key, count);
  return count;
}

const util::Bitset& MembershipView::EligiblePool(
    const ConstraintSet& cs) const {
  const Cluster::SetKey key = Cluster::KeyFor(cs);
  {
    std::shared_lock lock(cache_->mu);
    const auto it = cache_->pools.find(key);
    if (it != cache_->pools.end()) return it->second;
  }
  util::Bitset pool = cluster_.Satisfying(cs);  // copy; all-ones when empty
  pool.AndWith(bindable_);
  std::unique_lock lock(cache_->mu);
  return cache_->pools.emplace(key, std::move(pool)).first->second;
}

std::size_t MembershipView::CountEligible(const Constraint& c) const {
  const std::uint32_t key = EncodePredicate(c);
  {
    std::shared_lock lock(cache_->mu);
    const auto it = cache_->predicate_counts.find(key);
    if (it != cache_->predicate_counts.end()) return it->second;
  }
  util::Bitset pool = cluster_.Satisfying(c);
  pool.AndWith(bindable_);
  const std::size_t count = pool.Count();
  std::unique_lock lock(cache_->mu);
  cache_->predicate_counts.emplace(key, count);
  return count;
}

std::size_t MembershipView::CountAdmissible(const ConstraintSet& cs) const {
  const util::Bitset& pool = cluster_.Satisfying(cs);
  std::size_t count = 0;
  for (std::size_t i = 0; i < guaranteed_; ++i) {
    if (pool.Test(i)) ++count;
  }
  return count;
}

std::size_t MembershipView::CountAdmissible(const Constraint& c) const {
  const util::Bitset& pool = cluster_.Satisfying(c);
  std::size_t count = 0;
  for (std::size_t i = 0; i < guaranteed_; ++i) {
    if (pool.Test(i)) ++count;
  }
  return count;
}

MachineId MembershipView::SampleEligible(const ConstraintSet& cs,
                                         util::Rng& rng) const {
  const std::size_t bit = EligiblePool(cs).SampleSetBit(rng);
  return bit == SIZE_MAX ? kInvalidMachine : static_cast<MachineId>(bit);
}

std::vector<MachineId> MembershipView::SampleEligible(const ConstraintSet& cs,
                                                      std::size_t k,
                                                      util::Rng& rng) const {
  std::vector<MachineId> out;
  const util::Bitset& pool = EligiblePool(cs);
  if (!pool.Any()) return out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    out.push_back(static_cast<MachineId>(pool.SampleSetBit(rng)));
  }
  return out;
}

const std::vector<std::uint32_t>& MembershipView::EligibleIds(
    const ConstraintSet& cs) const {
  const Cluster::SetKey key = Cluster::KeyFor(cs);
  {
    std::shared_lock lock(cache_->mu);
    const auto it = cache_->pool_ids.find(key);
    if (it != cache_->pool_ids.end()) return it->second;
  }
  std::vector<std::uint32_t> ids;
  EligiblePool(cs).CollectSetBits(ids);
  std::unique_lock lock(cache_->mu);
  return cache_->pool_ids.emplace(key, std::move(ids)).first->second;
}

std::vector<MachineId> MembershipView::SampleDistinctEligible(
    const ConstraintSet& cs, std::size_t k, util::Rng& rng) const {
  // Same draw pattern as Cluster::SampleDistinctSatisfying — see the
  // determinism contract above.
  return Cluster::SampleDistinctFromIds(EligibleIds(cs), k, rng);
}

}  // namespace phoenix::cluster
