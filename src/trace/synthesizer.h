// Constraint synthesis (paper §III-B).
//
// The paper embeds task placement constraints into the Yahoo and Cloudera
// traces using the benchmarking model of Sharma et al. (SoCC'11): draw, per
// job, whether it is constrained, how many distinct constraint kinds it
// requests, which kinds (weighted by the Google-trace frequency vector of
// Table II) and what operator/value each predicate carries. This class is
// that model; the Google generator uses it too, since the public trace
// hashes the real constraint values.
#pragma once

#include <array>
#include <cstdint>

#include "cluster/attributes.h"
#include "cluster/constraint.h"
#include "util/rng.h"

namespace phoenix::trace {

struct SynthesizerOptions {
  /// Fraction of jobs that carry at least one constraint. Table III: ~50 %
  /// of tasks are constrained across all three traces.
  double constrained_fraction = 0.5;

  /// Distribution of the number of distinct constraints per constrained job
  /// (index 0 => 1 constraint). Matches the demand curve of Fig 6: a mode
  /// at 2 constraints (~33 %), ~80 % of jobs asking <= 3, tail out to 6.
  std::array<double, cluster::kMaxConstraintsPerTask> num_constraints_weights =
      {0.25, 0.33, 0.22, 0.12, 0.05, 0.03};

  /// Probability that a constraint is hard (non-negotiable). The remainder
  /// are soft and may be relaxed by admission control (§III-A). Most
  /// Google-trace constraints behave as mandatory placement predicates, so
  /// the default mix is hard-heavy.
  double hard_fraction = 0.85;

  /// Probability that a predicate value is drawn uniformly from the
  /// attribute's domain instead of from the machine-mix weights. A higher
  /// value makes requests rarer in supply (more contention on scarce
  /// hardware) — this models jobs chasing the newest/most exotic machines.
  double demand_skew = 0.35;

  /// Probability that a constraint's value follows the job's latent
  /// "hardware generation" quantile instead of an independent draw. Jobs
  /// describe a coherent machine ("recent SKU: many cores AND new kernel
  /// AND fast NIC"), which — together with the fleet's own cross-attribute
  /// correlation (cluster::FleetOptions::attribute_correlation) — keeps
  /// multi-constraint requests satisfiable by a realistic slice of nodes
  /// (paper Fig 6: ~5 % of nodes still satisfy 6-constraint sets).
  double value_correlation = 0.7;
};

class ConstraintSynthesizer {
 public:
  explicit ConstraintSynthesizer(const SynthesizerOptions& options,
                                 std::uint64_t seed);

  /// Draws the constraint set for the next job (possibly empty).
  cluster::ConstraintSet Synthesize();

  /// Draws a single constraint on the given attribute kind, for a job of
  /// latent hardware-generation quantile `generation` in [0,1].
  cluster::Constraint SynthesizeConstraint(cluster::Attr attr,
                                           double generation);

  const SynthesizerOptions& options() const { return options_; }

 private:
  std::size_t DrawNumConstraints();
  cluster::Attr DrawAttr(std::uint32_t exclude_mask);

  SynthesizerOptions options_;
  util::Rng rng_;
};

}  // namespace phoenix::trace
