// Trace transformations.
//
// Utilities for working with workload traces the way the paper's authors
// work with theirs: rescale the arrival intensity (the utilization sweeps),
// slice a time window out of a month-long capture, keep only a job class,
// overlay two workloads on one cluster, or re-synthesize constraints into a
// constraint-free production trace (§III-B's embedding procedure applied to
// a file instead of a generator).
#pragma once

#include "trace/synthesizer.h"
#include "trace/trace.h"

namespace phoenix::trace {

/// Compresses (factor > 1) or stretches (factor < 1) inter-arrival times by
/// `factor`, raising or lowering offered load proportionally without
/// touching job shapes. Job 0 keeps its submit time.
Trace ScaleArrivalRate(const Trace& trace, double factor);

/// Keeps jobs submitted in [begin, end); submit times are shifted so the
/// window starts at 0. Job ids are re-densified.
Trace SliceWindow(const Trace& trace, sim::SimTime begin, sim::SimTime end);

/// Keeps only jobs matching the predicate. Ids re-densified, order kept.
template <typename Pred>
Trace FilterJobs(const Trace& trace, Pred&& pred, const std::string& suffix) {
  std::vector<Job> kept;
  for (const Job& job : trace.jobs()) {
    if (!pred(job)) continue;
    Job copy = job;
    copy.id = static_cast<JobId>(kept.size());
    kept.push_back(std::move(copy));
  }
  Trace out(trace.name() + suffix, std::move(kept));
  out.set_short_cutoff(trace.short_cutoff());
  return out;
}

/// Convenience filters.
Trace OnlyShortJobs(const Trace& trace);
Trace OnlyLongJobs(const Trace& trace);
Trace OnlyConstrainedJobs(const Trace& trace);

/// Interleaves two traces by submit time onto one timeline (both start at
/// their own t=0). The short cutoff is recomputed over the union at the
/// blended short fraction.
Trace Merge(const Trace& a, const Trace& b);

/// Replaces every job's constraints with fresh draws from the synthesizer —
/// §III-B's procedure for embedding constraints into the (constraint-free)
/// Yahoo and Cloudera traces, usable on any loaded trace file.
Trace ResynthesizeConstraints(const Trace& trace,
                              const SynthesizerOptions& options,
                              std::uint64_t seed);

}  // namespace phoenix::trace
