#include "trace/characterize.h"

namespace phoenix::trace {

ConstraintUsage CharacterizeConstraints(const Trace& trace) {
  ConstraintUsage usage;
  for (const Job& job : trace.jobs()) {
    if (!job.constrained()) {
      ++usage.unconstrained_jobs;
      continue;
    }
    ++usage.constrained_jobs;
    const std::size_t k = job.constraints.size();
    if (k >= 1 && k <= cluster::kMaxConstraintsPerTask) {
      usage.demand_pct[k - 1] += 1.0;  // counts for now; normalized below
    }
    for (const auto& c : job.constraints) {
      usage.occurrences[static_cast<std::size_t>(c.attr)] += job.num_tasks();
      usage.total_occurrences += job.num_tasks();
    }
  }
  if (usage.total_occurrences > 0) {
    for (std::size_t a = 0; a < cluster::kNumAttrs; ++a) {
      usage.shares[a] = 100.0 * static_cast<double>(usage.occurrences[a]) /
                        static_cast<double>(usage.total_occurrences);
    }
  }
  if (usage.constrained_jobs > 0) {
    for (auto& d : usage.demand_pct) {
      d = 100.0 * d / static_cast<double>(usage.constrained_jobs);
    }
  }
  return usage;
}

std::array<double, cluster::kMaxConstraintsPerTask> SupplyCurve(
    const Trace& trace, const cluster::Cluster& cluster) {
  std::array<double, cluster::kMaxConstraintsPerTask> sum{};
  std::array<std::uint64_t, cluster::kMaxConstraintsPerTask> count{};
  for (const Job& job : trace.jobs()) {
    const std::size_t k = job.constraints.size();
    if (k == 0 || k > cluster::kMaxConstraintsPerTask) continue;
    const double frac =
        static_cast<double>(cluster.CountSatisfying(job.constraints)) /
        static_cast<double>(cluster.size());
    sum[k - 1] += frac;
    ++count[k - 1];
  }
  std::array<double, cluster::kMaxConstraintsPerTask> out{};
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = count[i] > 0 ? 100.0 * sum[i] / static_cast<double>(count[i]) : 0.0;
  }
  return out;
}

}  // namespace phoenix::trace
