// Workload model: jobs and tasks.
//
// A job arrives at `submit_time` with a set of tasks (each with a service
// time on any satisfying machine) and a constraint set shared by its tasks
// (the Google trace attaches constraints at task-group level; like the
// paper we treat a job's tasks as requesting the same constraint set).
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "cluster/constraint.h"
#include "sim/simtime.h"

namespace phoenix::trace {

using JobId = std::uint32_t;
inline constexpr JobId kInvalidJob = 0xffffffffu;

/// Sentinel for Job::sla_class: no production-trace SLA tag.
inline constexpr std::uint8_t kNoSlaClass = 0xff;

/// Combinatorial / affinity placement preferences (paper §III-A): spread
/// tasks across racks for fault tolerance, or co-locate them on one rack
/// for data locality. These are preferences, not hard requirements — the
/// schedulers satisfy them when capacity allows and count violations.
enum class PlacementPref : std::uint8_t { kNone = 0, kSpread, kColocate };

struct Job {
  JobId id = kInvalidJob;
  sim::SimTime submit_time = 0;
  /// Service time of each task, seconds, on a satisfying machine.
  std::vector<double> task_durations;
  /// Placement constraints requested by every task of this job.
  cluster::ConstraintSet constraints;
  /// Rack-level affinity preference for the job's tasks.
  PlacementPref placement = PlacementPref::kNone;
  /// Tenant tag (index into the run's tenancy::TenancyConfig tenant list;
  /// 0xffff = untenanted). A raw integer so trace does not depend on
  /// src/tenancy; the scheduler resolves it against its registry.
  std::uint16_t tenant = 0xffff;
  /// Ground-truth class assigned by the generator (short = latency-critical).
  /// Schedulers do NOT read this; they classify by estimated runtime against
  /// the trace's short-job cutoff, as Hawk/Eagle do.
  bool short_job = true;

  /// Gang job: all tasks must co-start (all-or-nothing multi-machine
  /// reservation). Only meaningful to packing-enabled schedulers; a
  /// non-packing run executes the job as ordinary independent tasks. Raw
  /// flags here (like `tenant` above) so trace stays free of src/packing.
  bool gang = false;
  /// Malleable job: parallelism may shrink/expand between min_parallel and
  /// num_tasks under the scheduler's elastic supply signal.
  bool malleable = false;
  /// Minimum parallelism of a malleable job (0 = treat as 1).
  std::uint16_t min_parallel = 0;

  /// Precedence edges (predecessor task index -> successor task index): a
  /// task may start only after all its predecessors finish. Empty = flat
  /// independent tasks (every pre-DAG trace). Raw pairs here (like `gang`
  /// above) so trace stays free of src/workflow; schedulers that ignore
  /// dependencies run the job as ordinary independent tasks.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> deps;

  /// SLA class from a production trace frontend (0 prod / 1 batch /
  /// 2 best-effort; 0xff = unset). Deadline scheduling maps it to a latency
  /// multiplier; unset jobs fall back to their tenancy priority rank.
  std::uint8_t sla_class = kNoSlaClass;

  /// Per-task resource requests from a production trace (fractions of a
  /// machine; negative = unset, packing hashes demand instead). Raw doubles
  /// so trace stays free of src/packing.
  double req_cpu = -1;
  double req_mem = -1;
  double req_gpu = -1;

  bool has_deps() const { return !deps.empty(); }

  std::size_t num_tasks() const { return task_durations.size(); }

  double total_work() const {
    return std::accumulate(task_durations.begin(), task_durations.end(), 0.0);
  }

  /// Mean task duration — the "estimated task runtime" hybrid schedulers
  /// receive with a job submission (from historical runs in production).
  double mean_task_duration() const {
    return task_durations.empty() ? 0.0
                                  : total_work() /
                                        static_cast<double>(num_tasks());
  }

  bool constrained() const { return !constraints.empty(); }
};

}  // namespace phoenix::trace
