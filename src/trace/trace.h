// A trace: the job stream a simulation replays, plus summary statistics.
#pragma once

#include <string>
#include <vector>

#include "trace/job.h"

namespace phoenix::trace {

struct TraceStats {
  std::size_t num_jobs = 0;
  std::size_t num_tasks = 0;
  std::size_t constrained_jobs = 0;
  std::size_t constrained_tasks = 0;
  std::size_t short_jobs = 0;
  double total_work = 0;         // sum of all task durations, seconds
  double horizon = 0;            // last submit time
  double mean_task_duration = 0;
  double short_job_fraction = 0;
  double constrained_task_fraction = 0;
  /// Peak-to-median ratio of the per-bucket arrival rate (burstiness metric
  /// the paper quotes as 9:1 .. 260:1).
  double peak_to_median_arrival = 0;
};

class Trace {
 public:
  Trace() = default;
  Trace(std::string name, std::vector<Job> jobs);

  const std::string& name() const { return name_; }
  const std::vector<Job>& jobs() const { return jobs_; }
  std::size_t size() const { return jobs_.size(); }
  const Job& job(std::size_t i) const { return jobs_[i]; }

  /// Duration threshold separating short from long jobs, in seconds.
  /// Hybrid schedulers compare a job's estimated (mean) task duration to
  /// this cutoff. Computed by the generator (or ComputeShortJobCutoff).
  double short_cutoff() const { return short_cutoff_; }
  void set_short_cutoff(double cutoff) { short_cutoff_ = cutoff; }

  /// Aggregate statistics (recomputed on call; O(tasks)).
  TraceStats ComputeStats() const;

  /// Expected cluster utilization if replayed against `num_workers`
  /// single-slot workers: total_work / (workers * horizon).
  double OfferedLoad(std::size_t num_workers) const;

  /// Returns a copy of this trace with every constraint removed — the
  /// paper's "Baseline"/unconstrained comparator (Fig 2, Fig 4).
  Trace WithoutConstraints() const;

  /// Validates ordering/shape invariants; aborts on violation. Called by
  /// generators and the reader.
  void CheckInvariants() const;

 private:
  std::string name_;
  std::vector<Job> jobs_;   // sorted by submit_time
  double short_cutoff_ = 90.0;
};

/// Picks the short/long cutoff used by the hybrid schedulers: the paper
/// follows Hawk/Eagle, which split at a duration such that roughly
/// `short_fraction` of jobs are short. Implemented as the short_fraction
/// quantile of the jobs' mean task durations.
double ComputeShortJobCutoff(const std::vector<Job>& jobs,
                             double short_fraction);

}  // namespace phoenix::trace
