// Synthetic trace generation calibrated to the published statistics of the
// paper's three workloads.
//
// The real traces are not redistributable (and Google's constraint values
// are hashed), so we generate job streams that match the marginals the
// paper itself calibrates to:
//   * heavy-tailed ("Pareto bound") task durations with 80-90 % short jobs,
//   * bursty arrivals — a two-state modulated Poisson process whose
//     peak-to-median arrival-rate ratio is tunable (paper: 9:1 .. 260:1),
//   * ~50 % of tasks constrained, with the Table II attribute mix and the
//     Fig 6 constraints-per-job distribution (via ConstraintSynthesizer),
//   * per-trace short-job shares from Table III (Yahoo 91.56 %, Cloudera
//     95 %, Google 90.2 %).
// The arrival rate is calibrated so the trace offers `target_load` average
// utilization on a `num_workers` single-slot fleet; scheduler experiments
// then sweep utilization by varying the fleet size, exactly as in Fig 7.
#pragma once

#include <cmath>
#include <string>

#include "trace/synthesizer.h"
#include "trace/trace.h"

namespace phoenix::trace {

struct GeneratorOptions {
  std::size_t num_jobs = 10000;
  /// Fleet size the load calibration targets.
  std::size_t num_workers = 1000;
  /// Average offered utilization on that fleet.
  double target_load = 0.85;
  std::uint64_t seed = 1;

  SynthesizerOptions synth;

  /// Fraction of jobs that are short / latency-critical.
  double short_job_fraction = 0.90;

  /// Short task durations: bounded Pareto(alpha, lo, hi) seconds.
  double short_alpha = 1.3;
  double short_lo = 1.0;
  double short_hi = 300.0;

  /// Long task durations: lognormal (log-space mu/sigma) seconds.
  double long_mu = 6.4;    // e^6.4 ~ 600 s median
  double long_sigma = 0.6;

  /// Tasks per job: geometric with these means (>= 1).
  double short_tasks_mean = 8.0;
  double long_tasks_mean = 30.0;

  /// Fraction of long jobs requesting rack anti-affinity (spread across
  /// racks for fault tolerance) and of short multi-task jobs requesting
  /// rack co-location (data locality) — the combinatorial constraints of
  /// paper SIII-A.
  double spread_fraction = 0.10;
  double colocate_fraction = 0.10;

  /// Tenant mix: job i is tagged tenant t with probability
  /// tenant_weights[t] / sum(tenant_weights). Empty (the default) leaves
  /// every job untenanted and draws nothing — traces are byte-identical to
  /// the pre-tenancy generator. Tags are drawn from a dedicated RNG stream
  /// forked after every other stream, so tagging a trace never perturbs its
  /// arrivals, shapes, or constraints.
  std::vector<double> tenant_weights;

  /// Burstiness (two-state modulated Poisson): during a burst the arrival
  /// rate is multiplied by burst_factor; bursts cover burst_fraction of
  /// time in episodes of mean burst_duration_mean seconds.
  double burst_factor = 10.0;
  double burst_fraction = 0.08;
  double burst_duration_mean = 120.0;

  /// Packing structure: each multi-task job is tagged gang (all-or-nothing
  /// start) with probability gang_fraction, else malleable (shrinkable
  /// width) with probability malleable_fraction. A malleable job's floor is
  /// max(1, round(tasks * malleable_min_frac)). Both fractions default to 0
  /// and draw nothing — untagged traces are byte-identical to the
  /// pre-packing generator. Tags are drawn from a dedicated RNG stream
  /// forked after every other stream, so tagging a trace never perturbs its
  /// arrivals, shapes, constraints, or tenants.
  double gang_fraction = 0;
  double malleable_fraction = 0;
  double malleable_min_frac = 0.25;
};

/// Named arrival shape applied on top of a profile's MMPP parameters.
/// Extracted from the elasticity/energy benches so every experiment shapes
/// load the same way: "steady" is a flat Poisson stream (no bursts),
/// "diurnal" is a gentle half-duty swell, "flash-crowd" is rare intense
/// minute-scale episodes.
struct LoadShapePreset {
  const char* name;
  double burst_factor;
  double burst_fraction;
  double burst_duration_mean;
};

/// Nullable shape lookup by name ("steady" | "diurnal" | "flash-crowd");
/// returns nullptr on unknown names so CLI frontends can print a usage error
/// instead of aborting. The returned preset has static storage duration.
const LoadShapePreset* FindShapeByName(const std::string& name);

/// Shape lookup by name ("steady" | "diurnal" | "flash-crowd"); aborts on
/// unknown names. A preset field of -1 is a sentinel ApplyLoadShape leaves
/// at the profile's own value.
LoadShapePreset ShapeByName(const std::string& name);

/// Overwrites the MMPP fields of `options` with the preset's, skipping
/// sentinel (-1) fields.
void ApplyLoadShape(const LoadShapePreset& shape, GeneratorOptions& options);

/// Generates a trace from explicit options.
Trace GenerateTrace(const std::string& name, const GeneratorOptions& options);

/// Per-workload presets (Table III rows). `num_jobs`, `num_workers`,
/// `target_load` and `seed` remain caller-tunable on the returned options.
GeneratorOptions GoogleProfile();
GeneratorOptions YahooProfile();
GeneratorOptions ClouderaProfile();

/// Convenience wrappers: preset + generate.
Trace GenerateGoogleTrace(std::size_t num_jobs, std::size_t num_workers,
                          double target_load, std::uint64_t seed);
Trace GenerateYahooTrace(std::size_t num_jobs, std::size_t num_workers,
                         double target_load, std::uint64_t seed);
Trace GenerateClouderaTrace(std::size_t num_jobs, std::size_t num_workers,
                            double target_load, std::uint64_t seed);

/// Preset lookup by name ("google" | "yahoo" | "cloudera"); aborts on
/// unknown names.
GeneratorOptions ProfileByName(const std::string& name);

/// Analytical expected work (task-seconds) per job under `options` — used
/// for load calibration and exposed for tests.
double ExpectedWorkPerJob(const GeneratorOptions& options);

}  // namespace phoenix::trace
