// Trace characterization (paper §III-B, Table II, Fig 6).
//
// Computes, from a trace (and optionally a cluster), the constraint-usage
// statistics the paper reports: per-attribute occurrence counts and shares,
// the demand distribution of constraints-per-job, and the supply curve —
// the fraction of machines able to satisfy the constraint sets of given
// cardinality that jobs actually request.
#pragma once

#include <array>
#include <cstdint>

#include "cluster/cluster.h"
#include "trace/trace.h"

namespace phoenix::trace {

struct ConstraintUsage {
  /// Tasks requesting each attribute kind (a task with k constraints counts
  /// once per kind), indexed by cluster::Attr.
  std::array<std::uint64_t, cluster::kNumAttrs> occurrences{};
  /// occurrences normalized to percentages.
  std::array<double, cluster::kNumAttrs> shares{};
  std::uint64_t total_occurrences = 0;

  /// Jobs demanding exactly k constraints (index 0 => 1 constraint), as a
  /// percentage of constrained jobs — Fig 6's "Demand of jobs" series.
  std::array<double, cluster::kMaxConstraintsPerTask> demand_pct{};

  std::uint64_t constrained_jobs = 0;
  std::uint64_t unconstrained_jobs = 0;
};

ConstraintUsage CharacterizeConstraints(const Trace& trace);

/// Fig 6's "Supply of nodes" series: for each k in 1..6, the mean fraction
/// (as a percentage) of machines satisfying the k-constraint sets jobs in
/// the trace request. Entries with no k-constraint job are 0.
std::array<double, cluster::kMaxConstraintsPerTask> SupplyCurve(
    const Trace& trace, const cluster::Cluster& cluster);

}  // namespace phoenix::trace
