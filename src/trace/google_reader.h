// Google cluster-trace v2 frontend.
//
// Reads the public clusterdata-2011 `task_events` CSV (13 columns:
// timestamp_us, missing_info, job_id, task_index, machine_id, event_type,
// user, scheduling_class, priority, cpu_request, memory_request,
// disk_request, different_machines_constraint) and aggregates the SUBMIT /
// SCHEDULE / FINISH rows of each (job, task) into a trace::Job:
//
//   * arrival        = earliest SUBMIT timestamp of the job's tasks,
//   * task duration  = FINISH - SCHEDULE (FINISH - SUBMIT when the trace
//                      never recorded a SCHEDULE for that task),
//   * demand         = cpu/memory requests -> Job::req_cpu / req_mem
//                      (fractions of the largest machine, as published),
//   * priority       = 0-11 -> SLA class (>= 9 prod, 2-8 batch, else
//                      best-effort), carried as Job::sla_class,
//   * different_machines_constraint -> PlacementPref::kSpread.
//
// Malformed input (wrong column count, unparsable numbers, timestamps that
// go backwards, priorities outside 0-11, unknown event types) produces an
// empty trace and a line-numbered error message — never UB. Comment lines
// (leading '#') and blank lines are skipped, so committed samples can
// document themselves.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.h"

namespace phoenix::trace {

/// Parses a task_events CSV. On malformed input returns an empty trace and
/// fills `error` with "line N: ...". Jobs are re-numbered densely in
/// arrival order; times are rebased so the first arrival is t=0.
Trace ReadGoogleTrace(std::istream& in, std::string* error);
Trace ReadGoogleTraceFile(const std::string& path, std::string* error);

}  // namespace phoenix::trace
