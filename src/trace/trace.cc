#include "trace/trace.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/check.h"

namespace phoenix::trace {

Trace::Trace(std::string name, std::vector<Job> jobs)
    : name_(std::move(name)), jobs_(std::move(jobs)) {
  CheckInvariants();
}

void Trace::CheckInvariants() const {
  sim::SimTime prev = -1.0;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const Job& job = jobs_[i];
    PHOENIX_CHECK_MSG(job.id == i, "job ids must be dense and ordered");
    PHOENIX_CHECK_MSG(job.submit_time >= prev,
                      "jobs must be sorted by submit time");
    PHOENIX_CHECK_MSG(!job.task_durations.empty(), "job with zero tasks");
    for (const double d : job.task_durations) {
      PHOENIX_CHECK_MSG(d > 0, "task durations must be positive");
    }
    prev = job.submit_time;
  }
}

TraceStats Trace::ComputeStats() const {
  TraceStats s;
  s.num_jobs = jobs_.size();
  for (const Job& job : jobs_) {
    s.num_tasks += job.num_tasks();
    s.total_work += job.total_work();
    if (job.constrained()) {
      ++s.constrained_jobs;
      s.constrained_tasks += job.num_tasks();
    }
    if (job.short_job) ++s.short_jobs;
    s.horizon = std::max(s.horizon, job.submit_time);
  }
  if (s.num_tasks > 0) {
    s.mean_task_duration = s.total_work / static_cast<double>(s.num_tasks);
  }
  if (s.num_jobs > 0) {
    s.short_job_fraction =
        static_cast<double>(s.short_jobs) / static_cast<double>(s.num_jobs);
  }
  if (s.num_tasks > 0) {
    s.constrained_task_fraction = static_cast<double>(s.constrained_tasks) /
                                  static_cast<double>(s.num_tasks);
  }

  // Burstiness: bucket arrivals into ~200 buckets over the horizon and
  // compare the peak bucket to the median non-empty bucket.
  if (s.num_jobs > 2 && s.horizon > 0) {
    constexpr std::size_t kBuckets = 200;
    std::vector<std::size_t> buckets(kBuckets, 0);
    for (const Job& job : jobs_) {
      auto b = static_cast<std::size_t>(job.submit_time / s.horizon *
                                        (kBuckets - 1));
      ++buckets[b];
    }
    std::vector<std::size_t> nonempty;
    for (const auto c : buckets)
      if (c > 0) nonempty.push_back(c);
    if (!nonempty.empty()) {
      std::sort(nonempty.begin(), nonempty.end());
      const std::size_t peak = nonempty.back();
      const std::size_t median = nonempty[nonempty.size() / 2];
      s.peak_to_median_arrival =
          static_cast<double>(peak) / static_cast<double>(std::max<std::size_t>(median, 1));
    }
  }
  return s;
}

double Trace::OfferedLoad(std::size_t num_workers) const {
  PHOENIX_CHECK(num_workers > 0);
  const TraceStats s = ComputeStats();
  if (s.horizon <= 0) return 0;
  return s.total_work / (static_cast<double>(num_workers) * s.horizon);
}

Trace Trace::WithoutConstraints() const {
  std::vector<Job> stripped = jobs_;
  for (Job& job : stripped) job.constraints = cluster::ConstraintSet();
  Trace out(name_ + "-unconstrained", std::move(stripped));
  out.set_short_cutoff(short_cutoff_);
  return out;
}

double ComputeShortJobCutoff(const std::vector<Job>& jobs,
                             double short_fraction) {
  PHOENIX_CHECK_MSG(short_fraction > 0 && short_fraction < 1,
                    "short fraction must be in (0,1)");
  if (jobs.empty()) return 0;
  std::vector<double> durations;
  durations.reserve(jobs.size());
  for (const Job& job : jobs) durations.push_back(job.mean_task_duration());
  std::sort(durations.begin(), durations.end());
  const auto idx = static_cast<std::size_t>(
      short_fraction * static_cast<double>(durations.size() - 1));
  return durations[idx];
}

}  // namespace phoenix::trace
