#include "trace/google_reader.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <map>
#include <utility>
#include <vector>

#include "util/format.h"

namespace phoenix::trace {

namespace {

// task_events event types (clusterdata-2011 schema). SUBMIT / SCHEDULE /
// FINISH drive the aggregation; the remaining lifecycle events are
// recognized and skipped (a task that was evicted and resubmitted keeps its
// first SUBMIT and last FINISH).
constexpr int kSubmit = 0;
constexpr int kSchedule = 1;
constexpr int kEvict = 2;
constexpr int kFail = 3;
constexpr int kFinish = 4;
constexpr int kKill = 5;
constexpr int kLost = 6;
constexpr int kUpdatePending = 7;
constexpr int kUpdateRunning = 8;

constexpr std::size_t kColumns = 13;

/// Per-(job, task) aggregation of the lifecycle rows. Times in seconds;
/// negative = not seen yet.
struct TaskAgg {
  double submit = -1;
  double schedule = -1;
  double finish = -1;
  double cpu = -1;
  double mem = -1;
  bool spread = false;
};

/// Per-google-job aggregation, keyed by the trace's 64-bit job id.
struct JobAgg {
  std::map<std::uint32_t, TaskAgg> tasks;
  int priority = -1;
};

bool ParseI64(const std::string& s, std::int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtoll(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool ParseF64(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

/// Google priority (0-11, higher = more important) -> SLA class rank
/// (tenancy::PriorityRank order: 0 prod / 1 batch / 2 best-effort).
/// "Production" tier in the published trace is priorities 9-11; the free /
/// gratis tiers are 0-1.
std::uint8_t SlaClassFromPriority(std::int64_t priority) {
  if (priority >= 9) return 0;
  if (priority >= 2) return 1;
  return 2;
}

}  // namespace

Trace ReadGoogleTrace(std::istream& in, std::string* error) {
  error->clear();
  std::map<std::uint64_t, JobAgg> agg;

  std::string line;
  std::size_t line_no = 0;
  double last_timestamp = -1;
  auto fail = [&](const std::string& msg) {
    *error = util::StrFormat("line %zu: %s", line_no, msg.c_str());
    return Trace();
  };

  while (std::getline(in, line)) {
    ++line_no;
    line = util::Trim(line);
    if (line.empty() || line[0] == '#') continue;

    const std::vector<std::string> cols = util::Split(line, ',');
    if (cols.size() != kColumns) {
      return fail(util::StrFormat(
          "expected %zu comma-separated columns, got %zu (truncated row?)",
          kColumns, cols.size()));
    }

    std::int64_t timestamp_us = 0;
    if (!ParseI64(util::Trim(cols[0]), &timestamp_us) || timestamp_us < 0) {
      return fail("bad timestamp '" + cols[0] + "'");
    }
    const double timestamp = static_cast<double>(timestamp_us) / 1e6;
    if (timestamp < last_timestamp) {
      return fail(util::StrFormat(
          "timestamps must be non-decreasing (%.6f after %.6f)", timestamp,
          last_timestamp));
    }
    last_timestamp = timestamp;

    std::int64_t job_id = 0;
    if (!ParseI64(util::Trim(cols[2]), &job_id) || job_id < 0) {
      return fail("bad job id '" + cols[2] + "'");
    }
    std::int64_t task_index = 0;
    if (!ParseI64(util::Trim(cols[3]), &task_index) || task_index < 0) {
      return fail("bad task index '" + cols[3] + "'");
    }
    std::int64_t event_type = 0;
    if (!ParseI64(util::Trim(cols[5]), &event_type)) {
      return fail("bad event type '" + cols[5] + "'");
    }
    if (event_type < kSubmit || event_type > kUpdateRunning) {
      return fail(util::StrFormat("unknown event type %lld",
                                  static_cast<long long>(event_type)));
    }
    std::int64_t priority = 0;
    if (!ParseI64(util::Trim(cols[8]), &priority) || priority < 0 ||
        priority > 11) {
      return fail("priority '" + cols[8] + "' outside the trace's 0-11 range");
    }

    JobAgg& job = agg[static_cast<std::uint64_t>(job_id)];
    TaskAgg& task = job.tasks[static_cast<std::uint32_t>(task_index)];

    switch (static_cast<int>(event_type)) {
      case kSubmit: {
        if (task.submit < 0) task.submit = timestamp;
        // The job's class is the highest priority any of its tasks submitted
        // at (the trace attaches priority per task; like constraints we lift
        // it to job scope).
        job.priority = std::max(job.priority, static_cast<int>(priority));
        double cpu = -1;
        double mem = -1;
        const std::string cpu_s = util::Trim(cols[9]);
        const std::string mem_s = util::Trim(cols[10]);
        if (!cpu_s.empty()) {
          if (!ParseF64(cpu_s, &cpu) || cpu < 0) {
            return fail("bad cpu request '" + cols[9] + "'");
          }
          task.cpu = std::max(task.cpu, cpu);
        }
        if (!mem_s.empty()) {
          if (!ParseF64(mem_s, &mem) || mem < 0) {
            return fail("bad memory request '" + cols[10] + "'");
          }
          task.mem = std::max(task.mem, mem);
        }
        if (util::Trim(cols[12]) == "1") task.spread = true;
        break;
      }
      case kSchedule:
        if (task.submit < 0) {
          return fail(util::StrFormat(
              "SCHEDULE for task %lld of job %lld with no prior SUBMIT",
              static_cast<long long>(task_index),
              static_cast<long long>(job_id)));
        }
        if (task.schedule < 0) task.schedule = timestamp;
        break;
      case kFinish: {
        if (task.submit < 0) {
          return fail(util::StrFormat(
              "FINISH for task %lld of job %lld with no prior SUBMIT",
              static_cast<long long>(task_index),
              static_cast<long long>(job_id)));
        }
        const double started = task.schedule >= 0 ? task.schedule : task.submit;
        if (timestamp < started) {
          return fail("FINISH earlier than the task's start");
        }
        task.finish = timestamp;
        break;
      }
      case kEvict:
      case kFail:
      case kKill:
      case kLost:
      case kUpdatePending:
      case kUpdateRunning:
        break;  // recognized lifecycle noise; the aggregation ignores it
      default:
        break;
    }
  }

  // Aggregate into jobs: a task contributes only if the window recorded both
  // its SUBMIT and its FINISH (truncated lifecycles are dropped, as trace
  // replays conventionally do); a job contributes only if at least one task
  // survived.
  std::vector<Job> jobs;
  for (const auto& [google_id, j] : agg) {
    Job job;
    double arrival = -1;
    double cpu = -1;
    double mem = -1;
    bool spread = false;
    for (const auto& [index, t] : j.tasks) {
      (void)index;
      if (t.submit < 0 || t.finish < 0) continue;
      const double started = t.schedule >= 0 ? t.schedule : t.submit;
      // Zero-length rows floor at one trace tick (1 us) so downstream
      // duration math never divides by zero.
      job.task_durations.push_back(std::max(t.finish - started, 1e-6));
      arrival = arrival < 0 ? t.submit : std::min(arrival, t.submit);
      cpu = std::max(cpu, t.cpu);
      mem = std::max(mem, t.mem);
      spread = spread || t.spread;
    }
    if (job.task_durations.empty()) continue;
    job.submit_time = arrival;
    job.sla_class = SlaClassFromPriority(j.priority < 0 ? 0 : j.priority);
    job.req_cpu = cpu;
    job.req_mem = mem;
    if (spread && job.task_durations.size() > 1) {
      job.placement = PlacementPref::kSpread;
    }
    jobs.push_back(std::move(job));
  }
  if (jobs.empty()) {
    *error = "trace contains no completed tasks";
    return Trace();
  }

  // Dense ids in arrival order, rebased so the first arrival is t=0. The
  // aggregation map is keyed by google job id, so equal arrivals break ties
  // deterministically by that id (stable sort over the map's order).
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const Job& a, const Job& b) {
                     return a.submit_time < b.submit_time;
                   });
  const double base = jobs.front().submit_time;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].id = static_cast<JobId>(i);
    jobs[i].submit_time -= base;
  }

  const double cutoff = ComputeShortJobCutoff(jobs, 0.9);
  for (Job& job : jobs) job.short_job = job.mean_task_duration() <= cutoff;

  Trace trace("google-v2", std::move(jobs));
  trace.set_short_cutoff(cutoff);
  return trace;
}

Trace ReadGoogleTraceFile(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in.good()) {
    *error = "cannot open trace file: " + path;
    return Trace();
  }
  return ReadGoogleTrace(in, error);
}

}  // namespace phoenix::trace
