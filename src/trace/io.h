// Trace serialization.
//
// Text format, one job per line (after a header), so users can replay their
// own production traces or archive synthesized ones:
//
//   # phoenix-trace v1 name=<name> short_cutoff=<seconds>
//   <submit_time>|<short 0/1>|<dur,dur,...>|<attr:op:value:hard;...>
//
// `op` is one of < > =; the constraint field is empty for unconstrained
// jobs. Durations are seconds (floating point).
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.h"

namespace phoenix::trace {

/// Writes `trace` to a stream / file. Aborts on I/O failure to a file.
void WriteTrace(const Trace& trace, std::ostream& out);
void WriteTraceFile(const Trace& trace, const std::string& path);

/// Parses a trace. On malformed input returns an empty trace and fills
/// `error`. Jobs are re-numbered densely in file order and must be sorted
/// by submit time.
Trace ReadTrace(std::istream& in, std::string* error);
Trace ReadTraceFile(const std::string& path, std::string* error);

}  // namespace phoenix::trace
