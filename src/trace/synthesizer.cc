#include "trace/synthesizer.h"

#include <algorithm>

#include "util/check.h"

namespace phoenix::trace {

using cluster::Attr;
using cluster::AttrCatalog;
using cluster::AttrDemandShares;
using cluster::AttrDomain;
using cluster::Constraint;
using cluster::ConstraintOp;
using cluster::ConstraintSet;
using cluster::kNumAttrs;

namespace {

/// Index whose machine-weight CDF bucket contains quantile q — the value a
/// machine of hardware generation q would carry (mirrors the fleet
/// builder's correlation model).
std::size_t IndexFromQuantile(const AttrDomain& domain, double q) {
  double total = 0;
  for (std::size_t i = 0; i < domain.num_values; ++i) {
    total += domain.machine_weights[i];
  }
  double x = q * total;
  for (std::size_t i = 0; i < domain.num_values; ++i) {
    x -= domain.machine_weights[i];
    if (x <= 0) return i;
  }
  return domain.num_values - 1;
}

}  // namespace

ConstraintSynthesizer::ConstraintSynthesizer(const SynthesizerOptions& options,
                                             std::uint64_t seed)
    : options_(options), rng_(seed ^ 0xa3c59ac2ed1b8f15ULL) {
  PHOENIX_CHECK(options.constrained_fraction >= 0 &&
                options.constrained_fraction <= 1);
  PHOENIX_CHECK(options.hard_fraction >= 0 && options.hard_fraction <= 1);
  PHOENIX_CHECK(options.demand_skew >= 0 && options.demand_skew <= 1);
  PHOENIX_CHECK(options.value_correlation >= 0 &&
                options.value_correlation <= 1);
}

std::size_t ConstraintSynthesizer::DrawNumConstraints() {
  double total = 0;
  for (const double w : options_.num_constraints_weights) total += w;
  PHOENIX_CHECK_MSG(total > 0, "constraint-count weights sum to zero");
  double x = rng_.Uniform(0.0, total);
  for (std::size_t k = 0; k < options_.num_constraints_weights.size(); ++k) {
    x -= options_.num_constraints_weights[k];
    if (x <= 0) return k + 1;
  }
  return options_.num_constraints_weights.size();
}

Attr ConstraintSynthesizer::DrawAttr(std::uint32_t exclude_mask) {
  const auto& shares = AttrDemandShares();
  double total = 0;
  for (std::size_t a = 0; a < kNumAttrs; ++a) {
    if (!(exclude_mask & (1u << a))) total += shares[a];
  }
  PHOENIX_CHECK_MSG(total > 0, "no attribute kinds left to draw");
  double x = rng_.Uniform(0.0, total);
  for (std::size_t a = 0; a < kNumAttrs; ++a) {
    if (exclude_mask & (1u << a)) continue;
    x -= shares[a];
    if (x <= 0) return static_cast<Attr>(a);
  }
  for (std::size_t a = kNumAttrs; a-- > 0;) {
    if (!(exclude_mask & (1u << a))) return static_cast<Attr>(a);
  }
  PHOENIX_CHECK_MSG(false, "unreachable");
}

Constraint ConstraintSynthesizer::SynthesizeConstraint(Attr attr,
                                                       double generation) {
  const AttrDomain& domain = AttrCatalog()[static_cast<std::size_t>(attr)];
  Constraint c;
  c.attr = attr;
  c.hard = rng_.Bernoulli(options_.hard_fraction);

  // Value selection, in priority order:
  //   1. generation-coherent (value_correlation): the band the job's latent
  //      hardware vintage maps to — multi-constraint sets then describe a
  //      consistent machine, keeping their joint pool realistic;
  //   2. scarce-chasing (demand_skew): uniform over the domain;
  //   3. independent machine-mix draw (demand follows supply).
  const bool coherent = rng_.Bernoulli(options_.value_correlation);
  std::size_t value_index;
  if (coherent) {
    value_index = IndexFromQuantile(domain, generation);
  } else if (rng_.Bernoulli(options_.demand_skew)) {
    value_index = rng_.NextBounded(domain.num_values);
  } else {
    double total = 0;
    for (std::size_t i = 0; i < domain.num_values; ++i)
      total += domain.machine_weights[i];
    double x = rng_.Uniform(0.0, total);
    value_index = domain.num_values - 1;
    for (std::size_t i = 0; i < domain.num_values; ++i) {
      x -= domain.machine_weights[i];
      if (x <= 0) {
        value_index = i;
        break;
      }
    }
  }

  // Operator: categorical attributes only support equality; ordered ones
  // use the three operators of §V-A. Lower-bound attributes (MinDisks,
  // MinMemory) semantically use '>'; MaxDisks uses '<'; the rest mix.
  // For coherent draws the bound is placed one step *toward* satisfiable
  // territory (e.g. "> value just below the generation's band"), so the
  // job's own generation band satisfies its bound constraints.
  if (domain.categorical) {
    c.op = ConstraintOp::kEqual;
    c.value = domain.values[value_index];
    return c;
  }
  const auto bounded_greater = [&] {
    c.op = ConstraintOp::kGreater;
    std::size_t idx = value_index;
    if (coherent && idx > 0) --idx;  // band `generation` itself satisfies
    if (idx + 1 >= domain.num_values) idx = domain.num_values - 2;
    c.value = domain.values[idx];
  };
  const auto bounded_less = [&] {
    c.op = ConstraintOp::kLess;
    std::size_t idx = value_index;
    if (coherent && idx + 1 < domain.num_values) ++idx;
    if (idx == 0) idx = 1;
    c.value = domain.values[idx];
  };
  switch (attr) {
    case Attr::kMinDisks:
    case Attr::kMinMemory:
      bounded_greater();
      return c;
    case Attr::kMaxDisks:
      bounded_less();
      return c;
    default: {
      const double r = rng_.NextDouble();
      if (r < 0.6) {
        c.op = ConstraintOp::kEqual;
        c.value = domain.values[value_index];
      } else if (r < 0.85) {
        bounded_greater();
      } else {
        bounded_less();
      }
      return c;
    }
  }
}

ConstraintSet ConstraintSynthesizer::Synthesize() {
  if (!rng_.Bernoulli(options_.constrained_fraction)) return ConstraintSet();
  const std::size_t k = DrawNumConstraints();
  const double generation = rng_.NextDouble();
  ConstraintSet cs;
  std::uint32_t used = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const Attr attr = DrawAttr(used);
    used |= 1u << static_cast<std::uint32_t>(attr);
    cs.Add(SynthesizeConstraint(attr, generation));
  }
  return cs;
}

}  // namespace phoenix::trace
