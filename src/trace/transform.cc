#include "trace/transform.h"

#include <algorithm>

#include "util/check.h"

namespace phoenix::trace {

Trace ScaleArrivalRate(const Trace& trace, double factor) {
  PHOENIX_CHECK_MSG(factor > 0, "rate factor must be positive");
  std::vector<Job> jobs = trace.jobs();
  if (!jobs.empty()) {
    const sim::SimTime base = jobs.front().submit_time;
    for (Job& job : jobs) {
      job.submit_time = base + (job.submit_time - base) / factor;
    }
  }
  Trace out(trace.name() + "-x" + std::to_string(factor), std::move(jobs));
  out.set_short_cutoff(trace.short_cutoff());
  return out;
}

Trace SliceWindow(const Trace& trace, sim::SimTime begin, sim::SimTime end) {
  PHOENIX_CHECK_MSG(end > begin, "empty slice window");
  std::vector<Job> kept;
  for (const Job& job : trace.jobs()) {
    if (job.submit_time < begin || job.submit_time >= end) continue;
    Job copy = job;
    copy.id = static_cast<JobId>(kept.size());
    copy.submit_time -= begin;
    kept.push_back(std::move(copy));
  }
  Trace out(trace.name() + "-window", std::move(kept));
  out.set_short_cutoff(trace.short_cutoff());
  return out;
}

Trace OnlyShortJobs(const Trace& trace) {
  return FilterJobs(trace, [](const Job& j) { return j.short_job; }, "-short");
}

Trace OnlyLongJobs(const Trace& trace) {
  return FilterJobs(trace, [](const Job& j) { return !j.short_job; }, "-long");
}

Trace OnlyConstrainedJobs(const Trace& trace) {
  return FilterJobs(trace, [](const Job& j) { return j.constrained(); },
                    "-constrained");
}

Trace Merge(const Trace& a, const Trace& b) {
  std::vector<Job> merged;
  merged.reserve(a.size() + b.size());
  std::size_t ia = 0, ib = 0;
  while (ia < a.size() || ib < b.size()) {
    const bool take_a =
        ib >= b.size() ||
        (ia < a.size() && a.job(ia).submit_time <= b.job(ib).submit_time);
    Job copy = take_a ? a.job(ia++) : b.job(ib++);
    copy.id = static_cast<JobId>(merged.size());
    merged.push_back(std::move(copy));
  }
  const double short_fraction = [&merged] {
    if (merged.empty()) return 0.9;
    std::size_t s = 0;
    for (const Job& j : merged) s += j.short_job;
    return std::clamp(static_cast<double>(s) / merged.size(), 0.01, 0.99);
  }();
  const double cutoff = ComputeShortJobCutoff(merged, short_fraction);
  Trace out(a.name() + "+" + b.name(), std::move(merged));
  out.set_short_cutoff(cutoff);
  return out;
}

Trace ResynthesizeConstraints(const Trace& trace,
                              const SynthesizerOptions& options,
                              std::uint64_t seed) {
  ConstraintSynthesizer synth(options, seed);
  std::vector<Job> jobs = trace.jobs();
  for (Job& job : jobs) {
    job.constraints = synth.Synthesize();
  }
  Trace out(trace.name() + "-resynth", std::move(jobs));
  out.set_short_cutoff(trace.short_cutoff());
  return out;
}

}  // namespace phoenix::trace
