#include "trace/io.h"

#include <cstdlib>
#include <iomanip>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/check.h"
#include "util/format.h"

namespace phoenix::trace {

namespace {

char OpChar(cluster::ConstraintOp op) {
  switch (op) {
    case cluster::ConstraintOp::kLess: return '<';
    case cluster::ConstraintOp::kGreater: return '>';
    case cluster::ConstraintOp::kEqual: return '=';
  }
  return '?';
}

bool ParseOp(char c, cluster::ConstraintOp* op) {
  switch (c) {
    case '<': *op = cluster::ConstraintOp::kLess; return true;
    case '>': *op = cluster::ConstraintOp::kGreater; return true;
    case '=': *op = cluster::ConstraintOp::kEqual; return true;
    default: return false;
  }
}

}  // namespace

void WriteTrace(const Trace& trace, std::ostream& out) {
  // Round-trip exact doubles.
  out << std::setprecision(17);
  out << "# phoenix-trace v1 name=" << trace.name()
      << " short_cutoff=" << trace.short_cutoff() << "\n";
  for (const Job& job : trace.jobs()) {
    out << job.submit_time << '|' << (job.short_job ? 1 : 0) << '|';
    for (std::size_t i = 0; i < job.task_durations.size(); ++i) {
      if (i > 0) out << ',';
      out << job.task_durations[i];
    }
    out << '|';
    const auto& cs = job.constraints;
    for (std::size_t i = 0; i < cs.size(); ++i) {
      if (i > 0) out << ';';
      out << static_cast<int>(cs[i].attr) << ':' << OpChar(cs[i].op) << ':'
          << cs[i].value << ':' << (cs[i].hard ? 1 : 0);
    }
    // Optional 5th field: rack placement preference (n/s/c).
    out << '|'
        << (job.placement == PlacementPref::kSpread
                ? 's'
                : job.placement == PlacementPref::kColocate ? 'c' : 'n')
        << '\n';
  }
}

void WriteTraceFile(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  PHOENIX_CHECK_MSG(out.good(), "cannot open trace file for writing");
  WriteTrace(trace, out);
  out.flush();
  PHOENIX_CHECK_MSG(out.good(), "trace write failed");
}

Trace ReadTrace(std::istream& in, std::string* error) {
  PHOENIX_CHECK(error != nullptr);
  error->clear();
  std::string name = "trace";
  double short_cutoff = 90.0;
  std::vector<Job> jobs;

  std::string line;
  std::size_t line_no = 0;
  auto fail = [&](const std::string& msg) {
    *error = util::StrFormat("line %zu: %s", line_no, msg.c_str());
    return Trace();
  };

  while (std::getline(in, line)) {
    ++line_no;
    line = util::Trim(line);
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Header fields are optional; pick out name= and short_cutoff=.
      for (const auto& tok : util::Split(line, ' ')) {
        if (tok.rfind("name=", 0) == 0) name = tok.substr(5);
        if (tok.rfind("short_cutoff=", 0) == 0)
          short_cutoff = std::atof(tok.c_str() + 13);
      }
      continue;
    }
    const auto fields = util::Split(line, '|');
    if (fields.size() != 4 && fields.size() != 5) {
      return fail("expected 4 or 5 |-separated fields");
    }

    Job job;
    job.id = static_cast<JobId>(jobs.size());
    job.submit_time = std::atof(fields[0].c_str());
    job.short_job = fields[1] == "1";
    if (!jobs.empty() && job.submit_time < jobs.back().submit_time) {
      return fail("jobs out of submit-time order");
    }

    for (const auto& d : util::Split(fields[2], ',')) {
      const double duration = std::atof(d.c_str());
      if (duration <= 0) return fail("non-positive task duration");
      job.task_durations.push_back(duration);
    }
    if (job.task_durations.empty()) return fail("job with no tasks");

    if (!fields[3].empty()) {
      for (const auto& spec : util::Split(fields[3], ';')) {
        const auto parts = util::Split(spec, ':');
        if (parts.size() != 4) return fail("constraint needs attr:op:value:hard");
        cluster::Constraint c;
        const int attr = std::atoi(parts[0].c_str());
        if (attr < 0 || attr >= static_cast<int>(cluster::kNumAttrs)) {
          return fail("constraint attribute out of range");
        }
        c.attr = static_cast<cluster::Attr>(attr);
        if (parts[1].size() != 1 || !ParseOp(parts[1][0], &c.op)) {
          return fail("bad constraint operator");
        }
        c.value = std::atoi(parts[2].c_str());
        c.hard = parts[3] == "1";
        job.constraints.Add(c);
      }
    }
    if (fields.size() == 5 && !fields[4].empty()) {
      switch (fields[4][0]) {
        case 'n': job.placement = PlacementPref::kNone; break;
        case 's': job.placement = PlacementPref::kSpread; break;
        case 'c': job.placement = PlacementPref::kColocate; break;
        default: return fail("bad placement preference (n/s/c)");
      }
    }
    jobs.push_back(std::move(job));
  }

  Trace trace(name, std::move(jobs));
  trace.set_short_cutoff(short_cutoff);
  return trace;
}

Trace ReadTraceFile(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in.good()) {
    *error = "cannot open trace file: " + path;
    return Trace();
  }
  return ReadTrace(in, error);
}

}  // namespace phoenix::trace
