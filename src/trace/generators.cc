#include "trace/generators.h"

#include <algorithm>

#include "queueing/distributions.h"
#include "util/check.h"

namespace phoenix::trace {

namespace {

/// Geometric task count with the given mean (>= 1).
std::size_t SampleTaskCount(util::Rng& rng, double mean) {
  PHOENIX_DCHECK(mean >= 1.0);
  if (mean <= 1.0) return 1;
  const double p = 1.0 / mean;
  const double u = rng.NextDouble();
  const auto k = static_cast<std::size_t>(
      1.0 + std::floor(std::log1p(-u) / std::log1p(-p)));
  return std::max<std::size_t>(1, std::min<std::size_t>(k, 100000));
}

/// Mean of the lognormal.
double LogNormalMean(double mu, double sigma) {
  return std::exp(mu + sigma * sigma / 2.0);
}

}  // namespace

double ExpectedWorkPerJob(const GeneratorOptions& o) {
  const double short_work =
      o.short_tasks_mean *
      queueing::BoundedParetoMean(o.short_alpha, o.short_lo, o.short_hi);
  const double long_work =
      o.long_tasks_mean * LogNormalMean(o.long_mu, o.long_sigma);
  return o.short_job_fraction * short_work +
         (1.0 - o.short_job_fraction) * long_work;
}

Trace GenerateTrace(const std::string& name, const GeneratorOptions& o) {
  PHOENIX_CHECK(o.num_jobs > 0 && o.num_workers > 0);
  PHOENIX_CHECK(o.target_load > 0 && o.target_load < 1.5);
  PHOENIX_CHECK(o.burst_factor >= 1.0);
  PHOENIX_CHECK(o.burst_fraction >= 0 && o.burst_fraction < 1.0);

  util::Rng rng(o.seed ^ 0x9d2c5680ca876ccdULL);
  util::Rng arrival_rng = rng.Fork();
  util::Rng shape_rng = rng.Fork();
  ConstraintSynthesizer synth(o.synth, rng.Next());
  // Forked after every pre-existing stream, and drawn from only when a
  // tenant mix is configured: untagged traces stay byte-identical.
  util::Rng tenant_rng = rng.Fork();
  // Same fork-after-everything discipline as the tenant stream: the packing
  // stream exists (and is drawn from) only when a gang/malleable mix is
  // configured, so untagged traces stay byte-identical.
  const bool tag_packing = o.gang_fraction > 0 || o.malleable_fraction > 0;
  PHOENIX_CHECK(o.gang_fraction >= 0 && o.malleable_fraction >= 0 &&
                o.gang_fraction + o.malleable_fraction <= 1.0);
  PHOENIX_CHECK(o.malleable_min_frac >= 0 && o.malleable_min_frac <= 1.0);
  util::Rng packing_rng = tag_packing ? rng.Fork() : util::Rng(0);
  double tenant_weight_sum = 0;
  for (const double w : o.tenant_weights) {
    PHOENIX_CHECK_MSG(w >= 0, "tenant weights must be non-negative");
    tenant_weight_sum += w;
  }

  // Calibrate the average arrival rate to the target utilization, then
  // split into base/burst rates so the time-average matches.
  const double mean_job_work = ExpectedWorkPerJob(o);
  const double lambda_avg =
      o.target_load * static_cast<double>(o.num_workers) / mean_job_work;
  const double lambda_base =
      lambda_avg /
      ((1.0 - o.burst_fraction) + o.burst_factor * o.burst_fraction);
  const double lambda_burst = lambda_base * o.burst_factor;

  // Mean residence per MMPP state, derived from the burst time fraction.
  const double mean_on = o.burst_duration_mean;
  const double mean_off = o.burst_fraction > 0
                              ? mean_on * (1.0 - o.burst_fraction) / o.burst_fraction
                              : sim::kTimeInfinity;

  std::vector<Job> jobs;
  jobs.reserve(o.num_jobs);

  bool burst = false;
  double t = 0.0;
  double state_end =
      o.burst_fraction > 0
          ? queueing::SampleExponential(arrival_rng, 1.0 / mean_off)
          : sim::kTimeInfinity;

  while (jobs.size() < o.num_jobs) {
    const double rate = burst ? lambda_burst : lambda_base;
    const double gap = queueing::SampleExponential(arrival_rng, rate);
    if (t + gap >= state_end) {
      // State switch before the next arrival: advance to the boundary and
      // redraw the gap under the new rate (memorylessness makes this exact).
      t = state_end;
      burst = !burst;
      const double mean_stay = burst ? mean_on : mean_off;
      state_end = t + queueing::SampleExponential(arrival_rng, 1.0 / mean_stay);
      continue;
    }
    t += gap;

    Job job;
    job.id = static_cast<JobId>(jobs.size());
    job.submit_time = t;
    job.short_job = shape_rng.Bernoulli(o.short_job_fraction);
    const std::size_t num_tasks = SampleTaskCount(
        shape_rng, job.short_job ? o.short_tasks_mean : o.long_tasks_mean);
    job.task_durations.reserve(num_tasks);
    for (std::size_t i = 0; i < num_tasks; ++i) {
      const double d =
          job.short_job
              ? queueing::SampleBoundedPareto(shape_rng, o.short_alpha,
                                              o.short_lo, o.short_hi)
              : queueing::SampleLogNormal(shape_rng, o.long_mu, o.long_sigma);
      job.task_durations.push_back(d);
    }
    job.constraints = synth.Synthesize();
    if (tenant_weight_sum > 0) {
      double pick = tenant_rng.NextDouble() * tenant_weight_sum;
      for (std::size_t t = 0; t < o.tenant_weights.size(); ++t) {
        pick -= o.tenant_weights[t];
        if (pick < 0 || t + 1 == o.tenant_weights.size()) {
          job.tenant = static_cast<std::uint16_t>(t);
          break;
        }
      }
    }
    if (job.task_durations.size() > 1) {
      if (!job.short_job && shape_rng.Bernoulli(o.spread_fraction)) {
        job.placement = PlacementPref::kSpread;
      } else if (job.short_job && shape_rng.Bernoulli(o.colocate_fraction)) {
        job.placement = PlacementPref::kColocate;
      }
    }
    if (tag_packing && job.task_durations.size() > 1) {
      // One uniform draw splits [0, gang) | [gang, gang+malleable) | rest,
      // so a job is gang XOR malleable, never both.
      const double u = packing_rng.NextDouble();
      if (u < o.gang_fraction) {
        job.gang = true;
      } else if (u < o.gang_fraction + o.malleable_fraction) {
        job.malleable = true;
        const auto floor_width = static_cast<std::uint16_t>(std::max<double>(
            1.0, std::round(o.malleable_min_frac *
                            static_cast<double>(job.task_durations.size()))));
        job.min_parallel = floor_width;
      }
    }
    jobs.push_back(std::move(job));
  }

  const double cutoff = ComputeShortJobCutoff(jobs, o.short_job_fraction);
  Trace trace(name, std::move(jobs));
  trace.set_short_cutoff(cutoff);
  return trace;
}

// Demand skew is kept moderate in every profile so that no constrained
// machine subpool is *permanently* oversubscribed — the paper's constrained
// jobs see ~2x slowdowns (Table II), i.e. transient burst contention, not
// unbounded queue growth. Long-job duration parameters are likewise sized so
// the long plane drains between bursts.

GeneratorOptions GoogleProfile() {
  GeneratorOptions o;
  o.num_workers = 15000;
  o.short_job_fraction = 0.902;  // Table III
  // Google has the most diverse constraint mix (paper §VI-A) and the widest
  // burst range.
  o.synth.constrained_fraction = 0.51;
  o.synth.demand_skew = 0.15;
  o.synth.value_correlation = 0.40;
  o.burst_factor = 10.0;
  o.burst_fraction = 0.06;
  o.short_alpha = 1.25;
  o.short_hi = 400.0;
  o.long_mu = 5.3;   // ~200 s median long task
  o.long_sigma = 0.5;
  o.long_tasks_mean = 20.0;
  return o;
}

GeneratorOptions YahooProfile() {
  GeneratorOptions o;
  o.num_workers = 5000;
  o.short_job_fraction = 0.9156;  // Table III
  o.synth.constrained_fraction = 0.49;
  o.synth.demand_skew = 0.15;
  o.synth.value_correlation = 0.40;
  o.burst_factor = 8.0;
  o.burst_fraction = 0.10;
  o.short_alpha = 1.35;
  o.short_hi = 250.0;
  o.short_tasks_mean = 6.0;
  o.long_mu = 5.2;
  o.long_sigma = 0.5;
  o.long_tasks_mean = 18.0;
  return o;
}

GeneratorOptions ClouderaProfile() {
  GeneratorOptions o;
  o.num_workers = 15000;
  o.short_job_fraction = 0.95;  // Table III
  o.synth.constrained_fraction = 0.51;
  o.synth.demand_skew = 0.18;
  o.synth.value_correlation = 0.40;
  o.burst_factor = 10.0;
  o.burst_fraction = 0.08;
  o.short_alpha = 1.3;
  o.short_hi = 300.0;
  o.short_tasks_mean = 7.0;
  o.long_mu = 5.3;
  o.long_sigma = 0.5;
  o.long_tasks_mean = 22.0;
  return o;
}

GeneratorOptions ProfileByName(const std::string& name) {
  if (name == "google") return GoogleProfile();
  if (name == "yahoo") return YahooProfile();
  if (name == "cloudera") return ClouderaProfile();
  PHOENIX_CHECK_MSG(false, "unknown trace profile (google|yahoo|cloudera)");
}

// The diurnal / flash-crowd parameters are the shapes the elasticity bench
// has always swept (bench_ext_elasticity), promoted here so every bench and
// test shapes load identically. -1 marks "keep the profile's own value".

const LoadShapePreset* FindShapeByName(const std::string& name) {
  static constexpr LoadShapePreset kShapes[] = {
      {"steady", 1.0, 0.0, -1.0},
      {"diurnal", 2.5, 0.50, 600.0},
      {"flash-crowd", 4.0, 0.15, 60.0},
  };
  for (const LoadShapePreset& shape : kShapes) {
    if (name == shape.name) return &shape;
  }
  return nullptr;
}

LoadShapePreset ShapeByName(const std::string& name) {
  const LoadShapePreset* shape = FindShapeByName(name);
  PHOENIX_CHECK_MSG(shape != nullptr,
                    "unknown load shape (steady|diurnal|flash-crowd)");
  return *shape;
}

void ApplyLoadShape(const LoadShapePreset& shape, GeneratorOptions& options) {
  if (shape.burst_factor >= 0) options.burst_factor = shape.burst_factor;
  if (shape.burst_fraction >= 0) options.burst_fraction = shape.burst_fraction;
  if (shape.burst_duration_mean >= 0) {
    options.burst_duration_mean = shape.burst_duration_mean;
  }
}

namespace {
Trace GenerateWithProfile(GeneratorOptions o, const std::string& name,
                          std::size_t num_jobs, std::size_t num_workers,
                          double target_load, std::uint64_t seed) {
  o.num_jobs = num_jobs;
  o.num_workers = num_workers;
  o.target_load = target_load;
  o.seed = seed;
  return GenerateTrace(name, o);
}
}  // namespace

Trace GenerateGoogleTrace(std::size_t num_jobs, std::size_t num_workers,
                          double target_load, std::uint64_t seed) {
  return GenerateWithProfile(GoogleProfile(), "google", num_jobs, num_workers,
                             target_load, seed);
}

Trace GenerateYahooTrace(std::size_t num_jobs, std::size_t num_workers,
                         double target_load, std::uint64_t seed) {
  return GenerateWithProfile(YahooProfile(), "yahoo", num_jobs, num_workers,
                             target_load, seed);
}

Trace GenerateClouderaTrace(std::size_t num_jobs, std::size_t num_workers,
                            double target_load, std::uint64_t seed) {
  return GenerateWithProfile(ClouderaProfile(), "cloudera", num_jobs,
                             num_workers, target_load, seed);
}

}  // namespace phoenix::trace
