// Fairness metrics.
//
// The paper claims Phoenix "does not affect the fairness ... of the other
// long and unconstrained jobs" (§I, §VI-D). We quantify that with two
// standard measures over per-job slowdowns (response / ideal service):
//   * Jain's fairness index  (Σx)² / (n·Σx²)  — 1.0 is perfectly fair,
//     1/n is maximally unfair;
//   * the max-min slowdown ratio between job slices.
#pragma once

#include <vector>

#include "metrics/report.h"
#include "trace/trace.h"

namespace phoenix::metrics {

/// Jain's fairness index of a non-negative sample. Returns 1.0 for empty or
/// all-zero input (vacuously fair).
double JainIndex(const std::vector<double>& values);

/// Per-job slowdown: response time divided by the job's critical path on an
/// empty cluster (its longest task). Always >= ~1.
std::vector<double> Slowdowns(const SimReport& report,
                              const trace::Trace& trace, ClassFilter cf,
                              ConstraintFilter kf);

struct FairnessSummary {
  double jain_all = 1.0;            // over every job's slowdown
  double jain_short = 1.0;
  double jain_long = 1.0;
  /// Mean slowdown of unconstrained jobs / mean slowdown of constrained
  /// jobs: < 1 means unconstrained jobs are treated better.
  double unconstrained_to_constrained = 1.0;
};

FairnessSummary ComputeFairness(const SimReport& report,
                                const trace::Trace& trace);

/// Jain index over per-tenant executed machine-seconds, each normalized by
/// the tenant's quota share when one is configured (a tenant with twice the
/// share is entitled to twice the usage; tenants without a quota enter
/// unnormalized). 1.0 when the run had fewer than two tenants.
double TenantUsageJain(const SimReport& report);

}  // namespace phoenix::metrics
