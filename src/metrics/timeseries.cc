#include "metrics/timeseries.h"

#include "util/check.h"

namespace phoenix::metrics {

TimeSeries::TimeSeries(sim::SimTime horizon, std::size_t num_buckets)
    : width_(horizon / static_cast<double>(num_buckets)),
      sums_(num_buckets, 0.0),
      counts_(num_buckets, 0) {
  PHOENIX_CHECK_MSG(horizon > 0 && num_buckets > 0, "invalid time series shape");
}

void TimeSeries::Add(sim::SimTime t, double value) {
  PHOENIX_CHECK_MSG(t >= 0, "negative sample time");
  auto b = static_cast<std::size_t>(t / width_);
  if (b >= sums_.size()) b = sums_.size() - 1;
  sums_[b] += value;
  ++counts_[b];
}

sim::SimTime TimeSeries::bucket_time(std::size_t i) const {
  PHOENIX_CHECK(i < sums_.size());
  return (static_cast<double>(i) + 0.5) * width_;
}

double TimeSeries::bucket_mean(std::size_t i) const {
  PHOENIX_CHECK(i < sums_.size());
  return counts_[i] == 0 ? 0.0 : sums_[i] / static_cast<double>(counts_[i]);
}

}  // namespace phoenix::metrics
