// Exact percentile / distribution helpers.
//
// The paper reports 50th/90th/99th percentile job response times; sample
// counts per run are at most a few million, so exact selection is cheap and
// avoids sketch error in the very tail we care about.
#pragma once

#include <vector>

namespace phoenix::metrics {

/// p in [0, 100]. Linear interpolation between closest ranks
/// (the "exclusive" definition used by numpy's default). The input vector is
/// reordered (sorted) in place. Returns 0 for an empty input.
double Percentile(std::vector<double>& values, double p);

/// Convenience for untouched callers: copies, then computes.
double PercentileCopy(const std::vector<double>& values, double p);

struct PercentileSummary {
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  double mean = 0;
  double max = 0;
  std::size_t count = 0;
};

/// One pass over a copy of `values`.
PercentileSummary Summarize(const std::vector<double>& values);

/// Empirical CDF: sorted (value, cumulative fraction) pairs, decimated to at
/// most `max_points` for plotting/printing.
struct CdfPoint {
  double value;
  double fraction;
};
std::vector<CdfPoint> ComputeCdf(std::vector<double> values,
                                 std::size_t max_points = 64);

}  // namespace phoenix::metrics
