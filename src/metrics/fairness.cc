#include "metrics/fairness.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace phoenix::metrics {

double JainIndex(const std::vector<double>& values) {
  if (values.empty()) return 1.0;
  double sum = 0, sum_sq = 0;
  for (const double v : values) {
    PHOENIX_DCHECK(v >= 0);
    sum += v;
    sum_sq += v * v;
  }
  // All-zero input is 0/0 in (Σx)²/(n·Σx²): vacuously fair, per contract.
  if (sum_sq <= 0) return 1.0;
  const double jain =
      sum * sum / (static_cast<double>(values.size()) * sum_sq);
  // Degenerate inputs (overflow to inf/inf, NaN samples) must not leak NaN
  // into reports; fall back to the same documented vacuous value.
  return std::isfinite(jain) ? jain : 1.0;
}

namespace {

bool Matches(const JobOutcome& job, ClassFilter cf, ConstraintFilter kf) {
  if (cf == ClassFilter::kShort && !job.short_class) return false;
  if (cf == ClassFilter::kLong && job.short_class) return false;
  if (kf == ConstraintFilter::kConstrained && !job.constrained) return false;
  if (kf == ConstraintFilter::kUnconstrained && job.constrained) return false;
  return true;
}

double CriticalPath(const trace::Job& spec) {
  return *std::max_element(spec.task_durations.begin(),
                           spec.task_durations.end());
}

}  // namespace

std::vector<double> Slowdowns(const SimReport& report,
                              const trace::Trace& trace, ClassFilter cf,
                              ConstraintFilter kf) {
  std::vector<double> out;
  for (const auto& job : report.jobs) {
    if (!Matches(job, cf, kf)) continue;
    const double ideal = CriticalPath(trace.job(job.id));
    out.push_back(job.response() / std::max(ideal, 1e-9));
  }
  return out;
}

FairnessSummary ComputeFairness(const SimReport& report,
                                const trace::Trace& trace) {
  FairnessSummary s;
  s.jain_all = JainIndex(Slowdowns(report, trace, ClassFilter::kAll,
                                   ConstraintFilter::kAll));
  s.jain_short = JainIndex(Slowdowns(report, trace, ClassFilter::kShort,
                                     ConstraintFilter::kAll));
  s.jain_long = JainIndex(Slowdowns(report, trace, ClassFilter::kLong,
                                    ConstraintFilter::kAll));
  const auto uncon = Slowdowns(report, trace, ClassFilter::kAll,
                               ConstraintFilter::kUnconstrained);
  const auto con = Slowdowns(report, trace, ClassFilter::kAll,
                             ConstraintFilter::kConstrained);
  auto mean = [](const std::vector<double>& v) {
    if (v.empty()) return 0.0;
    double sum = 0;
    for (const double x : v) sum += x;
    return sum / static_cast<double>(v.size());
  };
  const double mc = mean(con);
  s.unconstrained_to_constrained = mc > 0 ? mean(uncon) / mc : 1.0;
  return s;
}

double TenantUsageJain(const SimReport& report) {
  if (report.tenants.size() < 2) return 1.0;
  std::vector<double> normalized;
  normalized.reserve(report.tenants.size());
  for (const TenantOutcome& t : report.tenants) {
    normalized.push_back(t.quota_share > 0 ? t.usage_seconds / t.quota_share
                                           : t.usage_seconds);
  }
  return JainIndex(normalized);
}

}  // namespace phoenix::metrics
