// Bucketed time series (Fig 3: queuing delay of constrained vs
// unconstrained jobs over simulated time).
#pragma once

#include <vector>

#include "sim/simtime.h"

namespace phoenix::metrics {

/// Accumulates (time, value) samples into fixed-width time buckets and
/// reports the per-bucket mean.
class TimeSeries {
 public:
  /// Buckets cover [0, horizon) in `num_buckets` equal slices; samples at or
  /// beyond the horizon land in the last bucket.
  TimeSeries(sim::SimTime horizon, std::size_t num_buckets);

  void Add(sim::SimTime t, double value);

  std::size_t num_buckets() const { return sums_.size(); }
  sim::SimTime bucket_width() const { return width_; }
  /// Mid-point time of bucket i.
  sim::SimTime bucket_time(std::size_t i) const;
  /// Mean of samples in bucket i (0 if empty).
  double bucket_mean(std::size_t i) const;
  std::size_t bucket_count(std::size_t i) const { return counts_[i]; }

 private:
  sim::SimTime width_;
  std::vector<double> sums_;
  std::vector<std::size_t> counts_;
};

}  // namespace phoenix::metrics
