#include "metrics/report.h"

#include "util/check.h"

namespace phoenix::metrics {

namespace {

bool Matches(const JobOutcome& job, ClassFilter cf, ConstraintFilter kf) {
  switch (cf) {
    case ClassFilter::kAll: break;
    case ClassFilter::kShort:
      if (!job.short_class) return false;
      break;
    case ClassFilter::kLong:
      if (job.short_class) return false;
      break;
  }
  switch (kf) {
    case ConstraintFilter::kAll: break;
    case ConstraintFilter::kConstrained:
      if (!job.constrained) return false;
      break;
    case ConstraintFilter::kUnconstrained:
      if (job.constrained) return false;
      break;
  }
  return true;
}

}  // namespace

double SimReport::Utilization() const {
  if (active_machine_seconds > 0) {
    return total_busy_time / active_machine_seconds;
  }
  if (num_workers == 0 || makespan <= 0) return 0;
  return total_busy_time / (static_cast<double>(num_workers) * makespan);
}

std::vector<double> SimReport::ResponseTimes(ClassFilter cf,
                                             ConstraintFilter kf) const {
  std::vector<double> out;
  for (const auto& job : jobs) {
    if (Matches(job, cf, kf)) out.push_back(job.response());
  }
  return out;
}

std::vector<double> SimReport::QueuingDelays(ClassFilter cf,
                                             ConstraintFilter kf) const {
  std::vector<double> out;
  for (const auto& job : jobs) {
    if (Matches(job, cf, kf)) out.push_back(job.queuing_delay);
  }
  return out;
}

PercentileSummary SimReport::ResponseSummary(ClassFilter cf,
                                             ConstraintFilter kf) const {
  return Summarize(ResponseTimes(cf, kf));
}

PercentileSummary SimReport::QueuingSummary(ClassFilter cf,
                                            ConstraintFilter kf) const {
  return Summarize(QueuingDelays(cf, kf));
}

std::size_t SimReport::CountJobs(ClassFilter cf, ConstraintFilter kf) const {
  std::size_t n = 0;
  for (const auto& job : jobs) {
    if (Matches(job, cf, kf)) ++n;
  }
  return n;
}

std::size_t SimReport::CountTasks(ClassFilter cf, ConstraintFilter kf) const {
  std::size_t n = 0;
  for (const auto& job : jobs) {
    if (Matches(job, cf, kf)) n += job.num_tasks;
  }
  return n;
}

void SimReport::CheckInvariants() const {
  for (const auto& job : jobs) {
    PHOENIX_CHECK_MSG(job.completion >= job.submit,
                      "job completed before it was submitted");
    PHOENIX_CHECK_MSG(job.queuing_delay >= 0, "negative queuing delay");
    PHOENIX_CHECK_MSG(job.max_task_wait >= job.queuing_delay - 1e-9,
                      "max task wait below mean task wait");
    PHOENIX_CHECK_MSG(job.num_tasks > 0, "job outcome with zero tasks");
    PHOENIX_CHECK_MSG(job.completion <= makespan + 1e-9,
                      "job completed after makespan");
  }
  PHOENIX_CHECK_MSG(total_busy_time >= 0, "negative busy time");
  if (num_workers > 0 && makespan > 0 && !packing_enabled) {
    // Vector packing runs several tasks per machine concurrently, so the
    // per-slot utilization bound only holds for single-slot runs.
    PHOENIX_CHECK_MSG(Utilization() <= 1.0 + 1e-9,
                      "utilization above 100% with single-slot workers");
  }
  if (packing_enabled) {
    PHOENIX_CHECK_MSG(
        packing_efficiency >= 0 && packing_efficiency <= 1.0 + 1e-9,
        "packing efficiency outside [0, 1]");
    PHOENIX_CHECK_MSG(fragmentation_time_avg >= -1e-9,
                      "negative fragmentation average");
    PHOENIX_CHECK_MSG(gang_wait_mean >= -1e-9, "negative gang wait");
  }
  if (deadline_enabled) {
    std::uint64_t tracked = 0;
    std::uint64_t attained = 0;
    for (std::size_t rank = 0; rank < 3; ++rank) {
      PHOENIX_CHECK_MSG(
          class_deadline_attained[rank] <= class_deadline_jobs[rank],
          "deadline attainment above the class job count");
      tracked += class_deadline_jobs[rank];
      attained += class_deadline_attained[rank];
    }
    PHOENIX_CHECK_MSG(tracked - attained == counters.deadline_misses,
                      "deadline misses disagree with the per-class slices");
  }
}

double SpeedupAtPercentile(const SimReport& treatment,
                           const SimReport& baseline, double percentile,
                           ClassFilter cf, ConstraintFilter kf) {
  auto t = treatment.ResponseTimes(cf, kf);
  auto b = baseline.ResponseTimes(cf, kf);
  const double tv = Percentile(t, percentile);
  const double bv = Percentile(b, percentile);
  if (tv <= 0) return 0;
  return bv / tv;
}

}  // namespace phoenix::metrics
