#include "metrics/percentile.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace phoenix::metrics {

double Percentile(std::vector<double>& values, double p) {
  PHOENIX_CHECK_MSG(p >= 0 && p <= 100, "percentile must be in [0,100]");
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  if (lo == hi) return values[lo];
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double PercentileCopy(const std::vector<double>& values, double p) {
  std::vector<double> copy = values;
  return Percentile(copy, p);
}

PercentileSummary Summarize(const std::vector<double>& values) {
  PercentileSummary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::vector<double> copy = values;
  std::sort(copy.begin(), copy.end());
  auto at = [&](double p) {
    const double rank = p / 100.0 * static_cast<double>(copy.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    if (lo == hi) return copy[lo];
    const double frac = rank - static_cast<double>(lo);
    return copy[lo] * (1.0 - frac) + copy[hi] * frac;
  };
  s.p50 = at(50);
  s.p90 = at(90);
  s.p99 = at(99);
  s.max = copy.back();
  double sum = 0;
  for (const double v : copy) sum += v;
  s.mean = sum / static_cast<double>(copy.size());
  return s;
}

std::vector<CdfPoint> ComputeCdf(std::vector<double> values,
                                 std::size_t max_points) {
  std::vector<CdfPoint> cdf;
  if (values.empty()) return cdf;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  const std::size_t points = std::min(max_points, n);
  cdf.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    // Evenly spaced ranks, always including the max.
    const std::size_t rank =
        points == 1 ? n - 1 : i * (n - 1) / (points - 1);
    cdf.push_back({values[rank],
                   static_cast<double>(rank + 1) / static_cast<double>(n)});
  }
  return cdf;
}

}  // namespace phoenix::metrics
