// Simulation outcome report.
//
// Every experiment in the paper is a view over the same per-job outcomes:
// response time (completion - submit) and queuing delay (mean task wait),
// sliced by job class (short/long, per the scheduler's own classification)
// and constrainedness — plus scheduler-internal counters (Table III's
// reordering statistics) and measured cluster utilization.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "metrics/percentile.h"
#include "sim/simtime.h"
#include "trace/job.h"

namespace phoenix::metrics {

struct JobOutcome {
  trace::JobId id = trace::kInvalidJob;
  sim::SimTime submit = 0;
  sim::SimTime completion = 0;
  /// Mean over tasks of (execution start - job submit).
  double queuing_delay = 0;
  /// Max over tasks of (execution start - job submit) — the straggler wait.
  double max_task_wait = 0;
  std::size_t num_tasks = 0;
  bool short_class = true;   // the scheduler's classification
  bool constrained = false;
  /// Tenant tag (0xffff = untenanted) and effective priority class rank
  /// after admission (0 prod, 1 batch, 2 best-effort); raw integers so
  /// metrics does not depend on src/tenancy.
  std::uint16_t tenant = 0xffff;
  std::uint8_t priority = 1;
  /// Distinct racks that executed this job's tasks.
  std::size_t racks_used = 0;
  trace::PlacementPref placement = trace::PlacementPref::kNone;

  double response() const { return completion - submit; }
};

/// Job-slice selectors.
enum class ClassFilter { kAll, kShort, kLong };
enum class ConstraintFilter { kAll, kConstrained, kUnconstrained };

/// Scheduler-internal counters (Table III and overhead accounting).
struct SchedulerCounters {
  std::uint64_t probes_sent = 0;
  std::uint64_t probes_cancelled = 0;
  std::uint64_t tasks_reordered_crv = 0;
  std::uint64_t tasks_reordered_srpt = 0;
  std::uint64_t tasks_stolen = 0;
  std::uint64_t soft_constraints_relaxed = 0;
  std::uint64_t tasks_admission_rejected = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t crv_reorder_rounds = 0;
  /// Spread-preference jobs that had to double up on a rack.
  std::uint64_t placement_spread_violations = 0;
  /// Colocate-preference tasks that landed off the job's anchor rack.
  std::uint64_t placement_colocate_misses = 0;
  /// Probes declined at resolution to preserve a spread preference.
  std::uint64_t probes_declined_placement = 0;
  /// Machine failures injected and tasks rescheduled because of them.
  std::uint64_t machine_failures = 0;
  std::uint64_t tasks_rescheduled_failure = 0;
  /// Probes that lost their worker to a failure and were re-sent.
  std::uint64_t probes_bounced = 0;
  /// Sticky-batch fetches interrupted by a failure and re-covered with a
  /// fresh dispatch (the guard against stranding the fetched job).
  std::uint64_t sticky_fetch_redispatches = 0;
  /// Centralized placements where every sampled candidate was down and the
  /// binding fell back to a fresh draw from the satisfying pool.
  std::uint64_t placement_dead_fallbacks = 0;
  /// Control-plane fabric accounting (src/net). All zero under the default
  /// zero-chaos fabric, whose fast path does no per-message bookkeeping.
  std::uint64_t net_messages_sent = 0;
  std::uint64_t net_messages_dropped = 0;
  std::uint64_t net_messages_duplicated = 0;
  std::uint64_t net_messages_expired = 0;
  std::uint64_t rpc_retries = 0;
  std::uint64_t rpc_failures = 0;
  /// Elastic cluster lifecycle (src/elastic). All zero on a static fleet.
  std::uint64_t elastic_provisions = 0;
  std::uint64_t elastic_commissions = 0;
  std::uint64_t elastic_drains = 0;
  std::uint64_t elastic_retires_graceful = 0;
  std::uint64_t elastic_retires_forced = 0;
  /// Transient leases reclaimed by the stochastic reclamation stream.
  std::uint64_t elastic_reclamations = 0;
  /// Queued/running work evicted by forced retires and redispatched.
  std::uint64_t elastic_tasks_redispatched = 0;
  /// Controller policy decisions (a decision may move several machines).
  std::uint64_t elastic_scale_up_decisions = 0;
  std::uint64_t elastic_scale_down_decisions = 0;
  /// Scale-ups whose machine choice was steered by the CRV supply shaper.
  std::uint64_t elastic_crv_shaped_picks = 0;
  /// Seconds spent warming machines up, and the subset wasted on leases
  /// that retired without ever starting a task.
  double elastic_warmup_seconds = 0;
  double elastic_wasted_warmup_seconds = 0;
  /// Multi-tenant scheduling (src/tenancy). All zero when no tenants are
  /// configured.
  std::uint64_t tenant_admits = 0;
  std::uint64_t tenant_downgrades = 0;
  std::uint64_t tenant_rejects = 0;
  std::uint64_t tenant_slo_jobs = 0;
  std::uint64_t tenant_slo_attained = 0;
  std::uint64_t tenant_slo_at_risk = 0;
  /// Queue picks where a higher class overrode the discipline's choice.
  std::uint64_t tenant_priority_promotions = 0;
  std::uint64_t preemptions_issued = 0;
  std::uint64_t preemption_requeues = 0;
  /// Preemptions refused because the victim was bypass-exhausted (the
  /// Slack_threshold starvation guard) or already at the preemption cap.
  std::uint64_t preemptions_blocked_guard = 0;
  std::uint64_t preemptions_blocked_cap = 0;
  /// Preemptions refused because the machine left the bindable fleet
  /// (draining/retired): its slot work belongs to the drain sweep alone.
  std::uint64_t preemptions_blocked_lifecycle = 0;
  /// Modeled restart cost paid by preempted tasks, and service seconds
  /// thrown away at their kills.
  double preemption_restart_seconds = 0;
  double preemption_lost_seconds = 0;
  /// Sharded control plane (src/federation). All zero with --shards=1.
  /// Gossip digests sent / applied / discarded as out-of-order stale.
  std::uint64_t fed_gossip_published = 0;
  std::uint64_t fed_gossip_applied = 0;
  std::uint64_t fed_gossip_stale_dropped = 0;
  /// Jobs steered off their home shard on a fresh peer view, and offload
  /// decisions blocked because every candidate peer view was stale.
  std::uint64_t fed_offloads = 0;
  std::uint64_t fed_offloads_blocked_stale = 0;
  /// Probes landing outside the job's home territory.
  std::uint64_t fed_cross_shard_probes = 0;
  /// Optimistic cross-shard binds: sent, accepted at a genuinely free slot,
  /// rejected by double-bind detection (requeued via redispatch).
  std::uint64_t fed_bind_attempts = 0;
  std::uint64_t fed_bind_accepts = 0;
  std::uint64_t fed_bind_rejects = 0;
  /// Constrained placements whose satisfying pool missed the target
  /// territory and fell back to a global draw.
  std::uint64_t fed_territory_fallbacks = 0;
  /// Energy/power management (src/power). All zero without a power model.
  std::uint64_t power_parks = 0;
  std::uint64_t power_wakes = 0;
  /// Wakes forced by a placement that found every satisfying machine
  /// asleep (the dispatch-time CRV demand signal; also counted in
  /// power_wakes).
  std::uint64_t power_demand_wakes = 0;
  /// DVFS steps: raises go toward P0 (faster/hungrier), lowers away.
  std::uint64_t power_dvfs_raises = 0;
  std::uint64_t power_dvfs_lowers = 0;
  /// Parks the controller refused: coverage guard (the last awake machine
  /// satisfying a hot CRV predicate) and the min-active floor.
  std::uint64_t power_park_vetoes_coverage = 0;
  std::uint64_t power_park_vetoes_floor = 0;
  /// Controller ticks that issued at least one wake.
  std::uint64_t power_wake_decisions = 0;
  /// Drained machines the elastic controller parked instead of retiring.
  std::uint64_t power_parks_instead_of_retire = 0;
  /// Multi-resource packing (src/packing). All zero with --packing off.
  /// Task executions started against a residual-capacity ledger.
  std::uint64_t packed_tasks = 0;
  /// Probe resolutions / deliveries refused because the demand no longer
  /// fit the residual vector (the probe re-routes, nothing strands).
  std::uint64_t pack_fit_rejections = 0;
  /// Jobs whose hashed demand exceeded every machine's capacity and was
  /// clamped to the fleet max (the reject-then-renegotiate path).
  std::uint64_t pack_demand_clamped = 0;
  /// Gang scheduling: placements attempted, reservation rounds committed /
  /// aborted, and attempts deferred for lack of free capacity.
  std::uint64_t gangs_placed = 0;
  std::uint64_t gang_commits = 0;
  std::uint64_t gang_aborts = 0;
  std::uint64_t gang_retry_waits = 0;
  /// Gangs no empty eligible fleet could co-host, degraded to non-atomic
  /// placement (the liveness escape from the retry loop).
  std::uint64_t gangs_degraded = 0;
  /// Malleable jobs: arrivals, width expansions / shrinks, and ticks a
  /// job's width sat clamped at its minimum parallelism.
  std::uint64_t malleable_jobs = 0;
  std::uint64_t malleable_expands = 0;
  std::uint64_t malleable_shrinks = 0;
  std::uint64_t malleable_min_hits = 0;
  /// DAG workflows and deadline scheduling (src/workflow). All zero with
  /// --dag/--deadline off. dag_tasks_released counts kDagRelease events
  /// (ready tasks handed to the dispatch path); deadline_promotions counts
  /// queue picks where the EDF tie-break overrode the discipline's choice.
  std::uint64_t dag_jobs = 0;
  std::uint64_t dag_tasks_released = 0;
  std::uint64_t deadline_jobs = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t deadline_promotions = 0;
};

/// Per-tenant outcome slice (empty unless the run configured tenants).
/// Priority is the spec's class rank (0 prod / 1 batch / 2 best-effort).
struct TenantOutcome {
  std::uint16_t id = 0;
  std::string name;
  std::uint8_t priority = 1;
  double quota_share = 0;
  double slo_target = 0;
  std::uint64_t jobs = 0;
  std::uint64_t admits = 0;
  std::uint64_t downgrades = 0;
  std::uint64_t rejects = 0;
  std::uint64_t slo_jobs = 0;
  std::uint64_t slo_attained = 0;
  std::uint64_t slo_at_risk = 0;
  std::uint64_t preemptions_issued = 0;
  std::uint64_t preemptions_suffered = 0;
  /// Executed machine-seconds and the peak committed/budget fraction.
  double usage_seconds = 0;
  double peak_quota_fraction = 0;
  /// Mean / p90 queuing delay over this tenant's jobs.
  double mean_queuing = 0;
  double p90_queuing = 0;

  double SloAttainment() const {
    return slo_jobs == 0 ? 1.0
                         : static_cast<double>(slo_attained) /
                               static_cast<double>(slo_jobs);
  }
};

class SimReport {
 public:
  std::string scheduler_name;
  std::string trace_name;
  std::size_t num_workers = 0;
  std::vector<JobOutcome> jobs;
  SchedulerCounters counters;
  /// Sum over workers of busy (executing) time, seconds.
  double total_busy_time = 0;
  /// Simulated time at which the last task finished.
  sim::SimTime makespan = 0;
  /// Integral of in-service (active + draining) machine count over the run,
  /// machine-seconds. Zero on a static fleet, where every worker is in
  /// service for the whole makespan.
  double active_machine_seconds = 0;
  /// Per-tenant slices and the Jain index over quota-normalized tenant
  /// usage (see TenantUsageJain). Empty / 1.0 without configured tenants.
  std::vector<TenantOutcome> tenants;
  double tenant_fairness_jain = 1.0;
  /// Host-side cost of the run, filled by the runner around engine.Run():
  /// wall-clock seconds spent draining the event queue and the engine's
  /// fired-event count. events_fired is deterministic for a fixed seed;
  /// sim_wall_seconds is a measurement artifact and must never leak into
  /// the byte-stable paper-figure outputs.
  double sim_wall_seconds = 0;
  std::uint64_t events_fired = 0;
  /// Energy accounting (src/power), filled only when a power model is
  /// attached; all zero (and power_enabled false) otherwise, so reports and
  /// JSON emitters can gate the energy fields on one flag.
  bool power_enabled = false;
  /// Fleet energy with every state dwell closed at the report horizon.
  double total_joules = 0;
  /// total_joules / completed tasks.
  double energy_per_task = 0;
  /// total_joules x mean job response time (the classic EDP, J*s).
  double energy_delay_product = 0;
  /// Integral of the number of machines in deep sleep, machine-seconds.
  double sleep_machine_seconds = 0;
  /// Per-SLA-class (priority rank 0 prod / 1 batch / 2 best-effort) energy
  /// attainment: execution joules attributed to each class's completed
  /// tasks and the class task counts. Filled when power and tenancy are
  /// both attached; all zero otherwise.
  std::array<double, 3> class_exec_joules{};
  std::array<std::uint64_t, 3> class_tasks{};
  /// Multi-resource packing (src/packing), filled when packing is enabled.
  bool packing_enabled = false;
  /// Demand-weighted core-seconds executed over fleet core capacity x
  /// makespan — the packed analogue of Utilization().
  double packing_efficiency = 0;
  /// Time-average over heartbeats of the free-core fraction stranded on
  /// machines that are partially busy (capacity neither used nor cleanly
  /// idle — the fragmentation cost of vector packing).
  double fragmentation_time_avg = 0;
  /// Mean seconds from a gang job's arrival to its reservation commit.
  double gang_wait_mean = 0;
  /// DAG workflows / deadline scheduling (src/workflow), filled when the
  /// corresponding gate is on; all zero (and the flags false) otherwise so
  /// emitters can gate the blocks on one boolean each. Deadline attainment
  /// is sliced by SLA class rank (0 prod / 1 batch / 2 best-effort):
  /// class_deadline_jobs counts completed deadline-tracked jobs per class,
  /// class_deadline_attained the subset that finished by their deadline.
  bool dag_enabled = false;
  bool deadline_enabled = false;
  std::array<std::uint64_t, 3> class_deadline_jobs{};
  std::array<std::uint64_t, 3> class_deadline_attained{};

  /// Fraction of deadline-tracked jobs of class `rank` that met their
  /// deadline (1.0 when the class saw no tracked jobs).
  double DeadlineAttainment(std::size_t rank) const {
    return class_deadline_jobs[rank] == 0
               ? 1.0
               : static_cast<double>(class_deadline_attained[rank]) /
                     static_cast<double>(class_deadline_jobs[rank]);
  }

  /// Simulated events retired per wall second (0 when not measured).
  double EventsPerSec() const {
    return sim_wall_seconds > 0
               ? static_cast<double>(events_fired) / sim_wall_seconds
               : 0.0;
  }

  /// Measured average utilization: busy time over delivered capacity —
  /// workers * makespan for a static fleet, the in-service integral when
  /// the fleet was elastic.
  double Utilization() const;

  /// Response times of jobs matching the filters.
  std::vector<double> ResponseTimes(ClassFilter cf,
                                    ConstraintFilter kf) const;
  /// Queuing delays of jobs matching the filters.
  std::vector<double> QueuingDelays(ClassFilter cf, ConstraintFilter kf) const;

  PercentileSummary ResponseSummary(ClassFilter cf, ConstraintFilter kf) const;
  PercentileSummary QueuingSummary(ClassFilter cf, ConstraintFilter kf) const;

  std::size_t CountJobs(ClassFilter cf, ConstraintFilter kf) const;
  std::size_t CountTasks(ClassFilter cf, ConstraintFilter kf) const;

  /// Structural sanity checks (completion >= submit, etc). Aborts on
  /// violation; called by the runner after each simulation.
  void CheckInvariants() const;
};

/// speedup = baseline / treatment for a given percentile of short-job
/// response times (how the paper reports "Phoenix improves by N x").
double SpeedupAtPercentile(const SimReport& treatment,
                           const SimReport& baseline, double percentile,
                           ClassFilter cf = ClassFilter::kShort,
                           ConstraintFilter kf = ConstraintFilter::kAll);

}  // namespace phoenix::metrics
