// P² (piecewise-parabolic) streaming quantile estimator — Jain & Chlamtac,
// CACM 1985.
//
// Tracks one quantile of a stream in O(1) memory and O(1) per sample,
// without storing observations. The simulator's reports use exact
// percentiles (we keep every job outcome anyway); this estimator exists for
// *online* consumers — e.g. a monitor that wants a live p99 of queue waits
// without retaining history — and is validated against the exact
// percentiles in tests.
#pragma once

#include <array>
#include <cstdint>

namespace phoenix::metrics {

class P2Quantile {
 public:
  /// q in (0, 1): the quantile to track (0.99 = p99).
  explicit P2Quantile(double q);

  void Add(double x);

  /// Current estimate. Exact while fewer than 5 samples have been seen.
  double Value() const;

  std::uint64_t count() const { return count_; }
  double quantile() const { return q_; }

 private:
  double Parabolic(int i, double d) const;
  double Linear(int i, double d) const;

  double q_;
  std::uint64_t count_ = 0;
  // Marker heights, positions and desired positions (5-marker P²).
  std::array<double, 5> heights_{};
  std::array<double, 5> positions_{};
  std::array<double, 5> desired_{};
  std::array<double, 5> desired_inc_{};
};

}  // namespace phoenix::metrics
