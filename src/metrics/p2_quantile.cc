#include "metrics/p2_quantile.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace phoenix::metrics {

P2Quantile::P2Quantile(double q) : q_(q) {
  PHOENIX_CHECK_MSG(q > 0.0 && q < 1.0, "quantile must be in (0,1)");
  desired_ = {1, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5};
  desired_inc_ = {0, q / 2, q, (1 + q) / 2, 1};
  positions_ = {1, 2, 3, 4, 5};
}

double P2Quantile::Parabolic(int i, double d) const {
  // The P² parabolic prediction formula.
  return heights_[i] +
         d / (positions_[i + 1] - positions_[i - 1]) *
             ((positions_[i] - positions_[i - 1] + d) *
                  (heights_[i + 1] - heights_[i]) /
                  (positions_[i + 1] - positions_[i]) +
              (positions_[i + 1] - positions_[i] - d) *
                  (heights_[i] - heights_[i - 1]) /
                  (positions_[i] - positions_[i - 1]));
}

double P2Quantile::Linear(int i, double d) const {
  const int j = i + static_cast<int>(d);
  return heights_[i] + d * (heights_[j] - heights_[i]) /
                           (positions_[j] - positions_[i]);
}

void P2Quantile::Add(double x) {
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) std::sort(heights_.begin(), heights_.end());
    return;
  }
  ++count_;

  // Find the cell containing x and clamp the extreme markers.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1;
  for (int i = 0; i < 5; ++i) desired_[i] += desired_inc_[i];

  // Adjust the three middle markers.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    if ((d >= 1 && positions_[i + 1] - positions_[i] > 1) ||
        (d <= -1 && positions_[i - 1] - positions_[i] < -1)) {
      const double step = d >= 0 ? 1.0 : -1.0;
      double candidate = Parabolic(i, step);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        heights_[i] = Linear(i, step);
      }
      positions_[i] += step;
    }
  }
}

double P2Quantile::Value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact small-sample quantile over the sorted prefix.
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + static_cast<int>(count_));
    const double rank = q_ * static_cast<double>(count_ - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1 - frac) + sorted[hi] * frac;
  }
  return heights_[2];
}

}  // namespace phoenix::metrics
