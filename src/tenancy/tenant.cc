#include "tenancy/tenant.h"

#include <algorithm>

namespace phoenix::tenancy {

const char* PriorityClassName(PriorityClass c) {
  switch (c) {
    case PriorityClass::kProd: return "prod";
    case PriorityClass::kBatch: return "batch";
    case PriorityClass::kBestEffort: return "best-effort";
  }
  return "?";
}

PriorityClass Lowered(PriorityClass c) {
  switch (c) {
    case PriorityClass::kProd: return PriorityClass::kBatch;
    case PriorityClass::kBatch: return PriorityClass::kBestEffort;
    case PriorityClass::kBestEffort: return PriorityClass::kBestEffort;
  }
  return PriorityClass::kBestEffort;
}

TenantRegistry::TenantRegistry(std::vector<TenantSpec> specs)
    : specs_(std::move(specs)), states_(specs_.size()) {
  for (const TenantSpec& s : specs_) {
    PHOENIX_CHECK_MSG(s.quota_share >= 0 && s.crv_share >= 0 &&
                          s.slo_target >= 0,
                      "tenant spec fields must be non-negative");
  }
  PHOENIX_CHECK_MSG(specs_.size() < kNoTenant,
                    "tenant id space exhausted");
}

double TenantRegistry::Budget(TenantId id, std::size_t fleet_size,
                              double window) const {
  const double share = spec(id).quota_share;
  if (share <= 0) return 0;
  return share * static_cast<double>(fleet_size) * window;
}

double TenantRegistry::Charge(TenantId id, double work, double budget) {
  TenantState& st = state(id);
  st.committed += work;
  if (budget <= 0) return 0;
  const double fraction = st.committed / budget;
  st.peak_quota_fraction = std::max(st.peak_quota_fraction, fraction);
  return fraction;
}

void TenantRegistry::Release(TenantId id, double work) {
  TenantState& st = state(id);
  st.committed -= work;
  // Float noise only; a genuinely negative balance is a charge/release bug.
  PHOENIX_DCHECK(st.committed > -1e-6);
  if (st.committed < 0) st.committed = 0;
}

void TenantRegistry::AdjustConstrainedQueued(TenantId id, double delta) {
  TenantState& st = state(id);
  st.queued_constrained = std::max(0.0, st.queued_constrained + delta);
  total_queued_constrained_ =
      std::max(0.0, total_queued_constrained_ + delta);
}

double TenantRegistry::ConstrainedShare(TenantId id) const {
  if (total_queued_constrained_ <= 0) return 0;
  return state(id).queued_constrained / total_queued_constrained_;
}

}  // namespace phoenix::tenancy
