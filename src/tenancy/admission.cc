#include "tenancy/admission.h"

namespace phoenix::tenancy {

AdmissionDecision DecideAdmission(const AdmissionInput& in) {
  AdmissionDecision d;
  d.priority = in.priority;

  // 1. Hard quota: over budget -> uncharged best-effort scavenger work.
  if (in.budget > 0 && in.committed + in.job_work > in.budget) {
    d.verdict = Verdict::kReject;
    d.priority = PriorityClass::kBestEffort;
    d.strip_slo = true;
    d.charge_quota = false;
    d.reason = "machine-second quota exhausted";
    return d;
  }

  // 2. SLO feasibility for latency-tracked short jobs.
  if (in.slo_target > 0 && in.short_class &&
      in.predicted_wait > in.slo_target) {
    if (in.priority == PriorityClass::kProd) {
      d.slo_at_risk = true;
      d.reason = "prod SLO at risk";
    } else {
      d.verdict = Verdict::kDowngrade;
      d.priority = Lowered(in.priority);
      d.strip_slo = true;
      d.relax_constraint = in.constrained;
      d.reason = "SLO unattainable at predicted wait";
      return d;
    }
  }

  // 3. CRV share: the tenant is over its constrained-supply cap. Keep the
  // class, pay in placement quality instead.
  if (in.crv_share_limit > 0 && in.constrained &&
      in.constrained_share > in.crv_share_limit) {
    d.verdict = Verdict::kDowngrade;
    d.relax_constraint = true;
    d.reason = "constrained-work share exceeded";
    return d;
  }

  return d;
}

}  // namespace phoenix::tenancy
