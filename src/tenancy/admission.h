// SLO-aware tenant admission: the decision lattice.
//
// Layered in front of the framework's constraint admission (forced
// relaxation in sched/base, Phoenix's proactive negotiation in
// core/admission): a tenanted job is first run through DecideAdmission,
// which may demote its priority class, strip its SLO, or ask for one soft
// constraint to be traded away, before the constraint layers see it. The
// function is pure — all scheduler state (fleet E[W], quota balances, CRV
// shares) arrives in AdmissionInput — so the lattice is unit-testable
// without a simulation.
//
// The lattice, in evaluation order:
//   1. machine-second quota exhausted      -> kReject: the job still runs
//      (the simulator completes every job) but as uncharged best-effort
//      scavenger work with no SLO — modeling a tenant resubmission outside
//      its guaranteed quota;
//   2. short-job SLO unattainable (fleet E[W] + placement RTT beyond the
//      target) -> prod is admitted anyway and counted slo-at-risk (prod
//      latency is why the quota exists); batch and best-effort are
//      downgraded one class, their SLO stripped, and — when constrained —
//      one soft constraint relaxed to widen the eligible pool;
//   3. CRV share exceeded (tenant's share of queued constrained work over
//      its cap) -> kDowngrade that keeps the class but trades one soft
//      constraint: the tenant is hogging constrained supply, so it pays in
//      placement quality, not in priority;
//   4. otherwise -> kAdmit.
#pragma once

#include "tenancy/tenant.h"

namespace phoenix::tenancy {

struct AdmissionInput {
  PriorityClass priority = PriorityClass::kBatch;
  bool short_class = true;
  /// The job requests at least one placement constraint.
  bool constrained = false;
  /// Effective SLO target (0 = none tracked for this job).
  double slo_target = 0;
  /// Estimated machine-seconds the job will consume.
  double job_work = 0;
  /// Tenant's committed, unreleased machine-seconds.
  double committed = 0;
  /// Tenant's machine-second budget (0 = unlimited).
  double budget = 0;
  /// Predicted short-job wait: fleet-mean M/G/1 E[W] + placement RTT.
  double predicted_wait = 0;
  /// Tenant's current share of queued constrained work.
  double constrained_share = 0;
  /// Tenant's CRV-share cap (0 = unlimited).
  double crv_share_limit = 0;
};

enum class Verdict : std::uint8_t { kAdmit, kDowngrade, kReject };

struct AdmissionDecision {
  Verdict verdict = Verdict::kAdmit;
  /// Effective class after the decision.
  PriorityClass priority = PriorityClass::kBatch;
  /// Drop the job's SLO tracking (it cannot be met; do not count it missed).
  bool strip_slo = false;
  /// Trade one soft constraint for a wider pool (composes with the
  /// framework's forced relaxation and Phoenix's negotiation).
  bool relax_constraint = false;
  /// Admitted although the SLO is predicted missed (prod only).
  bool slo_at_risk = false;
  /// Commit the job's work against the tenant quota (false for rejects).
  bool charge_quota = true;
  const char* reason = "admit";
};

AdmissionDecision DecideAdmission(const AdmissionInput& in);

}  // namespace phoenix::tenancy
