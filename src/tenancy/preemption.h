// Preemption policy: may an incoming prod task kill a running task?
//
// Pure eligibility rules on plain data (the scheduler supplies the victim's
// class, starvation-guard status, and preemption count), so every guard is
// unit-testable. The kill-and-requeue mechanics live in sched/base.
#pragma once

#include <cstddef>

#include "tenancy/tenant.h"

namespace phoenix::tenancy {

/// Why a preemption did or did not happen (counted by the scheduler).
enum class PreemptVerdict : std::uint8_t {
  kPreempt,
  /// Policy disabled, incoming work is not prod, or victim is not
  /// best-effort (batch and prod are never preempted).
  kIneligible,
  /// Victim exhausted its bypass budget: the Slack_threshold starvation
  /// guard already forced it to run, so killing it would starve it twice.
  kGuardedBySlack,
  /// Victim already paid max_preemptions_per_task restart costs.
  kPreemptCapReached,
};

class PreemptionPolicy {
 public:
  PreemptionPolicy() = default;
  PreemptionPolicy(bool enabled, std::size_t max_preemptions_per_task)
      : enabled_(enabled), max_preemptions_(max_preemptions_per_task) {}

  bool enabled() const { return enabled_; }

  PreemptVerdict Judge(PriorityClass incoming, PriorityClass victim,
                       bool victim_bypass_exhausted,
                       std::size_t victim_preempt_count) const {
    if (!enabled_ || incoming != PriorityClass::kProd ||
        victim != PriorityClass::kBestEffort) {
      return PreemptVerdict::kIneligible;
    }
    if (victim_bypass_exhausted) return PreemptVerdict::kGuardedBySlack;
    if (victim_preempt_count >= max_preemptions_) {
      return PreemptVerdict::kPreemptCapReached;
    }
    return PreemptVerdict::kPreempt;
  }

 private:
  bool enabled_ = false;
  std::size_t max_preemptions_ = 0;
};

}  // namespace phoenix::tenancy
