// Multi-tenant scheduling configuration.
//
// An empty tenant list disables the subsystem entirely: no admission gate,
// no preemption, no per-tenant accounting, and no extra RNG draws — the
// zero-tenant configuration is byte-identical to a build without tenancy.
#pragma once

#include <cstddef>
#include <vector>

#include "tenancy/tenant.h"

namespace phoenix::tenancy {

struct TenancyConfig {
  /// Tenant specs; a job's trace tag indexes this list. Empty = disabled.
  std::vector<TenantSpec> tenants;

  /// Prod-class work may kill-and-requeue a running best-effort task.
  bool preemption = true;

  /// Modeled restart cost, seconds added to a preempted task's re-run
  /// (checkpoint loss + container restart).
  double preemption_restart_cost = 2.0;

  /// A task preempted this many times becomes immune (pairs with the
  /// slack_threshold starvation guard to bound best-effort starvation).
  std::size_t max_preemptions_per_task = 3;

  /// Horizon (seconds) a quota_share buys: a tenant with share q on an
  /// N-machine fleet may hold q * N * quota_window committed machine-seconds.
  double quota_window = 120.0;

  bool enabled() const { return !tenants.empty(); }
};

}  // namespace phoenix::tenancy
