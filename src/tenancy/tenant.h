// Multi-tenant workload model: tenants, priority classes, quotas, SLOs.
//
// A tenant is a named principal that submits jobs with a priority class
// (prod / batch / best-effort), a machine-second quota, a cap on its share
// of the queued *constrained* work (the CRV-share quota — constrained
// supply is the scarce resource the paper is about), and an optional
// latency SLO target for its short jobs. The TenantRegistry holds the
// static specs plus the per-run accounting the admission and preemption
// policies read: committed quota, executed machine-seconds, queued
// constrained work, and the SLO / preemption counters that feed the
// per-tenant report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.h"

namespace phoenix::tenancy {

using TenantId = std::uint16_t;
/// Jobs without a tenant tag (every pre-tenancy trace) carry this id and
/// bypass tenant admission entirely.
inline constexpr TenantId kNoTenant = 0xffff;

/// Priority classes, ordered: a lower underlying value outranks a higher
/// one. Prod preempts best-effort; batch neither preempts nor is preempted.
enum class PriorityClass : std::uint8_t {
  kProd = 0,
  kBatch = 1,
  kBestEffort = 2,
};

inline constexpr std::uint8_t PriorityRank(PriorityClass c) {
  return static_cast<std::uint8_t>(c);
}

const char* PriorityClassName(PriorityClass c);

/// One step down the class ladder (best-effort is the floor).
PriorityClass Lowered(PriorityClass c);

struct TenantSpec {
  std::string name;
  PriorityClass priority = PriorityClass::kBatch;
  /// Fraction of fleet machine-seconds (over the configured quota window)
  /// this tenant may have committed at once. 0 = unlimited.
  double quota_share = 0.0;
  /// Max share of the cluster's queued constrained work. 0 = unlimited.
  double crv_share = 0.0;
  /// Short-job latency SLO: target max task wait, seconds. 0 = no SLO.
  double slo_target = 0.0;
};

/// Per-run mutable accounting for one tenant.
struct TenantState {
  /// Machine-seconds charged by admission and not yet released.
  double committed = 0;
  /// Highest committed/budget fraction observed (quota utilization).
  double peak_quota_fraction = 0;
  /// Executed machine-seconds attributed to this tenant.
  double usage_seconds = 0;
  /// Estimated machine-seconds of this tenant's constrained work currently
  /// sitting in worker queues (enqueue/dequeue balanced).
  double queued_constrained = 0;

  std::uint64_t jobs = 0;
  std::uint64_t admits = 0;
  std::uint64_t downgrades = 0;
  std::uint64_t rejects = 0;
  std::uint64_t slo_jobs = 0;
  std::uint64_t slo_attained = 0;
  std::uint64_t slo_at_risk = 0;
  std::uint64_t preemptions_issued = 0;
  std::uint64_t preemptions_suffered = 0;
};

/// Specs + accounting for every tenant of a run. Owned by the scheduler;
/// one instance per simulation, so parallel experiments never share state.
class TenantRegistry {
 public:
  TenantRegistry() = default;
  explicit TenantRegistry(std::vector<TenantSpec> specs);

  /// A registry with no tenants disables every tenancy code path.
  bool enabled() const { return !specs_.empty(); }
  std::size_t size() const { return specs_.size(); }

  /// True for ids that resolve to a configured tenant (kNoTenant and
  /// out-of-range tags from foreign traces are not "known").
  bool Known(TenantId id) const { return id < specs_.size(); }

  const TenantSpec& spec(TenantId id) const {
    PHOENIX_DCHECK(Known(id));
    return specs_[id];
  }
  TenantState& state(TenantId id) {
    PHOENIX_DCHECK(Known(id));
    return states_[id];
  }
  const TenantState& state(TenantId id) const {
    PHOENIX_DCHECK(Known(id));
    return states_[id];
  }

  /// Machine-second budget for `id` on a `fleet_size` fleet over `window`
  /// seconds; 0 means unlimited (no quota_share configured).
  double Budget(TenantId id, std::size_t fleet_size, double window) const;

  /// Commits `work` machine-seconds against the tenant's quota and records
  /// the post-charge utilization fraction (0 when `budget` is unlimited).
  /// Returns that fraction — the kTenantAdmit event payload the auditor's
  /// quota rule checks.
  double Charge(TenantId id, double work, double budget);
  /// Releases a prior charge (at job completion).
  void Release(TenantId id, double work);

  /// Constrained-queue accounting: est machine-seconds entering/leaving
  /// worker queues for this tenant's constrained jobs.
  void AdjustConstrainedQueued(TenantId id, double delta);
  /// Tenant's share of all queued constrained work (0 when none is queued).
  double ConstrainedShare(TenantId id) const;
  double total_queued_constrained() const { return total_queued_constrained_; }

 private:
  std::vector<TenantSpec> specs_;
  std::vector<TenantState> states_;
  double total_queued_constrained_ = 0;
};

}  // namespace phoenix::tenancy
