#include "power/controller.h"

#include <algorithm>
#include <cmath>

#include "core/phoenix.h"
#include "util/check.h"

namespace phoenix::power {

namespace {
// Estimator waits are +infinity for an unstable queue; the same clamp the
// elasticity controller applies keeps the median finite.
constexpr double kWaitClamp = 1e6;
// Per-tick EWMA weight for the sampled occupancy: at the heartbeat cadence
// this averages utilization over roughly the last five ticks.
constexpr double kUtilAlpha = 0.2;
}  // namespace

PowerController::PowerController(sim::Engine& engine,
                                 sched::SchedulerBase& scheduler,
                                 cluster::MembershipView& view,
                                 PowerManager& manager, std::size_t park_limit)
    : engine_(engine), scheduler_(scheduler), view_(view), manager_(manager),
      policy_(manager.config().policy),
      phoenix_(dynamic_cast<core::PhoenixScheduler*>(&scheduler)),
      park_limit_(std::min(park_limit, view.size())),
      tick_interval_(scheduler.config().heartbeat_interval),
      last_busy_seen_(view.size(), 0.0), util_ewma_(view.size(), 0.0) {
  PHOENIX_CHECK_MSG(view.size() == scheduler.num_machines(),
                    "membership view and scheduler disagree on fleet size");
}

void PowerController::Start() {
  engine_.ScheduleAfter(tick_interval_, [this] { Tick(); });
}

void PowerController::Tick() {
  if (scheduler_.AllJobsDone()) return;
  const double now = engine_.Now();
  const FleetSample fleet = Sample(now);
  WakePass(now, fleet.pressure);
  if (policy_.dvfs) DvfsPass(now);
  if (policy_.park) ParkPass(now, fleet);
  engine_.ScheduleAfter(tick_interval_, [this] { Tick(); });
}

PowerController::FleetSample PowerController::Sample(double now) {
  FleetSample fleet;
  std::vector<double> waits;
  for (std::size_t id = 0; id < view_.size(); ++id) {
    if (!view_.Bindable(id)) continue;
    const sched::WorkerState& w = scheduler_.worker_state(id);
    if (w.failed) continue;
    ++fleet.awake;
    const bool occupied = w.HoldsWork();
    if (occupied) {
      last_busy_seen_[id] = now;
      ++fleet.occupied;
    }
    // A drained worker's estimator cache still shows its last busy period,
    // but its true wait for a new arrival is ~0 — count it as such.
    waits.push_back(
        occupied ? std::min(w.estimator.EstimateWait(), kWaitClamp) : 0.0);
    util_ewma_[id] += kUtilAlpha * ((occupied ? 1.0 : 0.0) - util_ewma_[id]);
    fleet.util_sum += util_ewma_[id];
  }
  // Pressure: no idle machine left (saturation — a new arrival must queue
  // no matter what the estimators say), or the median E[W] across the
  // awake fleet breaching the wake threshold. The median keeps a few
  // saturated stragglers from drowning the signal: tasks queued behind one
  // long-running machine are not a reason to wake the fleet.
  if (!waits.empty()) {
    const auto mid =
        waits.begin() + static_cast<std::ptrdiff_t>(waits.size() / 2);
    std::nth_element(waits.begin(), mid, waits.end());
    fleet.median_wait = *mid;
  }
  fleet.pressure =
      (fleet.awake > 0 && fleet.occupied == fleet.awake) ||
      fleet.median_wait > policy_.wake_wait_factor * policy_.target_wait;
  return fleet;
}

void PowerController::BeginWake(cluster::MachineId id) {
  scheduler_.WakeParkedMachine(id);
}

void PowerController::WakePass(double now, bool pressure) {
  (void)now;
  // Hot predicates with queued demand and zero awake supply — uncovered
  // demand that cannot be served until a satisfying machine wakes. This is
  // the CRV-driven wake signal (Phoenix only; other schedulers wake on the
  // fleet pressure signal alone). Transient count > supply buildup drains
  // on its own and is deliberately not a wake trigger.
  std::vector<core::CrvMonitor::PredicateDemand> hot;
  if (phoenix_ != nullptr) {
    for (const auto& pd : phoenix_->HotSupplyDemand()) {
      if (pd.count > 0 && pd.supply == 0) hot.push_back(pd);
    }
  }
  if (!pressure && hot.empty()) return;

  struct Candidate {
    cluster::MachineId id;
    std::size_t hot_score;
    double penalty;
  };
  std::vector<Candidate> candidates;
  for (std::size_t id = 0; id < view_.size(); ++id) {
    if (view_.state(id) != cluster::MachineLifecycle::kParked) continue;
    if (scheduler_.worker_state(id).failed) continue;
    std::size_t score = 0;
    for (const auto& pd : hot) {
      if (view_.cluster().machine(id).Satisfies(pd.constraint)) ++score;
    }
    candidates.push_back({static_cast<cluster::MachineId>(id), score,
                          manager_.WakePenalty(id)});
  }
  if (candidates.empty()) return;
  // Hot-predicate coverage first, then the cheapest wake, then lowest id —
  // the wake-cost penalty is how probe-plane economics reach this decision.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.hot_score != b.hot_score) return a.hot_score > b.hot_score;
              if (a.penalty != b.penalty) return a.penalty < b.penalty;
              return a.id < b.id;
            });
  std::size_t wakes = 0;
  for (const Candidate& c : candidates) {
    if (wakes >= policy_.wake_step) break;
    // Without fleet-wide pressure only wake for uncovered hot demand.
    if (!pressure && c.hot_score == 0) break;
    BeginWake(c.id);
    ++wakes;
  }
  if (wakes > 0) ++stats_.wake_decisions;
}

void PowerController::DvfsPass(double now) {
  (void)now;
  for (std::size_t id = 0; id < view_.size(); ++id) {
    if (!view_.Bindable(id)) continue;
    const sched::WorkerState& w = scheduler_.worker_state(id);
    if (w.failed) continue;
    const double rho = util_ewma_[id];
    const unsigned p = manager_.p_state(id);
    if (rho > policy_.dvfs_high_rho && p > 0) {
      scheduler_.SetMachinePState(static_cast<cluster::MachineId>(id), p - 1);
    } else if (rho < policy_.dvfs_low_rho && p + 1 < kNumPStates) {
      scheduler_.SetMachinePState(static_cast<cluster::MachineId>(id), p + 1);
    }
  }
}

void PowerController::ParkPass(double now, const FleetSample& fleet) {
  // Hysteresis band: wakes fire above wake_wait_factor * target_wait,
  // parks only below target_wait itself. In between the controller holds —
  // otherwise consolidating to the rho target pushes waits over the wake
  // threshold and the fleet bang-bangs between park and wake.
  if (fleet.pressure || fleet.median_wait > policy_.target_wait) return;
  const auto floor = static_cast<std::size_t>(std::ceil(
      policy_.min_active_fraction * static_cast<double>(view_.size())));
  const std::size_t min_active = std::max<std::size_t>(1, floor);
  // Consolidation target: enough awake machines to run the sampled
  // utilization at park_target_rho. Anything above that is excess the
  // survivors can absorb.
  const auto target = std::max(
      min_active, static_cast<std::size_t>(
                      std::ceil(fleet.util_sum / policy_.park_target_rho)));
  if (fleet.awake <= target) return;
  const std::size_t excess = fleet.awake - target;

  // CRV-aware coverage veto: never park the last awake satisfier of a
  // currently-hot predicate — waking it back costs a full S3 exit the
  // moment that demand recurs. Rare-predicate demand that is not hot right
  // now is covered by the dispatch-time demand wake instead of a veto.
  std::vector<core::CrvMonitor::PredicateDemand> hot;
  if (phoenix_ != nullptr) {
    for (const auto& pd : phoenix_->HotSupplyDemand()) {
      if (pd.supply <= 1) hot.push_back(pd);
    }
  }

  struct Candidate {
    cluster::MachineId id;
    double last_busy;
  };
  std::vector<Candidate> candidates;
  for (std::size_t id = 0; id < park_limit_; ++id) {
    if (!view_.Bindable(id)) continue;
    const sched::WorkerState& w = scheduler_.worker_state(id);
    if (w.failed || w.HoldsWork()) continue;
    if (now - last_busy_seen_[id] < policy_.park_idle_after) continue;
    candidates.push_back(
        {static_cast<cluster::MachineId>(id), last_busy_seen_[id]});
  }
  // Longest-idle first; ties (e.g. never-busy machines) break on id so the
  // decision is identical across thread counts.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.last_busy != b.last_busy) return a.last_busy < b.last_busy;
              return a.id < b.id;
            });
  std::size_t parks = 0;
  for (const Candidate& c : candidates) {
    if (parks >= policy_.park_step || parks >= excess) break;
    if (view_.bindable_count() <= min_active) {
      ++stats_.park_vetoes_floor;
      break;
    }
    bool last_satisfier = false;
    for (const auto& pd : hot) {
      if (view_.cluster().machine(c.id).Satisfies(pd.constraint)) {
        last_satisfier = true;
        break;
      }
    }
    if (last_satisfier) {
      ++stats_.park_vetoes_coverage;
      continue;
    }
    if (scheduler_.ParkMachine(c.id)) ++parks;
  }
}

}  // namespace phoenix::power
