#include "power/model.h"

#include "cluster/attributes.h"
#include "cluster/machine.h"
#include "util/check.h"

namespace phoenix::power {

const std::vector<MachineClass>& ClassCatalog() {
  // Profiles follow the S/P/C-state exemplars in SNIPPETS.md: exec watts
  // roughly double per tier, deep sleep draws a few watts, and bigger
  // machines pay a longer S3 wake. Idle draw is deliberately high (~40% of
  // peak) — servers are not energy-proportional, which is precisely why
  // parking an idle machine or running a lightly loaded one at a lower
  // P-state saves real energy.
  static const std::vector<MachineClass> kCatalog = {
      {"efficiency",
       {80.0, 60.0, 45.0, 30.0},
       {30.0, 25.0, 20.0, 16.0},
       2.0,
       5.0,
       {2000.0, 1600.0, 1200.0, 800.0}},
      {"standard",
       {160.0, 120.0, 90.0, 60.0},
       {60.0, 50.0, 40.0, 32.0},
       4.0,
       10.0,
       {3000.0, 2400.0, 1800.0, 1200.0}},
      {"performance",
       {320.0, 240.0, 180.0, 120.0},
       {110.0, 92.0, 74.0, 60.0},
       8.0,
       20.0,
       {4000.0, 3200.0, 2400.0, 1600.0}},
  };
  return kCatalog;
}

PowerModel::PowerModel(const cluster::Cluster& cluster) {
  class_of_.reserve(cluster.size());
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const cluster::Machine& m = cluster.machine(i);
    const std::int32_t cores = m.Get(cluster::Attr::kNumCores);
    const std::int32_t clock = m.Get(cluster::Attr::kCpuClock);
    std::uint32_t c = 1;  // standard
    if (cores <= 4) {
      c = 0;  // efficiency: the small-core tail of the fleet
    } else if (cores >= 16 || clock >= 32) {
      c = 2;  // performance: many-core or high-clock parts
    }
    class_of_.push_back(c);
  }
  PHOENIX_CHECK(ClassCatalog().size() == 3);
}

}  // namespace phoenix::power
