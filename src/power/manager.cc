#include "power/manager.h"

#include "cluster/machine.h"
#include "util/check.h"

namespace phoenix::power {

PowerManager::PowerManager(const cluster::Cluster& cluster,
                           const PowerConfig& config)
    : cluster_(cluster), config_(config), model_(cluster),
      state_(cluster.size()) {
  PHOENIX_CHECK_MSG(config.enabled, "PowerManager requires an enabled config");
}

void PowerManager::StartRun(double now, const cluster::MembershipView* view) {
  std::vector<double> watts(state_.size());
  std::vector<double> sleeping(state_.size());
  for (std::size_t i = 0; i < state_.size(); ++i) {
    const bool asleep =
        view != nullptr && view->state(static_cast<cluster::MachineId>(i)) ==
                               cluster::MachineLifecycle::kParked;
    state_[i] = MachinePowerState{};
    state_[i].asleep = asleep;
    watts[i] = asleep ? model_.SleepWatts(i) : model_.IdleWatts(i, 0);
    sleeping[i] = asleep ? 1.0 : 0.0;
  }
  meter_.Init(now, watts);
  sleep_meter_.Init(now, sleeping);
}

double PowerManager::CurrentWatts(cluster::MachineId id) const {
  const MachinePowerState& s = state_[id];
  if (s.asleep) return model_.SleepWatts(id);
  if (s.executing) return model_.ExecWatts(id, s.p_state);
  return model_.IdleWatts(id, s.p_state);
}

double PowerManager::OnExecBegin(cluster::MachineId id, double now) {
  MachinePowerState& s = state_[id];
  PHOENIX_CHECK_MSG(!s.asleep, "a sleeping machine cannot execute");
  if (s.executing) return -1.0;
  s.executing = true;
  const double w = CurrentWatts(id);
  meter_.SetWatts(id, now, w);
  return w;
}

double PowerManager::OnExecEnd(cluster::MachineId id, double now) {
  MachinePowerState& s = state_[id];
  if (!s.executing) return -1.0;  // idempotent: evict + preempt paths overlap
  s.executing = false;
  const double w = CurrentWatts(id);
  meter_.SetWatts(id, now, w);
  return w;
}

double PowerManager::SetPState(cluster::MachineId id, unsigned p, double now) {
  PHOENIX_CHECK(p < kNumPStates);
  MachinePowerState& s = state_[id];
  PHOENIX_CHECK_MSG(!s.asleep, "DVFS on a sleeping machine");
  if (s.p_state == p) return -1.0;
  s.p_state = static_cast<std::uint8_t>(p);
  const double w = CurrentWatts(id);
  meter_.SetWatts(id, now, w);
  return w;
}

double PowerManager::Park(cluster::MachineId id, double now) {
  MachinePowerState& s = state_[id];
  PHOENIX_CHECK_MSG(!s.asleep, "double park");
  PHOENIX_CHECK_MSG(!s.executing, "parking a machine mid-execution");
  s.asleep = true;
  const double w = CurrentWatts(id);
  meter_.SetWatts(id, now, w);
  sleep_meter_.SetWatts(id, now, 1.0);
  return w;
}

double PowerManager::Wake(cluster::MachineId id, double now) {
  MachinePowerState& s = state_[id];
  PHOENIX_CHECK_MSG(s.asleep, "waking a machine that is not asleep");
  s.asleep = false;
  s.p_state = 0;
  const double w = CurrentWatts(id);
  meter_.SetWatts(id, now, w);
  sleep_meter_.SetWatts(id, now, 0.0);
  return w;
}

}  // namespace phoenix::power
