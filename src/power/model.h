// Machine power model: per-machine-class electrical profiles.
//
// Each machine class carries the S/P/C-state catalog the related energy
// simulators model (see SNIPPETS.md): execution and awake-idle watts per
// DVFS P-state (idle draw falls with the P-state — that is what throttling
// a lightly loaded machine buys), deep-sleep watts (S3), the S3 -> active
// wake latency, and per-P-state MIPS. Service times scale with MIPS: a
// task on a machine throttled to P-state p runs mips[P0] / mips[p] times
// longer than at full clock (the scheduler boosts to P0 at dispatch, so in
// practice work executes at full speed and P-states thin the idle draw).
//
// Classes are derived deterministically from the immutable machine
// attributes (core count and CPU clock), so attaching a power model never
// consumes fleet-synthesis randomness and never perturbs the cluster.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "cluster/cluster.h"

namespace phoenix::power {

inline constexpr unsigned kNumPStates = 4;

/// One machine class's electrical profile. Watts are strictly ordered
/// exec > idle > sleep at every P-state; watts and mips strictly decrease
/// with the P-state index.
struct MachineClass {
  std::string_view name;
  std::array<double, kNumPStates> exec_watts;  // while executing, per P-state
  std::array<double, kNumPStates> idle_watts;  // awake, slot idle (C1)
  double sleep_watts;                          // deep sleep (S3)
  double wake_latency;                         // S3 -> active, seconds
  std::array<double, kNumPStates> mips;        // service rate per P-state
};

/// The built-in class catalog: efficiency / standard / performance tiers.
const std::vector<MachineClass>& ClassCatalog();

/// Maps every machine of a cluster onto a class from the catalog (by core
/// count and clock) and answers per-machine power queries.
class PowerModel {
 public:
  explicit PowerModel(const cluster::Cluster& cluster);

  std::size_t size() const { return class_of_.size(); }
  std::uint32_t class_of(cluster::MachineId id) const { return class_of_[id]; }
  const MachineClass& cls(cluster::MachineId id) const {
    return ClassCatalog()[class_of_[id]];
  }

  double ExecWatts(cluster::MachineId id, unsigned p) const {
    return cls(id).exec_watts[p];
  }
  double IdleWatts(cluster::MachineId id, unsigned p) const {
    return cls(id).idle_watts[p];
  }
  double SleepWatts(cluster::MachineId id) const { return cls(id).sleep_watts; }
  double WakeLatency(cluster::MachineId id) const {
    return cls(id).wake_latency;
  }
  /// Duration multiplier at P-state `p`: mips[P0] / mips[p] >= 1.
  double SpeedScale(cluster::MachineId id, unsigned p) const {
    const MachineClass& c = cls(id);
    return c.mips[0] / c.mips[p];
  }

 private:
  std::vector<std::uint32_t> class_of_;
};

}  // namespace phoenix::power
