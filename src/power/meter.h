// Energy accounting: a per-machine dwell integral.
//
// Each machine is one channel holding (current watts, time of last change,
// joules accrued before it). Every power-state transition closes the open
// dwell at the transition instant; reads close every dwell at a caller-
// supplied horizon without mutating the channels, so a const report can be
// built mid-run. joules == Sigma over dwells of (dwell length x watts) —
// exactly the quantity the auditor reconstructs from kPowerState events
// for the energy-conservation rule.
#pragma once

#include <cstddef>
#include <vector>

#include "util/check.h"

namespace phoenix::power {

class EnergyMeter {
 public:
  /// Starts every channel at `watts[i]` from time `now`.
  void Init(double now, const std::vector<double>& watts) {
    ch_.assign(watts.size(), Channel{});
    for (std::size_t i = 0; i < watts.size(); ++i) {
      ch_[i].watts = watts[i];
      ch_[i].last_change = now;
    }
  }

  /// Machine `id` draws `watts` from `now` on; the previous rate's dwell
  /// is closed at `now`.
  void SetWatts(std::size_t id, double now, double watts) {
    Channel& c = ch_[id];
    PHOENIX_CHECK_MSG(now >= c.last_change, "power meter time went backwards");
    c.joules += c.watts * (now - c.last_change);
    c.last_change = now;
    c.watts = watts;
  }

  double watts(std::size_t id) const { return ch_[id].watts; }

  double MachineJoules(std::size_t id, double horizon) const {
    const Channel& c = ch_[id];
    const double tail = horizon > c.last_change ? horizon - c.last_change : 0.0;
    return c.joules + c.watts * tail;
  }

  double TotalJoules(double horizon) const {
    double total = 0.0;
    for (std::size_t i = 0; i < ch_.size(); ++i) {
      total += MachineJoules(i, horizon);
    }
    return total;
  }

 private:
  struct Channel {
    double watts = 0.0;
    double last_change = 0.0;
    double joules = 0.0;
  };
  std::vector<Channel> ch_;
};

}  // namespace phoenix::power
