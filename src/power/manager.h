// PowerManager: per-machine electrical state plus the energy integral.
//
// The manager owns what the machines *are* (awake/asleep, current DVFS
// P-state, executing or idle) and what that costs (the EnergyMeter); the
// PowerController owns *policy* (when to park, throttle, wake) and the
// scheduler owns *actuation* (lifecycle transitions + event emission).
// Every transition returns the machine's new draw in watts so the caller
// can emit the matching kPowerState event — the auditor re-integrates
// those events and checks them against this meter at the end of the run
// (energy conservation: joules == Sigma state-dwell x watts).
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/membership.h"
#include "power/config.h"
#include "power/meter.h"
#include "power/model.h"

namespace phoenix::power {

class PowerManager {
 public:
  PowerManager(const cluster::Cluster& cluster, const PowerConfig& config);

  const PowerConfig& config() const { return config_; }
  const PowerModel& model() const { return model_; }

  /// Initializes every machine's state at `now`: machines the view holds
  /// parked start asleep (sleep watts), the rest awake-idle at P0. Call
  /// once, before the first transition (SubmitTrace does).
  void StartRun(double now, const cluster::MembershipView* view);

  // --- transitions; each returns the new watts, or a negative value when
  // --- the call was a no-op (no kPowerState event to emit).
  double OnExecBegin(cluster::MachineId id, double now);
  double OnExecEnd(cluster::MachineId id, double now);
  double SetPState(cluster::MachineId id, unsigned p, double now);
  double Park(cluster::MachineId id, double now);
  /// Asleep -> awake. Resets the machine to P0 (a wake is demand-driven;
  /// it comes back at full clock).
  double Wake(cluster::MachineId id, double now);

  bool asleep(cluster::MachineId id) const { return state_[id].asleep; }
  bool executing(cluster::MachineId id) const { return state_[id].executing; }
  unsigned p_state(cluster::MachineId id) const { return state_[id].p_state; }
  double watts(cluster::MachineId id) const { return meter_.watts(id); }

  /// Duration multiplier for a task starting on `id` now (>= 1).
  double SpeedMultiplier(cluster::MachineId id) const {
    return model_.SpeedScale(id, state_[id].p_state);
  }
  double WakeLatency(cluster::MachineId id) const {
    return model_.WakeLatency(id);
  }
  /// The wake cost folded into a parked worker's advertised E[W].
  double WakePenalty(cluster::MachineId id) const {
    return model_.WakeLatency(id) * config_.policy.wake_penalty_factor;
  }

  // --- accounting (const: dwells are closed at `horizon` without mutation).
  double TotalJoules(double horizon) const {
    return meter_.TotalJoules(horizon);
  }
  double MachineJoules(cluster::MachineId id, double horizon) const {
    return meter_.MachineJoules(id, horizon);
  }
  /// Integral of the number of asleep machines (machine-seconds in S3).
  double SleepMachineSeconds(double horizon) const {
    return sleep_meter_.TotalJoules(horizon);
  }

 private:
  struct MachinePowerState {
    std::uint8_t p_state = 0;
    bool asleep = false;
    bool executing = false;
  };

  double CurrentWatts(cluster::MachineId id) const;

  const cluster::Cluster& cluster_;
  PowerConfig config_;
  PowerModel model_;
  std::vector<MachinePowerState> state_;
  EnergyMeter meter_;
  // Reuses the dwell-integral machinery at 1 "watt" per asleep machine, so
  // SleepMachineSeconds falls out of the same closed-at-horizon read.
  EnergyMeter sleep_meter_;
};

}  // namespace phoenix::power
