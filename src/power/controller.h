// PowerController: park/DVFS/wake policy on the heartbeat cadence.
//
// Runs its own tick chain at the scheduler's heartbeat interval (scheduled
// after SubmitTrace, so each tick observes the heartbeat's refreshed state
// at the same instant — the same pattern as elastic::ElasticityController).
//
// The controller samples its own signals from ground-truth worker state
// rather than the per-worker M/G/1 caches: those caches only refresh on
// task events, so an idle worker advertises its last busy-period estimate
// indefinitely (correct for probe ranking, where only occupied workers
// matter, but garbage for fleet-wide control). Each tick maintains a
// per-machine busy/queued EWMA (the utilization signal for DVFS and park
// sizing) and derives fleet pressure from saturation (every awake machine
// occupied) plus the median E[W] across the awake fleet, counting drained
// workers at zero.
//
// Each tick, in order:
//
//   1. Wake pass — under fleet pressure, or when Phoenix reports hot CRV
//      predicates with queued demand and zero awake supply (uncovered
//      demand: those tasks cannot be served until a satisfying machine
//      wakes), wake up to wake_step parked machines (hot-predicate
//      coverage first, then cheapest wake). A wake is
//      ProvisionMachine(wake_latency) plus a timer that commissions the
//      machine when the S3 exit completes.
//   2. DVFS pass — step each bindable worker's P-state one notch through
//      the [dvfs_low_rho, dvfs_high_rho] hysteresis band on its sampled
//      utilization.
//   3. Park pass — consolidation: size the awake fleet so the sampled
//      utilization would run at park_target_rho on the survivors, then
//      park the longest-idle excess (each candidate continuously idle for
//      park_idle_after), capped per tick, vetoed by the min-active floor
//      and by the CRV coverage guard (never park the last awake satisfier
//      of a currently-hot predicate), and suppressed entirely while the
//      median wait sits above target_wait — the hysteresis band below the
//      wake threshold that keeps park/wake from bang-banging. Probes only
//      sample bindable machines, so parking concentrates load on the
//      survivors; if a rare constraint later arrives with every satisfier
//      asleep, the scheduler's dispatch-time demand wake covers it.
//
// Every scan is an ascending-id loop with no RNG, so powered runs stay
// fingerprint-identical across --threads for free.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/membership.h"
#include "power/config.h"
#include "power/manager.h"
#include "sched/base.h"
#include "sim/engine.h"

namespace phoenix::core {
class PhoenixScheduler;
}  // namespace phoenix::core

namespace phoenix::power {

class PowerController {
 public:
  /// `park_limit`: only machines with id < park_limit are park candidates
  /// (an elastic run excludes its transient pool so lease top-up and the
  /// park policy do not fight over the same machines; DVFS and wakes cover
  /// the whole fleet). The controller borrows everything it is handed.
  PowerController(sim::Engine& engine, sched::SchedulerBase& scheduler,
                  cluster::MembershipView& view, PowerManager& manager,
                  std::size_t park_limit);

  /// Schedules the recurring tick. Call after SubmitTrace.
  void Start();

  struct Stats {
    std::uint64_t park_vetoes_coverage = 0;
    std::uint64_t park_vetoes_floor = 0;
    std::uint64_t wake_decisions = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  /// Fleet state sampled at the top of each tick.
  struct FleetSample {
    std::size_t awake = 0;     // bindable, non-failed machines
    std::size_t occupied = 0;  // of those, holding running or queued work
    double util_sum = 0.0;     // sum of per-machine utilization EWMAs
    double median_wait = 0.0;  // median E[W] across the awake fleet
    bool pressure = false;     // wake-threshold breach (see Sample())
  };

  void Tick();
  FleetSample Sample(double now);
  void WakePass(double now, bool pressure);
  void DvfsPass(double now);
  void ParkPass(double now, const FleetSample& fleet);
  void BeginWake(cluster::MachineId id);

  sim::Engine& engine_;
  sched::SchedulerBase& scheduler_;
  cluster::MembershipView& view_;
  PowerManager& manager_;
  const PowerPolicy& policy_;
  core::PhoenixScheduler* phoenix_ = nullptr;  // CRV-aware wake targeting
  std::size_t park_limit_;
  double tick_interval_;
  /// Last tick at which each machine was seen holding work; parking
  /// requires a full park_idle_after of consecutive idle observations.
  std::vector<double> last_busy_seen_;
  /// Per-machine busy-or-queued occupancy, EWMA-sampled once per tick —
  /// the controller's own utilization estimate (the worker-side M/G/1
  /// caches go stale the moment a worker drains).
  std::vector<double> util_ewma_;
  Stats stats_;
};

}  // namespace phoenix::power
