// Configuration for the energy/power subsystem (src/power).
//
// A PowerConfig with enabled == false (the default) attaches nothing: the
// scheduler never constructs a PowerManager, no machine carries a power
// state, and the simulation is byte-identical to a build without src/power.
#pragma once

#include <cstddef>

namespace phoenix::power {

/// Actuation policy knobs for the PowerController. With both `park` and
/// `dvfs` off the controller only meters energy (the "always-on" baseline
/// every park/DVFS policy is judged against).
struct PowerPolicy {
  /// Deep-sleep (S-state) idle machines after `park_idle_after` seconds.
  bool park = true;
  /// DVFS-throttle lightly loaded machines / boost loaded ones (P-states).
  bool dvfs = true;

  /// A machine must be continuously idle (no running task, empty queue)
  /// for this long before it becomes a park candidate.
  double park_idle_after = 30.0;
  /// Consolidation target: park excess machines until the observed fleet
  /// utilization would run at roughly this rho on the remaining awake
  /// capacity. Probes only sample bindable machines, so parking the excess
  /// concentrates load on the survivors instead of leaving the whole fleet
  /// lukewarm.
  double park_target_rho = 0.6;
  /// Never park below this fraction of the fleet kept bindable — the
  /// floor bounds worst-case wake storms after a lull.
  double min_active_fraction = 0.25;
  /// Parks are suppressed (and wakes issued) while the fleet-mean E[W]
  /// exceeds wake_wait_factor * target_wait.
  double target_wait = 5.0;
  double wake_wait_factor = 1.5;
  /// Per-tick actuation caps: at most this many parks/wakes per decision.
  std::size_t park_step = 4;
  std::size_t wake_step = 4;

  /// DVFS hysteresis band on the per-worker observed utilization rho:
  /// below `dvfs_low_rho` step one P-state down (slower, cheaper), above
  /// `dvfs_high_rho` step one up (faster, hungrier).
  double dvfs_low_rho = 0.15;
  double dvfs_high_rho = 0.60;

  /// CRV supply weight of a parked machine that satisfies a predicate:
  /// sleeping capacity counts as wake-discounted supply (0 disables).
  double parked_supply_weight = 0.5;
  /// A parked worker's advertised E[W] is wake_penalty_factor x its
  /// wake latency — the wake cost folded into WorkerWaitEstimator.
  double wake_penalty_factor = 1.0;
};

struct PowerConfig {
  bool enabled = false;
  PowerPolicy policy;
};

}  // namespace phoenix::power
