// Tests for the P² streaming quantile estimator and the Erlang-C / M/M/c
// closed forms.
#include <cmath>

#include <gtest/gtest.h>

#include "metrics/p2_quantile.h"
#include "metrics/percentile.h"
#include "queueing/distributions.h"
#include "queueing/mg1.h"
#include "util/rng.h"

namespace phoenix {
namespace {

// ---------------------------------------------------------------- P²

TEST(P2Quantile, EmptyIsZero) {
  metrics::P2Quantile p(0.5);
  EXPECT_DOUBLE_EQ(p.Value(), 0.0);
  EXPECT_EQ(p.count(), 0u);
}

TEST(P2Quantile, ExactForSmallSamples) {
  metrics::P2Quantile p(0.5);
  p.Add(3);
  EXPECT_DOUBLE_EQ(p.Value(), 3.0);
  p.Add(1);
  EXPECT_DOUBLE_EQ(p.Value(), 2.0);  // median of {1,3}
  p.Add(2);
  EXPECT_DOUBLE_EQ(p.Value(), 2.0);
}

TEST(P2Quantile, MedianOfUniformStream) {
  metrics::P2Quantile p(0.5);
  util::Rng rng(1);
  for (int i = 0; i < 50000; ++i) p.Add(rng.Uniform(0, 100));
  EXPECT_NEAR(p.Value(), 50.0, 2.0);
}

TEST(P2Quantile, TailQuantileOfUniformStream) {
  metrics::P2Quantile p(0.99);
  util::Rng rng(2);
  for (int i = 0; i < 50000; ++i) p.Add(rng.Uniform(0, 100));
  EXPECT_NEAR(p.Value(), 99.0, 1.0);
}

TEST(P2Quantile, TracksExponentialTail) {
  metrics::P2Quantile p(0.9);
  util::Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    p.Add(queueing::SampleExponential(rng, 1.0));
  }
  // p90 of Exp(1) is ln(10) ~ 2.3026.
  EXPECT_NEAR(p.Value(), std::log(10.0), 0.15);
}

TEST(P2Quantile, MonotoneStreamEstimatesRank) {
  metrics::P2Quantile p(0.5);
  for (int i = 1; i <= 10001; ++i) p.Add(i);
  EXPECT_NEAR(p.Value(), 5001, 250);
}

// ---- Small-sample (n < 5) exactness: before the five P² markers exist,
// Value() must be the exact interpolated quantile of the sorted prefix.

TEST(P2Quantile, ExactMedianOfFourUnsortedSamples) {
  metrics::P2Quantile p(0.5);
  for (const double x : {7.0, 1.0, 5.0, 3.0}) p.Add(x);
  // sorted {1,3,5,7}, rank 0.5*3 = 1.5 -> (3+5)/2
  EXPECT_DOUBLE_EQ(p.Value(), 4.0);
  EXPECT_EQ(p.count(), 4u);
}

TEST(P2Quantile, ExactTailQuantileOfFourSamples) {
  metrics::P2Quantile p(0.99);
  for (const double x : {7.0, 1.0, 5.0, 3.0}) p.Add(x);
  // rank 0.99*3 = 2.97 -> 0.03*5 + 0.97*7
  EXPECT_NEAR(p.Value(), 6.94, 1e-12);
}

TEST(P2Quantile, ExactLowQuantileOfTwoSamples) {
  metrics::P2Quantile p(0.1);
  p.Add(10.0);
  p.Add(20.0);
  // rank 0.1*1 = 0.1 -> 0.9*10 + 0.1*20
  EXPECT_NEAR(p.Value(), 11.0, 1e-12);
}

TEST(P2Quantile, SingleSampleIsEveryQuantile) {
  for (const double q : {0.01, 0.5, 0.99}) {
    metrics::P2Quantile p(q);
    p.Add(42.0);
    EXPECT_DOUBLE_EQ(p.Value(), 42.0) << "q=" << q;
  }
}

TEST(P2Quantile, DuplicateSmallSamplesCollapse) {
  metrics::P2Quantile p(0.9);
  for (int i = 0; i < 4; ++i) p.Add(2.5);
  EXPECT_DOUBLE_EQ(p.Value(), 2.5);
}

TEST(P2Quantile, FifthSampleSwitchesToMarkersExactly) {
  // At exactly n=5 the markers initialize from the sorted sample, so the
  // median marker is the exact sample median even for unsorted input.
  metrics::P2Quantile p(0.5);
  for (const double x : {9.0, 1.0, 7.0, 3.0, 5.0}) p.Add(x);
  EXPECT_DOUBLE_EQ(p.Value(), 5.0);
  EXPECT_EQ(p.count(), 5u);
}

TEST(P2Quantile, NegativeValuesSmallSample) {
  metrics::P2Quantile p(0.5);
  for (const double x : {-3.0, -1.0, -2.0}) p.Add(x);
  EXPECT_DOUBLE_EQ(p.Value(), -2.0);
}

TEST(P2QuantileDeathTest, RejectsDegenerateQuantiles) {
  EXPECT_DEATH(metrics::P2Quantile(0.0), "quantile");
  EXPECT_DEATH(metrics::P2Quantile(1.0), "quantile");
}

// Property: against exact percentiles on heavy-tailed data, relative error
// stays bounded across seeds.
class P2AccuracyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(P2AccuracyTest, CloseToExactOnHeavyTail) {
  util::Rng rng(GetParam());
  metrics::P2Quantile p90(0.9);
  std::vector<double> all;
  for (int i = 0; i < 40000; ++i) {
    const double x = queueing::SampleBoundedPareto(rng, 1.3, 1.0, 1000.0);
    p90.Add(x);
    all.push_back(x);
  }
  const double exact = metrics::Percentile(all, 90);
  EXPECT_NEAR(p90.Value(), exact, exact * 0.15);
}

INSTANTIATE_TEST_SUITE_P(Seeds, P2AccuracyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

// ---------------------------------------------------------------- Erlang

TEST(Erlang, SingleServerReducesToMm1) {
  // For c=1, ErlangC == rho and MmcWait == Mm1Wait.
  const double lambda = 0.6, mu = 1.0;
  EXPECT_NEAR(queueing::ErlangC(lambda, mu, 1), 0.6, 1e-12);
  EXPECT_NEAR(queueing::MmcWait(lambda, mu, 1),
              queueing::Mm1Wait(lambda, mu), 1e-12);
}

TEST(Erlang, KnownTextbookValue) {
  // Classic: lambda=2/min, mu=1/min, c=3 -> P(wait) = 0.4444...
  EXPECT_NEAR(queueing::ErlangC(2.0, 1.0, 3), 4.0 / 9.0, 1e-9);
  // W = ErlangC / (c*mu - lambda) = (4/9)/1 = 0.4444 min.
  EXPECT_NEAR(queueing::MmcWait(2.0, 1.0, 3), 4.0 / 9.0, 1e-9);
}

TEST(Erlang, UnstableSystems) {
  EXPECT_DOUBLE_EQ(queueing::ErlangC(3.0, 1.0, 3), 1.0);
  EXPECT_TRUE(std::isinf(queueing::MmcWait(3.0, 1.0, 3)));
}

TEST(Erlang, ZeroArrivalsZeroWait) {
  EXPECT_DOUBLE_EQ(queueing::MmcWait(0.0, 1.0, 4), 0.0);
}

TEST(Erlang, PoolingBeatsPartitioning) {
  // The reason distributed per-worker queues pay a price: one pooled M/M/c
  // queue waits less than c separate M/M/1 queues at the same total load.
  const double mu = 1.0;
  const unsigned c = 10;
  const double lambda_total = 8.0;
  const double pooled = queueing::MmcWait(lambda_total, mu, c);
  const double partitioned = queueing::Mm1Wait(lambda_total / c, mu);
  EXPECT_LT(pooled, partitioned);
}

TEST(Erlang, MonotoneInServers) {
  double prev = 1e300;
  for (unsigned c = 2; c <= 12; ++c) {
    const double w = queueing::MmcWait(1.8, 1.0, c);
    EXPECT_LT(w, prev);
    prev = w;
  }
}

TEST(Erlang, LargeServerCountIsNumericallyStable) {
  // 1000 servers at 90 % load: factorial terms would overflow if computed
  // naively; the iterative form must stay finite and in [0,1].
  const double p_wait = queueing::ErlangC(900.0, 1.0, 1000);
  EXPECT_GT(p_wait, 0.0);
  EXPECT_LT(p_wait, 1.0);
}

}  // namespace
}  // namespace phoenix
