// Packing subsystem tests: resource-vector arithmetic (fit epsilon, gang
// scaling, copy counting with zero-capacity dimensions), the pack score
// (no-fit sentinel, alignment preference, fragmentation penalty,
// determinism), hashed demand vectors (pure function of seed and job id,
// shape bounds, closed-form mean), attribute-derived machine capacities,
// the arena allocator's recycling, the auditor's packed-capacity and
// gang-atomicity rules against synthetic event streams (leaks, over-commit,
// open rounds), and end-to-end packed runs: audit-clean gang/malleable
// mixes, inert knobs while disabled, demand clamping when no machine could
// ever host a job, gang aborts under a chaotic fabric, malleable width
// floors, infeasible-gang degradation, and bit-identity across thread
// budgets. Registered under the "packing" and "concurrency" ctest labels
// (scripts/check.sh runs `ctest -L packing`; the TSan build runs
// `ctest -L concurrency`).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cluster/builder.h"
#include "cluster/capacity.h"
#include "obs/audit.h"
#include "obs/event.h"
#include "packing/config.h"
#include "packing/demand.h"
#include "packing/policy.h"
#include "packing/vector.h"
#include "runner/experiment.h"
#include "runner/parallel.h"
#include "trace/generators.h"
#include "util/arena.h"

namespace phoenix {
namespace {

using packing::PackDim;
using packing::ResourceVector;

cluster::Cluster MakeUniverse(std::size_t n, std::uint64_t seed = 7) {
  return cluster::BuildCluster({.num_machines = n, .seed = seed});
}

class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t n) { runner::SetExperimentThreads(n); }
  ~ScopedThreads() { runner::SetExperimentThreads(0); }
};

ResourceVector Vec(double cores, double mem, double gpus) {
  ResourceVector v;
  v[PackDim::kCores] = cores;
  v[PackDim::kMemoryGb] = mem;
  v[PackDim::kGpus] = gpus;
  return v;
}

/// A packed trace: google profile with every multi-task job tagged gang or
/// malleable per the fractions.
trace::Trace PackedTrace(std::size_t jobs, std::size_t workers, double load,
                         std::uint64_t seed, double gang_frac,
                         double malleable_frac,
                         double malleable_min_frac = 0.25) {
  auto gen = trace::ProfileByName("google");
  gen.num_jobs = jobs;
  gen.num_workers = workers;
  gen.target_load = load;
  gen.seed = seed;
  gen.gang_fraction = gang_frac;
  gen.malleable_fraction = malleable_frac;
  gen.malleable_min_frac = malleable_min_frac;
  return trace::GenerateTrace("packed", gen);
}

runner::RunOptions PackedOptions() {
  runner::RunOptions o;
  o.scheduler = "phoenix";
  o.config.packing.enabled = true;
  o.obs.audit = true;  // the runner aborts on any auditor violation
  return o;
}

// ---- ResourceVector arithmetic --------------------------------------------

TEST(ResourceVectorTest, FitsInIsComponentWiseWithEpsilon) {
  const auto avail = Vec(4, 16, 1);
  EXPECT_TRUE(Vec(4, 16, 1).FitsIn(avail));
  EXPECT_TRUE(Vec(2, 8, 0).FitsIn(avail));
  EXPECT_FALSE(Vec(5, 8, 0).FitsIn(avail));
  EXPECT_FALSE(Vec(2, 17, 0).FitsIn(avail));
  EXPECT_FALSE(Vec(2, 8, 2).FitsIn(avail));
  // The epsilon admits an exact refit after float drift, not a real excess.
  EXPECT_TRUE(Vec(4 + 1e-12, 16, 1).FitsIn(avail));
  EXPECT_FALSE(Vec(4 + 1e-6, 16, 1).FitsIn(avail));
}

TEST(ResourceVectorTest, AddSubScaledRoundTrips) {
  auto ledger = Vec(32, 128, 2);
  const auto demand = Vec(2, 7.5, 0);
  // A gang reservation claims k copies at once; releasing them all must
  // restore the ledger exactly (the auditor's conservation rule relies on
  // the same arithmetic).
  ledger.AddScaled(demand, -4);
  EXPECT_DOUBLE_EQ(ledger[PackDim::kCores], 24);
  EXPECT_DOUBLE_EQ(ledger[PackDim::kMemoryGb], 98);
  ledger.AddScaled(demand, 4);
  EXPECT_DOUBLE_EQ(ledger[PackDim::kCores], 32);
  EXPECT_DOUBLE_EQ(ledger[PackDim::kMemoryGb], 128);
  ledger.Sub(ledger);
  EXPECT_TRUE(ledger.IsZero());
}

TEST(ResourceVectorTest, CopiesOfCountsWholeCopies) {
  const auto cap = Vec(16, 64, 1);
  EXPECT_EQ(cap.CopiesOf(Vec(4, 8, 0)), 4u);   // cores bind first
  EXPECT_EQ(cap.CopiesOf(Vec(1, 24, 0)), 2u);  // memory binds first
  EXPECT_EQ(cap.CopiesOf(Vec(1, 1, 1)), 1u);   // the single GPU binds
  EXPECT_EQ(cap.CopiesOf(Vec(32, 1, 0)), 0u);  // too big in one dimension
}

TEST(ResourceVectorTest, ZeroCapacityDimensionAdmitsNothing) {
  // An older-generation machine has no GPUs: any GPU-demanding job counts
  // zero copies there, and dimensions the demand does not touch never
  // constrain the count.
  const auto no_gpu = Vec(16, 64, 0);
  EXPECT_EQ(no_gpu.CopiesOf(Vec(1, 4, 1)), 0u);
  EXPECT_EQ(no_gpu.CopiesOf(Vec(1, 4, 0)), 16u);
  EXPECT_FALSE(Vec(1, 4, 1).FitsIn(no_gpu));
}

// ---- PackScore ------------------------------------------------------------

TEST(PackScoreTest, NoFitOnAnyOverflowingDimension) {
  const packing::PackingConfig config;
  const auto cap = Vec(16, 64, 1);
  EXPECT_EQ(packing::PackScore(Vec(32, 8, 0), cap, cap, config),
            packing::kNoFit);
  EXPECT_EQ(packing::PackScore(Vec(1, 128, 0), cap, cap, config),
            packing::kNoFit);
  // Zero-capacity dimension: a GPU demand can never land on a GPU-less box.
  const auto no_gpu = Vec(16, 64, 0);
  EXPECT_EQ(packing::PackScore(Vec(1, 4, 1), no_gpu, no_gpu, config),
            packing::kNoFit);
  EXPECT_GT(packing::PackScore(Vec(1, 4, 0), no_gpu, no_gpu, config),
            packing::kNoFit);
}

TEST(PackScoreTest, PrefersAlignedResidual) {
  const packing::PackingConfig config;
  const auto cap = Vec(16, 64, 0);
  const auto demand = Vec(8, 8, 0);  // core-heavy
  // A core-rich residual points the same way as the demand; a memory-rich
  // one does not. DotProduct alignment must prefer the former.
  const double aligned =
      packing::PackScore(demand, Vec(14, 16, 0), cap, config);
  const double misaligned =
      packing::PackScore(demand, Vec(9, 60, 0), cap, config);
  EXPECT_GT(aligned, misaligned);
}

TEST(PackScoreTest, PenalizesStrandingADimension) {
  packing::PackingConfig flat;
  flat.frag_weight = 0.0;
  packing::PackingConfig weighted;
  weighted.frag_weight = 1.0;
  const auto cap = Vec(16, 64, 0);
  // Placing (8, 8) on residual (8, 40) exhausts cores while 32 GB stays
  // free: the post-placement residual fractions are (0, 0.5), so at
  // frag_weight 1 the penalty term must cost exactly that 0.5 imbalance.
  const auto demand = Vec(8, 8, 0);
  const auto residual = Vec(8, 40, 0);
  const double penalty = packing::PackScore(demand, residual, cap, flat) -
                         packing::PackScore(demand, residual, cap, weighted);
  EXPECT_DOUBLE_EQ(penalty, 0.5);
  // A placement that drains both dimensions to zero strands nothing.
  const double clean_penalty =
      packing::PackScore(Vec(8, 32, 0), Vec(8, 32, 0), cap, flat) -
      packing::PackScore(Vec(8, 32, 0), Vec(8, 32, 0), cap, weighted);
  EXPECT_DOUBLE_EQ(clean_penalty, 0.0);
}

TEST(PackScoreTest, PureFunctionOfInputs) {
  const packing::PackingConfig config;
  const auto cap = Vec(16, 64, 1);
  const auto residual = Vec(7, 21, 1);
  const auto demand = Vec(2, 6, 0);
  const double first = packing::PackScore(demand, residual, cap, config);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(packing::PackScore(demand, residual, cap, config), first);
  }
}

// ---- Hashed demand vectors ------------------------------------------------

TEST(DemandTest, PureFunctionOfSeedAndJob) {
  const packing::PackingConfig config;
  for (std::uint32_t job = 0; job < 64; ++job) {
    const auto a = packing::DemandFor(42, job, config);
    const auto b = packing::DemandFor(42, job, config);
    for (std::size_t d = 0; d < packing::kNumPackDims; ++d) {
      EXPECT_EQ(a.dim(d), b.dim(d)) << "job " << job << " dim " << d;
    }
  }
  // A different seed reshuffles the population (not necessarily every job,
  // but certainly some).
  bool any_differ = false;
  for (std::uint32_t job = 0; job < 64 && !any_differ; ++job) {
    const auto a = packing::DemandFor(42, job, config);
    const auto b = packing::DemandFor(43, job, config);
    for (std::size_t d = 0; d < packing::kNumPackDims; ++d) {
      if (a.dim(d) != b.dim(d)) any_differ = true;
    }
  }
  EXPECT_TRUE(any_differ);
}

TEST(DemandTest, ShapeFollowsConfigBounds) {
  packing::PackingConfig config;
  config.demand_core_buckets = 4;
  config.demand_mem_per_core_lo = 2.0;
  config.demand_mem_per_core_hi = 6.0;
  std::uint32_t gpu_jobs = 0;
  for (std::uint32_t job = 0; job < 2000; ++job) {
    const auto d = packing::DemandFor(7, job, config);
    const double cores = d[PackDim::kCores];
    // Cores are 2^k for k in [0, buckets).
    EXPECT_TRUE(cores == 1 || cores == 2 || cores == 4 || cores == 8)
        << cores;
    const double per_core = d[PackDim::kMemoryGb] / cores;
    EXPECT_GE(per_core, config.demand_mem_per_core_lo - 1e-9);
    EXPECT_LE(per_core, config.demand_mem_per_core_hi + 1e-9);
    const double gpus = d[PackDim::kGpus];
    EXPECT_TRUE(gpus == 0 || gpus == 1) << gpus;
    if (gpus == 1) ++gpu_jobs;
  }
  // GPU tagging tracks the configured fraction (8 % +- a loose band).
  EXPECT_GT(gpu_jobs, 2000 * 0.03);
  EXPECT_LT(gpu_jobs, 2000 * 0.16);
}

TEST(DemandTest, MeanDemandMatchesPopulationMean) {
  const packing::PackingConfig config;
  const auto closed_form = packing::MeanDemand(config);
  ResourceVector sum;
  const std::uint32_t n = 20000;
  for (std::uint32_t job = 0; job < n; ++job) {
    sum.Add(packing::DemandFor(11, job, config));
  }
  for (std::size_t d = 0; d < packing::kNumPackDims; ++d) {
    const double empirical = sum.dim(d) / n;
    EXPECT_NEAR(empirical, closed_form.dim(d), 0.05 * closed_form.dim(d))
        << packing::PackDimName(static_cast<PackDim>(d));
  }
}

// ---- Machine capacities ---------------------------------------------------

TEST(CapacityTest, DerivedFromAttributesWithGpuTier) {
  const auto cl = MakeUniverse(64, 13);
  std::size_t gpu_machines = 0;
  std::size_t no_gpu_machines = 0;
  for (cluster::MachineId id = 0; id < cl.size(); ++id) {
    const auto& m = cl.machine(id);
    const auto cap = cluster::CapacityOf(m);
    EXPECT_EQ(cap[PackDim::kCores],
              static_cast<double>(m.Get(cluster::Attr::kNumCores)));
    EXPECT_EQ(cap[PackDim::kMemoryGb],
              static_cast<double>(m.Get(cluster::Attr::kMinMemory)));
    const auto family = m.Get(cluster::Attr::kPlatformFamily);
    EXPECT_EQ(cap[PackDim::kGpus], family >= 2 ? family - 1 : 0);
    if (cap[PackDim::kGpus] > 0) {
      ++gpu_machines;
    } else {
      ++no_gpu_machines;
    }
  }
  // The fleet carries both tiers: GPUs are realistically scarce, and the
  // zero-capacity GPU dimension exists somewhere for the policy to respect.
  EXPECT_GT(gpu_machines, 0u);
  EXPECT_GT(no_gpu_machines, 0u);
  // Fleet folds agree with the per-machine function.
  const auto max = cluster::MaxCapacity(cl);
  const auto total = cluster::TotalCapacity(cl);
  for (std::size_t d = 0; d < packing::kNumPackDims; ++d) {
    EXPECT_GE(total.dim(d), max.dim(d));
    EXPECT_GT(max.dim(d), 0.0);
  }
}

// ---- Arena ----------------------------------------------------------------

TEST(ArenaTest, RecyclesFreedBlocksBySizeClass) {
  util::Arena arena(1 << 12);
  void* a = arena.Allocate(48, 8);
  ASSERT_NE(a, nullptr);
  arena.Deallocate(a, 48, 8);
  // Same size class comes back off the free list: identical pointer, no new
  // chunk reserved.
  const std::size_t reserved = arena.bytes_reserved();
  void* b = arena.Allocate(48, 8);
  EXPECT_EQ(a, b);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(ArenaTest, FootprintBoundedByLiveSetNotChurn) {
  util::Arena arena(1 << 14);
  // A million alloc/free cycles of one block must not grow the arena past
  // its first chunk — the exact churn profile of worker queue nodes.
  void* p = arena.Allocate(64, 8);
  arena.Deallocate(p, 64, 8);
  const std::size_t reserved = arena.bytes_reserved();
  for (int i = 0; i < 1000000; ++i) {
    void* q = arena.Allocate(64, 8);
    arena.Deallocate(q, 64, 8);
  }
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(ArenaTest, AllocatorWorksInStdContainers) {
  util::Arena arena;
  using Alloc = util::ArenaAllocator<int>;
  std::vector<int, Alloc> v{Alloc(&arena)};
  for (int i = 0; i < 10000; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 10000u);
  EXPECT_EQ(v[9999], 9999);
  EXPECT_GT(arena.bytes_reserved(), 0u);
  // Null-arena allocator falls back to the global allocator.
  std::vector<int, Alloc> plain;
  plain.push_back(1);
  EXPECT_EQ(plain[0], 1);
}

// ---- Auditor packing rules against synthetic streams ----------------------

obs::Event PackEvent(obs::EventType type, std::uint32_t machine,
                     std::uint32_t dim, double value, double time = 1.0) {
  obs::Event e;
  e.time = time;
  e.type = type;
  e.machine = machine;
  e.task = dim;
  e.value = value;
  return e;
}

TEST(PackAuditTest, BalancedClaimsAreClean) {
  obs::InvariantAuditor audit;
  audit.OnEvent(PackEvent(obs::EventType::kPackCapacity, 0, 0, 16.0, 0.0));
  audit.OnEvent(PackEvent(obs::EventType::kPackClaim, 0, 0, 4.0, 1.0));
  audit.OnEvent(PackEvent(obs::EventType::kPackClaim, 0, 0, 8.0, 2.0));
  audit.OnEvent(PackEvent(obs::EventType::kPackRelease, 0, 0, 8.0, 3.0));
  audit.OnEvent(PackEvent(obs::EventType::kPackRelease, 0, 0, 4.0, 4.0));
  audit.Finish();
  EXPECT_TRUE(audit.ok()) << audit.Summary();
  EXPECT_EQ(audit.pack_claims_seen(), 2u);
}

TEST(PackAuditTest, CatchesCapacityLeak) {
  // A claim never released — the synthetic version of a lost reservation or
  // a run that finished without returning its vector.
  obs::InvariantAuditor audit;
  audit.OnEvent(PackEvent(obs::EventType::kPackCapacity, 3, 1, 64.0, 0.0));
  audit.OnEvent(PackEvent(obs::EventType::kPackClaim, 3, 1, 8.0, 1.0));
  audit.Finish();
  EXPECT_FALSE(audit.ok());
  EXPECT_EQ(audit.pack_claims_seen(), 1u);
}

TEST(PackAuditTest, CatchesOverCommit) {
  obs::InvariantAuditor audit;
  audit.OnEvent(PackEvent(obs::EventType::kPackCapacity, 0, 0, 8.0, 0.0));
  audit.OnEvent(PackEvent(obs::EventType::kPackClaim, 0, 0, 6.0, 1.0));
  audit.OnEvent(PackEvent(obs::EventType::kPackClaim, 0, 0, 6.0, 2.0));
  EXPECT_FALSE(audit.ok());
}

TEST(PackAuditTest, CatchesReleaseWithoutClaim) {
  obs::InvariantAuditor audit;
  audit.OnEvent(PackEvent(obs::EventType::kPackCapacity, 0, 2, 2.0, 0.0));
  audit.OnEvent(PackEvent(obs::EventType::kPackRelease, 0, 2, 1.0, 1.0));
  EXPECT_FALSE(audit.ok());
}

TEST(GangAuditTest, ReserveCommitRoundIsClean) {
  obs::InvariantAuditor audit;
  obs::Event reserve;
  reserve.type = obs::EventType::kGangReserve;
  reserve.job = 5;
  reserve.machine = 1;
  reserve.task = 2;  // member count on this machine
  reserve.value = 30.0;
  audit.OnEvent(reserve);
  reserve.machine = 2;
  audit.OnEvent(reserve);  // same round, second machine
  obs::Event commit;
  commit.type = obs::EventType::kGangCommit;
  commit.job = 5;
  commit.value = 1.5;
  audit.OnEvent(commit);
  audit.Finish();
  EXPECT_TRUE(audit.ok()) << audit.Summary();
  EXPECT_EQ(audit.gang_rounds_opened(), 1u);
  EXPECT_EQ(audit.gang_rounds_closed(), 1u);
}

TEST(GangAuditTest, CatchesRoundLeftOpenAtEnd) {
  obs::InvariantAuditor audit;
  obs::Event reserve;
  reserve.type = obs::EventType::kGangReserve;
  reserve.job = 9;
  reserve.machine = 0;
  reserve.task = 1;
  audit.OnEvent(reserve);
  audit.Finish();
  EXPECT_FALSE(audit.ok());
  EXPECT_EQ(audit.gang_rounds_opened(), 1u);
  EXPECT_EQ(audit.gang_rounds_closed(), 0u);
}

TEST(GangAuditTest, CatchesCommitWithoutReserve) {
  obs::InvariantAuditor audit;
  obs::Event commit;
  commit.type = obs::EventType::kGangCommit;
  commit.job = 1;
  audit.OnEvent(commit);
  EXPECT_FALSE(audit.ok());
}

// ---- End-to-end packed runs -----------------------------------------------

TEST(PackedRun, AuditCleanWithGangsAndMalleables) {
  const auto cl = MakeUniverse(32, 17);
  const auto t = PackedTrace(400, 32, 0.5, 17, 0.15, 0.15);
  auto o = PackedOptions();
  const runner::RepeatedRuns runs(t, cl, o, 2);
  for (const auto& r : runs.reports()) {
    EXPECT_EQ(r.jobs.size(), t.size());
    EXPECT_TRUE(r.packing_enabled);
    EXPECT_GT(r.counters.packed_tasks, 0u);
    EXPECT_GT(r.packing_efficiency, 0.0);
    EXPECT_LE(r.packing_efficiency, 1.0 + 1e-9);
    EXPECT_GT(r.counters.gangs_placed, 0u);
    EXPECT_GT(r.counters.gang_commits, 0u);
    EXPECT_GT(r.counters.malleable_jobs, 0u);
  }
}

TEST(PackedRun, DisabledKnobsAreInert) {
  // Turning every packing knob without the master switch must not move a
  // single scheduling decision — the layering contract each optional
  // subsystem honors.
  const auto cl = MakeUniverse(24, 19);
  const auto t = PackedTrace(300, 24, 0.6, 19, /*gang=*/0, /*malleable=*/0);
  runner::RunOptions off;
  off.scheduler = "phoenix";
  runner::RunOptions knobs = off;
  knobs.config.packing.frag_weight = 9.0;
  knobs.config.packing.gang_hold = 1.0;
  knobs.config.packing.demand_core_buckets = 2;
  knobs.config.packing.gpu_job_fraction = 0.5;
  ASSERT_FALSE(knobs.config.packing.enabled);
  const auto r_off = runner::RunSimulation(t, cl, off);
  const auto r_knobs = runner::RunSimulation(t, cl, knobs);
  EXPECT_EQ(r_off.makespan, r_knobs.makespan);
  EXPECT_EQ(r_off.counters.probes_sent, r_knobs.counters.probes_sent);
  EXPECT_EQ(r_off.Utilization(), r_knobs.Utilization());
  EXPECT_FALSE(r_knobs.packing_enabled);
  EXPECT_EQ(r_knobs.counters.packed_tasks, 0u);
  const auto p_off = r_off.QueuingSummary(metrics::ClassFilter::kShort,
                                          metrics::ConstraintFilter::kAll);
  const auto p_knobs = r_knobs.QueuingSummary(metrics::ClassFilter::kShort,
                                              metrics::ConstraintFilter::kAll);
  EXPECT_EQ(p_off.p99, p_knobs.p99);
}

TEST(PackedRun, OversizedDemandIsClampedToHostable) {
  // Demands shaped far past any machine's memory: every such job must be
  // clamped to its best satisfying machine (not rejected forever), the run
  // must drain, and the ledger must still balance (audit on).
  const auto cl = MakeUniverse(16, 23);
  const auto t = PackedTrace(200, 16, 0.4, 23, 0, 0);
  auto o = PackedOptions();
  o.config.packing.demand_mem_per_core_lo = 512.0;
  o.config.packing.demand_mem_per_core_hi = 1024.0;
  const auto r = runner::RunSimulation(t, cl, o);
  EXPECT_EQ(r.jobs.size(), t.size());
  EXPECT_GT(r.counters.pack_demand_clamped, 0u);
  EXPECT_GT(r.counters.packed_tasks, 0u);
}

TEST(PackedRun, GangAbortsUnderChaoticFabricAndStaysAuditClean) {
  // A lossy, reordering fabric against a tight reservation hold: member
  // binds that retry past the hold fail their round (abort, release, retry
  // with backoff), yet clean rounds keep committing and the capacity ledger
  // balances to zero — the auditor aborts the run otherwise.
  const auto cl = MakeUniverse(32, 29);
  const auto t = PackedTrace(300, 32, 0.4, 29, /*gang=*/0.5, 0);
  auto o = PackedOptions();
  o.config.packing.gang_hold = 0.02;
  o.config.net.drop_rate = 0.25;
  o.config.net.reorder_rate = 0.10;
  const auto r = runner::RunSimulation(t, cl, o);
  EXPECT_EQ(r.jobs.size(), t.size());
  EXPECT_GT(r.counters.gangs_placed, 0u);
  EXPECT_GT(r.counters.gang_aborts, 0u);
  EXPECT_GT(r.counters.gang_commits, 0u);
  EXPECT_GT(r.counters.gang_retry_waits, 0u);
}

TEST(PackedRun, MalleableWidthRespectsMinimumParallelism) {
  const auto cl = MakeUniverse(24, 31);
  // Floor at the full width: every supply-driven shrink attempt must clamp
  // at min_parallel and count a floor hit instead of shrinking below it.
  const auto t_floor = PackedTrace(300, 24, 0.8, 31, 0, /*malleable=*/0.5,
                                   /*min_frac=*/1.0);
  auto o = PackedOptions();
  const auto r_floor = runner::RunSimulation(t_floor, cl, o);
  EXPECT_GT(r_floor.counters.malleable_jobs, 0u);
  EXPECT_GT(r_floor.counters.malleable_min_hits, 0u);
  EXPECT_EQ(r_floor.counters.malleable_shrinks, 0u);
  // A loose floor under the same pressure lets widths actually move.
  const auto t_loose = PackedTrace(300, 24, 0.8, 31, 0, 0.5, 0.25);
  const auto r_loose = runner::RunSimulation(t_loose, cl, o);
  EXPECT_GT(r_loose.counters.malleable_shrinks +
                r_loose.counters.malleable_expands,
            0u);
}

TEST(PackedRun, InfeasibleGangDegradesInsteadOfSpinning) {
  // A fleet of 4 machines cannot co-host the google profile's larger gangs
  // even when empty: the liveness gate must degrade them to non-atomic
  // placement (and the run must terminate — the pre-gate scheduler retried
  // such gangs forever).
  const auto cl = MakeUniverse(4, 37);
  const auto t = PackedTrace(120, 4, 0.3, 37, /*gang=*/1.0, 0);
  auto o = PackedOptions();
  const auto r = runner::RunSimulation(t, cl, o);
  EXPECT_EQ(r.jobs.size(), t.size());
  EXPECT_GT(r.counters.gangs_degraded, 0u);
}

TEST(PackedRun, BitIdenticalAcrossThreadCounts) {
  const auto cl = MakeUniverse(32, 41);
  const auto t = PackedTrace(300, 32, 0.5, 41, 0.15, 0.15);
  auto o = PackedOptions();
  auto summarize = [&](std::size_t threads) {
    ScopedThreads guard(threads);
    const runner::RepeatedRuns runs(t, cl, o, 3);
    std::vector<double> values;
    for (const auto& r : runs.reports()) {
      values.push_back(r.makespan);
      values.push_back(r.packing_efficiency);
      values.push_back(r.fragmentation_time_avg);
      values.push_back(r.gang_wait_mean);
      values.push_back(static_cast<double>(r.counters.packed_tasks));
      values.push_back(static_cast<double>(r.counters.gang_commits));
      values.push_back(static_cast<double>(r.counters.gang_aborts));
      values.push_back(static_cast<double>(r.counters.malleable_expands));
      values.push_back(static_cast<double>(r.counters.malleable_shrinks));
      values.push_back(r.QueuingSummary(metrics::ClassFilter::kShort,
                                        metrics::ConstraintFilter::kAll)
                           .p99);
    }
    return values;
  };
  const auto serial = summarize(1);
  const auto parallel = summarize(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "summary value " << i;
  }
}

}  // namespace
}  // namespace phoenix
