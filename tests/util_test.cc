// Unit tests for src/util: rng, flags, format, histogram, bitset.
#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/bitset.h"
#include "util/flags.h"
#include "util/format.h"
#include "util/histogram.h"
#include "util/rng.h"

namespace phoenix::util {
namespace {

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a.Next();
  a.Next();
  a.Reseed(7);
  EXPECT_EQ(a.Next(), first);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBoundedStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(7), 7u);
  }
}

TEST(Rng, NextBoundedCoversAllValues) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextBoundedIsRoughlyUniform) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(10)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(19);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRespectsRange) {
  Rng rng(21);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(2.5, 7.5);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 7.5);
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.Fork();
  // Child stream should not be a shifted copy of the parent.
  Rng a2(31);
  a2.Next();  // align with the state after Fork's draw
  int same = 0;
  for (int i = 0; i < 64; ++i) same += child.Next() == a2.Next();
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitMix64KnownFirstValue) {
  std::uint64_t s = 0;
  // Reference value of splitmix64 seeded with 0.
  EXPECT_EQ(SplitMix64(s), 0xe220a8397b1dcdafULL);
}

// ---------------------------------------------------------------- Flags

TEST(Flags, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--nodes=500"};
  Flags f;
  f.Parse(2, argv);
  EXPECT_EQ(f.GetInt("nodes", 1), 500);
  EXPECT_TRUE(f.Validate());
}

TEST(Flags, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--name", "google"};
  Flags f;
  f.Parse(3, argv);
  EXPECT_EQ(f.GetString("name", ""), "google");
  EXPECT_TRUE(f.Validate());
}

TEST(Flags, ParsesBareBool) {
  const char* argv[] = {"prog", "--verbose"};
  Flags f;
  f.Parse(2, argv);
  EXPECT_TRUE(f.GetBool("verbose", false));
}

TEST(Flags, ParsesNegatedBool) {
  const char* argv[] = {"prog", "--no-verbose"};
  Flags f;
  f.Parse(2, argv);
  EXPECT_FALSE(f.GetBool("verbose", true));
}

TEST(Flags, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags f;
  f.Parse(1, argv);
  EXPECT_EQ(f.GetInt("nodes", 42), 42);
  EXPECT_DOUBLE_EQ(f.GetDouble("load", 0.85), 0.85);
  EXPECT_EQ(f.GetString("name", "x"), "x");
  EXPECT_FALSE(f.Provided("nodes"));
}

TEST(Flags, RejectsUnknownFlag) {
  const char* argv[] = {"prog", "--typo=3"};
  Flags f;
  f.Parse(2, argv);
  f.GetInt("nodes", 1);
  EXPECT_FALSE(f.Validate());
  EXPECT_NE(f.error().find("typo"), std::string::npos);
}

TEST(Flags, RejectsMalformedInt) {
  const char* argv[] = {"prog", "--nodes=abc"};
  Flags f;
  f.Parse(2, argv);
  f.GetInt("nodes", 1);
  EXPECT_FALSE(f.Validate());
}

TEST(Flags, RejectsMalformedDouble) {
  const char* argv[] = {"prog", "--load=fast"};
  Flags f;
  f.Parse(2, argv);
  f.GetDouble("load", 0.5);
  EXPECT_FALSE(f.Validate());
}

TEST(Flags, RejectsMalformedBool) {
  const char* argv[] = {"prog", "--paper=maybe"};
  Flags f;
  f.Parse(2, argv);
  f.GetBool("paper", false);
  EXPECT_FALSE(f.Validate());
}

TEST(Flags, CollectsPositionalArguments) {
  const char* argv[] = {"prog", "input.trace", "--nodes=2", "out.txt"};
  Flags f;
  f.Parse(4, argv);
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.trace");
  EXPECT_EQ(f.positional()[1], "out.txt");
}

TEST(Flags, IdenticalRedeclarationIsANoOp) {
  const char* argv[] = {"prog", "--nodes=12"};
  Flags f;
  f.Parse(2, argv);
  // Two subsystems asking for the same flag with the same type and default
  // (the normal shared-flag pattern) both see the parsed value.
  EXPECT_EQ(f.GetInt("nodes", 1), 12);
  EXPECT_EQ(f.GetInt("nodes", 1), 12);
  EXPECT_TRUE(f.Validate());
}

TEST(Flags, ConflictingRedeclarationAborts) {
  // Two Get* calls disagreeing on type or default would make the value the
  // program sees depend on call order — a silent registration conflict the
  // startup abort exists to surface.
  const char* argv[] = {"prog"};
  EXPECT_DEATH(
      {
        Flags f;
        f.Parse(1, argv);
        f.GetInt("nodes", 1);
        f.GetDouble("nodes", 1.0);  // same name, different type
      },
      "declared twice");
  EXPECT_DEATH(
      {
        Flags f;
        f.Parse(1, argv);
        f.GetInt("nodes", 1);
        f.GetInt("nodes", 2);  // same type, different default
      },
      "declared twice");
}

TEST(Flags, BoolAcceptsManySpellings) {
  for (const char* spelling : {"true", "1", "yes", "on"}) {
    const std::string arg = std::string("--x=") + spelling;
    const char* argv[] = {"prog", arg.c_str()};
    Flags f;
    f.Parse(2, argv);
    EXPECT_TRUE(f.GetBool("x", false)) << spelling;
  }
  for (const char* spelling : {"false", "0", "no", "off"}) {
    const std::string arg = std::string("--x=") + spelling;
    const char* argv[] = {"prog", arg.c_str()};
    Flags f;
    f.Parse(2, argv);
    EXPECT_FALSE(f.GetBool("x", true)) << spelling;
  }
}

// ---------------------------------------------------------------- Flags --help

TEST(Flags, HelpRequestedDetectsBareAndValuedForms) {
  {
    const char* argv[] = {"prog"};
    Flags f;
    f.Parse(1, argv);
    EXPECT_FALSE(f.HelpRequested());
  }
  {
    const char* argv[] = {"prog", "--help"};
    Flags f;
    f.Parse(2, argv);
    EXPECT_TRUE(f.HelpRequested());
  }
  {
    const char* argv[] = {"prog", "--no-help"};
    Flags f;
    f.Parse(2, argv);
    EXPECT_FALSE(f.HelpRequested());
  }
}

TEST(Flags, HelpIsNeverAnUnknownFlag) {
  const char* argv[] = {"prog", "--help"};
  Flags f;
  f.Parse(2, argv);
  // No getter ever declares "help"; Validate must still accept it.
  f.GetInt("nodes", 1);
  EXPECT_TRUE(f.Validate()) << f.error();
}

TEST(Flags, UsageListsEveryDeclaredFlagWithDefault) {
  const char* argv[] = {"prog"};
  Flags f;
  f.Parse(1, argv);
  f.GetInt("nodes", 300);
  f.GetDouble("load", 0.85);
  f.GetString("profile", "google");
  f.GetBool("paper", false);
  const std::string usage = f.Usage();
  EXPECT_NE(usage.find("--nodes"), std::string::npos);
  EXPECT_NE(usage.find("(default: 300)"), std::string::npos);
  EXPECT_NE(usage.find("--load"), std::string::npos);
  EXPECT_NE(usage.find("(default: 0.85)"), std::string::npos);
  EXPECT_NE(usage.find("--profile"), std::string::npos);
  EXPECT_NE(usage.find("(default: google)"), std::string::npos);
  EXPECT_NE(usage.find("--paper"), std::string::npos);
  EXPECT_NE(usage.find("(default: false)"), std::string::npos);
  EXPECT_NE(usage.find("--help"), std::string::npos);
  // Declaration order is preserved in the listing.
  EXPECT_LT(usage.find("--nodes"), usage.find("--load"));
  EXPECT_LT(usage.find("--load"), usage.find("--profile"));
}

TEST(Flags, UsageNamesTheProgram) {
  const char* argv[] = {"/long/path/to/bench_thing"};
  Flags f;
  f.Parse(1, argv);
  EXPECT_NE(f.Usage().find("usage: bench_thing"), std::string::npos);
}

TEST(Flags, UsageShowsEmptyStringDefault) {
  const char* argv[] = {"prog"};
  Flags f;
  f.Parse(1, argv);
  f.GetString("tsv", "");
  EXPECT_NE(f.Usage().find("(default: \"\")"), std::string::npos);
}

TEST(Flags, ValidateOrExitRejectsUnknownFlagWithUsage) {
  const char* argv[] = {"prog", "--typo=3"};
  EXPECT_EXIT(
      {
        Flags f;
        f.Parse(2, argv);
        f.GetInt("nodes", 1);
        f.ValidateOrExit();
      },
      ::testing::ExitedWithCode(1), "prog: unknown flag --typo");
}

TEST(Flags, ValidateOrExitHonoursHelp) {
  const char* argv[] = {"prog", "--help"};
  EXPECT_EXIT(
      {
        Flags f;
        f.Parse(2, argv);
        f.GetInt("nodes", 1);
        f.ValidateOrExit();
      },
      ::testing::ExitedWithCode(0), "");
}

TEST(Flags, ValidateOrExitPassesCleanCommandLine) {
  const char* argv[] = {"prog", "--nodes=4"};
  Flags f;
  f.Parse(2, argv);
  f.GetInt("nodes", 1);
  f.ValidateOrExit();  // must return normally
  EXPECT_EQ(f.GetInt("nodes", 1), 4);
}

TEST(Flags, RedeclarationDoesNotDuplicateTheUsageRow) {
  const char* argv[] = {"prog"};
  Flags f;
  f.Parse(1, argv);
  f.GetInt("nodes", 300);
  f.GetInt("nodes", 300);  // identical re-declaration must not add a row
  const std::string usage = f.Usage();
  EXPECT_EQ(usage.find("--nodes"), usage.rfind("--nodes"));
  EXPECT_NE(usage.find("(default: 300)"), std::string::npos);
}

// ---------------------------------------------------------------- Format

TEST(Format, StrFormatBasics) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.2f", 1.239), "1.24");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(Format, HumanDurationUnits) {
  EXPECT_EQ(HumanDuration(0.0005), "0.5ms");
  EXPECT_EQ(HumanDuration(1.5), "1.50s");
  EXPECT_EQ(HumanDuration(300), "5.0min");
  EXPECT_EQ(HumanDuration(7200), "2.0h");
}

TEST(Format, HumanDurationNegative) {
  EXPECT_EQ(HumanDuration(-1.5), "-1.50s");
}

TEST(Format, WithCommas) {
  EXPECT_EQ(WithCommas(0), "0");
  EXPECT_EQ(WithCommas(999), "999");
  EXPECT_EQ(WithCommas(1000), "1,000");
  EXPECT_EQ(WithCommas(15000), "15,000");
  EXPECT_EQ(WithCommas(1234567), "1,234,567");
  EXPECT_EQ(WithCommas(-6500), "-6,500");
}

TEST(Format, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Format, TrimWhitespace) {
  EXPECT_EQ(Trim("  x y \t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(Format, TextTableAlignsColumns) {
  TextTable t({"a", "bbbb"});
  t.AddRow({"xxxxx", "y"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| a     | bbbb |"), std::string::npos);
  EXPECT_NE(s.find("| xxxxx | y    |"), std::string::npos);
}

TEST(Format, TextTableRowCountAndRule) {
  TextTable t({"h"});
  t.AddRow({"1"});
  t.AddRule();
  t.AddRow({"2"});
  EXPECT_EQ(t.row_count(), 3u);  // rule counts as a row slot
  EXPECT_FALSE(t.ToString().empty());
}

// ---------------------------------------------------------------- Histogram

TEST(Histogram, CountsByBucket) {
  LinearHistogram h(0, 10, 10);
  h.Add(0.5);
  h.Add(1.5);
  h.Add(1.7);
  h.Add(9.99);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderOverflow) {
  LinearHistogram h(0, 10, 5);
  h.Add(-1);
  h.Add(10);
  h.Add(100);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, QuantileInterpolates) {
  LinearHistogram h(0, 100, 100);
  for (int i = 0; i < 100; ++i) h.Add(i + 0.5);
  EXPECT_NEAR(h.Quantile(0.5), 50, 2.0);
  EXPECT_NEAR(h.Quantile(0.99), 99, 2.0);
  EXPECT_NEAR(h.Quantile(0.0), 0, 1.0);
}

TEST(Histogram, WeightedAdd) {
  LinearHistogram h(0, 10, 10);
  h.Add(5.0, 7);
  EXPECT_EQ(h.bucket(5), 7u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(Histogram, AsciiRenderingNonEmpty) {
  LinearHistogram h(0, 10, 4);
  h.Add(1);
  h.Add(2);
  h.Add(-5);
  h.Add(50);
  const std::string art = h.ToAscii(20);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find("underflow"), std::string::npos);
  EXPECT_NE(art.find("overflow"), std::string::npos);
}

// ---------------------------------------------------------------- Bitset

TEST(Bitset, SetTestReset) {
  Bitset b(100);
  EXPECT_FALSE(b.Test(42));
  b.Set(42);
  EXPECT_TRUE(b.Test(42));
  b.Reset(42);
  EXPECT_FALSE(b.Test(42));
}

TEST(Bitset, CountAndAny) {
  Bitset b(130);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_FALSE(b.Any());
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_EQ(b.Count(), 3u);
  EXPECT_TRUE(b.Any());
}

TEST(Bitset, SetAllRespectsSize) {
  Bitset b(70);
  b.SetAll();
  EXPECT_EQ(b.Count(), 70u);
}

TEST(Bitset, AndWith) {
  Bitset a(64), b(64);
  a.Set(1);
  a.Set(2);
  b.Set(2);
  b.Set(3);
  a.AndWith(b);
  EXPECT_FALSE(a.Test(1));
  EXPECT_TRUE(a.Test(2));
  EXPECT_FALSE(a.Test(3));
}

TEST(Bitset, OrWith) {
  Bitset a(64), b(64);
  a.Set(1);
  b.Set(3);
  a.OrWith(b);
  EXPECT_TRUE(a.Test(1));
  EXPECT_TRUE(a.Test(3));
  EXPECT_EQ(a.Count(), 2u);
}

TEST(Bitset, CollectSetBits) {
  Bitset b(200);
  b.Set(5);
  b.Set(63);
  b.Set(64);
  b.Set(199);
  std::vector<std::uint32_t> out;
  b.CollectSetBits(out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{5, 63, 64, 199}));
}

TEST(Bitset, SampleSetBitReturnsOnlySetBits) {
  Bitset b(1000);
  b.Set(17);
  b.Set(333);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const std::size_t s = b.SampleSetBit(rng);
    EXPECT_TRUE(s == 17 || s == 333);
  }
}

TEST(Bitset, SampleSetBitEmptyReturnsSentinel) {
  Bitset b(100);
  Rng rng(4);
  EXPECT_EQ(b.SampleSetBit(rng), SIZE_MAX);
}

TEST(Bitset, SampleSetBitSparseUsesRankSelect) {
  // One bit in a large set: rejection nearly always misses, forcing the
  // rank-select fallback.
  Bitset b(100000);
  b.Set(99999);
  Rng rng(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(b.SampleSetBit(rng), 99999u);
}

TEST(Bitset, SampleSetBitIsRoughlyUniform) {
  Bitset b(10);
  for (std::size_t i = 0; i < 10; ++i) b.Set(i);
  Rng rng(6);
  std::vector<int> counts(10, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[b.SampleSetBit(rng)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02);
  }
}

TEST(Bitset, ResizeClearsContents) {
  Bitset b(10);
  b.Set(3);
  b.Resize(20);
  EXPECT_EQ(b.Count(), 0u);
  b.Resize(5, true);
  EXPECT_EQ(b.Count(), 5u);
}

// Property sweep: bitset ops agree with a std::vector<bool> reference model.
class BitsetPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitsetPropertyTest, MatchesReferenceModel) {
  const std::size_t size = GetParam();
  Bitset bits(size);
  std::vector<bool> ref(size, false);
  Rng rng(size * 2654435761u + 1);
  for (int op = 0; op < 2000; ++op) {
    const std::size_t i = rng.NextBounded(size);
    if (rng.Bernoulli(0.5)) {
      bits.Set(i);
      ref[i] = true;
    } else {
      bits.Reset(i);
      ref[i] = false;
    }
  }
  std::size_t ref_count = 0;
  for (std::size_t i = 0; i < size; ++i) {
    EXPECT_EQ(bits.Test(i), ref[i]);
    ref_count += ref[i];
  }
  EXPECT_EQ(bits.Count(), ref_count);
  std::vector<std::uint32_t> collected;
  bits.CollectSetBits(collected);
  EXPECT_EQ(collected.size(), ref_count);
  EXPECT_TRUE(std::is_sorted(collected.begin(), collected.end()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitsetPropertyTest,
                         ::testing::Values(1, 63, 64, 65, 127, 128, 1000,
                                           4096, 15000));

}  // namespace
}  // namespace phoenix::util
