// Tests for rack topology and affinity placement preferences (§III-A's
// combinatorial constraints: spread for fault tolerance, colocate for data
// locality).
#include <sstream>

#include <gtest/gtest.h>

#include "cluster/builder.h"
#include "runner/experiment.h"
#include "trace/generators.h"
#include "trace/io.h"

namespace phoenix {
namespace {

using cluster::BuildCluster;
using cluster::BuildFleet;

trace::Trace OneJobTrace(trace::Job job, double cutoff = 100.0) {
  job.id = 0;
  trace::Trace t("placement", {std::move(job)});
  t.set_short_cutoff(cutoff);
  return t;
}

metrics::SimReport RunOn(const std::string& scheduler, const trace::Trace& t,
                       const cluster::Cluster& cl) {
  runner::RunOptions o;
  o.scheduler = scheduler;
  o.config.seed = 5;
  return runner::RunSimulation(t, cl, o);
}

// ------------------------------------------------------------- topology

TEST(Topology, RacksAssignedInBlocks) {
  const auto fleet =
      BuildFleet({.num_machines = 100, .seed = 1, .machines_per_rack = 25});
  for (const auto& m : fleet) {
    EXPECT_EQ(m.rack, m.id / 25);
  }
}

TEST(Topology, ClusterCountsRacks) {
  const auto cl = BuildCluster(
      {.num_machines = 100, .seed = 1, .machines_per_rack = 25});
  EXPECT_EQ(cl.num_racks(), 4u);
  EXPECT_EQ(cl.rack_of(0), 0u);
  EXPECT_EQ(cl.rack_of(99), 3u);
}

TEST(Topology, PartialLastRack) {
  const auto cl =
      BuildCluster({.num_machines = 90, .seed = 1, .machines_per_rack = 40});
  EXPECT_EQ(cl.num_racks(), 3u);  // 40 + 40 + 10
}

TEST(TopologyDeathTest, ZeroMachinesPerRackAborts) {
  EXPECT_DEATH(
      BuildFleet({.num_machines = 10, .seed = 1, .machines_per_rack = 0}),
      "machines_per_rack");
}

// ------------------------------------------------------------- spread

TEST(Spread, ShortJobUsesDistinctRacksWhenPossible) {
  // 4 tasks, 8 racks of 4 machines: every task can get its own rack.
  const auto cl =
      BuildCluster({.num_machines = 32, .seed = 2, .machines_per_rack = 4});
  trace::Job job;
  job.submit_time = 0;
  job.task_durations = {5, 5, 5, 5};
  job.placement = trace::PlacementPref::kSpread;
  const auto report = RunOn("phoenix", OneJobTrace(std::move(job)), cl);
  EXPECT_EQ(report.jobs[0].racks_used, 4u);
  EXPECT_EQ(report.counters.placement_spread_violations, 0u);
  EXPECT_EQ(report.jobs[0].placement, trace::PlacementPref::kSpread);
}

TEST(Spread, LongJobSpreadsThroughCentralPlane) {
  const auto cl =
      BuildCluster({.num_machines = 32, .seed = 3, .machines_per_rack = 4});
  trace::Job job;
  job.submit_time = 0;
  job.task_durations = {500, 500, 500};
  job.placement = trace::PlacementPref::kSpread;
  const auto report = RunOn("eagle-c", OneJobTrace(std::move(job)), cl);
  EXPECT_EQ(report.jobs[0].racks_used, 3u);
  EXPECT_EQ(report.counters.placement_spread_violations, 0u);
}

TEST(Spread, ViolationsCountedWhenRacksExhausted) {
  // 6 tasks but only 2 racks: at least 4 doubled-up placements.
  const auto cl =
      BuildCluster({.num_machines = 16, .seed = 4, .machines_per_rack = 8});
  trace::Job job;
  job.submit_time = 0;
  job.task_durations = {500, 500, 500, 500, 500, 500};
  job.placement = trace::PlacementPref::kSpread;
  const auto report = RunOn("eagle-c", OneJobTrace(std::move(job)), cl);
  EXPECT_EQ(report.jobs[0].racks_used, 2u);
  EXPECT_EQ(report.counters.placement_spread_violations, 4u);
}

TEST(Spread, UnspecifiedJobsUnaffected) {
  const auto cl =
      BuildCluster({.num_machines = 16, .seed = 5, .machines_per_rack = 4});
  trace::Job job;
  job.submit_time = 0;
  job.task_durations = {5, 5};
  const auto report = RunOn("phoenix", OneJobTrace(std::move(job)), cl);
  EXPECT_EQ(report.jobs[0].racks_used, 0u);  // no preference => not tracked
  EXPECT_EQ(report.counters.placement_spread_violations, 0u);
}

// ------------------------------------------------------------- colocate

TEST(Colocate, ShortJobLandsOnOneRack) {
  const auto cl =
      BuildCluster({.num_machines = 32, .seed = 6, .machines_per_rack = 8});
  trace::Job job;
  job.submit_time = 0;
  job.task_durations = {3, 3, 3};
  job.placement = trace::PlacementPref::kColocate;
  const auto report = RunOn("phoenix", OneJobTrace(std::move(job)), cl);
  // With 8 machines per rack and 3 tasks, co-location should succeed (a
  // miss or two is tolerated if probes race).
  EXPECT_LE(report.jobs[0].racks_used, 2u);
}

TEST(Colocate, CentralPlaneHonorsAnchor) {
  const auto cl =
      BuildCluster({.num_machines = 32, .seed = 7, .machines_per_rack = 8});
  trace::Job job;
  job.submit_time = 0;
  job.task_durations = {500, 500, 500};
  job.placement = trace::PlacementPref::kColocate;
  const auto report = RunOn("eagle-c", OneJobTrace(std::move(job)), cl);
  EXPECT_EQ(report.jobs[0].racks_used, 1u);
  EXPECT_EQ(report.counters.placement_colocate_misses, 0u);
}

// ------------------------------------------------------------- generator/io

TEST(PlacementGenerator, FractionsRoughlyHonored) {
  auto o = trace::GoogleProfile();
  o.num_jobs = 6000;
  o.num_workers = 300;
  o.seed = 8;
  o.spread_fraction = 0.2;
  o.colocate_fraction = 0.2;
  const auto t = trace::GenerateTrace("g", o);
  std::size_t spread = 0, colocate = 0, long_multi = 0, short_multi = 0;
  for (const auto& j : t.jobs()) {
    if (j.task_durations.size() < 2) continue;
    if (j.short_job) ++short_multi; else ++long_multi;
    spread += j.placement == trace::PlacementPref::kSpread;
    colocate += j.placement == trace::PlacementPref::kColocate;
  }
  EXPECT_NEAR(static_cast<double>(spread) / long_multi, 0.2, 0.06);
  EXPECT_NEAR(static_cast<double>(colocate) / short_multi, 0.2, 0.06);
}

TEST(PlacementGenerator, SingleTaskJobsGetNoPreference) {
  auto o = trace::GoogleProfile();
  o.num_jobs = 3000;
  o.num_workers = 300;
  o.seed = 9;
  o.spread_fraction = 1.0;
  o.colocate_fraction = 1.0;
  const auto t = trace::GenerateTrace("g", o);
  for (const auto& j : t.jobs()) {
    if (j.task_durations.size() == 1) {
      EXPECT_EQ(j.placement, trace::PlacementPref::kNone);
    }
  }
}

TEST(PlacementIo, RoundTripsPreference) {
  auto o = trace::GoogleProfile();
  o.num_jobs = 500;
  o.num_workers = 100;
  o.seed = 10;
  o.spread_fraction = 0.5;
  o.colocate_fraction = 0.5;
  const auto original = trace::GenerateTrace("g", o);
  std::stringstream buffer;
  trace::WriteTrace(original, buffer);
  std::string error;
  const auto parsed = trace::ReadTrace(buffer, &error);
  ASSERT_TRUE(error.empty()) << error;
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed.job(i).placement, original.job(i).placement) << i;
  }
}

TEST(PlacementIo, LegacyFourFieldFormatStillParses) {
  std::stringstream in("1.0|1|2.0|\n");
  std::string error;
  const auto t = trace::ReadTrace(in, &error);
  EXPECT_TRUE(error.empty()) << error;
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.job(0).placement, trace::PlacementPref::kNone);
}

TEST(PlacementIo, RejectsBadPreferenceCode) {
  std::stringstream in("1.0|1|2.0||x\n");
  std::string error;
  trace::ReadTrace(in, &error);
  EXPECT_NE(error.find("placement"), std::string::npos);
}

// ------------------------------------------------------------- at scale

TEST(PlacementAtScale, MixedWorkloadCompletesWithBoundedViolations) {
  const auto cl =
      BuildCluster({.num_machines = 120, .seed = 11, .machines_per_rack = 10});
  auto o = trace::GoogleProfile();
  o.num_jobs = 2000;
  o.num_workers = 120;
  o.seed = 11;
  o.spread_fraction = 0.3;
  o.colocate_fraction = 0.3;
  const auto t = trace::GenerateTrace("g", o);
  for (const char* name : {"phoenix", "eagle-c", "yacc-d"}) {
    const auto report = RunOn(name, t, cl);
    EXPECT_EQ(report.jobs.size(), t.size()) << name;
    // Almost every multi-task spread job lands on more than one rack; the
    // exceptions are jobs whose constraint pool fits inside a single rack.
    std::size_t spread_multi = 0, spread_ok = 0;
    for (const auto& j : report.jobs) {
      if (j.placement == trace::PlacementPref::kSpread && j.num_tasks > 1) {
        ++spread_multi;
        spread_ok += j.racks_used >= 2;
      }
    }
    ASSERT_GT(spread_multi, 0u) << name;
    EXPECT_GT(static_cast<double>(spread_ok) / spread_multi, 0.8) << name;
  }
}

}  // namespace
}  // namespace phoenix
