// White-box tests of the scheduler framework's internal machinery, driven
// through a test subclass that exposes the protected helpers.
#include <gtest/gtest.h>

#include "cluster/builder.h"
#include "sched/sparrow.h"
#include "sim/engine.h"

namespace phoenix::sched {
namespace {

using cluster::MachineId;

class Harness : public SparrowScheduler {
 public:
  Harness(sim::Engine& e, const cluster::Cluster& c,
          const SchedulerConfig& cfg)
      : SparrowScheduler(e, c, cfg) {}

  using SparrowScheduler::FilterByPlacement;
  using SparrowScheduler::IndexRespectingSlack;
  using SparrowScheduler::NoteRackCommitment;
  using SparrowScheduler::PopQueueAt;
  using SparrowScheduler::RemoveQueueAt;
  using SparrowScheduler::SendEntry;
  using SparrowScheduler::TakeNextTaskIndex;
  using SparrowScheduler::counters;
  using SparrowScheduler::worker;
};

class FrameworkTest : public ::testing::Test {
 protected:
  FrameworkTest()
      : cluster_(cluster::BuildCluster(
            {.num_machines = 20, .seed = 3, .machines_per_rack = 5})),
        harness_(engine_, cluster_, SchedulerConfig{}) {
    spec_.id = 0;
    spec_.submit_time = 0;
    spec_.task_durations = {1.0, 2.0, 3.0};
    job_.spec = &spec_;
    job_.id = 0;
  }

  QueueEntry Entry(double est) {
    QueueEntry e;
    e.kind = QueueEntry::Kind::kProbe;
    e.job = 0;
    e.est_duration = est;
    return e;
  }

  sim::Engine engine_;
  cluster::Cluster cluster_;
  Harness harness_;
  trace::Job spec_;
  JobRuntime job_;
};

// ---------------------------------------------------------------- queues

TEST_F(FrameworkTest, PopChargesBypassesToSkippedEntries) {
  WorkerState& w = harness_.worker(0);
  w.queue = {Entry(1), Entry(2), Entry(3)};
  const QueueEntry taken = harness_.PopQueueAt(w, 2);
  EXPECT_DOUBLE_EQ(taken.est_duration, 3.0);
  ASSERT_EQ(w.queue.size(), 2u);
  EXPECT_EQ(w.queue[0].bypass_count, 1u);
  EXPECT_EQ(w.queue[1].bypass_count, 1u);
}

TEST_F(FrameworkTest, PopAtHeadChargesNobody) {
  WorkerState& w = harness_.worker(1);
  w.queue = {Entry(1), Entry(2)};
  harness_.PopQueueAt(w, 0);
  EXPECT_EQ(w.queue[0].bypass_count, 0u);
}

TEST_F(FrameworkTest, RemoveDoesNotChargeBypasses) {
  WorkerState& w = harness_.worker(2);
  w.queue = {Entry(1), Entry(2), Entry(3)};
  harness_.RemoveQueueAt(w, 2);
  EXPECT_EQ(w.queue[0].bypass_count, 0u);
  EXPECT_EQ(w.queue[1].bypass_count, 0u);
}

TEST_F(FrameworkTest, QueueAccountingTracksEstimates) {
  WorkerState& w = harness_.worker(3);
  w.queue = {Entry(1), Entry(2)};
  w.est_queued_work = 3.0;
  harness_.PopQueueAt(w, 1);
  EXPECT_DOUBLE_EQ(w.est_queued_work, 1.0);
  harness_.PopQueueAt(w, 0);
  EXPECT_DOUBLE_EQ(w.est_queued_work, 0.0);
}

TEST_F(FrameworkTest, SendEntryDeliversAfterDelay) {
  QueueEntry e = Entry(5);
  harness_.SendEntry(7, e, 0.25);
  engine_.Run(0.2);
  EXPECT_TRUE(harness_.worker(7).queue.empty() ||
              harness_.worker(7).busy);  // not yet delivered at 0.2
  // Run just past delivery but short of the probe-resolution RTT (there is
  // no submitted job behind this synthetic probe to resolve against).
  engine_.Run(0.2501);
  // The probe was delivered and immediately claimed the idle slot.
  EXPECT_TRUE(harness_.worker(7).busy);
}

// ---------------------------------------------------------------- slack

TEST_F(FrameworkTest, SlackZeroForcesStrictFifo) {
  SchedulerConfig cfg;
  cfg.slack_threshold = 0;
  Harness strict(engine_, cluster_, cfg);
  WorkerState& w = strict.worker(0);
  w.queue = {Entry(9), Entry(1)};
  // Every entry trivially exceeds a zero slack budget: head runs first.
  EXPECT_EQ(strict.IndexRespectingSlack(w, 1), 0u);
}

// ---------------------------------------------------------------- placement

TEST_F(FrameworkTest, SpreadFilterDropsUsedRacks) {
  spec_.placement = trace::PlacementPref::kSpread;
  job_.used_racks.Resize(cluster_.num_racks());
  job_.used_racks.Set(0);  // rack 0 = machines 0..4
  std::vector<MachineId> candidates = {1, 6, 11};
  harness_.FilterByPlacement(job_, candidates);
  EXPECT_EQ(candidates, (std::vector<MachineId>{6, 11}));
}

TEST_F(FrameworkTest, SpreadFilterFallsBackWhenEmpty) {
  spec_.placement = trace::PlacementPref::kSpread;
  job_.used_racks.Resize(cluster_.num_racks());
  job_.used_racks.Set(0);
  std::vector<MachineId> candidates = {1, 2};  // both rack 0
  harness_.FilterByPlacement(job_, candidates);
  EXPECT_EQ(candidates.size(), 2u);  // soft preference: keep the originals
}

TEST_F(FrameworkTest, ColocateFilterKeepsAnchorRack) {
  spec_.placement = trace::PlacementPref::kColocate;
  job_.used_racks.Resize(cluster_.num_racks());
  job_.anchor_rack = 2;  // machines 10..14
  std::vector<MachineId> candidates = {1, 11, 12, 19};
  harness_.FilterByPlacement(job_, candidates);
  EXPECT_EQ(candidates, (std::vector<MachineId>{11, 12}));
}

TEST_F(FrameworkTest, ColocateFilterNoAnchorNoOp) {
  spec_.placement = trace::PlacementPref::kColocate;
  job_.used_racks.Resize(cluster_.num_racks());
  std::vector<MachineId> candidates = {1, 11};
  harness_.FilterByPlacement(job_, candidates);
  EXPECT_EQ(candidates.size(), 2u);
}

TEST_F(FrameworkTest, NoPreferenceFilterNoOp) {
  std::vector<MachineId> candidates = {1, 2, 3};
  harness_.FilterByPlacement(job_, candidates);
  EXPECT_EQ(candidates.size(), 3u);
}

TEST_F(FrameworkTest, RackCommitmentTracksSpread) {
  spec_.placement = trace::PlacementPref::kSpread;
  job_.used_racks.Resize(cluster_.num_racks());
  harness_.NoteRackCommitment(job_, 1);
  EXPECT_TRUE(job_.used_racks.Test(1));
  EXPECT_EQ(harness_.counters().placement_spread_violations, 0u);
  harness_.NoteRackCommitment(job_, 1);  // doubled up
  EXPECT_EQ(harness_.counters().placement_spread_violations, 1u);
}

TEST_F(FrameworkTest, RackCommitmentTracksColocate) {
  spec_.placement = trace::PlacementPref::kColocate;
  job_.used_racks.Resize(cluster_.num_racks());
  harness_.NoteRackCommitment(job_, 2);
  EXPECT_EQ(job_.anchor_rack, 2u);
  harness_.NoteRackCommitment(job_, 2);
  EXPECT_EQ(harness_.counters().placement_colocate_misses, 0u);
  harness_.NoteRackCommitment(job_, 3);
  EXPECT_EQ(harness_.counters().placement_colocate_misses, 1u);
}

// ---------------------------------------------------------------- replay

TEST_F(FrameworkTest, TakeNextTaskPrefersReplays) {
  job_.next_unplaced = 2;
  job_.replay_tasks = {0};
  EXPECT_EQ(harness_.TakeNextTaskIndex(job_), 0u);  // replay first
  EXPECT_TRUE(job_.replay_tasks.empty());
  EXPECT_EQ(harness_.TakeNextTaskIndex(job_), 2u);  // then fresh
  EXPECT_EQ(job_.next_unplaced, 3u);
}

TEST_F(FrameworkTest, AllPlacedAccountsForReplays) {
  job_.next_unplaced = 3;  // all 3 fresh tasks handed out
  EXPECT_TRUE(job_.AllPlaced());
  job_.replay_tasks = {1};
  EXPECT_FALSE(job_.AllPlaced());
}

}  // namespace
}  // namespace phoenix::sched
