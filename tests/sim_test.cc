// Unit tests for the discrete-event engine.
#include <vector>

#include <gtest/gtest.h>

#include "sim/engine.h"
#include "util/rng.h"

namespace phoenix::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.Now(), 0.0);
  EXPECT_TRUE(e.Empty());
}

TEST(Engine, FiresEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.ScheduleAt(3.0, [&] { order.push_back(3); });
  e.ScheduleAt(1.0, [&] { order.push_back(1); });
  e.ScheduleAt(2.0, [&] { order.push_back(2); });
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, SameTimeEventsFireInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.ScheduleAt(5.0, [&order, i] { order.push_back(i); });
  }
  e.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, NowAdvancesToEventTime) {
  Engine e;
  double seen = -1;
  e.ScheduleAt(4.5, [&] { seen = e.Now(); });
  e.Run();
  EXPECT_DOUBLE_EQ(seen, 4.5);
  EXPECT_DOUBLE_EQ(e.Now(), 4.5);
}

TEST(Engine, ScheduleAfterUsesRelativeTime) {
  Engine e;
  double fired_at = -1;
  e.ScheduleAt(2.0, [&] {
    e.ScheduleAfter(3.0, [&] { fired_at = e.Now(); });
  });
  e.Run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Engine, NestedSchedulingWorks) {
  Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) e.ScheduleAfter(1.0, recurse);
  };
  e.ScheduleAt(0.0, recurse);
  e.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(e.Now(), 99.0);
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine e;
  int fired = 0;
  e.ScheduleAt(1.0, [&] { ++fired; });
  e.ScheduleAt(2.0, [&] { ++fired; });
  e.ScheduleAt(3.0, [&] { ++fired; });
  EXPECT_EQ(e.Run(2.0), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(e.Empty());
  EXPECT_EQ(e.Run(), 1u);
  EXPECT_EQ(fired, 3);
}

TEST(Engine, StepFiresExactlyOne) {
  Engine e;
  int fired = 0;
  e.ScheduleAt(1.0, [&] { ++fired; });
  e.ScheduleAt(2.0, [&] { ++fired; });
  EXPECT_TRUE(e.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(e.Step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(e.Step());
}

TEST(Engine, StepRespectsUntil) {
  Engine e;
  e.ScheduleAt(5.0, [] {});
  EXPECT_FALSE(e.Step(4.0));
  EXPECT_TRUE(e.Step(5.0));
}

TEST(Engine, CancelPreventsFiring) {
  Engine e;
  int fired = 0;
  const auto id = e.ScheduleAt(1.0, [&] { ++fired; });
  EXPECT_TRUE(e.Cancel(id));
  e.Run();
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(e.Empty());
}

TEST(Engine, CancelTwiceReturnsFalse) {
  Engine e;
  const auto id = e.ScheduleAt(1.0, [] {});
  EXPECT_TRUE(e.Cancel(id));
  EXPECT_FALSE(e.Cancel(id));
  e.Run();
}

TEST(Engine, CancelUnknownIdReturnsFalse) {
  Engine e;
  EXPECT_FALSE(e.Cancel(12345));
}

TEST(Engine, CancelMiddleEventKeepsOthers) {
  Engine e;
  std::vector<int> order;
  e.ScheduleAt(1.0, [&] { order.push_back(1); });
  const auto id = e.ScheduleAt(2.0, [&] { order.push_back(2); });
  e.ScheduleAt(3.0, [&] { order.push_back(3); });
  e.Cancel(id);
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Engine, CountsFiredAndScheduled) {
  Engine e;
  for (int i = 0; i < 5; ++i) e.ScheduleAt(i, [] {});
  const auto id = e.ScheduleAt(10, [] {});
  e.Cancel(id);
  e.Run();
  EXPECT_EQ(e.events_scheduled(), 6u);
  EXPECT_EQ(e.events_fired(), 5u);
}

TEST(Engine, EmptyReflectsLiveEvents) {
  Engine e;
  EXPECT_TRUE(e.Empty());
  const auto id = e.ScheduleAt(1.0, [] {});
  EXPECT_FALSE(e.Empty());
  e.Cancel(id);
  EXPECT_TRUE(e.Empty());
}

TEST(Engine, EventMayScheduleAtCurrentTime) {
  Engine e;
  std::vector<int> order;
  e.ScheduleAt(1.0, [&] {
    order.push_back(1);
    e.ScheduleAt(1.0, [&] { order.push_back(2); });
  });
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EngineDeathTest, SchedulingInPastAborts) {
  Engine e;
  e.ScheduleAt(5.0, [] {});
  e.Run();
  EXPECT_DEATH(e.ScheduleAt(1.0, [] {}), "past");
}

TEST(EngineDeathTest, NullCallbackAborts) {
  Engine e;
  EXPECT_DEATH(e.ScheduleAt(1.0, Engine::Callback()), "null");
}

TEST(Engine, CompactsTombstonesWhenCancellationsDominate) {
  Engine e;
  std::vector<Engine::EventId> ids;
  const std::size_t n = 2000;
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(e.ScheduleAt(static_cast<double>(i), [] {}));
  }
  // Cancel 90 % without popping anything: tombstones pile up in the heap
  // until the cancelled count crosses half the live count, at which point
  // the engine must rebuild instead of carrying them to the end of the run.
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 10 != 0) cancelled += e.Cancel(ids[i]);
  }
  const std::size_t live = n - cancelled;
  EXPECT_GT(e.compactions(), 0u);
  // Post-compaction bound: live entries plus at most live/2 fresh
  // tombstones (plus the compaction floor of 64).
  EXPECT_LE(e.pending_entries(), live + live / 2 + 64);
  EXPECT_EQ(e.Run(), live);
  EXPECT_TRUE(e.Empty());
}

TEST(Engine, CompactionPreservesOrderAndPendingEvents) {
  Engine e;
  std::vector<double> fired;
  std::vector<Engine::EventId> ids;
  for (std::size_t i = 0; i < 600; ++i) {
    const double t = static_cast<double>((i * 7919) % 997);
    ids.push_back(
        e.ScheduleAt(t, [&fired, &e] { fired.push_back(e.Now()); }));
  }
  for (std::size_t i = 0; i < 600; ++i) {
    if (i % 4 != 0) e.Cancel(ids[i]);
  }
  ASSERT_GT(e.compactions(), 0u);
  e.Run();
  EXPECT_EQ(fired.size(), 150u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

// Property sweep: random schedule/cancel workloads preserve global time
// ordering and fire exactly the non-cancelled events.
class EnginePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnginePropertyTest, RandomWorkloadIsOrderedAndExact) {
  util::Rng rng(GetParam());
  Engine e;
  std::vector<Engine::EventId> ids;
  std::vector<double> fired_times;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    const double t = rng.Uniform(0.0, 100.0);
    ids.push_back(e.ScheduleAt(t, [&fired_times, &e] {
      fired_times.push_back(e.Now());
    }));
  }
  // Cancel ~25 % of them.
  std::size_t cancelled = 0;
  for (const auto id : ids) {
    if (rng.Bernoulli(0.25)) cancelled += e.Cancel(id);
  }
  e.Run();
  EXPECT_EQ(fired_times.size(), n - cancelled);
  EXPECT_TRUE(std::is_sorted(fired_times.begin(), fired_times.end()));
  EXPECT_EQ(e.events_fired(), n - cancelled);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace phoenix::sim
