// Unit tests for the discrete-event engine.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "sim/engine.h"
#include "util/rng.h"

namespace phoenix::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.Now(), 0.0);
  EXPECT_TRUE(e.Empty());
}

TEST(Engine, FiresEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.ScheduleAt(3.0, [&] { order.push_back(3); });
  e.ScheduleAt(1.0, [&] { order.push_back(1); });
  e.ScheduleAt(2.0, [&] { order.push_back(2); });
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, SameTimeEventsFireInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.ScheduleAt(5.0, [&order, i] { order.push_back(i); });
  }
  e.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, NowAdvancesToEventTime) {
  Engine e;
  double seen = -1;
  e.ScheduleAt(4.5, [&] { seen = e.Now(); });
  e.Run();
  EXPECT_DOUBLE_EQ(seen, 4.5);
  EXPECT_DOUBLE_EQ(e.Now(), 4.5);
}

TEST(Engine, ScheduleAfterUsesRelativeTime) {
  Engine e;
  double fired_at = -1;
  e.ScheduleAt(2.0, [&] {
    e.ScheduleAfter(3.0, [&] { fired_at = e.Now(); });
  });
  e.Run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Engine, NestedSchedulingWorks) {
  Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) e.ScheduleAfter(1.0, recurse);
  };
  e.ScheduleAt(0.0, recurse);
  e.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(e.Now(), 99.0);
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine e;
  int fired = 0;
  e.ScheduleAt(1.0, [&] { ++fired; });
  e.ScheduleAt(2.0, [&] { ++fired; });
  e.ScheduleAt(3.0, [&] { ++fired; });
  EXPECT_EQ(e.Run(2.0), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(e.Empty());
  EXPECT_EQ(e.Run(), 1u);
  EXPECT_EQ(fired, 3);
}

TEST(Engine, StepFiresExactlyOne) {
  Engine e;
  int fired = 0;
  e.ScheduleAt(1.0, [&] { ++fired; });
  e.ScheduleAt(2.0, [&] { ++fired; });
  EXPECT_TRUE(e.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(e.Step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(e.Step());
}

TEST(Engine, StepRespectsUntil) {
  Engine e;
  e.ScheduleAt(5.0, [] {});
  EXPECT_FALSE(e.Step(4.0));
  EXPECT_TRUE(e.Step(5.0));
}

TEST(Engine, CancelPreventsFiring) {
  Engine e;
  int fired = 0;
  const auto id = e.ScheduleAt(1.0, [&] { ++fired; });
  EXPECT_TRUE(e.Cancel(id));
  e.Run();
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(e.Empty());
}

TEST(Engine, CancelTwiceReturnsFalse) {
  Engine e;
  const auto id = e.ScheduleAt(1.0, [] {});
  EXPECT_TRUE(e.Cancel(id));
  EXPECT_FALSE(e.Cancel(id));
  e.Run();
}

TEST(Engine, CancelUnknownIdReturnsFalse) {
  Engine e;
  EXPECT_FALSE(e.Cancel(12345));
}

TEST(Engine, CancelMiddleEventKeepsOthers) {
  Engine e;
  std::vector<int> order;
  e.ScheduleAt(1.0, [&] { order.push_back(1); });
  const auto id = e.ScheduleAt(2.0, [&] { order.push_back(2); });
  e.ScheduleAt(3.0, [&] { order.push_back(3); });
  e.Cancel(id);
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Engine, CountsFiredAndScheduled) {
  Engine e;
  for (int i = 0; i < 5; ++i) e.ScheduleAt(i, [] {});
  const auto id = e.ScheduleAt(10, [] {});
  e.Cancel(id);
  e.Run();
  EXPECT_EQ(e.events_scheduled(), 6u);
  EXPECT_EQ(e.events_fired(), 5u);
}

TEST(Engine, EmptyReflectsLiveEvents) {
  Engine e;
  EXPECT_TRUE(e.Empty());
  const auto id = e.ScheduleAt(1.0, [] {});
  EXPECT_FALSE(e.Empty());
  e.Cancel(id);
  EXPECT_TRUE(e.Empty());
}

TEST(Engine, EventMayScheduleAtCurrentTime) {
  Engine e;
  std::vector<int> order;
  e.ScheduleAt(1.0, [&] {
    order.push_back(1);
    e.ScheduleAt(1.0, [&] { order.push_back(2); });
  });
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EngineDeathTest, SchedulingInPastAborts) {
  Engine e;
  e.ScheduleAt(5.0, [] {});
  e.Run();
  EXPECT_DEATH(e.ScheduleAt(1.0, [] {}), "past");
}

TEST(EngineDeathTest, NullCallbackAborts) {
  Engine e;
  EXPECT_DEATH(e.ScheduleAt(1.0, Engine::Callback()), "null");
}

TEST(Engine, CompactsTombstonesWhenCancellationsDominate) {
  Engine e;
  std::vector<Engine::EventId> ids;
  const std::size_t n = 2000;
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(e.ScheduleAt(static_cast<double>(i), [] {}));
  }
  // Cancel 90 % without popping anything: tombstones pile up in the heap
  // until the cancelled count crosses half the live count, at which point
  // the engine must rebuild instead of carrying them to the end of the run.
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 10 != 0) cancelled += e.Cancel(ids[i]);
  }
  const std::size_t live = n - cancelled;
  EXPECT_GT(e.compactions(), 0u);
  // Post-compaction bound: live entries plus at most live/2 fresh
  // tombstones (plus the compaction floor of 64).
  EXPECT_LE(e.pending_entries(), live + live / 2 + 64);
  EXPECT_EQ(e.Run(), live);
  EXPECT_TRUE(e.Empty());
}

TEST(Engine, CompactionPreservesOrderAndPendingEvents) {
  Engine e;
  std::vector<double> fired;
  std::vector<Engine::EventId> ids;
  for (std::size_t i = 0; i < 600; ++i) {
    const double t = static_cast<double>((i * 7919) % 997);
    ids.push_back(
        e.ScheduleAt(t, [&fired, &e] { fired.push_back(e.Now()); }));
  }
  for (std::size_t i = 0; i < 600; ++i) {
    if (i % 4 != 0) e.Cancel(ids[i]);
  }
  ASSERT_GT(e.compactions(), 0u);
  e.Run();
  EXPECT_EQ(fired.size(), 150u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

// Same-instant arrivals from inside a callback land in the tail of the
// already-harvested ready run: the eight pre-scheduled events fire first in
// schedule order, then their reentrant same-time children, also in order.
TEST(Engine, SameInstantFifoWithReentrantArrivals) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    e.ScheduleAt(2.0, [&order, &e, i] {
      order.push_back(i);
      e.ScheduleAt(2.0, [&order, i] { order.push_back(100 + i); });
    });
  }
  e.Run();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[8 + i], 100 + i);
}

// A same-instant cohort interleaved with enough spread-out events to force
// several bucket doublings (growth triggers past 2x the bucket count, which
// starts at 16) must still fire in schedule order: rebuilds move entries
// between buckets but never perturb the (time, seq) serving order.
TEST(Engine, SameInstantFifoSurvivesCalendarGrowth) {
  Engine e;
  std::vector<int> cohort;
  std::uint64_t spread_fired = 0;
  for (int i = 0; i < 512; ++i) {
    e.ScheduleAt(static_cast<double>((i * 13) % 4096) + 0.5,
                 [&spread_fired] { ++spread_fired; });
    e.ScheduleAt(1000.25, [&cohort, i] { cohort.push_back(i); });
  }
  e.Run();
  EXPECT_EQ(spread_fired, 512u);
  ASSERT_EQ(cohort.size(), 512u);
  for (int i = 0; i < 512; ++i) EXPECT_EQ(cohort[i], i);
  EXPECT_EQ(e.events_fired(), 1024u);
}

// Reentrant scheduling into a day the scan has already served: an event at
// day 7 schedules a same-day follower later than Now() plus a next-day
// event; both must fire, in time order, and Now() must track them.
TEST(Engine, ReentrantScheduleIntoServedDayFires) {
  Engine e;
  std::vector<double> fired;
  e.ScheduleAt(7.25, [&] {
    e.ScheduleAt(7.75, [&] { fired.push_back(e.Now()); });
    e.ScheduleAt(8.5, [&] { fired.push_back(e.Now()); });
    fired.push_back(e.Now());
  });
  e.Run();
  EXPECT_EQ(fired, (std::vector<double>{7.25, 7.75, 8.5}));
}

// Chained ScheduleAt(Now()) reentrancy: each event schedules its successor
// at the identical instant. The chain must fully drain at one simulated
// time, in creation order, without starving the later event at t = 9.
TEST(Engine, ChainedSameInstantReentrancyDrainsBeforeAdvancing) {
  Engine e;
  std::vector<int> order;
  int depth = 0;
  e.ScheduleAt(3.0, [&] {
    struct Recur {
      Engine& e;
      std::vector<int>& order;
      int& depth;
      void operator()() {
        order.push_back(depth);
        if (++depth < 50) {
          e.ScheduleAt(e.Now(), Recur{e, order, depth});
        }
      }
    };
    Recur{e, order, depth}();
  });
  bool later_saw_chain_done = false;
  e.ScheduleAt(9.0, [&] { later_saw_chain_done = depth == 50; });
  e.Run();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
  EXPECT_TRUE(later_saw_chain_done);
}

// Cancelling a not-yet-served same-instant sibling from inside a callback
// must suppress it even though it already sits in the harvested ready run.
TEST(Engine, CancelSameInstantSiblingFromCallback) {
  Engine e;
  std::vector<int> order;
  Engine::EventId victim = 0;
  e.ScheduleAt(4.0, [&] {
    order.push_back(0);
    EXPECT_TRUE(e.Cancel(victim));
    EXPECT_FALSE(e.IsPending(victim));
  });
  victim = e.ScheduleAt(4.0, [&] { order.push_back(1); });
  e.ScheduleAt(4.0, [&] { order.push_back(2); });
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
  EXPECT_EQ(e.events_fired(), 2u);
}

// PendingIds() is a sorted exact snapshot of the live set, immune to
// tombstones still parked in the calendar.
TEST(Engine, PendingIdsIsSortedLiveSnapshot) {
  Engine e;
  std::vector<Engine::EventId> ids;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(e.ScheduleAt(static_cast<double>(i % 17), [] {}));
  }
  std::vector<Engine::EventId> expect;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i % 3 == 0) {
      e.Cancel(ids[i]);
    } else {
      expect.push_back(ids[i]);
    }
  }
  std::sort(expect.begin(), expect.end());
  const auto live = e.PendingIds();
  EXPECT_TRUE(std::is_sorted(live.begin(), live.end()));
  EXPECT_EQ(live, expect);
  for (const auto id : live) EXPECT_TRUE(e.IsPending(id));
}

// Cancel-during-served-day ordering: an early event in a harvested day
// cancels enough of the day's unserved ready tail to cross the purge
// threshold. The purge compacts ready_ and clears the tombstone set while
// the day is still being served — the survivors must still fire exactly
// once, in schedule order, and nothing cancelled may fire.
TEST(Engine, CancelInServedDayTailThenPurgeFromCallback) {
  Engine e;
  std::vector<int> order;
  std::vector<Engine::EventId> tail;
  const int n = 200;
  // One trigger plus n same-instant followers: all land in one harvested
  // ready run, so the cancels below hit the unserved tail specifically.
  e.ScheduleAt(5.0, [&] {
    order.push_back(-1);
    std::size_t cancelled = 0;
    for (int i = 0; i < n; ++i) {
      if (i % 4 != 0) cancelled += e.Cancel(tail[static_cast<std::size_t>(i)]);
    }
    ASSERT_EQ(cancelled, 150u);
    // 150 tombstones vs 50 live: the purge must have run already.
    EXPECT_GT(e.compactions(), 0u);
  });
  for (int i = 0; i < n; ++i) {
    tail.push_back(e.ScheduleAt(5.0, [&order, i] { order.push_back(i); }));
  }
  e.Run();
  ASSERT_EQ(order.size(), 51u);
  EXPECT_EQ(order[0], -1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i + 1)], i * 4);
  EXPECT_TRUE(e.Empty());
}

// Purge-mid-harvest with the calendar still populated: the cancels span the
// harvested day's tail AND future-day buckets, and after the purge (which
// resets ready_head_ to 0 and clears the tombstones) the same callback
// schedules fresh same-instant arrivals. Serving order must hold across the
// compacted run, the reentrant insertions, and the later days.
TEST(Engine, PurgeMidHarvestKeepsTailAndFutureDaysConsistent) {
  Engine e;
  std::vector<double> fired;
  std::vector<Engine::EventId> today, future;
  e.ScheduleAt(3.0, [&] {
    fired.push_back(e.Now());
    // Cancel half of today's unserved tail and most of the future days.
    for (std::size_t i = 0; i < today.size(); ++i) {
      if (i % 2 == 0) e.Cancel(today[i]);
    }
    for (std::size_t i = 0; i < future.size(); ++i) {
      if (i % 8 != 0) e.Cancel(future[i]);
    }
    EXPECT_GT(e.compactions(), 0u);
    // Post-purge reentrancy: the purge just reset the serving cursor; a
    // same-instant arrival must still slot at the cursor (after every
    // entry with time <= Now()) and fire before the day's later entries.
    // It logs Now() + epsilon so the sortedness check pins its position.
    e.ScheduleAt(e.Now(), [&] { fired.push_back(e.Now() + 0.0001); });
  });
  for (int i = 0; i < 40; ++i) {
    today.push_back(e.ScheduleAt(3.0 + 0.001 * (i + 1),
                                 [&] { fired.push_back(e.Now()); }));
  }
  for (int i = 0; i < 200; ++i) {
    future.push_back(e.ScheduleAt(10.0 + static_cast<double>(i),
                                  [&] { fired.push_back(e.Now()); }));
  }
  e.Run();
  // Survivors: trigger + reentrant child + 20 odd-indexed today + 25 future.
  EXPECT_EQ(fired.size(), 1u + 1u + 20u + 25u);
  EXPECT_EQ(e.events_fired(), fired.size());
  // The reentrant same-instant child fired before any strictly-later entry:
  // fired[] is sorted under the +0.0001 marker it logged for itself.
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  EXPECT_TRUE(e.Empty());
}

// Differential stress: random schedule/cancel traffic — including cancels
// and same-day schedules issued from inside callbacks, which is where the
// purge can run mid-harvest — must fire exactly the never-cancelled events
// in (time, schedule-order) sequence, matching a naive reference model.
class EnginePurgeStressTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(EnginePurgeStressTest, ReentrantCancelStormMatchesReferenceModel) {
  util::Rng rng(GetParam());
  Engine e;
  struct Ref {
    double time;
    std::uint64_t seq;
    bool cancelled = false;
  };
  std::vector<Ref> ref;          // reference model, indexed by spawn order
  std::vector<Engine::EventId> ids;
  std::vector<std::uint64_t> fired;
  // The callback body: log the firing, then randomly cancel a batch of
  // still-pending events (possibly in the current day's tail) and schedule
  // a few followers at Now() or later.
  struct Act {
    Engine& e;
    util::Rng& rng;
    std::vector<Ref>& ref;
    std::vector<Engine::EventId>& ids;
    std::vector<std::uint64_t>& fired;
    std::uint64_t self;
    void operator()() const {
      fired.push_back(self);
      for (int k = 0; k < 12; ++k) {
        const std::size_t victim =
            static_cast<std::size_t>(rng.Uniform(0.0, 1.0) *
                                     static_cast<double>(ids.size()));
        if (victim < ids.size() && e.Cancel(ids[victim])) {
          ref[victim].cancelled = true;
        }
      }
      if (ref.size() < 3000 && rng.Bernoulli(0.5)) {
        const double t = e.Now() + (rng.Bernoulli(0.5)
                                        ? 0.0
                                        : rng.Uniform(0.0, 5.0));
        const std::uint64_t seq = ref.size();
        ids.push_back(e.ScheduleAt(
            t, Act{e, rng, ref, ids, fired, seq}));
        ref.push_back(Ref{t, seq});
      }
    }
  };
  for (int i = 0; i < 1500; ++i) {
    const double t = rng.Uniform(0.0, 50.0);
    const std::uint64_t seq = ref.size();
    ids.push_back(e.ScheduleAt(t, Act{e, rng, ref, ids, fired, seq}));
    ref.push_back(Ref{t, seq});
  }
  e.Run();
  EXPECT_TRUE(e.Empty());
  // Reference serving order: (time, seq) over never-cancelled events. A
  // cancelled flag in ref was only set when Engine::Cancel succeeded, so
  // both models agree by construction on *which* events survive; the test
  // is that the engine fired them all, once each, in the right order.
  std::vector<std::uint64_t> expect;
  for (const Ref& r : ref) {
    if (!r.cancelled) expect.push_back(r.seq);
  }
  std::sort(expect.begin(), expect.end(),
            [&ref](std::uint64_t a, std::uint64_t b) {
              return ref[a].time != ref[b].time ? ref[a].time < ref[b].time
                                                : a < b;
            });
  EXPECT_EQ(fired, expect);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginePurgeStressTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// Property sweep: random schedule/cancel workloads preserve global time
// ordering and fire exactly the non-cancelled events.
class EnginePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnginePropertyTest, RandomWorkloadIsOrderedAndExact) {
  util::Rng rng(GetParam());
  Engine e;
  std::vector<Engine::EventId> ids;
  std::vector<double> fired_times;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    const double t = rng.Uniform(0.0, 100.0);
    ids.push_back(e.ScheduleAt(t, [&fired_times, &e] {
      fired_times.push_back(e.Now());
    }));
  }
  // Cancel ~25 % of them.
  std::size_t cancelled = 0;
  for (const auto id : ids) {
    if (rng.Bernoulli(0.25)) cancelled += e.Cancel(id);
  }
  e.Run();
  EXPECT_EQ(fired_times.size(), n - cancelled);
  EXPECT_TRUE(std::is_sorted(fired_times.begin(), fired_times.end()));
  EXPECT_EQ(e.events_fired(), n - cancelled);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace phoenix::sim
