// Unit tests for the discrete-event engine.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "sim/engine.h"
#include "util/rng.h"

namespace phoenix::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.Now(), 0.0);
  EXPECT_TRUE(e.Empty());
}

TEST(Engine, FiresEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.ScheduleAt(3.0, [&] { order.push_back(3); });
  e.ScheduleAt(1.0, [&] { order.push_back(1); });
  e.ScheduleAt(2.0, [&] { order.push_back(2); });
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, SameTimeEventsFireInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.ScheduleAt(5.0, [&order, i] { order.push_back(i); });
  }
  e.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, NowAdvancesToEventTime) {
  Engine e;
  double seen = -1;
  e.ScheduleAt(4.5, [&] { seen = e.Now(); });
  e.Run();
  EXPECT_DOUBLE_EQ(seen, 4.5);
  EXPECT_DOUBLE_EQ(e.Now(), 4.5);
}

TEST(Engine, ScheduleAfterUsesRelativeTime) {
  Engine e;
  double fired_at = -1;
  e.ScheduleAt(2.0, [&] {
    e.ScheduleAfter(3.0, [&] { fired_at = e.Now(); });
  });
  e.Run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Engine, NestedSchedulingWorks) {
  Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) e.ScheduleAfter(1.0, recurse);
  };
  e.ScheduleAt(0.0, recurse);
  e.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(e.Now(), 99.0);
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine e;
  int fired = 0;
  e.ScheduleAt(1.0, [&] { ++fired; });
  e.ScheduleAt(2.0, [&] { ++fired; });
  e.ScheduleAt(3.0, [&] { ++fired; });
  EXPECT_EQ(e.Run(2.0), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(e.Empty());
  EXPECT_EQ(e.Run(), 1u);
  EXPECT_EQ(fired, 3);
}

TEST(Engine, StepFiresExactlyOne) {
  Engine e;
  int fired = 0;
  e.ScheduleAt(1.0, [&] { ++fired; });
  e.ScheduleAt(2.0, [&] { ++fired; });
  EXPECT_TRUE(e.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(e.Step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(e.Step());
}

TEST(Engine, StepRespectsUntil) {
  Engine e;
  e.ScheduleAt(5.0, [] {});
  EXPECT_FALSE(e.Step(4.0));
  EXPECT_TRUE(e.Step(5.0));
}

TEST(Engine, CancelPreventsFiring) {
  Engine e;
  int fired = 0;
  const auto id = e.ScheduleAt(1.0, [&] { ++fired; });
  EXPECT_TRUE(e.Cancel(id));
  e.Run();
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(e.Empty());
}

TEST(Engine, CancelTwiceReturnsFalse) {
  Engine e;
  const auto id = e.ScheduleAt(1.0, [] {});
  EXPECT_TRUE(e.Cancel(id));
  EXPECT_FALSE(e.Cancel(id));
  e.Run();
}

TEST(Engine, CancelUnknownIdReturnsFalse) {
  Engine e;
  EXPECT_FALSE(e.Cancel(12345));
}

TEST(Engine, CancelMiddleEventKeepsOthers) {
  Engine e;
  std::vector<int> order;
  e.ScheduleAt(1.0, [&] { order.push_back(1); });
  const auto id = e.ScheduleAt(2.0, [&] { order.push_back(2); });
  e.ScheduleAt(3.0, [&] { order.push_back(3); });
  e.Cancel(id);
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Engine, CountsFiredAndScheduled) {
  Engine e;
  for (int i = 0; i < 5; ++i) e.ScheduleAt(i, [] {});
  const auto id = e.ScheduleAt(10, [] {});
  e.Cancel(id);
  e.Run();
  EXPECT_EQ(e.events_scheduled(), 6u);
  EXPECT_EQ(e.events_fired(), 5u);
}

TEST(Engine, EmptyReflectsLiveEvents) {
  Engine e;
  EXPECT_TRUE(e.Empty());
  const auto id = e.ScheduleAt(1.0, [] {});
  EXPECT_FALSE(e.Empty());
  e.Cancel(id);
  EXPECT_TRUE(e.Empty());
}

TEST(Engine, EventMayScheduleAtCurrentTime) {
  Engine e;
  std::vector<int> order;
  e.ScheduleAt(1.0, [&] {
    order.push_back(1);
    e.ScheduleAt(1.0, [&] { order.push_back(2); });
  });
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EngineDeathTest, SchedulingInPastAborts) {
  Engine e;
  e.ScheduleAt(5.0, [] {});
  e.Run();
  EXPECT_DEATH(e.ScheduleAt(1.0, [] {}), "past");
}

TEST(EngineDeathTest, NullCallbackAborts) {
  Engine e;
  EXPECT_DEATH(e.ScheduleAt(1.0, Engine::Callback()), "null");
}

TEST(Engine, CompactsTombstonesWhenCancellationsDominate) {
  Engine e;
  std::vector<Engine::EventId> ids;
  const std::size_t n = 2000;
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(e.ScheduleAt(static_cast<double>(i), [] {}));
  }
  // Cancel 90 % without popping anything: tombstones pile up in the heap
  // until the cancelled count crosses half the live count, at which point
  // the engine must rebuild instead of carrying them to the end of the run.
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 10 != 0) cancelled += e.Cancel(ids[i]);
  }
  const std::size_t live = n - cancelled;
  EXPECT_GT(e.compactions(), 0u);
  // Post-compaction bound: live entries plus at most live/2 fresh
  // tombstones (plus the compaction floor of 64).
  EXPECT_LE(e.pending_entries(), live + live / 2 + 64);
  EXPECT_EQ(e.Run(), live);
  EXPECT_TRUE(e.Empty());
}

TEST(Engine, CompactionPreservesOrderAndPendingEvents) {
  Engine e;
  std::vector<double> fired;
  std::vector<Engine::EventId> ids;
  for (std::size_t i = 0; i < 600; ++i) {
    const double t = static_cast<double>((i * 7919) % 997);
    ids.push_back(
        e.ScheduleAt(t, [&fired, &e] { fired.push_back(e.Now()); }));
  }
  for (std::size_t i = 0; i < 600; ++i) {
    if (i % 4 != 0) e.Cancel(ids[i]);
  }
  ASSERT_GT(e.compactions(), 0u);
  e.Run();
  EXPECT_EQ(fired.size(), 150u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

// Same-instant arrivals from inside a callback land in the tail of the
// already-harvested ready run: the eight pre-scheduled events fire first in
// schedule order, then their reentrant same-time children, also in order.
TEST(Engine, SameInstantFifoWithReentrantArrivals) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    e.ScheduleAt(2.0, [&order, &e, i] {
      order.push_back(i);
      e.ScheduleAt(2.0, [&order, i] { order.push_back(100 + i); });
    });
  }
  e.Run();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[8 + i], 100 + i);
}

// A same-instant cohort interleaved with enough spread-out events to force
// several bucket doublings (growth triggers past 2x the bucket count, which
// starts at 16) must still fire in schedule order: rebuilds move entries
// between buckets but never perturb the (time, seq) serving order.
TEST(Engine, SameInstantFifoSurvivesCalendarGrowth) {
  Engine e;
  std::vector<int> cohort;
  std::uint64_t spread_fired = 0;
  for (int i = 0; i < 512; ++i) {
    e.ScheduleAt(static_cast<double>((i * 13) % 4096) + 0.5,
                 [&spread_fired] { ++spread_fired; });
    e.ScheduleAt(1000.25, [&cohort, i] { cohort.push_back(i); });
  }
  e.Run();
  EXPECT_EQ(spread_fired, 512u);
  ASSERT_EQ(cohort.size(), 512u);
  for (int i = 0; i < 512; ++i) EXPECT_EQ(cohort[i], i);
  EXPECT_EQ(e.events_fired(), 1024u);
}

// Reentrant scheduling into a day the scan has already served: an event at
// day 7 schedules a same-day follower later than Now() plus a next-day
// event; both must fire, in time order, and Now() must track them.
TEST(Engine, ReentrantScheduleIntoServedDayFires) {
  Engine e;
  std::vector<double> fired;
  e.ScheduleAt(7.25, [&] {
    e.ScheduleAt(7.75, [&] { fired.push_back(e.Now()); });
    e.ScheduleAt(8.5, [&] { fired.push_back(e.Now()); });
    fired.push_back(e.Now());
  });
  e.Run();
  EXPECT_EQ(fired, (std::vector<double>{7.25, 7.75, 8.5}));
}

// Chained ScheduleAt(Now()) reentrancy: each event schedules its successor
// at the identical instant. The chain must fully drain at one simulated
// time, in creation order, without starving the later event at t = 9.
TEST(Engine, ChainedSameInstantReentrancyDrainsBeforeAdvancing) {
  Engine e;
  std::vector<int> order;
  int depth = 0;
  e.ScheduleAt(3.0, [&] {
    struct Recur {
      Engine& e;
      std::vector<int>& order;
      int& depth;
      void operator()() {
        order.push_back(depth);
        if (++depth < 50) {
          e.ScheduleAt(e.Now(), Recur{e, order, depth});
        }
      }
    };
    Recur{e, order, depth}();
  });
  bool later_saw_chain_done = false;
  e.ScheduleAt(9.0, [&] { later_saw_chain_done = depth == 50; });
  e.Run();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
  EXPECT_TRUE(later_saw_chain_done);
}

// Cancelling a not-yet-served same-instant sibling from inside a callback
// must suppress it even though it already sits in the harvested ready run.
TEST(Engine, CancelSameInstantSiblingFromCallback) {
  Engine e;
  std::vector<int> order;
  Engine::EventId victim = 0;
  e.ScheduleAt(4.0, [&] {
    order.push_back(0);
    EXPECT_TRUE(e.Cancel(victim));
    EXPECT_FALSE(e.IsPending(victim));
  });
  victim = e.ScheduleAt(4.0, [&] { order.push_back(1); });
  e.ScheduleAt(4.0, [&] { order.push_back(2); });
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
  EXPECT_EQ(e.events_fired(), 2u);
}

// PendingIds() is a sorted exact snapshot of the live set, immune to
// tombstones still parked in the calendar.
TEST(Engine, PendingIdsIsSortedLiveSnapshot) {
  Engine e;
  std::vector<Engine::EventId> ids;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(e.ScheduleAt(static_cast<double>(i % 17), [] {}));
  }
  std::vector<Engine::EventId> expect;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i % 3 == 0) {
      e.Cancel(ids[i]);
    } else {
      expect.push_back(ids[i]);
    }
  }
  std::sort(expect.begin(), expect.end());
  const auto live = e.PendingIds();
  EXPECT_TRUE(std::is_sorted(live.begin(), live.end()));
  EXPECT_EQ(live, expect);
  for (const auto id : live) EXPECT_TRUE(e.IsPending(id));
}

// Property sweep: random schedule/cancel workloads preserve global time
// ordering and fire exactly the non-cancelled events.
class EnginePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnginePropertyTest, RandomWorkloadIsOrderedAndExact) {
  util::Rng rng(GetParam());
  Engine e;
  std::vector<Engine::EventId> ids;
  std::vector<double> fired_times;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    const double t = rng.Uniform(0.0, 100.0);
    ids.push_back(e.ScheduleAt(t, [&fired_times, &e] {
      fired_times.push_back(e.Now());
    }));
  }
  // Cancel ~25 % of them.
  std::size_t cancelled = 0;
  for (const auto id : ids) {
    if (rng.Bernoulli(0.25)) cancelled += e.Cancel(id);
  }
  e.Run();
  EXPECT_EQ(fired_times.size(), n - cancelled);
  EXPECT_TRUE(std::is_sorted(fired_times.begin(), fired_times.end()));
  EXPECT_EQ(e.events_fired(), n - cancelled);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace phoenix::sim
