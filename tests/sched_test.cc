// Unit tests for the scheduler framework and the baseline schedulers.
#include <gtest/gtest.h>

#include "cluster/builder.h"
#include "runner/experiment.h"
#include "trace/generators.h"
#include "sched/eagle.h"
#include "sched/hawk.h"
#include "sched/sparrow.h"
#include "sched/yaccd.h"
#include "sim/engine.h"

namespace phoenix::sched {
namespace {

using cluster::Attr;
using cluster::ConstraintOp;
using cluster::ConstraintSet;

/// A trace with explicitly specified jobs for timing-exact tests.
trace::Trace MakeTrace(std::vector<trace::Job> jobs, double cutoff) {
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].id = static_cast<trace::JobId>(i);
  }
  trace::Trace t("test", std::move(jobs));
  t.set_short_cutoff(cutoff);
  return t;
}

trace::Job OneJob(double submit, std::vector<double> durations,
                  ConstraintSet cs = {}, bool short_job = true) {
  trace::Job j;
  j.submit_time = submit;
  j.task_durations = std::move(durations);
  j.constraints = std::move(cs);
  j.short_job = short_job;
  return j;
}

SchedulerConfig TestConfig() {
  SchedulerConfig c;
  c.seed = 7;
  return c;
}

/// Runs a scheduler (by registry name) over a trace on a generated fleet.
metrics::SimReport RunSched(const std::string& name, const trace::Trace& t,
                       std::size_t machines, std::uint64_t seed = 7) {
  const cluster::Cluster cl =
      cluster::BuildCluster({.num_machines = machines, .seed = 3});
  runner::RunOptions o;
  o.scheduler = name;
  o.config = TestConfig();
  o.config.seed = seed;
  return runner::RunSimulation(t, cl, o);
}

// ------------------------------------------------------- timing exactness

TEST(Framework, SingleShortTaskTimingIsExact) {
  // One job, one task, one machine: probe transit (rtt) + late-binding
  // fetch (rtt) + service.
  const trace::Trace t = MakeTrace({OneJob(5.0, {10.0})}, 100.0);
  const auto report = RunSched("sparrow-c", t, 1);
  ASSERT_EQ(report.jobs.size(), 1u);
  const auto& j = report.jobs[0];
  const double rtt = TestConfig().net.one_way;
  EXPECT_NEAR(j.completion, 5.0 + 2 * rtt + 10.0, 1e-9);
  EXPECT_NEAR(j.queuing_delay, 2 * rtt, 1e-9);
  EXPECT_TRUE(j.short_class);
}

TEST(Framework, SingleLongTaskTimingIsExact) {
  // Estimated duration above cutoff: centralized early binding, one transit.
  const trace::Trace t = MakeTrace({OneJob(2.0, {500.0})}, 100.0);
  const auto report = RunSched("eagle-c", t, 4);
  ASSERT_EQ(report.jobs.size(), 1u);
  const auto& j = report.jobs[0];
  EXPECT_FALSE(j.short_class);
  EXPECT_NEAR(j.completion, 2.0 + TestConfig().net.one_way + 500.0, 1e-9);
}

TEST(Framework, TwoTasksOnOneMachineSerialize) {
  const trace::Trace t = MakeTrace({OneJob(0.0, {10.0, 10.0})}, 100.0);
  const auto report = RunSched("sparrow-c", t, 1);
  const double rtt = TestConfig().net.one_way;
  // Slot serializes. The second probe was already queued while task one ran,
  // so only its late-binding fetch (one RTT) separates the two services.
  EXPECT_GE(report.jobs[0].completion, 2 * 10.0);
  EXPECT_NEAR(report.jobs[0].completion, 2 * rtt + 10.0 + rtt + 10.0, 1e-6);
}

TEST(Framework, BusyTimeEqualsTotalWork) {
  const trace::Trace t =
      MakeTrace({OneJob(0.0, {3.0, 4.0}), OneJob(1.0, {5.0})}, 100.0);
  const auto report = RunSched("sparrow-c", t, 8);
  EXPECT_NEAR(report.total_busy_time, 12.0, 1e-9);
}

TEST(Framework, ProbeOversupplyIsCancelled) {
  // 1 task, probe ratio 2 => 2 probes; exactly one becomes the task.
  const trace::Trace t = MakeTrace({OneJob(0.0, {10.0})}, 100.0);
  const auto report = RunSched("sparrow-c", t, 8);
  EXPECT_EQ(report.counters.probes_sent, 2u);
  EXPECT_EQ(report.counters.probes_cancelled, 1u);
}

TEST(Framework, ResponseNeverBelowServiceTime) {
  const trace::Trace t = MakeTrace(
      {OneJob(0.0, {7.0}), OneJob(0.5, {3.0, 9.0}), OneJob(1.0, {2.0})}, 100.0);
  const auto report = RunSched("eagle-c", t, 4);
  EXPECT_GE(report.jobs[0].response(), 7.0);
  EXPECT_GE(report.jobs[1].response(), 9.0);
  EXPECT_GE(report.jobs[2].response(), 2.0);
}

// ------------------------------------------------------- constraints

TEST(Framework, ConstrainedTaskRunsOnSatisfyingMachineOnly) {
  // Build a 1-machine cluster; a hard constraint the machine cannot satisfy
  // triggers forced admission relaxation (tracked in the counters) so the
  // job still completes.
  ConstraintSet impossible(
      {{Attr::kNumCores, ConstraintOp::kGreater, 32, true}});
  const trace::Trace t = MakeTrace({OneJob(0.0, {5.0}, impossible)}, 100.0);
  const auto report = RunSched("eagle-c", t, 4);
  EXPECT_EQ(report.jobs.size(), 1u);
  EXPECT_EQ(report.counters.tasks_admission_rejected, 1u);
  EXPECT_TRUE(report.jobs[0].constrained);
}

TEST(Framework, SoftConstraintRelaxedWhenUnsatisfiableTogether) {
  // cores > 32 is unsatisfiable; as a soft constraint it is negotiated away
  // and the job runs with the relaxation penalty instead of being rejected.
  ConstraintSet cs({{Attr::kNumCores, ConstraintOp::kGreater, 32, false}});
  const trace::Trace t = MakeTrace({OneJob(0.0, {8.0}, cs)}, 100.0);
  const auto report = RunSched("eagle-c", t, 4);
  EXPECT_EQ(report.counters.soft_constraints_relaxed, 1u);
  EXPECT_EQ(report.counters.tasks_admission_rejected, 0u);
  // Service time carries the penalty.
  EXPECT_NEAR(report.total_busy_time, 8.0 * TestConfig().soft_relax_penalty,
              1e-9);
}

TEST(Framework, SatisfiableConstraintIsNotRelaxed) {
  ConstraintSet cs({{Attr::kArch, ConstraintOp::kEqual, 0, true}});
  const trace::Trace t = MakeTrace({OneJob(0.0, {5.0}, cs)}, 100.0);
  const auto report = RunSched("eagle-c", t, 50);
  EXPECT_EQ(report.counters.soft_constraints_relaxed, 0u);
  EXPECT_EQ(report.counters.tasks_admission_rejected, 0u);
}

// ------------------------------------------------------- queue disciplines

// Exposes the protected queue-discipline hooks for direct testing.
class EagleProbe : public EagleScheduler {
 public:
  EagleProbe(sim::Engine& e, const cluster::Cluster& c,
             const SchedulerConfig& cfg)
      : EagleScheduler(e, c, cfg) {}
  using EagleScheduler::IndexRespectingSlack;
  using EagleScheduler::SelectNextIndex;
  using EagleScheduler::SrptIndex;
};

QueueEntry Entry(double est, std::uint32_t bypass = 0) {
  QueueEntry e;
  e.kind = QueueEntry::Kind::kProbe;
  e.job = 0;
  e.est_duration = est;
  e.bypass_count = bypass;
  return e;
}

class DisciplineTest : public ::testing::Test {
 protected:
  DisciplineTest()
      : cluster_(cluster::BuildCluster({.num_machines = 4, .seed = 1})),
        sched_(engine_, cluster_, TestConfig()),
        worker_(64) {
    worker_.id = 0;
  }
  sim::Engine engine_;
  cluster::Cluster cluster_;
  EagleProbe sched_;
  WorkerState worker_;
};

TEST_F(DisciplineTest, SrptPicksShortestEstimate) {
  worker_.queue = {Entry(5.0), Entry(2.0), Entry(9.0)};
  EXPECT_EQ(sched_.SrptIndex(worker_), 1u);
  EXPECT_EQ(sched_.SelectNextIndex(worker_), 1u);
}

TEST_F(DisciplineTest, SrptBreaksTiesByArrival) {
  worker_.queue = {Entry(2.0), Entry(2.0)};
  EXPECT_EQ(sched_.SrptIndex(worker_), 0u);
}

TEST_F(DisciplineTest, SlackOverridesSrpt) {
  const auto slack =
      static_cast<std::uint32_t>(TestConfig().slack_threshold);
  worker_.queue = {Entry(9.0, slack), Entry(1.0)};
  // Entry 0 has exhausted its bypass budget: it must run next even though
  // entry 1 is shorter.
  EXPECT_EQ(sched_.SelectNextIndex(worker_), 0u);
}

TEST_F(DisciplineTest, OldestStarvedEntryWinsAmongStarved) {
  const auto slack =
      static_cast<std::uint32_t>(TestConfig().slack_threshold);
  worker_.queue = {Entry(5.0), Entry(9.0, slack), Entry(8.0, slack)};
  EXPECT_EQ(sched_.IndexRespectingSlack(worker_, 0), 1u);
}

TEST_F(DisciplineTest, SlackBelowThresholdDoesNotOverride) {
  worker_.queue = {Entry(9.0, 1), Entry(1.0)};
  EXPECT_EQ(sched_.SelectNextIndex(worker_), 1u);
}

// ------------------------------------------------------- end-to-end, all schedulers

class AllSchedulersTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllSchedulersTest, EveryJobCompletes) {
  const trace::Trace t = trace::GenerateGoogleTrace(800, 80, 0.8, 11);
  const auto report = RunSched(GetParam(), t, 80);
  EXPECT_EQ(report.jobs.size(), t.size());
  report.CheckInvariants();  // aborts on violations
  for (const auto& j : report.jobs) {
    EXPECT_GE(j.response(), 0.0);
  }
}

TEST_P(AllSchedulersTest, TaskConservation) {
  const trace::Trace t = trace::GenerateYahooTrace(600, 60, 0.75, 13);
  const auto report = RunSched(GetParam(), t, 60);
  std::size_t tasks = 0;
  for (const auto& j : report.jobs) tasks += j.num_tasks;
  std::size_t expected = 0;
  for (const auto& j : t.jobs()) expected += j.num_tasks();
  EXPECT_EQ(tasks, expected);
  // Busy time equals the sum of executed service times, which is at least
  // the raw work (relaxation penalties can only add).
  double work = 0;
  for (const auto& j : t.jobs()) work += j.total_work();
  EXPECT_GE(report.total_busy_time, work - 1e-6);
}

TEST_P(AllSchedulersTest, DeterministicForSameSeed) {
  const trace::Trace t = trace::GenerateClouderaTrace(400, 50, 0.7, 17);
  const auto a = RunSched(GetParam(), t, 50, 99);
  const auto b = RunSched(GetParam(), t, 50, 99);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].completion, b.jobs[i].completion);
    EXPECT_DOUBLE_EQ(a.jobs[i].queuing_delay, b.jobs[i].queuing_delay);
  }
  EXPECT_EQ(a.counters.probes_sent, b.counters.probes_sent);
}

TEST_P(AllSchedulersTest, UtilizationWithinBounds) {
  const trace::Trace t = trace::GenerateGoogleTrace(500, 50, 0.7, 19);
  const auto report = RunSched(GetParam(), t, 50);
  EXPECT_GT(report.Utilization(), 0.0);
  EXPECT_LE(report.Utilization(), 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Registry, AllSchedulersTest,
                         ::testing::Values("phoenix", "eagle-c", "hawk-c",
                                           "sparrow-c", "yacc-d"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

// ------------------------------------------------------- scheduler-specific

TEST(Sparrow, TreatsEverythingAsDistributed) {
  // A long job under Sparrow still goes through probes: probes_sent covers
  // long tasks too.
  const trace::Trace t = MakeTrace({OneJob(0.0, {500.0, 500.0})}, 100.0);
  const auto report = RunSched("sparrow-c", t, 8);
  EXPECT_EQ(report.counters.probes_sent, 4u);  // ratio 2 x 2 tasks
}

TEST(Eagle, LongJobsBypassProbes) {
  const trace::Trace t = MakeTrace({OneJob(0.0, {500.0, 500.0})}, 100.0);
  const auto report = RunSched("eagle-c", t, 8);
  EXPECT_EQ(report.counters.probes_sent, 0u);
}

TEST(Eagle, SrptReordersUnderContention) {
  // Many short jobs with mixed durations on a tiny cluster build real queues.
  std::vector<trace::Job> jobs;
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    jobs.push_back(OneJob(i * 0.01, {rng.Uniform(1.0, 50.0)}));
  }
  const auto report = RunSched("eagle-c", MakeTrace(std::move(jobs), 100.0), 4);
  EXPECT_GT(report.counters.tasks_reordered_srpt, 0u);
}

TEST(Hawk, StealsWorkUnderLoad) {
  std::vector<trace::Job> jobs;
  util::Rng rng(6);
  for (int i = 0; i < 300; ++i) {
    jobs.push_back(OneJob(i * 0.01, {rng.Uniform(1.0, 20.0)}));
  }
  const auto report = RunSched("hawk-c", MakeTrace(std::move(jobs), 100.0), 16);
  EXPECT_GT(report.counters.tasks_stolen, 0u);
}

TEST(YaccD, BindsEverythingEarly) {
  const trace::Trace t = MakeTrace(
      {OneJob(0.0, {5.0, 5.0}), OneJob(0.0, {500.0})}, 100.0);
  const auto report = RunSched("yacc-d", t, 8);
  EXPECT_EQ(report.counters.probes_sent, 0u);
  EXPECT_EQ(report.counters.probes_cancelled, 0u);
}

TEST(YaccD, RebalancesOverloadedQueues) {
  // Jobs whose tasks vary wildly around their estimate: early binding
  // mispredicts, queues behind the 120 s stragglers pile up, and the
  // heartbeat rebalance must migrate some of their tails.
  std::vector<trace::Job> jobs;
  for (int i = 0; i < 150; ++i) {
    jobs.push_back(OneJob(0.1 + i * 0.001, {1.0, 1.0, 1.0, 120.0}));
  }
  const auto report = RunSched("yacc-d", MakeTrace(std::move(jobs), 200.0), 16);
  EXPECT_GT(report.counters.tasks_stolen, 0u);  // migrations share the counter
}

TEST(Heartbeat, TicksAreCounted) {
  // A ~100 s workload sees ~100/9 heartbeats.
  const trace::Trace t = MakeTrace({OneJob(0.0, {100.0})}, 1000.0);
  const auto report = RunSched("eagle-c", t, 2);
  EXPECT_GE(report.counters.heartbeats, 10u);
  EXPECT_LE(report.counters.heartbeats, 14u);
}

TEST(FrameworkDeathTest, BuildReportBeforeCompletionAborts) {
  sim::Engine engine;
  const cluster::Cluster cl =
      cluster::BuildCluster({.num_machines = 2, .seed = 1});
  SparrowScheduler s(engine, cl, TestConfig());
  const trace::Trace t = MakeTrace({OneJob(0.0, {5.0})}, 100.0);
  s.SubmitTrace(t);
  EXPECT_DEATH(s.BuildReport(), "before every job completed");
}

TEST(FrameworkDeathTest, DoubleSubmitAborts) {
  sim::Engine engine;
  const cluster::Cluster cl =
      cluster::BuildCluster({.num_machines = 2, .seed = 1});
  SparrowScheduler s(engine, cl, TestConfig());
  const trace::Trace t = MakeTrace({OneJob(0.0, {5.0})}, 100.0);
  s.SubmitTrace(t);
  EXPECT_DEATH(s.SubmitTrace(t), "once");
}

}  // namespace
}  // namespace phoenix::sched
