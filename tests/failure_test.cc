// Tests for machine failure injection: tasks killed by failures are
// replayed, queues are re-dispatched, and every job still completes —
// the fault-tolerance behaviour the paper's spread constraints motivate.
#include <gtest/gtest.h>

#include "cluster/builder.h"
#include "runner/experiment.h"
#include "trace/generators.h"

namespace phoenix {
namespace {

metrics::SimReport RunWithFailures(const std::string& scheduler,
                                   const trace::Trace& t,
                                   const cluster::Cluster& cl, double mtbf,
                                   double mttr, std::uint64_t seed = 13) {
  runner::RunOptions o;
  o.scheduler = scheduler;
  o.config.seed = seed;
  o.config.machine_mtbf = mtbf;
  o.config.machine_mttr = mttr;
  return runner::RunSimulation(t, cl, o);
}

TEST(Failures, DisabledByDefault) {
  const auto cl = cluster::BuildCluster({.num_machines = 40, .seed = 13});
  const auto t = trace::GenerateGoogleTrace(500, 40, 0.7, 13);
  runner::RunOptions o;
  o.scheduler = "phoenix";
  const auto report = runner::RunSimulation(t, cl, o);
  EXPECT_EQ(report.counters.machine_failures, 0u);
  EXPECT_EQ(report.counters.tasks_rescheduled_failure, 0u);
}

class FailureSchedulerTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FailureSchedulerTest, EveryJobCompletesUnderChurn) {
  const auto cl = cluster::BuildCluster({.num_machines = 60, .seed = 17});
  const auto t = trace::GenerateGoogleTrace(1500, 60, 0.8, 17);
  const auto report = RunWithFailures(GetParam(), t, cl, /*mtbf=*/3000,
                                      /*mttr=*/200);
  EXPECT_EQ(report.jobs.size(), t.size());
  EXPECT_GT(report.counters.machine_failures, 0u);
  report.CheckInvariants();
}

TEST_P(FailureSchedulerTest, ChurnOnlySlowsThingsDown) {
  const auto cl = cluster::BuildCluster({.num_machines = 60, .seed = 19});
  const auto t = trace::GenerateGoogleTrace(1000, 60, 0.7, 19);
  runner::RunOptions clean_opts;
  clean_opts.scheduler = GetParam();
  clean_opts.config.seed = 19;
  const auto clean = runner::RunSimulation(t, cl, clean_opts);
  const auto churned = RunWithFailures(GetParam(), t, cl, 2000, 300, 19);
  // Replayed work means at least as much total service time.
  EXPECT_GE(churned.total_busy_time, clean.total_busy_time - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, FailureSchedulerTest,
                         ::testing::Values("phoenix", "eagle-c", "hawk-c",
                                           "sparrow-c", "yacc-d", "central-c"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

TEST(Failures, TaskKilledMidRunIsReplayed) {
  // One machine, one long task; MTBF far below the task duration guarantees
  // at least one mid-run kill, yet the job must finish.
  const auto cl = cluster::BuildCluster({.num_machines = 1, .seed = 23});
  trace::Job job;
  job.id = 0;
  job.submit_time = 0;
  job.task_durations = {50.0};
  trace::Trace t("failover", {job});
  t.set_short_cutoff(100.0);
  const auto report = RunWithFailures("sparrow-c", t, cl, /*mtbf=*/20,
                                      /*mttr=*/5);
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_GT(report.counters.machine_failures, 0u);
  EXPECT_GT(report.counters.tasks_rescheduled_failure, 0u);
  // The job took at least one aborted attempt plus the full run.
  EXPECT_GT(report.jobs[0].response(), 50.0);
}

TEST(Failures, BusyTimeStaysConsistent) {
  // Utilization accounting must not leak when unfinished service is
  // refunded on failure: busy time stays within [work, work * many-retries]
  // and utilization stays <= 1 (checked by CheckInvariants inside).
  const auto cl = cluster::BuildCluster({.num_machines = 30, .seed = 29});
  const auto t = trace::GenerateYahooTrace(600, 30, 0.7, 29);
  const auto report = RunWithFailures("eagle-c", t, cl, 1500, 200, 29);
  double work = 0;
  for (const auto& j : t.jobs()) work += j.total_work();
  EXPECT_GE(report.total_busy_time, work * 0.9);
  EXPECT_LE(report.Utilization(), 1.0 + 1e-9);
}

TEST(Failures, RescheduleCounterTracksChurnIntensity) {
  const auto cl = cluster::BuildCluster({.num_machines = 40, .seed = 31});
  const auto t = trace::GenerateGoogleTrace(800, 40, 0.75, 31);
  const auto light = RunWithFailures("phoenix", t, cl, 20000, 100, 31);
  const auto heavy = RunWithFailures("phoenix", t, cl, 1000, 100, 31);
  EXPECT_GT(heavy.counters.machine_failures,
            light.counters.machine_failures);
  EXPECT_GT(heavy.counters.tasks_rescheduled_failure,
            light.counters.tasks_rescheduled_failure);
}

TEST(Failures, SpreadJobsSurviveRackFailure) {
  // Spread placement plus failures: jobs complete and the spread preference
  // still yields multi-rack placements.
  const auto cl = cluster::BuildCluster(
      {.num_machines = 60, .seed = 37, .machines_per_rack = 10});
  auto o = trace::GoogleProfile();
  o.num_jobs = 800;
  o.num_workers = 60;
  o.seed = 37;
  o.spread_fraction = 0.5;
  const auto t = trace::GenerateTrace("g", o);
  const auto report = RunWithFailures("phoenix", t, cl, 3000, 250, 37);
  EXPECT_EQ(report.jobs.size(), t.size());
  // Aggregate check: most multi-task spread jobs still span racks despite
  // churn (single-rack constraint pools are the legitimate exceptions).
  std::size_t spread_multi = 0, spread_ok = 0;
  for (const auto& j : report.jobs) {
    if (j.placement == trace::PlacementPref::kSpread && j.num_tasks > 1) {
      ++spread_multi;
      spread_ok += j.racks_used >= 2;
    }
  }
  ASSERT_GT(spread_multi, 0u);
  EXPECT_GT(static_cast<double>(spread_ok) / spread_multi, 0.75);
}

}  // namespace
}  // namespace phoenix
