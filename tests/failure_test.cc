// Tests for machine failure injection: tasks killed by failures are
// replayed, queues are re-dispatched, and every job still completes —
// the fault-tolerance behaviour the paper's spread constraints motivate.
#include <gtest/gtest.h>

#include "cluster/builder.h"
#include "core/phoenix.h"
#include "runner/experiment.h"
#include "sched/central.h"
#include "sched/eagle.h"
#include "sim/engine.h"
#include "trace/generators.h"

namespace phoenix {
namespace {

metrics::SimReport RunWithFailures(const std::string& scheduler,
                                   const trace::Trace& t,
                                   const cluster::Cluster& cl, double mtbf,
                                   double mttr, std::uint64_t seed = 13) {
  runner::RunOptions o;
  o.scheduler = scheduler;
  o.config.seed = seed;
  o.config.machine_mtbf = mtbf;
  o.config.machine_mttr = mttr;
  return runner::RunSimulation(t, cl, o);
}

TEST(Failures, DisabledByDefault) {
  const auto cl = cluster::BuildCluster({.num_machines = 40, .seed = 13});
  const auto t = trace::GenerateGoogleTrace(500, 40, 0.7, 13);
  runner::RunOptions o;
  o.scheduler = "phoenix";
  const auto report = runner::RunSimulation(t, cl, o);
  EXPECT_EQ(report.counters.machine_failures, 0u);
  EXPECT_EQ(report.counters.tasks_rescheduled_failure, 0u);
}

class FailureSchedulerTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FailureSchedulerTest, EveryJobCompletesUnderChurn) {
  const auto cl = cluster::BuildCluster({.num_machines = 60, .seed = 17});
  const auto t = trace::GenerateGoogleTrace(1500, 60, 0.8, 17);
  const auto report = RunWithFailures(GetParam(), t, cl, /*mtbf=*/3000,
                                      /*mttr=*/200);
  EXPECT_EQ(report.jobs.size(), t.size());
  EXPECT_GT(report.counters.machine_failures, 0u);
  report.CheckInvariants();
}

TEST_P(FailureSchedulerTest, ChurnOnlySlowsThingsDown) {
  const auto cl = cluster::BuildCluster({.num_machines = 60, .seed = 19});
  const auto t = trace::GenerateGoogleTrace(1000, 60, 0.7, 19);
  runner::RunOptions clean_opts;
  clean_opts.scheduler = GetParam();
  clean_opts.config.seed = 19;
  const auto clean = runner::RunSimulation(t, cl, clean_opts);
  const auto churned = RunWithFailures(GetParam(), t, cl, 2000, 300, 19);
  // Replayed work means at least as much total service time.
  EXPECT_GE(churned.total_busy_time, clean.total_busy_time - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, FailureSchedulerTest,
                         ::testing::Values("phoenix", "eagle-c", "hawk-c",
                                           "sparrow-c", "yacc-d", "central-c"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

TEST(Failures, TaskKilledMidRunIsReplayed) {
  // One machine, one long task; MTBF far below the task duration guarantees
  // at least one mid-run kill, yet the job must finish.
  const auto cl = cluster::BuildCluster({.num_machines = 1, .seed = 23});
  trace::Job job;
  job.id = 0;
  job.submit_time = 0;
  job.task_durations = {50.0};
  trace::Trace t("failover", {job});
  t.set_short_cutoff(100.0);
  const auto report = RunWithFailures("sparrow-c", t, cl, /*mtbf=*/20,
                                      /*mttr=*/5);
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_GT(report.counters.machine_failures, 0u);
  EXPECT_GT(report.counters.tasks_rescheduled_failure, 0u);
  // The job took at least one aborted attempt plus the full run.
  EXPECT_GT(report.jobs[0].response(), 50.0);
}

TEST(Failures, BusyTimeStaysConsistent) {
  // Utilization accounting must not leak when unfinished service is
  // refunded on failure: busy time stays within [work, work * many-retries]
  // and utilization stays <= 1 (checked by CheckInvariants inside).
  const auto cl = cluster::BuildCluster({.num_machines = 30, .seed = 29});
  const auto t = trace::GenerateYahooTrace(600, 30, 0.7, 29);
  const auto report = RunWithFailures("eagle-c", t, cl, 1500, 200, 29);
  double work = 0;
  for (const auto& j : t.jobs()) work += j.total_work();
  EXPECT_GE(report.total_busy_time, work * 0.9);
  EXPECT_LE(report.Utilization(), 1.0 + 1e-9);
}

TEST(Failures, RescheduleCounterTracksChurnIntensity) {
  const auto cl = cluster::BuildCluster({.num_machines = 40, .seed = 31});
  const auto t = trace::GenerateGoogleTrace(800, 40, 0.75, 31);
  const auto light = RunWithFailures("phoenix", t, cl, 20000, 100, 31);
  const auto heavy = RunWithFailures("phoenix", t, cl, 1000, 100, 31);
  EXPECT_GT(heavy.counters.machine_failures,
            light.counters.machine_failures);
  EXPECT_GT(heavy.counters.tasks_rescheduled_failure,
            light.counters.tasks_rescheduled_failure);
}

TEST(Failures, SpreadJobsSurviveRackFailure) {
  // Spread placement plus failures: jobs complete and the spread preference
  // still yields multi-rack placements.
  const auto cl = cluster::BuildCluster(
      {.num_machines = 60, .seed = 37, .machines_per_rack = 10});
  auto o = trace::GoogleProfile();
  o.num_jobs = 800;
  o.num_workers = 60;
  o.seed = 37;
  o.spread_fraction = 0.5;
  const auto t = trace::GenerateTrace("g", o);
  const auto report = RunWithFailures("phoenix", t, cl, 3000, 250, 37);
  EXPECT_EQ(report.jobs.size(), t.size());
  // Aggregate check: most multi-task spread jobs still span racks despite
  // churn (single-rack constraint pools are the legitimate exceptions).
  std::size_t spread_multi = 0, spread_ok = 0;
  for (const auto& j : report.jobs) {
    if (j.placement == trace::PlacementPref::kSpread && j.num_tasks > 1) {
      ++spread_multi;
      spread_ok += j.racks_used >= 2;
    }
  }
  ASSERT_GT(spread_multi, 0u);
  EXPECT_GT(static_cast<double>(spread_ok) / spread_multi, 0.75);
}

// ---------------------------------------------------------------- white-box
// Deterministic failure-path regressions, driven through a subclass that
// exposes the protected framework internals.

template <typename Scheduler>
class WhiteBox : public Scheduler {
 public:
  using Scheduler::Scheduler;
  using Scheduler::AllJobsDone;
  using Scheduler::RemoveQueueAt;
  using Scheduler::counters_view;
  using Scheduler::runtime;
  using Scheduler::worker;
};

trace::Trace TwoTaskShortJob(const char* name) {
  trace::Job job;
  job.id = 0;
  job.submit_time = 0;
  job.task_durations = {5.0, 5.0};
  trace::Trace t(name, {job});
  t.set_short_cutoff(100.0);
  return t;
}

// Steps the single-worker scenario until worker 0 holds its slot for a
// sticky-batch fetch (busy, no running task, no probe resolving).
template <typename Scheduler>
bool StepUntilStickyFetch(sim::Engine& engine, WhiteBox<Scheduler>& sched) {
  for (int i = 0; i < 10000; ++i) {
    if (sched.worker(0).fetching_job != trace::kInvalidJob) return true;
    if (!engine.Step()) return false;  // drained before any sticky fetch
  }
  return false;
}

TEST(Failures, MachineFailingMidStickyFetchRedispatchesTheJob) {
  // Eagle finishes a task of a partially-placed job and holds the slot one
  // RTT to fetch the next task directly (sticky batch probing). A failure
  // inside that window cancels the fetch; the fix re-covers the fetched job
  // directly instead of relying on whatever sibling probes happen to
  // survive. The dedicated counter proves the direct path fired.
  const auto cl = cluster::BuildCluster({.num_machines = 1, .seed = 41});
  sim::Engine engine;
  sched::SchedulerConfig cfg;
  cfg.probe_ratio = 1;
  WhiteBox<sched::EagleScheduler> sched(engine, cl, cfg);
  const auto t = TwoTaskShortJob("sticky-failover");
  sched.SubmitTrace(t);

  ASSERT_TRUE(StepUntilStickyFetch(engine, sched));
  sched.InjectFailure(0);
  EXPECT_EQ(sched.counters_view().sticky_fetch_redispatches, 1u);
  sched.InjectRepair(0);
  engine.Run();
  EXPECT_TRUE(sched.AllJobsDone());
  sched.BuildReport().CheckInvariants();
}

TEST(Failures, StickyFetchSurvivesFailureWithoutLeftoverProbes) {
  // Adversarial variant: strip the leftover probe from the queue before the
  // failure, so nothing but the fetch itself covers the job's last task.
  // With the fetching_job redispatch reverted, the fetch event dies with
  // the machine, no probe remains, and the job strands forever (AllJobsDone
  // stays false when the bounded run below times out).
  const auto cl = cluster::BuildCluster({.num_machines = 1, .seed = 41});
  sim::Engine engine;
  sched::SchedulerConfig cfg;
  cfg.probe_ratio = 1;
  WhiteBox<sched::EagleScheduler> sched(engine, cl, cfg);
  const auto t = TwoTaskShortJob("sticky-strand");
  sched.SubmitTrace(t);

  ASSERT_TRUE(StepUntilStickyFetch(engine, sched));
  auto& w = sched.worker(0);
  while (!w.queue.empty()) {
    const sched::QueueEntry e = sched.RemoveQueueAt(w, w.queue.size() - 1);
    ASSERT_EQ(e.kind, sched::QueueEntry::Kind::kProbe);
    ASSERT_GT(sched.runtime(e.job).outstanding_probes, 0u);
    --sched.runtime(e.job).outstanding_probes;
  }
  sched.InjectFailure(0);
  sched.InjectRepair(0);
  engine.Run(/*until=*/20000.0);
  EXPECT_TRUE(sched.AllJobsDone());
}

TEST(Failures, ProbeBouncesRepeatedlyWhileDestinationStaysDown) {
  // The only satisfying machine fails before the probe lands and stays down
  // across several bounce cycles: each delivery finds the machine dead,
  // bounces the probe back, and redispatch re-sends it after the fabric's
  // bounce backoff (1 s). The probe must keep cycling — not strand after
  // the first bounce — and the job completes once the machine repairs.
  const auto cl = cluster::BuildCluster({.num_machines = 1, .seed = 59});
  sim::Engine engine;
  sched::SchedulerConfig cfg;
  cfg.probe_ratio = 1;
  WhiteBox<sched::EagleScheduler> sched(engine, cl, cfg);
  trace::Job job;
  job.id = 0;
  job.submit_time = 0;
  job.task_durations = {5.0};
  trace::Trace t("multi-bounce", {job});
  t.set_short_cutoff(100.0);
  sched.SubmitTrace(t);

  sched.InjectFailure(0);  // down before the first probe delivery
  engine.Run(/*until=*/3.9);  // ~3 bounce-backoff cycles
  EXPECT_GE(sched.counters_view().probes_bounced, 3u);
  EXPECT_FALSE(sched.AllJobsDone());

  sched.InjectRepair(0);
  engine.Run();
  EXPECT_TRUE(sched.AllJobsDone());
  sched.BuildReport().CheckInvariants();
}

TEST(Failures, CentralizedPlacementFallsBackOffDeadCandidates) {
  // Every power-of-d candidate is down when the job arrives: the placement
  // must fall back to a fresh satisfying draw (counted) rather than binding
  // the first dead candidate unconditionally.
  const auto cl = cluster::BuildCluster({.num_machines = 8, .seed = 43});
  sim::Engine engine;
  WhiteBox<sched::CentralScheduler> sched(engine, cl,
                                          sched::SchedulerConfig{});
  trace::Job job;
  job.id = 0;
  job.submit_time = 1.0;
  job.task_durations = {50.0, 50.0, 50.0, 50.0};
  trace::Trace t("dead-pool", {job});
  t.set_short_cutoff(10.0);
  sched.SubmitTrace(t);

  for (cluster::MachineId m = 0; m < 8; ++m) sched.InjectFailure(m);
  engine.Run(/*until=*/3.0);  // the arrival fires with the whole fleet down
  EXPECT_GE(sched.counters_view().placement_dead_fallbacks, 4u);

  for (cluster::MachineId m = 0; m < 8; ++m) sched.InjectRepair(m);
  engine.Run();
  EXPECT_TRUE(sched.AllJobsDone());
  sched.BuildReport().CheckInvariants();
}

TEST(Failures, RepairResetsStaleCrvState) {
  // A repaired machine must not come back with the wait estimate / CRV mark
  // it had when it died: Phoenix would keep steering probes by a snapshot of
  // a queue that no longer exists (the queue is drained on failure).
  const auto cl = cluster::BuildCluster({.num_machines = 2, .seed = 47});
  sim::Engine engine;
  WhiteBox<core::PhoenixScheduler> sched(engine, cl,
                                         sched::SchedulerConfig{});
  auto& w = sched.worker(0);
  w.last_wait_estimate = 42.0;
  w.crv_marked = true;
  sched.InjectFailure(0);
  EXPECT_TRUE(w.failed);
  sched.InjectRepair(0);
  EXPECT_FALSE(w.failed);
  EXPECT_EQ(w.last_wait_estimate, 0.0);
  EXPECT_FALSE(w.crv_marked);
}

TEST(Failures, InjectionIsIdempotent) {
  // Double-failure and double-repair are no-ops, and repairing an up
  // machine never schedules stochastic churn (mtbf is 0 here).
  const auto cl = cluster::BuildCluster({.num_machines = 2, .seed = 53});
  sim::Engine engine;
  WhiteBox<sched::EagleScheduler> sched(engine, cl, sched::SchedulerConfig{});
  sched.InjectRepair(0);  // up: no-op
  EXPECT_FALSE(sched.worker(0).failed);
  sched.InjectFailure(0);
  sched.InjectFailure(0);
  EXPECT_EQ(sched.counters_view().machine_failures, 1u);
  sched.InjectRepair(0);
  EXPECT_FALSE(sched.worker(0).failed);
  EXPECT_TRUE(engine.Empty());  // no auto-repair / refail events linger
}

}  // namespace
}  // namespace phoenix
