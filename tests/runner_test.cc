// Unit tests for the experiment runner and scheduler registry.
#include <gtest/gtest.h>

#include "cluster/builder.h"
#include "runner/experiment.h"
#include "runner/registry.h"
#include "trace/generators.h"

namespace phoenix::runner {
namespace {

TEST(Registry, ListsAllSchedulers) {
  const auto& names = SchedulerNames();
  EXPECT_EQ(names.size(), 6u);
  EXPECT_NE(std::find(names.begin(), names.end(), "phoenix"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "central-c"), names.end());
}

TEST(Registry, InstantiatesEveryListedScheduler) {
  sim::Engine engine;
  const cluster::Cluster cl =
      cluster::BuildCluster({.num_machines = 4, .seed = 1});
  sched::SchedulerConfig config;
  for (const auto& name : SchedulerNames()) {
    auto s = MakeScheduler(name, engine, cl, config);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->name(), name);
  }
}

TEST(RegistryDeathTest, UnknownNameAborts) {
  sim::Engine engine;
  const cluster::Cluster cl =
      cluster::BuildCluster({.num_machines = 4, .seed = 1});
  EXPECT_DEATH(MakeScheduler("borg", engine, cl, sched::SchedulerConfig{}),
               "unknown scheduler");
}

TEST(RunSimulation, ProducesCompleteReport) {
  const cluster::Cluster cl =
      cluster::BuildCluster({.num_machines = 40, .seed = 2});
  const auto t = trace::GenerateGoogleTrace(300, 40, 0.7, 2);
  RunOptions o;
  o.scheduler = "phoenix";
  const auto report = RunSimulation(t, cl, o);
  EXPECT_EQ(report.jobs.size(), 300u);
  EXPECT_EQ(report.scheduler_name, "phoenix");
  EXPECT_EQ(report.trace_name, "google");
  EXPECT_EQ(report.num_workers, 40u);
  EXPECT_GT(report.makespan, 0.0);
}

TEST(RepeatedRuns, RunsRequestedSeedCount) {
  const cluster::Cluster cl =
      cluster::BuildCluster({.num_machines = 30, .seed = 3});
  const auto t = trace::GenerateYahooTrace(200, 30, 0.7, 3);
  RunOptions o;
  o.scheduler = "eagle-c";
  const RepeatedRuns runs(t, cl, o, 3);
  EXPECT_EQ(runs.reports().size(), 3u);
}

TEST(RepeatedRuns, MeanPercentileIsWithinRunEnvelope) {
  const cluster::Cluster cl =
      cluster::BuildCluster({.num_machines = 30, .seed = 4});
  const auto t = trace::GenerateGoogleTrace(400, 30, 0.8, 4);
  RunOptions o;
  o.scheduler = "phoenix";
  const RepeatedRuns runs(t, cl, o, 3);
  const double mean = runs.MeanResponsePercentile(
      99, metrics::ClassFilter::kShort, metrics::ConstraintFilter::kAll);
  double lo = 1e300, hi = -1e300;
  for (const auto& r : runs.reports()) {
    auto v = r.ResponseTimes(metrics::ClassFilter::kShort,
                             metrics::ConstraintFilter::kAll);
    const double p = metrics::Percentile(v, 99);
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  EXPECT_GE(mean, lo - 1e-9);
  EXPECT_LE(mean, hi + 1e-9);
}

TEST(RepeatedRuns, DifferentSeedsActuallyVary) {
  const cluster::Cluster cl =
      cluster::BuildCluster({.num_machines = 30, .seed = 5});
  const auto t = trace::GenerateGoogleTrace(400, 30, 0.8, 5);
  RunOptions o;
  o.scheduler = "phoenix";
  const RepeatedRuns runs(t, cl, o, 2);
  // The scheduler's stochastic probe targets should differ between seeds.
  EXPECT_NE(runs.reports()[0].counters.probes_cancelled,
            runs.reports()[1].counters.probes_cancelled);
}

TEST(RepeatedRuns, UtilizationAveraged) {
  const cluster::Cluster cl =
      cluster::BuildCluster({.num_machines = 30, .seed = 6});
  const auto t = trace::GenerateClouderaTrace(200, 30, 0.6, 6);
  RunOptions o;
  o.scheduler = "hawk-c";
  const RepeatedRuns runs(t, cl, o, 2);
  EXPECT_GT(runs.MeanUtilization(), 0.0);
  EXPECT_LE(runs.MeanUtilization(), 1.0);
}

}  // namespace
}  // namespace phoenix::runner
