// Unit tests for the cluster model: attributes, constraints, matching index,
// sampling and fleet generation.
#include <set>

#include <gtest/gtest.h>

#include "cluster/builder.h"
#include "cluster/cluster.h"

namespace phoenix::cluster {
namespace {

Machine MakeMachine(MachineId id) {
  Machine m;
  m.id = id;
  m.Set(Attr::kArch, 0);
  m.Set(Attr::kNumCores, 8);
  m.Set(Attr::kEthernetSpeed, 10);
  m.Set(Attr::kMaxDisks, 4);
  m.Set(Attr::kMinDisks, 4);
  m.Set(Attr::kKernelVersion, 3);
  m.Set(Attr::kPlatformFamily, 1);
  m.Set(Attr::kCpuClock, 28);
  m.Set(Attr::kMinMemory, 64);
  return m;
}

// ---------------------------------------------------------------- Attributes

TEST(Attributes, CatalogIsConsistent) {
  const auto& catalog = AttrCatalog();
  for (std::size_t a = 0; a < kNumAttrs; ++a) {
    EXPECT_EQ(static_cast<std::size_t>(catalog[a].attr), a);
    EXPECT_GE(catalog[a].num_values, 2u);
    EXPECT_LE(catalog[a].num_values, 8u);
    double total = 0;
    for (std::size_t v = 0; v < catalog[a].num_values; ++v) {
      EXPECT_GT(catalog[a].machine_weights[v], 0.0);
      total += catalog[a].machine_weights[v];
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Attributes, DemandSharesMatchTableTwoOrdering) {
  const auto& shares = AttrDemandShares();
  // Table II: ISA dominates (80.64 %), then cores (18.28), then disks (8.57).
  EXPECT_GT(shares[static_cast<std::size_t>(Attr::kArch)],
            shares[static_cast<std::size_t>(Attr::kNumCores)]);
  EXPECT_GT(shares[static_cast<std::size_t>(Attr::kNumCores)],
            shares[static_cast<std::size_t>(Attr::kMaxDisks)]);
  EXPECT_DOUBLE_EQ(shares[static_cast<std::size_t>(Attr::kArch)], 80.64);
}

TEST(Attributes, CrvDimMappingCoversAllDims) {
  std::set<CrvDim> seen;
  for (std::size_t a = 0; a < kNumAttrs; ++a) {
    seen.insert(AttrToCrvDim(static_cast<Attr>(a)));
  }
  EXPECT_EQ(seen.size(), kNumCrvDims);
}

TEST(Attributes, CrvDimMappingMatchesPaperVector) {
  EXPECT_EQ(AttrToCrvDim(Attr::kArch), CrvDim::kCpu);
  EXPECT_EQ(AttrToCrvDim(Attr::kNumCores), CrvDim::kCpu);
  EXPECT_EQ(AttrToCrvDim(Attr::kMinMemory), CrvDim::kMem);
  EXPECT_EQ(AttrToCrvDim(Attr::kMaxDisks), CrvDim::kDisk);
  EXPECT_EQ(AttrToCrvDim(Attr::kMinDisks), CrvDim::kDisk);
  EXPECT_EQ(AttrToCrvDim(Attr::kKernelVersion), CrvDim::kOs);
  EXPECT_EQ(AttrToCrvDim(Attr::kPlatformFamily), CrvDim::kOs);
  EXPECT_EQ(AttrToCrvDim(Attr::kCpuClock), CrvDim::kClock);
  EXPECT_EQ(AttrToCrvDim(Attr::kEthernetSpeed), CrvDim::kNet);
}

TEST(Attributes, NamesAreDistinct) {
  std::set<std::string_view> names;
  for (std::size_t a = 0; a < kNumAttrs; ++a) {
    names.insert(AttrName(static_cast<Attr>(a)));
  }
  EXPECT_EQ(names.size(), kNumAttrs);
}

// ---------------------------------------------------------------- Constraint

TEST(Constraint, OperatorSemantics) {
  Constraint lt{Attr::kNumCores, ConstraintOp::kLess, 8, true};
  EXPECT_TRUE(lt.Satisfies(4));
  EXPECT_FALSE(lt.Satisfies(8));
  Constraint gt{Attr::kNumCores, ConstraintOp::kGreater, 8, true};
  EXPECT_TRUE(gt.Satisfies(16));
  EXPECT_FALSE(gt.Satisfies(8));
  Constraint eq{Attr::kNumCores, ConstraintOp::kEqual, 8, true};
  EXPECT_TRUE(eq.Satisfies(8));
  EXPECT_FALSE(eq.Satisfies(16));
}

TEST(Constraint, ToStringIsReadable) {
  Constraint c{Attr::kKernelVersion, ConstraintOp::kGreater, 2, false};
  EXPECT_EQ(c.ToString(), "Kernel Version > 2 (soft)");
}

TEST(ConstraintSet, AddAndQuery) {
  ConstraintSet cs;
  EXPECT_TRUE(cs.empty());
  cs.Add({Attr::kArch, ConstraintOp::kEqual, 0, true});
  cs.Add({Attr::kNumCores, ConstraintOp::kGreater, 4, false});
  EXPECT_EQ(cs.size(), 2u);
  EXPECT_TRUE(cs.HasHard());
  EXPECT_TRUE(cs.HasSoft());
}

TEST(ConstraintSet, HardOnlyDropsSoft) {
  ConstraintSet cs({{Attr::kArch, ConstraintOp::kEqual, 0, true},
                    {Attr::kNumCores, ConstraintOp::kGreater, 4, false}});
  const ConstraintSet hard = cs.HardOnly();
  ASSERT_EQ(hard.size(), 1u);
  EXPECT_EQ(hard[0].attr, Attr::kArch);
}

TEST(ConstraintSet, WithoutConstraintRemovesByIndex) {
  ConstraintSet cs({{Attr::kArch, ConstraintOp::kEqual, 0, true},
                    {Attr::kNumCores, ConstraintOp::kGreater, 4, false}});
  const ConstraintSet rest = cs.WithoutConstraint(0);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].attr, Attr::kNumCores);
}

TEST(ConstraintSetDeathTest, DuplicateAttributeAborts) {
  ConstraintSet cs;
  cs.Add({Attr::kArch, ConstraintOp::kEqual, 0, true});
  EXPECT_DEATH(cs.Add({Attr::kArch, ConstraintOp::kEqual, 1, true}),
               "duplicate");
}

TEST(ConstraintSetDeathTest, TooManyConstraintsAborts) {
  ConstraintSet cs;
  for (std::size_t a = 0; a < kMaxConstraintsPerTask; ++a) {
    cs.Add({static_cast<Attr>(a), ConstraintOp::kEqual, 1, true});
  }
  EXPECT_DEATH(
      cs.Add({static_cast<Attr>(kMaxConstraintsPerTask), ConstraintOp::kEqual,
              1, true}),
      "at most 6");
}

// ---------------------------------------------------------------- Machine

TEST(Machine, SatisfiesSingleAndSet) {
  const Machine m = MakeMachine(0);
  EXPECT_TRUE(m.Satisfies(Constraint{Attr::kArch, ConstraintOp::kEqual, 0, true}));
  EXPECT_FALSE(m.Satisfies(Constraint{Attr::kArch, ConstraintOp::kEqual, 1, true}));
  ConstraintSet cs({{Attr::kNumCores, ConstraintOp::kGreater, 4, true},
                    {Attr::kMinMemory, ConstraintOp::kGreater, 32, true}});
  EXPECT_TRUE(m.Satisfies(cs));
  cs.Add({Attr::kEthernetSpeed, ConstraintOp::kGreater, 10, true});
  EXPECT_FALSE(m.Satisfies(cs));
}

TEST(Machine, EmptySetAlwaysSatisfied) {
  EXPECT_TRUE(MakeMachine(0).Satisfies(ConstraintSet()));
}

// ---------------------------------------------------------------- Cluster

class ClusterIndexTest : public ::testing::Test {
 protected:
  ClusterIndexTest() : cluster_(BuildFleet({.num_machines = 500, .seed = 7})) {}
  Cluster cluster_;
};

TEST_F(ClusterIndexTest, PredicateIndexMatchesBruteForce) {
  for (const Constraint c :
       {Constraint{Attr::kArch, ConstraintOp::kEqual, 0, true},
        Constraint{Attr::kNumCores, ConstraintOp::kGreater, 8, true},
        Constraint{Attr::kCpuClock, ConstraintOp::kLess, 28, true},
        Constraint{Attr::kMinMemory, ConstraintOp::kGreater, 64, true}}) {
    const util::Bitset& bits = cluster_.Satisfying(c);
    std::size_t brute = 0;
    for (const Machine& m : cluster_.machines()) {
      const bool sat = m.Satisfies(c);
      brute += sat;
      EXPECT_EQ(bits.Test(m.id), sat);
    }
    EXPECT_EQ(bits.Count(), brute);
  }
}

TEST_F(ClusterIndexTest, SetIndexIsIntersection) {
  ConstraintSet cs({{Attr::kArch, ConstraintOp::kEqual, 0, true},
                    {Attr::kNumCores, ConstraintOp::kGreater, 4, true}});
  const util::Bitset& bits = cluster_.Satisfying(cs);
  for (const Machine& m : cluster_.machines()) {
    EXPECT_EQ(bits.Test(m.id), m.Satisfies(cs));
  }
}

TEST_F(ClusterIndexTest, EmptyConstraintSetMatchesEverything) {
  EXPECT_EQ(cluster_.CountSatisfying(ConstraintSet()), cluster_.size());
}

TEST_F(ClusterIndexTest, MemoizationReturnsSameObject) {
  ConstraintSet cs({{Attr::kArch, ConstraintOp::kEqual, 0, true}});
  const util::Bitset* first = &cluster_.Satisfying(cs);
  const util::Bitset* second = &cluster_.Satisfying(cs);
  EXPECT_EQ(first, second);
}

TEST_F(ClusterIndexTest, MemoizationIsOrderInsensitive) {
  ConstraintSet ab({{Attr::kArch, ConstraintOp::kEqual, 0, true},
                    {Attr::kNumCores, ConstraintOp::kGreater, 4, true}});
  ConstraintSet ba({{Attr::kNumCores, ConstraintOp::kGreater, 4, true},
                    {Attr::kArch, ConstraintOp::kEqual, 0, true}});
  EXPECT_EQ(&cluster_.Satisfying(ab), &cluster_.Satisfying(ba));
}

TEST_F(ClusterIndexTest, UnsatisfiablePredicateYieldsEmptyPool) {
  // Domain max for cores is 32; "> 32" matches nothing.
  ConstraintSet cs({{Attr::kNumCores, ConstraintOp::kGreater, 32, true}});
  EXPECT_EQ(cluster_.CountSatisfying(cs), 0u);
  util::Rng rng(1);
  EXPECT_EQ(cluster_.SampleSatisfying(cs, rng), kInvalidMachine);
  EXPECT_TRUE(cluster_.SampleSatisfying(cs, 5, rng).empty());
  EXPECT_TRUE(cluster_.SampleDistinctSatisfying(cs, 5, rng).empty());
}

TEST_F(ClusterIndexTest, SampleSatisfyingReturnsMatchingMachines) {
  ConstraintSet cs({{Attr::kArch, ConstraintOp::kEqual, 1, true}});
  util::Rng rng(2);
  for (const auto id : cluster_.SampleSatisfying(cs, 100, rng)) {
    EXPECT_TRUE(cluster_.machine(id).Satisfies(cs));
  }
}

TEST_F(ClusterIndexTest, SampleDistinctHasNoDuplicates) {
  ConstraintSet cs({{Attr::kArch, ConstraintOp::kEqual, 0, true}});
  util::Rng rng(3);
  const auto ids = cluster_.SampleDistinctSatisfying(cs, 50, rng);
  EXPECT_EQ(ids.size(), 50u);
  std::set<MachineId> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), ids.size());
  for (const auto id : ids) EXPECT_TRUE(cluster_.machine(id).Satisfies(cs));
}

TEST_F(ClusterIndexTest, SampleDistinctReturnsWholePoolWhenSmall) {
  ConstraintSet cs({{Attr::kEthernetSpeed, ConstraintOp::kGreater, 10, true}});
  const std::size_t pool = cluster_.CountSatisfying(cs);
  ASSERT_GT(pool, 0u);
  util::Rng rng(4);
  const auto ids = cluster_.SampleDistinctSatisfying(cs, pool + 100, rng);
  EXPECT_EQ(ids.size(), pool);
}

TEST(ClusterDeathTest, EmptyFleetAborts) {
  EXPECT_DEATH(Cluster(std::vector<Machine>{}), "at least one machine");
}

TEST(ClusterDeathTest, NonDenseIdsAbort) {
  std::vector<Machine> ms = {MakeMachine(0), MakeMachine(5)};
  EXPECT_DEATH(Cluster(std::move(ms)), "dense");
}

// ---------------------------------------------------------------- Builder

TEST(Builder, DeterministicForSeed) {
  const auto a = BuildFleet({.num_machines = 100, .seed = 9});
  const auto b = BuildFleet({.num_machines = 100, .seed = 9});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].attrs, b[i].attrs);
}

TEST(Builder, DifferentSeedsDiffer) {
  const auto a = BuildFleet({.num_machines = 100, .seed = 1});
  const auto b = BuildFleet({.num_machines = 100, .seed = 2});
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) same += a[i].attrs == b[i].attrs;
  EXPECT_LT(same, a.size());
}

TEST(Builder, ZeroHeterogeneityIsUniformFleet) {
  const auto fleet =
      BuildFleet({.num_machines = 50, .seed = 3, .heterogeneity = 0.0});
  for (const auto& m : fleet) EXPECT_EQ(m.attrs, fleet[0].attrs);
}

TEST(Builder, ValuesComeFromDomains) {
  const auto fleet = BuildFleet({.num_machines = 200, .seed = 4});
  const auto& catalog = AttrCatalog();
  for (const auto& m : fleet) {
    for (std::size_t a = 0; a < kNumAttrs; ++a) {
      bool in_domain = false;
      for (std::size_t v = 0; v < catalog[a].num_values; ++v) {
        in_domain = in_domain || catalog[a].values[v] == m.attrs[a];
      }
      EXPECT_TRUE(in_domain) << "attr " << a << " value " << m.attrs[a];
    }
  }
}

TEST(Builder, DiskAttributesAreConsistent) {
  const auto fleet = BuildFleet({.num_machines = 200, .seed = 5});
  for (const auto& m : fleet) {
    EXPECT_EQ(m.Get(Attr::kMinDisks), m.Get(Attr::kMaxDisks));
  }
}

TEST(Builder, ArchMixIsSkewedTowardX86) {
  const auto fleet = BuildFleet({.num_machines = 2000, .seed = 6});
  std::size_t x86 = 0;
  for (const auto& m : fleet) x86 += m.Get(Attr::kArch) == 0;
  const double frac = static_cast<double>(x86) / fleet.size();
  EXPECT_NEAR(frac, 0.72, 0.05);
}

// Supply declines as constraint sets grow (the Fig 6 premise).
TEST(Builder, SupplyDeclinesWithConstraintCount) {
  const Cluster cluster = BuildCluster({.num_machines = 2000, .seed = 8});
  ConstraintSet cs;
  std::size_t prev = cluster.size();
  cs.Add({Attr::kArch, ConstraintOp::kEqual, 0, true});
  std::size_t cur = cluster.CountSatisfying(cs);
  EXPECT_LT(cur, prev);
  prev = cur;
  cs.Add({Attr::kNumCores, ConstraintOp::kGreater, 4, true});
  cur = cluster.CountSatisfying(cs);
  EXPECT_LE(cur, prev);
  prev = cur;
  cs.Add({Attr::kKernelVersion, ConstraintOp::kGreater, 2, true});
  cur = cluster.CountSatisfying(cs);
  EXPECT_LE(cur, prev);
}

// Property sweep: sampling distribution over a constrained pool is uniform.
class ClusterSamplingTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusterSamplingTest, SamplingIsUnbiasedOverPool) {
  const Cluster cluster = BuildCluster({.num_machines = 300, .seed = 11});
  ConstraintSet cs({{Attr::kArch, ConstraintOp::kEqual, 1, true}});
  const std::size_t pool = cluster.CountSatisfying(cs);
  ASSERT_GT(pool, 10u);
  util::Rng rng(GetParam());
  std::map<MachineId, int> counts;
  const int n = 20000;
  for (const auto id : cluster.SampleSatisfying(cs, n, rng)) ++counts[id];
  // Every sampled machine satisfies; frequencies are near-uniform.
  const double expect = static_cast<double>(n) / static_cast<double>(pool);
  for (const auto& [id, count] : counts) {
    EXPECT_TRUE(cluster.machine(id).Satisfies(cs));
    EXPECT_NEAR(count, expect, expect * 0.5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterSamplingTest,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace phoenix::cluster
