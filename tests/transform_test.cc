// Unit tests for trace transformations.
#include <gtest/gtest.h>

#include "trace/generators.h"
#include "trace/transform.h"

namespace phoenix::trace {
namespace {

Trace Base(std::uint64_t seed = 71) {
  return GenerateGoogleTrace(1500, 150, 0.8, seed);
}

TEST(ScaleArrivalRate, DoublesOfferedLoad) {
  const Trace t = Base();
  const Trace fast = ScaleArrivalRate(t, 2.0);
  fast.CheckInvariants();
  EXPECT_EQ(fast.size(), t.size());
  EXPECT_NEAR(fast.OfferedLoad(150), 2.0 * t.OfferedLoad(150),
              0.05 * t.OfferedLoad(150));
}

TEST(ScaleArrivalRate, HalvesOfferedLoad) {
  const Trace t = Base();
  const Trace slow = ScaleArrivalRate(t, 0.5);
  EXPECT_NEAR(slow.OfferedLoad(150), 0.5 * t.OfferedLoad(150),
              0.05 * t.OfferedLoad(150));
}

TEST(ScaleArrivalRate, PreservesJobShapes) {
  const Trace t = Base();
  const Trace scaled = ScaleArrivalRate(t, 3.0);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(scaled.job(i).task_durations, t.job(i).task_durations);
    EXPECT_EQ(scaled.job(i).constraints, t.job(i).constraints);
  }
}

TEST(ScaleArrivalRateDeathTest, RejectsNonPositiveFactor) {
  const Trace t = Base();
  EXPECT_DEATH(ScaleArrivalRate(t, 0.0), "positive");
}

TEST(SliceWindow, KeepsOnlyWindowAndShifts) {
  const Trace t = Base();
  const double horizon = t.ComputeStats().horizon;
  const Trace mid = SliceWindow(t, horizon * 0.25, horizon * 0.5);
  mid.CheckInvariants();
  EXPECT_GT(mid.size(), 0u);
  EXPECT_LT(mid.size(), t.size());
  EXPECT_LT(mid.ComputeStats().horizon, horizon * 0.26);
  EXPECT_GE(mid.job(0).submit_time, 0.0);
}

TEST(SliceWindow, EmptyWindowYieldsEmptyTrace) {
  const Trace t = Base();
  const double horizon = t.ComputeStats().horizon;
  const Trace none = SliceWindow(t, horizon * 2, horizon * 3);
  EXPECT_EQ(none.size(), 0u);
}

TEST(Filters, ShortLongPartitionTheTrace) {
  const Trace t = Base();
  const Trace shorts = OnlyShortJobs(t);
  const Trace longs = OnlyLongJobs(t);
  EXPECT_EQ(shorts.size() + longs.size(), t.size());
  for (const Job& j : shorts.jobs()) EXPECT_TRUE(j.short_job);
  for (const Job& j : longs.jobs()) EXPECT_FALSE(j.short_job);
}

TEST(Filters, ConstrainedFilterWorks) {
  const Trace t = Base();
  const Trace con = OnlyConstrainedJobs(t);
  EXPECT_GT(con.size(), 0u);
  for (const Job& j : con.jobs()) EXPECT_TRUE(j.constrained());
}

TEST(Filters, IdsAreReDensified) {
  const Trace t = Base();
  const Trace shorts = OnlyShortJobs(t);
  for (std::size_t i = 0; i < shorts.size(); ++i) {
    EXPECT_EQ(shorts.job(i).id, i);
  }
}

TEST(Merge, InterleavesBySubmitTime) {
  const Trace a = Base(1);
  const Trace b = Base(2);
  const Trace merged = Merge(a, b);
  merged.CheckInvariants();  // sortedness is part of the invariants
  EXPECT_EQ(merged.size(), a.size() + b.size());
}

TEST(Merge, CombinesWorkOverTheLongerHorizon) {
  const Trace a = Base(3);
  const Trace b = Base(4);
  const Trace merged = Merge(a, b);
  const auto sa = a.ComputeStats();
  const auto sb = b.ComputeStats();
  const double expected = (sa.total_work + sb.total_work) /
                          (150.0 * std::max(sa.horizon, sb.horizon));
  EXPECT_NEAR(merged.OfferedLoad(150), expected, 1e-9);
  // And it is strictly heavier than either input alone.
  EXPECT_GT(merged.OfferedLoad(150), a.OfferedLoad(150));
  EXPECT_GT(merged.OfferedLoad(150), b.OfferedLoad(150));
}

TEST(Merge, WithEmptyIsIdentityShaped) {
  const Trace a = Base(5);
  Trace empty("empty", {});
  const Trace merged = Merge(a, empty);
  EXPECT_EQ(merged.size(), a.size());
}

TEST(Resynthesize, ReplacesConstraintMix) {
  const Trace t = Base();
  SynthesizerOptions all;
  all.constrained_fraction = 1.0;
  const Trace resynth = ResynthesizeConstraints(t, all, 99);
  EXPECT_EQ(resynth.size(), t.size());
  for (const Job& j : resynth.jobs()) EXPECT_TRUE(j.constrained());
  // Shapes untouched.
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(resynth.job(i).task_durations, t.job(i).task_durations);
  }
}

TEST(Resynthesize, ZeroFractionStripsConstraints) {
  const Trace t = Base();
  SynthesizerOptions none;
  none.constrained_fraction = 0.0;
  const Trace bare = ResynthesizeConstraints(t, none, 100);
  for (const Job& j : bare.jobs()) EXPECT_FALSE(j.constrained());
}

}  // namespace
}  // namespace phoenix::trace
