// Google cluster-trace v2 frontend tests: the committed task_events sample
// parses into the expected jobs (arrival order and rebase, SCHEDULE->FINISH
// durations with the SUBMIT fallback, priority -> SLA class bands, cpu /
// memory request lifting, the spread constraint, dropped truncated
// lifecycles), malformed input dies with a line-numbered message (truncated
// rows, backwards timestamps, out-of-range priorities, bad numbers,
// lifecycle rows with no SUBMIT), and the committed sample drives a full
// simulation end-to-end — including deadline scheduling over the trace's
// own SLA classes and request-vector packing. Registered under the "dag"
// ctest label (scripts/check.sh runs `ctest -L dag`).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "cluster/builder.h"
#include "runner/experiment.h"
#include "trace/google_reader.h"
#include "trace/job.h"

namespace phoenix {
namespace {

#ifndef PHOENIX_TEST_DATA_DIR
#define PHOENIX_TEST_DATA_DIR "tests/data"
#endif

std::string SamplePath() {
  return std::string(PHOENIX_TEST_DATA_DIR) + "/google_trace_sample.csv";
}

trace::Trace ParseOk(const std::string& csv) {
  std::istringstream in(csv);
  std::string error;
  trace::Trace t = trace::ReadGoogleTrace(in, &error);
  EXPECT_EQ(error, "");
  return t;
}

std::string ParseError(const std::string& csv) {
  std::istringstream in(csv);
  std::string error;
  const trace::Trace t = trace::ReadGoogleTrace(in, &error);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(error.empty());
  return error;
}

// ---- The committed sample ------------------------------------------------

TEST(GoogleReaderTest, CommittedSampleParsesIntoExpectedJobs) {
  std::string error;
  const auto t = trace::ReadGoogleTraceFile(SamplePath(), &error);
  ASSERT_EQ(error, "");
  ASSERT_EQ(t.size(), 8u);
  EXPECT_EQ(t.name(), "google-v2");

  // Dense ids in arrival order, rebased so the first arrival is t=0.
  EXPECT_EQ(t.job(0).submit_time, 0.0);
  EXPECT_EQ(t.job(1).submit_time, 1.0);
  EXPECT_EQ(t.job(2).submit_time, 3.0);
  EXPECT_EQ(t.job(3).submit_time, 5.0);
  for (trace::JobId id = 0; id < t.size(); ++id) {
    EXPECT_EQ(t.job(id).id, id);
  }

  // Job 101 -> id 0: durations are FINISH - SCHEDULE, the spread constraint
  // lifts to PlacementPref::kSpread, priority 10 is production.
  const auto& prod = t.job(0);
  ASSERT_EQ(prod.num_tasks(), 2u);
  EXPECT_DOUBLE_EQ(prod.task_durations[0], 8.0);
  EXPECT_DOUBLE_EQ(prod.task_durations[1], 10.0);
  EXPECT_EQ(prod.sla_class, 0);
  EXPECT_EQ(prod.placement, trace::PlacementPref::kSpread);
  EXPECT_DOUBLE_EQ(prod.req_cpu, 0.5);
  EXPECT_DOUBLE_EQ(prod.req_mem, 0.25);

  // Priority bands: 4 -> batch, 0 -> best-effort, 9 -> prod.
  EXPECT_EQ(t.job(1).sla_class, 1);
  EXPECT_EQ(t.job(2).sla_class, 2);
  EXPECT_EQ(t.job(3).sla_class, 0);

  // Job 107 -> id 6 never recorded a SCHEDULE: duration falls back to
  // FINISH - SUBMIT.
  ASSERT_EQ(t.job(6).num_tasks(), 1u);
  EXPECT_DOUBLE_EQ(t.job(6).task_durations[0], 14.0);

  // Job 108 -> id 7: the task with no FINISH in the window is dropped.
  EXPECT_EQ(t.job(7).num_tasks(), 1u);

  // The reader classifies short jobs against its own computed cutoff.
  EXPECT_GT(t.short_cutoff(), 0.0);
}

TEST(GoogleReaderTest, CommittedSampleDrivesASimulationEndToEnd) {
  std::string error;
  const auto t = trace::ReadGoogleTraceFile(SamplePath(), &error);
  ASSERT_EQ(error, "");
  const auto cl = cluster::BuildCluster({.num_machines = 8, .seed = 3});
  // Deadline scheduling over the trace's own SLA classes, packed placement
  // over its request vectors, auditor on (the runner aborts on violations).
  runner::RunOptions o;
  o.scheduler = "phoenix";
  o.config.packing.enabled = true;
  o.config.workflow.deadline = true;
  o.obs.audit = true;
  const auto r = runner::RunSimulation(t, cl, o);
  EXPECT_EQ(r.jobs.size(), t.size());
  EXPECT_TRUE(r.deadline_enabled);
  EXPECT_EQ(r.counters.deadline_jobs, t.size());
  // Every job lands in the SLA-class slice its trace priority mapped to
  // (prod: 101 104 107, batch: 102 105 108, best-effort: 103 106).
  EXPECT_EQ(r.class_deadline_jobs[0], 3u);
  EXPECT_EQ(r.class_deadline_jobs[1], 3u);
  EXPECT_EQ(r.class_deadline_jobs[2], 2u);
  for (std::size_t rank = 0; rank < 3; ++rank) {
    EXPECT_GE(r.DeadlineAttainment(rank), 0.0);
    EXPECT_LE(r.DeadlineAttainment(rank), 1.0);
  }
}

// ---- Malformed input dies with a line-numbered message -------------------

TEST(GoogleReaderTest, TruncatedRowReportsLineNumber) {
  const std::string csv =
      "# comment\n"
      "0,0,1,0,,0,u,0,5,0.1,0.1,0.0,0\n"
      "1000000,0,1,0,,1,u,0,5\n";  // 9 columns
  const std::string error = ParseError(csv);
  EXPECT_NE(error.find("line 3:"), std::string::npos) << error;
  EXPECT_NE(error.find("13"), std::string::npos) << error;
}

TEST(GoogleReaderTest, BackwardsTimestampsReportLineNumber) {
  const std::string csv =
      "5000000,0,1,0,,0,u,0,5,0.1,0.1,0.0,0\n"
      "4000000,0,1,0,,1,u,0,5,,,,\n";
  const std::string error = ParseError(csv);
  EXPECT_NE(error.find("line 2:"), std::string::npos) << error;
  EXPECT_NE(error.find("non-decreasing"), std::string::npos) << error;
}

TEST(GoogleReaderTest, PriorityOutsideTraceRangeReportsLineNumber) {
  const std::string csv = "0,0,1,0,,0,u,0,12,0.1,0.1,0.0,0\n";
  const std::string error = ParseError(csv);
  EXPECT_NE(error.find("line 1:"), std::string::npos) << error;
  EXPECT_NE(error.find("0-11"), std::string::npos) << error;
}

TEST(GoogleReaderTest, UnknownEventTypeAndBadNumbersReportLineNumbers) {
  EXPECT_NE(ParseError("0,0,1,0,,9,u,0,5,0.1,0.1,0.0,0\n")
                .find("unknown event type"),
            std::string::npos);
  EXPECT_NE(ParseError("zero,0,1,0,,0,u,0,5,0.1,0.1,0.0,0\n")
                .find("bad timestamp"),
            std::string::npos);
  EXPECT_NE(ParseError("0,0,1,0,,0,u,0,5,lots,0.1,0.0,0\n")
                .find("bad cpu request"),
            std::string::npos);
}

TEST(GoogleReaderTest, LifecycleRowWithNoSubmitReportsLineNumber) {
  const std::string error =
      ParseError("0,0,7,3,,4,u,0,5,,,,\n");  // FINISH with no SUBMIT
  EXPECT_NE(error.find("line 1:"), std::string::npos) << error;
  EXPECT_NE(error.find("no prior SUBMIT"), std::string::npos) << error;
}

TEST(GoogleReaderTest, WindowWithNoCompletedTasksIsAnError) {
  // SUBMIT-only lifecycles (the window closed before any FINISH).
  const std::string error = ParseError("0,0,1,0,,0,u,0,5,0.1,0.1,0.0,0\n");
  EXPECT_NE(error.find("no completed tasks"), std::string::npos) << error;
}

TEST(GoogleReaderTest, MissingFileReportsPath) {
  std::string error;
  const auto t = trace::ReadGoogleTraceFile("/nonexistent/trace.csv", &error);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

// ---- Aggregation details --------------------------------------------------

TEST(GoogleReaderTest, ZeroLengthTasksFloorAtOneMicrosecond) {
  // SCHEDULE and FINISH at the same tick: the duration floors at 1 us
  // instead of going to zero.
  const auto t = ParseOk(
      "0,0,1,0,,0,u,0,5,0.1,0.1,0.0,0\n"
      "1000000,0,1,0,,1,u,0,5,,,,\n"
      "1000000,0,1,0,,4,u,0,5,,,,\n");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_DOUBLE_EQ(t.job(0).task_durations[0], 1e-6);
}

TEST(GoogleReaderTest, SingleTaskSpreadJobStaysUnconstrained) {
  // The spread preference is meaningless for one task; the reader only
  // lifts it for multi-task jobs.
  const auto t = ParseOk(
      "0,0,1,0,,0,u,0,5,0.1,0.1,0.0,1\n"
      "1000000,0,1,0,,4,u,0,5,,,,\n");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.job(0).placement, trace::PlacementPref::kNone);
}

}  // namespace
}  // namespace phoenix
