// Unit tests for the fairness metrics (paper §VI-D: Phoenix "does not
// affect the fairness ... of the other long and unconstrained jobs").
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "cluster/builder.h"
#include "metrics/fairness.h"
#include "runner/experiment.h"
#include "trace/generators.h"

namespace phoenix::metrics {
namespace {

TEST(JainIndex, PerfectlyFairIsOne) {
  EXPECT_DOUBLE_EQ(JainIndex({5, 5, 5, 5}), 1.0);
}

TEST(JainIndex, MaximallyUnfairIsOneOverN) {
  EXPECT_DOUBLE_EQ(JainIndex({1, 0, 0, 0}), 0.25);
}

TEST(JainIndex, EmptyAndZeroAreVacuouslyFair) {
  EXPECT_DOUBLE_EQ(JainIndex({}), 1.0);
  EXPECT_DOUBLE_EQ(JainIndex({0, 0}), 1.0);
}

TEST(JainIndex, KnownMixedValue) {
  // (1+2+3)^2 / (3 * (1+4+9)) = 36/42.
  EXPECT_NEAR(JainIndex({1, 2, 3}), 36.0 / 42.0, 1e-12);
}

TEST(JainIndex, ScaleInvariant) {
  const std::vector<double> a = {1, 2, 5, 9};
  std::vector<double> b;
  for (const double x : a) b.push_back(x * 100);
  EXPECT_NEAR(JainIndex(a), JainIndex(b), 1e-12);
}

TEST(JainIndex, MonotoneInDispersion) {
  EXPECT_GT(JainIndex({4, 5, 6}), JainIndex({1, 5, 9}));
}

TEST(JainIndex, DegenerateInputsNeverLeakNaN) {
  // (Σx)² and Σx² both overflow to inf; inf/inf is NaN unless guarded. For
  // the equal-values case 1.0 is also the exact answer.
  EXPECT_DOUBLE_EQ(JainIndex({1e200, 1e200}), 1.0);
  EXPECT_TRUE(std::isfinite(JainIndex({1e200, 0.0})));
  EXPECT_TRUE(std::isfinite(
      JainIndex({std::numeric_limits<double>::quiet_NaN(), 1.0})));
}

TEST(TenantUsageJain, AllZeroUsageIsVacuouslyFair) {
  // Idle tenants: every normalized usage is 0, the 0/0 case the contract
  // pins to 1.0 (not NaN).
  SimReport report;
  for (int i = 0; i < 3; ++i) {
    TenantOutcome t;
    t.id = static_cast<std::uint16_t>(i);
    t.quota_share = 1.0 / 3.0;
    t.usage_seconds = 0.0;
    report.tenants.push_back(t);
  }
  EXPECT_DOUBLE_EQ(TenantUsageJain(report), 1.0);
  // A tenant without a configured quota enters unnormalized; still all-zero.
  report.tenants[1].quota_share = 0.0;
  EXPECT_DOUBLE_EQ(TenantUsageJain(report), 1.0);
}

class FairnessEndToEndTest : public ::testing::Test {
 protected:
  FairnessEndToEndTest()
      : cluster_(cluster::BuildCluster({.num_machines = 100, .seed = 61})),
        trace_(trace::GenerateGoogleTrace(4000, 100, 0.85, 61)) {}

  metrics::SimReport Run(const std::string& scheduler) const {
    runner::RunOptions o;
    o.scheduler = scheduler;
    o.config.seed = 61;
    return runner::RunSimulation(trace_, cluster_, o);
  }

  cluster::Cluster cluster_;
  trace::Trace trace_;
};

TEST_F(FairnessEndToEndTest, SlowdownsAreAtLeastOneIsh) {
  const auto report = Run("phoenix");
  const auto slowdowns = Slowdowns(report, trace_, ClassFilter::kAll,
                                   ConstraintFilter::kAll);
  EXPECT_EQ(slowdowns.size(), trace_.size());
  for (const double s : slowdowns) {
    // Response >= longest task (modulo nothing), so slowdown >= ~1.
    EXPECT_GE(s, 0.99);
  }
}

TEST_F(FairnessEndToEndTest, SummaryFieldsPopulated) {
  const auto report = Run("phoenix");
  const FairnessSummary f = ComputeFairness(report, trace_);
  EXPECT_GT(f.jain_all, 0.0);
  EXPECT_LE(f.jain_all, 1.0);
  EXPECT_GT(f.jain_short, 0.0);
  EXPECT_GT(f.jain_long, 0.0);
  EXPECT_GT(f.unconstrained_to_constrained, 0.0);
}

// The paper's fairness claim: Phoenix's reordering does not degrade overall
// fairness relative to Eagle-C.
TEST_F(FairnessEndToEndTest, PhoenixFairnessComparableToEagle) {
  const FairnessSummary p = ComputeFairness(Run("phoenix"), trace_);
  const FairnessSummary e = ComputeFairness(Run("eagle-c"), trace_);
  EXPECT_GT(p.jain_all, e.jain_all * 0.8);
  EXPECT_GT(p.jain_long, e.jain_long * 0.8);
}

}  // namespace
}  // namespace phoenix::metrics
