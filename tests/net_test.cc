// Tests for the control-plane network fabric and its RPC layer: latency
// models, chaos injection (drop / duplicate / reorder / partition),
// per-message determinism, timeout/retry semantics, and the end-to-end
// guarantee that a lossy fabric degrades latency without losing jobs.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cluster/builder.h"
#include "net/fabric.h"
#include "net/rpc.h"
#include "runner/experiment.h"
#include "sim/engine.h"
#include "trace/generators.h"

namespace phoenix {
namespace {

using net::FabricConfig;
using net::LatencyModel;
using net::MessageKind;
using net::NetworkFabric;
using net::Rpc;
using net::RpcConfig;

// Collects the delivery times of `count` messages sent at t=0.
std::vector<double> DeliveryTimes(const FabricConfig& cfg, std::uint64_t seed,
                                  std::size_t count,
                                  double nominal = 1e-3) {
  sim::Engine engine;
  NetworkFabric fabric(engine, cfg, seed);
  std::vector<double> times;
  for (std::size_t i = 0; i < count; ++i) {
    fabric.Send(net::kControllerNode, static_cast<cluster::MachineId>(i),
                MessageKind::kProbe, nominal, [&engine, &times] {
                  times.push_back(engine.Now());
                  return true;
                });
  }
  engine.Run();
  std::sort(times.begin(), times.end());
  return times;
}

// ------------------------------------------------------------ latency models

TEST(Fabric, FastPathDeliversAtExactlyNominal) {
  sim::Engine engine;
  NetworkFabric fabric(engine, FabricConfig{}, 7);
  EXPECT_TRUE(fabric.FastPath());
  double arrival = -1;
  const net::MessageId id =
      fabric.Send(net::kControllerNode, 0, MessageKind::kProbe, 2e-3,
                  [&engine, &arrival] {
                    arrival = engine.Now();
                    return true;
                  });
  EXPECT_EQ(id, 0u);  // fast path skips per-message bookkeeping
  engine.Run();
  EXPECT_DOUBLE_EQ(arrival, 2e-3);
  EXPECT_EQ(fabric.stats().sent, 1u);
  EXPECT_EQ(fabric.stats().delivered, 1u);
}

TEST(Fabric, UniformJitterStaysInBand) {
  FabricConfig cfg;
  cfg.model = LatencyModel::kUniform;
  cfg.jitter = 0.25;
  const auto times = DeliveryTimes(cfg, 11, 200);
  ASSERT_EQ(times.size(), 200u);
  EXPECT_GE(times.front(), 0.75e-3);
  EXPECT_LE(times.back(), 1.25e-3);
  EXPECT_LT(times.front(), times.back());  // actually jittered
}

TEST(Fabric, LognormalIsPositiveAndMeanPreserving) {
  FabricConfig cfg;
  cfg.model = LatencyModel::kLognormal;
  cfg.sigma = 0.5;
  const auto times = DeliveryTimes(cfg, 13, 2000);
  ASSERT_EQ(times.size(), 2000u);
  EXPECT_GT(times.front(), 0.0);
  double sum = 0;
  for (const double t : times) sum += t;
  // mu = -sigma^2/2 keeps the multiplier mean at 1; a 2000-draw average
  // lands within a few percent of the nominal.
  EXPECT_NEAR(sum / times.size(), 1e-3, 0.1e-3);
}

TEST(Fabric, EmpiricalDrawsFromTheTable) {
  FabricConfig cfg;
  cfg.model = LatencyModel::kEmpirical;
  cfg.empirical = {1.0, 2.0, 4.0};
  const auto times = DeliveryTimes(cfg, 17, 300);
  for (const double t : times) {
    const double mult = t / 1e-3;
    const bool in_table = std::abs(mult - 1.0) < 1e-9 ||
                          std::abs(mult - 2.0) < 1e-9 ||
                          std::abs(mult - 4.0) < 1e-9;
    EXPECT_TRUE(in_table) << "multiplier " << mult;
  }
}

// -------------------------------------------------------------- determinism

TEST(Fabric, SameSeedsReproduceIdenticalDeliverySchedules) {
  FabricConfig cfg;
  cfg.model = LatencyModel::kLognormal;
  cfg.drop_rate = 0.1;
  cfg.duplicate_rate = 0.1;
  cfg.reorder_rate = 0.1;
  const auto a = DeliveryTimes(cfg, 99, 500);
  const auto b = DeliveryTimes(cfg, 99, 500);
  EXPECT_EQ(a, b);  // exact: same RNG streams, same outcomes
  const auto c = DeliveryTimes(cfg, 100, 500);
  EXPECT_NE(a, c);  // a different run seed decorrelates the chaos
}

// ------------------------------------------------------------------- chaos

TEST(Fabric, DropRateLosesMessagesAndConservationHolds) {
  FabricConfig cfg;
  cfg.drop_rate = 0.3;
  sim::Engine engine;
  NetworkFabric fabric(engine, cfg, 21);
  std::size_t arrivals = 0;
  for (int i = 0; i < 500; ++i) {
    fabric.Send(net::kControllerNode, 0, MessageKind::kProbe, 1e-3,
                [&arrivals] {
                  ++arrivals;
                  return true;
                });
  }
  engine.Run();
  const auto& s = fabric.stats();
  EXPECT_GT(s.dropped, 50u);
  EXPECT_LT(s.dropped, 250u);
  EXPECT_EQ(arrivals, s.delivered);
  // Every sent copy terminates exactly once.
  EXPECT_EQ(s.sent, s.delivered + s.dropped + s.partition_drops + s.expired);
}

TEST(Fabric, DuplicatesShareTheCallbackAndStaleCopiesExpire) {
  FabricConfig cfg;
  cfg.duplicate_rate = 0.5;
  sim::Engine engine;
  NetworkFabric fabric(engine, cfg, 23);
  std::size_t consumed = 0;
  for (int i = 0; i < 200; ++i) {
    // Receiver-side dedup: only the first copy of each message is consumed.
    auto seen = std::make_shared<bool>(false);
    fabric.Send(net::kControllerNode, 0, MessageKind::kProbe, 1e-3,
                [seen, &consumed] {
                  if (*seen) return false;
                  *seen = true;
                  ++consumed;
                  return true;
                });
  }
  engine.Run();
  const auto& s = fabric.stats();
  EXPECT_GT(s.duplicated, 50u);
  EXPECT_EQ(consumed, 200u);
  EXPECT_EQ(s.expired, s.duplicated);  // every extra copy arrived stale
  EXPECT_EQ(s.sent, 200u + s.duplicated);
  EXPECT_EQ(s.sent, s.delivered + s.dropped + s.partition_drops + s.expired);
}

TEST(Fabric, PartitionSeversTheCutAndHeals) {
  FabricConfig cfg;
  cfg.drop_rate = 1e-12;  // non-ideal config so sends take the chaos path
  sim::Engine engine;
  NetworkFabric fabric(engine, cfg, 25);
  fabric.Partition({0, 1}, /*duration=*/10.0);
  EXPECT_TRUE(fabric.PartitionActive());
  EXPECT_TRUE(fabric.Severed(net::kControllerNode, 0));
  EXPECT_TRUE(fabric.Severed(2, 1));
  EXPECT_FALSE(fabric.Severed(0, 1));  // same side of the cut
  EXPECT_FALSE(fabric.Severed(2, 3));
  EXPECT_FALSE(fabric.Severed(2, net::kControllerNode));

  std::size_t arrivals = 0;
  const auto count = [&arrivals] {
    ++arrivals;
    return true;
  };
  fabric.Send(net::kControllerNode, 0, MessageKind::kProbe, 1e-3, count);
  engine.Run();  // runs past the heal event
  EXPECT_EQ(arrivals, 0u);
  EXPECT_EQ(fabric.stats().partition_drops, 1u);
  EXPECT_FALSE(fabric.PartitionActive());
  fabric.Send(net::kControllerNode, 0, MessageKind::kProbe, 1e-3, count);
  engine.Run();
  EXPECT_EQ(arrivals, 1u);
}

// --------------------------------------------------------------------- rpc

TEST(Rpc, RetriesThroughLossUntilDelivered) {
  FabricConfig cfg;
  cfg.drop_rate = 0.6;
  RpcConfig rpc_cfg;
  rpc_cfg.max_retries = 20;
  sim::Engine engine;
  NetworkFabric fabric(engine, cfg, 27);
  Rpc rpc(engine, fabric, rpc_cfg);
  std::size_t delivered = 0, failed = 0;
  for (int i = 0; i < 50; ++i) {
    rpc.Send(net::kControllerNode, 0, MessageKind::kProbe, 1e-3,
             [&delivered] { ++delivered; }, [&failed] { ++failed; });
  }
  engine.Run();
  // P(21 consecutive drops at 0.6) ~ 2e-5: every call lands.
  EXPECT_EQ(delivered, 50u);
  EXPECT_EQ(failed, 0u);
  EXPECT_GT(rpc.stats().retries, 0u);
}

TEST(Rpc, PermanentPartitionExhaustsRetriesAndFailsOver) {
  FabricConfig cfg;
  cfg.drop_rate = 1e-12;  // non-ideal so the reliable path engages
  RpcConfig rpc_cfg;
  rpc_cfg.max_retries = 2;
  sim::Engine engine;
  NetworkFabric fabric(engine, cfg, 29);
  Rpc rpc(engine, fabric, rpc_cfg);
  fabric.Partition({0}, /*duration=*/1e9);
  bool delivered = false, failed = false;
  rpc.Send(net::kControllerNode, 0, MessageKind::kProbe, 1e-3,
           [&delivered] { delivered = true; }, [&failed] { failed = true; });
  engine.Run(/*until=*/1e6);
  EXPECT_FALSE(delivered);
  EXPECT_TRUE(failed);
  EXPECT_EQ(rpc.stats().retries, 2u);
  EXPECT_EQ(rpc.stats().failures, 1u);
  EXPECT_EQ(fabric.stats().partition_drops, 3u);  // every attempt severed
}

TEST(Rpc, RoundTripResolvesOnceDespiteRetriesAndDuplicates) {
  FabricConfig cfg;
  cfg.drop_rate = 0.4;
  cfg.duplicate_rate = 0.3;
  RpcConfig rpc_cfg;
  rpc_cfg.max_retries = 20;
  sim::Engine engine;
  NetworkFabric fabric(engine, cfg, 31);
  Rpc rpc(engine, fabric, rpc_cfg);
  std::size_t successes = 0, failures = 0;
  std::vector<Rpc::CallId> ids;
  for (int i = 0; i < 50; ++i) {
    ids.push_back(rpc.RoundTrip(
        0, net::kControllerNode, MessageKind::kFetchRequest, 1e-3,
        [&successes] { ++successes; }, [&failures] { ++failures; }));
    EXPECT_NE(ids.back(), 0u);  // always a live, cancellable handle
  }
  engine.Run();
  EXPECT_EQ(successes, 50u);  // exactly once each, never double-resolved
  EXPECT_EQ(failures, 0u);
  for (const auto id : ids) EXPECT_FALSE(rpc.Alive(id));
  const auto& s = fabric.stats();
  EXPECT_EQ(s.sent, s.delivered + s.dropped + s.partition_drops + s.expired);
}

TEST(Rpc, CancelSilencesTheCallAndExpiresInFlightCopies) {
  FabricConfig cfg;
  cfg.drop_rate = 1e-12;  // non-ideal; first attempt will be in flight
  sim::Engine engine;
  NetworkFabric fabric(engine, cfg, 33);
  Rpc rpc(engine, fabric, RpcConfig{});
  bool resolved = false, failed = false;
  const Rpc::CallId id = rpc.RoundTrip(
      0, net::kControllerNode, MessageKind::kFetchRequest, 1e-3,
      [&resolved] { resolved = true; }, [&failed] { failed = true; });
  ASSERT_TRUE(rpc.Alive(id));
  rpc.Cancel(id);
  EXPECT_FALSE(rpc.Alive(id));
  engine.Run();
  EXPECT_FALSE(resolved);
  EXPECT_FALSE(failed);
  EXPECT_EQ(rpc.stats().cancelled, 1u);
  EXPECT_EQ(fabric.stats().expired, 1u);  // the in-flight request went stale
}

TEST(Rpc, GenerationWrapSkipsZeroAndKeepsStaleIdsStale) {
  sim::Engine engine;
  NetworkFabric fabric(engine, FabricConfig{}, 37);
  Rpc rpc(engine, fabric, RpcConfig{});
  // Occupy slot 0, then free it so Issue() recycles it below.
  const Rpc::CallId first = rpc.RoundTrip(
      0, net::kControllerNode, MessageKind::kFetchRequest, 1e-3,
      [] { FAIL(); }, [] { FAIL(); });
  ASSERT_EQ(static_cast<std::uint32_t>(first), 1u);  // slot 0
  rpc.Cancel(first);
  // Plant the slot one step before the wrap: the next tenant gets the last
  // 32-bit generation, the one after that crosses 2^32.
  rpc.SetGenerationForTest(0, 0xFFFFFFFEu);
  const Rpc::CallId pre_wrap = rpc.RoundTrip(
      0, net::kControllerNode, MessageKind::kFetchRequest, 1e-3,
      [] { FAIL(); }, [] { FAIL(); });
  EXPECT_EQ(pre_wrap >> 32, 0xFFFFFFFFull);
  rpc.Cancel(pre_wrap);
  bool resolved = false;
  const Rpc::CallId wrapped = rpc.RoundTrip(
      0, net::kControllerNode, MessageKind::kFetchRequest, 1e-3,
      [&resolved] { resolved = true; }, [] { FAIL(); });
  // The wrapped generation must skip 0: an id whose generation bits are all
  // zero would be indistinguishable from a never-issued slot (and id 0 is
  // the "no call" sentinel), so the slot's cycle is 2^32 - 1, not 2^32.
  EXPECT_NE(wrapped >> 32, 0ull);
  EXPECT_TRUE(rpc.Alive(wrapped));
  // The ancient pre-wrap id neither reads as live nor cancels the new call.
  EXPECT_FALSE(rpc.Alive(pre_wrap));
  rpc.Cancel(pre_wrap);
  EXPECT_TRUE(rpc.Alive(wrapped));
  // Nor does the hypothetical generation-0 id the unfixed wrap would mint.
  const Rpc::CallId zero_gen = static_cast<Rpc::CallId>(1);  // gen 0, slot 0
  EXPECT_FALSE(rpc.Alive(zero_gen));
  rpc.Cancel(zero_gen);
  EXPECT_TRUE(rpc.Alive(wrapped));
  engine.Run();
  EXPECT_TRUE(resolved);
}

TEST(Rpc, FastPathRoundTripTakesExactlyTheNominal) {
  sim::Engine engine;
  NetworkFabric fabric(engine, FabricConfig{}, 35);
  Rpc rpc(engine, fabric, RpcConfig{});
  double done = -1;
  const Rpc::CallId id = rpc.RoundTrip(
      0, net::kControllerNode, MessageKind::kFetchRequest, 5e-4,
      [&engine, &done] { done = engine.Now(); }, [] { FAIL(); });
  EXPECT_TRUE(rpc.Alive(id));
  engine.Run();
  EXPECT_DOUBLE_EQ(done, 5e-4);
  EXPECT_FALSE(rpc.Alive(id));
  EXPECT_EQ(rpc.stats().retries, 0u);
}

// ----------------------------------------------------------- whole-scheduler

class ChaosSchedulerTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ChaosSchedulerTest, LossyFabricLosesNoJobs) {
  // 5% drop + lognormal latency + duplicates + reordering, auditor on: the
  // RPC retry layer must keep every job completing, probe accounting
  // balanced, and the message-conservation rule clean (the auditor aborts
  // the run on any violation).
  const auto cl = cluster::BuildCluster({.num_machines = 40, .seed = 61});
  const auto t = trace::GenerateGoogleTrace(800, 40, 0.75, 61);
  runner::RunOptions o;
  o.scheduler = GetParam();
  o.config.seed = 61;
  o.config.net.model = net::LatencyModel::kLognormal;
  o.config.net.drop_rate = 0.05;
  o.config.net.duplicate_rate = 0.02;
  o.config.net.reorder_rate = 0.05;
  o.config.rpc.max_retries = 6;
  o.obs.audit = true;
  const auto report = runner::RunSimulation(t, cl, o);
  EXPECT_EQ(report.jobs.size(), t.size());
  EXPECT_GT(report.counters.net_messages_sent, 0u);
  EXPECT_GT(report.counters.net_messages_dropped, 0u);
  EXPECT_GT(report.counters.rpc_retries, 0u);
  report.CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(Schedulers, ChaosSchedulerTest,
                         ::testing::Values("phoenix", "eagle-c", "hawk-c",
                                           "sparrow-c"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

TEST(ChaosScheduler, DefaultFabricReportsZeroChaosCounters) {
  const auto cl = cluster::BuildCluster({.num_machines = 20, .seed = 67});
  const auto t = trace::GenerateGoogleTrace(300, 20, 0.7, 67);
  runner::RunOptions o;
  o.scheduler = "phoenix";
  o.config.seed = 67;
  const auto report = runner::RunSimulation(t, cl, o);
  EXPECT_GT(report.counters.net_messages_sent, 0u);
  EXPECT_EQ(report.counters.net_messages_dropped, 0u);
  EXPECT_EQ(report.counters.net_messages_duplicated, 0u);
  EXPECT_EQ(report.counters.net_messages_expired, 0u);
  EXPECT_EQ(report.counters.rpc_retries, 0u);
  EXPECT_EQ(report.counters.rpc_failures, 0u);
}

}  // namespace
}  // namespace phoenix
