// Unit tests for percentiles, CDFs, time series and the simulation report.
#include <gtest/gtest.h>

#include "metrics/percentile.h"
#include "metrics/report.h"
#include "metrics/timeseries.h"
#include "util/rng.h"

namespace phoenix::metrics {
namespace {

// ---------------------------------------------------------------- Percentile

TEST(Percentile, EmptyIsZero) {
  std::vector<double> v;
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 0.0);
}

TEST(Percentile, SingleValue) {
  std::vector<double> v = {7.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 7.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 7.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 7.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 2.5);
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 4.0);
}

TEST(Percentile, MatchesKnownNumpyValues) {
  std::vector<double> v = {15, 20, 35, 40, 50};
  EXPECT_DOUBLE_EQ(Percentile(v, 40), 29.0);  // numpy.percentile default
}

TEST(Percentile, UnsortedInputHandled) {
  std::vector<double> v = {9, 1, 5, 3, 7};
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 5.0);
}

TEST(Percentile, CopyVariantDoesNotMutate) {
  const std::vector<double> v = {3, 1, 2};
  EXPECT_DOUBLE_EQ(PercentileCopy(v, 100), 3.0);
  EXPECT_EQ(v, (std::vector<double>{3, 1, 2}));
}

TEST(PercentileDeathTest, OutOfRangePAborts) {
  std::vector<double> v = {1.0};
  EXPECT_DEATH(Percentile(v, 101), "percentile");
  EXPECT_DEATH(Percentile(v, -1), "percentile");
}

TEST(Summarize, AllFieldsPopulated) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  const PercentileSummary s = Summarize(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.p50, 50.5, 0.01);
  EXPECT_NEAR(s.p90, 90.1, 0.2);
  EXPECT_NEAR(s.p99, 99.01, 0.2);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
}

TEST(Summarize, EmptyIsZeroed) {
  const PercentileSummary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

// Property: percentile is monotone in p.
class PercentileMonotoneTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PercentileMonotoneTest, MonotoneInP) {
  util::Rng rng(GetParam());
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(rng.Uniform(0, 1000));
  double prev = -1;
  for (double p = 0; p <= 100; p += 5) {
    const double q = PercentileCopy(v, p);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotoneTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------- Cdf

TEST(Cdf, EmptyInput) {
  EXPECT_TRUE(ComputeCdf({}).empty());
}

TEST(Cdf, MonotoneAndEndsAtOne) {
  util::Rng rng(6);
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(rng.Uniform(0, 100));
  const auto cdf = ComputeCdf(v, 32);
  ASSERT_EQ(cdf.size(), 32u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GE(cdf[i].fraction, cdf[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
}

TEST(Cdf, SmallInputKeepsAllPoints) {
  const auto cdf = ComputeCdf({3.0, 1.0, 2.0}, 64);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[2].value, 3.0);
}

// ---------------------------------------------------------------- TimeSeries

TEST(TimeSeries, BucketsMeansCorrectly) {
  TimeSeries ts(100.0, 10);
  ts.Add(5.0, 10.0);
  ts.Add(7.0, 20.0);
  ts.Add(95.0, 4.0);
  EXPECT_DOUBLE_EQ(ts.bucket_mean(0), 15.0);
  EXPECT_EQ(ts.bucket_count(0), 2u);
  EXPECT_DOUBLE_EQ(ts.bucket_mean(9), 4.0);
  EXPECT_DOUBLE_EQ(ts.bucket_mean(5), 0.0);
}

TEST(TimeSeries, SamplesBeyondHorizonLandInLastBucket) {
  TimeSeries ts(10.0, 5);
  ts.Add(100.0, 3.0);
  EXPECT_EQ(ts.bucket_count(4), 1u);
}

TEST(TimeSeries, BucketTimesAreMidpoints) {
  TimeSeries ts(100.0, 10);
  EXPECT_DOUBLE_EQ(ts.bucket_time(0), 5.0);
  EXPECT_DOUBLE_EQ(ts.bucket_time(9), 95.0);
}

TEST(TimeSeriesDeathTest, BadShapeAborts) {
  EXPECT_DEATH(TimeSeries(0.0, 5), "shape");
}

// ---------------------------------------------------------------- SimReport

SimReport MakeReport() {
  SimReport r;
  r.num_workers = 10;
  r.makespan = 100;
  r.total_busy_time = 400;
  auto add = [&](double submit, double completion, double queue, bool is_short,
                 bool constrained) {
    JobOutcome j;
    j.id = static_cast<trace::JobId>(r.jobs.size());
    j.submit = submit;
    j.completion = completion;
    j.queuing_delay = queue;
    j.max_task_wait = queue;
    j.num_tasks = 2;
    j.short_class = is_short;
    j.constrained = constrained;
    r.jobs.push_back(j);
  };
  add(0, 10, 1, true, true);     // short constrained, response 10
  add(0, 20, 2, true, false);    // short unconstrained, response 20
  add(0, 80, 3, false, true);    // long constrained, response 80
  add(0, 90, 4, false, false);   // long unconstrained, response 90
  return r;
}

TEST(SimReport, UtilizationComputed) {
  const SimReport r = MakeReport();
  EXPECT_DOUBLE_EQ(r.Utilization(), 0.4);
}

TEST(SimReport, FiltersSelectCorrectSlices) {
  const SimReport r = MakeReport();
  EXPECT_EQ(r.CountJobs(ClassFilter::kAll, ConstraintFilter::kAll), 4u);
  EXPECT_EQ(r.CountJobs(ClassFilter::kShort, ConstraintFilter::kAll), 2u);
  EXPECT_EQ(r.CountJobs(ClassFilter::kLong, ConstraintFilter::kConstrained), 1u);
  EXPECT_EQ(r.CountJobs(ClassFilter::kShort, ConstraintFilter::kUnconstrained),
            1u);
  EXPECT_EQ(r.CountTasks(ClassFilter::kAll, ConstraintFilter::kAll), 8u);
}

TEST(SimReport, ResponseAndQueuingVectors) {
  const SimReport r = MakeReport();
  const auto rt = r.ResponseTimes(ClassFilter::kShort, ConstraintFilter::kAll);
  EXPECT_EQ(rt, (std::vector<double>{10, 20}));
  const auto qd =
      r.QueuingDelays(ClassFilter::kLong, ConstraintFilter::kUnconstrained);
  EXPECT_EQ(qd, (std::vector<double>{4}));
}

TEST(SimReport, SummariesMatchVectors) {
  const SimReport r = MakeReport();
  const auto s = r.ResponseSummary(ClassFilter::kShort, ConstraintFilter::kAll);
  EXPECT_DOUBLE_EQ(s.p50, 15.0);
  EXPECT_DOUBLE_EQ(s.mean, 15.0);
  EXPECT_EQ(s.count, 2u);
}

TEST(SimReport, InvariantsPassForValidReport) {
  MakeReport().CheckInvariants();
}

TEST(SimReportDeathTest, CompletionBeforeSubmitAborts) {
  SimReport r = MakeReport();
  r.jobs[0].completion = -1;
  EXPECT_DEATH(r.CheckInvariants(), "before");
}

TEST(SimReportDeathTest, OverUtilizationAborts) {
  SimReport r = MakeReport();
  r.total_busy_time = 1e6;
  EXPECT_DEATH(r.CheckInvariants(), "utilization");
}

TEST(Speedup, RatioOfPercentiles) {
  const SimReport fast = MakeReport();
  SimReport slow = MakeReport();
  for (auto& j : slow.jobs) j.completion = j.submit + 2 * (j.completion - j.submit);
  EXPECT_DOUBLE_EQ(
      SpeedupAtPercentile(fast, slow, 99, ClassFilter::kShort,
                          ConstraintFilter::kAll),
      2.0);
}

}  // namespace
}  // namespace phoenix::metrics
