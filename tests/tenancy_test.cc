// Tests for the multi-tenant SLO scheduling subsystem (src/tenancy): the
// pure admission lattice and preemption policy, TenantRegistry accounting,
// and the end-to-end scheduler wiring — preemption kill-and-requeue with
// audited conservation, the Slack_threshold starvation guard, quota
// rejects, SLO tracking, priority promotion, and determinism across the
// experiment thread budget.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "cluster/builder.h"
#include "cluster/membership.h"
#include "metrics/fairness.h"
#include "obs/audit.h"
#include "runner/experiment.h"
#include "runner/parallel.h"
#include "runner/registry.h"
#include "tenancy/admission.h"
#include "tenancy/config.h"
#include "tenancy/preemption.h"
#include "trace/generators.h"

namespace phoenix {
namespace {

using tenancy::AdmissionInput;
using tenancy::DecideAdmission;
using tenancy::PriorityClass;
using tenancy::Verdict;

class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t n) { runner::SetExperimentThreads(n); }
  ~ScopedThreads() { runner::SetExperimentThreads(0); }
};

// ---------------------------------------------------------------------------
// Admission lattice (pure).

TEST(TenancyAdmission, AdmitsWithinBudgetAndSlo) {
  AdmissionInput in;
  in.priority = PriorityClass::kBatch;
  in.job_work = 100;
  in.committed = 200;
  in.budget = 1000;
  in.slo_target = 60;
  in.predicted_wait = 1;
  const auto d = DecideAdmission(in);
  EXPECT_EQ(d.verdict, Verdict::kAdmit);
  EXPECT_EQ(d.priority, PriorityClass::kBatch);
  EXPECT_TRUE(d.charge_quota);
  EXPECT_FALSE(d.strip_slo);
  EXPECT_FALSE(d.relax_constraint);
  EXPECT_FALSE(d.slo_at_risk);
}

TEST(TenancyAdmission, QuotaExhaustedRejectsAsUnchargedBestEffort) {
  AdmissionInput in;
  in.priority = PriorityClass::kProd;
  in.job_work = 100;
  in.committed = 950;
  in.budget = 1000;
  in.slo_target = 60;
  const auto d = DecideAdmission(in);
  EXPECT_EQ(d.verdict, Verdict::kReject);
  EXPECT_EQ(d.priority, PriorityClass::kBestEffort);
  EXPECT_TRUE(d.strip_slo);
  EXPECT_FALSE(d.charge_quota);
}

TEST(TenancyAdmission, ZeroBudgetMeansUnlimited) {
  AdmissionInput in;
  in.job_work = 1e12;
  in.committed = 1e12;
  in.budget = 0;  // no quota_share configured
  EXPECT_EQ(DecideAdmission(in).verdict, Verdict::kAdmit);
}

TEST(TenancyAdmission, InfeasibleSloKeepsProdAtRisk) {
  AdmissionInput in;
  in.priority = PriorityClass::kProd;
  in.short_class = true;
  in.slo_target = 0.5;
  in.predicted_wait = 2.0;
  const auto d = DecideAdmission(in);
  EXPECT_EQ(d.verdict, Verdict::kAdmit);
  EXPECT_EQ(d.priority, PriorityClass::kProd);
  EXPECT_TRUE(d.slo_at_risk);
  EXPECT_FALSE(d.strip_slo);
}

TEST(TenancyAdmission, InfeasibleSloDowngradesBatchAndStripsSlo) {
  AdmissionInput in;
  in.priority = PriorityClass::kBatch;
  in.short_class = true;
  in.constrained = true;
  in.slo_target = 0.5;
  in.predicted_wait = 2.0;
  const auto d = DecideAdmission(in);
  EXPECT_EQ(d.verdict, Verdict::kDowngrade);
  EXPECT_EQ(d.priority, PriorityClass::kBestEffort);
  EXPECT_TRUE(d.strip_slo);
  EXPECT_TRUE(d.relax_constraint);

  // Long jobs are not SLO-tracked, so the rule must not fire for them.
  in.short_class = false;
  EXPECT_EQ(DecideAdmission(in).verdict, Verdict::kAdmit);
}

TEST(TenancyAdmission, CrvShareBreachKeepsClassTradesConstraint) {
  AdmissionInput in;
  in.priority = PriorityClass::kBatch;
  in.constrained = true;
  in.constrained_share = 0.8;
  in.crv_share_limit = 0.6;
  const auto d = DecideAdmission(in);
  EXPECT_EQ(d.verdict, Verdict::kDowngrade);
  EXPECT_EQ(d.priority, PriorityClass::kBatch);  // class kept
  EXPECT_TRUE(d.relax_constraint);
  EXPECT_FALSE(d.strip_slo);

  // Unconstrained jobs cannot be hogging constrained supply.
  in.constrained = false;
  EXPECT_EQ(DecideAdmission(in).verdict, Verdict::kAdmit);
}

// ---------------------------------------------------------------------------
// Preemption policy (pure).

TEST(TenancyPreemptionPolicy, OnlyProdOverBestEffortIsEligible) {
  const tenancy::PreemptionPolicy on(true, 3);
  const tenancy::PreemptionPolicy off(false, 3);
  using V = tenancy::PreemptVerdict;
  EXPECT_EQ(on.Judge(PriorityClass::kProd, PriorityClass::kBestEffort, false,
                     0),
            V::kPreempt);
  EXPECT_EQ(on.Judge(PriorityClass::kBatch, PriorityClass::kBestEffort, false,
                     0),
            V::kIneligible);
  EXPECT_EQ(on.Judge(PriorityClass::kProd, PriorityClass::kBatch, false, 0),
            V::kIneligible);
  EXPECT_EQ(on.Judge(PriorityClass::kProd, PriorityClass::kProd, false, 0),
            V::kIneligible);
  EXPECT_EQ(off.Judge(PriorityClass::kProd, PriorityClass::kBestEffort, false,
                      0),
            V::kIneligible);
}

TEST(TenancyPreemptionPolicy, SlackGuardAndCapBlock) {
  const tenancy::PreemptionPolicy p(true, 3);
  using V = tenancy::PreemptVerdict;
  EXPECT_EQ(p.Judge(PriorityClass::kProd, PriorityClass::kBestEffort,
                    /*victim_bypass_exhausted=*/true, 0),
            V::kGuardedBySlack);
  EXPECT_EQ(p.Judge(PriorityClass::kProd, PriorityClass::kBestEffort, false,
                    /*victim_preempt_count=*/3),
            V::kPreemptCapReached);
  EXPECT_EQ(p.Judge(PriorityClass::kProd, PriorityClass::kBestEffort, false,
                    2),
            V::kPreempt);
}

// ---------------------------------------------------------------------------
// TenantRegistry accounting.

TEST(TenantRegistry, BudgetScalesWithFleetAndWindow) {
  tenancy::TenantRegistry reg(
      {{"a", PriorityClass::kProd, /*quota_share=*/0.5, 0.0, 0.0},
       {"b", PriorityClass::kBatch, /*quota_share=*/0.0, 0.0, 0.0}});
  EXPECT_DOUBLE_EQ(reg.Budget(0, 100, 120.0), 0.5 * 100 * 120.0);
  EXPECT_DOUBLE_EQ(reg.Budget(1, 100, 120.0), 0.0);  // unlimited
  EXPECT_TRUE(reg.enabled());
  EXPECT_TRUE(reg.Known(0));
  EXPECT_FALSE(reg.Known(tenancy::kNoTenant));
  EXPECT_FALSE(reg.Known(2));
}

TEST(TenantRegistry, ChargeReleaseAndPeakFraction) {
  tenancy::TenantRegistry reg({{"a", PriorityClass::kProd, 0.5, 0.0, 0.0}});
  EXPECT_DOUBLE_EQ(reg.Charge(0, 3000, 6000), 0.5);
  EXPECT_DOUBLE_EQ(reg.Charge(0, 1500, 6000), 0.75);
  EXPECT_DOUBLE_EQ(reg.state(0).peak_quota_fraction, 0.75);
  reg.Release(0, 3000);
  EXPECT_DOUBLE_EQ(reg.state(0).committed, 1500);
  // Peak is a high-water mark; releases do not lower it.
  EXPECT_DOUBLE_EQ(reg.state(0).peak_quota_fraction, 0.75);
  // Unlimited budget charges commit work but report fraction 0.
  EXPECT_DOUBLE_EQ(reg.Charge(0, 500, 0), 0.0);
}

TEST(TenantRegistry, ConstrainedShareAccounting) {
  tenancy::TenantRegistry reg({{"a", PriorityClass::kBatch, 0, 0, 0},
                               {"b", PriorityClass::kBatch, 0, 0, 0}});
  EXPECT_DOUBLE_EQ(reg.ConstrainedShare(0), 0.0);  // nothing queued
  reg.AdjustConstrainedQueued(0, 10);
  EXPECT_DOUBLE_EQ(reg.ConstrainedShare(0), 1.0);
  reg.AdjustConstrainedQueued(1, 30);
  EXPECT_DOUBLE_EQ(reg.ConstrainedShare(0), 0.25);
  reg.AdjustConstrainedQueued(0, -10);
  EXPECT_DOUBLE_EQ(reg.ConstrainedShare(0), 0.0);
  EXPECT_DOUBLE_EQ(reg.total_queued_constrained(), 30.0);
  // Float-noise underflow clamps at zero instead of going negative.
  reg.AdjustConstrainedQueued(1, -1e9);
  EXPECT_GE(reg.state(1).queued_constrained, 0.0);
  EXPECT_GE(reg.total_queued_constrained(), 0.0);
}

// ---------------------------------------------------------------------------
// End-to-end scheduler wiring.

tenancy::TenancyConfig DuelTenants() {
  // Tenant 0 = prod issuer, tenant 1 = best-effort victim; no quotas or
  // SLOs so admission stays out of the way.
  tenancy::TenancyConfig tc;
  tc.tenants.push_back({"prod", PriorityClass::kProd, 0.0, 0.0, 0.0});
  tc.tenants.push_back({"scav", PriorityClass::kBestEffort, 0.0, 0.0, 0.0});
  return tc;
}

// One worker: a 200 s best-effort task is running when a 1 s prod job
// arrives at t = 5, so every prod probe lands on a busy worker and the
// preemption decision is exercised deterministically.
trace::Trace PreemptDuelTrace() {
  trace::Job be;
  be.id = 0;
  be.submit_time = 0;
  be.task_durations = {200.0};
  be.tenant = 1;
  be.short_job = false;
  trace::Job prod;
  prod.id = 1;
  prod.submit_time = 5.0;
  prod.task_durations = {1.0};
  prod.tenant = 0;
  trace::Trace t("preempt-duel", {be, prod});
  t.set_short_cutoff(10.0);
  return t;
}

metrics::SimReport RunDuel(runner::RunOptions o) {
  const auto cl = cluster::BuildCluster({.num_machines = 1, .seed = 3});
  o.scheduler = "phoenix";
  o.config.seed = 3;
  o.obs.audit = true;  // conservation + payload rules checked online
  return runner::RunSimulation(PreemptDuelTrace(), cl, o);
}

const metrics::JobOutcome& JobById(const metrics::SimReport& r,
                                   trace::JobId id) {
  for (const auto& j : r.jobs) {
    if (j.id == id) return j;
  }
  ADD_FAILURE() << "job " << id << " missing from report";
  return r.jobs.front();
}

TEST(Tenancy, ProdPreemptsRunningBestEffortTask) {
  runner::RunOptions o;
  o.config.tenancy = DuelTenants();
  const auto report = RunDuel(o);
  report.CheckInvariants();

  const auto& c = report.counters;
  EXPECT_EQ(c.preemptions_issued, 1u);
  EXPECT_EQ(c.preemption_requeues, 1u);
  EXPECT_EQ(c.preemptions_blocked_guard, 0u);
  EXPECT_EQ(c.preemptions_blocked_cap, 0u);
  // Modeled restart cost is re-paid once per requeue.
  EXPECT_DOUBLE_EQ(c.preemption_restart_seconds,
                   o.config.tenancy.preemption_restart_cost);
  // The victim had run ~5 s when the prod probe arrived; that service is
  // lost and re-executed.
  EXPECT_NEAR(c.preemption_lost_seconds, 5.0, 0.05);

  // Prod jumps the 200 s task: its one task waits well under a second.
  EXPECT_LT(JobById(report, 1).max_task_wait, 1.0);
  // The victim restarts from scratch (200 s + restart cost after t = 5).
  EXPECT_GT(JobById(report, 0).completion, 205.0);
  EXPECT_EQ(JobById(report, 0).priority, 2);
  EXPECT_EQ(JobById(report, 1).priority, 0);

  ASSERT_EQ(report.tenants.size(), 2u);
  EXPECT_EQ(report.tenants[0].preemptions_issued, 1u);
  EXPECT_EQ(report.tenants[1].preemptions_suffered, 1u);
}

TEST(Tenancy, StarvationGuardVetoesPreemptionOfBypassExhaustedTask) {
  // slack_threshold = 0 marks every dispatched task bypass-exhausted, so
  // the same duel must be blocked by the guard instead of preempting.
  runner::RunOptions o;
  o.config.tenancy = DuelTenants();
  o.config.slack_threshold = 0;
  const auto report = RunDuel(o);
  report.CheckInvariants();
  EXPECT_EQ(report.counters.preemptions_issued, 0u);
  EXPECT_EQ(report.counters.preemption_requeues, 0u);
  EXPECT_GE(report.counters.preemptions_blocked_guard, 1u);
  // Blocked preemption means the prod job waits out the 200 s task.
  EXPECT_GT(JobById(report, 1).max_task_wait, 100.0);
}

TEST(Tenancy, PreemptionCapMakesTaskImmune) {
  runner::RunOptions o;
  o.config.tenancy = DuelTenants();
  o.config.tenancy.max_preemptions_per_task = 0;
  const auto report = RunDuel(o);
  report.CheckInvariants();
  EXPECT_EQ(report.counters.preemptions_issued, 0u);
  EXPECT_GE(report.counters.preemptions_blocked_cap, 1u);
}

TEST(Tenancy, PreemptionDisabledByConfig) {
  runner::RunOptions o;
  o.config.tenancy = DuelTenants();
  o.config.tenancy.preemption = false;
  const auto report = RunDuel(o);
  report.CheckInvariants();
  EXPECT_EQ(report.counters.preemptions_issued, 0u);
  EXPECT_EQ(report.counters.preemption_requeues, 0u);
  EXPECT_EQ(report.counters.preemptions_blocked_guard, 0u);
  EXPECT_EQ(report.counters.preemptions_blocked_cap, 0u);
  EXPECT_DOUBLE_EQ(report.counters.preemption_restart_seconds, 0.0);
}

TEST(Tenancy, QueuedProdWorkIsPromotedOverBestEffort) {
  // One worker, preemption off: a prod task arriving behind two queued
  // best-effort tasks must be promoted to the head when the worker frees.
  trace::Job be;
  be.id = 0;
  be.submit_time = 0;
  be.task_durations = {20.0, 20.0, 20.0};
  be.tenant = 1;
  be.short_job = false;
  trace::Job prod;
  prod.id = 1;
  prod.submit_time = 1.0;
  prod.task_durations = {20.0};
  prod.tenant = 0;
  prod.short_job = false;
  trace::Trace t("promotion", {be, prod});
  t.set_short_cutoff(10.0);

  const auto cl = cluster::BuildCluster({.num_machines = 1, .seed = 5});
  runner::RunOptions o;
  o.scheduler = "phoenix";
  o.config.seed = 5;
  o.config.tenancy = DuelTenants();
  o.config.tenancy.preemption = false;
  o.obs.audit = true;
  const auto report = runner::RunSimulation(t, cl, o);
  report.CheckInvariants();
  EXPECT_GE(report.counters.tenant_priority_promotions, 1u);
  EXPECT_LT(JobById(report, 1).completion, JobById(report, 0).completion);
}

TEST(Tenancy, ZeroTenantRunHasNoTenancyFootprint) {
  const auto cl = cluster::BuildCluster({.num_machines = 24, .seed = 11});
  const auto t = trace::GenerateGoogleTrace(400, 24, 0.7, 11);
  runner::RunOptions o;
  o.scheduler = "phoenix";
  o.config.seed = 11;
  o.obs.audit = true;
  const auto report = runner::RunSimulation(t, cl, o);
  report.CheckInvariants();
  const auto& c = report.counters;
  EXPECT_EQ(c.tenant_admits, 0u);
  EXPECT_EQ(c.tenant_downgrades, 0u);
  EXPECT_EQ(c.tenant_rejects, 0u);
  EXPECT_EQ(c.tenant_slo_jobs, 0u);
  EXPECT_EQ(c.tenant_priority_promotions, 0u);
  EXPECT_EQ(c.preemptions_issued + c.preemption_requeues, 0u);
  EXPECT_EQ(c.preemptions_blocked_guard + c.preemptions_blocked_cap, 0u);
  EXPECT_TRUE(report.tenants.empty());
  EXPECT_DOUBLE_EQ(report.tenant_fairness_jain, 1.0);
  for (const auto& j : report.jobs) {
    EXPECT_EQ(j.tenant, 0xffff);
    EXPECT_EQ(j.priority, 1);  // default batch rank, untouched
  }
}

// Preemption/drain duel on one worker: the best-effort victim is preempted
// (kill + requeue on the same machine), the machine then drains with the
// victim's requeued bound task still in its queue, and a forced retire
// sweeps the slot and queue mid-grace. The victim must be re-covered by
// exactly one path — the retire sweep — and run exactly once; a second
// recovery (preemption requeue racing the sweep) would double-run the task
// and trip task conservation, the auditor's preemption-conservation set, or
// its draining-machine preemption rule.
TEST(Tenancy, PreemptDrainDuelRecoversVictimExactlyOnce) {
  const auto cl = cluster::BuildCluster({.num_machines = 2, .seed = 71});
  sim::Engine engine;
  sched::SchedulerConfig cfg;
  cfg.seed = 71;
  cfg.tenancy.tenants.push_back(
      {"prod", PriorityClass::kProd, 0.0, 0.0, 0.0});
  cfg.tenancy.tenants.push_back(
      {"scav", PriorityClass::kBestEffort, 0.0, 0.0, 0.0});
  const auto sched = runner::MakeScheduler("phoenix", engine, cl, cfg);
  // Machine 0 is the guaranteed base (never drainable); the duel plays out
  // on reserve machine 1, commissioned below.
  cluster::MembershipView view(cl, 1);
  sched->SetMembership(&view);
  obs::InvariantAuditor audit;
  sched->AttachAuditor(&audit);

  // Three single-task long jobs (cutoff 10): all take the centralized
  // bound-task plane. The blocker occupies machine 0 for the whole run, so
  // least-loaded placement deterministically sends the victim — and then
  // the preempting prod bind — to machine 1.
  trace::Job blocker;
  blocker.id = 0;
  blocker.submit_time = 0;
  blocker.task_durations = {1000.0};
  blocker.tenant = 0;
  blocker.short_job = false;
  trace::Job victim;
  victim.id = 1;
  victim.submit_time = 2.0;
  victim.task_durations = {50.0};
  victim.tenant = 1;
  victim.short_job = false;
  trace::Job prod;
  prod.id = 2;
  prod.submit_time = 5.0;
  prod.task_durations = {50.0};
  prod.tenant = 0;
  prod.short_job = false;
  trace::Trace t("preempt-drain-duel", {blocker, victim, prod});
  t.set_short_cutoff(10.0);
  sched->SubmitTrace(t);

  // t=1: reserve machine 1 joins. t=2: victim binds there (machine 0 holds
  // the blocker). t~5: the prod bind preempts the running victim — kill +
  // requeue on machine 1, behind the promoted prod entry. t=6: machine 1
  // drains with the victim's bound task still queued. t=8: forced retire
  // kills the running prod task and sweeps the queue, including the
  // requeued victim; everything re-covers onto machine 0 exactly once.
  engine.ScheduleAt(0.2, [&] { sched->ProvisionMachine(1, 0.8); });
  engine.ScheduleAt(1.0, [&] { sched->CommissionMachine(1); });
  engine.ScheduleAt(6.0, [&] { sched->DrainMachine(1); });
  engine.ScheduleAt(8.0, [&] { EXPECT_TRUE(sched->RetireMachine(1, true)); });
  engine.Run();

  EXPECT_TRUE(sched->AllJobsDone());
  sched->FinalAudit();
  EXPECT_TRUE(audit.ok()) << audit.Summary();
  const auto report = sched->BuildReport();
  report.CheckInvariants();
  EXPECT_EQ(report.counters.preemptions_issued, 1u);
  EXPECT_EQ(report.counters.preemption_requeues, 1u);
  EXPECT_EQ(report.counters.preemptions_blocked_lifecycle, 0u);
  // The sweep recovered exactly the running prod task plus the queued
  // victim — each once.
  EXPECT_EQ(report.counters.elastic_tasks_redispatched, 2u);
}

tenancy::TenancyConfig ThreeTenants(double prod_slo) {
  tenancy::TenancyConfig tc;
  tc.tenants.push_back(
      {"prod", PriorityClass::kProd, 0.5, 0.0, prod_slo});
  tc.tenants.push_back({"batch", PriorityClass::kBatch, 0.4, 0.6, 0.0});
  tc.tenants.push_back(
      {"scav", PriorityClass::kBestEffort, 0.0, 0.0, 0.0});
  return tc;
}

trace::Trace TenantedGoogleTrace(std::size_t jobs, std::size_t workers,
                                 double load, std::uint64_t seed) {
  auto gen = trace::ProfileByName("google");
  gen.num_jobs = jobs;
  gen.num_workers = workers;
  gen.target_load = load;
  gen.seed = seed;
  gen.tenant_weights = {1.0, 1.0, 1.0};
  return trace::GenerateTrace("google-tenanted", gen);
}

class TenancyChaosTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TenancyChaosTest, PreemptionConservationHoldsUnderChaos) {
  // Lossy fabric + machine churn + preemption, with the invariant auditor
  // online: every kPreemptIssue must pair with its kPreemptRequeue, every
  // job completes, and quota charges stay in range — or the run aborts.
  const auto cl = cluster::BuildCluster({.num_machines = 40, .seed = 21});
  const auto t = TenantedGoogleTrace(600, 40, 0.75, 21);
  runner::RunOptions o;
  o.scheduler = GetParam();
  o.config.seed = 21;
  o.config.tenancy = ThreeTenants(/*prod_slo=*/60.0);
  o.config.machine_mtbf = 1500;
  o.config.machine_mttr = 150;
  o.config.net.drop_rate = 0.03;
  o.config.net.duplicate_rate = 0.02;
  o.obs.audit = true;
  const auto report = runner::RunSimulation(t, cl, o);
  report.CheckInvariants();
  EXPECT_EQ(report.jobs.size(), t.size());
  EXPECT_GT(report.counters.machine_failures, 0u);
  EXPECT_EQ(report.counters.preemptions_issued,
            report.counters.preemption_requeues);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, TenancyChaosTest,
                         ::testing::Values("phoenix", "eagle-c"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

TEST(Tenancy, UsageAccountsForEveryBusySecond) {
  // With every job tenanted and no failures, executed machine-seconds
  // split exactly into per-tenant usage plus the service lost to
  // preemption kills (lost work is re-run and re-attributed).
  const auto cl = cluster::BuildCluster({.num_machines = 24, .seed = 31});
  const auto t = TenantedGoogleTrace(400, 24, 0.8, 31);
  runner::RunOptions o;
  o.scheduler = "phoenix";
  o.config.seed = 31;
  o.config.tenancy = ThreeTenants(60.0);
  o.obs.audit = true;
  const auto report = runner::RunSimulation(t, cl, o);
  report.CheckInvariants();
  ASSERT_EQ(report.tenants.size(), 3u);
  double usage = 0;
  for (const auto& tn : report.tenants) usage += tn.usage_seconds;
  EXPECT_NEAR(usage + report.counters.preemption_lost_seconds,
              report.total_busy_time,
              1e-6 * std::max(1.0, report.total_busy_time));
  EXPECT_GT(report.tenant_fairness_jain, 0.0);
  EXPECT_LE(report.tenant_fairness_jain, 1.0 + 1e-9);
  EXPECT_DOUBLE_EQ(report.tenant_fairness_jain,
                   metrics::TenantUsageJain(report));
  // Spec fields survive into the per-tenant slice.
  EXPECT_EQ(report.tenants[0].name, "prod");
  EXPECT_EQ(report.tenants[0].priority, 0);
  EXPECT_EQ(report.tenants[2].priority, 2);
}

TEST(Tenancy, LooseSloIsAttainedAndTracked) {
  const auto cl = cluster::BuildCluster({.num_machines = 16, .seed = 41});
  auto gen = trace::ProfileByName("google");
  gen.num_jobs = 300;
  gen.num_workers = 16;
  gen.target_load = 0.6;
  gen.seed = 41;
  gen.tenant_weights = {1.0};
  const auto t = trace::GenerateTrace("one-tenant", gen);
  runner::RunOptions o;
  o.scheduler = "phoenix";
  o.config.seed = 41;
  o.config.tenancy.tenants.push_back(
      {"prod", PriorityClass::kProd, 0.0, 0.0, /*slo_target=*/1e6});
  const auto report = runner::RunSimulation(t, cl, o);
  ASSERT_EQ(report.tenants.size(), 1u);
  EXPECT_GT(report.tenants[0].slo_jobs, 0u);
  EXPECT_EQ(report.tenants[0].slo_attained, report.tenants[0].slo_jobs);
  EXPECT_DOUBLE_EQ(report.tenants[0].SloAttainment(), 1.0);
  EXPECT_EQ(report.counters.tenant_slo_jobs, report.tenants[0].slo_jobs);
  EXPECT_EQ(report.counters.tenant_slo_attained,
            report.tenants[0].slo_attained);
}

TEST(Tenancy, ImpossibleSloDowngradesBatchJobs) {
  // An SLO below the placement round trip is infeasible from t = 0, so
  // every short batch job is downgraded to best-effort with its SLO
  // stripped — none may be counted as an SLO miss.
  const auto cl = cluster::BuildCluster({.num_machines = 16, .seed = 43});
  auto gen = trace::ProfileByName("google");
  gen.num_jobs = 300;
  gen.num_workers = 16;
  gen.target_load = 0.6;
  gen.seed = 43;
  gen.tenant_weights = {1.0};
  const auto t = trace::GenerateTrace("one-tenant", gen);
  runner::RunOptions o;
  o.scheduler = "phoenix";
  o.config.seed = 43;
  o.config.tenancy.tenants.push_back(
      {"batch", PriorityClass::kBatch, 0.0, 0.0, /*slo_target=*/1e-6});
  const auto report = runner::RunSimulation(t, cl, o);
  ASSERT_EQ(report.tenants.size(), 1u);
  EXPECT_GT(report.counters.tenant_downgrades, 0u);
  EXPECT_EQ(report.tenants[0].slo_jobs, 0u);
  for (const auto& j : report.jobs) {
    if (j.short_class) {
      EXPECT_EQ(j.priority, 2);  // Lowered(kBatch)
    }
  }
}

TEST(Tenancy, QuotaRejectStillRunsAsUnchargedBestEffort) {
  // A budget below any single job's work rejects everything; the jobs must
  // still run (as scavenger work), never abort, and never charge quota.
  const auto cl = cluster::BuildCluster({.num_machines = 16, .seed = 47});
  auto gen = trace::ProfileByName("google");
  gen.num_jobs = 200;
  gen.num_workers = 16;
  gen.target_load = 0.6;
  gen.seed = 47;
  gen.tenant_weights = {1.0};
  const auto t = trace::GenerateTrace("one-tenant", gen);
  runner::RunOptions o;
  o.scheduler = "phoenix";
  o.config.seed = 47;
  o.config.tenancy.tenants.push_back(
      {"prod", PriorityClass::kProd, /*quota_share=*/1e-9, 0.0, 0.0});
  o.obs.audit = true;
  const auto report = runner::RunSimulation(t, cl, o);
  report.CheckInvariants();
  EXPECT_EQ(report.jobs.size(), t.size());
  ASSERT_EQ(report.tenants.size(), 1u);
  EXPECT_EQ(report.tenants[0].rejects, static_cast<std::uint64_t>(t.size()));
  EXPECT_EQ(report.counters.tenant_admits, 0u);
  EXPECT_DOUBLE_EQ(report.tenants[0].peak_quota_fraction, 0.0);
  EXPECT_GT(report.tenants[0].usage_seconds, 0.0);
  for (const auto& j : report.jobs) EXPECT_EQ(j.priority, 2);
}

TEST(Tenancy, TenantTaggingDoesNotPerturbTheTrace) {
  auto gen = trace::ProfileByName("google");
  gen.num_jobs = 400;
  gen.num_workers = 20;
  gen.target_load = 0.7;
  gen.seed = 9;
  const auto plain = trace::GenerateTrace("plain", gen);
  gen.tenant_weights = {1.0, 1.0};
  const auto tagged = trace::GenerateTrace("tagged", gen);
  ASSERT_EQ(plain.size(), tagged.size());
  bool saw[2] = {false, false};
  for (std::size_t i = 0; i < plain.size(); ++i) {
    const auto& a = plain.jobs()[i];
    const auto& b = tagged.jobs()[i];
    ASSERT_DOUBLE_EQ(a.submit_time, b.submit_time);
    ASSERT_EQ(a.task_durations, b.task_durations);
    ASSERT_EQ(a.constraints.size(), b.constraints.size());
    EXPECT_EQ(a.tenant, 0xffff);
    ASSERT_LT(b.tenant, 2);
    saw[b.tenant] = true;
  }
  EXPECT_TRUE(saw[0]);
  EXPECT_TRUE(saw[1]);
}

TEST(Tenancy, MultiSeedRunsAreDeterministicAcrossThreadBudgets) {
  const auto cl = cluster::BuildCluster({.num_machines = 24, .seed = 51});
  const auto t = TenantedGoogleTrace(300, 24, 0.75, 51);
  runner::RunOptions o;
  o.scheduler = "phoenix";
  o.config.seed = 51;
  o.config.tenancy = ThreeTenants(60.0);

  auto run = [&](std::size_t threads) {
    ScopedThreads st(threads);
    return runner::RepeatedRuns(t, cl, o, 3);
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  ASSERT_EQ(serial.reports().size(), parallel.reports().size());
  for (std::size_t i = 0; i < serial.reports().size(); ++i) {
    const auto& a = serial.reports()[i];
    const auto& b = parallel.reports()[i];
    EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
    EXPECT_DOUBLE_EQ(a.total_busy_time, b.total_busy_time);
    EXPECT_EQ(a.counters.preemptions_issued, b.counters.preemptions_issued);
    EXPECT_EQ(a.counters.tenant_admits, b.counters.tenant_admits);
    EXPECT_EQ(a.counters.tenant_downgrades, b.counters.tenant_downgrades);
    EXPECT_EQ(a.counters.tenant_rejects, b.counters.tenant_rejects);
    EXPECT_DOUBLE_EQ(a.tenant_fairness_jain, b.tenant_fairness_jain);
    ASSERT_EQ(a.tenants.size(), b.tenants.size());
    for (std::size_t k = 0; k < a.tenants.size(); ++k) {
      EXPECT_DOUBLE_EQ(a.tenants[k].usage_seconds,
                       b.tenants[k].usage_seconds);
      EXPECT_EQ(a.tenants[k].preemptions_suffered,
                b.tenants[k].preemptions_suffered);
    }
  }
}

}  // namespace
}  // namespace phoenix
