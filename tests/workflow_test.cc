// Workflow subsystem tests: DAG state construction (indegrees, CSR
// successor lists, critical-path-to-exit priorities, malformed-edge
// aborts), critical-path length for flat and DAG jobs, the synthetic shape
// overlay (per-shape edge structure, fraction bounds, determinism, the
// untouched underlying trace), and end-to-end DAG / deadline runs:
// audit-clean precedence under both planes (the auditor's kTaskStart rule
// aborts on any successor starting early), full task release accounting,
// byte-identical runs with the gates off (deps present but ignored), SLA
// deadline attainment slices, EDF promotions under load, and bit-identity
// across thread budgets. Registered under the "dag" ctest label
// (scripts/check.sh runs `ctest -L dag`).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cluster/builder.h"
#include "runner/experiment.h"
#include "runner/parallel.h"
#include "trace/generators.h"
#include "trace/job.h"
#include "workflow/config.h"
#include "workflow/dag.h"
#include "workflow/shapes.h"

namespace phoenix {
namespace {

cluster::Cluster MakeUniverse(std::size_t n, std::uint64_t seed = 7) {
  return cluster::BuildCluster({.num_machines = n, .seed = seed});
}

class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t n) { runner::SetExperimentThreads(n); }
  ~ScopedThreads() { runner::SetExperimentThreads(0); }
};

trace::Job MakeJob(std::vector<double> durations,
                   std::vector<std::pair<std::uint32_t, std::uint32_t>> deps) {
  trace::Job job;
  job.id = 0;
  job.task_durations = std::move(durations);
  job.deps = std::move(deps);
  return job;
}

/// A google-profile trace with `shape` edges on every multi-task job.
trace::Trace DagTrace(std::size_t jobs, std::size_t workers, double load,
                      std::uint64_t seed, const std::string& shape,
                      double fraction = 1.0) {
  auto gen = trace::ProfileByName("google");
  gen.num_jobs = jobs;
  gen.num_workers = workers;
  gen.target_load = load;
  gen.seed = seed;
  const auto flat = trace::GenerateTrace("google", gen);
  return workflow::ApplyDagShape(flat, shape, fraction, seed);
}

runner::RunOptions DagOptions(bool dag = true, bool deadline = false) {
  runner::RunOptions o;
  o.scheduler = "phoenix";
  o.config.workflow.dag = dag;
  o.config.workflow.deadline = deadline;
  o.obs.audit = true;  // the runner aborts on any auditor violation
  return o;
}

// ---- DagState construction ------------------------------------------------

TEST(DagStateTest, ChainIndegreesSuccessorsAndCriticalPath) {
  const auto job = MakeJob({2, 3, 4}, {{0, 1}, {1, 2}});
  const auto state = workflow::BuildDagState(job);
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->indegree, (std::vector<std::uint32_t>{0, 1, 1}));
  EXPECT_EQ(state->succ_offsets, (std::vector<std::uint32_t>{0, 1, 2, 2}));
  EXPECT_EQ(state->succ, (std::vector<std::uint32_t>{1, 2}));
  // downstream = own duration + longest chain below.
  EXPECT_DOUBLE_EQ(state->downstream[0], 9.0);
  EXPECT_DOUBLE_EQ(state->downstream[1], 7.0);
  EXPECT_DOUBLE_EQ(state->downstream[2], 4.0);
  EXPECT_DOUBLE_EQ(state->CriticalPath(), 9.0);
  EXPECT_DOUBLE_EQ(workflow::CriticalPathLength(job), 9.0);
}

TEST(DagStateTest, DiamondPrioritizesTheHeavierBranch) {
  // 0 -> {1, 2} -> 3 with durations {1, 2, 3, 4}: the branch through task 2
  // carries more downstream work, so it must rank above task 1.
  const auto job = MakeJob({1, 2, 3, 4}, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  const auto state = workflow::BuildDagState(job);
  EXPECT_EQ(state->indegree, (std::vector<std::uint32_t>{0, 1, 1, 2}));
  EXPECT_DOUBLE_EQ(state->downstream[3], 4.0);
  EXPECT_DOUBLE_EQ(state->downstream[1], 6.0);
  EXPECT_DOUBLE_EQ(state->downstream[2], 7.0);
  EXPECT_DOUBLE_EQ(state->downstream[0], 8.0);
  EXPECT_DOUBLE_EQ(state->CriticalPath(), 8.0);
}

TEST(DagStateTest, FlatJobCriticalPathIsMaxDuration) {
  // No edges: every task could run in parallel, so the expected critical
  // path is the longest single task — not the summed work.
  const auto job = MakeJob({2, 5, 3}, {});
  EXPECT_DOUBLE_EQ(workflow::CriticalPathLength(job), 5.0);
}

TEST(DagStateTest, MalformedEdgesAbort) {
  EXPECT_DEATH(workflow::BuildDagState(MakeJob({1, 2}, {{0, 7}})), "");
  EXPECT_DEATH(workflow::BuildDagState(MakeJob({1, 2}, {{1, 1}})), "");
  // A cycle: Kahn's algorithm cannot consume every task.
  EXPECT_DEATH(workflow::BuildDagState(MakeJob({1, 2}, {{0, 1}, {1, 0}})),
               "");
}

// ---- The synthetic shape overlay ------------------------------------------

TEST(DagShapeTest, KnownShapesOnly) {
  EXPECT_TRUE(workflow::KnownDagShape("chain"));
  EXPECT_TRUE(workflow::KnownDagShape("fanout"));
  EXPECT_TRUE(workflow::KnownDagShape("diamond"));
  EXPECT_FALSE(workflow::KnownDagShape("steady"));
  EXPECT_FALSE(workflow::KnownDagShape(""));
}

TEST(DagShapeTest, OverlayTagsMultiTaskJobsAndPreservesTheTrace) {
  auto gen = trace::ProfileByName("google");
  gen.num_jobs = 200;
  gen.num_workers = 16;
  gen.seed = 11;
  const auto flat = trace::GenerateTrace("google", gen);
  const auto dag = workflow::ApplyDagShape(flat, "chain", 1.0, 11);
  ASSERT_EQ(dag.size(), flat.size());
  EXPECT_EQ(dag.name(), flat.name());
  EXPECT_EQ(dag.short_cutoff(), flat.short_cutoff());
  std::size_t tagged = 0;
  for (trace::JobId id = 0; id < dag.size(); ++id) {
    const auto& before = flat.job(id);
    const auto& after = dag.job(id);
    // Arrivals, durations, and constraints are untouched — only edges land.
    EXPECT_EQ(after.submit_time, before.submit_time);
    EXPECT_EQ(after.task_durations, before.task_durations);
    if (before.num_tasks() < 2) {
      EXPECT_FALSE(after.has_deps());
    } else {
      // Fraction 1: every multi-task job gets the full chain.
      ASSERT_TRUE(after.has_deps());
      EXPECT_EQ(after.deps.size(), after.num_tasks() - 1);
      ++tagged;
    }
  }
  EXPECT_GT(tagged, 0u);
  // Fraction 0 is a no-op; the same seed reproduces the same tagging.
  const auto none = workflow::ApplyDagShape(flat, "chain", 0.0, 11);
  for (trace::JobId id = 0; id < none.size(); ++id) {
    EXPECT_FALSE(none.job(id).has_deps());
  }
  const auto again = workflow::ApplyDagShape(flat, "chain", 0.4, 11);
  const auto again2 = workflow::ApplyDagShape(flat, "chain", 0.4, 11);
  for (trace::JobId id = 0; id < again.size(); ++id) {
    EXPECT_EQ(again.job(id).deps, again2.job(id).deps);
  }
}

TEST(DagShapeTest, UnknownShapeAndBadFractionAbort) {
  auto gen = trace::ProfileByName("google");
  gen.num_jobs = 10;
  gen.num_workers = 4;
  const auto flat = trace::GenerateTrace("google", gen);
  EXPECT_DEATH(workflow::ApplyDagShape(flat, "mesh", 0.5, 1), "unknown");
  EXPECT_DEATH(workflow::ApplyDagShape(flat, "chain", 1.5, 1), "fraction");
}

TEST(DagShapeTest, UnknownLoadShapeIsFindableNotFatal) {
  // The nullable lookup the CLI frontends use for usage errors.
  EXPECT_NE(trace::FindShapeByName("steady"), nullptr);
  EXPECT_NE(trace::FindShapeByName("diurnal"), nullptr);
  EXPECT_NE(trace::FindShapeByName("flash-crowd"), nullptr);
  EXPECT_EQ(trace::FindShapeByName("tsunami"), nullptr);
  EXPECT_EQ(trace::FindShapeByName(""), nullptr);
  EXPECT_EQ(trace::FindShapeByName("diurnal")->burst_factor, 2.5);
}

// ---- End-to-end DAG runs --------------------------------------------------

TEST(DagRun, AuditCleanAndReleasesEveryTask) {
  // The auditor enforces precedence (kTaskStart with an unfinished
  // predecessor aborts) and full release (released == task count per DAG
  // job at Finish), so an audit-clean run is the correctness assertion.
  const auto cl = MakeUniverse(24, 13);
  for (const char* shape : {"chain", "fanout", "diamond"}) {
    const auto t = DagTrace(300, 24, 0.5, 13, shape);
    std::uint64_t dag_jobs = 0;
    std::uint64_t dag_tasks = 0;
    for (trace::JobId id = 0; id < t.size(); ++id) {
      if (!t.job(id).has_deps()) continue;
      ++dag_jobs;
      dag_tasks += t.job(id).num_tasks();
    }
    ASSERT_GT(dag_jobs, 0u);
    for (const char* sched : {"phoenix", "eagle-c"}) {
      auto o = DagOptions();
      o.scheduler = sched;
      const auto r = runner::RunSimulation(t, cl, o);
      EXPECT_EQ(r.jobs.size(), t.size()) << sched << " " << shape;
      EXPECT_TRUE(r.dag_enabled);
      EXPECT_EQ(r.counters.dag_jobs, dag_jobs) << sched << " " << shape;
      EXPECT_EQ(r.counters.dag_tasks_released, dag_tasks)
          << sched << " " << shape;
    }
  }
}

TEST(DagRun, DisabledGateIgnoresEdgesByteIdentically) {
  // The byte-identity contract: with the dag gate off, a trace carrying
  // precedence edges must schedule exactly like the same trace without
  // them — no branch of the workflow code may move a decision.
  const auto cl = MakeUniverse(24, 17);
  auto gen = trace::ProfileByName("google");
  gen.num_jobs = 300;
  gen.num_workers = 24;
  gen.target_load = 0.6;
  gen.seed = 17;
  const auto flat = trace::GenerateTrace("google", gen);
  const auto dag = workflow::ApplyDagShape(flat, "chain", 1.0, 17);
  runner::RunOptions off;
  off.scheduler = "phoenix";
  // Twiddling the multipliers without the gates must also stay inert.
  runner::RunOptions knobs = off;
  knobs.config.workflow.deadline_multiplier = {0.1, 0.1, 0.1};
  ASSERT_FALSE(knobs.config.workflow.enabled());
  const auto r_flat = runner::RunSimulation(flat, cl, off);
  const auto r_deps = runner::RunSimulation(dag, cl, off);
  const auto r_knobs = runner::RunSimulation(dag, cl, knobs);
  EXPECT_EQ(r_flat.makespan, r_deps.makespan);
  EXPECT_EQ(r_flat.counters.probes_sent, r_deps.counters.probes_sent);
  EXPECT_EQ(r_flat.counters.tasks_stolen, r_deps.counters.tasks_stolen);
  EXPECT_EQ(r_deps.makespan, r_knobs.makespan);
  EXPECT_FALSE(r_deps.dag_enabled);
  EXPECT_EQ(r_deps.counters.dag_jobs, 0u);
  EXPECT_EQ(r_deps.counters.deadline_jobs, 0u);
  const auto p_flat = r_flat.QueuingSummary(metrics::ClassFilter::kShort,
                                            metrics::ConstraintFilter::kAll);
  const auto p_deps = r_deps.QueuingSummary(metrics::ClassFilter::kShort,
                                            metrics::ConstraintFilter::kAll);
  EXPECT_EQ(p_flat.p99, p_deps.p99);
}

// ---- Deadline scheduling --------------------------------------------------

TEST(DeadlineRun, TracksEveryJobInItsSlaSlice) {
  const auto cl = MakeUniverse(24, 19);
  const auto t = DagTrace(400, 24, 0.6, 19, "diamond", 0.4);
  const auto r =
      runner::RunSimulation(t, cl, DagOptions(true, /*deadline=*/true));
  EXPECT_TRUE(r.deadline_enabled);
  EXPECT_EQ(r.counters.deadline_jobs, t.size());
  std::uint64_t tracked = 0;
  for (std::size_t rank = 0; rank < 3; ++rank) {
    tracked += r.class_deadline_jobs[rank];
    EXPECT_GE(r.DeadlineAttainment(rank), 0.0);
    EXPECT_LE(r.DeadlineAttainment(rank), 1.0);
  }
  EXPECT_EQ(tracked, t.size());
  // CheckInvariants ties misses to the per-class slices; re-assert here.
  std::uint64_t attained = 0;
  for (std::size_t rank = 0; rank < 3; ++rank) {
    attained += r.class_deadline_attained[rank];
  }
  EXPECT_EQ(tracked - attained, r.counters.deadline_misses);
}

TEST(DeadlineRun, EdfPromotionsFireUnderLoad) {
  // At meaningful utilization the queues are deep enough that an
  // earlier-deadline job sits behind a later one somewhere; the tie-break
  // must actually promote (and count) or the flag is dead code.
  const auto cl = MakeUniverse(16, 23);
  const auto t = DagTrace(500, 16, 0.85, 23, "chain", 0.3);
  const auto r = runner::RunSimulation(t, cl, DagOptions(true, true));
  EXPECT_GT(r.counters.deadline_promotions, 0u);
  // Deadlines bind tighter down the class ladder only in budget, not in
  // attainment ordering (prod has the tightest multiplier), so just assert
  // the slices are populated.
  EXPECT_GT(r.class_deadline_jobs[0] + r.class_deadline_jobs[1] +
                r.class_deadline_jobs[2],
            0u);
}

TEST(DeadlineRun, WorksWithoutDagEdges) {
  // `--deadline` alone: flat jobs get max-duration critical paths and the
  // EDF tie-break still runs.
  const auto cl = MakeUniverse(16, 29);
  auto gen = trace::ProfileByName("google");
  gen.num_jobs = 300;
  gen.num_workers = 16;
  gen.target_load = 0.7;
  gen.seed = 29;
  const auto t = trace::GenerateTrace("google", gen);
  const auto r = runner::RunSimulation(t, cl, DagOptions(false, true));
  EXPECT_FALSE(r.dag_enabled);
  EXPECT_TRUE(r.deadline_enabled);
  EXPECT_EQ(r.counters.deadline_jobs, t.size());
  EXPECT_EQ(r.counters.dag_jobs, 0u);
}

// ---- Determinism ----------------------------------------------------------

TEST(DagRun, BitIdenticalAcrossThreadCounts) {
  const auto cl = MakeUniverse(24, 31);
  const auto t = DagTrace(300, 24, 0.6, 31, "diamond", 0.5);
  const auto o = DagOptions(true, true);
  auto summarize = [&](std::size_t threads) {
    ScopedThreads guard(threads);
    const runner::RepeatedRuns runs(t, cl, o, 3);
    std::vector<double> values;
    for (const auto& r : runs.reports()) {
      values.push_back(r.makespan);
      values.push_back(static_cast<double>(r.counters.dag_tasks_released));
      values.push_back(static_cast<double>(r.counters.deadline_misses));
      values.push_back(static_cast<double>(r.counters.deadline_promotions));
      for (std::size_t rank = 0; rank < 3; ++rank) {
        values.push_back(static_cast<double>(r.class_deadline_attained[rank]));
      }
      values.push_back(r.QueuingSummary(metrics::ClassFilter::kShort,
                                        metrics::ConstraintFilter::kAll)
                           .p99);
    }
    return values;
  };
  const auto serial = summarize(1);
  const auto parallel = summarize(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "summary value " << i;
  }
}

}  // namespace
}  // namespace phoenix
