// Unit tests for streaming statistics, distribution samplers and the
// Pollaczek–Khinchine estimator (paper Equation 1).
#include <cmath>

#include <gtest/gtest.h>

#include "queueing/distributions.h"
#include "queueing/mg1.h"
#include "queueing/stats.h"
#include "util/rng.h"

namespace phoenix::queueing {
namespace {

// ---------------------------------------------------------------- RunningStats

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic example set
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SecondMomentIdentity) {
  RunningStats s;
  util::Rng rng(1);
  double sum_sq = 0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Uniform(0, 10);
    s.Add(x);
    sum_sq += x * x;
  }
  EXPECT_NEAR(s.second_moment(), sum_sq / n, 1e-6);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, ClearResets) {
  RunningStats s;
  s.Add(1);
  s.Clear();
  EXPECT_EQ(s.count(), 0u);
}

// ---------------------------------------------------------------- WindowedStats

TEST(WindowedStats, WindowEviction) {
  WindowedStats w(3);
  w.Add(1);
  w.Add(2);
  w.Add(3);
  EXPECT_DOUBLE_EQ(w.mean(), 2.0);
  w.Add(10);  // evicts 1
  EXPECT_EQ(w.count(), 3u);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
}

TEST(WindowedStats, SecondMoment) {
  WindowedStats w(10);
  w.Add(3);
  w.Add(4);
  EXPECT_DOUBLE_EQ(w.second_moment(), (9.0 + 16.0) / 2.0);
}

TEST(WindowedStats, EmptyIsZero) {
  WindowedStats w(5);
  EXPECT_TRUE(w.empty());
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  EXPECT_DOUBLE_EQ(w.second_moment(), 0.0);
}

TEST(WindowedStatsDeathTest, ZeroWindowAborts) {
  EXPECT_DEATH(WindowedStats(0), "positive");
}

// ---------------------------------------------------------------- Ewma

TEST(Ewma, SeedsWithFirstSample) {
  Ewma e(0.5);
  EXPECT_TRUE(e.empty());
  e.Add(10);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, BlendsSubsequentSamples) {
  Ewma e(0.5);
  e.Add(10);
  e.Add(20);
  EXPECT_DOUBLE_EQ(e.value(), 15.0);
  e.Add(15);
  EXPECT_DOUBLE_EQ(e.value(), 15.0);
}

TEST(EwmaDeathTest, AlphaOutOfRangeAborts) {
  EXPECT_DEATH(Ewma(0.0), "alpha");
  EXPECT_DEATH(Ewma(1.5), "alpha");
}

// ---------------------------------------------------------------- Distributions

TEST(Distributions, ExponentialMeanMatchesRate) {
  util::Rng rng(5);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += SampleExponential(rng, 0.25);
  EXPECT_NEAR(sum / n, 4.0, 0.05);
}

TEST(Distributions, ExponentialIsPositive) {
  util::Rng rng(6);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(SampleExponential(rng, 2.0), 0.0);
}

TEST(Distributions, BoundedParetoStaysInBounds) {
  util::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = SampleBoundedPareto(rng, 1.3, 1.0, 300.0);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 300.0);
  }
}

TEST(Distributions, BoundedParetoMeanMatchesClosedForm) {
  util::Rng rng(8);
  const double alpha = 1.3, lo = 1.0, hi = 300.0;
  double sum = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) sum += SampleBoundedPareto(rng, alpha, lo, hi);
  const double analytic = BoundedParetoMean(alpha, lo, hi);
  EXPECT_NEAR(sum / n, analytic, analytic * 0.02);
}

TEST(Distributions, BoundedParetoSecondMomentMatchesClosedForm) {
  util::Rng rng(9);
  const double alpha = 2.5, lo = 1.0, hi = 50.0;
  double sum_sq = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    const double x = SampleBoundedPareto(rng, alpha, lo, hi);
    sum_sq += x * x;
  }
  const double analytic = BoundedParetoSecondMoment(alpha, lo, hi);
  EXPECT_NEAR(sum_sq / n, analytic, analytic * 0.05);
}

TEST(Distributions, BoundedParetoIsHeavyTailed) {
  // The top 1 % of draws should carry a disproportionate share of the mass.
  util::Rng rng(10);
  std::vector<double> xs(100000);
  double total = 0;
  for (auto& x : xs) {
    x = SampleBoundedPareto(rng, 1.1, 1.0, 1000.0);
    total += x;
  }
  std::sort(xs.begin(), xs.end());
  double top = 0;
  for (std::size_t i = xs.size() - xs.size() / 100; i < xs.size(); ++i)
    top += xs[i];
  EXPECT_GT(top / total, 0.15);
}

TEST(Distributions, LogNormalMeanMatchesClosedForm) {
  util::Rng rng(11);
  const double mu = 2.0, sigma = 0.5;
  double sum = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) sum += SampleLogNormal(rng, mu, sigma);
  const double analytic = std::exp(mu + sigma * sigma / 2);
  EXPECT_NEAR(sum / n, analytic, analytic * 0.02);
}

TEST(Distributions, StandardNormalMoments) {
  util::Rng rng(12);
  double sum = 0, sum_sq = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    const double z = SampleStandardNormal(rng);
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

// ---------------------------------------------------------------- P-K formula

TEST(Pk, ZeroLoadHasZeroWait) {
  EXPECT_DOUBLE_EQ(PkWait(0.0, 1.0, 2.0), 0.0);
}

TEST(Pk, UnstableQueueIsInfinite) {
  EXPECT_TRUE(std::isinf(PkWait(1.0, 1.0, 2.0)));
  EXPECT_TRUE(std::isinf(PkWait(1.5, 1.0, 2.0)));
}

TEST(Pk, ReducesToMm1ForExponentialService) {
  // Exponential service with rate mu: E[S] = 1/mu, E[S^2] = 2/mu^2.
  const double mu = 0.5, lambda = 0.3;
  const double rho = lambda / mu;
  const double pk = PkWait(rho, 1 / mu, 2 / (mu * mu));
  EXPECT_NEAR(pk, Mm1Wait(lambda, mu), 1e-12);
}

TEST(Pk, MonotonicInRho) {
  double prev = -1;
  for (double rho = 0.1; rho < 0.95; rho += 0.1) {
    const double w = PkWait(rho, 1.0, 2.0);
    EXPECT_GT(w, prev);
    prev = w;
  }
}

TEST(Pk, GrowsWithServiceVariability) {
  // Same E[S], higher E[S^2] (more variable service) waits longer.
  EXPECT_LT(PkWait(0.8, 1.0, 1.0), PkWait(0.8, 1.0, 10.0));
}

TEST(Mm1, KnownValue) {
  // lambda=0.5, mu=1: W = rho/(mu-lambda) = 0.5/0.5 = 1.
  EXPECT_DOUBLE_EQ(Mm1Wait(0.5, 1.0), 1.0);
}

TEST(Mm1, UnstableIsInfinite) {
  EXPECT_TRUE(std::isinf(Mm1Wait(1.0, 1.0)));
}

// ---------------------------------------------------------------- Estimator

TEST(WorkerWaitEstimator, ColdStartIsZero) {
  WorkerWaitEstimator est(16);
  EXPECT_DOUBLE_EQ(est.EstimateWait(), 0.0);
  EXPECT_DOUBLE_EQ(est.EstimateRho(), 0.0);
}

TEST(WorkerWaitEstimator, LearnsArrivalRate) {
  WorkerWaitEstimator est(64);
  for (int i = 0; i <= 20; ++i) est.OnArrival(i * 2.0);  // gap 2 => lambda 0.5
  EXPECT_NEAR(est.lambda(), 0.5, 1e-9);
}

TEST(WorkerWaitEstimator, MatchesPkClosedForm) {
  WorkerWaitEstimator est(128);
  // Deterministic arrivals every 2 s, constant service 1 s.
  for (int i = 0; i <= 100; ++i) est.OnArrival(i * 2.0);
  for (int i = 0; i < 100; ++i) est.OnServiceComplete(1.0);
  // lambda=0.5, E[S]=1, E[S^2]=1, rho=0.5 => W = 1 * 1/(2*1) = 0.5.
  EXPECT_NEAR(est.EstimateRho(), 0.5, 1e-9);
  EXPECT_NEAR(est.EstimateWait(), 0.5, 1e-9);
}

TEST(WorkerWaitEstimator, OverloadReportsInfinity) {
  WorkerWaitEstimator est(32);
  for (int i = 0; i <= 10; ++i) est.OnArrival(i * 1.0);
  for (int i = 0; i < 10; ++i) est.OnServiceComplete(2.0);  // rho = 2
  EXPECT_TRUE(std::isinf(est.EstimateWait()));
}

TEST(WorkerWaitEstimator, WindowTracksLoadChanges) {
  WorkerWaitEstimator est(8);
  // Old slow phase…
  for (int i = 0; i <= 50; ++i) est.OnArrival(i * 10.0);
  // …then a burst: the window only remembers the recent gaps.
  for (int i = 0; i < 20; ++i) est.OnArrival(500.0 + i * 0.5);
  EXPECT_NEAR(est.lambda(), 2.0, 1e-9);
}

TEST(WorkerWaitEstimator, ClearResets) {
  WorkerWaitEstimator est(8);
  est.OnArrival(0);
  est.OnArrival(1);
  est.OnServiceComplete(1);
  est.Clear();
  EXPECT_DOUBLE_EQ(est.EstimateWait(), 0.0);
}

// Property sweep: against a simulated M/M/1 queue, the estimator's E[W]
// prediction lands near the theoretical value across loads.
class PkAccuracyTest : public ::testing::TestWithParam<double> {};

TEST_P(PkAccuracyTest, EstimatorTracksMm1Theory) {
  const double rho = GetParam();
  const double mu = 1.0, lambda = rho;
  util::Rng rng(42);
  WorkerWaitEstimator est(4096);
  double t = 0;
  for (int i = 0; i < 20000; ++i) {
    t += SampleExponential(rng, lambda);
    est.OnArrival(t);
    est.OnServiceComplete(SampleExponential(rng, mu));
  }
  const double theory = Mm1Wait(lambda, mu);
  EXPECT_NEAR(est.EstimateWait(), theory, theory * 0.25) << "rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(Loads, PkAccuracyTest,
                         ::testing::Values(0.3, 0.5, 0.7, 0.8));

}  // namespace
}  // namespace phoenix::queueing
