// Tests for the observability subsystem: event tracing (JSONL + Chrome
// trace_event), the per-heartbeat timeseries export, and the invariant
// auditor — including audited end-to-end runs mirroring the paper's
// fig. 7 / fig. 10 workloads under failure churn.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/builder.h"
#include "obs/audit.h"
#include "obs/event.h"
#include "obs/heartbeat_log.h"
#include "obs/trace_writer.h"
#include "runner/experiment.h"
#include "runner/parallel.h"
#include "trace/generators.h"

namespace phoenix {
namespace {

using obs::Event;
using obs::EventType;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "obs_test_" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// Minimal recursive-descent JSON validator — enough to prove the Chrome
// trace is syntactically well-formed without a JSON library dependency.
class MiniJson {
 public:
  explicit MiniJson(const std::string& text) : s_(text) {}

  /// True if the whole input is exactly one valid JSON value.
  bool Valid() {
    pos_ = 0;
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  bool String() {
    if (!Consume('"')) return false;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;  // skip the escaped character
      ++pos_;
    }
    return Consume('"');
  }
  bool Number() {
    SkipWs();
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Value() {
    SkipWs();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }
  bool Object() {
    if (!Consume('{')) return false;
    if (Consume('}')) return true;
    do {
      if (!String() || !Consume(':') || !Value()) return false;
    } while (Consume(','));
    return Consume('}');
  }
  bool Array() {
    if (!Consume('[')) return false;
    if (Consume(']')) return true;
    do {
      if (!Value()) return false;
    } while (Consume(','));
    return Consume(']');
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

runner::RunOptions BaseOptions(const std::string& scheduler,
                               std::uint64_t seed) {
  runner::RunOptions o;
  o.scheduler = scheduler;
  o.config.seed = seed;
  return o;
}

// ---------------------------------------------------------------- plumbing

TEST(Obs, SeedSuffixedPath) {
  EXPECT_EQ(runner::SeedSuffixedPath("out.json", 43), "out.seed43.json");
  EXPECT_EQ(runner::SeedSuffixedPath("events.jsonl", 5), "events.seed5.jsonl");
  EXPECT_EQ(runner::SeedSuffixedPath("noext", 1), "noext.seed1");
  EXPECT_EQ(runner::SeedSuffixedPath("dir.v2/out", 7), "dir.v2/out.seed7");
  EXPECT_EQ(runner::SeedSuffixedPath("dir.v2/out.tsv", 7),
            "dir.v2/out.seed7.tsv");
}

TEST(Obs, EventTypeNamesAreStableAndDistinct) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < obs::kNumEventTypes; ++i) {
    const char* name = obs::EventTypeName(static_cast<EventType>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
  // Serialized spellings are a stable interface for downstream tooling.
  EXPECT_STREQ(obs::EventTypeName(EventType::kProbeSend), "probe_send");
  EXPECT_STREQ(obs::EventTypeName(EventType::kTaskComplete), "task_complete");
  EXPECT_STREQ(obs::EventTypeName(EventType::kMachineFail), "machine_fail");
}

// ---------------------------------------------------------------- auditor

TEST(Obs, AuditorAcceptsBalancedStream) {
  obs::InvariantAuditor a;
  a.OnEvent({0.0, EventType::kJobArrival, 0, obs::kNoId, obs::kNoId, 1.0});
  a.OnEvent({0.1, EventType::kProbeSend, 0, 3});
  a.OnEvent({0.2, EventType::kProbeResolve, 0, 3, 0});
  a.OnEvent({0.2, EventType::kTaskStart, 0, 3, 0, 5.0});
  a.OnEvent({5.2, EventType::kTaskComplete, 0, 3, 0, 5.0});
  a.OnEvent({5.2, EventType::kJobComplete, 0, 3, obs::kNoId, 5.2});
  a.Finish();
  EXPECT_TRUE(a.ok()) << a.Summary();
  EXPECT_EQ(a.events_seen(), 6u);
}

TEST(Obs, AuditorCatchesNegativeProbeBalance) {
  obs::InvariantAuditor a;
  a.OnEvent({1.0, EventType::kProbeResolve, 7, 3, 0});  // resolve, never sent
  EXPECT_FALSE(a.ok());
  EXPECT_NE(a.Summary().find("probe balance"), std::string::npos);
}

TEST(Obs, AuditorCatchesProbeLeakAndUnfinishedJob) {
  obs::InvariantAuditor a;
  a.OnEvent({0.0, EventType::kJobArrival, 0, obs::kNoId, obs::kNoId, 2.0});
  a.OnEvent({0.1, EventType::kProbeSend, 0, 1});
  a.Finish();  // probe never resolved, job never completed
  ASSERT_FALSE(a.ok());
  const std::string summary = a.Summary();
  EXPECT_NE(summary.find("never completed"), std::string::npos);
  EXPECT_NE(summary.find("probe leak"), std::string::npos);
}

TEST(Obs, AuditorCatchesMachineLifecycleViolations) {
  obs::InvariantAuditor a;
  a.OnEvent({1.0, EventType::kMachineFail, obs::kNoId, 4});
  a.OnEvent({2.0, EventType::kMachineFail, obs::kNoId, 4});  // already down
  EXPECT_FALSE(a.ok());
  EXPECT_NE(a.Summary().find("already down"), std::string::npos);
}

TEST(Obs, AuditorCatchesStrandedBusyWorker) {
  obs::InvariantAuditor a;
  // A busy worker whose slot event is gone is exactly the stranded-slot
  // state the sticky-fetch bugfix removes.
  a.CheckWorker(10.0, 2, /*busy=*/true, /*failed=*/false,
                /*has_live_slot_event=*/false, 0, 0.0, /*final_state=*/false);
  ASSERT_FALSE(a.ok());
  EXPECT_NE(a.Summary().find("stranded"), std::string::npos);
}

TEST(Obs, AuditorCatchesUndrainedFinalState) {
  obs::InvariantAuditor a;
  a.CheckWorker(99.0, 0, /*busy=*/false, /*failed=*/false,
                /*has_live_slot_event=*/false, /*queue_len=*/3, 1.5,
                /*final_state=*/true);
  ASSERT_FALSE(a.ok());
  EXPECT_NE(a.Summary().find("queued entries"), std::string::npos);
}

// ---------------------------------------------------------------- writers

TEST(Obs, JsonlStreamIsWellFormed) {
  const std::string path = TempPath("events.jsonl");
  const auto cl = cluster::BuildCluster({.num_machines = 20, .seed = 61});
  const auto t = trace::GenerateGoogleTrace(300, 20, 0.7, 61);
  auto o = BaseOptions("eagle-c", 61);
  o.obs.trace_jsonl = path;
  runner::RunSimulation(t, cl, o);

  const auto lines = Lines(Slurp(path));
  ASSERT_GT(lines.size(), 1000u);  // 300 jobs emit far more events than this
  bool saw_complete = false, saw_sample = false;
  for (const auto& line : lines) {
    ASSERT_FALSE(line.empty());
    ASSERT_EQ(line.front(), '{') << line;
    ASSERT_EQ(line.back(), '}') << line;
    ASSERT_TRUE(MiniJson(line).Valid()) << line;
    ASSERT_NE(line.find("\"type\":"), std::string::npos) << line;
    saw_complete |= line.find("\"task_complete\"") != std::string::npos;
    saw_sample |= line.find("\"worker_sample\"") != std::string::npos;
  }
  EXPECT_TRUE(saw_complete);
  EXPECT_TRUE(saw_sample);
  std::remove(path.c_str());
}

TEST(Obs, ChromeTraceIsValidJson) {
  const std::string path = TempPath("chrome.json");
  const auto cl = cluster::BuildCluster({.num_machines = 20, .seed = 67});
  const auto t = trace::GenerateGoogleTrace(300, 20, 0.7, 67);
  auto o = BaseOptions("phoenix", 67);
  o.obs.trace_chrome = path;
  runner::RunSimulation(t, cl, o);

  const std::string text = Slurp(path);
  ASSERT_FALSE(text.empty());
  EXPECT_TRUE(MiniJson(text).Valid()) << "chrome trace is not valid JSON";
  // The viewer contract: an array of records with slices ("X") for task
  // executions and counters ("C") for the heartbeat tracks.
  EXPECT_EQ(text.front(), '[');
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Obs, HeartbeatTimeseriesSchema) {
  const std::string path = TempPath("hb.tsv");
  const std::size_t nodes = 15;
  const auto cl = cluster::BuildCluster({.num_machines = nodes, .seed = 71});
  const auto t = trace::GenerateGoogleTrace(200, nodes, 0.7, 71);
  auto o = BaseOptions("phoenix", 71);
  o.obs.timeseries_tsv = path;
  runner::RunSimulation(t, cl, o);

  const auto lines = Lines(Slurp(path));
  ASSERT_GT(lines.size(), 1u);
  EXPECT_EQ(lines[0],
            "time\tmachine\tqueue_len\test_queued_work\twait_estimate\t"
            "crv_marked\tbusy\tfailed");
  // One row per (heartbeat, worker).
  EXPECT_EQ((lines.size() - 1) % nodes, 0u);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::size_t tabs = 0;
    for (char c : lines[i]) tabs += c == '\t';
    ASSERT_EQ(tabs, 7u) << lines[i];
  }
  // Phoenix also exports its CRV snapshot history alongside.
  const auto crv = Lines(Slurp(path + ".crv"));
  ASSERT_GT(crv.size(), 1u);
  EXPECT_EQ(crv[0], "time\tdim\tratio");
  std::remove(path.c_str());
  std::remove((path + ".crv").c_str());
}

// ------------------------------------------------------- audited end-to-end

// Audited versions of the paper's workloads: RunSimulation aborts the test
// if the auditor records any violation, so passing means the full event
// stream satisfied every conservation law.

TEST(Obs, AuditCleanOnGoogleWorkloadUnderChurn) {
  const auto cl = cluster::BuildCluster({.num_machines = 60, .seed = 73});
  const auto t = trace::GenerateGoogleTrace(1200, 60, 0.8, 73);
  for (const char* scheduler : {"phoenix", "eagle-c", "hawk-c"}) {
    auto o = BaseOptions(scheduler, 73);
    o.obs.audit = true;
    o.config.machine_mtbf = 3000;
    o.config.machine_mttr = 200;
    const auto report = runner::RunSimulation(t, cl, o);
    EXPECT_EQ(report.jobs.size(), t.size()) << scheduler;
    EXPECT_GT(report.counters.machine_failures, 0u) << scheduler;
  }
}

TEST(Obs, AuditCleanOnYahooWorkloadUnderChurn) {
  const auto cl = cluster::BuildCluster({.num_machines = 60, .seed = 79});
  const auto t = trace::GenerateYahooTrace(1200, 60, 0.8, 79);
  for (const char* scheduler : {"phoenix", "eagle-c", "central-c"}) {
    auto o = BaseOptions(scheduler, 79);
    o.obs.audit = true;
    o.config.machine_mtbf = 3000;
    o.config.machine_mttr = 200;
    const auto report = runner::RunSimulation(t, cl, o);
    EXPECT_EQ(report.jobs.size(), t.size()) << scheduler;
  }
}

class ObsThreadsTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  void TearDown() override { runner::SetExperimentThreads(0); }
};

TEST_P(ObsThreadsTest, AuditedRepeatedRunsWritePerSeedFiles) {
  runner::SetExperimentThreads(GetParam());
  const std::string path =
      TempPath("multi" + std::to_string(GetParam()) + ".tsv");
  const auto cl = cluster::BuildCluster({.num_machines = 30, .seed = 83});
  const auto t = trace::GenerateGoogleTrace(400, 30, 0.75, 83);
  auto o = BaseOptions("phoenix", 83);
  o.obs.audit = true;
  o.obs.timeseries_tsv = path;
  o.config.machine_mtbf = 5000;
  o.config.machine_mttr = 150;
  runner::RepeatedRuns runs(t, cl, o, /*runs=*/2);
  EXPECT_EQ(runs.reports().size(), 2u);
  // Each seed got its own file; the unsuffixed path was never written.
  for (std::uint64_t seed : {83u, 84u}) {
    const std::string seeded = runner::SeedSuffixedPath(path, seed);
    std::ifstream in(seeded);
    EXPECT_TRUE(in.good()) << seeded;
    std::remove(seeded.c_str());
  }
  EXPECT_FALSE(std::ifstream(path).good());
}

INSTANTIATE_TEST_SUITE_P(Threads, ObsThreadsTest, ::testing::Values(1, 4),
                         [](const auto& info) {
                           return "threads_" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace phoenix
